#include "index/rtree_nd.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/random.h"

namespace sgb::index {
namespace {

using P3 = geom::PointN<3>;
using R3 = geom::RectN<3>;

P3 RandomPoint(Rng& rng, double extent) {
  return P3{{rng.NextUniform(0, extent), rng.NextUniform(0, extent),
             rng.NextUniform(0, extent)}};
}

TEST(RTreeNdTest, EmptyTree) {
  RTreeN<3> tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.SearchIds(R3(P3{{0, 0, 0}}, P3{{9, 9, 9}})).empty());
  EXPECT_FALSE(tree.Remove(R3(P3{{0, 0, 0}}, P3{{1, 1, 1}}), 0));
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(RTreeNdTest, WindowQueryMatchesLinearScan3d) {
  Rng rng(9);
  RTreeN<3> tree(6);
  std::vector<P3> pts;
  for (uint64_t i = 0; i < 600; ++i) {
    const P3 p = RandomPoint(rng, 30.0);
    pts.push_back(p);
    tree.Insert(p, i);
  }
  EXPECT_TRUE(tree.CheckInvariants());
  for (int q = 0; q < 30; ++q) {
    const P3 center = RandomPoint(rng, 30.0);
    const R3 window = R3::Around(center, rng.NextUniform(0.5, 5.0));
    std::set<uint64_t> expected;
    for (uint64_t i = 0; i < pts.size(); ++i) {
      if (window.Contains(pts[i])) expected.insert(i);
    }
    const auto got = tree.SearchIds(window);
    EXPECT_EQ(std::set<uint64_t>(got.begin(), got.end()), expected);
    EXPECT_EQ(got.size(), expected.size());
  }
}

TEST(RTreeNdTest, ChurnKeepsInvariants) {
  Rng rng(10);
  RTreeN<3> tree(5);
  std::vector<std::pair<R3, uint64_t>> live;
  uint64_t next_id = 0;
  for (int step = 0; step < 1500; ++step) {
    if (!live.empty() && rng.NextDouble() < 0.45) {
      const size_t pick = rng.NextBounded(live.size());
      EXPECT_TRUE(tree.Remove(live[pick].first, live[pick].second));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      const P3 p = RandomPoint(rng, 20.0);
      const R3 r = R3::Around(p, rng.NextUniform(0, 1.0));
      tree.Insert(r, next_id);
      live.push_back({r, next_id++});
    }
    if (step % 251 == 0) {
      ASSERT_TRUE(tree.CheckInvariants());
    }
  }
  EXPECT_EQ(tree.size(), live.size());
  for (const auto& [rect, id] : live) {
    const auto ids = tree.SearchIds(rect);
    EXPECT_NE(std::find(ids.begin(), ids.end(), id), ids.end());
  }
  for (const auto& [rect, id] : live) EXPECT_TRUE(tree.Remove(rect, id));
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(RTreeNdTest, FourDimensionsWork) {
  Rng rng(11);
  RTreeN<4> tree;
  std::vector<geom::PointN<4>> pts;
  for (uint64_t i = 0; i < 200; ++i) {
    const geom::PointN<4> p{{rng.NextUniform(0, 10), rng.NextUniform(0, 10),
                             rng.NextUniform(0, 10),
                             rng.NextUniform(0, 10)}};
    pts.push_back(p);
    tree.Insert(p, i);
  }
  EXPECT_TRUE(tree.CheckInvariants());
  const auto window = geom::RectN<4>::Around(pts[0], 2.0);
  std::set<uint64_t> expected;
  for (uint64_t i = 0; i < pts.size(); ++i) {
    if (window.Contains(pts[i])) expected.insert(i);
  }
  const auto got = tree.SearchIds(window);
  EXPECT_EQ(std::set<uint64_t>(got.begin(), got.end()), expected);
}

}  // namespace
}  // namespace sgb::index
