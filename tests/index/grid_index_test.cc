#include "index/grid_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/random.h"

namespace sgb::index {
namespace {

using geom::Point;
using geom::Rect;

TEST(GridIndexTest, BasicInsertAndQuery) {
  GridIndex grid(1.0);
  grid.Insert({0.5, 0.5}, 1);
  grid.Insert({1.5, 0.5}, 2);
  grid.Insert({10, 10}, 3);
  auto ids = grid.SearchIds(Rect::FromPoints({0, 0}, {2, 1}));
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<uint64_t>{1, 2}));
  EXPECT_EQ(grid.size(), 3u);
}

TEST(GridIndexTest, NegativeCoordinates) {
  GridIndex grid(0.5);
  grid.Insert({-0.25, -0.25}, 1);
  grid.Insert({-1.75, -1.75}, 2);
  const auto ids = grid.SearchIds(Rect::FromPoints({-0.5, -0.5}, {0, 0}));
  EXPECT_EQ(ids, (std::vector<uint64_t>{1}));
}

TEST(GridIndexTest, BoundaryInclusive) {
  GridIndex grid(1.0);
  grid.Insert({1.0, 1.0}, 7);
  EXPECT_EQ(grid.SearchIds(Rect::FromPoints({0, 0}, {1, 1})).size(), 1u);
  EXPECT_EQ(grid.SearchIds(Rect::FromPoints({1, 1}, {2, 2})).size(), 1u);
}

TEST(GridIndexTest, EmptyWindow) {
  GridIndex grid(1.0);
  grid.Insert({0, 0}, 1);
  EXPECT_TRUE(grid.SearchIds(Rect::Empty()).empty());
}

TEST(GridIndexTest, MatchesLinearScan) {
  Rng rng(31);
  GridIndex grid(0.7);
  std::vector<Point> pts;
  for (uint64_t i = 0; i < 500; ++i) {
    const Point p{rng.NextUniform(-20, 20), rng.NextUniform(-20, 20)};
    pts.push_back(p);
    grid.Insert(p, i);
  }
  for (int q = 0; q < 40; ++q) {
    const Point lo{rng.NextUniform(-22, 18), rng.NextUniform(-22, 18)};
    const Rect window = Rect::FromPoints(
        lo, Point{lo.x + rng.NextUniform(0, 6), lo.y + rng.NextUniform(0, 6)});
    std::set<uint64_t> expected;
    for (uint64_t i = 0; i < pts.size(); ++i) {
      if (window.Contains(pts[i])) expected.insert(i);
    }
    const auto got_vec = grid.SearchIds(window);
    EXPECT_EQ(std::set<uint64_t>(got_vec.begin(), got_vec.end()), expected);
    EXPECT_EQ(got_vec.size(), expected.size());
  }
}

}  // namespace
}  // namespace sgb::index
