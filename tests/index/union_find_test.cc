#include "index/union_find.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace sgb::index {
namespace {

TEST(UnionFindTest, SingletonsAreDisjoint) {
  UnionFind forest(5);
  EXPECT_EQ(forest.NumSets(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(forest.Find(i), i);
    EXPECT_EQ(forest.SetSize(i), 1u);
  }
  EXPECT_FALSE(forest.Connected(0, 1));
}

TEST(UnionFindTest, UnionMergesAndTracksSizes) {
  UnionFind forest(6);
  forest.Union(0, 1);
  forest.Union(2, 3);
  EXPECT_EQ(forest.NumSets(), 4u);
  EXPECT_TRUE(forest.Connected(0, 1));
  EXPECT_FALSE(forest.Connected(0, 2));
  forest.Union(1, 3);  // merges {0,1} with {2,3}
  EXPECT_TRUE(forest.Connected(0, 2));
  EXPECT_EQ(forest.SetSize(3), 4u);
  EXPECT_EQ(forest.NumSets(), 3u);
}

TEST(UnionFindTest, SelfAndRepeatedUnionAreIdempotent) {
  UnionFind forest(3);
  forest.Union(0, 0);
  EXPECT_EQ(forest.NumSets(), 3u);
  forest.Union(0, 1);
  forest.Union(0, 1);
  forest.Union(1, 0);
  EXPECT_EQ(forest.NumSets(), 2u);
  EXPECT_EQ(forest.SetSize(0), 2u);
}

TEST(UnionFindTest, AddElementGrowsUniverse) {
  UnionFind forest;
  EXPECT_EQ(forest.AddElement(), 0u);
  EXPECT_EQ(forest.AddElement(), 1u);
  forest.Union(0, 1);
  EXPECT_EQ(forest.AddElement(), 2u);
  EXPECT_EQ(forest.NumSets(), 2u);
}

TEST(UnionFindTest, ResizeNeverShrinks) {
  UnionFind forest(4);
  forest.Union(0, 1);
  forest.Resize(2);
  EXPECT_EQ(forest.size(), 4u);
  forest.Resize(8);
  EXPECT_EQ(forest.size(), 8u);
  EXPECT_TRUE(forest.Connected(0, 1));
  EXPECT_FALSE(forest.Connected(6, 7));
}

TEST(UnionFindTest, MatchesNaiveLabelsUnderRandomUnions) {
  // Property test against a quadratic reference implementation.
  Rng rng(3);
  const size_t n = 200;
  UnionFind forest(n);
  std::vector<size_t> label(n);
  for (size_t i = 0; i < n; ++i) label[i] = i;

  for (int step = 0; step < 500; ++step) {
    const size_t a = rng.NextBounded(n);
    const size_t b = rng.NextBounded(n);
    forest.Union(a, b);
    const size_t la = label[a];
    const size_t lb = label[b];
    if (la != lb) {
      for (size_t i = 0; i < n; ++i) {
        if (label[i] == lb) label[i] = la;
      }
    }
  }
  // NumSets must match the reference count of distinct labels.
  std::vector<bool> seen(n, false);
  size_t distinct = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!seen[label[i]]) {
      seen[label[i]] = true;
      ++distinct;
    }
  }
  EXPECT_EQ(forest.NumSets(), distinct);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; j += 7) {
      EXPECT_EQ(forest.Connected(i, j), label[i] == label[j]);
    }
  }
}

}  // namespace
}  // namespace sgb::index
