#include "index/rtree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/random.h"

namespace sgb::index {
namespace {

using geom::Point;
using geom::Rect;

TEST(RTreeTest, EmptyTree) {
  RTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.height(), 1);
  EXPECT_TRUE(tree.SearchIds(Rect::FromPoints({0, 0}, {10, 10})).empty());
  EXPECT_FALSE(tree.Remove(Rect::FromPoints({0, 0}, {1, 1}), 7));
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(RTreeTest, InsertAndPointQuery) {
  RTree tree;
  tree.Insert(Point{1, 1}, 10);
  tree.Insert(Point{5, 5}, 20);
  tree.Insert(Point{9, 9}, 30);
  auto ids = tree.SearchIds(Rect::FromPoints({0, 0}, {6, 6}));
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<uint64_t>{10, 20}));
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(RTreeTest, GrowsAndKeepsInvariants) {
  RTree tree(4);
  Rng rng(1);
  for (uint64_t i = 0; i < 500; ++i) {
    tree.Insert(Point{rng.NextUniform(0, 100), rng.NextUniform(0, 100)}, i);
  }
  EXPECT_EQ(tree.size(), 500u);
  EXPECT_GT(tree.height(), 2);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(RTreeTest, WindowQueryMatchesLinearScan) {
  Rng rng(17);
  RTree tree(6);
  std::vector<Rect> rects;
  for (uint64_t i = 0; i < 400; ++i) {
    const Point lo{rng.NextUniform(0, 90), rng.NextUniform(0, 90)};
    const Rect r = Rect::FromPoints(
        lo, Point{lo.x + rng.NextUniform(0, 10), lo.y + rng.NextUniform(0, 10)});
    rects.push_back(r);
    tree.Insert(r, i);
  }
  for (int q = 0; q < 50; ++q) {
    const Point lo{rng.NextUniform(-5, 95), rng.NextUniform(-5, 95)};
    const Rect window = Rect::FromPoints(
        lo,
        Point{lo.x + rng.NextUniform(0, 20), lo.y + rng.NextUniform(0, 20)});
    std::set<uint64_t> expected;
    for (uint64_t i = 0; i < rects.size(); ++i) {
      if (rects[i].Intersects(window)) expected.insert(i);
    }
    const auto got_vec = tree.SearchIds(window);
    const std::set<uint64_t> got(got_vec.begin(), got_vec.end());
    EXPECT_EQ(got, expected);
    EXPECT_EQ(got_vec.size(), got.size()) << "duplicate results";
  }
}

TEST(RTreeTest, RemoveExactEntry) {
  RTree tree;
  tree.Insert(Point{1, 1}, 1);
  tree.Insert(Point{1, 1}, 2);  // same rect, different id
  EXPECT_FALSE(tree.Remove(Rect{{1, 1}, {2, 2}}, 1));  // wrong rect
  EXPECT_TRUE(tree.Remove(Rect{{1, 1}, {1, 1}}, 1));
  EXPECT_EQ(tree.size(), 1u);
  const auto ids = tree.SearchIds(Rect::FromPoints({0, 0}, {2, 2}));
  EXPECT_EQ(ids, (std::vector<uint64_t>{2}));
}

TEST(RTreeTest, InsertRemoveChurnKeepsTreeConsistent) {
  Rng rng(23);
  RTree tree(5);
  std::vector<std::pair<Rect, uint64_t>> live;
  uint64_t next_id = 0;
  for (int step = 0; step < 3000; ++step) {
    const bool remove = !live.empty() && rng.NextDouble() < 0.45;
    if (remove) {
      const size_t pick = rng.NextBounded(live.size());
      EXPECT_TRUE(tree.Remove(live[pick].first, live[pick].second));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      const Point lo{rng.NextUniform(0, 50), rng.NextUniform(0, 50)};
      const Rect r = Rect::FromPoints(
          lo, Point{lo.x + rng.NextUniform(0, 4), lo.y + rng.NextUniform(0, 4)});
      tree.Insert(r, next_id);
      live.push_back({r, next_id});
      ++next_id;
    }
    if (step % 311 == 0) {
      ASSERT_TRUE(tree.CheckInvariants()) << "at step " << step;
    }
  }
  EXPECT_EQ(tree.size(), live.size());
  EXPECT_TRUE(tree.CheckInvariants());

  // Everything still findable.
  for (const auto& [rect, id] : live) {
    const auto ids = tree.SearchIds(rect);
    EXPECT_NE(std::find(ids.begin(), ids.end(), id), ids.end());
  }
  // Drain to empty.
  for (const auto& [rect, id] : live) {
    EXPECT_TRUE(tree.Remove(rect, id));
  }
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.height(), 1);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(RTreeTest, DegenerateIdenticalRects) {
  RTree tree(4);
  for (uint64_t i = 0; i < 100; ++i) tree.Insert(Point{1, 1}, i);
  EXPECT_EQ(tree.size(), 100u);
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_EQ(tree.SearchIds(Rect{{1, 1}, {1, 1}}).size(), 100u);
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_TRUE(tree.Remove(Rect{{1, 1}, {1, 1}}, i));
  }
  EXPECT_TRUE(tree.empty());
}

TEST(RTreeTest, MoveSemantics) {
  RTree a;
  a.Insert(Point{1, 1}, 1);
  RTree b = std::move(a);
  EXPECT_EQ(b.size(), 1u);
  b = RTree();
  EXPECT_TRUE(b.empty());
}

}  // namespace
}  // namespace sgb::index
