// Tests for the bounded query-log ring buffer behind system.query_log /
// system.operator_stats: capacity enforcement, id allocation, and
// race-freedom under concurrent writers and readers (the TSan CI leg runs
// this binary under -fsanitize=thread).

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/query_log.h"

namespace sgb::obs {
namespace {

QueryLogEntry MakeEntry(QueryLog& log, const std::string& text) {
  QueryLogEntry entry;
  entry.id = log.NextId();
  entry.text = text;
  entry.status = "ok";
  return entry;
}

TEST(QueryLogTest, StartsEmpty) {
  QueryLog log;
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.capacity(), QueryLog::kDefaultCapacity);
  EXPECT_TRUE(log.Entries().empty());
  EXPECT_TRUE(log.OperatorStats().empty());
}

TEST(QueryLogTest, NextIdIsMonotonic) {
  QueryLog log;
  const uint64_t a = log.NextId();
  const uint64_t b = log.NextId();
  const uint64_t c = log.NextId();
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
}

TEST(QueryLogTest, RetainsEntriesOldestFirst) {
  QueryLog log(8);
  for (int i = 0; i < 3; ++i) {
    log.Record(MakeEntry(log, "q" + std::to_string(i)), {});
  }
  const auto entries = log.Entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].text, "q0");
  EXPECT_EQ(entries[1].text, "q1");
  EXPECT_EQ(entries[2].text, "q2");
  EXPECT_LT(entries[0].id, entries[2].id);
}

TEST(QueryLogTest, RingEvictsOldestBeyondCapacity) {
  QueryLog log(4);
  for (int i = 0; i < 10; ++i) {
    log.Record(MakeEntry(log, "q" + std::to_string(i)), {});
  }
  EXPECT_EQ(log.size(), 4u);
  const auto entries = log.Entries();
  ASSERT_EQ(entries.size(), 4u);
  EXPECT_EQ(entries.front().text, "q6");
  EXPECT_EQ(entries.back().text, "q9");
}

TEST(QueryLogTest, OperatorStatsEvictedWithTheirQuery) {
  QueryLog log(2);
  for (int i = 0; i < 5; ++i) {
    QueryLogEntry entry = MakeEntry(log, "q" + std::to_string(i));
    OperatorStatsEntry op;
    op.query_id = entry.id;
    op.op = "TableScan";
    log.Record(std::move(entry), {op});
  }
  const auto entries = log.Entries();
  const auto ops = log.OperatorStats();
  ASSERT_EQ(entries.size(), 2u);
  ASSERT_EQ(ops.size(), 2u);
  // Every retained operator row belongs to a retained query.
  std::set<uint64_t> ids;
  for (const auto& e : entries) ids.insert(e.id);
  for (const auto& o : ops) EXPECT_TRUE(ids.count(o.query_id)) << o.query_id;
}

TEST(QueryLogTest, ZeroCapacityClampsToOne) {
  QueryLog log(0);
  EXPECT_EQ(log.capacity(), 1u);
  log.Record(MakeEntry(log, "a"), {});
  log.Record(MakeEntry(log, "b"), {});
  const auto entries = log.Entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].text, "b");
}

TEST(QueryLogTest, ClearEmptiesButKeepsIds) {
  QueryLog log(8);
  log.Record(MakeEntry(log, "a"), {});
  const uint64_t before = log.NextId();
  log.Clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_GT(log.NextId(), before);  // ids are never reused
}

TEST(QueryLogTest, ConcurrentWritersAndReadersStayBounded) {
  // 8 threads hammer the ring (half recording, half snapshotting) — the
  // ring must stay bounded, never tear an entry, and keep ids unique. Run
  // under TSan in CI, this is also the data-race check.
  QueryLog log(16);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        if (t % 2 == 0) {
          QueryLogEntry entry;
          entry.id = log.NextId();
          entry.text = "thread " + std::to_string(t);
          entry.status = "ok";
          OperatorStatsEntry op;
          op.query_id = entry.id;
          op.op = "TableScan";
          log.Record(std::move(entry), {op});
        } else {
          const auto entries = log.Entries();
          EXPECT_LE(entries.size(), log.capacity());
          for (const auto& e : entries) EXPECT_EQ(e.status, "ok");
          (void)log.OperatorStats();
          (void)log.size();
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  const auto entries = log.Entries();
  EXPECT_EQ(entries.size(), log.capacity());
  std::set<uint64_t> ids;
  for (const auto& e : entries) EXPECT_TRUE(ids.insert(e.id).second);
}

TEST(QueryLogTest, GlobalMirrorSeesEveryLogsEntries) {
  // Per-Database logs die with their Database; the process-wide mirror
  // keeps their entries for post-mortem dumps (tests/sgb_test_main.cc).
  const size_t before = QueryLog::GlobalMirror().size();
  {
    QueryLog log(4);
    auto entry = MakeEntry(log, "SELECT mirrored");
    OperatorStatsEntry op;
    op.query_id = entry.id;
    op.op = "TableScan";
    log.Record(std::move(entry), {op});
  }
  const auto mirrored = QueryLog::GlobalMirror().Entries();
  EXPECT_GT(mirrored.size(), before);
  EXPECT_EQ(mirrored.back().text, "SELECT mirrored");
  // The mirror keeps entries only — per-operator rows stay with the
  // owning log, which is gone.
  for (const auto& op : QueryLog::GlobalMirror().OperatorStats()) {
    EXPECT_NE(op.op, "TableScan") << "mirror should not retain op rows";
  }
}

}  // namespace
}  // namespace sgb::obs
