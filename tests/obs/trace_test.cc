#include "obs/trace.h"

#include <gtest/gtest.h>

namespace sgb::obs {
namespace {

TEST(QueryTraceTest, NestedSpansFormAHierarchy) {
  QueryTrace trace;
  trace.Start("parse");
  trace.End();
  trace.Start("execute");
  trace.Start("scan");
  trace.End();
  trace.End();
  trace.Finish();

  const TraceSpan& root = trace.root();
  EXPECT_EQ(root.name, "query");
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[0].name, "parse");
  EXPECT_EQ(root.children[1].name, "execute");
  ASSERT_EQ(root.children[1].children.size(), 1u);
  EXPECT_EQ(root.children[1].children[0].name, "scan");
  // The nested scan starts no earlier than its parent and the root spans
  // everything.
  EXPECT_GE(root.children[1].children[0].start_ns,
            root.children[1].start_ns);
  EXPECT_GE(root.duration_ns, root.children[1].duration_ns);
}

TEST(QueryTraceTest, AttributesAttachToInnermostOpenSpan) {
  QueryTrace trace;
  trace.Start("execute");
  trace.AddAttribute("rows", 42);
  trace.End();
  trace.AddAttribute("total", 1);  // no open span: lands on the root

  const TraceSpan& root = trace.root();
  EXPECT_DOUBLE_EQ(root.attributes.at("total"), 1.0);
  EXPECT_DOUBLE_EQ(root.children[0].attributes.at("rows"), 42.0);
}

TEST(QueryTraceTest, ScopedSpanEndsOnDestruction) {
  QueryTrace trace;
  {
    ScopedSpan outer(&trace, "outer");
    ScopedSpan inner(&trace, "inner");
    inner.AddAttribute("k", 1);
  }
  trace.Start("after");
  trace.End();

  const TraceSpan& root = trace.root();
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[0].name, "outer");
  ASSERT_EQ(root.children[0].children.size(), 1u);
  EXPECT_EQ(root.children[0].children[0].name, "inner");
  EXPECT_EQ(root.children[1].name, "after");
}

TEST(QueryTraceTest, NullTraceIsANoOp) {
  ScopedSpan span(nullptr, "ignored");
  span.AddAttribute("k", 1);  // must not crash
}

TEST(QueryTraceTest, TextAndJsonRendering) {
  QueryTrace trace;
  {
    ScopedSpan span(&trace, "execute");
    span.AddAttribute("rows", 3);
  }
  const std::string text = trace.ToText();
  EXPECT_NE(text.find("query"), std::string::npos);
  EXPECT_NE(text.find("\n  execute"), std::string::npos) << text;
  EXPECT_NE(text.find("rows=3"), std::string::npos) << text;

  const std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"name\":\"query\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"children\":[{\"name\":\"execute\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"attributes\":{\"rows\":3}"), std::string::npos)
      << json;
}

TEST(QueryTraceTest, ToTextFinishesOpenSpans) {
  QueryTrace trace;
  trace.Start("left-open");
  const std::string text = trace.ToText();  // implicit Finish()
  EXPECT_NE(text.find("left-open"), std::string::npos);
  EXPECT_GT(trace.root().duration_ns, 0u);
}

}  // namespace
}  // namespace sgb::obs
