#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace sgb::obs {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, SetAndSetMax) {
  Gauge g;
  g.Set(10.0);
  EXPECT_DOUBLE_EQ(g.value(), 10.0);
  g.Set(5.0);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  g.SetMax(3.0);  // below current: no change
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  g.SetMax(8.0);
  EXPECT_DOUBLE_EQ(g.value(), 8.0);
}

TEST(HistogramTest, CountSumMinMaxMean) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);

  for (uint64_t v : {10, 20, 30, 40}) h.Record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 100u);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 40u);
  EXPECT_DOUBLE_EQ(h.Mean(), 25.0);
}

TEST(HistogramTest, BucketBoundsAreConsistent) {
  // Every sample must land in a bucket whose upper bound is >= the sample
  // and within the log-linear relative-error envelope.
  for (uint64_t v : {0, 1, 2, 3, 4, 5, 7, 8, 100, 1000, 123456789}) {
    const size_t index = Histogram::BucketIndex(v);
    const uint64_t upper = Histogram::BucketUpperBound(index);
    EXPECT_GE(upper, v) << "sample " << v;
    // Relative error bounded by 1/kSubBuckets above the linear range.
    EXPECT_LE(upper, v + v / Histogram::kSubBuckets + 1) << "sample " << v;
  }
}

TEST(HistogramTest, PercentilesAreOrderedAndWithinRange) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  const double p50 = h.Percentile(50);
  const double p90 = h.Percentile(90);
  const double p99 = h.Percentile(99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p99, 1000.0);
  // Log-linear resolution: p50 of uniform 1..1000 is near 500 within one
  // sub-bucket (25% here).
  EXPECT_NEAR(p50, 500.0, 500.0 / Histogram::kSubBuckets + 1);
}

TEST(HistogramTest, ValueAtQuantileMatchesPercentile) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  EXPECT_DOUBLE_EQ(h.ValueAtQuantile(0.50), h.Percentile(50));
  EXPECT_DOUBLE_EQ(h.ValueAtQuantile(0.95), h.Percentile(95));
  EXPECT_DOUBLE_EQ(h.P50(), h.Percentile(50));
  EXPECT_DOUBLE_EQ(h.P95(), h.Percentile(95));
  EXPECT_DOUBLE_EQ(h.P99(), h.Percentile(99));
  EXPECT_LE(h.P50(), h.P95());
  EXPECT_LE(h.P95(), h.P99());
  // Out-of-range quantiles clamp instead of misbehaving.
  EXPECT_DOUBLE_EQ(h.ValueAtQuantile(-1.0), h.ValueAtQuantile(0.0));
  EXPECT_DOUBLE_EQ(h.ValueAtQuantile(2.0), h.ValueAtQuantile(1.0));
}

TEST(HistogramTest, SummaryCarriesP95) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("lat_us");
  for (uint64_t v = 1; v <= 100; ++v) h.Record(v);
  const MetricsSnapshot snap = registry.Snapshot();
  const auto it = snap.histograms.find("lat_us");
  ASSERT_NE(it, snap.histograms.end());
  EXPECT_GE(it->second.p95, it->second.p50);
  EXPECT_LE(it->second.p95, it->second.p99);
  EXPECT_GT(it->second.p95, 0.0);
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h;
  h.Record(7);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 0.0);
}

TEST(MetricsRegistryTest, SameNameReturnsSameMetric) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("x.count");
  Counter& b = registry.GetCounter("x.count");
  EXPECT_EQ(&a, &b);
  a.Add(3);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_NE(static_cast<void*>(&registry.GetCounter("y.count")),
            static_cast<void*>(&a));
}

TEST(MetricsRegistryTest, SnapshotIsDeterministic) {
  MetricsRegistry registry;
  registry.GetCounter("b.counter").Add(2);
  registry.GetCounter("a.counter").Add(1);
  registry.GetGauge("z.gauge").Set(4.5);
  registry.GetHistogram("m.hist").Record(16);

  const std::string json1 = registry.Snapshot().ToJson();
  const std::string json2 = registry.Snapshot().ToJson();
  EXPECT_EQ(json1, json2);
  // Name-sorted: "a.counter" renders before "b.counter".
  EXPECT_LT(json1.find("a.counter"), json1.find("b.counter"));
  EXPECT_NE(json1.find("\"a.counter\":1"), std::string::npos) << json1;
  EXPECT_NE(json1.find("\"z.gauge\":4.5"), std::string::npos) << json1;
  EXPECT_NE(json1.find("\"m.hist\":{\"count\":1"), std::string::npos)
      << json1;
}

TEST(MetricsRegistryTest, TextSnapshotListsEveryKind) {
  MetricsRegistry registry;
  registry.GetCounter("c").Add(7);
  registry.GetGauge("g").Set(1.5);
  registry.GetHistogram("h").Record(3);
  const std::string text = registry.Snapshot().ToText();
  EXPECT_NE(text.find("counter"), std::string::npos);
  EXPECT_NE(text.find("gauge"), std::string::npos);
  EXPECT_NE(text.find("histogram"), std::string::npos);
  EXPECT_NE(text.find('7'), std::string::npos);
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsRegistrations) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("c");
  c.Add(5);
  registry.GetHistogram("h").Record(9);
  registry.Reset();
  EXPECT_EQ(c.value(), 0u);
  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.count("c"), 1u);
  EXPECT_EQ(snap.counters.at("c"), 0u);
  EXPECT_EQ(snap.histograms.at("h").count, 0u);
}

TEST(MetricsRegistryTest, ThreadSafetySmoke) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIterations = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < kIterations; ++i) {
        registry.GetCounter("shared.counter").Add(1);
        registry.GetHistogram("shared.hist").Record(
            static_cast<uint64_t>(i));
        registry.GetGauge("shared.gauge").SetMax(static_cast<double>(i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.GetCounter("shared.counter").value(),
            static_cast<uint64_t>(kThreads) * kIterations);
  EXPECT_EQ(registry.GetHistogram("shared.hist").count(),
            static_cast<uint64_t>(kThreads) * kIterations);
  EXPECT_DOUBLE_EQ(registry.GetGauge("shared.gauge").value(),
                   kIterations - 1);
}

TEST(MetricsRegistryTest, ConcurrentRegistrationAndSnapshots) {
  // Exercises the slow path of the shared-lock registry: threads race to
  // register fresh names (exclusive lock) while others update and snapshot
  // (shared lock). Run under TSan in CI, this is the regression gate for
  // concurrent-operator metric publication.
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kNames = 40;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < kNames; ++i) {
        const std::string name = "race.c" + std::to_string(i);
        registry.GetCounter(name).Add(1);
        registry.GetHistogram("race.h" + std::to_string(i))
            .Record(static_cast<uint64_t>(t));
        if (i % 10 == 0) {
          const MetricsSnapshot snap = registry.Snapshot();
          EXPECT_LE(snap.counters.size(), static_cast<size_t>(kNames));
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), static_cast<size_t>(kNames));
  for (const auto& [name, value] : snap.counters) {
    EXPECT_EQ(value, static_cast<uint64_t>(kThreads)) << name;
  }
  for (const auto& [name, h] : snap.histograms) {
    EXPECT_EQ(h.count, static_cast<uint64_t>(kThreads)) << name;
  }
}

TEST(GlobalRegistryTest, IsASingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

}  // namespace
}  // namespace sgb::obs
