#include "sql/lexer.h"

#include <gtest/gtest.h>

namespace sgb::sql {
namespace {

std::vector<Token> Lex(const std::string& sql) {
  auto result = Tokenize(sql);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? result.value() : std::vector<Token>{};
}

TEST(LexerTest, IdentifiersAndKeywordsKeepSpelling) {
  const auto tokens = Lex("SELECT c_acctbal FROM Customer");
  ASSERT_EQ(tokens.size(), 5u);  // 4 idents + end
  EXPECT_EQ(tokens[0].text, "SELECT");
  EXPECT_EQ(tokens[1].text, "c_acctbal");
  EXPECT_EQ(tokens[3].text, "Customer");
  EXPECT_EQ(tokens[4].type, TokenType::kEnd);
}

TEST(LexerTest, Numbers) {
  const auto tokens = Lex("42 3.25 1e3 7.5e-2");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_TRUE(tokens[0].is_integer);
  EXPECT_DOUBLE_EQ(tokens[0].number, 42);
  EXPECT_FALSE(tokens[1].is_integer);
  EXPECT_DOUBLE_EQ(tokens[1].number, 3.25);
  EXPECT_DOUBLE_EQ(tokens[2].number, 1000);
  EXPECT_DOUBLE_EQ(tokens[3].number, 0.075);
}

TEST(LexerTest, StringsWithEscapes) {
  const auto tokens = Lex("'hello' 'it''s'");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].type, TokenType::kString);
  EXPECT_EQ(tokens[0].text, "hello");
  EXPECT_EQ(tokens[1].text, "it's");
}

TEST(LexerTest, UnterminatedStringIsError) {
  EXPECT_FALSE(Tokenize("'oops").ok());
}

TEST(LexerTest, OperatorsAndPunctuation) {
  const auto tokens = Lex("a <= b <> c >= d != e ( ) , . * + - / ; < >");
  std::vector<TokenType> types;
  for (const Token& t : tokens) types.push_back(t.type);
  // Spot-check the multi-char operators.
  EXPECT_EQ(types[1], TokenType::kLe);
  EXPECT_EQ(types[3], TokenType::kNe);
  EXPECT_EQ(types[5], TokenType::kGe);
  EXPECT_EQ(types[7], TokenType::kNe);
}

TEST(LexerTest, LineCommentsAreSkipped) {
  const auto tokens = Lex("SELECT -- comment text\n x");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].text, "x");
}

TEST(LexerTest, HyphenatedKeywordsSplitIntoMinusTokens) {
  const auto tokens = Lex("DISTANCE-TO-ALL");
  ASSERT_EQ(tokens.size(), 6u);
  EXPECT_EQ(tokens[0].type, TokenType::kIdent);
  EXPECT_EQ(tokens[1].type, TokenType::kMinus);
  EXPECT_EQ(tokens[2].text, "TO");
}

TEST(LexerTest, PositionsTrackOffsets) {
  const auto tokens = Lex("ab cd");
  EXPECT_EQ(tokens[0].position, 0u);
  EXPECT_EQ(tokens[1].position, 3u);
}

TEST(LexerTest, RejectsStrayCharacters) {
  EXPECT_FALSE(Tokenize("SELECT @ FROM t").ok());
}

}  // namespace
}  // namespace sgb::sql
