// Feature-level SQL coverage beyond the core paths: predicates (BETWEEN,
// IN-lists, dates), the Table 2 dialect shorthand through the full engine,
// aliases, and NULL behaviour.

#include <gtest/gtest.h>

#include <cmath>

#include <memory>

#include "engine/executor.h"

namespace sgb::sql {
namespace {

using engine::Column;
using engine::Database;
using engine::DataType;
using engine::Schema;
using engine::Table;
using engine::Value;

Database OrdersDb() {
  Database db;
  auto orders = std::make_shared<Table>(Schema({
      Column{"id", DataType::kInt64, ""},
      Column{"price", DataType::kDouble, ""},
      Column{"day", DataType::kString, ""},
      Column{"region", DataType::kString, ""},
  }));
  const struct {
    int64_t id;
    double price;
    const char* day;
    const char* region;
  } rows[] = {
      {1, 10.0, "1995-03-01", "east"}, {2, 20.0, "1995-06-15", "west"},
      {3, 30.0, "1996-01-01", "east"}, {4, 40.0, "1994-12-31", "west"},
      {5, 50.0, "1995-12-31", "east"},
  };
  for (const auto& r : rows) {
    EXPECT_TRUE(orders
                    ->Append({Value::Int(r.id), Value::Double(r.price),
                              Value::Str(r.day), Value::Str(r.region)})
                    .ok());
  }
  db.Register("orders", orders);
  return db;
}

TEST(SqlFeaturesTest, BetweenOnNumbers) {
  const Database db = OrdersDb();
  const auto result =
      db.Query("SELECT count(*) FROM orders WHERE price BETWEEN 20 AND 40");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows()[0][0].AsInt(), 3);
}

TEST(SqlFeaturesTest, DateLiteralComparison) {
  const Database db = OrdersDb();
  const auto result = db.Query(
      "SELECT count(*) FROM orders "
      "WHERE day > date '1995-01-01' AND day < date '1996-01-01'");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows()[0][0].AsInt(), 3);  // ids 1, 2, 5
}

TEST(SqlFeaturesTest, InListOfNumbersAndStrings) {
  const Database db = OrdersDb();
  const auto nums =
      db.Query("SELECT count(*) FROM orders WHERE id IN (1, 3, 99)");
  ASSERT_TRUE(nums.ok());
  EXPECT_EQ(nums.value().rows()[0][0].AsInt(), 2);

  const auto strs = db.Query(
      "SELECT count(*) FROM orders WHERE region IN ('east', 'north')");
  ASSERT_TRUE(strs.ok());
  EXPECT_EQ(strs.value().rows()[0][0].AsInt(), 3);
}

TEST(SqlFeaturesTest, NotAndNestedLogic) {
  const Database db = OrdersDb();
  const auto result = db.Query(
      "SELECT count(*) FROM orders "
      "WHERE NOT (region = 'east' OR price < 15)");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows()[0][0].AsInt(), 2);  // ids 2, 4
}

TEST(SqlFeaturesTest, ArithmeticInSelectAndAliasInOrderBy) {
  const Database db = OrdersDb();
  const auto result = db.Query(
      "SELECT id, price * 2 AS doubled FROM orders "
      "ORDER BY doubled DESC LIMIT 2");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().NumRows(), 2u);
  EXPECT_EQ(result.value().rows()[0][0].AsInt(), 5);
  EXPECT_DOUBLE_EQ(result.value().rows()[0][1].AsDouble(), 100.0);
}

TEST(SqlFeaturesTest, Table2ShorthandExecutes) {
  Database db;
  auto t = std::make_shared<Table>(Schema({
      Column{"ab", DataType::kDouble, ""},
      Column{"tp", DataType::kDouble, ""},
  }));
  const double rows[][2] = {{0.1, 0.1}, {0.15, 0.12}, {0.8, 0.9}};
  for (const auto& r : rows) {
    ASSERT_TRUE(t->Append({Value::Double(r[0]), Value::Double(r[1])}).ok());
  }
  db.Register("t", t);
  const auto result = db.Query(
      "SELECT count(*) FROM t GROUP BY ab, tp "
      "DISTANCE-ALL WITHIN 0.2 USING ltwo on overlap join-any");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().NumRows(), 2u);
}

TEST(SqlFeaturesTest, GroupByExpressionSelectsGroupKey) {
  const Database db = OrdersDb();
  const auto result = db.Query(
      "SELECT region, count(*) AS n FROM orders GROUP BY region "
      "ORDER BY n DESC");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().NumRows(), 2u);
  EXPECT_EQ(result.value().rows()[0][0].AsString(), "east");
  EXPECT_EQ(result.value().rows()[0][1].AsInt(), 3);
}

TEST(SqlFeaturesTest, HavingOnDifferentAggregateThanSelect) {
  const Database db = OrdersDb();
  const auto result = db.Query(
      "SELECT region, count(*) FROM orders GROUP BY region "
      "HAVING max(price) >= 50");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().NumRows(), 1u);
  EXPECT_EQ(result.value().rows()[0][0].AsString(), "east");
}

TEST(SqlFeaturesTest, NullGroupingKeysGroupTogether) {
  Database db;
  auto t = std::make_shared<Table>(Schema({
      Column{"k", DataType::kString, ""},
      Column{"v", DataType::kInt64, ""},
  }));
  ASSERT_TRUE(t->Append({Value::Null(), Value::Int(1)}).ok());
  ASSERT_TRUE(t->Append({Value::Null(), Value::Int(2)}).ok());
  ASSERT_TRUE(t->Append({Value::Str("x"), Value::Int(3)}).ok());
  db.Register("t", t);
  const auto result =
      db.Query("SELECT k, sum(v) FROM t GROUP BY k ORDER BY 2");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().NumRows(), 2u);
  // NULL keys form one group (SQL GROUP BY semantics).
  EXPECT_TRUE(result.value().rows()[0][0].is_null());
  EXPECT_EQ(result.value().rows()[0][1].AsInt(), 3);
}

TEST(SqlFeaturesTest, CountDistinguishesNulls) {
  Database db;
  auto t = std::make_shared<Table>(
      Schema({Column{"v", DataType::kInt64, ""}}));
  ASSERT_TRUE(t->Append({Value::Int(1)}).ok());
  ASSERT_TRUE(t->Append({Value::Null()}).ok());
  db.Register("t", t);
  const auto result = db.Query("SELECT count(*), count(v) FROM t");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows()[0][0].AsInt(), 2);
  EXPECT_EQ(result.value().rows()[0][1].AsInt(), 1);
}

TEST(SqlFeaturesTest, SgbOverJoinedInputs) {
  // Similarity grouping over a join result — the pipeline composition the
  // paper motivates (impedance mismatch avoided).
  Database db;
  auto pos = std::make_shared<Table>(Schema({
      Column{"id", DataType::kInt64, ""},
      Column{"x", DataType::kDouble, ""},
      Column{"y", DataType::kDouble, ""},
  }));
  auto meta = std::make_shared<Table>(Schema({
      Column{"id", DataType::kInt64, ""},
      Column{"active", DataType::kInt64, ""},
  }));
  const double coords[][2] = {{0, 0}, {0.5, 0}, {9, 9}, {9.5, 9}};
  for (int64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(pos->Append({Value::Int(i), Value::Double(coords[i][0]),
                             Value::Double(coords[i][1])})
                    .ok());
    ASSERT_TRUE(meta->Append({Value::Int(i), Value::Int(i == 3 ? 0 : 1)})
                    .ok());
  }
  db.Register("pos", pos);
  db.Register("meta", meta);
  const auto result = db.Query(
      "SELECT count(*) FROM pos, meta "
      "WHERE pos.id = meta.id AND active = 1 "
      "GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().NumRows(), 2u);  // {0,1} and {2}
}

TEST(SqlFeaturesTest, ScalarFunctions) {
  const Database db = OrdersDb();
  const auto result = db.Query(
      "SELECT abs(10 - price), sqrt(price * price), floor(price / 15), "
      "ceil(price / 15) FROM orders WHERE id = 2");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_DOUBLE_EQ(result.value().rows()[0][0].AsDouble(), 10.0);
  EXPECT_DOUBLE_EQ(result.value().rows()[0][1].AsDouble(), 20.0);
  EXPECT_DOUBLE_EQ(result.value().rows()[0][2].AsDouble(), 1.0);
  EXPECT_DOUBLE_EQ(result.value().rows()[0][3].AsDouble(), 2.0);
  EXPECT_FALSE(db.Query("SELECT abs(1, 2) FROM orders").ok());
}

TEST(SqlFeaturesTest, SimilarityJoinViaDistancePredicate) {
  // An ε-join written as a theta-join: dist_l2(...) <= ε. The planner
  // falls back to a nested-loop join with the distance predicate.
  Database db;
  auto stations = std::make_shared<Table>(Schema({
      Column{"sid", DataType::kInt64, ""},
      Column{"sx", DataType::kDouble, ""},
      Column{"sy", DataType::kDouble, ""},
  }));
  auto incidents = std::make_shared<Table>(Schema({
      Column{"iid", DataType::kInt64, ""},
      Column{"ix", DataType::kDouble, ""},
      Column{"iy", DataType::kDouble, ""},
  }));
  ASSERT_TRUE(stations->Append({Value::Int(1), Value::Double(0),
                                Value::Double(0)})
                  .ok());
  ASSERT_TRUE(stations->Append({Value::Int(2), Value::Double(10),
                                Value::Double(0)})
                  .ok());
  ASSERT_TRUE(incidents->Append({Value::Int(100), Value::Double(0.5),
                                 Value::Double(0.5)})
                  .ok());
  ASSERT_TRUE(incidents->Append({Value::Int(200), Value::Double(9),
                                 Value::Double(1)})
                  .ok());
  ASSERT_TRUE(incidents->Append({Value::Int(300), Value::Double(5),
                                 Value::Double(5)})
                  .ok());
  db.Register("stations", stations);
  db.Register("incidents", incidents);

  const auto result = db.Query(
      "SELECT sid, iid FROM stations, incidents "
      "WHERE dist_l2(sx, sy, ix, iy) <= 2 ORDER BY sid, iid");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().NumRows(), 2u);
  EXPECT_EQ(result.value().rows()[0][0].AsInt(), 1);
  EXPECT_EQ(result.value().rows()[0][1].AsInt(), 100);
  EXPECT_EQ(result.value().rows()[1][0].AsInt(), 2);
  EXPECT_EQ(result.value().rows()[1][1].AsInt(), 200);
}

TEST(SqlFeaturesTest, CountDistinctAndStatsAggregates) {
  const Database db = OrdersDb();
  const auto result = db.Query(
      "SELECT count(DISTINCT region), stddev(price), var(price) "
      "FROM orders");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().rows()[0][0].AsInt(), 2);
  // prices 10..50 step 10: sample variance 250, stddev sqrt(250).
  EXPECT_NEAR(result.value().rows()[0][2].AsDouble(), 250.0, 1e-9);
  EXPECT_NEAR(result.value().rows()[0][1].AsDouble(), std::sqrt(250.0),
              1e-9);
  // DISTINCT outside count() is rejected.
  EXPECT_FALSE(db.Query("SELECT sum(DISTINCT price) FROM orders").ok());
}

TEST(SqlFeaturesTest, ThreeDimensionalSimilarityGroupBy) {
  // GROUP BY with three columns routes to the 3-D SGB operators (the
  // paper's "two and three dimensional" scope).
  Database db;
  auto t = std::make_shared<Table>(Schema({
      Column{"x", DataType::kDouble, ""},
      Column{"y", DataType::kDouble, ""},
      Column{"z", DataType::kDouble, ""},
  }));
  const double rows[][3] = {
      {0, 0, 0}, {0.4, 0, 0}, {0, 0.4, 0.4},   // one 3-D clique
      {5, 5, 5}, {5.4, 5, 5},                  // another
      {0, 0, 9},                               // near in xy, far in z
  };
  for (const auto& r : rows) {
    ASSERT_TRUE(t->Append({Value::Double(r[0]), Value::Double(r[1]),
                           Value::Double(r[2])})
                    .ok());
  }
  db.Register("t", t);

  const auto all = db.Query(
      "SELECT count(*) FROM t GROUP BY x, y, z "
      "DISTANCE-TO-ALL LINF WITHIN 0.5 ON-OVERLAP JOIN-ANY "
      "ORDER BY 1 DESC");
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  ASSERT_EQ(all.value().NumRows(), 3u);
  EXPECT_EQ(all.value().rows()[0][0].AsInt(), 3);
  EXPECT_EQ(all.value().rows()[1][0].AsInt(), 2);
  EXPECT_EQ(all.value().rows()[2][0].AsInt(), 1);

  const auto any = db.Query(
      "SELECT count(*) FROM t GROUP BY x, y, z "
      "DISTANCE-TO-ANY L2 WITHIN 0.6");
  ASSERT_TRUE(any.ok());
  EXPECT_EQ(any.value().NumRows(), 3u);

  // Four grouping columns remain unsupported.
  const auto four = db.Query(
      "SELECT count(*) FROM t GROUP BY x, y, z, x "
      "DISTANCE-TO-ANY L2 WITHIN 0.6");
  EXPECT_EQ(four.status().code(), Status::Code::kBindError);
}

}  // namespace
}  // namespace sgb::sql
