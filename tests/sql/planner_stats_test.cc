// Cost-based planning end to end (docs/PLANNER.md): ANALYZE builds table
// statistics, the planner's cost model consumes them to pick SGB tiers and
// group-by strategies, EXPLAIN / EXPLAIN ANALYZE surface the estimates,
// and the catalog version bump keeps session plan caches honest. The
// accuracy gates here are the PR's acceptance criteria: row estimates
// within 2x of actuals on stock workloads once ANALYZE has run.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "engine/executor.h"
#include "obs/query_log.h"
#include "stats/table_stats.h"

namespace sgb::engine {
namespace {

Database UniformPointsDb(size_t n, double extent = 10.0, uint64_t seed = 7) {
  Database db;
  auto pts = std::make_shared<Table>(Schema({
      Column{"x", DataType::kDouble, ""},
      Column{"y", DataType::kDouble, ""},
  }));
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(pts->Append({Value::Double(rng.NextUniform(0, extent)),
                             Value::Double(rng.NextUniform(0, extent))})
                    .ok());
  }
  db.Register("pts", pts);
  return db;
}

/// First "<key>=<integer>" occurrence in `text`, or -1.
int64_t ExtractInt(const std::string& text, const std::string& key) {
  const size_t pos = text.find(key + "=");
  if (pos == std::string::npos) return -1;
  return std::strtoll(text.c_str() + pos + key.size() + 1, nullptr, 10);
}

obs::QueryLogEntry LastEntryFor(const Database& db, const std::string& text) {
  obs::QueryLogEntry found;
  bool any = false;
  for (const obs::QueryLogEntry& e : db.query_log().Entries()) {
    if (e.text == text) {
      found = e;
      any = true;
    }
  }
  EXPECT_TRUE(any) << "no query log entry for: " << text;
  return found;
}

// ---- ANALYZE ------------------------------------------------------------

TEST(AnalyzeTest, PopulatesCatalogStatsAndSystemStats) {
  Database db = UniformPointsDb(400);
  const auto ack = db.Query("ANALYZE pts");
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  EXPECT_EQ(ack.value().rows()[0][0].AsString(), "ANALYZE 1 table, 400 rows");

  const stats::TableStatsPtr ts = db.catalog().GetStats("pts");
  ASSERT_NE(ts, nullptr);
  EXPECT_EQ(ts->row_count, 400u);
  ASSERT_TRUE(ts->grid.has_value());

  const auto rows = db.Query(
      "SELECT table_name, column_name, row_count, ndv, grid_axis "
      "FROM system.stats ORDER BY column_name");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows.value().NumRows(), 2u);  // x and y
  EXPECT_EQ(rows.value().rows()[0][0].AsString(), "pts");
  EXPECT_EQ(rows.value().rows()[0][1].AsString(), "x");
  EXPECT_EQ(rows.value().rows()[0][2].AsInt(), 400);
  EXPECT_GT(rows.value().rows()[0][3].AsInt(), 300);  // NDV ~ 400 doubles
  EXPECT_EQ(rows.value().rows()[0][4].AsInt(), 1);    // grid x axis
  EXPECT_EQ(rows.value().rows()[1][4].AsInt(), 2);    // grid y axis
}

TEST(AnalyzeTest, BareAnalyzeCoversEveryStoredTable) {
  Database db = UniformPointsDb(100);
  ASSERT_TRUE(db.Query("CREATE TABLE ticks (v INT)").ok());
  ASSERT_TRUE(db.Query("INSERT INTO ticks VALUES (1), (2), (3)").ok());
  const auto ack = db.Query("ANALYZE");
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  EXPECT_EQ(ack.value().rows()[0][0].AsString(), "ANALYZE 2 tables, 103 rows");
  EXPECT_NE(db.catalog().GetStats("pts"), nullptr);
  EXPECT_NE(db.catalog().GetStats("ticks"), nullptr);
}

TEST(AnalyzeTest, UnknownAndVirtualTablesError) {
  Database db = UniformPointsDb(10);
  EXPECT_EQ(db.Query("ANALYZE missing").status().code(),
            Status::Code::kNotFound);
  EXPECT_EQ(db.Query("ANALYZE system.tables").status().code(),
            Status::Code::kInvalidArgument);
}

// ---- EXPLAIN surface ----------------------------------------------------

TEST(CostModelTest, ExplainGainsEstimatesOnlyAfterAnalyze) {
  Database db = UniformPointsDb(500);
  const std::string q =
      "SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ALL L2 WITHIN 0.4";

  const auto before = db.Explain(q);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before.value().find("est_rows="), std::string::npos);
  EXPECT_NE(before.value().find("tier=indexed"), std::string::npos);

  ASSERT_TRUE(db.Query("ANALYZE pts").ok());
  const auto after = db.Explain(q);
  ASSERT_TRUE(after.ok());
  EXPECT_NE(after.value().find("est_rows="), std::string::npos);
  EXPECT_NE(after.value().find("est_bytes="), std::string::npos);
  EXPECT_NE(after.value().find("tier="), std::string::npos);
  EXPECT_NE(after.value().find("est_pairs="), std::string::npos);
}

TEST(CostModelTest, FilterSelectivityShrinksDownstreamEstimates) {
  Database db = UniformPointsDb(1000);
  ASSERT_TRUE(db.Query("ANALYZE pts").ok());
  const auto plan = db.Explain("SELECT x FROM pts WHERE x < 2.5");
  ASSERT_TRUE(plan.ok());
  // Scan estimates 1000 rows; the x < 2.5 filter keeps ~a quarter.
  const size_t scan_pos = plan.value().find("TableScan");
  const size_t filter_pos = plan.value().find("Filter");
  ASSERT_NE(scan_pos, std::string::npos);
  ASSERT_NE(filter_pos, std::string::npos);
  const int64_t scan_rows = ExtractInt(plan.value().substr(scan_pos),
                                       "est_rows");
  const int64_t filter_rows = ExtractInt(plan.value().substr(filter_pos),
                                         "est_rows");
  EXPECT_EQ(scan_rows, 1000);
  EXPECT_GT(filter_rows, 100);
  EXPECT_LT(filter_rows, 500);
}

// ---- Tier policy --------------------------------------------------------

TEST(CostModelTest, ForcedTiersShowUpInExplainAndInvalidValueErrors) {
  Database db = UniformPointsDb(200);
  const std::string q =
      "SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ALL L2 WITHIN 0.4";
  ASSERT_TRUE(db.Query("SET sgb_tier = all_pairs").ok());
  EXPECT_NE(db.Explain(q).value().find("tier=all-pairs"), std::string::npos);
  ASSERT_TRUE(db.Query("SET sgb_tier = bounds").ok());
  EXPECT_NE(db.Explain(q).value().find("tier=bounds"), std::string::npos);
  ASSERT_TRUE(db.Query("SET sgb_tier = auto").ok());
  EXPECT_EQ(db.Query("SET sgb_tier = warp").status().code(),
            Status::Code::kInvalidArgument);
}

TEST(CostModelTest, AutoTierMatchesEveryForcedTierBitForBit) {
  Database db = UniformPointsDb(600, 10.0, 17);
  ASSERT_TRUE(db.Query("ANALYZE pts").ok());
  for (const char* kind : {"DISTANCE-TO-ALL", "DISTANCE-TO-ANY"}) {
    const std::string q = std::string("SELECT group_id, count(*) FROM pts "
                                      "GROUP BY x, y ") +
                          kind + " L2 WITHIN 0.5";
    ASSERT_TRUE(db.Query("SET sgb_tier = auto").ok());
    const auto auto_result = db.Query(q);
    ASSERT_TRUE(auto_result.ok()) << auto_result.status().ToString();
    for (const char* forced : {"all_pairs", "bounds", "indexed"}) {
      ASSERT_TRUE(db.Query(std::string("SET sgb_tier = ") + forced).ok());
      const auto result = db.Query(q);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      ASSERT_EQ(result.value().NumRows(), auto_result.value().NumRows())
          << kind << " tier=" << forced;
      for (size_t r = 0; r < result.value().NumRows(); ++r) {
        for (size_t c = 0; c < 2; ++c) {
          EXPECT_EQ(result.value().rows()[r][c].AsInt(),
                    auto_result.value().rows()[r][c].AsInt())
              << kind << " tier=" << forced << " row " << r;
        }
      }
    }
    ASSERT_TRUE(db.Query("SET sgb_tier = auto").ok());
  }
}

// ---- Group-by strategy --------------------------------------------------

TEST(CostModelTest, SortStrategyMatchesHashAndAutoPicksByDensity) {
  Database db;
  auto t = std::make_shared<Table>(Schema({
      Column{"k", DataType::kInt64, ""},
      Column{"v", DataType::kDouble, ""},
  }));
  Rng rng(3);
  // 2000 rows, ~all-distinct keys: the high-group-density regime where the
  // sort aggregate beats the hash table's per-group overhead.
  for (int64_t i = 0; i < 2000; ++i) {
    ASSERT_TRUE(
        t->Append({Value::Int(i), Value::Double(rng.NextDouble())}).ok());
  }
  db.Register("wide", t);
  const std::string q =
      "SELECT k, count(*), sum(v) FROM wide GROUP BY k ORDER BY k";

  ASSERT_TRUE(db.Query("SET agg_strategy = hash").ok());
  const auto hash_result = db.Query(q);
  ASSERT_TRUE(hash_result.ok());
  EXPECT_NE(db.Explain(q).value().find("HashAggregate"), std::string::npos);

  ASSERT_TRUE(db.Query("SET agg_strategy = sort").ok());
  const auto sort_result = db.Query(q);
  ASSERT_TRUE(sort_result.ok());
  EXPECT_NE(db.Explain(q).value().find("SortAggregate"), std::string::npos);

  ASSERT_EQ(sort_result.value().NumRows(), hash_result.value().NumRows());
  for (size_t r = 0; r < sort_result.value().NumRows(); ++r) {
    EXPECT_EQ(sort_result.value().rows()[r][0].AsInt(),
              hash_result.value().rows()[r][0].AsInt());
  }

  // Auto keeps hash even after ANALYZE: calibration measured hash faster
  // than sort up to 1M all-distinct keys, so density alone never flips the
  // strategy (docs/PLANNER.md).
  ASSERT_TRUE(db.Query("SET agg_strategy = auto").ok());
  EXPECT_NE(db.Explain(q).value().find("HashAggregate"), std::string::npos);
  ASSERT_TRUE(db.Query("ANALYZE wide").ok());
  EXPECT_NE(db.Explain(q).value().find("HashAggregate"), std::string::npos);

  // Sort is the bounded-memory strategy: it takes over only when the
  // predicted hash table (est_groups x 128B = 256 KB here) would crowd the
  // session memory budget.
  db.set_memory_budget_bytes(400 * 1000);
  EXPECT_NE(db.Explain(q).value().find("SortAggregate"), std::string::npos);
  db.set_memory_budget_bytes(0);

  const auto auto_result = db.Query(q);
  ASSERT_TRUE(auto_result.ok());
  ASSERT_EQ(auto_result.value().NumRows(), hash_result.value().NumRows());
}

TEST(CostModelTest, SpillDisablesAutoSortStrategy) {
  Database db;
  auto t = std::make_shared<Table>(Schema({Column{"k", DataType::kInt64, ""}}));
  for (int64_t i = 0; i < 2000; ++i) {
    ASSERT_TRUE(t->Append({Value::Int(i)}).ok());
  }
  db.Register("wide", t);
  ASSERT_TRUE(db.Query("ANALYZE wide").ok());
  const std::string q = "SELECT k, count(*) FROM wide GROUP BY k";
  // Budget pressure makes auto prefer the bounded-memory sort aggregate...
  db.set_memory_budget_bytes(400 * 1000);
  EXPECT_NE(db.Explain(q).value().find("SortAggregate"), std::string::npos);
  // ...but the sort aggregate cannot spill; with spilling on, auto must
  // fall back to the (spillable) hash aggregate.
  db.set_spill_enabled(true);
  EXPECT_NE(db.Explain(q).value().find("HashAggregate"), std::string::npos);
}

// ---- Estimate accuracy (acceptance gate) --------------------------------

TEST(CostModelTest, ExplainAnalyzeRowEstimatesWithinTwoXAfterAnalyze) {
  Database db = UniformPointsDb(2000, 10.0, 23);
  ASSERT_TRUE(db.Query("ANALYZE pts").ok());
  const std::vector<std::string> workloads = {
      "SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ALL L2 WITHIN 0.4",
      "SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 0.2",
      "SELECT count(*) FROM pts GROUP BY x, y "
      "DISTANCE-TO-ALL LINF WITHIN 0.3",
  };
  for (const std::string& q : workloads) {
    const auto text = db.ExplainAnalyze(q);
    ASSERT_TRUE(text.ok()) << text.status().ToString();
    const size_t sgb_pos = text.value().find("SimilarityGroupBy");
    ASSERT_NE(sgb_pos, std::string::npos) << text.value();
    const std::string line =
        text.value().substr(sgb_pos, text.value().find('\n', sgb_pos));
    const int64_t actual = ExtractInt(line, "rows");
    const int64_t est = ExtractInt(line, "est_rows");
    ASSERT_GT(actual, 0) << line;
    ASSERT_GT(est, 0) << line;
    EXPECT_LE(est, 2 * actual) << q << "\n" << line;
    EXPECT_GE(2 * est, actual) << q << "\n" << line;
    // The operator also publishes the drift pair as extras.
    EXPECT_NE(line.find("est_groups="), std::string::npos) << line;
  }
}

TEST(CostModelTest, HashAggregateSeedsReservationFromStats) {
  Database db = UniformPointsDb(1000, 500.0, 29);
  ASSERT_TRUE(db.Query("ANALYZE pts").ok());
  // Wide extent ⇒ x values ~all distinct; group count estimate ~NDV but the
  // 1000-row input stays under the sort threshold, so hash runs seeded.
  const auto text =
      db.ExplainAnalyze("SELECT x, count(*) FROM pts GROUP BY x LIMIT 5");
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  const size_t pos = text.value().find("HashAggregate");
  ASSERT_NE(pos, std::string::npos);
  const std::string line =
      text.value().substr(pos, text.value().find('\n', pos));
  const int64_t est = ExtractInt(line, "est_groups");
  const int64_t actual = ExtractInt(line, "groups");
  ASSERT_GT(est, 0) << line;
  ASSERT_GT(actual, 0) << line;
  EXPECT_LE(est, 2 * actual) << line;
  EXPECT_GE(2 * est, actual) << line;
}

// ---- Plan cache & catalog version --------------------------------------

TEST(PlanCacheStatsTest, AnalyzeInvalidatesCachedPlans) {
  Database db = UniformPointsDb(300);
  Session& s = db.default_session();
  const std::string q = "SELECT count(*) FROM pts";
  ASSERT_TRUE(db.Query(q).ok());
  ASSERT_TRUE(db.Query(q).ok());
  EXPECT_EQ(s.plan_cache_hits(), 1u);

  // ANALYZE bumps the catalog version: the cached plan (built without
  // statistics) must be replanned, not reused.
  ASSERT_TRUE(db.Query("ANALYZE pts").ok());
  ASSERT_TRUE(db.Query(q).ok());
  EXPECT_EQ(s.plan_cache_hits(), 1u);  // miss: replanned against stats
  ASSERT_TRUE(db.Query(q).ok());
  EXPECT_EQ(s.plan_cache_hits(), 2u);  // steady state again
  // The replanned entry carries the cost-model estimate into the log.
  EXPECT_GT(LastEntryFor(db, q).est_rows, 0);
}

TEST(PlanCacheStatsTest, InsertGrowthRefreshesStatsAndBumpsVersion) {
  Database db;
  ASSERT_TRUE(db.Query("CREATE TABLE ticks (v INT)").ok());
  std::string values = "(0)";
  for (int i = 1; i < 20; ++i) values += ", (" + std::to_string(i) + ")";
  ASSERT_TRUE(db.Query("INSERT INTO ticks VALUES " + values).ok());
  ASSERT_TRUE(db.Query("ANALYZE ticks").ok());
  const uint64_t analyzed_version = db.catalog().version();

  // Below 10% growth (1 of 20 analyzed rows): row count tracks, version
  // stays, cached plans live on.
  ASSERT_TRUE(db.Query("INSERT INTO ticks VALUES (20)").ok());
  EXPECT_EQ(db.catalog().version(), analyzed_version);

  // Cumulative growth reaching 10% of analyzed rows invalidates them.
  ASSERT_TRUE(db.Query("INSERT INTO ticks VALUES (21)").ok());
  EXPECT_GT(db.catalog().version(), analyzed_version);
  const stats::TableStatsPtr ts = db.catalog().GetStats("ticks");
  ASSERT_NE(ts, nullptr);
  EXPECT_EQ(ts->row_count, 22u);
  EXPECT_EQ(ts->analyzed_rows, 20u);
}

// ---- Query log ----------------------------------------------------------

TEST(QueryLogStatsTest, LogCarriesEstimateTierAndStrategy) {
  Database db = UniformPointsDb(500);
  ASSERT_TRUE(db.Query("ANALYZE pts").ok());

  const std::string sgb =
      "SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ALL L2 WITHIN 0.4";
  ASSERT_TRUE(db.Query(sgb).ok());
  const obs::QueryLogEntry e = LastEntryFor(db, sgb);
  EXPECT_EQ(e.tier, "sgb-all");
  EXPECT_GT(e.est_rows, 0);
  EXPECT_TRUE(e.strategy == "all-pairs" || e.strategy == "bounds" ||
              e.strategy == "indexed")
      << e.strategy;

  const std::string agg = "SELECT x, count(*) FROM pts GROUP BY x";
  ASSERT_TRUE(db.Query(agg).ok());
  const obs::QueryLogEntry a = LastEntryFor(db, agg);
  EXPECT_EQ(a.tier, "none");
  EXPECT_TRUE(a.strategy == "hash" || a.strategy == "sort") << a.strategy;
  EXPECT_GT(a.est_rows, 0);

  // The columns are SQL-visible through system.query_log.
  const auto rows = db.Query(
      "SELECT strategy, est_rows FROM system.query_log "
      "WHERE tier = 'sgb-all'");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_GE(rows.value().NumRows(), 1u);
  EXPECT_GT(rows.value().rows()[0][1].AsInt(), 0);
}

}  // namespace
}  // namespace sgb::engine
