// SQL-queryable introspection (docs/OBSERVABILITY.md): the system.*
// virtual tables compose with the ordinary SELECT pipeline — filters,
// aggregates, ORDER BY, even similarity grouping — and the query log
// records exactly one entry per executed statement with an honest status,
// whatever the outcome.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/random.h"
#include "engine/executor.h"
#include "obs/metrics.h"
#include "obs/query_log.h"

namespace sgb::engine {
namespace {

constexpr char kSgbQuery[] =
    "SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 0.4";

Database PointsDb(size_t n, double extent = 10.0, uint64_t seed = 7) {
  Database db;
  auto pts = std::make_shared<Table>(Schema({
      Column{"x", DataType::kDouble, ""},
      Column{"y", DataType::kDouble, ""},
  }));
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(pts->Append({Value::Double(rng.NextUniform(0, extent)),
                             Value::Double(rng.NextUniform(0, extent))})
                    .ok());
  }
  db.Register("pts", pts);
  return db;
}

/// The retained log entry for `text`, failing the test when the count
/// differs from one — each statement must log exactly once.
obs::QueryLogEntry EntryFor(const Database& db, const std::string& text) {
  obs::QueryLogEntry found;
  int matches = 0;
  for (const obs::QueryLogEntry& e : db.query_log().Entries()) {
    if (e.text == text) {
      found = e;
      ++matches;
    }
  }
  EXPECT_EQ(matches, 1) << "entries for: " << text;
  return found;
}

// ---- Query log ----------------------------------------------------------

TEST(SystemTablesTest, SuccessfulQueryLogsOkEntryWithCosts) {
  Database db = PointsDb(500);
  ASSERT_TRUE(db.Query(kSgbQuery).ok());

  const obs::QueryLogEntry e = EntryFor(db, kSgbQuery);
  EXPECT_EQ(e.status, "ok");
  EXPECT_EQ(e.admission, "admitted");
  EXPECT_EQ(e.tier, "sgb-any");
  EXPECT_EQ(e.rows_in, 500);
  // One count(*) row per similarity group.
  EXPECT_GT(e.rows_out, 0);
  EXPECT_GT(e.wall_micros, 0);
  EXPECT_GT(e.exec_micros, 0);
  EXPECT_GE(e.wall_micros, e.exec_micros);
  EXPECT_GT(e.peak_memory_bytes, 0);
  EXPECT_GT(e.estimated_bytes, 0);
  EXPECT_FALSE(e.slow);
}

TEST(SystemTablesTest, EveryOutcomeLogsExactlyOneEntry) {
  Database db = PointsDb(30000);

  // timeout
  db.set_timeout_ms(1);
  EXPECT_EQ(db.Query(kSgbQuery).status().code(),
            Status::Code::kDeadlineExceeded);
  EXPECT_EQ(EntryFor(db, kSgbQuery).status, "timeout");
  db.set_timeout_ms(0);

  // mem_exceeded (distinct text so EntryFor sees exactly one match)
  db.set_memory_budget_bytes(1024);
  const std::string budget_query =
      "SELECT count(*) FROM pts "
      "GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 0.5";
  EXPECT_EQ(db.Query(budget_query).status().code(),
            Status::Code::kResourceExhausted);
  EXPECT_EQ(EntryFor(db, budget_query).status, "mem_exceeded");
  db.set_memory_budget_bytes(0);

  // shed: a 1-byte admission headroom rejects any real estimate up front.
  db.set_admission_mode(AdmissionMode::kShed);
  db.set_admission_budget_bytes(1);
  const std::string shed_query = "SELECT count(*) FROM pts";
  EXPECT_EQ(db.Query(shed_query).status().code(),
            Status::Code::kResourceExhausted);
  const obs::QueryLogEntry shed = EntryFor(db, shed_query);
  EXPECT_EQ(shed.status, "shed");
  EXPECT_EQ(shed.admission, "shed");
  db.set_admission_mode(AdmissionMode::kOff);
  db.set_admission_budget_bytes(0);

  // error (unknown table): fails at plan time, still logged.
  const std::string bad_query = "SELECT count(*) FROM nonexistent";
  EXPECT_FALSE(db.Query(bad_query).ok());
  EXPECT_EQ(EntryFor(db, bad_query).status, "error");

  // error (fault injection): a planted fault surfaces as one error entry.
  FaultRegistry::Global().ArmNthHit("index.grid.build", 1);
  const std::string fault_query =
      std::string(kSgbQuery) + " PARALLEL 2";
  EXPECT_FALSE(db.Query(fault_query).ok());
  EXPECT_EQ(EntryFor(db, fault_query).status, "error");
  FaultRegistry::Global().Reset();
}

TEST(SystemTablesTest, CancelledQueryLogsCancelledEntry) {
  Database db = PointsDb(60000, 40.0);
  std::atomic<bool> done{false};
  Status status = Status::OK();
  std::thread runner([&] {
    status = db.Query(kSgbQuery).status();
    done.store(true);
  });
  while (!done.load()) {
    db.Cancel();
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  runner.join();
  ASSERT_EQ(status.code(), Status::Code::kCancelled) << status.ToString();
  EXPECT_EQ(EntryFor(db, kSgbQuery).status, "cancelled");
}

TEST(SystemTablesTest, SpilledQueryLogsSpillTotals) {
  Database db;
  auto table = std::make_shared<Table>(Schema({
      Column{"k", DataType::kInt64, ""},
      Column{"payload", DataType::kString, ""},
  }));
  for (size_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(table
                    ->Append({Value::Int(static_cast<int64_t>(i)),
                              Value::Str(std::string(64, 'x'))})
                    .ok());
  }
  db.Register("ints", table);
  db.set_memory_budget_bytes(180000);
  db.set_spill_enabled(true);
  const std::string query = "SELECT count(*) FROM ints GROUP BY k";
  ASSERT_TRUE(db.Query(query).ok());

  const obs::QueryLogEntry e = EntryFor(db, query);
  EXPECT_EQ(e.status, "ok");
  EXPECT_GT(e.spill_events, 0);
  EXPECT_GT(e.spill_bytes, 0);
}

TEST(SystemTablesTest, SlowQueryFlaggedAndCounted) {
  Database db = PointsDb(2000);
  const uint64_t slow_before =
      obs::MetricsRegistry::Global().GetCounter("query.slow").value();
  ASSERT_TRUE(db.Query("SET slow_query_micros = 1").ok());
  ASSERT_TRUE(db.Query(kSgbQuery).ok());
  EXPECT_TRUE(EntryFor(db, kSgbQuery).slow);
  EXPECT_GT(obs::MetricsRegistry::Global().GetCounter("query.slow").value(),
            slow_before);

  // With the threshold lifted the next run is not flagged.
  ASSERT_TRUE(db.Query("SET slow_query_micros = 0").ok());
  const std::string fast = "SELECT count(*) FROM pts";
  ASSERT_TRUE(db.Query(fast).ok());
  EXPECT_FALSE(EntryFor(db, fast).slow);
}

TEST(SystemTablesTest, SetAndExplainStatementsAreNotLogged) {
  Database db = PointsDb(10);
  ASSERT_TRUE(db.Query("SET timeout = 0").ok());
  ASSERT_TRUE(db.Query("EXPLAIN SELECT count(*) FROM pts").ok());
  for (const obs::QueryLogEntry& e : db.query_log().Entries()) {
    EXPECT_EQ(e.text.find("SET"), std::string::npos) << e.text;
    EXPECT_EQ(e.text.find("EXPLAIN SELECT"), std::string::npos) << e.text;
  }
}

// ---- system.query_log via SQL -------------------------------------------

TEST(SystemTablesTest, QueryLogGroupByStatusAfterMixedWorkload) {
  Database db = PointsDb(30000);
  // ok
  ASSERT_TRUE(db.Query("SELECT count(*) FROM pts").ok());
  // timeout
  db.set_timeout_ms(1);
  EXPECT_FALSE(db.Query(kSgbQuery).ok());
  db.set_timeout_ms(0);
  // mem_exceeded
  db.set_memory_budget_bytes(1024);
  EXPECT_FALSE(db.Query(kSgbQuery).ok());
  db.set_memory_budget_bytes(0);
  // shed
  db.set_admission_mode(AdmissionMode::kShed);
  db.set_admission_budget_bytes(1);
  EXPECT_FALSE(db.Query("SELECT count(*) FROM pts WHERE x > 0").ok());
  db.set_admission_mode(AdmissionMode::kOff);
  db.set_admission_budget_bytes(0);
  // error
  EXPECT_FALSE(db.Query("SELECT count(*) FROM no_such_table").ok());

  const auto result = db.Query(
      "SELECT status, count(*) AS n FROM system.query_log "
      "GROUP BY status ORDER BY status");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::map<std::string, int64_t> by_status;
  for (const Row& row : result.value().rows()) {
    by_status[row[0].AsString()] = row[1].AsInt();
  }
  EXPECT_EQ(by_status["ok"], 1);
  EXPECT_EQ(by_status["timeout"], 1);
  EXPECT_EQ(by_status["mem_exceeded"], 1);
  EXPECT_EQ(by_status["shed"], 1);
  EXPECT_EQ(by_status["error"], 1);
}

TEST(SystemTablesTest, QueryLogComposesWithFiltersAndProjection) {
  Database db = PointsDb(100);
  ASSERT_TRUE(db.Query("SELECT count(*) FROM pts").ok());
  ASSERT_TRUE(db.Query(kSgbQuery).ok());

  const auto tiers = db.Query(
      "SELECT query, tier FROM system.query_log WHERE tier = 'sgb-any'");
  ASSERT_TRUE(tiers.ok()) << tiers.status().ToString();
  ASSERT_EQ(tiers.value().NumRows(), 1u);
  EXPECT_EQ(tiers.value().rows()[0][0].AsString(), kSgbQuery);

  const auto slow = db.Query(
      "SELECT count(*) FROM system.query_log WHERE wall_micros < 0");
  ASSERT_TRUE(slow.ok());
  EXPECT_EQ(slow.value().rows()[0][0].AsInt(), 0);
}

TEST(SystemTablesTest, OperatorStatsJoinableByQueryId) {
  Database db = PointsDb(200);
  ASSERT_TRUE(db.Query(kSgbQuery).ok());
  const obs::QueryLogEntry e = EntryFor(db, kSgbQuery);

  const auto ops = db.Query(
      "SELECT op_index, operator, rows FROM system.operator_stats "
      "WHERE query_id = " +
      std::to_string(e.id) + " ORDER BY op_index");
  ASSERT_TRUE(ops.ok()) << ops.status().ToString();
  ASSERT_GE(ops.value().NumRows(), 2u);
  bool saw_scan = false;
  for (const Row& row : ops.value().rows()) {
    if (row[1].AsString() == "TableScan") {
      saw_scan = true;
      EXPECT_EQ(row[2].AsInt(), 200);
    }
  }
  EXPECT_TRUE(saw_scan);
}

// ---- system.metrics / system.tables -------------------------------------

TEST(SystemTablesTest, MetricsTableListsKindsWithStableOrder) {
  Database db = PointsDb(100);
  ASSERT_TRUE(db.Query(kSgbQuery).ok());  // touch counters + histograms

  const auto result =
      db.Query("SELECT name, kind FROM system.metrics");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GT(result.value().NumRows(), 0u);

  // Counters, then gauges, then histograms; name-sorted within each kind.
  const std::vector<std::string> kind_order = {"counter", "gauge",
                                               "histogram"};
  size_t kind_idx = 0;
  std::string prev_name;
  for (const Row& row : result.value().rows()) {
    const std::string kind = row[1].AsString();
    while (kind_idx < kind_order.size() && kind != kind_order[kind_idx]) {
      ++kind_idx;
      prev_name.clear();
    }
    ASSERT_LT(kind_idx, kind_order.size()) << "unexpected kind " << kind;
    if (!prev_name.empty()) {
      EXPECT_LE(prev_name, row[0].AsString());
    }
    prev_name = row[0].AsString();
  }

  // A second scan returns the identical listing (determinism guard) —
  // modulo counters the scan itself bumps, the names and order match.
  const auto again = db.Query("SELECT name, kind FROM system.metrics");
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again.value().NumRows(), result.value().NumRows());
  for (size_t i = 0; i < result.value().NumRows(); ++i) {
    EXPECT_EQ(result.value().rows()[i][0].AsString(),
              again.value().rows()[i][0].AsString());
  }
}

TEST(SystemTablesTest, MetricsTableExposesHistogramQuantiles) {
  Database db = PointsDb(50);
  ASSERT_TRUE(db.Query("SELECT count(*) FROM pts").ok());
  const auto result = db.Query(
      "SELECT p50, p95, p99 FROM system.metrics "
      "WHERE name = 'engine.query_us'");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().NumRows(), 1u);
  const Row& row = result.value().rows()[0];
  EXPECT_LE(row[0].AsDouble(), row[1].AsDouble());
  EXPECT_LE(row[1].AsDouble(), row[2].AsDouble());
}

TEST(SystemTablesTest, TablesTableListsStoredAndVirtualTables) {
  Database db = PointsDb(25);
  const auto result = db.Query(
      "SELECT name, kind, rows FROM system.tables ORDER BY name");
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  std::map<std::string, std::string> kinds;
  int64_t pts_rows = -1;
  for (const Row& row : result.value().rows()) {
    kinds[row[0].AsString()] = row[1].AsString();
    if (row[0].AsString() == "pts") pts_rows = row[2].AsInt();
  }
  EXPECT_EQ(kinds["pts"], "table");
  EXPECT_EQ(pts_rows, 25);
  EXPECT_EQ(kinds["system.metrics"], "system");
  EXPECT_EQ(kinds["system.query_log"], "system");
  EXPECT_EQ(kinds["system.operator_stats"], "system");
  EXPECT_EQ(kinds["system.tables"], "system");
}

// ---- Determinism: observability never changes results -------------------

TEST(SystemTablesTest, TraceAndLogDoNotChangeResults) {
  Database db = PointsDb(800);
  const auto plain = db.Query(kSgbQuery);
  ASSERT_TRUE(plain.ok());

  ASSERT_TRUE(db.Query("SET trace = 1").ok());
  ASSERT_TRUE(db.Query("SET slow_query_micros = 1").ok());
  const auto traced = db.Query(kSgbQuery);
  ASSERT_TRUE(traced.ok());
  EXPECT_GT(db.trace_log().event_count(), 0u);

  ASSERT_EQ(plain.value().NumRows(), traced.value().NumRows());
  for (size_t i = 0; i < plain.value().NumRows(); ++i) {
    EXPECT_EQ(plain.value().rows()[i][0].AsInt(),
              traced.value().rows()[i][0].AsInt());
  }
}

}  // namespace
}  // namespace sgb::engine
