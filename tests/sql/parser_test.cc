#include "sql/parser.h"

#include <gtest/gtest.h>

namespace sgb::sql {
namespace {

std::unique_ptr<SelectStatement> Parse(const std::string& sql) {
  auto result = ParseSelect(sql);
  EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
  return result.ok() ? std::move(result).value() : nullptr;
}

TEST(ParserTest, MinimalSelect) {
  const auto stmt = Parse("SELECT * FROM t");
  ASSERT_NE(stmt, nullptr);
  EXPECT_TRUE(stmt->select_star);
  ASSERT_EQ(stmt->from.size(), 1u);
  EXPECT_EQ(stmt->from[0].table_name, "t");
}

TEST(ParserTest, SelectItemsWithAliases) {
  const auto stmt = Parse("SELECT a AS x, b y, c + 1 FROM t");
  ASSERT_NE(stmt, nullptr);
  ASSERT_EQ(stmt->items.size(), 3u);
  EXPECT_EQ(stmt->items[0].alias, "x");
  EXPECT_EQ(stmt->items[1].alias, "y");
  EXPECT_TRUE(stmt->items[2].alias.empty());
  EXPECT_EQ(stmt->items[2].expr->kind, ParsedExpr::Kind::kBinary);
}

TEST(ParserTest, ExpressionPrecedence) {
  const auto stmt = Parse("SELECT a + b * c FROM t");
  const ParsedExpr& e = *stmt->items[0].expr;
  ASSERT_EQ(e.kind, ParsedExpr::Kind::kBinary);
  EXPECT_EQ(e.op, engine::BinaryOp::kAdd);
  EXPECT_EQ(e.right->op, engine::BinaryOp::kMul);
}

TEST(ParserTest, ComparisonAndLogic) {
  const auto stmt =
      Parse("SELECT a FROM t WHERE a > 1 AND b <= 2 OR NOT c = 3");
  const ParsedExpr& w = *stmt->where;
  EXPECT_EQ(w.op, engine::BinaryOp::kOr);
  EXPECT_EQ(w.left->op, engine::BinaryOp::kAnd);
  EXPECT_EQ(w.right->kind, ParsedExpr::Kind::kNot);
}

TEST(ParserTest, BetweenDesugarsToConjunction) {
  const auto stmt = Parse("SELECT a FROM t WHERE a BETWEEN 1 AND 5");
  const ParsedExpr& w = *stmt->where;
  ASSERT_EQ(w.kind, ParsedExpr::Kind::kBinary);
  EXPECT_EQ(w.op, engine::BinaryOp::kAnd);
  EXPECT_EQ(w.left->op, engine::BinaryOp::kGe);
  EXPECT_EQ(w.right->op, engine::BinaryOp::kLe);
}

TEST(ParserTest, InListAndInSubquery) {
  const auto list = Parse("SELECT a FROM t WHERE a IN (1, 2, 3)");
  EXPECT_EQ(list->where->kind, ParsedExpr::Kind::kInList);
  EXPECT_EQ(list->where->args.size(), 3u);

  const auto sub = Parse("SELECT a FROM t WHERE a IN (SELECT b FROM u)");
  EXPECT_EQ(sub->where->kind, ParsedExpr::Kind::kInSubquery);
  ASSERT_NE(sub->where->subquery, nullptr);
}

TEST(ParserTest, FunctionCallsAndCountStar) {
  const auto stmt = Parse("SELECT count(*), sum(a + b), st_polygon(x, y) "
                          "FROM t GROUP BY g");
  EXPECT_TRUE(stmt->items[0].expr->star_arg);
  EXPECT_EQ(stmt->items[1].expr->args.size(), 1u);
  EXPECT_EQ(stmt->items[2].expr->args.size(), 2u);
}

TEST(ParserTest, QualifiedColumnsAndDateLiterals) {
  const auto stmt =
      Parse("SELECT r1.c_custkey FROM t WHERE d > date '1995-01-01'");
  EXPECT_EQ(stmt->items[0].expr->qualifier, "r1");
  EXPECT_EQ(stmt->items[0].expr->name, "c_custkey");
  const ParsedExpr& w = *stmt->where;
  EXPECT_EQ(w.right->kind, ParsedExpr::Kind::kLiteral);
  EXPECT_EQ(w.right->literal.AsString(), "1995-01-01");
}

TEST(ParserTest, FromSubqueryRequiresAlias) {
  EXPECT_FALSE(ParseSelect("SELECT a FROM (SELECT b FROM t)").ok());
  const auto stmt = Parse("SELECT a FROM (SELECT b FROM t) AS sub");
  ASSERT_NE(stmt->from[0].subquery, nullptr);
  EXPECT_EQ(stmt->from[0].alias, "sub");
}

TEST(ParserTest, GroupByPlain) {
  const auto stmt = Parse("SELECT count(*) FROM t GROUP BY a, b");
  EXPECT_EQ(stmt->group_by.size(), 2u);
  EXPECT_EQ(stmt->similarity.kind, SimilarityClause::Kind::kNone);
}

TEST(ParserTest, DistanceToAllClause) {
  const auto stmt = Parse(
      "SELECT count(*) FROM gps GROUP BY lat, lon "
      "DISTANCE-TO-ALL LINF WITHIN 3 ON-OVERLAP FORM-NEW-GROUP");
  EXPECT_EQ(stmt->similarity.kind, SimilarityClause::Kind::kAll);
  EXPECT_EQ(stmt->similarity.metric, geom::Metric::kLInf);
  EXPECT_DOUBLE_EQ(stmt->similarity.epsilon, 3.0);
  EXPECT_EQ(stmt->similarity.on_overlap,
            core::OverlapClause::kFormNewGroup);
}

TEST(ParserTest, Table2ShorthandSpelling) {
  // The paper's Table 2 writes: DISTANCE-ALL WITHIN e USING ltwo
  //                             on overlap join-any / form-new / eliminate.
  const auto stmt = Parse(
      "SELECT count(*) FROM t GROUP BY ab, tp "
      "DISTANCE-ALL WITHIN 0.5 USING ltwo on overlap form-new");
  EXPECT_EQ(stmt->similarity.kind, SimilarityClause::Kind::kAll);
  EXPECT_EQ(stmt->similarity.metric, geom::Metric::kL2);
  EXPECT_DOUBLE_EQ(stmt->similarity.epsilon, 0.5);
  EXPECT_EQ(stmt->similarity.on_overlap,
            core::OverlapClause::kFormNewGroup);

  const auto lone = Parse(
      "SELECT count(*) FROM t GROUP BY ab, tp "
      "DISTANCE-ANY WITHIN 0.2 USING lone");
  EXPECT_EQ(lone->similarity.kind, SimilarityClause::Kind::kAny);
  EXPECT_EQ(lone->similarity.metric, geom::Metric::kLInf);
}

TEST(ParserTest, DistanceToAnyClause) {
  const auto stmt = Parse(
      "SELECT count(*) FROM gps GROUP BY lat, lon "
      "DISTANCE-TO-ANY L2 WITHIN 3");
  EXPECT_EQ(stmt->similarity.kind, SimilarityClause::Kind::kAny);
  EXPECT_EQ(stmt->similarity.metric, geom::Metric::kL2);
}

TEST(ParserTest, ParallelClause) {
  const auto all = Parse(
      "SELECT count(*) FROM gps GROUP BY lat, lon "
      "DISTANCE-TO-ALL LINF WITHIN 3 ON-OVERLAP ELIMINATE PARALLEL 4");
  EXPECT_EQ(all->similarity.kind, SimilarityClause::Kind::kAll);
  ASSERT_TRUE(all->similarity.dop.has_value());
  EXPECT_EQ(*all->similarity.dop, 4);

  const auto any = Parse(
      "SELECT count(*) FROM gps GROUP BY lat, lon "
      "DISTANCE-TO-ANY WITHIN 3 PARALLEL 0");
  EXPECT_EQ(any->similarity.kind, SimilarityClause::Kind::kAny);
  ASSERT_TRUE(any->similarity.dop.has_value());
  EXPECT_EQ(*any->similarity.dop, 0);  // 0 = auto

  const auto unset = Parse(
      "SELECT count(*) FROM gps GROUP BY lat, lon "
      "DISTANCE-TO-ANY WITHIN 3");
  EXPECT_FALSE(unset->similarity.dop.has_value());
}

TEST(ParserTest, ParallelClauseErrors) {
  EXPECT_FALSE(ParseSelect("SELECT count(*) FROM t GROUP BY x, y "
                           "DISTANCE-TO-ANY WITHIN 3 PARALLEL").ok());
  EXPECT_FALSE(ParseSelect("SELECT count(*) FROM t GROUP BY x, y "
                           "DISTANCE-TO-ANY WITHIN 3 PARALLEL -1").ok());
  EXPECT_FALSE(ParseSelect("SELECT count(*) FROM t GROUP BY x, y "
                           "DISTANCE-TO-ANY WITHIN 3 PARALLEL 2.5").ok());
  EXPECT_FALSE(ParseSelect("SELECT count(*) FROM t GROUP BY x, y "
                           "DISTANCE-TO-ANY WITHIN 3 PARALLEL 9999").ok());
}

TEST(ParserTest, OneDimensionalClauses) {
  const auto unsup = Parse(
      "SELECT count(*) FROM t GROUP BY v "
      "MAXIMUM_ELEMENT_SEPARATION 2 MAXIMUM_GROUP_DIAMETER 6");
  EXPECT_EQ(unsup->similarity.kind, SimilarityClause::Kind::kUnsupervised);
  EXPECT_DOUBLE_EQ(*unsup->similarity.max_separation, 2.0);
  EXPECT_DOUBLE_EQ(*unsup->similarity.max_diameter, 6.0);

  const auto around = Parse(
      "SELECT count(*) FROM t GROUP BY v AROUND (0, 10, -5.5) "
      "MAXIMUM_ELEMENT_SEPARATION 4");
  EXPECT_EQ(around->similarity.kind, SimilarityClause::Kind::kAround);
  EXPECT_EQ(around->similarity.centers,
            (std::vector<double>{0, 10, -5.5}));

  const auto delim = Parse(
      "SELECT count(*) FROM t GROUP BY v DELIMITED BY (10, 20)");
  EXPECT_EQ(delim->similarity.kind, SimilarityClause::Kind::kDelimited);
  EXPECT_EQ(delim->similarity.delimiters, (std::vector<double>{10, 20}));
}

TEST(ParserTest, OrderByAndLimit) {
  const auto stmt = Parse(
      "SELECT a, b FROM t ORDER BY a DESC, 2 ASC LIMIT 10");
  ASSERT_EQ(stmt->order_by.size(), 2u);
  EXPECT_FALSE(stmt->order_by[0].ascending);
  EXPECT_TRUE(stmt->order_by[1].ascending);
  EXPECT_EQ(stmt->limit, 10u);
}

TEST(ParserTest, HavingClause) {
  const auto stmt = Parse(
      "SELECT l_orderkey FROM lineitem GROUP BY l_orderkey "
      "HAVING sum(l_quantity) > 300");
  ASSERT_NE(stmt->having, nullptr);
  EXPECT_EQ(stmt->having->op, engine::BinaryOp::kGt);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseSelect("SELECT FROM t").ok());
  EXPECT_FALSE(ParseSelect("SELECT a").ok());  // missing FROM
  EXPECT_FALSE(ParseSelect("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t GROUP BY a DISTANCE-TO-ALL "
                           "WITHIN").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t trailing garbage !").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t LIMIT 2.5").ok());
}

TEST(ParserTest, TrailingSemicolonAccepted) {
  EXPECT_NE(Parse("SELECT a FROM t;"), nullptr);
}

TEST(ParserTest, UnaryMinusAndParens) {
  const auto stmt = Parse("SELECT -(a + 2) * 3 FROM t");
  const ParsedExpr& e = *stmt->items[0].expr;
  EXPECT_EQ(e.op, engine::BinaryOp::kMul);
  EXPECT_EQ(e.left->kind, ParsedExpr::Kind::kUnaryMinus);
}

}  // namespace
}  // namespace sgb::sql
