// End-to-end SQL tests: the full pipeline (parse -> plan -> execute) over
// small hand-built tables, including the paper's Example 1 and Example 2
// queries verbatim (modulo table/column names).

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "engine/executor.h"

namespace sgb::sql {
namespace {

using engine::Column;
using engine::Database;
using engine::DataType;
using engine::Row;
using engine::Schema;
using engine::Table;
using engine::Value;

Database GpsDb() {
  Database db;
  auto gps = std::make_shared<Table>(Schema({
      Column{"gpscoor_lat", DataType::kDouble, ""},
      Column{"gpscoor_long", DataType::kDouble, ""},
      Column{"device", DataType::kInt64, ""},
  }));
  const double coords[][2] = {{3, 6}, {4, 7}, {8, 6}, {9, 7}, {6, 6.5}};
  int64_t id = 1;
  for (const auto& c : coords) {
    EXPECT_TRUE(gps->Append({Value::Double(c[0]), Value::Double(c[1]),
                             Value::Int(id++)})
                    .ok());
  }
  db.Register("gpspoints", gps);
  return db;
}

std::multiset<int64_t> CountsOf(const engine::Table& table, size_t col = 0) {
  std::multiset<int64_t> out;
  for (const Row& row : table.rows()) out.insert(row[col].AsInt());
  return out;
}

TEST(EndToEndTest, PaperExample1AllThreeOverlapClauses) {
  const Database db = GpsDb();

  const auto join_any = db.Query(
      "SELECT count(*) FROM GPSPoints "
      "GROUP BY gpscoor_lat, gpscoor_long DISTANCE-TO-ALL LINF WITHIN 3 "
      "ON-OVERLAP JOIN-ANY");
  ASSERT_TRUE(join_any.ok()) << join_any.status().ToString();
  EXPECT_EQ(CountsOf(join_any.value()), (std::multiset<int64_t>{2, 3}));

  const auto eliminate = db.Query(
      "SELECT count(*) FROM GPSPoints "
      "GROUP BY gpscoor_lat, gpscoor_long DISTANCE-TO-ALL LINF WITHIN 3 "
      "ON-OVERLAP ELIMINATE");
  ASSERT_TRUE(eliminate.ok());
  EXPECT_EQ(CountsOf(eliminate.value()), (std::multiset<int64_t>{2, 2}));

  const auto form_new = db.Query(
      "SELECT count(*) FROM GPSPoints "
      "GROUP BY gpscoor_lat, gpscoor_long DISTANCE-TO-ALL LINF WITHIN 3 "
      "ON-OVERLAP FORM-NEW-GROUP");
  ASSERT_TRUE(form_new.ok());
  EXPECT_EQ(CountsOf(form_new.value()), (std::multiset<int64_t>{1, 2, 2}));
}

TEST(EndToEndTest, PaperExample2Any) {
  const Database db = GpsDb();
  const auto result = db.Query(
      "SELECT count(*) FROM GPSPoints "
      "GROUP BY gpscoor_lat, gpscoor_long DISTANCE-TO-ANY L2 WITHIN 3");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(CountsOf(result.value()), (std::multiset<int64_t>{5}));
}

TEST(EndToEndTest, Query1PolygonPerManet) {
  // Section 5, Query 1: polygon around each connected MANET.
  const Database db = GpsDb();
  const auto result = db.Query(
      "SELECT ST_Polygon(gpscoor_lat, gpscoor_long) FROM gpspoints "
      "GROUP BY gpscoor_lat, gpscoor_long DISTANCE-TO-ANY L2 WITHIN 3");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().NumRows(), 1u);
  EXPECT_EQ(result.value().rows()[0][0].AsString().rfind("POLYGON((", 0),
            0u);
}

TEST(EndToEndTest, ListIdAggregateAndGroupId) {
  const Database db = GpsDb();
  const auto result = db.Query(
      "SELECT group_id, List_ID(device) AS ids FROM gpspoints "
      "GROUP BY gpscoor_lat, gpscoor_long DISTANCE-TO-ALL LINF WITHIN 3 "
      "ON-OVERLAP ELIMINATE ORDER BY group_id");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().NumRows(), 2u);
  EXPECT_EQ(result.value().rows()[0][1].AsString(), "{1,2}");
  EXPECT_EQ(result.value().rows()[1][1].AsString(), "{3,4}");
}

TEST(EndToEndTest, WhereFiltersBeforeGrouping) {
  const Database db = GpsDb();
  const auto result = db.Query(
      "SELECT count(*) FROM gpspoints WHERE device <= 2 "
      "GROUP BY gpscoor_lat, gpscoor_long DISTANCE-TO-ANY L2 WITHIN 3");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(CountsOf(result.value()), (std::multiset<int64_t>{2}));
}

TEST(EndToEndTest, PlainGroupByWithHavingAndOrder) {
  Database db;
  auto sales = std::make_shared<Table>(Schema({
      Column{"region", DataType::kString, ""},
      Column{"amount", DataType::kInt64, ""},
  }));
  ASSERT_TRUE(sales->Append({Value::Str("east"), Value::Int(10)}).ok());
  ASSERT_TRUE(sales->Append({Value::Str("west"), Value::Int(1)}).ok());
  ASSERT_TRUE(sales->Append({Value::Str("east"), Value::Int(5)}).ok());
  ASSERT_TRUE(sales->Append({Value::Str("north"), Value::Int(20)}).ok());
  db.Register("sales", sales);

  const auto result = db.Query(
      "SELECT region, sum(amount) AS total FROM sales "
      "GROUP BY region HAVING sum(amount) >= 10 "
      "ORDER BY total DESC");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().NumRows(), 2u);
  EXPECT_EQ(result.value().rows()[0][0].AsString(), "north");
  EXPECT_EQ(result.value().rows()[0][1].AsInt(), 20);
  EXPECT_EQ(result.value().rows()[1][0].AsString(), "east");
}

TEST(EndToEndTest, GlobalAggregateWithoutGroupBy) {
  const Database db = GpsDb();
  const auto result = db.Query(
      "SELECT count(*), min(device), max(device) FROM gpspoints");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().NumRows(), 1u);
  EXPECT_EQ(result.value().rows()[0][0].AsInt(), 5);
  EXPECT_EQ(result.value().rows()[0][1].AsInt(), 1);
  EXPECT_EQ(result.value().rows()[0][2].AsInt(), 5);
}

TEST(EndToEndTest, FromSubqueryWithJoin) {
  Database db = GpsDb();
  const auto result = db.Query(
      "SELECT count(*) FROM "
      "(SELECT device AS d FROM gpspoints WHERE device > 2) AS big, "
      "gpspoints WHERE big.d = gpspoints.device");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().rows()[0][0].AsInt(), 3);
}

TEST(EndToEndTest, InSubqueryFoldsToSet) {
  const Database db = GpsDb();
  const auto result = db.Query(
      "SELECT count(*) FROM gpspoints WHERE device IN "
      "(SELECT device FROM gpspoints WHERE device < 3)");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows()[0][0].AsInt(), 2);
}

TEST(EndToEndTest, OneDimensionalSgbThroughSql) {
  Database db;
  auto t = std::make_shared<Table>(
      Schema({Column{"v", DataType::kDouble, ""}}));
  for (const double v : {1.0, 2.0, 3.0, 50.0, 51.0}) {
    ASSERT_TRUE(t->Append({Value::Double(v)}).ok());
  }
  db.Register("vals", t);

  const auto unsup = db.Query(
      "SELECT count(*) FROM vals GROUP BY v MAXIMUM_ELEMENT_SEPARATION 2");
  ASSERT_TRUE(unsup.ok());
  EXPECT_EQ(CountsOf(unsup.value()), (std::multiset<int64_t>{2, 3}));

  const auto around = db.Query(
      "SELECT count(*) FROM vals GROUP BY v AROUND (0, 50) "
      "MAXIMUM_ELEMENT_SEPARATION 10");
  ASSERT_TRUE(around.ok());
  EXPECT_EQ(CountsOf(around.value()), (std::multiset<int64_t>{2, 3}));

  const auto delim = db.Query(
      "SELECT count(*) FROM vals GROUP BY v DELIMITED BY (10)");
  ASSERT_TRUE(delim.ok());
  EXPECT_EQ(CountsOf(delim.value()), (std::multiset<int64_t>{2, 3}));
}

TEST(EndToEndTest, ExpressionGroupingAttributes) {
  // GROUP BY over scaled expressions, as the Table 2 queries do.
  const Database db = GpsDb();
  const auto result = db.Query(
      "SELECT count(*) FROM gpspoints "
      "GROUP BY gpscoor_lat / 10, gpscoor_long / 10 "
      // 0.31 rather than 0.3: scaled doubles put a5 exactly on the ε
      // boundary, and 6/10 - 3/10 is slightly above 0.3 in binary.
      "DISTANCE-TO-ALL LINF WITHIN 0.31 ON-OVERLAP ELIMINATE");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(CountsOf(result.value()), (std::multiset<int64_t>{2, 2}));
}

TEST(EndToEndTest, LimitAppliesAfterOrdering) {
  const Database db = GpsDb();
  const auto result = db.Query(
      "SELECT device FROM gpspoints ORDER BY device DESC LIMIT 2");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().NumRows(), 2u);
  EXPECT_EQ(result.value().rows()[0][0].AsInt(), 5);
  EXPECT_EQ(result.value().rows()[1][0].AsInt(), 4);
}

TEST(EndToEndTest, ParallelClauseProducesIdenticalRows) {
  // Large enough to clear the parallel path's small-input cutoff; the
  // grouping — and therefore every result row, group ids included — must
  // be identical at every degree of parallelism (docs/PARALLELISM.md).
  Database db;
  auto pts = std::make_shared<Table>(Schema({
      Column{"x", DataType::kDouble, ""},
      Column{"y", DataType::kDouble, ""},
  }));
  for (int i = 0; i < 200; ++i) {
    const double cx = (i % 10) * 7.0;
    const double cy = (i % 7) * 9.0;
    ASSERT_TRUE(pts->Append({Value::Double(cx + (i % 3) * 0.4),
                             Value::Double(cy + (i % 5) * 0.3)})
                    .ok());
  }
  db.Register("pts", pts);

  for (const char* clause :
       {"ON-OVERLAP JOIN-ANY", "ON-OVERLAP ELIMINATE",
        "ON-OVERLAP FORM-NEW-GROUP"}) {
    const std::string base =
        "SELECT group_id, count(*) FROM pts "
        "GROUP BY x, y DISTANCE-TO-ALL L2 WITHIN 1.5 " +
        std::string(clause);
    const auto serial = db.Query(base);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    for (const char* parallel : {" PARALLEL 2", " PARALLEL 8"}) {
      const auto result = db.Query(base + parallel);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      ASSERT_EQ(result.value().NumRows(), serial.value().NumRows()) << clause;
      for (size_t r = 0; r < serial.value().NumRows(); ++r) {
        EXPECT_EQ(result.value().rows()[r][0].AsInt(),
                  serial.value().rows()[r][0].AsInt());
        EXPECT_EQ(result.value().rows()[r][1].AsInt(),
                  serial.value().rows()[r][1].AsInt());
      }
    }
  }

  const auto any_serial = db.Query(
      "SELECT group_id, count(*) FROM pts "
      "GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1.5");
  const auto any_parallel = db.Query(
      "SELECT group_id, count(*) FROM pts "
      "GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1.5 PARALLEL 4");
  ASSERT_TRUE(any_serial.ok() && any_parallel.ok());
  ASSERT_EQ(any_parallel.value().NumRows(), any_serial.value().NumRows());
  for (size_t r = 0; r < any_serial.value().NumRows(); ++r) {
    EXPECT_EQ(any_parallel.value().rows()[r][1].AsInt(),
              any_serial.value().rows()[r][1].AsInt());
  }
}

}  // namespace
}  // namespace sgb::sql
