// PROFILE <statement> and the Chrome trace-event export
// (docs/OBSERVABILITY.md): the span tree comes back as rows — operator,
// phase, interval, self time, memory and kernel attributions — and the
// parallel SGB workers appear as explicit-parent spans contained in their
// parent's wall time. `SET trace = 1` accumulates the same spans into the
// session TraceLog for chrome://tracing / Perfetto.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>

#include "common/random.h"
#include "engine/executor.h"

namespace sgb::engine {
namespace {

constexpr char kParallelSgbQuery[] =
    "SELECT count(*) FROM pts GROUP BY x, y "
    "DISTANCE-TO-ANY L2 WITHIN 0.4 PARALLEL 4";

Database PointsDb(size_t n, double extent = 10.0, uint64_t seed = 7) {
  Database db;
  auto pts = std::make_shared<Table>(Schema({
      Column{"x", DataType::kDouble, ""},
      Column{"y", DataType::kDouble, ""},
  }));
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(pts->Append({Value::Double(rng.NextUniform(0, extent)),
                             Value::Double(rng.NextUniform(0, extent))})
                    .ok());
  }
  db.Register("pts", pts);
  return db;
}

struct ProfileRow {
  int64_t id = 0;
  int64_t parent_id = 0;
  int64_t thread = 0;
  std::string op;
  std::string phase;
  int64_t start_us = 0;
  int64_t end_us = 0;
  int64_t wall_us = 0;
  int64_t self_us = 0;
};

std::map<int64_t, ProfileRow> RowsById(const Table& table) {
  std::map<int64_t, ProfileRow> rows;
  for (const Row& row : table.rows()) {
    ProfileRow r;
    r.id = row[0].AsInt();
    r.parent_id = row[1].AsInt();
    r.thread = row[2].AsInt();
    r.op = row[3].AsString();
    r.phase = row[4].AsString();
    r.start_us = row[5].AsInt();
    r.end_us = row[6].AsInt();
    r.wall_us = row[7].AsInt();
    r.self_us = row[8].AsInt();
    rows[r.id] = r;
  }
  return rows;
}

TEST(ProfileTest, ReturnsSpanTreeAsRows) {
  Database db = PointsDb(200);
  const auto result =
      db.Query("PROFILE SELECT count(*) FROM pts WHERE x > 1");
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const Table& table = result.value();
  const auto& cols = table.schema().columns();
  ASSERT_GE(cols.size(), 9u);
  EXPECT_EQ(cols[0].name, "id");
  EXPECT_EQ(cols[1].name, "parent_id");
  EXPECT_EQ(cols[3].name, "operator");
  EXPECT_EQ(cols[4].name, "phase");

  const auto rows = RowsById(table);
  ASSERT_TRUE(rows.count(0));
  EXPECT_EQ(rows.at(0).op, "query");
  EXPECT_EQ(rows.at(0).phase, "query");

  std::set<std::string> names;
  for (const auto& [id, r] : rows) names.insert(r.op);
  EXPECT_TRUE(names.count("parse"));
  EXPECT_TRUE(names.count("plan"));
  EXPECT_TRUE(names.count("execute"));

  // Every non-root span nests inside its parent's interval, and intervals
  // are consistent (end = start + wall).
  for (const auto& [id, r] : rows) {
    EXPECT_EQ(r.end_us, r.start_us + r.wall_us);
    EXPECT_LE(r.self_us, r.wall_us);
    if (id == 0) continue;
    ASSERT_TRUE(rows.count(r.parent_id)) << r.op;
    const ProfileRow& parent = rows.at(r.parent_id);
    EXPECT_GE(r.start_us, parent.start_us) << r.op;
    EXPECT_LE(r.end_us, parent.end_us) << r.op;
  }
}

TEST(ProfileTest, ParallelSgbWorkersNestUnderGroupSpan) {
  Database db = PointsDb(5000);
  const auto result = db.Query(std::string("PROFILE ") + kParallelSgbQuery);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const auto rows = RowsById(result.value());
  int64_t group_id = -1;
  for (const auto& [id, r] : rows) {
    if (r.op == "sgb.group") group_id = id;
  }
  ASSERT_NE(group_id, -1) << "no sgb.group span in PROFILE output";
  const ProfileRow& group = rows.at(group_id);
  EXPECT_EQ(group.phase, "execute");

  size_t workers = 0;
  for (const auto& [id, r] : rows) {
    if (r.op != "sgb.worker") continue;
    ++workers;
    EXPECT_EQ(r.parent_id, group_id);
    EXPECT_EQ(r.phase, "execute");
    EXPECT_GE(r.start_us, group.start_us);
    EXPECT_LE(r.end_us, group.end_us);
  }
  EXPECT_GE(workers, 2u) << "PARALLEL 4 over 5000 points must fan out";
}

TEST(ProfileTest, ProfileResultMatchesPlainQuery) {
  Database db = PointsDb(300);
  const auto plain = db.Query(kParallelSgbQuery);
  ASSERT_TRUE(plain.ok());
  const auto profiled =
      db.Query(std::string("PROFILE ") + kParallelSgbQuery);
  ASSERT_TRUE(profiled.ok());
  // PROFILE executes the statement for real: the run lands in the query
  // log with the statement's rows, not the profile table's.
  bool found = false;
  for (const auto& e : db.query_log().Entries()) {
    if (e.text.rfind("PROFILE ", 0) == 0) {
      found = true;
      EXPECT_EQ(e.status, "ok");
      EXPECT_EQ(e.rows_out,
                static_cast<int64_t>(plain.value().NumRows()));
    }
  }
  EXPECT_TRUE(found);
}

TEST(ProfileTest, ExplainAnalyzeReportsPhaseTimings) {
  Database db = PointsDb(200);
  const auto text = db.ExplainAnalyze(kParallelSgbQuery);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text.value().find("queue_micros="), std::string::npos)
      << text.value();
  EXPECT_NE(text.value().find("plan_micros="), std::string::npos);
  EXPECT_NE(text.value().find("exec_micros="), std::string::npos);
}

TEST(ProfileTest, TraceLogExportsChromeJson) {
  Database db = PointsDb(5000);
  EXPECT_EQ(db.trace_log().event_count(), 0u);

  ASSERT_TRUE(db.Query("SET trace = 1").ok());
  ASSERT_TRUE(db.Query(kParallelSgbQuery).ok());
  ASSERT_TRUE(db.Query("SELECT count(*) FROM pts").ok());
  EXPECT_GT(db.trace_log().event_count(), 0u);

  const std::string path = ::testing::TempDir() + "sgb_trace_test.json";
  ASSERT_TRUE(db.ExportTrace(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  std::remove(path.c_str());

  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json.substr(0, 80);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_NE(json.find("sgb-engine"), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"execute\""), std::string::npos);
  EXPECT_NE(json.find("sgb.worker"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("query_id"), std::string::npos);

  // Balanced delimiters — the CI smoke step runs a full JSON parse; this
  // keeps the unit test self-contained.
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);

  // Disabling tracing stops accumulation.
  ASSERT_TRUE(db.Query("SET trace = 0").ok());
  const size_t before = db.trace_log().event_count();
  ASSERT_TRUE(db.Query("SELECT count(*) FROM pts").ok());
  EXPECT_EQ(db.trace_log().event_count(), before);
}

TEST(ProfileTest, ProfileOfFailedStatementSurfacesError) {
  Database db = PointsDb(10);
  EXPECT_FALSE(db.Query("PROFILE SELECT count(*) FROM missing").ok());
}

}  // namespace
}  // namespace sgb::engine
