#include "sql/planner.h"

#include <gtest/gtest.h>

#include <memory>

#include "engine/executor.h"
#include "sql/parser.h"

namespace sgb::sql {
namespace {

using engine::Column;
using engine::Database;
using engine::DataType;
using engine::Schema;
using engine::Table;
using engine::Value;

Database MakeDb() {
  Database db;
  auto users = std::make_shared<Table>(Schema({
      Column{"id", DataType::kInt64, ""},
      Column{"name", DataType::kString, ""},
      Column{"score", DataType::kDouble, ""},
  }));
  EXPECT_TRUE(users->Append({Value::Int(1), Value::Str("ann"),
                             Value::Double(3.0)})
                  .ok());
  EXPECT_TRUE(users->Append({Value::Int(2), Value::Str("bob"),
                             Value::Double(5.0)})
                  .ok());
  EXPECT_TRUE(users->Append({Value::Int(3), Value::Str("cy"),
                             Value::Double(5.0)})
                  .ok());
  db.Register("users", users);

  auto orders = std::make_shared<Table>(Schema({
      Column{"user_id", DataType::kInt64, ""},
      Column{"amount", DataType::kDouble, ""},
  }));
  EXPECT_TRUE(orders->Append({Value::Int(1), Value::Double(10)}).ok());
  EXPECT_TRUE(orders->Append({Value::Int(1), Value::Double(20)}).ok());
  EXPECT_TRUE(orders->Append({Value::Int(2), Value::Double(5)}).ok());
  db.Register("orders", orders);
  return db;
}

TEST(PlannerTest, UnknownTableAndColumnErrors) {
  const Database db = MakeDb();
  EXPECT_EQ(db.Query("SELECT x FROM missing").status().code(),
            Status::Code::kNotFound);
  EXPECT_EQ(db.Query("SELECT nope FROM users").status().code(),
            Status::Code::kBindError);
  EXPECT_EQ(db.Query("SELECT users.id FROM users, orders "
                     "WHERE id = user_id AND amount > id")
                .status()
                .code(),
            Status::Code::kOk);
}

TEST(PlannerTest, AmbiguousColumnIsBindError) {
  Database db = MakeDb();
  // Self join makes bare `id` ambiguous.
  const auto result =
      db.Query("SELECT id FROM users a, users b WHERE a.id = b.id");
  EXPECT_EQ(result.status().code(), Status::Code::kBindError);
}

TEST(PlannerTest, EquiJoinBecomesHashJoin) {
  const Database db = MakeDb();
  auto plan = db.Prepare(
      "SELECT name, amount FROM users, orders WHERE id = user_id");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // The filter was absorbed into the join: materialize and check the rows.
  auto table = engine::Materialize(*plan.value());
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table.value().NumRows(), 3u);
}

TEST(PlannerTest, CrossJoinWithoutKeys) {
  const Database db = MakeDb();
  auto result = db.Query("SELECT name FROM users, orders");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().NumRows(), 9u);
}

TEST(PlannerTest, SelectStarPassesThrough) {
  const Database db = MakeDb();
  auto result = db.Query("SELECT * FROM users");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().schema().size(), 3u);
  EXPECT_EQ(result.value().NumRows(), 3u);
}

TEST(PlannerTest, GroupByColumnNotInGroupIsError) {
  const Database db = MakeDb();
  const auto result =
      db.Query("SELECT name FROM users GROUP BY score");
  EXPECT_EQ(result.status().code(), Status::Code::kBindError);
}

TEST(PlannerTest, SelectStarWithGroupByIsError) {
  const Database db = MakeDb();
  EXPECT_FALSE(db.Query("SELECT * FROM users GROUP BY score").ok());
}

TEST(PlannerTest, HavingWithoutGroupingIsError) {
  const Database db = MakeDb();
  EXPECT_FALSE(db.Query("SELECT name FROM users HAVING name > 'a'").ok());
}

TEST(PlannerTest, SimilarityGroupByNeedsTwoColumns) {
  const Database db = MakeDb();
  const auto result = db.Query(
      "SELECT count(*) FROM users GROUP BY score "
      "DISTANCE-TO-ALL L2 WITHIN 1");
  EXPECT_EQ(result.status().code(), Status::Code::kBindError);
}

TEST(PlannerTest, OneDimensionalNeedsOneColumn) {
  const Database db = MakeDb();
  const auto result = db.Query(
      "SELECT count(*) FROM users GROUP BY id, score "
      "MAXIMUM_ELEMENT_SEPARATION 2");
  EXPECT_EQ(result.status().code(), Status::Code::kBindError);
}

TEST(PlannerTest, OrderByPositionOutOfRange) {
  const Database db = MakeDb();
  EXPECT_FALSE(db.Query("SELECT name FROM users ORDER BY 2").ok());
}

TEST(PlannerTest, AggregateInWhereIsError) {
  const Database db = MakeDb();
  EXPECT_FALSE(db.Query("SELECT id FROM users WHERE sum(score) > 1").ok());
}

TEST(PlannerTest, UnknownScalarFunctionIsError) {
  const Database db = MakeDb();
  EXPECT_EQ(db.Query("SELECT frob(id) FROM users").status().code(),
            Status::Code::kNotSupported);
}

TEST(PlannerTest, InSubqueryMustBeSingleColumn) {
  const Database db = MakeDb();
  EXPECT_FALSE(
      db.Query("SELECT id FROM users WHERE id IN (SELECT user_id, amount "
               "FROM orders)")
          .ok());
}

}  // namespace
}  // namespace sgb::sql
