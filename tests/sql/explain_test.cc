#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "engine/executor.h"
#include "obs/trace.h"
#include "workload/tpch.h"

namespace sgb::sql {
namespace {

using engine::Database;

class ExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::TpchConfig config;
    config.scale_factor = 0.02;
    workload::GenerateTpch(config).RegisterAll(db_.catalog());
  }

  std::string Explain(const std::string& sql) {
    auto result = db_.Explain(sql);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? result.value() : std::string();
  }

  Database db_;
};

TEST_F(ExplainTest, SimpleScanAndProject) {
  const std::string plan = Explain("SELECT c_custkey FROM customer");
  EXPECT_NE(plan.find("Project"), std::string::npos);
  EXPECT_NE(plan.find("TableScan customer"), std::string::npos);
}

TEST_F(ExplainTest, EquiJoinUsesHashJoin) {
  const std::string plan = Explain(
      "SELECT c_custkey FROM customer, orders "
      "WHERE c_custkey = o_custkey");
  EXPECT_NE(plan.find("HashJoin"), std::string::npos);
  EXPECT_EQ(plan.find("NestedLoopJoin"), std::string::npos);
}

TEST_F(ExplainTest, FilterIsPushedBelowJoin) {
  const std::string plan = Explain(
      "SELECT c_custkey FROM customer, orders "
      "WHERE c_custkey = o_custkey AND c_acctbal > 100 "
      "AND o_totalprice > 1000");
  // Both single-table predicates sit under the join, directly over scans.
  const size_t join_pos = plan.find("HashJoin");
  ASSERT_NE(join_pos, std::string::npos);
  const size_t filter1 = plan.find("Filter (#1(c_acctbal) > 100)");
  const size_t filter2 = plan.find("Filter (#2(o_totalprice) > 1000)");
  EXPECT_NE(filter1, std::string::npos) << plan;
  EXPECT_NE(filter2, std::string::npos) << plan;
  EXPECT_GT(filter1, join_pos);
  EXPECT_GT(filter2, join_pos);
}

TEST_F(ExplainTest, SimilarityGroupByShowsParameters) {
  const std::string plan = Explain(
      "SELECT count(*) FROM customer "
      "GROUP BY c_acctbal, c_custkey DISTANCE-TO-ALL L2 WITHIN 0.5 "
      "ON-OVERLAP ELIMINATE");
  EXPECT_NE(plan.find("SimilarityGroupByAll"), std::string::npos);
  EXPECT_NE(plan.find("eps=0.5"), std::string::npos);
  EXPECT_NE(plan.find("ELIMINATE"), std::string::npos);
}

TEST_F(ExplainTest, ParallelClauseShowsDop) {
  const std::string plan = Explain(
      "SELECT count(*) FROM customer "
      "GROUP BY c_acctbal, c_custkey DISTANCE-TO-ANY L2 WITHIN 0.5 "
      "PARALLEL 4");
  EXPECT_NE(plan.find("dop=4"), std::string::npos) << plan;

  const std::string auto_plan = Explain(
      "SELECT count(*) FROM customer "
      "GROUP BY c_acctbal, c_custkey DISTANCE-TO-ANY L2 WITHIN 0.5 "
      "PARALLEL 0");
  EXPECT_NE(auto_plan.find("dop=auto"), std::string::npos) << auto_plan;

  // Serial plans stay terse: no dop annotation.
  const std::string serial_plan = Explain(
      "SELECT count(*) FROM customer "
      "GROUP BY c_acctbal, c_custkey DISTANCE-TO-ANY L2 WITHIN 0.5");
  EXPECT_EQ(serial_plan.find("dop="), std::string::npos) << serial_plan;
}

TEST_F(ExplainTest, SessionDefaultDopAppliesWithoutParallelClause) {
  db_.set_default_sgb_dop(2);
  const std::string plan = Explain(
      "SELECT count(*) FROM customer "
      "GROUP BY c_acctbal, c_custkey DISTANCE-TO-ANY L2 WITHIN 0.5");
  EXPECT_NE(plan.find("dop=2"), std::string::npos) << plan;
  // An explicit PARALLEL clause wins over the session default.
  const std::string override_plan = Explain(
      "SELECT count(*) FROM customer "
      "GROUP BY c_acctbal, c_custkey DISTANCE-TO-ANY L2 WITHIN 0.5 "
      "PARALLEL 1");
  EXPECT_EQ(override_plan.find("dop="), std::string::npos) << override_plan;
  db_.set_default_sgb_dop(1);
}

TEST_F(ExplainTest, CrossJoinFallsBackToNestedLoop) {
  const std::string plan =
      Explain("SELECT c_custkey FROM customer, supplier");
  EXPECT_NE(plan.find("NestedLoopJoin (cross)"), std::string::npos);
}

TEST_F(ExplainTest, SortAndLimitAppear) {
  const std::string plan = Explain(
      "SELECT c_custkey FROM customer ORDER BY c_custkey DESC LIMIT 3");
  EXPECT_NE(plan.find("Limit 3"), std::string::npos);
  EXPECT_NE(plan.find("desc"), std::string::npos);
}

TEST_F(ExplainTest, ExplainOfInvalidSqlFails) {
  EXPECT_FALSE(db_.Explain("SELECT nope FROM customer").ok());
}

TEST_F(ExplainTest, ExplainAcceptsExplainPrefixedSql) {
  const std::string plan = Explain("EXPLAIN SELECT c_custkey FROM customer");
  EXPECT_NE(plan.find("TableScan customer"), std::string::npos);
}

// ---- EXPLAIN ANALYZE -----------------------------------------------------

class ExplainAnalyzeTest : public ExplainTest {
 protected:
  std::string Analyze(const std::string& sql) {
    auto result = db_.ExplainAnalyze(sql);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? result.value() : std::string();
  }

  /// Runs `SELECT count(*) ...` and returns the count.
  int64_t Count(const std::string& sql) {
    auto result = db_.Query(sql);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    if (!result.ok() || result.value().NumRows() != 1) return -1;
    return result.value().rows()[0][0].AsInt();
  }
};

TEST_F(ExplainAnalyzeTest, AnnotatesPerOperatorRowCounts) {
  const int64_t customers = Count("SELECT count(*) FROM customer");
  ASSERT_GT(customers, 0);
  const std::string plan = Analyze("SELECT c_custkey FROM customer");
  // Both the scan and the projection saw every customer row.
  const std::string annotation = "rows=" + std::to_string(customers);
  const size_t first = plan.find(annotation);
  ASSERT_NE(first, std::string::npos) << plan;
  EXPECT_NE(plan.find(annotation, first + 1), std::string::npos) << plan;
  EXPECT_NE(plan.find("time="), std::string::npos) << plan;
}

TEST_F(ExplainAnalyzeTest, FilterShowsReducedRowCount) {
  const int64_t total = Count("SELECT count(*) FROM customer");
  const int64_t kept =
      Count("SELECT count(*) FROM customer WHERE c_acctbal > 0");
  ASSERT_GT(total, kept);  // TPC-H account balances include negatives
  const std::string plan =
      Analyze("SELECT c_custkey FROM customer WHERE c_acctbal > 0");
  EXPECT_NE(plan.find("Filter"), std::string::npos);
  EXPECT_NE(plan.find("rows=" + std::to_string(kept)), std::string::npos)
      << plan;
  EXPECT_NE(plan.find("rows=" + std::to_string(total)), std::string::npos)
      << plan;
}

TEST_F(ExplainAnalyzeTest, SgbOperatorReportsDistanceComputations) {
  const std::string plan = Analyze(
      "SELECT count(*) FROM customer "
      "GROUP BY c_acctbal, c_custkey DISTANCE-TO-ALL L2 WITHIN 0.5 "
      "ON-OVERLAP ELIMINATE");
  EXPECT_NE(plan.find("SimilarityGroupByAll"), std::string::npos) << plan;
  EXPECT_NE(plan.find("dist_comps="), std::string::npos) << plan;
  EXPECT_NE(plan.find("groups="), std::string::npos) << plan;
  EXPECT_NE(plan.find("time="), std::string::npos) << plan;
}

TEST_F(ExplainAnalyzeTest, ParallelSgbReportsPerWorkerBreakdown) {
  // Needs a table large enough to clear the parallel path's small-input
  // cutoff; the fixture's SF 0.02 customer (20 rows) is not, so use a
  // bigger generation for this test.
  Database big;
  workload::TpchConfig config;
  config.scale_factor = 0.2;  // 200 customers
  workload::GenerateTpch(config).RegisterAll(big.catalog());
  auto result = big.ExplainAnalyze(
      "SELECT count(*) FROM customer "
      "GROUP BY c_acctbal, c_custkey DISTANCE-TO-ANY L2 WITHIN 0.5 "
      "PARALLEL 2");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const std::string plan = result.value();
  EXPECT_NE(plan.find("dop=2"), std::string::npos) << plan;
  EXPECT_NE(plan.find("partitions="), std::string::npos) << plan;
  EXPECT_NE(plan.find("w0.points="), std::string::npos) << plan;
  EXPECT_NE(plan.find("w0.dist_comps="), std::string::npos) << plan;
  EXPECT_NE(plan.find("w1.points="), std::string::npos) << plan;
}

TEST_F(ExplainAnalyzeTest, ExplainAnalyzePrefixedQueryReturnsPlanTable) {
  auto result = db_.Query(
      "EXPLAIN ANALYZE SELECT c_custkey FROM customer LIMIT 3");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const engine::Table& table = result.value();
  ASSERT_EQ(table.schema().size(), 1u);
  EXPECT_EQ(table.schema().column(0).name, "plan");
  ASSERT_GT(table.NumRows(), 1u);
  EXPECT_NE(table.rows()[0][0].ToString().find("rows=3"),
            std::string::npos);
}

TEST_F(ExplainAnalyzeTest, ExplainPrefixedQueryDoesNotExecute) {
  auto result = db_.Query("EXPLAIN SELECT c_custkey FROM customer");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const engine::Table& table = result.value();
  ASSERT_GT(table.NumRows(), 0u);
  EXPECT_EQ(table.rows()[0][0].ToString().find("rows="), std::string::npos);
}

TEST_F(ExplainAnalyzeTest, QueryTraceRecordsParsePlanExecuteSpans) {
  obs::QueryTrace trace;
  auto result = db_.Query("SELECT count(*) FROM customer", &trace);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  trace.Finish();
  const obs::TraceSpan& root = trace.root();
  ASSERT_EQ(root.children.size(), 3u);
  EXPECT_EQ(root.children[0].name, "parse");
  EXPECT_EQ(root.children[1].name, "plan");
  EXPECT_EQ(root.children[2].name, "execute");
  EXPECT_DOUBLE_EQ(root.children[2].attributes.at("rows"), 1.0);
}

}  // namespace
}  // namespace sgb::sql
