#include <gtest/gtest.h>

#include <memory>

#include "engine/executor.h"
#include "workload/tpch.h"

namespace sgb::sql {
namespace {

using engine::Database;

class ExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::TpchConfig config;
    config.scale_factor = 0.02;
    workload::GenerateTpch(config).RegisterAll(db_.catalog());
  }

  std::string Explain(const std::string& sql) {
    auto result = db_.Explain(sql);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? result.value() : std::string();
  }

  Database db_;
};

TEST_F(ExplainTest, SimpleScanAndProject) {
  const std::string plan = Explain("SELECT c_custkey FROM customer");
  EXPECT_NE(plan.find("Project"), std::string::npos);
  EXPECT_NE(plan.find("TableScan customer"), std::string::npos);
}

TEST_F(ExplainTest, EquiJoinUsesHashJoin) {
  const std::string plan = Explain(
      "SELECT c_custkey FROM customer, orders "
      "WHERE c_custkey = o_custkey");
  EXPECT_NE(plan.find("HashJoin"), std::string::npos);
  EXPECT_EQ(plan.find("NestedLoopJoin"), std::string::npos);
}

TEST_F(ExplainTest, FilterIsPushedBelowJoin) {
  const std::string plan = Explain(
      "SELECT c_custkey FROM customer, orders "
      "WHERE c_custkey = o_custkey AND c_acctbal > 100 "
      "AND o_totalprice > 1000");
  // Both single-table predicates sit under the join, directly over scans.
  const size_t join_pos = plan.find("HashJoin");
  ASSERT_NE(join_pos, std::string::npos);
  const size_t filter1 = plan.find("Filter (#1(c_acctbal) > 100)");
  const size_t filter2 = plan.find("Filter (#2(o_totalprice) > 1000)");
  EXPECT_NE(filter1, std::string::npos) << plan;
  EXPECT_NE(filter2, std::string::npos) << plan;
  EXPECT_GT(filter1, join_pos);
  EXPECT_GT(filter2, join_pos);
}

TEST_F(ExplainTest, SimilarityGroupByShowsParameters) {
  const std::string plan = Explain(
      "SELECT count(*) FROM customer "
      "GROUP BY c_acctbal, c_custkey DISTANCE-TO-ALL L2 WITHIN 0.5 "
      "ON-OVERLAP ELIMINATE");
  EXPECT_NE(plan.find("SimilarityGroupByAll"), std::string::npos);
  EXPECT_NE(plan.find("eps=0.5"), std::string::npos);
  EXPECT_NE(plan.find("ELIMINATE"), std::string::npos);
}

TEST_F(ExplainTest, CrossJoinFallsBackToNestedLoop) {
  const std::string plan =
      Explain("SELECT c_custkey FROM customer, supplier");
  EXPECT_NE(plan.find("NestedLoopJoin (cross)"), std::string::npos);
}

TEST_F(ExplainTest, SortAndLimitAppear) {
  const std::string plan = Explain(
      "SELECT c_custkey FROM customer ORDER BY c_custkey DESC LIMIT 3");
  EXPECT_NE(plan.find("Limit 3"), std::string::npos);
  EXPECT_NE(plan.find("desc"), std::string::npos);
}

TEST_F(ExplainTest, ExplainOfInvalidSqlFails) {
  EXPECT_FALSE(db_.Explain("SELECT nope FROM customer").ok());
}

}  // namespace
}  // namespace sgb::sql
