// The ANALYZE statistics layer (docs/PLANNER.md): the KMV distinct
// sketch, per-column summaries, and the 2-D grid density histogram whose
// ε-pair / ε-group estimates drive SGB tier selection. The property tests
// sweep the fuzz harness's point distributions (uniform, lattice,
// clustered) and check the estimators against brute-force ground truth
// within bounded factors — the cost model only needs order-of-magnitude
// accuracy to rank tiers, so the bounds are deliberately loose.

#include "stats/table_stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "engine/table.h"

namespace sgb::stats {
namespace {

using engine::Column;
using engine::DataType;
using engine::Row;
using engine::Schema;
using engine::Table;
using engine::Value;

Schema PointSchema() {
  return Schema({
      Column{"x", DataType::kDouble, ""},
      Column{"y", DataType::kDouble, ""},
  });
}

Table PointTable(const std::vector<std::pair<double, double>>& pts) {
  Table t(PointSchema());
  for (const auto& [x, y] : pts) {
    EXPECT_TRUE(t.Append({Value::Double(x), Value::Double(y)}).ok());
  }
  return t;
}

double Dist(const std::pair<double, double>& a,
            const std::pair<double, double>& b, const std::string& metric) {
  const double dx = std::abs(a.first - b.first);
  const double dy = std::abs(a.second - b.second);
  if (metric == "linf") return std::max(dx, dy);
  if (metric == "l1") return dx + dy;
  return std::sqrt(dx * dx + dy * dy);
}

/// Ground truth the histogram estimates approximate: exact unordered
/// ε-close pair count.
double ExactPairs(const std::vector<std::pair<double, double>>& pts,
                  double epsilon, const std::string& metric) {
  double pairs = 0;
  for (size_t i = 0; i < pts.size(); ++i) {
    for (size_t j = i + 1; j < pts.size(); ++j) {
      if (Dist(pts[i], pts[j], metric) <= epsilon) ++pairs;
    }
  }
  return pairs;
}

std::vector<std::pair<double, double>> UniformPoints(size_t n, double extent,
                                                     uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<double, double>> pts;
  pts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    pts.emplace_back(rng.NextUniform(0, extent), rng.NextUniform(0, extent));
  }
  return pts;
}

/// Integer lattice with duplicates: every coordinate repeats, so the
/// duplicate-pair correction (point_ndv) carries most of the estimate.
std::vector<std::pair<double, double>> LatticePoints(size_t n, int side,
                                                     uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<double, double>> pts;
  pts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    pts.emplace_back(static_cast<double>(rng.NextInt(0, side - 1)),
                     static_cast<double>(rng.NextInt(0, side - 1)));
  }
  return pts;
}

std::vector<std::pair<double, double>> ClusteredPoints(size_t n,
                                                       size_t clusters,
                                                       double extent,
                                                       double spread,
                                                       uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<double, double>> centers;
  for (size_t c = 0; c < clusters; ++c) {
    centers.emplace_back(rng.NextUniform(0, extent),
                         rng.NextUniform(0, extent));
  }
  std::vector<std::pair<double, double>> pts;
  pts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const auto& c = centers[rng.NextBounded(clusters)];
    pts.emplace_back(rng.NextGaussian(c.first, spread),
                     rng.NextGaussian(c.second, spread));
  }
  return pts;
}

// ---- DistinctSketch -----------------------------------------------------

TEST(DistinctSketchTest, ExactBelowCapacity) {
  DistinctSketch sketch;
  for (uint64_t v = 0; v < 500; ++v) sketch.Add(v);
  for (uint64_t v = 0; v < 500; ++v) sketch.Add(v);  // duplicates ignored
  EXPECT_EQ(sketch.Estimate(), 500u);
}

TEST(DistinctSketchTest, KmvEstimateWithinFifteenPercent) {
  const uint64_t kDistinct = 50'000;
  DistinctSketch sketch;
  for (uint64_t v = 0; v < kDistinct; ++v) sketch.Add(v);
  const double est = static_cast<double>(sketch.Estimate());
  EXPECT_GT(est, kDistinct * 0.85);
  EXPECT_LT(est, kDistinct * 1.15);
}

// ---- ComputeTableStats --------------------------------------------------

TEST(TableStatsTest, ColumnSummariesAndGrid) {
  Table t(Schema({
      Column{"x", DataType::kDouble, ""},
      Column{"y", DataType::kDouble, ""},
      Column{"tag", DataType::kString, ""},
  }));
  ASSERT_TRUE(
      t.Append({Value::Double(1), Value::Double(10), Value::Str("a")}).ok());
  ASSERT_TRUE(
      t.Append({Value::Double(4), Value::Double(12), Value::Str("b")}).ok());
  ASSERT_TRUE(
      t.Append({Value::Double(2), Value::Null(), Value::Str("a")}).ok());

  const TableStats s = ComputeTableStats("t", t);
  EXPECT_EQ(s.table, "t");
  EXPECT_EQ(s.row_count, 3u);
  EXPECT_EQ(s.analyzed_rows, 3u);
  EXPECT_GT(s.avg_row_bytes, 0u);
  ASSERT_EQ(s.columns.size(), 3u);

  EXPECT_TRUE(s.columns[0].has_range);
  EXPECT_DOUBLE_EQ(s.columns[0].min, 1.0);
  EXPECT_DOUBLE_EQ(s.columns[0].max, 4.0);
  EXPECT_EQ(s.columns[0].ndv, 3u);
  EXPECT_EQ(s.columns[1].null_count, 1u);
  EXPECT_EQ(s.columns[1].ndv, 2u);
  EXPECT_FALSE(s.columns[2].has_range);  // strings: NDV only
  EXPECT_EQ(s.columns[2].ndv, 2u);

  ASSERT_TRUE(s.grid.has_value());
  EXPECT_EQ(s.grid_col_x, 0);
  EXPECT_EQ(s.grid_col_y, 1);
  EXPECT_EQ(s.grid->total(), 2u);  // the null-y row has no point
}

TEST(TableStatsTest, NoGridWithoutTwoNumericColumns) {
  Table t(Schema({
      Column{"name", DataType::kString, ""},
      Column{"v", DataType::kDouble, ""},
  }));
  ASSERT_TRUE(t.Append({Value::Str("a"), Value::Double(1)}).ok());
  const TableStats s = ComputeTableStats("t", t);
  EXPECT_FALSE(s.grid.has_value());
  // Pessimistic fallbacks still answer: every pair close, sqrt(n) groups.
  EXPECT_DOUBLE_EQ(s.EstimateEpsilonPairs(1.0, "l2"), 0.0);  // n == 1
}

// ---- ε-pair estimation, property-style over the fuzz generators --------

struct GeneratorCase {
  std::string name;
  std::vector<std::pair<double, double>> pts;
  double epsilon;
  /// Accepted estimate/exact ratio band. Uniform data is the histogram's
  /// home turf; lattice and clustered data stress the duplicate correction
  /// and the uniform-within-cell assumption, so their bands are wider.
  double lo;
  double hi;
};

TEST(GridEstimatorTest, PairEstimateWithinBoundedFactorOfExact) {
  std::vector<GeneratorCase> cases;
  cases.push_back({"uniform", UniformPoints(2000, 10.0, 11), 0.3, 0.5, 2.0});
  cases.push_back({"uniform-dense", UniformPoints(1500, 4.0, 12), 0.5, 0.5,
                   2.0});
  cases.push_back({"lattice", LatticePoints(2000, 20, 13), 0.5, 0.3, 3.0});
  cases.push_back(
      {"clustered", ClusteredPoints(2000, 8, 10.0, 0.25, 14), 0.2, 0.25, 4.0});

  for (const auto& c : cases) {
    for (const std::string metric : {"l2", "linf"}) {
      const double exact = ExactPairs(c.pts, c.epsilon, metric);
      if (exact < 50) continue;  // ratio bands need a meaningful baseline
      const TableStats s = ComputeTableStats(c.name, PointTable(c.pts));
      ASSERT_TRUE(s.grid.has_value()) << c.name;
      const double est = s.EstimateEpsilonPairs(c.epsilon, metric);
      const double ratio = est / exact;
      EXPECT_GE(ratio, c.lo) << c.name << " metric=" << metric
                             << " exact=" << exact << " est=" << est;
      EXPECT_LE(ratio, c.hi) << c.name << " metric=" << metric
                             << " exact=" << exact << " est=" << est;
    }
  }
}

TEST(GridEstimatorTest, GroupEstimateTracksDensityRegimes) {
  // Isolated points: far fewer ε-pairs than points ⇒ group count near n.
  const auto sparse = UniformPoints(1000, 100.0, 21);
  const TableStats s1 = ComputeTableStats("sparse", PointTable(sparse));
  EXPECT_GT(s1.EstimateEpsilonGroups(0.05, "l2"), 900.0);

  // One tight blob: everything ε-close ⇒ a handful of groups.
  const auto blob = ClusteredPoints(1000, 1, 10.0, 0.05, 22);
  const TableStats s2 = ComputeTableStats("blob", PointTable(blob));
  EXPECT_LT(s2.EstimateEpsilonGroups(1.0, "l2"), 50.0);
}

TEST(GridEstimatorTest, SelectivityThinsPairsSuperlinearly) {
  const auto pts = UniformPoints(2000, 10.0, 31);
  const TableStats s = ComputeTableStats("u", PointTable(pts));
  const double full = s.EstimateEpsilonPairs(0.4, "l2", 1.0);
  const double half = s.EstimateEpsilonPairs(0.4, "l2", 0.5);
  ASSERT_GT(full, 0.0);
  // Uniform thinning at rate s keeps ~s² of the pairs.
  EXPECT_LT(half, 0.35 * full);
  EXPECT_GT(half, 0.15 * full);
}

TEST(GridEstimatorTest, ScaleFactorExtrapolatesGrowth) {
  const auto pts = UniformPoints(1000, 10.0, 41);
  TableStats s = ComputeTableStats("u", PointTable(pts));
  const double base = s.EstimateEpsilonPairs(0.4, "l2");
  s.row_count = 2000;  // incremental refresh: doubled without re-ANALYZE
  const double grown = s.EstimateEpsilonPairs(0.4, "l2");
  EXPECT_GT(grown, 3.0 * base);  // pair counts scale ~quadratically
  EXPECT_LT(grown, 5.0 * base);
}

TEST(GridEstimatorTest, PairsNeverExceedAllPairs) {
  const auto pts = LatticePoints(500, 2, 51);  // 4 distinct positions
  const TableStats s = ComputeTableStats("dup", PointTable(pts));
  const double n = 500.0;
  EXPECT_LE(s.EstimateEpsilonPairs(100.0, "l2"), n * (n - 1.0) / 2.0);
}

}  // namespace
}  // namespace sgb::stats
