#include "cluster/dbscan.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"

namespace sgb::cluster {
namespace {

using geom::Point;

TEST(DbscanTest, TwoClustersAndNoise) {
  std::vector<Point> pts;
  // Dense cluster near origin.
  for (int i = 0; i < 10; ++i) pts.push_back({i * 0.1, 0});
  // Dense cluster near (10, 10).
  for (int i = 0; i < 10; ++i) pts.push_back({10 + i * 0.1, 10});
  // Lone noise point.
  pts.push_back({50, 50});

  DbscanOptions options;
  options.epsilon = 0.5;
  options.min_points = 3;
  const auto result = Dbscan(pts, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_clusters, 2u);
  EXPECT_EQ(result.value().cluster_of[20], Clustering::kNoise);
  EXPECT_EQ(result.value().cluster_of[0], result.value().cluster_of[9]);
  EXPECT_NE(result.value().cluster_of[0], result.value().cluster_of[10]);
}

TEST(DbscanTest, IndexAndLinearScanAgree) {
  Rng rng(4);
  std::vector<Point> pts;
  for (int i = 0; i < 400; ++i) {
    pts.push_back({rng.NextUniform(0, 20), rng.NextUniform(0, 20)});
  }
  DbscanOptions options;
  options.epsilon = 0.9;
  options.min_points = 4;
  options.use_index = true;
  const auto indexed = Dbscan(pts, options);
  options.use_index = false;
  const auto linear = Dbscan(pts, options);
  ASSERT_TRUE(indexed.ok());
  ASSERT_TRUE(linear.ok());
  EXPECT_EQ(indexed.value().num_clusters, linear.value().num_clusters);
  // Cluster ids can be permuted between runs only if visit order differs;
  // both run in input order, so labels must match exactly.
  EXPECT_EQ(indexed.value().cluster_of, linear.value().cluster_of);
}

TEST(DbscanTest, BorderPointsJoinACluster) {
  // A core point with min_points-1 cheap neighbours plus one border point.
  const std::vector<Point> pts = {{0, 0}, {0.2, 0}, {-0.2, 0}, {0.45, 0}};
  DbscanOptions options;
  options.epsilon = 0.3;
  options.min_points = 3;
  const auto result = Dbscan(pts, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_clusters, 1u);
  // (0.45, 0) is density-reachable through (0.2, 0).
  EXPECT_EQ(result.value().cluster_of[3], 0u);
}

TEST(DbscanTest, AllNoiseWhenSparse) {
  const std::vector<Point> pts = {{0, 0}, {5, 5}, {10, 0}};
  DbscanOptions options;
  options.epsilon = 0.5;
  options.min_points = 2;
  const auto result = Dbscan(pts, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_clusters, 0u);
  for (const size_t c : result.value().cluster_of) {
    EXPECT_EQ(c, Clustering::kNoise);
  }
}

TEST(DbscanTest, InvalidArguments) {
  DbscanOptions options;
  options.epsilon = -1;
  EXPECT_FALSE(Dbscan({}, options).ok());
  options.epsilon = 1;
  options.min_points = 0;
  EXPECT_FALSE(Dbscan({}, options).ok());
}

TEST(DbscanTest, StatsAreCollected) {
  const std::vector<Point> pts = {{0, 0}, {0.1, 0}, {0.2, 0}, {0.3, 0}};
  DbscanOptions options;
  options.epsilon = 0.15;
  options.min_points = 2;
  DbscanStats stats;
  ASSERT_TRUE(Dbscan(pts, options, &stats).ok());
  EXPECT_GT(stats.region_queries, 0u);
  EXPECT_GT(stats.distance_computations, 0u);
}

}  // namespace
}  // namespace sgb::cluster
