#include "cluster/kmeans.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"

namespace sgb::cluster {
namespace {

using geom::Point;

std::vector<Point> ThreeBlobs(size_t per_blob, uint64_t seed) {
  Rng rng(seed);
  const Point centers[] = {{0, 0}, {10, 0}, {5, 9}};
  std::vector<Point> pts;
  for (const Point& c : centers) {
    for (size_t i = 0; i < per_blob; ++i) {
      pts.push_back({rng.NextGaussian(c.x, 0.4), rng.NextGaussian(c.y, 0.4)});
    }
  }
  return pts;
}

TEST(KMeansTest, RecoversWellSeparatedBlobs) {
  const auto pts = ThreeBlobs(50, 1);
  KMeansOptions options;
  options.k = 3;
  const auto result = KMeans(pts, options);
  ASSERT_TRUE(result.ok());
  // Every blob must be pure: all its points share one cluster id.
  for (size_t blob = 0; blob < 3; ++blob) {
    const size_t expected = result.value().clustering.cluster_of[blob * 50];
    for (size_t i = 0; i < 50; ++i) {
      EXPECT_EQ(result.value().clustering.cluster_of[blob * 50 + i], expected);
    }
  }
  EXPECT_GT(result.value().iterations, 0u);
  EXPECT_LT(result.value().inertia, 100.0);
}

TEST(KMeansTest, InvalidArguments) {
  const std::vector<Point> pts = {{0, 0}, {1, 1}};
  KMeansOptions options;
  options.k = 0;
  EXPECT_FALSE(KMeans(pts, options).ok());
  options.k = 3;
  EXPECT_FALSE(KMeans(pts, options).ok());
}

TEST(KMeansTest, KEqualsNGivesZeroInertia) {
  const std::vector<Point> pts = {{0, 0}, {5, 5}, {9, 1}};
  KMeansOptions options;
  options.k = 3;
  options.max_iterations = 30;
  const auto result = KMeans(pts, options);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().inertia, 0.0, 1e-9);
}

TEST(KMeansTest, DeterministicPerSeed) {
  const auto pts = ThreeBlobs(30, 2);
  KMeansOptions options;
  options.k = 4;
  options.seed = 9;
  const auto a = KMeans(pts, options);
  const auto b = KMeans(pts, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().clustering.cluster_of, b.value().clustering.cluster_of);
  EXPECT_DOUBLE_EQ(a.value().inertia, b.value().inertia);
}

TEST(KMeansTest, IdenticalPointsDoNotCrash) {
  const std::vector<Point> pts(10, Point{1, 1});
  KMeansOptions options;
  options.k = 3;
  options.max_iterations = 5;
  const auto result = KMeans(pts, options);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().inertia, 0.0, 1e-12);
}

}  // namespace
}  // namespace sgb::cluster
