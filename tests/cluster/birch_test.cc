#include "cluster/birch.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/random.h"

namespace sgb::cluster {
namespace {

using geom::Point;

TEST(BirchTest, CompactBlobsLandInFewSubclusters) {
  Rng rng(2);
  std::vector<Point> pts;
  const Point centers[] = {{0, 0}, {20, 20}};
  for (const Point& c : centers) {
    for (int i = 0; i < 100; ++i) {
      pts.push_back({rng.NextGaussian(c.x, 0.1), rng.NextGaussian(c.y, 0.1)});
    }
  }
  BirchOptions options;
  options.threshold = 1.0;
  const auto result = Birch(pts, options);
  ASSERT_TRUE(result.ok());
  // Tight blobs under a generous threshold: very few CF entries, and the
  // two blobs never share one.
  EXPECT_LE(result.value().cf_entries, 6u);
  std::set<size_t> blob_a;
  std::set<size_t> blob_b;
  for (int i = 0; i < 100; ++i) {
    blob_a.insert(result.value().clustering.cluster_of[i]);
    blob_b.insert(result.value().clustering.cluster_of[100 + i]);
  }
  for (const size_t a : blob_a) EXPECT_EQ(blob_b.count(a), 0u);
}

TEST(BirchTest, SmallThresholdMakesManySubclusters) {
  Rng rng(3);
  std::vector<Point> pts;
  for (int i = 0; i < 200; ++i) {
    pts.push_back({rng.NextUniform(0, 10), rng.NextUniform(0, 10)});
  }
  BirchOptions coarse;
  coarse.threshold = 2.0;
  BirchOptions fine;
  fine.threshold = 0.05;
  const auto coarse_result = Birch(pts, coarse);
  const auto fine_result = Birch(pts, fine);
  ASSERT_TRUE(coarse_result.ok());
  ASSERT_TRUE(fine_result.ok());
  EXPECT_GT(fine_result.value().cf_entries,
            coarse_result.value().cf_entries);
}

TEST(BirchTest, EveryPointGetsACluster) {
  Rng rng(4);
  std::vector<Point> pts;
  for (int i = 0; i < 150; ++i) {
    pts.push_back({rng.NextUniform(0, 5), rng.NextUniform(0, 5)});
  }
  BirchOptions options;
  options.threshold = 0.3;
  const auto result = Birch(pts, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().clustering.cluster_of.size(), pts.size());
  for (const size_t c : result.value().clustering.cluster_of) {
    EXPECT_LT(c, result.value().clustering.num_clusters);
  }
  EXPECT_EQ(result.value().centroids.size(),
            result.value().clustering.num_clusters);
}

TEST(BirchTest, IdenticalPointsFormOneEntry) {
  const std::vector<Point> pts(50, Point{3, 3});
  BirchOptions options;
  options.threshold = 0.1;
  const auto result = Birch(pts, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().cf_entries, 1u);
  EXPECT_NEAR(result.value().centroids[0].x, 3.0, 1e-12);
}

TEST(BirchTest, InvalidArguments) {
  BirchOptions options;
  options.threshold = -1;
  EXPECT_FALSE(Birch({}, options).ok());
  options.threshold = 1;
  options.branching = 1;
  EXPECT_FALSE(Birch({}, options).ok());
  options.branching = 4;
  options.leaf_entries = 0;
  EXPECT_FALSE(Birch({}, options).ok());
}

TEST(BirchTest, EmptyInput) {
  const auto result = Birch({}, BirchOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().cf_entries, 0u);
  EXPECT_EQ(result.value().clustering.num_clusters, 0u);
}

}  // namespace
}  // namespace sgb::cluster
