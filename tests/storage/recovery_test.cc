// Crash-recovery and durability harness (docs/STORAGE.md "Recovery
// protocol").
//
// Deterministic halves first: WAL replay after a close with no checkpoint,
// a torn page left by a mid-write crash, clean/retryable failures
// (manifest write, page read), and WAL epoch truncation at checkpoint.
// Then the differential harness: random CREATE/INSERT/DROP/CHECKPOINT
// workloads are killed at every WAL/page fault site at random hit counts,
// the directory is reopened, and the recovered contents plus an SGB
// grouping query must be bit-identical to an uncrashed in-memory oracle
// fed the same statements. `storage.wal.fsync` kills have indeterminate
// durability for the in-flight statement (the crash may land either side
// of the disk's ack), so the harness accepts exactly the two legal
// outcomes — with and without that statement — and nothing else.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/random.h"
#include "engine/csv.h"
#include "engine/executor.h"
#include "storage/storage_engine.h"

namespace sgb::engine {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

storage::StorageOptions TinyPool() {
  storage::StorageOptions options;
  options.page_size = 256;
  options.buffer_pool_bytes = 4 * 256;
  return options;
}

std::string Csv(Result<Table> result) {
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? WriteCsvToString(result.value()) : std::string();
}

constexpr const char* kTables[] = {"ta", "tb"};
constexpr const char* kSgbQuery =
    "SELECT group_id, count(*), min(id), max(id) FROM %s GROUP BY x, y "
    "DISTANCE-TO-ANY L2 WITHIN 3.0";

/// Replays `stmts` (skipping CHECKPOINTs) into a fresh in-memory database
/// and compares every table's full contents and SGB grouping against
/// `disk`. Returns a human-readable divergence, or "" on a perfect match.
std::string DiffAgainstOracle(Database& disk,
                              const std::vector<std::string>& stmts) {
  Database oracle;
  for (const std::string& stmt : stmts) {
    if (stmt == "CHECKPOINT") continue;
    auto applied = oracle.Query(stmt);
    if (!applied.ok()) {
      return "oracle replay failed on '" + stmt +
             "': " + applied.status().ToString();
    }
  }
  for (const char* name : kTables) {
    const std::string select = std::string("SELECT * FROM ") + name;
    auto got = disk.Query(select);
    auto want = oracle.Query(select);
    if (got.ok() != want.ok()) {
      return std::string(name) + ": exists=" + (got.ok() ? "yes" : "no") +
             " oracle=" + (want.ok() ? "yes" : "no");
    }
    if (!got.ok()) continue;
    const std::string got_csv = WriteCsvToString(got.value());
    const std::string want_csv = WriteCsvToString(want.value());
    if (got_csv != want_csv) {
      return std::string(name) + " contents diverge\n--- recovered\n" +
             got_csv + "--- oracle\n" + want_csv;
    }
    char sgb[256];
    std::snprintf(sgb, sizeof(sgb), kSgbQuery, name);
    auto got_sgb = disk.Query(sgb);
    auto want_sgb = oracle.Query(sgb);
    if (!got_sgb.ok() || !want_sgb.ok()) {
      return std::string(name) + ": SGB query failed: " +
             (got_sgb.ok() ? want_sgb.status() : got_sgb.status()).ToString();
    }
    if (WriteCsvToString(got_sgb.value()) !=
        WriteCsvToString(want_sgb.value())) {
      return std::string(name) + " SGB grouping diverges";
    }
  }
  return "";
}

// ---- Deterministic recovery behaviors -----------------------------------

TEST(RecoveryTest, WalReplayRestoresUncheckpointedInserts) {
  const std::string dir = FreshDir("sgb_rec_walreplay");
  storage::StorageOptions options = TinyPool();
  options.checkpoint_on_close = false;  // simulate an unclean close
  {
    auto db = Database::Open(dir, options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_TRUE(
        db.value().Query("CREATE TABLE ta (id INT, x DOUBLE, y DOUBLE)").ok());
    for (int i = 0; i < 30; ++i) {
      char sql[128];
      std::snprintf(sql, sizeof(sql),
                    "INSERT INTO ta VALUES (%d, %d.5, %d.5)", i, i % 7, i % 5);
      ASSERT_TRUE(db.value().Query(sql).ok());
    }
  }
  auto db = Database::Open(dir, options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(db.value()
                .Query("SELECT count(*), sum(id) FROM ta")
                .value()
                .rows()[0][1]
                .AsInt(),
            29 * 30 / 2);
  // Everything came back through the log, not the (never-written) manifest.
  EXPECT_GT(db.value().storage()->stats().wal_replayed_records, 0u);
}

// A crash in the middle of a page write (the fault site tears the page:
// half old bytes, half new) must lose nothing: the statement committed to
// the WAL before touching pages, and append-only pages recover their
// durable prefix without full-page images.
TEST(RecoveryTest, TornPageFromCrashedWriteRecoversCommittedStatement) {
  const std::string dir = FreshDir("sgb_rec_tornpage");
  std::vector<std::string> applied;
  {
    auto db = Database::Open(dir, TinyPool());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    const std::string create = "CREATE TABLE ta (id INT, x DOUBLE, y DOUBLE)";
    ASSERT_TRUE(db.value().Query(create).ok());
    applied.push_back(create);

    FaultRegistry::Global().ArmNthHit("storage.page.write", 1);
    bool crashed = false;
    for (int i = 0; i < 60 && !crashed; ++i) {
      char sql[128];
      std::snprintf(sql, sizeof(sql),
                    "INSERT INTO ta VALUES (%d, %d.0, %d.0)", i, i % 9, i % 4);
      auto result = db.value().Query(sql);
      if (result.ok()) {
        applied.push_back(sql);
        continue;
      }
      // The 4-page pool forces an eviction write-back mid-INSERT; the WAL
      // frame was already fsynced, so the row is durable regardless.
      crashed = true;
      applied.push_back(sql);
      EXPECT_EQ(result.status().code(), Status::Code::kIoError)
          << result.status().ToString();
      EXPECT_NE(result.status().ToString().find("storage.page.write"),
                std::string::npos)
          << result.status().ToString();
    }
    ASSERT_TRUE(crashed) << "the tiny pool never forced a write-back";

    // The engine is poisoned: every further mutation is refused...
    auto refused = db.value().Query("INSERT INTO ta VALUES (999, 0.0, 0.0)");
    ASSERT_FALSE(refused.ok());
    EXPECT_NE(refused.status().ToString().find("poisoned"), std::string::npos)
        << refused.status().ToString();
    // ...and the close must NOT checkpoint the divergent in-memory state.
  }
  FaultRegistry::Global().Reset();

  auto db = Database::Open(dir, TinyPool());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(DiffAgainstOracle(db.value(), applied), "");
}

TEST(RecoveryTest, ManifestWriteFailureIsCleanAndRetryable) {
  const std::string dir = FreshDir("sgb_rec_manifest");
  {
    auto db = Database::Open(dir, TinyPool());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_TRUE(db.value().Query("CREATE TABLE ta (v INT)").ok());
    ASSERT_TRUE(db.value().Query("INSERT INTO ta VALUES (1), (2)").ok());

    FaultRegistry::Global().ArmNthHit("storage.manifest.write", 1);
    auto checkpoint = db.value().Query("CHECKPOINT");
    ASSERT_FALSE(checkpoint.ok());
    EXPECT_EQ(checkpoint.status().code(), Status::Code::kIoError);
    FaultRegistry::Global().Reset();

    // Clean failure: not poisoned — mutations and a retry both succeed.
    ASSERT_TRUE(db.value().Query("INSERT INTO ta VALUES (3)").ok());
    ASSERT_TRUE(db.value().Query("CHECKPOINT").ok());
  }
  auto db = Database::Open(dir, TinyPool());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(Csv(db.value().Query("SELECT * FROM ta")), "v\n1\n2\n3\n");
}

TEST(RecoveryTest, PageReadFailureIsRetryable) {
  const std::string dir = FreshDir("sgb_rec_pageread");
  {
    auto db = Database::Open(dir, TinyPool());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_TRUE(db.value().Query("CREATE TABLE ta (v INT)").ok());
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(db.value()
                      .Query("INSERT INTO ta VALUES (" + std::to_string(i) +
                             ")")
                      .ok());
    }
  }
  // Recovery reads every manifest page; an armed read fails the open
  // cleanly, and the very next open succeeds with nothing lost.
  FaultRegistry::Global().ArmNthHit("storage.page.read", 1);
  {
    auto failed = Database::Open(dir, TinyPool());
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.status().code(), Status::Code::kIoError)
        << failed.status().ToString();
  }
  FaultRegistry::Global().Reset();
  auto db = Database::Open(dir, TinyPool());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(db.value()
                .Query("SELECT count(*) FROM ta")
                .value()
                .rows()[0][0]
                .AsInt(),
            40);
}

TEST(RecoveryTest, CheckpointTruncatesWalAndDropsStaleEpoch) {
  const std::string dir = FreshDir("sgb_rec_epoch");
  auto db = Database::Open(dir, TinyPool());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE(db.value().Query("CREATE TABLE ta (v INT)").ok());
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(
        db.value().Query("INSERT INTO ta VALUES (" + std::to_string(i) + ")")
            .ok());
  }
  EXPECT_GT(db.value().storage()->stats().wal_bytes, 0u);
  ASSERT_TRUE(db.value().Query("CHECKPOINT").ok());
  EXPECT_EQ(db.value().storage()->stats().wal_bytes, 0u)
      << "checkpoint must start a fresh WAL epoch";

  // Exactly one epoch file remains on disk.
  size_t wal_files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().filename().string().rfind("wal-", 0) == 0) ++wal_files;
  }
  EXPECT_EQ(wal_files, 1u);
}

// ---- The differential crash harness -------------------------------------

struct CrashRun {
  std::vector<std::string> applied;  ///< statements that returned OK
  std::string crashed_stmt;          ///< "" when the fault never fired
  Status crash_status;
};

/// Applies `stmts` to a fresh database in `dir` with `site` armed at hit
/// `nth`, stopping at the first injected failure (the engine is poisoned
/// past it). The database is closed (crashed or not) before returning.
CrashRun RunWorkloadWithKill(const std::string& dir,
                             const std::vector<std::string>& stmts,
                             const std::string& site, uint64_t nth) {
  CrashRun run;
  auto db = Database::Open(dir, TinyPool());
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  if (!db.ok()) return run;
  FaultRegistry::Global().ArmNthHit(site, nth);
  for (const std::string& stmt : stmts) {
    auto result = db.value().Query(stmt);
    if (result.ok()) {
      run.applied.push_back(stmt);
      continue;
    }
    // Workload-level failures (e.g. INSERT into a table the schedule just
    // dropped) are ordinary; only the injected IoError naming the site is
    // the kill.
    if (result.status().code() != Status::Code::kIoError ||
        result.status().ToString().find(site) == std::string::npos) {
      continue;
    }
    run.crashed_stmt = stmt;
    run.crash_status = result.status();
    break;
  }
  FaultRegistry::Global().Reset();
  return run;
}

std::vector<std::string> GenerateWorkload(Rng& rng, size_t n) {
  std::vector<std::string> stmts;
  int next_id = 0;
  for (size_t i = 0; i < n; ++i) {
    const char* table = kTables[rng.NextBounded(2)];
    const uint64_t dice = rng.NextBounded(100);
    if (dice < 12) {
      stmts.push_back(std::string("CREATE TABLE IF NOT EXISTS ") + table +
                      " (id INT, x DOUBLE, y DOUBLE)");
    } else if (dice < 20) {
      stmts.push_back("CHECKPOINT");
    } else if (dice < 24) {
      stmts.push_back(std::string("DROP TABLE IF EXISTS ") + table);
    } else {
      std::string sql = std::string("INSERT INTO ") + table + " VALUES ";
      const size_t rows = 1 + rng.NextBounded(6);
      for (size_t r = 0; r < rows; ++r) {
        char buf[128];
        std::snprintf(buf, sizeof(buf), "%s(%d, %.17g, %.17g)",
                      r == 0 ? "" : ", ", next_id++,
                      static_cast<double>(rng.NextBounded(8)) +
                          rng.NextUniform(0.0, 1.0),
                      static_cast<double>(rng.NextBounded(8)) +
                          rng.NextUniform(0.0, 1.0));
        sql += buf;
      }
      stmts.push_back(sql);
    }
  }
  // INSERT into a table that does not exist yet fails the oracle replay;
  // make the first statements create both tables.
  stmts.insert(stmts.begin(),
               std::string("CREATE TABLE IF NOT EXISTS ") + kTables[1] +
                   " (id INT, x DOUBLE, y DOUBLE)");
  stmts.insert(stmts.begin(),
               std::string("CREATE TABLE IF NOT EXISTS ") + kTables[0] +
                   " (id INT, x DOUBLE, y DOUBLE)");
  return stmts;
}

TEST(RecoveryTest, RandomizedKillsAtEveryFaultSiteMatchOracle) {
  struct SiteRule {
    const char* site;
    bool strict_without;  ///< crashed stmt definitely NOT recovered
    bool strict_with;     ///< crashed stmt definitely recovered (INSERTs)
  };
  // wal.append fails before the frame is written: the statement cannot
  // survive. page.write fails after the WAL fsync: an in-flight INSERT
  // must survive. wal.fsync is indeterminate: either outcome is legal.
  const SiteRule kRules[] = {
      {"storage.wal.append", true, false},
      {"storage.wal.fsync", false, false},
      {"storage.page.write", false, true},
  };

  Rng rng(20260809);
  size_t fired_runs = 0;
  for (const SiteRule& rule : kRules) {
    for (size_t round = 0; round < 8; ++round) {
      const std::string dir = FreshDir(
          "sgb_rec_kill_" + std::to_string(fired_runs) + "_" +
          std::to_string(round) + "_" + &rule.site[8]);
      const std::vector<std::string> stmts = GenerateWorkload(rng, 30);
      const uint64_t nth = 1 + rng.NextBounded(40);
      SCOPED_TRACE(std::string(rule.site) + " nth=" + std::to_string(nth) +
                   " round=" + std::to_string(round));

      CrashRun run = RunWorkloadWithKill(dir, stmts, rule.site, nth);
      if (!run.crashed_stmt.empty()) ++fired_runs;

      auto db = Database::Open(dir, TinyPool());
      ASSERT_TRUE(db.ok()) << "recovery failed: " << db.status().ToString();

      if (run.crashed_stmt.empty()) {
        EXPECT_EQ(DiffAgainstOracle(db.value(), run.applied), "");
        continue;
      }
      std::vector<std::string> with = run.applied;
      with.push_back(run.crashed_stmt);
      // A crashed CHECKPOINT changes no logical contents either way; a
      // wal.append kill fires before anything became durable. A page.write
      // kill fires only after the statement's WAL fsync (INSERT eviction)
      // or inside CHECKPOINT, so an in-flight INSERT must survive. Only
      // wal.fsync leaves the in-flight mutation genuinely indeterminate.
      const bool is_checkpoint = run.crashed_stmt == "CHECKPOINT";
      if (rule.strict_without || is_checkpoint) {
        EXPECT_EQ(DiffAgainstOracle(db.value(), run.applied), "")
            << "crashed: " << run.crashed_stmt;
      } else if (rule.strict_with) {
        ASSERT_EQ(run.crashed_stmt.rfind("INSERT", 0), 0u)
            << "page.write fired outside INSERT/CHECKPOINT: "
            << run.crashed_stmt;
        EXPECT_EQ(DiffAgainstOracle(db.value(), with), "")
            << "crashed: " << run.crashed_stmt;
      } else {
        // Indeterminate durability: exactly one of the two must match.
        const std::string diff_without =
            DiffAgainstOracle(db.value(), run.applied);
        if (!diff_without.empty()) {
          EXPECT_EQ(DiffAgainstOracle(db.value(), with), "")
              << "matches neither oracle; without-crashed diff:\n"
              << diff_without << "\ncrashed: " << run.crashed_stmt;
        }
      }

      // Recovery must be deterministic: a second reopen of the same
      // directory yields byte-identical contents.
      std::vector<std::string> first;
      for (const char* name : kTables) {
        auto t = db.value().Query(std::string("SELECT * FROM ") + name);
        first.push_back(t.ok() ? WriteCsvToString(t.value()) : "<absent>");
      }
      {
        auto again = Database::Open(dir, TinyPool());
        ASSERT_TRUE(again.ok()) << again.status().ToString();
        for (size_t t = 0; t < 2; ++t) {
          auto table =
              again.value().Query(std::string("SELECT * FROM ") + kTables[t]);
          EXPECT_EQ(table.ok() ? WriteCsvToString(table.value()) : "<absent>",
                    first[t]);
        }
      }
    }
  }
  EXPECT_GT(fired_runs, 6u)
      << "most kills never fired; retune the nth-hit ranges";
}

}  // namespace
}  // namespace sgb::engine
