// BufferManager invariants and eviction-policy conformance
// (docs/STORAGE.md "Buffer manager").
//
// The eviction policies are checked against independent reference models
// that re-implement the documented rules (classic LRU; simplified 2Q with
// Kin = capacity/4, Kout = capacity/2, ghost promotion, A1in hits leaving
// the FIFO untouched) and must agree victim-for-victim on randomized
// traces. The pool itself is checked for the pin contract: pinned pages
// are never evicted, never reloaded, and their bytes never mutate —
// including across write-backs — and an all-pinned pool reports
// ResourceExhausted instead of corrupting a frame. The 8-thread hammer at
// the end is the target of the CI storage-smoke TSan leg.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/memory_tracker.h"
#include "common/random.h"
#include "storage/buffer_manager.h"
#include "storage/page.h"
#include "storage/page_file.h"

namespace sgb::storage {
namespace {

constexpr size_t kPageSize = 256;  // SlottedPage::kMinPageSize

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// ---- Eviction-policy reference models -----------------------------------
//
// Deliberately reimplemented from the documented rules (not the policy
// code) with plain vectors, so a behavior change in either side breaks the
// conformance sweep.

/// Classic LRU: front = most recent; victim = least recent evictable.
class RefLru {
 public:
  void OnInsert(uint64_t key) { order_.insert(order_.begin(), key); }
  void OnAccess(uint64_t key) {
    auto it = std::find(order_.begin(), order_.end(), key);
    if (it == order_.end()) return;
    order_.erase(it);
    order_.insert(order_.begin(), key);
  }
  void OnRemove(uint64_t key, bool /*evicted*/) {
    auto it = std::find(order_.begin(), order_.end(), key);
    if (it != order_.end()) order_.erase(it);
  }
  template <typename Fn>
  bool PickVictim(const Fn& evictable, uint64_t* key) {
    for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
      if (evictable(*it)) {
        *key = *it;
        return true;
      }
    }
    return false;
  }

 private:
  std::vector<uint64_t> order_;
};

/// Simplified 2Q (Johnson & Shasha): A1in FIFO for first-timers, Am LRU
/// for pages re-referenced after eviction (ghost hit), A1out ghost FIFO of
/// keys evicted from A1in, capped at Kout.
class Ref2Q {
 public:
  explicit Ref2Q(size_t capacity_pages)
      : kin_(std::max<size_t>(1, capacity_pages / 4)),
        kout_(std::max<size_t>(1, capacity_pages / 2)) {}

  void OnInsert(uint64_t key) {
    auto ghost = std::find(a1out_.begin(), a1out_.end(), key);
    if (ghost != a1out_.end()) {
      a1out_.erase(ghost);
      am_.insert(am_.begin(), key);
      return;
    }
    a1in_.insert(a1in_.begin(), key);
  }
  void OnAccess(uint64_t key) {
    auto am = std::find(am_.begin(), am_.end(), key);
    if (am != am_.end()) {
      am_.erase(am);
      am_.insert(am_.begin(), key);
    }
    // A hit in A1in leaves the FIFO order untouched.
  }
  void OnRemove(uint64_t key, bool evicted) {
    auto a1 = std::find(a1in_.begin(), a1in_.end(), key);
    if (a1 != a1in_.end()) {
      a1in_.erase(a1);
      if (evicted) {
        a1out_.insert(a1out_.begin(), key);
        while (a1out_.size() > kout_) a1out_.pop_back();
      }
      return;
    }
    auto am = std::find(am_.begin(), am_.end(), key);
    if (am != am_.end()) am_.erase(am);
  }
  template <typename Fn>
  bool PickVictim(const Fn& evictable, uint64_t* key) {
    const bool prefer_a1in = a1in_.size() > kin_ || am_.empty();
    const auto& first = prefer_a1in ? a1in_ : am_;
    const auto& second = prefer_a1in ? am_ : a1in_;
    for (const auto* queue : {&first, &second}) {
      for (auto it = queue->rbegin(); it != queue->rend(); ++it) {
        if (evictable(*it)) {
          *key = *it;
          return true;
        }
      }
    }
    return false;
  }

 private:
  const size_t kin_;
  const size_t kout_;
  std::vector<uint64_t> a1in_;
  std::vector<uint64_t> am_;
  std::vector<uint64_t> a1out_;
};

/// Drives the real policy and a reference model through an identical
/// randomized trace of insert/access/remove/pick-victim operations and
/// asserts they agree on every victim decision.
template <typename Ref>
void RunConformanceTrace(EvictionPolicy* policy, Ref* ref, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> resident;
  for (size_t step = 0; step < 4000; ++step) {
    const uint64_t op = rng.NextBounded(10);
    if (op < 4 || resident.empty()) {
      // Insert a key not currently resident (universe of 24 keys keeps
      // ghost-list hits frequent).
      uint64_t key = rng.NextBounded(24);
      if (std::find(resident.begin(), resident.end(), key) !=
          resident.end()) {
        continue;
      }
      policy->OnInsert(key);
      ref->OnInsert(key);
      resident.push_back(key);
    } else if (op < 7) {
      const uint64_t key = resident[rng.NextBounded(resident.size())];
      policy->OnAccess(key);
      ref->OnAccess(key);
    } else if (op < 8) {
      // Discard (DROP TABLE path: no ghost entry).
      const size_t at = rng.NextBounded(resident.size());
      const uint64_t key = resident[at];
      policy->OnRemove(key, /*evicted=*/false);
      ref->OnRemove(key, /*evicted=*/false);
      resident.erase(resident.begin() + static_cast<ptrdiff_t>(at));
    } else {
      // Eviction: a random subset is pinned (non-evictable); both sides
      // must pick the same victim, which then leaves the pool.
      std::vector<uint64_t> pinned;
      for (const uint64_t key : resident) {
        if (rng.NextBounded(4) == 0) pinned.push_back(key);
      }
      const auto evictable = [&resident, &pinned](uint64_t key) {
        return std::find(resident.begin(), resident.end(), key) !=
                   resident.end() &&
               std::find(pinned.begin(), pinned.end(), key) == pinned.end();
      };
      uint64_t got = 0;
      uint64_t want = 0;
      const bool got_found = policy->PickVictim(evictable, &got);
      const bool want_found = ref->PickVictim(evictable, &want);
      ASSERT_EQ(got_found, want_found) << "step " << step;
      if (!got_found) continue;
      ASSERT_EQ(got, want) << "step " << step;
      policy->OnRemove(got, /*evicted=*/true);
      ref->OnRemove(got, /*evicted=*/true);
      resident.erase(std::find(resident.begin(), resident.end(), got));
    }
  }
}

TEST(EvictionPolicyTest, LruMatchesReferenceModel) {
  for (const uint64_t seed : {1u, 7u, 42u, 20260809u}) {
    auto policy = MakeEvictionPolicy(EvictionPolicyKind::kLru, 8);
    RefLru ref;
    RunConformanceTrace(policy.get(), &ref, seed);
  }
}

TEST(EvictionPolicyTest, TwoQueueMatchesReferenceModel) {
  for (const size_t capacity : {size_t{1}, size_t{4}, size_t{8}, size_t{16}}) {
    for (const uint64_t seed : {3u, 11u, 20260809u}) {
      auto policy = MakeEvictionPolicy(EvictionPolicyKind::k2Q, capacity);
      Ref2Q ref(capacity);
      RunConformanceTrace(policy.get(), &ref, seed ^ capacity);
    }
  }
}

// Deterministic 2Q scenario: a one-shot scan washes through A1in without
// displacing the hot set, and a ghost re-reference promotes into Am.
TEST(EvictionPolicyTest, TwoQueueScanResistanceAndGhostPromotion) {
  auto policy = MakeEvictionPolicy(EvictionPolicyKind::k2Q, 8);  // Kin=2
  const auto all = [](uint64_t) { return true; };
  uint64_t victim = 0;

  policy->OnInsert(1);
  policy->OnInsert(2);
  policy->OnInsert(3);  // A1in (newest->oldest): 3 2 1, size 3 > Kin
  ASSERT_TRUE(policy->PickVictim(all, &victim));
  EXPECT_EQ(victim, 1u);  // FIFO tail goes first, despite...
  policy->OnAccess(2);    // ...this A1in hit: correlated hits don't reorder.
  ASSERT_TRUE(policy->PickVictim(all, &victim));
  EXPECT_EQ(victim, 1u);

  policy->OnRemove(1, /*evicted=*/true);  // 1 becomes a ghost
  policy->OnInsert(1);                    // ghost hit: promoted to Am
  policy->OnInsert(4);                    // A1in: 4 3 2 — over Kin again
  ASSERT_TRUE(policy->PickVictim(all, &victim));
  EXPECT_EQ(victim, 2u) << "hot page 1 (in Am) must outlive the scan queue";
}

TEST(EvictionPolicyTest, ParseAndName) {
  EXPECT_EQ(ParseEvictionPolicy("lru").value(), EvictionPolicyKind::kLru);
  EXPECT_EQ(ParseEvictionPolicy("2q").value(), EvictionPolicyKind::k2Q);
  EXPECT_FALSE(ParseEvictionPolicy("arc").ok());
  EXPECT_STREQ(ToString(EvictionPolicyKind::kLru), "lru");
  EXPECT_STREQ(ToString(EvictionPolicyKind::k2Q), "2q");
}

// ---- BufferManager ------------------------------------------------------

class BufferManagerTest : public ::testing::Test {
 protected:
  /// Opens a segment of `pages` pre-written pages (page p's payload byte at
  /// kStamp is p) behind a pool of `capacity` pages.
  void Setup(size_t capacity, size_t pages, EvictionPolicyKind kind,
             const std::string& name) {
    dir_ = FreshDir(name);
    pool_ = std::make_unique<BufferManager>(capacity * kPageSize, kPageSize,
                                            kind, &MemoryTracker::EngineGlobal());
    auto file = PageFile::Open(dir_ + "/t1.seg", kPageSize);
    ASSERT_TRUE(file.ok()) << file.status().ToString();
    file_ = std::move(file).value();
    std::vector<uint8_t> buf(kPageSize, 0);
    for (size_t p = 0; p < pages; ++p) {
      buf[kStamp] = static_cast<uint8_t>(p);
      ASSERT_TRUE(file_->Write(p, buf.data()).ok());
    }
    seg_ = pool_->RegisterSegment(file_.get());
  }

  void TearDown() override {
    if (pool_ != nullptr && file_ != nullptr) {
      EXPECT_TRUE(pool_->UnregisterSegment(seg_).ok());
    }
  }

  /// First payload byte outside the checksum field (write-back stamps the
  /// page checksum into bytes [0, 4)).
  static constexpr size_t kStamp = SlottedPage::kHeaderBytes;

  std::string dir_;
  std::unique_ptr<BufferManager> pool_;
  std::unique_ptr<PageFile> file_;
  uint32_t seg_ = 0;
};

// Pool-level conformance: residency and the hit/miss/eviction counters
// after every pin must match a reference simulation of the documented
// replacement behavior (evict-on-miss-when-full via the policy, all
// unpinned pages evictable).
TEST_F(BufferManagerTest, ResidencyMatchesReferenceSimulation) {
  constexpr size_t kCapacity = 4;
  constexpr size_t kPages = 12;
  for (const EvictionPolicyKind kind :
       {EvictionPolicyKind::kLru, EvictionPolicyKind::k2Q}) {
    SCOPED_TRACE(ToString(kind));
    Setup(kCapacity, kPages, kind, std::string("sgb_buffer_sim_") +
                                       ToString(kind));

    RefLru ref_lru;
    Ref2Q ref_2q(kCapacity);
    std::vector<uint64_t> resident;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    const auto key_of = [this](uint64_t p) {
      return (static_cast<uint64_t>(seg_) << 40) | p;
    };
    const auto simulate = [&](uint64_t page) {
      const uint64_t key = key_of(page);
      const bool hit = std::find(resident.begin(), resident.end(), key) !=
                       resident.end();
      if (hit) {
        ++hits;
        if (kind == EvictionPolicyKind::kLru) ref_lru.OnAccess(key);
        else ref_2q.OnAccess(key);
        return;
      }
      while (resident.size() >= kCapacity) {
        const auto evictable = [](uint64_t) { return true; };
        uint64_t victim = 0;
        const bool found = kind == EvictionPolicyKind::kLru
                               ? ref_lru.PickVictim(evictable, &victim)
                               : ref_2q.PickVictim(evictable, &victim);
        ASSERT_TRUE(found);
        if (kind == EvictionPolicyKind::kLru) ref_lru.OnRemove(victim, true);
        else ref_2q.OnRemove(victim, true);
        resident.erase(std::find(resident.begin(), resident.end(), victim));
        ++evictions;
      }
      ++misses;
      if (kind == EvictionPolicyKind::kLru) ref_lru.OnInsert(key);
      else ref_2q.OnInsert(key);
      resident.push_back(key);
    };

    Rng rng(0xB0FF + static_cast<uint64_t>(kind));
    for (size_t step = 0; step < 600; ++step) {
      const uint64_t page = rng.NextBounded(kPages);
      auto guard = pool_->Pin(seg_, page);
      ASSERT_TRUE(guard.ok()) << guard.status().ToString();
      EXPECT_EQ(guard.value().data()[kStamp], static_cast<uint8_t>(page));
      guard.value().Reset();
      simulate(page);

      for (uint64_t p = 0; p < kPages; ++p) {
        const bool want = std::find(resident.begin(), resident.end(),
                                    key_of(p)) != resident.end();
        ASSERT_EQ(pool_->IsResident(seg_, p), want)
            << "step " << step << " page " << p;
      }
    }
    const BufferPoolStats stats = pool_->stats();
    EXPECT_EQ(stats.hits, hits);
    EXPECT_EQ(stats.misses, misses);
    EXPECT_EQ(stats.evictions, evictions);
    EXPECT_EQ(stats.resident_pages, resident.size());
    EXPECT_EQ(stats.policy, ToString(kind));

    ASSERT_TRUE(pool_->UnregisterSegment(seg_).ok());
    pool_.reset();
    file_.reset();
  }
}

TEST_F(BufferManagerTest, AllPinnedPoolReportsResourceExhausted) {
  Setup(3, 8, EvictionPolicyKind::kLru, "sgb_buffer_pinned");
  std::vector<BufferManager::PageGuard> guards;
  for (uint64_t p = 0; p < 3; ++p) {
    auto guard = pool_->Pin(seg_, p);
    ASSERT_TRUE(guard.ok()) << guard.status().ToString();
    guards.push_back(std::move(guard).value());
  }
  auto overflow = pool_->Pin(seg_, 5);
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), Status::Code::kResourceExhausted);
  EXPECT_NE(overflow.status().ToString().find("all 3 pages pinned"),
            std::string::npos)
      << overflow.status().ToString();
  // The failed pin evicted nothing: every pinned page is still resident.
  for (uint64_t p = 0; p < 3; ++p) {
    EXPECT_TRUE(pool_->IsResident(seg_, p));
  }
  EXPECT_EQ(pool_->stats().pinned_pages, 3u);

  // Releasing one pin unblocks the pool; the victim is the released page.
  guards[0].Reset();
  auto retry = pool_->Pin(seg_, 5);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_FALSE(pool_->IsResident(seg_, 0));
  EXPECT_TRUE(pool_->IsResident(seg_, 1));
  EXPECT_TRUE(pool_->IsResident(seg_, 2));
}

// The pin contract: while pinned, a frame is never evicted, never
// reloaded, and its bytes/address never change — regardless of eviction
// pressure and write-backs around it.
TEST_F(BufferManagerTest, PinnedFrameIsStableUnderEvictionPressure) {
  Setup(2, 10, EvictionPolicyKind::kLru, "sgb_buffer_stable");
  auto pinned = pool_->Pin(seg_, 0);
  ASSERT_TRUE(pinned.ok()) << pinned.status().ToString();
  uint8_t* const data = pinned.value().data();
  data[kStamp + 1] = 0xAB;
  pinned.value().MarkDirty();

  // Churn every other page through the one remaining frame.
  for (size_t round = 0; round < 4; ++round) {
    for (uint64_t p = 1; p < 10; ++p) {
      auto guard = pool_->Pin(seg_, p);
      ASSERT_TRUE(guard.ok()) << guard.status().ToString();
    }
  }
  EXPECT_GT(pool_->stats().evictions, 0u);
  EXPECT_TRUE(pool_->IsResident(seg_, 0));
  EXPECT_EQ(pinned.value().data(), data) << "pinned frame must not move";
  EXPECT_EQ(data[kStamp + 1], 0xAB);

  // A flush writes the pinned dirty frame back without mutating it (the
  // checksum is stamped into a scratch copy, not the resident bytes).
  ASSERT_TRUE(pool_->FlushSegment(seg_).ok());
  EXPECT_EQ(pinned.value().data(), data);
  EXPECT_EQ(data[kStamp + 1], 0xAB);
  EXPECT_EQ(pool_->stats().dirty_pages, 0u);

  // The write-back reached disk: evict after unpin and reload.
  pinned.value().Reset();
  for (uint64_t p = 1; p < 4; ++p) {
    ASSERT_TRUE(pool_->Pin(seg_, p).ok());
  }
  EXPECT_FALSE(pool_->IsResident(seg_, 0));
  auto reloaded = pool_->Pin(seg_, 0);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded.value().data()[kStamp + 1], 0xAB);
}

TEST_F(BufferManagerTest, DirtyEvictionRoundTripsThroughDisk) {
  Setup(2, 6, EvictionPolicyKind::kLru, "sgb_buffer_dirty");
  {
    auto guard = pool_->Pin(seg_, 3);
    ASSERT_TRUE(guard.ok()) << guard.status().ToString();
    std::memset(guard.value().data() + kStamp, 0x5A, 16);
    guard.value().MarkDirty();
  }
  // Force page 3 out (its write-back stamps a checksum), then reload.
  ASSERT_TRUE(pool_->Pin(seg_, 0).ok());
  ASSERT_TRUE(pool_->Pin(seg_, 1).ok());
  ASSERT_FALSE(pool_->IsResident(seg_, 3));
  EXPECT_GT(pool_->stats().writebacks, 0u);
  auto reloaded = pool_->Pin(seg_, 3);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  for (size_t i = 0; i < 16; ++i) {
    ASSERT_EQ(reloaded.value().data()[kStamp + i], 0x5A);
  }
  EXPECT_TRUE(SlottedPage(reloaded.value().data(), kPageSize).ChecksumValid());
}

TEST_F(BufferManagerTest, PinNewOfResidentPageFails) {
  Setup(4, 2, EvictionPolicyKind::kLru, "sgb_buffer_pinnew");
  ASSERT_TRUE(pool_->Pin(seg_, 0).ok());
  auto dup = pool_->PinNew(seg_, 0);
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), Status::Code::kInternal);

  auto fresh = pool_->PinNew(seg_, 2);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  for (size_t i = 0; i < kPageSize; ++i) {
    ASSERT_EQ(fresh.value().data()[i], 0) << "PinNew must hand out a zeroed page";
  }
  EXPECT_EQ(pool_->stats().dirty_pages, 1u) << "a new page is born dirty";
}

TEST_F(BufferManagerTest, SetCapacityEvictsDownButSparesPinned) {
  Setup(6, 8, EvictionPolicyKind::kLru, "sgb_buffer_capacity");
  std::vector<BufferManager::PageGuard> guards;
  for (uint64_t p = 0; p < 3; ++p) {
    auto guard = pool_->Pin(seg_, p);
    ASSERT_TRUE(guard.ok());
    guards.push_back(std::move(guard).value());
  }
  for (uint64_t p = 3; p < 6; ++p) {
    ASSERT_TRUE(pool_->Pin(seg_, p).ok());
  }
  ASSERT_EQ(pool_->stats().resident_pages, 6u);

  // Shrink to 1 page: the unpinned pages go; the 3 pinned survive over
  // capacity and drain as pins release.
  ASSERT_TRUE(pool_->SetCapacityBytes(kPageSize).ok());
  EXPECT_EQ(pool_->capacity_pages(), 1u);
  EXPECT_EQ(pool_->stats().resident_pages, 3u);
  for (uint64_t p = 0; p < 3; ++p) {
    EXPECT_TRUE(pool_->IsResident(seg_, p));
  }
  guards.clear();
  // The over-capacity residue converges on the next miss.
  ASSERT_TRUE(pool_->Pin(seg_, 7).ok());
  EXPECT_LE(pool_->stats().resident_pages, 3u);

  ASSERT_TRUE(pool_->SetCapacityBytes(8 * kPageSize).ok());
  EXPECT_EQ(pool_->capacity_pages(), 8u);
}

TEST_F(BufferManagerTest, SetPolicySwapsMidStream) {
  Setup(4, 8, EvictionPolicyKind::kLru, "sgb_buffer_setpolicy");
  for (uint64_t p = 0; p < 4; ++p) {
    ASSERT_TRUE(pool_->Pin(seg_, p).ok());
  }
  ASSERT_TRUE(pool_->SetPolicy(EvictionPolicyKind::k2Q).ok());
  EXPECT_EQ(pool_->stats().policy, "2q");
  // The pool keeps serving and evicting under the new policy.
  for (uint64_t p = 0; p < 8; ++p) {
    auto guard = pool_->Pin(seg_, p);
    ASSERT_TRUE(guard.ok()) << guard.status().ToString();
    EXPECT_EQ(guard.value().data()[kStamp], static_cast<uint8_t>(p));
  }
  EXPECT_LE(pool_->stats().resident_pages, 4u);
  ASSERT_TRUE(pool_->SetPolicy(EvictionPolicyKind::kLru).ok());
  EXPECT_EQ(pool_->stats().policy, "lru");
}

TEST_F(BufferManagerTest, UnregisterSegmentRequiresUnpinnedFrames) {
  Setup(4, 4, EvictionPolicyKind::kLru, "sgb_buffer_unregister");
  auto guard = pool_->Pin(seg_, 1);
  ASSERT_TRUE(guard.ok());
  EXPECT_FALSE(pool_->UnregisterSegment(seg_).ok());
  guard.value().Reset();
  ASSERT_TRUE(pool_->UnregisterSegment(seg_).ok());
  EXPECT_EQ(pool_->stats().resident_pages, 0u);
  // Pinning a forgotten segment is an internal error, not a crash.
  EXPECT_FALSE(pool_->Pin(seg_, 0).ok());
  file_.reset();
  pool_.reset();
}

// 8 threads hammer a 64-page segment through an 8-frame pool: every thread
// counts up the pages it owns (page % 8 == tid) and pin/unpins the rest,
// driving constant eviction, write-back, and busy-frame waits. Run under
// TSan by the CI storage-smoke leg; the final per-page counters prove no
// update was lost and no torn frame was ever handed out.
TEST_F(BufferManagerTest, EightThreadHammerKeepsFramesCoherent) {
  constexpr size_t kThreads = 8;
  constexpr size_t kPages = 64;
  constexpr size_t kIters = 1500;
  Setup(8, kPages, EvictionPolicyKind::k2Q, "sgb_buffer_hammer");

  std::vector<std::vector<uint32_t>> counts(
      kThreads, std::vector<uint32_t>(kPages, 0));
  std::vector<std::thread> threads;
  std::atomic<bool> failed{false};
  for (size_t tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([this, tid, &counts, &failed] {
      Rng rng(0x4A33 + tid);
      for (size_t i = 0; i < kIters && !failed.load(); ++i) {
        const uint64_t page = rng.NextBounded(kPages);
        auto guard = pool_->Pin(seg_, page);
        if (!guard.ok()) {
          failed.store(true);
          ADD_FAILURE() << guard.status().ToString();
          return;
        }
        if (page % kThreads == tid) {
          // Owner: bump the page's little-endian counter (placed past the
          // per-page stamp byte, which Setup pre-wrote). Only the owner
          // ever touches these bytes, so a torn or stale frame shows up as
          // a count mismatch at the end.
          uint8_t* at = guard.value().data() + kStamp + 4;
          uint32_t v;
          std::memcpy(&v, at, sizeof(v));
          ++v;
          std::memcpy(at, &v, sizeof(v));
          guard.value().MarkDirty();
          ++counts[tid][page];
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_FALSE(failed.load());

  for (uint64_t page = 0; page < kPages; ++page) {
    auto guard = pool_->Pin(seg_, page);
    ASSERT_TRUE(guard.ok()) << guard.status().ToString();
    uint32_t v;
    std::memcpy(&v, guard.value().data() + kStamp + 4, sizeof(v));
    EXPECT_EQ(v, counts[page % kThreads][page]) << "page " << page;
  }
  const BufferPoolStats stats = pool_->stats();
  EXPECT_GT(stats.evictions, 0u) << "the hammer never stressed eviction";
  EXPECT_GT(stats.writebacks, 0u);
  EXPECT_EQ(stats.pinned_pages, 0u);
}

}  // namespace
}  // namespace sgb::storage
