// Disk-backed tables through the engine (docs/STORAGE.md): the paged
// storage path must be invisible to SQL — scans, aggregates, and SGB
// grouping over a table MUCH larger than the buffer pool produce exactly
// what an in-memory database produces — while the storage knobs
// (SET buffer_pool_bytes / SET eviction / CHECKPOINT / system.buffer_pool)
// stay observable and the segment files come and go with their tables.

#include <gtest/gtest.h>

#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "common/random.h"
#include "engine/csv.h"
#include "engine/executor.h"
#include "storage/paged_table.h"
#include "storage/storage_engine.h"

namespace sgb::engine {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// A tiny pool (4 x 256-byte pages) so even small tables run out of core.
storage::StorageOptions TinyPool() {
  storage::StorageOptions options;
  options.page_size = 256;
  options.buffer_pool_bytes = 4 * 256;
  return options;
}

std::string Csv(Result<Table> result) {
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? WriteCsvToString(result.value()) : std::string();
}

// The acceptance gate: a table larger than the buffer pool, filled with a
// clustered point workload, must scan, GROUP BY, aggregate, and
// SGB-group bit-identically to an in-memory database fed the same
// statements — at both eviction policies.
TEST(OutOfCoreTest, TableLargerThanPoolMatchesInMemoryDatabase) {
  for (const char* policy : {"lru", "'2q'"}) {
    SCOPED_TRACE(policy);
    const std::string dir =
        FreshDir(std::string("sgb_ooc_") + (policy[0] == 'l' ? "lru" : "2q"));
    auto disk = Database::Open(dir, TinyPool());
    ASSERT_TRUE(disk.ok()) << disk.status().ToString();
    Database memory;

    const std::string create =
        "CREATE TABLE pts (id INT, x DOUBLE, y DOUBLE)";
    ASSERT_TRUE(disk.value().Query(create).ok());
    ASSERT_TRUE(memory.Query(create).ok());
    ASSERT_TRUE(
        disk.value().Query(std::string("SET eviction = ") + policy).ok());

    // ~600 rows in multi-row statements: tens of pages against a 4-page
    // pool, so the INSERT path itself already evicts and writes back.
    Rng rng(0x00C0FFEE);
    int id = 0;
    for (size_t stmt = 0; stmt < 75; ++stmt) {
      std::string sql = "INSERT INTO pts VALUES ";
      for (size_t r = 0; r < 8; ++r) {
        const double cx = static_cast<double>(rng.NextBounded(5)) * 10.0;
        const double cy = static_cast<double>(rng.NextBounded(5)) * 10.0;
        char buf[128];
        std::snprintf(buf, sizeof(buf), "%s(%d, %.17g, %.17g)",
                      r == 0 ? "" : ", ", id++,
                      cx + rng.NextUniform(-1.0, 1.0),
                      cy + rng.NextUniform(-1.0, 1.0));
        sql += buf;
      }
      ASSERT_TRUE(disk.value().Query(sql).ok());
      ASSERT_TRUE(memory.Query(sql).ok());
    }

    // The table genuinely exceeds the pool.
    storage::PagedTablePtr paged = disk.value().storage()->Find("pts");
    ASSERT_NE(paged, nullptr);
    EXPECT_GT(paged->ApproxBytes(), TinyPool().buffer_pool_bytes * 4)
        << "grow the workload: the out-of-core gate is not exercised";

    for (const char* sql : {
             "SELECT * FROM pts",
             "SELECT count(*), sum(id), min(x), max(y) FROM pts",
             "SELECT count(*) FROM pts WHERE x < 25",
             "SELECT group_id, count(*) FROM pts GROUP BY x, y "
             "DISTANCE-TO-ANY L2 WITHIN 3.0",
             "SELECT group_id, count(*) FROM pts GROUP BY x, y "
             "DISTANCE-TO-ALL LINF WITHIN 4.0 ON-OVERLAP FORM-NEW-GROUP",
         }) {
      SCOPED_TRACE(sql);
      EXPECT_EQ(Csv(disk.value().Query(sql)), Csv(memory.Query(sql)));
    }

    // The sweep must have churned the pool, not just fit in it.
    const auto stats = disk.value().storage()->buffer_stats();
    EXPECT_GT(stats.evictions, 0u);
    EXPECT_LE(stats.resident_pages, stats.capacity_pages);
  }
}

TEST(PagedTableTest, RowsComeBackInInsertionOrderAcrossPages) {
  const std::string dir = FreshDir("sgb_paged_order");
  auto db = Database::Open(dir, TinyPool());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE(db.value().Query("CREATE TABLE seq (v INT)").ok());
  for (int v = 0; v < 200; v += 4) {
    char sql[128];
    std::snprintf(sql, sizeof(sql),
                  "INSERT INTO seq VALUES (%d), (%d), (%d), (%d)", v, v + 1,
                  v + 2, v + 3);
    ASSERT_TRUE(db.value().Query(sql).ok());
  }
  auto result = db.value().Query("SELECT v FROM seq");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().rows().size(), 200u);
  for (size_t i = 0; i < 200; ++i) {
    ASSERT_EQ(result.value().rows()[i][0].AsInt(),
              static_cast<int64_t>(i));
  }

  // Catalog::Get materializes the same snapshot the scan streams.
  auto materialized = db.value().storage()->Find("seq")->MaterializeSnapshot();
  ASSERT_TRUE(materialized.ok()) << materialized.status().ToString();
  EXPECT_EQ(WriteCsvToString(materialized.value()),
            WriteCsvToString(result.value()));
}

TEST(PagedTableTest, DropTableUnlinksSegmentFile) {
  const std::string dir = FreshDir("sgb_paged_drop");
  auto db = Database::Open(dir, TinyPool());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE(db.value().Query("CREATE TABLE doomed (v INT)").ok());
  ASSERT_TRUE(db.value().Query("INSERT INTO doomed VALUES (1), (2)").ok());

  storage::PagedTablePtr table = db.value().storage()->Find("doomed");
  ASSERT_NE(table, nullptr);
  const std::string seg_path = table->file()->path();
  ASSERT_TRUE(std::filesystem::exists(seg_path));

  ASSERT_TRUE(db.value().Query("DROP TABLE doomed").ok());
  EXPECT_FALSE(db.value().Query("SELECT * FROM doomed").ok());
  // Our reference keeps the segment alive (a scan in flight would too)...
  EXPECT_TRUE(std::filesystem::exists(seg_path));
  table.reset();
  // ...and the file disappears with the last reference.
  EXPECT_FALSE(std::filesystem::exists(seg_path));

  // DROP of a missing table honors IF EXISTS.
  EXPECT_FALSE(db.value().Query("DROP TABLE doomed").ok());
  EXPECT_TRUE(db.value().Query("DROP TABLE IF EXISTS doomed").ok());
}

TEST(PagedTableTest, CreateTableConflictsAndIfNotExists) {
  const std::string dir = FreshDir("sgb_paged_create");
  auto db = Database::Open(dir, TinyPool());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE(db.value().Query("CREATE TABLE t (v INT)").ok());
  EXPECT_FALSE(db.value().Query("CREATE TABLE t (v INT)").ok());
  EXPECT_TRUE(db.value().Query("CREATE TABLE IF NOT EXISTS t (v INT)").ok());
  ASSERT_TRUE(db.value().Query("INSERT INTO t VALUES (7)").ok());
  EXPECT_EQ(db.value()
                .Query("SELECT count(*) FROM t")
                .value()
                .rows()[0][0]
                .AsInt(),
            1);
}

TEST(PagedTableTest, OversizedRowIsRejectedBeforeTouchingTheWal) {
  const std::string dir = FreshDir("sgb_paged_bigrow");
  auto db = Database::Open(dir, TinyPool());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE(db.value().Query("CREATE TABLE blobs (s TEXT)").ok());
  // A 256-byte page holds at most 244 record bytes; this cannot fit.
  const std::string big(400, 'x');
  auto result = db.value().Query("INSERT INTO blobs VALUES ('" + big + "')");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kInvalidArgument)
      << result.status().ToString();
  // The rejection is clean: the engine is not poisoned and keeps working.
  EXPECT_TRUE(db.value().Query("INSERT INTO blobs VALUES ('ok')").ok());
  EXPECT_EQ(db.value()
                .Query("SELECT count(*) FROM blobs")
                .value()
                .rows()[0][0]
                .AsInt(),
            1);
}

TEST(PagedTableTest, BufferPoolKnobsAndSystemTable) {
  const std::string dir = FreshDir("sgb_paged_knobs");
  auto db = Database::Open(dir, TinyPool());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE(db.value().Query("CREATE TABLE t (v INT)").ok());
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(db.value().Query("INSERT INTO t VALUES (" +
                                 std::to_string(i) + ")").ok());
  }

  auto pool = db.value().Query(
      "SELECT policy, capacity_pages, page_size FROM system.buffer_pool");
  ASSERT_TRUE(pool.ok()) << pool.status().ToString();
  ASSERT_EQ(pool.value().rows().size(), 1u);
  EXPECT_EQ(pool.value().rows()[0][0].AsString(), "lru");
  EXPECT_EQ(pool.value().rows()[0][1].AsInt(), 4);
  EXPECT_EQ(pool.value().rows()[0][2].AsInt(), 256);

  ASSERT_TRUE(db.value().Query("SET eviction = '2q'").ok());
  ASSERT_TRUE(db.value().Query("SET buffer_pool_bytes = 2048").ok());
  pool = db.value().Query(
      "SELECT policy, capacity_pages FROM system.buffer_pool");
  ASSERT_TRUE(pool.ok());
  EXPECT_EQ(pool.value().rows()[0][0].AsString(), "2q");
  EXPECT_EQ(pool.value().rows()[0][1].AsInt(), 8);

  EXPECT_FALSE(db.value().Query("SET eviction = arc").ok());

  // Traffic counters move when a scan walks the table.
  ASSERT_TRUE(db.value().Query("SELECT count(*) FROM t").ok());
  auto counters = db.value().Query(
      "SELECT hits, misses, crashed FROM system.buffer_pool");
  ASSERT_TRUE(counters.ok());
  EXPECT_GT(counters.value().rows()[0][0].AsInt() +
                counters.value().rows()[0][1].AsInt(),
            0);
  EXPECT_EQ(counters.value().rows()[0][2].AsInt(), 0);
}

TEST(PagedTableTest, StorageKnobsRequireDiskBackedDatabase) {
  Database memory;
  for (const char* sql : {"SET eviction = lru", "SET buffer_pool_bytes = 4096",
                          "CHECKPOINT"}) {
    auto result = memory.Query(sql);
    ASSERT_FALSE(result.ok()) << sql;
    EXPECT_NE(result.status().ToString().find("disk-backed"),
              std::string::npos)
        << result.status().ToString();
  }
}

TEST(PagedTableTest, CheckpointStatementAndCloseBothPersist) {
  const std::string dir = FreshDir("sgb_paged_persist");
  {
    auto db = Database::Open(dir, TinyPool());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_TRUE(db.value().Query("CREATE TABLE t (v INT, s TEXT)").ok());
    ASSERT_TRUE(
        db.value().Query("INSERT INTO t VALUES (1, 'a'), (2, 'b')").ok());
    ASSERT_TRUE(db.value().Query("CHECKPOINT").ok());
    // Post-checkpoint inserts ride on the WAL until the close checkpoint.
    ASSERT_TRUE(db.value().Query("INSERT INTO t VALUES (3, 'c')").ok());
  }
  {
    auto db = Database::Open(dir, TinyPool());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    EXPECT_EQ(Csv(db.value().Query("SELECT * FROM t")), "v,s\n1,a\n2,b\n3,c\n");
    auto stats = db.value().Query(
        "SELECT checkpoints, wal_replayed FROM system.buffer_pool");
    ASSERT_TRUE(stats.ok());
    // The close checkpoint made the reopen replay nothing.
    EXPECT_EQ(stats.value().rows()[0][1].AsInt(), 0);
  }
}

TEST(PagedTableTest, SystemTablesReportPagedKind) {
  const std::string dir = FreshDir("sgb_paged_systables");
  auto db = Database::Open(dir, TinyPool());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE(db.value().Query("CREATE TABLE disky (v INT)").ok());
  ASSERT_TRUE(db.value().Query("INSERT INTO disky VALUES (1), (2), (3)").ok());
  const std::string csv = Csv(db.value().Query(
      "SELECT name, kind, rows FROM system.tables WHERE name = 'disky'"));
  EXPECT_NE(csv.find("disky,paged,3"), std::string::npos) << csv;
}

}  // namespace
}  // namespace sgb::engine
