#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "workload/checkin.h"
#include "workload/distributions.h"
#include "workload/tpch.h"

namespace sgb::workload {
namespace {

TEST(DateTest, CivilFromDaysRoundTrip) {
  EXPECT_EQ(CivilFromDays(0), "1970-01-01");
  EXPECT_EQ(CivilFromDays(TpchDateRangeStart()), "1992-01-01");
  EXPECT_EQ(CivilFromDays(TpchDateRangeStart() + 31), "1992-02-01");
  // 1992 is a leap year.
  EXPECT_EQ(CivilFromDays(TpchDateRangeStart() + 59), "1992-02-29");
}

TEST(ZipfTest, SkewFavorsLowRanks) {
  Rng rng(1);
  ZipfDistribution zipf(100, 1.2);
  std::vector<size_t> histogram(100, 0);
  for (int i = 0; i < 20000; ++i) ++histogram[zipf.Sample(rng)];
  EXPECT_GT(histogram[0], histogram[10]);
  EXPECT_GT(histogram[0], 20000u / 100u);  // far above uniform share
}

TEST(GaussianMixtureTest, SamplesClusterAroundComponents) {
  Rng rng(2);
  GaussianMixture2D mixture;
  mixture.AddComponent({{0, 0}, 0.1, 1.0});
  mixture.AddComponent({{100, 100}, 0.1, 1.0});
  int near_a = 0;
  int near_b = 0;
  for (int i = 0; i < 1000; ++i) {
    const geom::Point p = mixture.Sample(rng);
    if (geom::DistanceL2(p, {0, 0}) < 5) ++near_a;
    if (geom::DistanceL2(p, {100, 100}) < 5) ++near_b;
  }
  EXPECT_EQ(near_a + near_b, 1000);
  EXPECT_GT(near_a, 300);
  EXPECT_GT(near_b, 300);
}

TEST(TpchTest, RowCountsScaleWithSf) {
  TpchConfig small;
  small.scale_factor = 0.5;
  const TpchData data = GenerateTpch(small);
  EXPECT_EQ(data.customer->NumRows(), 500u);
  EXPECT_EQ(data.orders->NumRows(), 1000u);
  EXPECT_EQ(data.supplier->NumRows(), 50u);
  EXPECT_EQ(data.partsupp->NumRows(), 4 * 100u);
  EXPECT_GT(data.lineitem->NumRows(), data.orders->NumRows());
}

TEST(TpchTest, ForeignKeysAreConsistent) {
  TpchConfig config;
  config.scale_factor = 0.2;
  const TpchData data = GenerateTpch(config);
  const int64_t customers =
      static_cast<int64_t>(data.customer->NumRows());
  for (const auto& row : data.orders->rows()) {
    const int64_t custkey = row[1].AsInt();
    EXPECT_GE(custkey, 1);
    EXPECT_LE(custkey, customers);
  }
  // Every lineitem (partkey, suppkey) pair exists in partsupp.
  std::set<std::pair<int64_t, int64_t>> pairs;
  for (const auto& row : data.partsupp->rows()) {
    pairs.insert({row[0].AsInt(), row[1].AsInt()});
  }
  for (const auto& row : data.lineitem->rows()) {
    EXPECT_TRUE(pairs.count({row[1].AsInt(), row[2].AsInt()}) > 0);
  }
}

TEST(TpchTest, DatesAreConsistent) {
  TpchConfig config;
  config.scale_factor = 0.1;
  const TpchData data = GenerateTpch(config);
  for (const auto& row : data.lineitem->rows()) {
    const std::string& ship = row[6].AsString();
    const std::string& receipt = row[7].AsString();
    EXPECT_LT(ship, receipt);  // lexicographic == chronological for ISO
    EXPECT_EQ(CivilFromDays(row[8].AsInt()), ship);
    EXPECT_EQ(CivilFromDays(row[9].AsInt()), receipt);
  }
}

TEST(TpchTest, DeterministicForSeed) {
  TpchConfig config;
  config.scale_factor = 0.1;
  const TpchData a = GenerateTpch(config);
  const TpchData b = GenerateTpch(config);
  ASSERT_EQ(a.customer->NumRows(), b.customer->NumRows());
  for (size_t i = 0; i < a.customer->NumRows(); ++i) {
    EXPECT_TRUE(engine::RowEq()(a.customer->rows()[i],
                                b.customer->rows()[i]));
  }
}

TEST(CheckinTest, GeneratesRequestedCount) {
  const auto pts = GenerateCheckins(BrightkiteLike(5000));
  EXPECT_EQ(pts.size(), 5000u);
}

TEST(CheckinTest, HotspotsMakeDataSkewed) {
  // Clustered check-ins should pack far more points into the densest cell
  // than a uniform scatter would.
  const auto config = BrightkiteLike(20000);
  const auto pts = GenerateCheckins(config);
  std::map<std::pair<int, int>, size_t> cells;
  size_t densest = 0;
  for (const auto& p : pts) {
    const auto key = std::make_pair(static_cast<int>(p.x),
                                    static_cast<int>(p.y));
    densest = std::max(densest, ++cells[key]);
  }
  const double box_cells = (config.hi.x - config.lo.x) *
                           (config.hi.y - config.lo.y);
  const double uniform_share = 20000.0 / box_cells;
  EXPECT_GT(static_cast<double>(densest), 20 * uniform_share);
}

TEST(CheckinTest, TableFormMatchesPointForm) {
  const auto config = GowallaLike(1000);
  const auto table = GenerateCheckinTable(config);
  const auto pts = GenerateCheckins(config);
  ASSERT_EQ(table->NumRows(), pts.size());
  for (size_t i = 0; i < pts.size(); ++i) {
    EXPECT_DOUBLE_EQ(table->rows()[i][1].AsDouble(), pts[i].y);
    EXPECT_DOUBLE_EQ(table->rows()[i][2].AsDouble(), pts[i].x);
  }
}

}  // namespace
}  // namespace sgb::workload
