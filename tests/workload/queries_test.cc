// Integration tests: the Table 2 evaluation queries (GB1-GB3, SGB1-SGB6)
// parse, plan, and execute end-to-end over micro TPC-H data.

#include <gtest/gtest.h>

#include "engine/executor.h"
#include "workload/queries.h"
#include "workload/tpch.h"

namespace sgb::workload {
namespace {

using core::OverlapClause;
using engine::Database;
using geom::Metric;

class Table2QueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TpchConfig config;
    config.scale_factor = 0.25;
    GenerateTpch(config).RegisterAll(db_.catalog());
  }

  engine::Table Run(const std::string& sql) {
    auto result = db_.Query(sql);
    EXPECT_TRUE(result.ok()) << sql << "\n-> " << result.status().ToString();
    return result.ok() ? std::move(result).value() : engine::Table();
  }

  Database db_;
};

TEST_F(Table2QueryTest, Gb1ProducesGroups) {
  const auto out = Run(Gb1());
  EXPECT_GT(out.NumRows(), 0u);
  EXPECT_EQ(out.schema().size(), 5u);
}

TEST_F(Table2QueryTest, Sgb1AllOverlapVariants) {
  for (const auto clause :
       {OverlapClause::kJoinAny, OverlapClause::kEliminate,
        OverlapClause::kFormNewGroup}) {
    const auto out = Run(Sgb1(0.2, Metric::kL2, clause));
    EXPECT_GT(out.NumRows(), 0u) << OverlapKeyword(clause);
  }
}

TEST_F(Table2QueryTest, Sgb2AnyGroupsCoarserThanGb1) {
  const auto any = Run(Sgb2(0.2, Metric::kL2));
  const auto plain = Run(Gb1());
  EXPECT_GT(any.NumRows(), 0u);
  // Similarity grouping with a sizable ε merges near-equal keys, so it can
  // never produce more groups than the equality grouping.
  EXPECT_LE(any.NumRows(), plain.NumRows());
}

TEST_F(Table2QueryTest, Sgb3AndSgb4ProfitQueries) {
  const auto all = Run(Sgb3(0.3, Metric::kL2, OverlapClause::kJoinAny));
  EXPECT_GT(all.NumRows(), 0u);
  const auto any = Run(Sgb4(0.3, Metric::kL2));
  EXPECT_GT(any.NumRows(), 0u);
  EXPECT_LE(any.NumRows(), all.NumRows());
  const auto gb = Run(Gb2());
  EXPECT_GE(gb.NumRows(), all.NumRows());
}

TEST_F(Table2QueryTest, Sgb5AndSgb6SupplierQueries) {
  const auto all = Run(Sgb5(0.2, Metric::kLInf, OverlapClause::kEliminate));
  const auto any = Run(Sgb6(0.2, Metric::kLInf));
  const auto gb = Run(Gb3());
  EXPECT_GT(gb.NumRows(), 0u);
  EXPECT_GT(any.NumRows(), 0u);
  EXPECT_LE(any.NumRows(), gb.NumRows());
  // ELIMINATE can only shrink groups, never add rows beyond GB's count.
  EXPECT_LE(all.NumRows(), gb.NumRows());
}

TEST_F(Table2QueryTest, MetricKeywordRoundTrip) {
  EXPECT_STREQ(MetricKeyword(Metric::kL2), "L2");
  EXPECT_STREQ(MetricKeyword(Metric::kLInf), "LINF");
  EXPECT_STREQ(OverlapKeyword(OverlapClause::kFormNewGroup),
               "FORM-NEW-GROUP");
}

}  // namespace
}  // namespace sgb::workload
