#include "geom/rect.h"

#include <gtest/gtest.h>

namespace sgb::geom {
namespace {

TEST(RectTest, EmptyRectContainsNothing) {
  const Rect empty = Rect::Empty();
  EXPECT_TRUE(empty.IsEmpty());
  EXPECT_FALSE(empty.Contains(Point{0, 0}));
  EXPECT_DOUBLE_EQ(empty.Area(), 0.0);
}

TEST(RectTest, AroundBuildsTheLInfBall) {
  const Rect r = Rect::Around({1, 2}, 3);
  EXPECT_EQ(r.lo, (Point{-2, -1}));
  EXPECT_EQ(r.hi, (Point{4, 5}));
  // Boundary is inclusive, matching ξδ∞,ε.
  EXPECT_TRUE(r.Contains(Point{4, 5}));
  EXPECT_FALSE(r.Contains(Point{4.0001, 5}));
}

TEST(RectTest, ContainsAndIntersects) {
  const Rect a = Rect::FromPoints({0, 0}, {4, 4});
  const Rect b = Rect::FromPoints({2, 2}, {6, 6});
  const Rect c = Rect::FromPoints({5, 5}, {7, 7});
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(c));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(a.Contains(Rect::FromPoints({1, 1}, {2, 2})));
  EXPECT_FALSE(a.Contains(b));
}

TEST(RectTest, TouchingEdgesIntersect) {
  const Rect a = Rect::FromPoints({0, 0}, {1, 1});
  const Rect b = Rect::FromPoints({1, 1}, {2, 2});
  EXPECT_TRUE(a.Intersects(b));
}

TEST(RectTest, EmptyRectNeverIntersects) {
  const Rect a = Rect::FromPoints({0, 0}, {1, 1});
  EXPECT_FALSE(a.Intersects(Rect::Empty()));
  EXPECT_FALSE(Rect::Empty().Intersects(a));
}

TEST(RectTest, ExpandAndClip) {
  Rect r = Rect::Empty();
  r.Expand(Point{1, 1});
  r.Expand(Point{3, -1});
  EXPECT_EQ(r, Rect::FromPoints({1, -1}, {3, 1}));

  r.Clip(Rect::FromPoints({2, -5}, {10, 0}));
  EXPECT_EQ(r, Rect::FromPoints({2, -1}, {3, 0}));

  r.Clip(Rect::FromPoints({9, 9}, {10, 10}));
  EXPECT_TRUE(r.IsEmpty());
}

TEST(RectTest, EnlargementIsZeroForContainedRect) {
  const Rect a = Rect::FromPoints({0, 0}, {10, 10});
  EXPECT_DOUBLE_EQ(a.Enlargement(Rect::FromPoints({1, 1}, {2, 2})), 0.0);
  EXPECT_GT(a.Enlargement(Rect::FromPoints({11, 0}, {12, 1})), 0.0);
}

TEST(RectTest, CenterAndArea) {
  const Rect r = Rect::FromPoints({0, 0}, {4, 2});
  EXPECT_EQ(r.Center(), (Point{2, 1}));
  EXPECT_DOUBLE_EQ(r.Area(), 8.0);
}

}  // namespace
}  // namespace sgb::geom
