#include "geom/convex_hull.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.h"

namespace sgb::geom {
namespace {

TEST(ConvexHullTest, SquareWithInteriorPoints) {
  const std::vector<Point> pts = {{0, 0}, {2, 0}, {2, 2}, {0, 2}, {1, 1},
                                  {0.5, 0.5}};
  const std::vector<Point> hull = ConvexHull(pts);
  EXPECT_EQ(hull.size(), 4u);
  for (const Point& corner :
       std::vector<Point>{{0, 0}, {2, 0}, {2, 2}, {0, 2}}) {
    EXPECT_NE(std::find(hull.begin(), hull.end(), corner), hull.end());
  }
}

TEST(ConvexHullTest, CollinearPointsCollapseToSegment) {
  const std::vector<Point> pts = {{0, 0}, {1, 1}, {2, 2}, {3, 3}};
  const std::vector<Point> hull = ConvexHull(pts);
  EXPECT_EQ(hull.size(), 2u);
}

TEST(ConvexHullTest, DuplicatesAndSmallInputs) {
  EXPECT_TRUE(ConvexHull(std::vector<Point>{}).empty());
  EXPECT_EQ(ConvexHull(std::vector<Point>{{1, 1}}).size(), 1u);
  EXPECT_EQ(ConvexHull(std::vector<Point>{{1, 1}, {1, 1}}).size(), 1u);
  EXPECT_EQ(ConvexHull(std::vector<Point>{{1, 1}, {2, 2}}).size(), 2u);
}

TEST(ConvexHullTest, HullIsCounterClockwise) {
  const std::vector<Point> hull =
      ConvexHull(std::vector<Point>{{0, 0}, {4, 0}, {4, 3}, {0, 3}, {2, 1}});
  double twice_area = 0.0;
  for (size_t i = 0; i < hull.size(); ++i) {
    const Point& a = hull[i];
    const Point& b = hull[(i + 1) % hull.size()];
    twice_area += a.x * b.y - b.x * a.y;
  }
  EXPECT_GT(twice_area, 0.0);
}

TEST(ConvexHullTest, PointInConvexHull) {
  const std::vector<Point> hull =
      ConvexHull(std::vector<Point>{{0, 0}, {4, 0}, {4, 4}, {0, 4}});
  EXPECT_TRUE(PointInConvexHull({2, 2}, hull));
  EXPECT_TRUE(PointInConvexHull({0, 0}, hull));   // vertex
  EXPECT_TRUE(PointInConvexHull({2, 0}, hull));   // edge
  EXPECT_FALSE(PointInConvexHull({5, 2}, hull));
  EXPECT_FALSE(PointInConvexHull({-0.001, 2}, hull));
}

TEST(ConvexHullTest, FarthestVertexMatchesBruteForce) {
  Rng rng(123);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<Point> pts;
    for (int i = 0; i < 20; ++i) {
      pts.push_back({rng.NextUniform(-5, 5), rng.NextUniform(-5, 5)});
    }
    const std::vector<Point> hull = ConvexHull(pts);
    const Point probe{rng.NextUniform(-10, 10), rng.NextUniform(-10, 10)};

    // The farthest input point from any probe must be a hull vertex with
    // the same distance — the fact Procedure 6 relies on.
    double best_all = 0.0;
    for (const Point& p : pts) {
      best_all = std::max(best_all, DistanceL2Squared(probe, p));
    }
    const size_t idx = FarthestHullVertex(probe, hull);
    EXPECT_NEAR(DistanceL2Squared(probe, hull[idx]), best_all, 1e-9);
  }
}

TEST(IncrementalHullTest, MatchesBatchHull) {
  Rng rng(5);
  IncrementalHull inc;
  std::vector<Point> pts;
  for (int i = 0; i < 50; ++i) {
    const Point p{rng.NextUniform(0, 10), rng.NextUniform(0, 10)};
    pts.push_back(p);
    inc.Insert(p);
  }
  const std::vector<Point> batch = ConvexHull(pts);
  ASSERT_EQ(inc.hull().size(), batch.size());
  // Same vertex set (possibly rotated).
  for (const Point& v : batch) {
    EXPECT_NE(std::find(inc.hull().begin(), inc.hull().end(), v),
              inc.hull().end());
  }
}

TEST(IncrementalHullTest, WithinEpsilonOfAllIsExact) {
  // Property: for a valid group (all pairs within ε under L2), the hull
  // test must agree exactly with the brute-force all-members check.
  Rng rng(42);
  const double eps = 2.0;
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<Point> members;
    IncrementalHull hull;
    // Build a valid group by rejection sampling.
    while (members.size() < 8) {
      const Point cand{rng.NextUniform(0, 2), rng.NextUniform(0, 2)};
      bool ok = true;
      for (const Point& m : members) {
        ok = ok && Similar(cand, m, Metric::kL2, eps);
      }
      if (ok) {
        members.push_back(cand);
        hull.Insert(cand);
      }
    }
    for (int probe = 0; probe < 60; ++probe) {
      const Point q{rng.NextUniform(-3, 5), rng.NextUniform(-3, 5)};
      bool expected = true;
      for (const Point& m : members) {
        expected = expected && Similar(q, m, Metric::kL2, eps);
      }
      EXPECT_EQ(hull.WithinEpsilonOfAll(q, eps), expected);
    }
  }
}

TEST(IncrementalHullTest, DuplicatePointsDoNotBreakTheTest) {
  IncrementalHull hull;
  hull.Insert({1, 1});
  hull.Insert({1, 1});
  EXPECT_TRUE(hull.WithinEpsilonOfAll({1.5, 1}, 1.0));
  EXPECT_FALSE(hull.WithinEpsilonOfAll({5, 5}, 1.0));
}

TEST(IncrementalHullTest, ExpectedHullSizeIsLogarithmic) {
  // The paper's appendix uses E[h] = O(log k) for k random points to bound
  // the convex-hull test's cost. Check the trend statistically: the hull
  // of 4000 uniform points must stay tiny (O(log k) ~ a few dozen), and
  // growing k 16x must add only a few vertices.
  Rng rng(31337);
  auto hull_size = [&rng](size_t k) {
    std::vector<Point> pts;
    pts.reserve(k);
    for (size_t i = 0; i < k; ++i) {
      pts.push_back({rng.NextUniform(0, 1), rng.NextUniform(0, 1)});
    }
    return ConvexHull(pts).size();
  };
  const size_t h_small = hull_size(250);
  const size_t h_big = hull_size(4000);
  EXPECT_LT(h_big, 64u);
  EXPECT_LT(h_big, h_small * 4);  // far below the 16x point growth
}

TEST(IncrementalHullTest, EmptyHullAcceptsEverything) {
  IncrementalHull hull;
  EXPECT_TRUE(hull.WithinEpsilonOfAll({100, 100}, 0.1));
}

}  // namespace
}  // namespace sgb::geom
