#include "geom/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/random.h"
#include "geom/point.h"
#include "geom/rect.h"

namespace sgb::geom {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Coordinate pool mixing ordinary values with every special the kernels
/// must agree on: NaN, ±inf, signed zero, subnormal-adjacent magnitudes.
const double kSpecials[] = {0.0,  -0.0, 1.0,   -1.5,  1e-300, -1e300,
                            kNaN, kInf, -kInf, 0.125, 3.75,   -2.5};

/// Fills n-point SoA columns from the mixed pool, deterministically.
void FillColumns(Rng& rng, size_t n, std::vector<double>* xs,
                 std::vector<double>* ys) {
  xs->clear();
  ys->clear();
  for (size_t i = 0; i < n; ++i) {
    // Every 4th point draws from the specials pool so blocks of any size
    // contain NaN/inf lanes in SIMD and remainder positions alike.
    if (i % 4 == 3) {
      xs->push_back(kSpecials[rng.NextBounded(std::size(kSpecials))]);
      ys->push_back(kSpecials[rng.NextBounded(std::size(kSpecials))]);
    } else {
      xs->push_back(rng.NextUniform(-3.0, 3.0));
      ys->push_back(rng.NextUniform(-3.0, 3.0));
    }
  }
}

/// Bitwise mask + count comparison of one variant against the scalar
/// reference, for all block sizes 0..130 (covers whole SIMD quads/octets,
/// every remainder length, and the 64/128-bit mask-word boundaries).
template <typename RefFn, typename VarFn>
void ExpectSimilarVariantMatches(const char* variant_name, RefFn ref,
                                 VarFn var, double threshold) {
  Rng rng(42);
  std::vector<double> xs, ys;
  for (size_t n = 0; n <= 130; ++n) {
    FillColumns(rng, n, &xs, &ys);
    const double qx = (n % 5 == 4) ? kNaN : rng.NextUniform(-3.0, 3.0);
    const double qy = rng.NextUniform(-3.0, 3.0);
    std::vector<uint64_t> want(KernelMaskWords(n) + 1, ~uint64_t{0});
    std::vector<uint64_t> got(KernelMaskWords(n) + 1, ~uint64_t{0});
    const size_t want_count =
        ref(qx, qy, xs.data(), ys.data(), n, threshold, want.data());
    const size_t got_count =
        var(qx, qy, xs.data(), ys.data(), n, threshold, got.data());
    EXPECT_EQ(want_count, got_count)
        << variant_name << " count mismatch at n=" << n;
    for (size_t w = 0; w < KernelMaskWords(n); ++w) {
      EXPECT_EQ(want[w], got[w])
          << variant_name << " mask word " << w << " at n=" << n;
    }
  }
}

TEST(KernelsTest, PortableL2MatchesScalarBitwise) {
  ExpectSimilarVariantMatches("portable", SimilarBlockL2Scalar,
                              SimilarBlockL2Portable, 1.5 * 1.5);
}

TEST(KernelsTest, PortableLInfMatchesScalarBitwise) {
  ExpectSimilarVariantMatches("portable", SimilarBlockLInfScalar,
                              SimilarBlockLInfPortable, 1.5);
}

TEST(KernelsTest, DispatchedL2MatchesScalarBitwise) {
  ExpectSimilarVariantMatches("dispatched", SimilarBlockL2Scalar,
                              SimilarBlockL2, 2.0 * 2.0);
}

TEST(KernelsTest, DispatchedLInfMatchesScalarBitwise) {
  ExpectSimilarVariantMatches("dispatched", SimilarBlockLInfScalar,
                              SimilarBlockLInf, 2.0);
}

#if defined(SGB_HAVE_AVX2)
TEST(KernelsTest, Avx2L2MatchesScalarBitwise) {
  ExpectSimilarVariantMatches("avx2", SimilarBlockL2Scalar,
                              SimilarBlockL2Avx2, 1.5 * 1.5);
}

TEST(KernelsTest, Avx2LInfMatchesScalarBitwise) {
  ExpectSimilarVariantMatches("avx2", SimilarBlockLInfScalar,
                              SimilarBlockLInfAvx2, 1.5);
}
#endif

TEST(KernelsTest, RectFilterVariantsMatchScalarBitwise) {
  Rng rng(7);
  std::vector<double> xs, ys;
  const Rect rect{{-1.0, -2.0}, {2.0, 1.5}};
  for (size_t n = 0; n <= 130; ++n) {
    FillColumns(rng, n, &xs, &ys);
    std::vector<uint64_t> want(KernelMaskWords(n) + 1, ~uint64_t{0});
    std::vector<uint64_t> got(KernelMaskWords(n) + 1, ~uint64_t{0});
    const size_t want_count =
        RectFilterBlockScalar(rect, xs.data(), ys.data(), n, want.data());
    size_t got_count =
        RectFilterBlockPortable(rect, xs.data(), ys.data(), n, got.data());
    EXPECT_EQ(want_count, got_count) << "portable count at n=" << n;
    for (size_t w = 0; w < KernelMaskWords(n); ++w) {
      EXPECT_EQ(want[w], got[w]) << "portable word " << w << " n=" << n;
    }
#if defined(SGB_HAVE_AVX2)
    got_count =
        RectFilterBlockAvx2(rect, xs.data(), ys.data(), n, got.data());
    EXPECT_EQ(want_count, got_count) << "avx2 count at n=" << n;
    for (size_t w = 0; w < KernelMaskWords(n); ++w) {
      EXPECT_EQ(want[w], got[w]) << "avx2 word " << w << " n=" << n;
    }
#endif
  }
}

TEST(KernelsTest, ScalarAgreesWithSimilarPredicate) {
  // The scalar kernels are the reference; anchor them to geom::Similar so
  // the whole differential chain bottoms out at the paper's ξδ,ε.
  Rng rng(99);
  std::vector<double> xs, ys;
  FillColumns(rng, 64, &xs, &ys);
  const double eps = 1.25;
  std::vector<uint64_t> mask(KernelMaskWords(64));
  const Point q{0.5, -0.25};
  SimilarBlockL2Scalar(q.x, q.y, xs.data(), ys.data(), 64, eps * eps,
                       mask.data());
  for (size_t i = 0; i < 64; ++i) {
    const bool want = Similar(q, Point{xs[i], ys[i]}, Metric::kL2, eps);
    EXPECT_EQ(want, ((mask[0] >> i) & 1) != 0) << "L2 i=" << i;
  }
  SimilarBlockLInfScalar(q.x, q.y, xs.data(), ys.data(), 64, eps,
                         mask.data());
  for (size_t i = 0; i < 64; ++i) {
    const bool want = Similar(q, Point{xs[i], ys[i]}, Metric::kLInf, eps);
    EXPECT_EQ(want, ((mask[0] >> i) & 1) != 0) << "LInf i=" << i;
  }
}

TEST(KernelsTest, EpsilonZeroKeepsOnlyExactCoincidence) {
  const double xs[] = {1.0, 1.0, 1.0 + 1e-12, kNaN};
  const double ys[] = {2.0, 2.0 + 1e-12, 2.0, 2.0};
  uint64_t mask = ~uint64_t{0};
  EXPECT_EQ(SimilarBlockL2(1.0, 2.0, xs, ys, 4, 0.0, &mask), 1u);
  EXPECT_EQ(mask, uint64_t{1});
  // Under L∞ the NaN-x point also matches: fmax(NaN, 0) == 0 <= 0.
  EXPECT_EQ(SimilarBlockLInf(1.0, 2.0, xs, ys, 4, 0.0, &mask), 2u);
  EXPECT_EQ(mask, uint64_t{0b1001});
}

TEST(KernelsTest, LInfSingleNaNAxisFollowsFmax) {
  // fmax(NaN, d) == d: a point whose sole finite axis is within ε matches
  // even though the other axis is NaN. Both-NaN never matches.
  const double xs[] = {kNaN, kNaN, 0.0};
  const double ys[] = {0.5, kNaN, kNaN};
  for (auto* fn : {&SimilarBlockLInfScalar, &SimilarBlockLInfPortable,
                   &SimilarBlockLInf}) {
    uint64_t mask = 0;
    EXPECT_EQ(fn(0.0, 0.0, xs, ys, 3, 1.0, &mask), 2u);
    EXPECT_EQ(mask, uint64_t{0b101});
  }
#if defined(SGB_HAVE_AVX2)
  // Pad to exercise the SIMD quad path, not just the scalar tail.
  const double xs8[] = {kNaN, kNaN, 0.0, kNaN, kNaN, kNaN, 0.0, 9.0};
  const double ys8[] = {0.5, kNaN, kNaN, 0.5, kNaN, kNaN, kNaN, 0.0};
  uint64_t mask = 0;
  EXPECT_EQ(SimilarBlockLInfAvx2(0.0, 0.0, xs8, ys8, 8, 1.0, &mask), 4u);
  EXPECT_EQ(mask, uint64_t{0b01001101});
#endif
}

TEST(KernelsTest, TrailingMaskBitsAreCleared) {
  std::vector<double> xs(5, 0.0), ys(5, 0.0);
  uint64_t mask = ~uint64_t{0};
  EXPECT_EQ(SimilarBlockL2(0.0, 0.0, xs.data(), ys.data(), 5, 1.0, &mask),
            5u);
  EXPECT_EQ(mask, uint64_t{0b11111});
}

TEST(KernelsTest, ForEachSetBitAscendingAcrossWords) {
  uint64_t mask[2] = {(uint64_t{1} << 3) | (uint64_t{1} << 63),
                      uint64_t{1} << 2};
  std::vector<size_t> seen;
  ForEachSetBit(mask, 128, [&](size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<size_t>{3, 63, 66}));
}

TEST(KernelsTest, PointBlockAndColumnsRoundTrip) {
  PointBlock block;
  PointColumns cols;
  EXPECT_TRUE(cols.empty());
  for (size_t i = 0; i < 10; ++i) {
    const Point p{static_cast<double>(i), -static_cast<double>(i)};
    block.PushBack(p);
    cols.PushBack(p);
  }
  EXPECT_EQ(block.size, 10u);
  EXPECT_FALSE(block.Full());
  EXPECT_EQ(cols.size(), 10u);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(block.At(i).x, cols[i].x);
    EXPECT_EQ(block.At(i).y, cols[i].y);
    EXPECT_EQ(cols.xs()[i], static_cast<double>(i));
  }
  block.Clear();
  cols.Clear();
  EXPECT_EQ(block.size, 0u);
  EXPECT_TRUE(cols.empty());
}

TEST(KernelsTest, ActiveVariantIsKnown) {
  const std::string variant = ActiveKernelVariant();
  EXPECT_TRUE(variant == "scalar" || variant == "portable" ||
              variant == "avx2")
      << variant;
}

TEST(KernelsTest, BlockSimilarityMatchesMetricKernels) {
  Rng rng(3);
  std::vector<double> xs, ys;
  FillColumns(rng, 40, &xs, &ys);
  const Point q{0.1, 0.2};
  std::vector<uint64_t> want(KernelMaskWords(40));
  std::vector<uint64_t> got(KernelMaskWords(40));

  const BlockSimilarity l2(Metric::kL2, 1.5);
  EXPECT_EQ(l2.scalar().epsilon_sq(), 1.5 * 1.5);
  size_t want_count =
      SimilarBlockL2(q.x, q.y, xs.data(), ys.data(), 40, 1.5 * 1.5,
                     want.data());
  EXPECT_EQ(l2.Match(q, xs.data(), ys.data(), 40, got.data()), want_count);
  EXPECT_EQ(want, got);

  const BlockSimilarity linf(Metric::kLInf, 1.5);
  want_count = SimilarBlockLInf(q.x, q.y, xs.data(), ys.data(), 40, 1.5,
                                want.data());
  EXPECT_EQ(linf.Match(q, xs.data(), ys.data(), 40, got.data()), want_count);
  EXPECT_EQ(want, got);
}

}  // namespace
}  // namespace sgb::geom
