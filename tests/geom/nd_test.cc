#include "geom/nd.h"

#include <gtest/gtest.h>

namespace sgb::geom {
namespace {

using P3 = PointN<3>;
using R3 = RectN<3>;

TEST(NdPointTest, Distances) {
  const P3 a{{0, 0, 0}};
  const P3 b{{1, 2, 2}};
  EXPECT_DOUBLE_EQ(DistanceL2Squared(a, b), 9.0);
  EXPECT_DOUBLE_EQ(DistanceL2(a, b), 3.0);
  EXPECT_DOUBLE_EQ(DistanceLInf(a, b), 2.0);
}

TEST(NdPointTest, SimilarPredicateBoundaries) {
  const P3 a{{0, 0, 0}};
  const P3 b{{1, 2, 2}};
  EXPECT_TRUE(Similar(a, b, Metric::kL2, 3.0));
  EXPECT_FALSE(Similar(a, b, Metric::kL2, 2.999));
  EXPECT_TRUE(Similar(a, b, Metric::kLInf, 2.0));
  EXPECT_FALSE(Similar(a, b, Metric::kLInf, 1.999));
}

TEST(NdPointTest, HigherDimensions) {
  const PointN<5> a{{1, 1, 1, 1, 1}};
  const PointN<5> b{{2, 2, 2, 2, 2}};
  EXPECT_DOUBLE_EQ(DistanceL2Squared(a, b), 5.0);
  EXPECT_DOUBLE_EQ(DistanceLInf(a, b), 1.0);
}

TEST(NdRectTest, EmptyAndAround) {
  R3 empty = R3::Empty();
  EXPECT_TRUE(empty.IsEmpty());
  EXPECT_FALSE(empty.Contains(P3{{0, 0, 0}}));
  EXPECT_DOUBLE_EQ(empty.Area(), 0.0);

  const R3 ball = R3::Around(P3{{1, 2, 3}}, 1.0);
  EXPECT_TRUE(ball.Contains(P3{{2, 3, 4}}));      // corner, inclusive
  EXPECT_FALSE(ball.Contains(P3{{2.001, 3, 4}}));
  EXPECT_DOUBLE_EQ(ball.Area(), 8.0);
}

TEST(NdRectTest, ExpandClipIntersect) {
  R3 r = R3::Empty();
  r.Expand(P3{{0, 0, 0}});
  r.Expand(P3{{2, 4, 6}});
  EXPECT_DOUBLE_EQ(r.Area(), 48.0);

  R3 other(P3{{1, 1, 1}}, P3{{3, 3, 3}});
  EXPECT_TRUE(r.Intersects(other));
  r.Clip(other);
  EXPECT_EQ(r.lo, (P3{{1, 1, 1}}));
  EXPECT_EQ(r.hi, (P3{{2, 3, 3}}));

  R3 far(P3{{10, 10, 10}}, P3{{11, 11, 11}});
  EXPECT_FALSE(r.Intersects(far));
  r.Clip(far);
  EXPECT_TRUE(r.IsEmpty());
}

TEST(NdRectTest, ContainsRectAndEnlargement) {
  const R3 big(P3{{0, 0, 0}}, P3{{10, 10, 10}});
  const R3 small(P3{{1, 1, 1}}, P3{{2, 2, 2}});
  EXPECT_TRUE(big.Contains(small));
  EXPECT_FALSE(small.Contains(big));
  EXPECT_DOUBLE_EQ(big.Enlargement(small), 0.0);
  EXPECT_GT(small.Enlargement(big), 0.0);
}

TEST(NdRectTest, TouchingBoxesIntersect) {
  const R3 a(P3{{0, 0, 0}}, P3{{1, 1, 1}});
  const R3 b(P3{{1, 1, 1}}, P3{{2, 2, 2}});
  EXPECT_TRUE(a.Intersects(b));
}

}  // namespace
}  // namespace sgb::geom
