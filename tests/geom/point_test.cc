#include "geom/point.h"

#include <gtest/gtest.h>

namespace sgb::geom {
namespace {

TEST(PointTest, EuclideanDistance) {
  EXPECT_DOUBLE_EQ(DistanceL2({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(DistanceL2({1, 1}, {1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(DistanceL2Squared({0, 0}, {3, 4}), 25.0);
}

TEST(PointTest, MaximumDistance) {
  EXPECT_DOUBLE_EQ(DistanceLInf({0, 0}, {3, 4}), 4.0);
  EXPECT_DOUBLE_EQ(DistanceLInf({-1, 2}, {2, 1}), 3.0);
}

TEST(PointTest, LInfNeverExceedsL2) {
  // δ∞ <= δ2 underpins every bounding-rectangle filter in the paper.
  const Point pts[] = {{0, 0}, {1.5, -2.25}, {-3, 7}, {0.1, 0.1}};
  for (const Point& a : pts) {
    for (const Point& b : pts) {
      EXPECT_LE(DistanceLInf(a, b), DistanceL2(a, b) + 1e-12);
    }
  }
}

TEST(PointTest, SimilarityPredicateBoundaryInclusive) {
  // Definition 2: ξδ,ε is true when δ(a, b) <= ε (inclusive).
  EXPECT_TRUE(Similar({0, 0}, {3, 4}, Metric::kL2, 5.0));
  EXPECT_FALSE(Similar({0, 0}, {3, 4}, Metric::kL2, 4.999));
  EXPECT_TRUE(Similar({0, 0}, {3, 4}, Metric::kLInf, 4.0));
  EXPECT_FALSE(Similar({0, 0}, {3, 4}, Metric::kLInf, 3.999));
}

TEST(PointTest, MetricsAreSymmetric) {
  const Point a{1.25, -3.5};
  const Point b{-0.75, 2.0};
  EXPECT_DOUBLE_EQ(DistanceL2(a, b), DistanceL2(b, a));
  EXPECT_DOUBLE_EQ(DistanceLInf(a, b), DistanceLInf(b, a));
}

TEST(PointTest, DistanceDispatch) {
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}, Metric::kL2), 5.0);
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}, Metric::kLInf), 4.0);
}

}  // namespace
}  // namespace sgb::geom
