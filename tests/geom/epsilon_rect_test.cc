#include "geom/epsilon_rect.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"

namespace sgb::geom {
namespace {

TEST(EpsilonRectTest, SinglePointRectIsTwoEpsilonBox) {
  // Figure 5c: for a singleton group the ε-All rectangle is 2ε x 2ε
  // centered on the point.
  EpsilonRect r(2.0);
  r.Insert({3, 3});
  EXPECT_EQ(r.all_rect(), Rect::FromPoints({1, 1}, {5, 5}));
  EXPECT_EQ(r.mbr(), Rect::FromPoints({3, 3}, {3, 3}));
}

TEST(EpsilonRectTest, RectShrinksAsMembersJoin) {
  // Figures 5d-5e: inserting members shrinks Rε-All toward ε x ε.
  EpsilonRect r(2.0);
  r.Insert({3, 3});
  r.Insert({4, 4});
  EXPECT_EQ(r.all_rect(), Rect::FromPoints({2, 2}, {5, 5}));
  r.Insert({2.5, 3.5});
  EXPECT_EQ(r.all_rect(), Rect::FromPoints({2, 2}, {4.5, 5}));
}

TEST(EpsilonRectTest, PointInRectangleTestIsExactForLInf) {
  Rng rng(99);
  const double eps = 1.5;
  for (int trial = 0; trial < 50; ++trial) {
    EpsilonRect r(eps);
    std::vector<Point> members;
    for (int i = 0; i < 6; ++i) {
      // A tight cluster so all pairs stay within ε.
      const Point p{rng.NextUniform(0, eps / 2), rng.NextUniform(0, eps / 2)};
      members.push_back(p);
      r.Insert(p);
    }
    for (int probe = 0; probe < 40; ++probe) {
      const Point q{rng.NextUniform(-2, 3), rng.NextUniform(-2, 3)};
      bool within_all = true;
      for (const Point& m : members) {
        within_all = within_all && Similar(q, m, Metric::kLInf, eps);
      }
      EXPECT_EQ(r.PointInRectangleTest(q), within_all)
          << "probe (" << q.x << "," << q.y << ")";
    }
  }
}

TEST(EpsilonRectTest, RectIsConservativeForL2) {
  // Figure 7b: under L2 the rectangle admits false positives but never
  // false negatives — outside the rectangle implies not joinable.
  Rng rng(7);
  const double eps = 1.0;
  EpsilonRect r(eps);
  std::vector<Point> members = {{0, 0}, {0.5, 0.3}, {0.2, 0.6}};
  for (const Point& m : members) r.Insert(m);
  for (int probe = 0; probe < 200; ++probe) {
    const Point q{rng.NextUniform(-2, 2), rng.NextUniform(-2, 2)};
    bool within_all = true;
    for (const Point& m : members) {
      within_all = within_all && Similar(q, m, Metric::kL2, eps);
    }
    if (within_all) {
      EXPECT_TRUE(r.PointInRectangleTest(q));
    }
  }
}

TEST(EpsilonRectTest, OverlapTestCoversAnyMemberWithinEpsilon) {
  const double eps = 1.0;
  EpsilonRect r(eps);
  r.Insert({0, 0});
  r.Insert({0.5, 0});
  // q is within ε of member (0.5, 0) but not of (0, 0) under L∞.
  const Point q{1.4, 0};
  EXPECT_FALSE(r.PointInRectangleTest(q));
  EXPECT_TRUE(r.OverlapRectangleTest(q));
  // Far away: no member can be within ε.
  EXPECT_FALSE(r.OverlapRectangleTest(Point{3.0, 0}));
}

TEST(EpsilonRectTest, RebuildAfterRemovalGrowsRect) {
  EpsilonRect r(2.0);
  r.Insert({3, 3});
  r.Insert({4, 4});
  const Rect shrunk = r.all_rect();
  std::vector<Point> remaining = {{3, 3}};
  r.Rebuild(remaining);
  EXPECT_TRUE(r.all_rect().Contains(shrunk));
  EXPECT_EQ(r.all_rect(), Rect::FromPoints({1, 1}, {5, 5}));
}

TEST(EpsilonRectTest, RebuildToEmpty) {
  EpsilonRect r(1.0);
  r.Insert({0, 0});
  r.Rebuild({});
  EXPECT_TRUE(r.empty());
  EXPECT_FALSE(r.PointInRectangleTest({0, 0}));
  EXPECT_FALSE(r.OverlapRectangleTest({0, 0}));
}

}  // namespace
}  // namespace sgb::geom
