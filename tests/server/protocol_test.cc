// Wire-protocol codec tests (docs/SERVER.md "Wire protocol"): command
// parsing, field escaping, result formatting, and the Status code tokens
// ERR lines carry.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "engine/table.h"
#include "server/protocol.h"

namespace sgb::server {
namespace {

TEST(ProtocolTest, ParsesQuery) {
  auto cmd = ParseCommand("QUERY SELECT 1 FROM t");
  ASSERT_TRUE(cmd.ok());
  EXPECT_EQ(cmd.value().kind, Command::Kind::kQuery);
  EXPECT_EQ(cmd.value().sql, "SELECT 1 FROM t");
}

TEST(ProtocolTest, VerbIsCaseInsensitive) {
  auto cmd = ParseCommand("query SELECT count(*) FROM pts");
  ASSERT_TRUE(cmd.ok());
  EXPECT_EQ(cmd.value().kind, Command::Kind::kQuery);
  EXPECT_EQ(cmd.value().sql, "SELECT count(*) FROM pts");
}

TEST(ProtocolTest, QueryUnescapesMultilineSql) {
  auto cmd = ParseCommand("QUERY SELECT *\\nFROM t\\tWHERE x = 'a\\\\b'");
  ASSERT_TRUE(cmd.ok());
  EXPECT_EQ(cmd.value().sql, "SELECT *\nFROM t\tWHERE x = 'a\\b'");
}

TEST(ProtocolTest, ParsesPrepareAndExecute) {
  auto prepare = ParseCommand("PREPARE p1 SELECT count(*) FROM pts");
  ASSERT_TRUE(prepare.ok());
  EXPECT_EQ(prepare.value().kind, Command::Kind::kPrepare);
  EXPECT_EQ(prepare.value().name, "p1");
  EXPECT_EQ(prepare.value().sql, "SELECT count(*) FROM pts");

  auto execute = ParseCommand("EXECUTE p1");
  ASSERT_TRUE(execute.ok());
  EXPECT_EQ(execute.value().kind, Command::Kind::kExecute);
  EXPECT_EQ(execute.value().name, "p1");
}

TEST(ProtocolTest, ParsesPingAndQuit) {
  auto ping = ParseCommand("PING");
  ASSERT_TRUE(ping.ok());
  EXPECT_EQ(ping.value().kind, Command::Kind::kPing);
  auto quit = ParseCommand("quit");
  ASSERT_TRUE(quit.ok());
  EXPECT_EQ(quit.value().kind, Command::Kind::kQuit);
}

TEST(ProtocolTest, RejectsMalformedCommands) {
  for (const char* bad : {"", "FROB x", "QUERY", "PREPARE p1", "EXECUTE"}) {
    auto cmd = ParseCommand(bad);
    ASSERT_FALSE(cmd.ok()) << "accepted: '" << bad << "'";
    EXPECT_EQ(cmd.status().code(), Status::Code::kInvalidArgument);
  }
}

TEST(ProtocolTest, EscapeRoundTripsControlCharacters) {
  const std::string nasty = "a\tb\\c\nd\re\\n";
  const std::string escaped = EscapeField(nasty);
  EXPECT_EQ(escaped.find('\t'), std::string::npos);
  EXPECT_EQ(escaped.find('\n'), std::string::npos);
  EXPECT_EQ(escaped.find('\r'), std::string::npos);
  EXPECT_EQ(UnescapeField(escaped), nasty);
}

TEST(ProtocolTest, EscapeRoundTripsRandomStrings) {
  Rng rng(42);
  const char alphabet[] = "ab\\\t\n\r 'x";
  for (int trial = 0; trial < 200; ++trial) {
    std::string raw;
    const size_t len = rng.NextInt(0, 24);
    for (size_t i = 0; i < len; ++i) {
      raw.push_back(alphabet[rng.NextInt(0, sizeof(alphabet) - 2)]);
    }
    EXPECT_EQ(UnescapeField(EscapeField(raw)), raw) << "raw: " << raw;
  }
}

TEST(ProtocolTest, FormatRowEscapesAndMarksNulls) {
  engine::Row row = {engine::Value::Str("tab\there"), engine::Value::Null(),
                     engine::Value::Int(42)};
  EXPECT_EQ(FormatRow(row), "tab\\there\tNULL\t42");
}

TEST(ProtocolTest, FormatHeaderListsColumnNames) {
  engine::Table table(engine::Schema({
      engine::Column{"x", engine::DataType::kDouble, ""},
      engine::Column{"label", engine::DataType::kString, ""},
  }));
  EXPECT_EQ(FormatHeader(table), "x\tlabel");
}

TEST(ProtocolTest, StatusCodeTokensRoundTrip) {
  const Status::Code codes[] = {
      Status::Code::kOk,          Status::Code::kInvalidArgument,
      Status::Code::kNotFound,    Status::Code::kParseError,
      Status::Code::kBindError,   Status::Code::kNotSupported,
      Status::Code::kInternal,    Status::Code::kResourceExhausted,
      Status::Code::kDeadlineExceeded, Status::Code::kCancelled,
      Status::Code::kIoError,
  };
  for (Status::Code code : codes) {
    EXPECT_EQ(ParseStatusCodeToken(StatusCodeToken(code)), code);
  }
  EXPECT_EQ(ParseStatusCodeToken("some_future_code"),
            Status::Code::kInternal);
}

}  // namespace
}  // namespace sgb::server
