// End-to-end tests for the multi-session server front end over both
// transports (docs/SERVER.md): the command surface, DDL/DML through the
// wire, prepared statements, error replies, the session limit, and clean
// shutdown.

#include <gtest/gtest.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "engine/executor.h"
#include "server/client.h"
#include "server/server.h"

namespace sgb::server {
namespace {

std::string UniqueUnixPath(const char* tag) {
  return "/tmp/sgb_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

engine::Database PointsDb(size_t n) {
  engine::Database db;
  auto pts = std::make_shared<engine::Table>(engine::Schema({
      engine::Column{"x", engine::DataType::kDouble, ""},
      engine::Column{"y", engine::DataType::kDouble, ""},
  }));
  Rng rng(7);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(pts->Append({engine::Value::Double(rng.NextUniform(0, 10)),
                             engine::Value::Double(rng.NextUniform(0, 10))})
                    .ok());
  }
  db.Register("pts", pts);
  return db;
}

TEST(ServerTest, StartRequiresAListener) {
  engine::Database db;
  Server server(&db, ServerOptions{});
  EXPECT_EQ(server.Start().code(), Status::Code::kInvalidArgument);
}

TEST(ServerTest, PingQueryQuitOverTcp) {
  engine::Database db = PointsDb(100);
  ServerOptions options;
  options.tcp = true;
  Server server(&db, options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.tcp_port(), 0);

  auto client = Client::ConnectLoopback(server.tcp_port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_TRUE(client.value().Ping().ok());

  auto result = client.value().Query("SELECT count(*) FROM pts");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().columns.size(), 1u);
  ASSERT_EQ(result.value().rows.size(), 1u);
  EXPECT_EQ(result.value().rows[0][0], "100");

  EXPECT_TRUE(client.value().Quit().ok());
  EXPECT_FALSE(client.value().connected());
}

TEST(ServerTest, QueryOverUnixSocket) {
  engine::Database db = PointsDb(50);
  ServerOptions options;
  options.unix_path = UniqueUnixPath("srv_unix");
  Server server(&db, options);
  ASSERT_TRUE(server.Start().ok());

  auto client = Client::ConnectUnixSocket(options.unix_path);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto result = client.value().Query("SELECT count(*) FROM pts");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows[0][0], "50");
}

TEST(ServerTest, DdlAndDmlThroughTheWire) {
  engine::Database db;
  ServerOptions options;
  options.tcp = true;
  Server server(&db, options);
  ASSERT_TRUE(server.Start().ok());

  auto writer = Client::ConnectLoopback(server.tcp_port());
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.value()
                  .Query("CREATE TABLE visits (who TEXT, n INT)")
                  .ok());
  ASSERT_TRUE(writer.value()
                  .Query("INSERT INTO visits VALUES ('ada', 3), ('bob', 1)")
                  .ok());

  // A different session reads the committed rows through its own snapshot.
  auto reader = Client::ConnectLoopback(server.tcp_port());
  ASSERT_TRUE(reader.ok());
  auto result = reader.value().Query(
      "SELECT who, n FROM visits ORDER BY who");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().rows.size(), 2u);
  EXPECT_EQ(result.value().rows[0][0], "ada");
  EXPECT_EQ(result.value().rows[0][1], "3");
  EXPECT_EQ(result.value().rows[1][0], "bob");

  ASSERT_TRUE(writer.value().Query("DROP TABLE visits").ok());
  auto gone = reader.value().Query("SELECT count(*) FROM visits");
  EXPECT_FALSE(gone.ok());
}

TEST(ServerTest, PreparedStatementsAreSessionScoped) {
  engine::Database db = PointsDb(40);
  ServerOptions options;
  options.tcp = true;
  Server server(&db, options);
  ASSERT_TRUE(server.Start().ok());

  auto c1 = Client::ConnectLoopback(server.tcp_port());
  auto c2 = Client::ConnectLoopback(server.tcp_port());
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());

  ASSERT_TRUE(c1.value().Prepare("cnt", "SELECT count(*) FROM pts").ok());
  for (int i = 0; i < 3; ++i) {
    auto result = c1.value().Execute("cnt");
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result.value().rows[0][0], "40");
  }

  // The name is bound on c1's session only.
  auto other = c2.value().Execute("cnt");
  ASSERT_FALSE(other.ok());
  EXPECT_EQ(other.status().code(), Status::Code::kNotFound);

  // PREPARE validates: garbage SQL and non-SELECT statements are rejected.
  EXPECT_FALSE(c1.value().Prepare("bad", "SELEKT frm").ok());
  EXPECT_FALSE(c1.value().Prepare("ddl", "DROP TABLE pts").ok());
}

TEST(ServerTest, ErrorsKeepTheSessionServing) {
  engine::Database db = PointsDb(10);
  ServerOptions options;
  options.tcp = true;
  Server server(&db, options);
  ASSERT_TRUE(server.Start().ok());

  auto client = Client::ConnectLoopback(server.tcp_port());
  ASSERT_TRUE(client.ok());

  auto bad_sql = client.value().Query("SELECT FROM nothing WHERE");
  ASSERT_FALSE(bad_sql.ok());

  auto missing = client.value().Query("SELECT count(*) FROM no_such_table");
  ASSERT_FALSE(missing.ok());

  // The same connection still serves after both errors.
  auto ok = client.value().Query("SELECT count(*) FROM pts");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok.value().rows[0][0], "10");
}

TEST(ServerTest, SessionLimitShedsWithParseableError) {
  engine::Database db = PointsDb(10);
  ServerOptions options;
  options.tcp = true;
  options.max_sessions = 1;
  Server server(&db, options);
  ASSERT_TRUE(server.Start().ok());

  auto first = Client::ConnectLoopback(server.tcp_port());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first.value().Ping().ok());  // ensure the slot is taken

  auto second = Client::ConnectLoopback(server.tcp_port());
  ASSERT_TRUE(second.ok());
  auto shed = second.value().Query("SELECT count(*) FROM pts");
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), Status::Code::kResourceExhausted);

  // The admitted session is unaffected.
  EXPECT_TRUE(first.value().Query("SELECT count(*) FROM pts").ok());
}

TEST(ServerTest, SessionsAppearInSystemSessions) {
  engine::Database db = PointsDb(10);
  ServerOptions options;
  options.tcp = true;
  options.unix_path = UniqueUnixPath("srv_sys");
  Server server(&db, options);
  ASSERT_TRUE(server.Start().ok());

  auto tcp_client = Client::ConnectLoopback(server.tcp_port());
  auto unix_client = Client::ConnectUnixSocket(options.unix_path);
  ASSERT_TRUE(tcp_client.ok());
  ASSERT_TRUE(unix_client.ok());
  ASSERT_TRUE(tcp_client.value().Ping().ok());
  ASSERT_TRUE(unix_client.value().Ping().ok());

  EXPECT_EQ(server.active_connections(), 2u);
  EXPECT_EQ(server.total_connections(), 2u);

  auto sessions = unix_client.value().Query(
      "SELECT peer FROM system.sessions");
  ASSERT_TRUE(sessions.ok()) << sessions.status().ToString();
  size_t tcp_peers = 0;
  size_t unix_peers = 0;
  for (const auto& row : sessions.value().rows) {
    if (row[0].rfind("tcp:", 0) == 0) ++tcp_peers;
    if (row[0].rfind("unix:", 0) == 0) ++unix_peers;
  }
  EXPECT_EQ(tcp_peers, 1u);
  EXPECT_EQ(unix_peers, 1u);
}

TEST(ServerTest, StopLeavesTheDatabaseUsable) {
  engine::Database db = PointsDb(25);
  ServerOptions options;
  options.tcp = true;
  Server server(&db, options);
  ASSERT_TRUE(server.Start().ok());

  auto client = Client::ConnectLoopback(server.tcp_port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.value().Ping().ok());

  server.Stop();
  EXPECT_EQ(server.active_connections(), 0u);

  // The severed client fails cleanly; the embedded Database is untouched.
  EXPECT_FALSE(client.value().Query("SELECT count(*) FROM pts").ok());
  auto direct = db.Query("SELECT count(*) FROM pts");
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(direct.value().rows()[0][0].AsInt(), 25);
}

}  // namespace
}  // namespace sgb::server
