// Tests for the POSIX socket wrappers under the server front end
// (docs/SERVER.md): listener lifecycle on both transports, the line
// reader's framing rules, and cross-thread unblocking.

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>

#include "common/socket.h"

namespace sgb {
namespace {

std::string UniqueUnixPath(const char* tag) {
  return "/tmp/sgb_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

TEST(SocketTest, TcpListenConnectRoundtrip) {
  auto listener = Listener::ListenTcp(0);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  ASSERT_NE(listener.value().port(), 0);

  auto client = ConnectTcp(listener.value().port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto server_side = listener.value().Accept();
  ASSERT_TRUE(server_side.ok()) << server_side.status().ToString();

  ASSERT_TRUE(client.value().WriteAll("hello wire\n").ok());
  LineReader reader(&server_side.value());
  std::string line;
  auto more = reader.ReadLine(&line);
  ASSERT_TRUE(more.ok()) << more.status().ToString();
  ASSERT_TRUE(more.value());
  EXPECT_EQ(line, "hello wire");
}

TEST(SocketTest, UnixListenConnectRoundtrip) {
  const std::string path = UniqueUnixPath("sock_rt");
  auto listener = Listener::ListenUnix(path);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();

  auto client = ConnectUnix(path);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto server_side = listener.value().Accept();
  ASSERT_TRUE(server_side.ok());

  ASSERT_TRUE(server_side.value().WriteAll("pong\n").ok());
  LineReader reader(&client.value());
  std::string line;
  auto more = reader.ReadLine(&line);
  ASSERT_TRUE(more.ok());
  ASSERT_TRUE(more.value());
  EXPECT_EQ(line, "pong");
}

TEST(SocketTest, ListenerReplacesStaleUnixSocketFile) {
  const std::string path = UniqueUnixPath("sock_stale");
  {
    auto first = Listener::ListenUnix(path);
    ASSERT_TRUE(first.ok());
  }
  // Even if the previous owner left the socket file behind, a new
  // listener binds cleanly.
  auto second = Listener::ListenUnix(path);
  EXPECT_TRUE(second.ok()) << second.status().ToString();
}

TEST(SocketTest, LineReaderSplitsPipelinedLines) {
  auto listener = Listener::ListenTcp(0);
  ASSERT_TRUE(listener.ok());
  auto client = ConnectTcp(listener.value().port());
  ASSERT_TRUE(client.ok());
  auto server_side = listener.value().Accept();
  ASSERT_TRUE(server_side.ok());

  // Three commands in one write, the last with a CRLF terminator.
  ASSERT_TRUE(client.value().WriteAll("one\ntwo\nthree\r\n").ok());
  client.value().Shutdown();

  LineReader reader(&server_side.value());
  std::string line;
  for (const char* expected : {"one", "two", "three"}) {
    auto more = reader.ReadLine(&line);
    ASSERT_TRUE(more.ok()) << more.status().ToString();
    ASSERT_TRUE(more.value());
    EXPECT_EQ(line, expected);
  }
  auto eof = reader.ReadLine(&line);
  ASSERT_TRUE(eof.ok());
  EXPECT_FALSE(eof.value());
}

TEST(SocketTest, LineReaderRejectsPartialLineAtEof) {
  auto listener = Listener::ListenTcp(0);
  ASSERT_TRUE(listener.ok());
  auto client = ConnectTcp(listener.value().port());
  ASSERT_TRUE(client.ok());
  auto server_side = listener.value().Accept();
  ASSERT_TRUE(server_side.ok());

  ASSERT_TRUE(client.value().WriteAll("terminated\nunterminated").ok());
  client.value().Close();

  LineReader reader(&server_side.value());
  std::string line;
  auto more = reader.ReadLine(&line);
  ASSERT_TRUE(more.ok());
  ASSERT_TRUE(more.value());
  EXPECT_EQ(line, "terminated");

  // A line cut off mid-way by the peer vanishing is a framing error, not
  // a command — the protocol never executes half-received statements.
  auto torn = reader.ReadLine(&line);
  ASSERT_FALSE(torn.ok());
  EXPECT_EQ(torn.status().code(), Status::Code::kIoError);
}

TEST(SocketTest, LineReaderRejectsOversizedLine) {
  auto listener = Listener::ListenTcp(0);
  ASSERT_TRUE(listener.ok());
  auto client = ConnectTcp(listener.value().port());
  ASSERT_TRUE(client.ok());
  auto server_side = listener.value().Accept();
  ASSERT_TRUE(server_side.ok());

  ASSERT_TRUE(client.value().WriteAll(std::string(256, 'x')).ok());
  LineReader reader(&server_side.value());
  std::string line;
  auto more = reader.ReadLine(&line, /*max_line_bytes=*/64);
  ASSERT_FALSE(more.ok());
  EXPECT_EQ(more.status().code(), Status::Code::kIoError);
}

TEST(SocketTest, CloseUnblocksConcurrentAccept) {
  auto listener = Listener::ListenTcp(0);
  ASSERT_TRUE(listener.ok());
  Status accept_status = Status::OK();
  std::thread acceptor([&] {
    accept_status = listener.value().Accept().status();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  listener.value().Close();
  acceptor.join();
  EXPECT_FALSE(accept_status.ok());
}

}  // namespace
}  // namespace sgb
