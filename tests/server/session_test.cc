// Session-layer tests (docs/SERVER.md "Sessions"): governance isolation
// between concurrent sessions, the per-session plan cache, and prepared
// statements — at the engine API level and through the wire.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "engine/executor.h"
#include "server/client.h"
#include "server/server.h"

namespace sgb::engine {
namespace {

Database PointsDb(size_t n) {
  Database db;
  auto pts = std::make_shared<Table>(Schema({
      Column{"x", DataType::kDouble, ""},
      Column{"y", DataType::kDouble, ""},
  }));
  Rng rng(7);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(pts->Append({Value::Double(rng.NextUniform(0, 10)),
                             Value::Double(rng.NextUniform(0, 10))})
                    .ok());
  }
  db.Register("pts", pts);
  return db;
}

TEST(SessionTest, SetIsScopedToTheIssuingSession) {
  Database db = PointsDb(10);
  SessionPtr s1 = db.CreateSession("test:s1");
  SessionPtr s2 = db.CreateSession("test:s2");

  ASSERT_TRUE(db.Query(*s1, "SET timeout = 1234").ok());
  ASSERT_TRUE(db.Query(*s1, "SET memory_budget = 4096").ok());
  ASSERT_TRUE(db.Query(*s1, "SET spill = 1").ok());

  EXPECT_EQ(s1->timeout_ms(), 1234);
  EXPECT_EQ(s1->memory_budget_bytes(), 4096u);
  EXPECT_TRUE(s1->spill_enabled());

  // Neither the sibling session nor the legacy default session moved.
  EXPECT_EQ(s2->timeout_ms(), 0);
  EXPECT_EQ(s2->memory_budget_bytes(), 0u);
  EXPECT_FALSE(s2->spill_enabled());
  EXPECT_EQ(db.timeout_ms(), 0);
  EXPECT_FALSE(db.spill_enabled());
}

TEST(SessionTest, GovernanceActsOnlyOnItsOwnSession) {
  Database db = PointsDb(5000);
  SessionPtr tight = db.CreateSession("test:tight");
  SessionPtr roomy = db.CreateSession("test:roomy");

  // A 1-byte budget kills the query on `tight` but must not leak into
  // `roomy`, which runs the identical statement concurrently.
  ASSERT_TRUE(db.Query(*tight, "SET memory_budget = 1").ok());
  const char* kQuery = "SELECT count(*) FROM pts";

  Status tight_status = Status::OK();
  Status roomy_status = Status::OK();
  std::thread t1([&] { tight_status = db.Query(*tight, kQuery).status(); });
  std::thread t2([&] { roomy_status = db.Query(*roomy, kQuery).status(); });
  t1.join();
  t2.join();

  EXPECT_EQ(tight_status.code(), Status::Code::kResourceExhausted)
      << tight_status.ToString();
  EXPECT_TRUE(roomy_status.ok()) << roomy_status.ToString();
}

TEST(SessionTest, ConcurrentSetsNeverCrossTalk) {
  Database db = PointsDb(10);
  SessionPtr a = db.CreateSession("test:a");
  SessionPtr b = db.CreateSession("test:b");

  // Each thread sets and reads back only its own session; any value from
  // the sibling's range is cross-talk. Also a useful TSan workload.
  std::atomic<bool> failed{false};
  auto worker = [&](Session& session, int64_t base) {
    for (int i = 0; i < 200; ++i) {
      const int64_t value = base + i;
      const std::string sql = "SET timeout = " + std::to_string(value);
      if (!db.Query(session, sql).ok()) failed.store(true);
      const int64_t got = session.timeout_ms();
      if (got < base || got >= base + 200) failed.store(true);
    }
  };
  std::thread t1([&] { worker(*a, 1000); });
  std::thread t2([&] { worker(*b, 100000); });
  t1.join();
  t2.join();
  EXPECT_FALSE(failed.load());
}

TEST(SessionTest, PlanCacheHitsOnRepeatAndSurvivesInserts) {
  Database db;
  SessionPtr s = db.CreateSession("test:cache");
  ASSERT_TRUE(db.Query(*s, "CREATE TABLE ticks (v INT)").ok());
  ASSERT_TRUE(db.Query(*s, "INSERT INTO ticks VALUES (1)").ok());

  const char* kCount = "SELECT count(*) FROM ticks";
  auto first = db.Query(*s, kCount);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().rows()[0][0].AsInt(), 1);
  const uint64_t hits_after_first = s->plan_cache_hits();

  // The second run reuses the cached plan; its scan re-pins the snapshot
  // at Open, so freshly inserted rows are visible through the same plan.
  ASSERT_TRUE(db.Query(*s, "INSERT INTO ticks VALUES (2), (3)").ok());
  auto second = db.Query(*s, kCount);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().rows()[0][0].AsInt(), 3);
  EXPECT_EQ(s->plan_cache_hits(), hits_after_first + 1);
}

TEST(SessionTest, PlanCacheKeyNormalizesWhitespaceAndCase) {
  Database db = PointsDb(10);
  SessionPtr s = db.CreateSession("test:norm");
  ASSERT_TRUE(db.Query(*s, "SELECT count(*) FROM pts").ok());
  const uint64_t hits_before = s->plan_cache_hits();
  ASSERT_TRUE(db.Query(*s, "  select   COUNT(*)   from pts  ").ok());
  EXPECT_EQ(s->plan_cache_hits(), hits_before + 1);

  // Case inside string literals is significant, so these must not share
  // a cache slot with each other.
  EXPECT_EQ(Session::NormalizeSql("SELECT 'ABC' FROM t"),
            "select 'ABC' from t");
  EXPECT_NE(Session::NormalizeSql("SELECT 'ABC' FROM t"),
            Session::NormalizeSql("SELECT 'abc' FROM t"));
}

TEST(SessionTest, DdlInvalidatesCachedPlans) {
  Database db;
  SessionPtr s = db.CreateSession("test:ddl");
  ASSERT_TRUE(db.Query(*s, "CREATE TABLE reshaped (v INT)").ok());
  ASSERT_TRUE(db.Query(*s, "INSERT INTO reshaped VALUES (5)").ok());
  const char* kQuery = "SELECT count(*) FROM reshaped";
  ASSERT_TRUE(db.Query(*s, kQuery).ok());
  ASSERT_TRUE(db.Query(*s, kQuery).ok());  // now cached and re-stored

  ASSERT_TRUE(db.Query(*s, "DROP TABLE reshaped").ok());
  ASSERT_TRUE(
      db.Query(*s, "CREATE TABLE reshaped (a INT, b TEXT)").ok());
  ASSERT_TRUE(db.Query(*s, "INSERT INTO reshaped VALUES (1, 'x')").ok());

  // The cached plan was built against the dropped table; the catalog
  // version check forces a replan instead of executing a stale tree.
  auto after = db.Query(*s, kQuery);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after.value().rows()[0][0].AsInt(), 1);
}

TEST(SessionTest, SystemTableQueriesAreNeverCached) {
  Database db = PointsDb(10);
  SessionPtr s = db.CreateSession("test:virtual");
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(db.Query(*s, "SELECT count(*) FROM system.metrics").ok());
  }
  // system.* results must reflect the live engine, so their plans are
  // rebuilt every time: zero hits no matter how often they repeat.
  EXPECT_EQ(s->plan_cache_hits(), 0u);
}

TEST(SessionTest, PreparedStatementsValidateAndExecute) {
  Database db = PointsDb(30);
  SessionPtr s = db.CreateSession("test:prep");

  EXPECT_FALSE(db.PrepareStatement(*s, "bad", "SELEKT nope").ok());
  EXPECT_FALSE(db.PrepareStatement(*s, "ddl", "SET timeout = 1").ok());
  EXPECT_EQ(db.ExecutePrepared(*s, "missing").status().code(),
            Status::Code::kNotFound);

  ASSERT_TRUE(
      db.PrepareStatement(*s, "cnt", "SELECT count(*) FROM pts").ok());
  EXPECT_EQ(s->prepared_count(), 1u);
  auto result = db.ExecutePrepared(*s, "cnt");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows()[0][0].AsInt(), 30);

  // PrepareStatement warms the plan cache, so the first execution is
  // already a hit.
  EXPECT_GE(s->plan_cache_hits(), 1u);
}

}  // namespace
}  // namespace sgb::engine

namespace sgb::server {
namespace {

TEST(SessionWireTest, SettingsDoNotLeakBetweenConnections) {
  engine::Database db;
  ServerOptions options;
  options.unix_path = "/tmp/sgb_sess_wire_" +
                      std::to_string(::getpid()) + ".sock";
  Server server(&db, options);
  ASSERT_TRUE(server.Start().ok());

  auto c1 = Client::ConnectUnixSocket(options.unix_path);
  auto c2 = Client::ConnectUnixSocket(options.unix_path);
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());

  ASSERT_TRUE(c1.value().Query("SET timeout = 777").ok());
  ASSERT_TRUE(c2.value().Query("SET timeout = 888").ok());
  ASSERT_TRUE(c1.value().Query("SET spill = 1").ok());

  // Each connection reads the whole session table and checks both rows:
  // its own settings and the sibling's, as system.sessions reports them.
  auto sessions = c1.value().Query(
      "SELECT timeout_ms, spill FROM system.sessions");
  ASSERT_TRUE(sessions.ok()) << sessions.status().ToString();
  int saw_777 = 0;
  int saw_888 = 0;
  for (const auto& row : sessions.value().rows) {
    if (row[0] == "777") {
      ++saw_777;
      EXPECT_EQ(row[1], "1");  // spill was set on the same session
    }
    if (row[0] == "888") {
      ++saw_888;
      EXPECT_EQ(row[1], "0");  // spill must not have leaked over
    }
  }
  EXPECT_EQ(saw_777, 1);
  EXPECT_EQ(saw_888, 1);
}

}  // namespace
}  // namespace sgb::server
