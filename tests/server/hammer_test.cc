// The CI concurrency gauntlet (docs/SERVER.md): many concurrent client
// sessions hammering one server with mixed DDL/DML/SGB/system-table
// traffic, a bit-identical divergence check against single-session replay,
// and targeted cancellation when a connection drops mid-query. This binary
// is what the server-tsan CI job runs under -fsanitize=thread.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "engine/executor.h"
#include "obs/query_log.h"
#include "server/client.h"
#include "server/server.h"

namespace sgb::server {
namespace {

std::string UniqueUnixPath(const char* tag) {
  return "/tmp/sgb_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

engine::Database PointsDb(size_t n, double extent = 10.0) {
  engine::Database db;
  auto pts = std::make_shared<engine::Table>(engine::Schema({
      engine::Column{"x", engine::DataType::kDouble, ""},
      engine::Column{"y", engine::DataType::kDouble, ""},
  }));
  Rng rng(7);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(
        pts->Append({engine::Value::Double(rng.NextUniform(0, extent)),
                     engine::Value::Double(rng.NextUniform(0, extent))})
            .ok());
  }
  db.Register("pts", pts);
  return db;
}

TEST(HammerTest, EightClientsMixedWorkload) {
  engine::Database db = PointsDb(1500);
  ServerOptions options;
  options.tcp = true;
  options.unix_path = UniqueUnixPath("hammer_mixed");
  Server server(&db, options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 8;
  constexpr int kRounds = 12;
  std::atomic<int> failures{0};
  auto note_failure = [&](const std::string& what, const Status& status) {
    failures.fetch_add(1);
    ADD_FAILURE() << what << ": " << status.ToString();
  };

  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      // Half the clients arrive over TCP, half over the unix socket.
      Result<Client> connected =
          (c % 2 == 0) ? Client::ConnectLoopback(server.tcp_port())
                       : Client::ConnectUnixSocket(options.unix_path);
      if (!connected.ok()) {
        note_failure("connect", connected.status());
        return;
      }
      Client client = std::move(connected).value();
      const std::string table = "hammer_" + std::to_string(c);
      auto create = client.Query("CREATE TABLE IF NOT EXISTS " + table +
                                 " (round INT, payload TEXT)");
      if (!create.ok()) note_failure("create", create.status());
      if (!client.Prepare("own_count",
                          "SELECT count(*) FROM " + table)
               .ok()) {
        note_failure("prepare", Status::Internal("prepare failed"));
      }
      for (int round = 0; round < kRounds; ++round) {
        auto insert = client.Query(
            "INSERT INTO " + table + " VALUES (" + std::to_string(round) +
            ", 'p" + std::to_string(round) + "')");
        if (!insert.ok()) note_failure("insert", insert.status());

        // A session always sees its own committed writes.
        auto count = client.Execute("own_count");
        if (!count.ok()) {
          note_failure("own_count", count.status());
        } else if (count.value().rows[0][0] !=
                   std::to_string(round + 1)) {
          failures.fetch_add(1);
          ADD_FAILURE() << "client " << c << " round " << round
                        << ": own count " << count.value().rows[0][0];
        }

        auto sgb = client.Query(
            "SELECT count(*) FROM pts GROUP BY x, y "
            "DISTANCE-TO-ANY L2 WITHIN 0.4");
        if (!sgb.ok()) note_failure("sgb", sgb.status());

        auto sys = client.Query(
            "SELECT count(*) FROM system.sessions");
        if (!sys.ok()) note_failure("system.sessions", sys.status());

        auto set = client.Query(
            "SET timeout = " + std::to_string(10000 + c));
        if (!set.ok()) note_failure("set", set.status());
      }
      if (!client.Quit().ok()) {
        note_failure("quit", Status::Internal("quit failed"));
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);

  // No statement in the entire gauntlet may have failed server-side.
  for (const auto& entry : db.query_log().Entries()) {
    EXPECT_NE(entry.status, "error") << entry.text;
  }
  // Quit() returns at BYE, a beat before the serve thread marks its
  // connection finished — give teardown a moment instead of racing it.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.active_connections() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server.active_connections(), 0u);
  EXPECT_EQ(server.total_connections(), static_cast<uint64_t>(kClients));
}

// Acceptance gate: 8 concurrent clients all running the same deterministic
// query list must produce byte-identical wire rows to a single fresh
// session replaying the list afterwards.
TEST(HammerTest, ZeroDivergenceAgainstSingleSessionReplay) {
  engine::Database db = PointsDb(2000);
  ServerOptions options;
  options.tcp = true;
  Server server(&db, options);
  ASSERT_TRUE(server.Start().ok());

  const std::vector<std::string> kQueries = {
      "SELECT count(*) FROM pts",
      "SELECT count(*) FROM pts GROUP BY x, y "
      "DISTANCE-TO-ANY L2 WITHIN 0.4",
      "SELECT count(*) FROM pts GROUP BY x, y "
      "DISTANCE-TO-ALL L2 WITHIN 0.4 ON-OVERLAP ELIMINATE",
      "SELECT x, y FROM pts WHERE x < 1.0 ORDER BY x, y",
      "SELECT count(*) FROM pts WHERE x > 5.0",
      "SELECT count(*) FROM pts GROUP BY x, y "
      "DISTANCE-TO-ANY L2 WITHIN 0.4 PARALLEL 4",
  };

  constexpr int kClients = 8;
  using ResultRows = std::vector<std::vector<std::string>>;
  std::vector<std::vector<ResultRows>> per_client(
      kClients, std::vector<ResultRows>(kQueries.size()));
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto connected = Client::ConnectLoopback(server.tcp_port());
      if (!connected.ok()) {
        failures.fetch_add(1);
        return;
      }
      Client client = std::move(connected).value();
      for (size_t q = 0; q < kQueries.size(); ++q) {
        auto result = client.Query(kQueries[q]);
        if (!result.ok()) {
          failures.fetch_add(1);
          ADD_FAILURE() << "client " << c << " query " << q << ": "
                        << result.status().ToString();
          return;
        }
        per_client[c][q] = result.value().rows;
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);

  // Single-session replay on a fresh connection is the ground truth.
  auto replay = Client::ConnectLoopback(server.tcp_port());
  ASSERT_TRUE(replay.ok());
  for (size_t q = 0; q < kQueries.size(); ++q) {
    auto truth = replay.value().Query(kQueries[q]);
    ASSERT_TRUE(truth.ok()) << kQueries[q];
    for (int c = 0; c < kClients; ++c) {
      EXPECT_EQ(per_client[c][q], truth.value().rows)
          << "client " << c << " diverged on: " << kQueries[q];
    }
  }
}

TEST(HammerTest, DroppedConnectionCancelsOnlyItsOwnQuery) {
  // Large enough that the SGB query runs for hundreds of milliseconds —
  // the same sizing the engine-level cancellation test relies on.
  engine::Database db = PointsDb(60000, 40.0);
  ServerOptions options;
  options.tcp = true;
  Server server(&db, options);
  ASSERT_TRUE(server.Start().ok());

  const std::string kSlowQuery =
      "SELECT count(*) FROM pts GROUP BY x, y "
      "DISTANCE-TO-ANY L2 WITHIN 0.4";

  auto victim = Client::ConnectLoopback(server.tcp_port());
  ASSERT_TRUE(victim.ok());
  std::thread runner([&] {
    // The response read fails once the socket is aborted; the interesting
    // assertions are server-side.
    (void)victim.value().Query(kSlowQuery);
  });

  // Wait until the statement is actually executing on some server session.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  bool saw_active = false;
  while (std::chrono::steady_clock::now() < deadline) {
    size_t active = 0;
    db.sessions().ForEach([&](const engine::Session& s) {
      active += s.active_queries();
    });
    if (active > 0) {
      saw_active = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(saw_active) << "query never started";

  // Sever the connection mid-query; the watchdog should cancel it.
  victim.value().Abort();
  runner.join();

  // An unrelated session keeps working while the victim unwinds.
  auto bystander = Client::ConnectLoopback(server.tcp_port());
  ASSERT_TRUE(bystander.ok());
  auto ok = bystander.value().Query("SELECT count(*) FROM pts");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok.value().rows[0][0], "60000");

  // The dropped statement lands in the query log as `cancelled`.
  bool logged_cancelled = false;
  const auto log_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!logged_cancelled &&
         std::chrono::steady_clock::now() < log_deadline) {
    for (const auto& entry : db.query_log().Entries()) {
      if (entry.text == kSlowQuery && entry.status == "cancelled") {
        logged_cancelled = true;
      }
    }
    if (!logged_cancelled) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  EXPECT_TRUE(logged_cancelled)
      << "no cancelled query-log entry for the dropped connection";

  // The bystander's own statements logged ok.
  bool bystander_ok = false;
  for (const auto& entry : db.query_log().Entries()) {
    if (entry.text == "SELECT count(*) FROM pts" && entry.status == "ok") {
      bystander_ok = true;
    }
  }
  EXPECT_TRUE(bystander_ok);
}

}  // namespace
}  // namespace sgb::server
