// gtest entry point shared by every sgb test binary. Identical to
// GTest::gtest_main until a run fails: then, if SGB_TEST_DIAG_DIR names a
// directory, it dumps post-mortem state there — the global metrics
// snapshot and the process-wide query-log mirror — so the CI failure
// artifacts carry what actually ran (and how it ended) inside the dying
// binary, not just ctest's pass/fail lines.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "obs/metrics.h"
#include "obs/query_log.h"

namespace {

std::string ProgramName(const char* argv0) {
  const std::string path = argv0 ? argv0 : "sgb_test";
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

// One escaped field: the query-log dump is tab-separated, so the
// statement text must not smuggle in separators or newlines.
std::string EscapeTsv(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

void DumpDiagnostics(const std::string& dir, const std::string& prog) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "sgb_test_main: cannot create %s: %s\n",
                 dir.c_str(), ec.message().c_str());
    return;
  }

  {
    std::ofstream out(dir + "/" + prog + "-metrics.json");
    out << sgb::obs::MetricsRegistry::Global().Snapshot().ToJson() << "\n";
  }

  {
    std::ofstream out(dir + "/" + prog + "-query-log.tsv");
    out << "id\tsession_id\tstatus\tadmission\ttier\twall_micros\t"
           "rows_out\tpeak_memory_bytes\tspill_events\ttext\n";
    for (const auto& e : sgb::obs::QueryLog::GlobalMirror().Entries()) {
      out << e.id << '\t' << e.session_id << '\t' << e.status << '\t'
          << e.admission << '\t' << e.tier << '\t' << e.wall_micros << '\t'
          << e.rows_out << '\t' << e.peak_memory_bytes << '\t'
          << e.spill_events << '\t' << EscapeTsv(e.text) << '\n';
    }
  }

  std::fprintf(stderr,
               "sgb_test_main: wrote failure diagnostics to %s/%s-*.{json,tsv}\n",
               dir.c_str(), prog.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  const int rc = RUN_ALL_TESTS();
  if (rc != 0) {
    if (const char* dir = std::getenv("SGB_TEST_DIAG_DIR")) {
      DumpDiagnostics(dir, ProgramName(argc > 0 ? argv[0] : nullptr));
    }
  }
  return rc;
}
