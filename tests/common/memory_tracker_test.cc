#include "common/memory_tracker.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace sgb {
namespace {

TEST(MemoryTrackerTest, ConsumeReleaseRoundTrip) {
  MemoryTracker tracker("t");
  EXPECT_EQ(tracker.usage_bytes(), 0u);
  ASSERT_TRUE(tracker.TryConsume(100).ok());
  EXPECT_EQ(tracker.usage_bytes(), 100u);
  EXPECT_EQ(tracker.peak_bytes(), 100u);
  tracker.Release(40);
  EXPECT_EQ(tracker.usage_bytes(), 60u);
  EXPECT_EQ(tracker.peak_bytes(), 100u);  // peak is a watermark
  tracker.Release(60);
  EXPECT_EQ(tracker.usage_bytes(), 0u);
}

TEST(MemoryTrackerTest, LimitBreachReturnsResourceExhausted) {
  MemoryTracker tracker("budgeted", nullptr, 128);
  ASSERT_TRUE(tracker.TryConsume(100).ok());
  Status status = tracker.TryConsume(100);
  EXPECT_EQ(status.code(), Status::Code::kResourceExhausted);
  // The failed charge must not stick: usage is unchanged and the headroom
  // is still chargeable.
  EXPECT_EQ(tracker.usage_bytes(), 100u);
  EXPECT_TRUE(tracker.TryConsume(28).ok());
  // The error names the breached tracker for diagnosability.
  EXPECT_NE(status.message().find("budgeted"), std::string::npos)
      << status.ToString();
}

TEST(MemoryTrackerTest, ZeroLimitMeansUnlimited) {
  MemoryTracker tracker("unbounded");
  EXPECT_TRUE(tracker.TryConsume(size_t{1} << 40).ok());
  tracker.Release(size_t{1} << 40);
}

TEST(MemoryTrackerTest, ChargesPropagateToParent) {
  MemoryTracker parent("parent");
  MemoryTracker child("child", &parent);
  ASSERT_TRUE(child.TryConsume(64).ok());
  EXPECT_EQ(child.usage_bytes(), 64u);
  EXPECT_EQ(parent.usage_bytes(), 64u);
  child.Release(64);
  EXPECT_EQ(parent.usage_bytes(), 0u);
}

TEST(MemoryTrackerTest, ParentBreachRollsBackChild) {
  MemoryTracker parent("parent", nullptr, 100);
  MemoryTracker child("child", &parent);  // child itself unlimited
  Status status = child.TryConsume(200);
  EXPECT_EQ(status.code(), Status::Code::kResourceExhausted);
  EXPECT_EQ(child.usage_bytes(), 0u);
  EXPECT_EQ(parent.usage_bytes(), 0u);
  EXPECT_NE(status.message().find("parent"), std::string::npos);
}

TEST(MemoryTrackerTest, DestructorReleasesOutstandingFromParent) {
  MemoryTracker parent("parent");
  {
    MemoryTracker child("child", &parent);
    ASSERT_TRUE(child.TryConsume(512).ok());
    EXPECT_EQ(parent.usage_bytes(), 512u);
    // Child dies with 512 bytes still charged.
  }
  EXPECT_EQ(parent.usage_bytes(), 0u);
}

TEST(MemoryTrackerTest, SetLimitAppliesToFutureCharges) {
  MemoryTracker tracker("t");
  ASSERT_TRUE(tracker.TryConsume(1000).ok());
  tracker.set_limit_bytes(500);  // already above the new limit
  EXPECT_EQ(tracker.TryConsume(1).code(),
            Status::Code::kResourceExhausted);
  tracker.Release(1000);
  EXPECT_TRUE(tracker.TryConsume(400).ok());
  tracker.Release(400);
}

TEST(MemoryTrackerTest, ResetPeakSnapsToCurrentUsage) {
  MemoryTracker tracker("t");
  ASSERT_TRUE(tracker.TryConsume(100).ok());
  tracker.Release(80);
  EXPECT_EQ(tracker.peak_bytes(), 100u);
  tracker.ResetPeak();
  EXPECT_EQ(tracker.peak_bytes(), 20u);
  tracker.Release(20);
}

TEST(MemoryTrackerTest, ConcurrentChargesBalanceToZero) {
  MemoryTracker parent("parent");
  MemoryTracker child("child", &parent);
  constexpr int kThreads = 8;
  constexpr int kIterations = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&child] {
      for (int i = 0; i < kIterations; ++i) {
        ASSERT_TRUE(child.TryConsume(16).ok());
        child.Release(16);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(child.usage_bytes(), 0u);
  EXPECT_EQ(parent.usage_bytes(), 0u);
  EXPECT_GE(child.peak_bytes(), 16u);
}

TEST(MemoryTrackerTest, ConcurrentChargesRespectLimit) {
  // With a limit of kThreads/2 slots, concurrent charge/release never
  // observes usage above the limit and failures roll back cleanly.
  constexpr size_t kSlot = 64;
  MemoryTracker tracker("bounded", nullptr, 4 * kSlot);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&tracker] {
      for (int i = 0; i < 1000; ++i) {
        if (tracker.TryConsume(kSlot).ok()) {
          EXPECT_LE(tracker.usage_bytes(), 4 * kSlot);
          tracker.Release(kSlot);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(tracker.usage_bytes(), 0u);
}

TEST(MemoryTrackerTest, EngineGlobalIsSingletonRoot) {
  MemoryTracker& global = MemoryTracker::EngineGlobal();
  EXPECT_EQ(&global, &MemoryTracker::EngineGlobal());
  const size_t before = global.usage_bytes();
  {
    MemoryTracker query("query", &global);
    ASSERT_TRUE(query.TryConsume(128).ok());
    EXPECT_EQ(global.usage_bytes(), before + 128);
  }
  EXPECT_EQ(global.usage_bytes(), before);
}

}  // namespace
}  // namespace sgb
