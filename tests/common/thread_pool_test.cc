#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace sgb {
namespace {

TEST(ThreadPoolTest, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto f = pool.Submit([] { return 7 * 6; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, SubmitPropagatesException) {
  ThreadPool pool(1);
  auto f = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsTasksInFifoOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.Submit([&order, i] { order.push_back(i); }));
  }
  for (auto& f : futures) f.get();
  std::vector<int> expected(16);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, 4, [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForSlotIdsStayWithinDop) {
  ThreadPool pool(4);
  constexpr size_t kDop = 3;
  std::atomic<size_t> max_slot{0};
  pool.ParallelFor(1000, kDop, [&](size_t slot, size_t, size_t) {
    size_t cur = max_slot.load(std::memory_order_relaxed);
    while (slot > cur && !max_slot.compare_exchange_weak(
                             cur, slot, std::memory_order_relaxed)) {
    }
  });
  EXPECT_LT(max_slot.load(), kDop);
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, 4, [&](size_t, size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForDopOneRunsInline) {
  ThreadPool pool(2);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen;
  pool.ParallelFor(100, 1, [&](size_t, size_t, size_t) {
    seen.push_back(std::this_thread::get_id());
  });
  ASSERT_FALSE(seen.empty());
  for (const auto id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPoolTest, ParallelForPropagatesBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(1000, 4,
                                [&](size_t, size_t begin, size_t) {
                                  if (begin >= 500) {
                                    throw std::runtime_error("body failed");
                                  }
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, ReentrantParallelForDoesNotDeadlock) {
  // Outer loop occupies every worker; inner loops must still complete via
  // caller participation (the deadlock-freedom property documented in
  // thread_pool.h).
  ThreadPool pool(2);
  std::atomic<size_t> total{0};
  pool.ParallelFor(8, 4, [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      pool.ParallelFor(16, 4, [&](size_t, size_t b, size_t e) {
        total.fetch_add(e - b, std::memory_order_relaxed);
      });
    }
  });
  EXPECT_EQ(total.load(), 8u * 16u);
}

TEST(ThreadPoolTest, ResolveDopMapsZeroToHardware) {
  EXPECT_GE(ThreadPool::ResolveDop(0), 1u);
  EXPECT_EQ(ThreadPool::ResolveDop(1), 1u);
  EXPECT_EQ(ThreadPool::ResolveDop(7), 7u);
}

TEST(ThreadPoolTest, DefaultPoolIsShared) {
  EXPECT_EQ(&ThreadPool::Default(), &ThreadPool::Default());
}

}  // namespace
}  // namespace sgb
