#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"

namespace sgb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad eps");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad eps");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad eps");
  EXPECT_EQ(Status::ParseError("x").ToString(), "ParseError: x");
  EXPECT_EQ(Status::NotSupported("y").code(), Status::Code::kNotSupported);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::NotFound("t"), Status::NotFound("t"));
  EXPECT_FALSE(Status::NotFound("t") == Status::NotFound("u"));
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

TEST(ResultTest, ValueAndStatusPaths) {
  auto ok = ParsePositive(5);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 5);
  EXPECT_TRUE(ok.status().ok());

  auto bad = ParsePositive(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), Status::Code::kInvalidArgument);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string(100, 'x'));
  const std::string taken = std::move(r).value();
  EXPECT_EQ(taken.size(), 100u);
}

Status NeedsPositive(int v) {
  SGB_RETURN_IF_ERROR(ParsePositive(v).status());
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(NeedsPositive(1).ok());
  EXPECT_FALSE(NeedsPositive(0).ok());
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
  Rng c(8);
  EXPECT_NE(Rng(7).NextU64(), c.NextU64());
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(1);
  std::set<uint64_t> seen;
  for (int i = 0; i < 3000; ++i) {
    const uint64_t v = rng.NextBounded(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values reachable
  EXPECT_EQ(rng.NextBounded(0), 0u);
  EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(2);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, UniformAndIntRanges) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.NextUniform(-5, 5);
    ASSERT_GE(u, -5.0);
    ASSERT_LT(u, 5.0);
    const int64_t v = rng.NextInt(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(4);
  double sum = 0;
  double sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
  const double shifted = Rng(5).NextGaussian(100.0, 0.0);
  EXPECT_DOUBLE_EQ(shifted, 100.0);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  volatile double sink = 0;
  for (int i = 0; i < 200000; ++i) sink = sink + i * 0.5;
  EXPECT_GT(watch.ElapsedSeconds(), 0.0);
  EXPECT_GE(watch.ElapsedMillis(), watch.ElapsedSeconds());
  EXPECT_GE(watch.ElapsedMicros(), watch.ElapsedMillis());
  EXPECT_GE(watch.ElapsedNanos(), 0u);
  watch.Restart();
  EXPECT_LT(watch.ElapsedSeconds(), 1.0);
}

TEST(ScopedTimerTest, RecordsElapsedMicrosIntoSink) {
  struct RecordingSink {
    std::vector<uint64_t> samples;
    void Record(uint64_t v) { samples.push_back(v); }
  };
  RecordingSink sink;
  {
    ScopedTimer<RecordingSink> timer(&sink);
    volatile double burn = 0;
    for (int i = 0; i < 100000; ++i) burn = burn + i * 0.5;
    EXPECT_GE(timer.ElapsedMicros(), 0.0);
    EXPECT_TRUE(sink.samples.empty());  // only recorded at scope exit
  }
  ASSERT_EQ(sink.samples.size(), 1u);
}

TEST(ScopedTimerTest, NullSinkIsSafe) {
  ScopedTimer<sgb::obs::Histogram> timer(nullptr);
  EXPECT_GE(timer.ElapsedSeconds(), 0.0);
}

}  // namespace
}  // namespace sgb
