#include "common/fault_injection.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace sgb {
namespace {

// The registry is process-global; every test starts and ends from a clean
// slate so armings never leak across tests (or into other suites when the
// whole binary runs in one process).
class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultRegistry::Global().Reset(); }
  void TearDown() override { FaultRegistry::Global().Reset(); }
};

TEST_F(FaultInjectionTest, DisarmedSiteAlwaysPasses) {
  FaultSite site("test.disarmed");
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(site.Check().ok());
  }
  EXPECT_EQ(FaultRegistry::Global().Hits("test.disarmed"), 100u);
  EXPECT_EQ(FaultRegistry::Global().Injected("test.disarmed"), 0u);
}

TEST_F(FaultInjectionTest, NthHitFiresExactlyOnce) {
  FaultSite site("test.nth", Status::Code::kIoError);
  FaultRegistry::Global().ArmNthHit("test.nth", 3);
  EXPECT_TRUE(site.Check().ok());
  EXPECT_TRUE(site.Check().ok());
  Status status = site.Check();  // the 3rd hit
  EXPECT_EQ(status.code(), Status::Code::kIoError);
  EXPECT_NE(status.message().find("test.nth"), std::string::npos);
  // Single-shot: the site self-disarms after firing.
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(site.Check().ok());
  }
  EXPECT_EQ(FaultRegistry::Global().Injected("test.nth"), 1u);
}

TEST_F(FaultInjectionTest, NthHitCountsFromArming) {
  FaultSite site("test.nth_rearm");
  // Hits before arming don't count toward the Nth target.
  EXPECT_TRUE(site.Check().ok());
  EXPECT_TRUE(site.Check().ok());
  FaultRegistry::Global().ArmNthHit("test.nth_rearm", 1);
  EXPECT_FALSE(site.Check().ok());  // very next hit fires
}

TEST_F(FaultInjectionTest, ProbabilityZeroNeverFires) {
  FaultSite site("test.prob0");
  FaultRegistry::Global().ArmProbability("test.prob0", 0.0, 7);
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(site.Check().ok());
  }
  EXPECT_EQ(FaultRegistry::Global().Injected("test.prob0"), 0u);
}

TEST_F(FaultInjectionTest, ProbabilityOneAlwaysFires) {
  FaultSite site("test.prob1");
  FaultRegistry::Global().ArmProbability("test.prob1", 1.0, 7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(site.Check().ok());
  }
  EXPECT_EQ(FaultRegistry::Global().Injected("test.prob1"), 50u);
}

TEST_F(FaultInjectionTest, ProbabilityIsSeedDeterministic) {
  // The same (seed, hit-index) sequence must produce the same fire pattern
  // on every run — that is what makes probabilistic fuzz failures
  // reproducible.
  auto pattern = [](uint64_t seed) {
    FaultRegistry::Global().Reset();
    FaultSite site("test.prob_det");
    FaultRegistry::Global().ArmProbability("test.prob_det", 0.5, seed);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(!site.Check().ok());
    return fired;
  };
  const auto a = pattern(1234);
  const auto b = pattern(1234);
  const auto c = pattern(5678);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // astronomically unlikely to collide over 64 hits
  // p=0.5 over 64 hits: both outcomes must actually occur.
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), true), 64);
}

TEST_F(FaultInjectionTest, DisarmStopsFiring) {
  FaultSite site("test.disarm");
  FaultRegistry::Global().ArmProbability("test.disarm", 1.0, 1);
  EXPECT_FALSE(site.Check().ok());
  FaultRegistry::Global().Disarm("test.disarm");
  EXPECT_TRUE(site.Check().ok());
}

TEST_F(FaultInjectionTest, ResetClearsCountersAndArming) {
  FaultSite site("test.reset");
  FaultRegistry::Global().ArmProbability("test.reset", 1.0, 1);
  EXPECT_FALSE(site.Check().ok());
  FaultRegistry::Global().Reset();
  EXPECT_EQ(FaultRegistry::Global().Hits("test.reset"), 0u);
  EXPECT_EQ(FaultRegistry::Global().Injected("test.reset"), 0u);
  EXPECT_TRUE(site.Check().ok());
}

TEST_F(FaultInjectionTest, ArmingUnknownSiteCreatesIt) {
  FaultRegistry::Global().ArmNthHit("test.preregistered", 1);
  const auto sites = FaultRegistry::Global().Sites();
  EXPECT_NE(std::find(sites.begin(), sites.end(), "test.preregistered"),
            sites.end());
  // The site object created later picks up the pre-armed state.
  FaultSite site("test.preregistered");
  EXPECT_FALSE(site.Check().ok());
}

TEST_F(FaultInjectionTest, EngineSitesRegisteredAtStaticInit) {
  // The library's planted sites self-register from their file-local
  // FaultSite objects, so they are visible without ever being executed.
  // This binary links the full sgb library; the thread-pool site lives in
  // always-linked common code.
  const auto sites = FaultRegistry::Global().Sites();
  EXPECT_NE(std::find(sites.begin(), sites.end(), "common.threadpool.submit"),
            sites.end())
      << "expected common.threadpool.submit among " << sites.size()
      << " registered sites";
  // Sites() is name-sorted.
  EXPECT_TRUE(std::is_sorted(sites.begin(), sites.end()));
}

TEST_F(FaultInjectionTest, StatusCarriesConfiguredCode) {
  FaultSite internal("test.code_internal");
  FaultSite io("test.code_io", Status::Code::kIoError);
  FaultSite mem("test.code_mem", Status::Code::kResourceExhausted);
  FaultRegistry::Global().ArmNthHit("test.code_internal", 1);
  FaultRegistry::Global().ArmNthHit("test.code_io", 1);
  FaultRegistry::Global().ArmNthHit("test.code_mem", 1);
  EXPECT_EQ(internal.Check().code(), Status::Code::kInternal);
  EXPECT_EQ(io.Check().code(), Status::Code::kIoError);
  EXPECT_EQ(mem.Check().code(), Status::Code::kResourceExhausted);
}

}  // namespace
}  // namespace sgb
