#include "core/similarity_join.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"

namespace sgb::core {
namespace {

using geom::Metric;
using geom::Point;

std::vector<Point> RandomCloud(size_t n, double extent, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> pts;
  for (size_t i = 0; i < n; ++i) {
    pts.push_back({rng.NextUniform(0, extent), rng.NextUniform(0, extent)});
  }
  return pts;
}

TEST(SimilarityJoinTest, SmallHandCase) {
  const std::vector<Point> left = {{0, 0}, {10, 10}};
  const std::vector<Point> right = {{0.5, 0}, {10, 10.5}, {50, 50}};
  const auto result = SimilarityJoin(left, right, 1.0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(),
            (std::vector<JoinPair>{{0, 0}, {1, 1}}));
}

TEST(SimilarityJoinTest, IndexedMatchesNestedLoop) {
  const auto left = RandomCloud(150, 10, 1);
  const auto right = RandomCloud(220, 10, 2);
  for (const Metric metric : {Metric::kL2, Metric::kLInf}) {
    for (const double eps : {0.3, 1.0, 3.0}) {
      const auto naive =
          SimilarityJoin(left, right, eps, metric,
                         SimilarityJoinAlgorithm::kNestedLoop);
      const auto indexed = SimilarityJoin(
          left, right, eps, metric, SimilarityJoinAlgorithm::kIndexed);
      ASSERT_TRUE(naive.ok());
      ASSERT_TRUE(indexed.ok());
      EXPECT_EQ(naive.value(), indexed.value()) << "eps=" << eps;
    }
  }
}

TEST(SimilarityJoinTest, BuildSideChoiceDoesNotChangeResults) {
  const auto small = RandomCloud(30, 5, 3);
  const auto big = RandomCloud(300, 5, 4);
  const auto ab = SimilarityJoin(small, big, 0.5);
  const auto ba = SimilarityJoin(big, small, 0.5);
  ASSERT_TRUE(ab.ok());
  ASSERT_TRUE(ba.ok());
  EXPECT_EQ(ab.value().size(), ba.value().size());
  for (const JoinPair& p : ab.value()) {
    EXPECT_NE(std::find(ba.value().begin(), ba.value().end(),
                        (JoinPair{p.right, p.left})),
              ba.value().end());
  }
}

TEST(SimilarityJoinTest, EmptyInputsAndErrors) {
  const std::vector<Point> pts = {{0, 0}};
  EXPECT_TRUE(SimilarityJoin({}, pts, 1.0).ok());
  EXPECT_TRUE(SimilarityJoin({}, pts, 1.0).value().empty());
  EXPECT_FALSE(SimilarityJoin(pts, pts, -1.0).ok());
}

TEST(SimilaritySelfJoinTest, DistinctUnorderedPairs) {
  const std::vector<Point> pts = {{0, 0}, {0.5, 0}, {0.9, 0}, {5, 5}};
  const auto result = SimilaritySelfJoin(pts, 0.6);
  ASSERT_TRUE(result.ok());
  // (0,1), (1,2) are within 0.6; (0,2) is 0.9 apart.
  EXPECT_EQ(result.value(), (std::vector<JoinPair>{{0, 1}, {1, 2}}));
}

TEST(SimilaritySelfJoinTest, IndexedMatchesNestedLoop) {
  const auto pts = RandomCloud(250, 8, 5);
  for (const double eps : {0.2, 0.7}) {
    const auto naive = SimilaritySelfJoin(
        pts, eps, Metric::kL2, SimilarityJoinAlgorithm::kNestedLoop);
    const auto indexed = SimilaritySelfJoin(
        pts, eps, Metric::kL2, SimilarityJoinAlgorithm::kIndexed);
    ASSERT_TRUE(naive.ok());
    ASSERT_TRUE(indexed.ok());
    EXPECT_EQ(naive.value(), indexed.value());
  }
}

TEST(SimilaritySearchTest, RangeQueryMatchesBruteForce) {
  const auto pts = RandomCloud(300, 12, 6);
  const SimilaritySearch search(pts);
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const Point q{rng.NextUniform(0, 12), rng.NextUniform(0, 12)};
    const double eps = rng.NextUniform(0.1, 2.0);
    for (const Metric metric : {Metric::kL2, Metric::kLInf}) {
      std::vector<size_t> expected;
      for (size_t i = 0; i < pts.size(); ++i) {
        if (geom::Similar(q, pts[i], metric, eps)) expected.push_back(i);
      }
      EXPECT_EQ(search.RangeQuery(q, eps, metric), expected);
    }
  }
}

TEST(SimilaritySearchTest, KnnMatchesBruteForce) {
  const auto pts = RandomCloud(400, 20, 8);
  const SimilaritySearch search(pts);
  Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    const Point q{rng.NextUniform(-5, 25), rng.NextUniform(-5, 25)};
    const size_t k = 1 + rng.NextBounded(10);

    std::vector<std::pair<double, size_t>> ranked;
    for (size_t i = 0; i < pts.size(); ++i) {
      ranked.push_back({geom::DistanceL2Squared(q, pts[i]), i});
    }
    std::sort(ranked.begin(), ranked.end());
    std::vector<size_t> expected;
    for (size_t i = 0; i < k; ++i) expected.push_back(ranked[i].second);

    EXPECT_EQ(search.Knn(q, k), expected) << "k=" << k;
  }
}

TEST(SimilaritySearchTest, KnnEdgeCases) {
  const std::vector<Point> pts = {{0, 0}, {1, 0}, {2, 0}};
  const SimilaritySearch search(pts);
  EXPECT_TRUE(search.Knn({0, 0}, 0).empty());
  EXPECT_EQ(search.Knn({0.1, 0}, 5).size(), 3u);  // k > n clamps
  EXPECT_EQ(search.Knn({1.9, 0}, 1), (std::vector<size_t>{2}));
  const SimilaritySearch empty(std::vector<Point>{});
  EXPECT_TRUE(empty.Knn({0, 0}, 3).empty());
}

TEST(SimilarityJoinTest, StatsShowIndexAdvantage) {
  const auto left = RandomCloud(300, 30, 10);
  const auto right = RandomCloud(300, 30, 11);
  SimilarityJoinStats naive_stats;
  SimilarityJoinStats indexed_stats;
  ASSERT_TRUE(SimilarityJoin(left, right, 0.5, Metric::kL2,
                             SimilarityJoinAlgorithm::kNestedLoop,
                             &naive_stats)
                  .ok());
  ASSERT_TRUE(SimilarityJoin(left, right, 0.5, Metric::kL2,
                             SimilarityJoinAlgorithm::kIndexed,
                             &indexed_stats)
                  .ok());
  EXPECT_EQ(naive_stats.distance_computations, 300u * 300u);
  EXPECT_LT(indexed_stats.distance_computations,
            naive_stats.distance_computations / 10);
}

}  // namespace
}  // namespace sgb::core
