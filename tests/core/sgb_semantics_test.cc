// Reproduces the worked semantics examples of the paper: the ON-OVERLAP
// outcomes of Example 1 / Figure 2 (query answers {3,2}, {2,2}, {2,2,1})
// and the SGB-Any merge of Example 2 (answer {5}).

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/sgb_all.h"
#include "core/sgb_any.h"

namespace sgb::core {
namespace {

using geom::Metric;
using geom::Point;

/// Figure 2's five points (arrival order a1..a5), arranged so that with
/// ε = 3 and L∞: {a1,a2} and {a3,a4} form groups, and a5 is within ε of
/// every member of both.
std::vector<Point> Figure2Points() {
  return {{3, 6}, {4, 7}, {8, 6}, {9, 7}, {6, 6.5}};
}

std::vector<size_t> SortedSizes(const Grouping& grouping) {
  std::vector<size_t> sizes = grouping.GroupSizes();
  std::sort(sizes.begin(), sizes.end(), std::greater<size_t>());
  return sizes;
}

class Figure2Test : public ::testing::TestWithParam<SgbAllAlgorithm> {};

TEST_P(Figure2Test, JoinAnyAnswersThreeTwo) {
  SgbAllOptions options;
  options.epsilon = 3;
  options.metric = Metric::kLInf;
  options.on_overlap = OverlapClause::kJoinAny;
  options.algorithm = GetParam();
  const auto result = SgbAll(Figure2Points(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(SortedSizes(result.value()), (std::vector<size_t>{3, 2}));
  EXPECT_EQ(result.value().NumEliminated(), 0u);
}

TEST_P(Figure2Test, EliminateAnswersTwoTwo) {
  SgbAllOptions options;
  options.epsilon = 3;
  options.metric = Metric::kLInf;
  options.on_overlap = OverlapClause::kEliminate;
  options.algorithm = GetParam();
  const auto result = SgbAll(Figure2Points(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(SortedSizes(result.value()), (std::vector<size_t>{2, 2}));
  EXPECT_EQ(result.value().NumEliminated(), 1u);
  // The dropped point is a5, the overlapping arrival.
  EXPECT_EQ(result.value().group_of[4], Grouping::kEliminated);
}

TEST_P(Figure2Test, FormNewGroupAnswersTwoTwoOne) {
  SgbAllOptions options;
  options.epsilon = 3;
  options.metric = Metric::kLInf;
  options.on_overlap = OverlapClause::kFormNewGroup;
  options.algorithm = GetParam();
  const auto result = SgbAll(Figure2Points(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(SortedSizes(result.value()), (std::vector<size_t>{2, 2, 1}));
  // a5 sits alone in the newly formed group.
  const auto groups = result.value().GroupsAsLists();
  bool found_singleton_a5 = false;
  for (const auto& g : groups) {
    if (g.size() == 1 && g[0] == 4) found_singleton_a5 = true;
  }
  EXPECT_TRUE(found_singleton_a5);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, Figure2Test,
                         ::testing::Values(SgbAllAlgorithm::kAllPairs,
                                           SgbAllAlgorithm::kBoundsChecking,
                                           SgbAllAlgorithm::kIndexed),
                         [](const auto& info) {
                           switch (info.param) {
                             case SgbAllAlgorithm::kAllPairs:
                               return "AllPairs";
                             case SgbAllAlgorithm::kBoundsChecking:
                               return "BoundsChecking";
                             default:
                               return "Indexed";
                           }
                         });

TEST(Figure2AnyTest, MergeAnswersFive) {
  // Example 2: a5 is within ε of members of both groups, so the groups
  // merge and the query answer is {5}.
  SgbAnyOptions options;
  options.epsilon = 3;
  options.metric = Metric::kLInf;
  for (const auto algorithm :
       {SgbAnyAlgorithm::kAllPairs, SgbAnyAlgorithm::kIndexed}) {
    options.algorithm = algorithm;
    const auto result = SgbAny(Figure2Points(), options);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().num_groups, 1u);
    EXPECT_EQ(result.value().GroupSizes(), (std::vector<size_t>{5}));
  }
}

TEST(Figure1AnyTest, ChainOfPointsFormsOneGroup) {
  // Figure 1b: points connected through intermediaries form one group
  // even though the endpoints are far apart.
  const std::vector<Point> chain = {{0, 0}, {2.5, 0}, {5, 0}, {7.5, 0},
                                    {10, 0}, {12.5, 0}};
  SgbAnyOptions options;
  options.epsilon = 3;
  options.metric = Metric::kL2;
  const auto result = SgbAny(chain, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_groups, 1u);

  // Breaking the chain splits the group.
  std::vector<Point> broken = chain;
  broken[3] = {100, 0};
  const auto split = SgbAny(broken, options);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split.value().num_groups, 3u);  // {0,1,2}, {4,5}, {100}
}

TEST(Figure1AllTest, CliqueInvariantHolds) {
  // Figure 1a: every pair inside an SGB-All group satisfies ξδ,ε.
  const std::vector<Point> pts = {{1, 5}, {2, 4}, {3, 5.5}, {2.5, 3},
                                  {1.5, 2.5}, {5, 2}, {5.5, 3.5}};
  SgbAllOptions options;
  options.epsilon = 3;
  options.metric = Metric::kLInf;
  const auto result = SgbAll(pts, options);
  ASSERT_TRUE(result.ok());
  for (const auto& group : result.value().GroupsAsLists()) {
    for (const size_t i : group) {
      for (const size_t j : group) {
        EXPECT_TRUE(geom::Similar(pts[i], pts[j], options.metric,
                                  options.epsilon));
      }
    }
  }
}

TEST(OverlapProcessingTest, EliminatePullsOverlappedMembersOut) {
  // ProcessOverlap (Section 6.2.2): a new point within ε of *some* members
  // of a group deletes those members under ELIMINATE.
  const std::vector<Point> pts = {{0, 0}, {2, 0}, {4, 0}};
  SgbAllOptions options;
  options.epsilon = 2;
  options.metric = Metric::kLInf;
  options.on_overlap = OverlapClause::kEliminate;
  const auto result = SgbAll(pts, options);
  ASSERT_TRUE(result.ok());
  // {p0,p1} group; p2 overlaps via p1 only: p1 is eliminated, p2 starts a
  // new group.
  EXPECT_EQ(result.value().group_of[1], Grouping::kEliminated);
  EXPECT_EQ(result.value().num_groups, 2u);
  EXPECT_EQ(SortedSizes(result.value()), (std::vector<size_t>{1, 1}));
}

TEST(OverlapProcessingTest, FormNewGroupRegroupsPulledMembers) {
  const std::vector<Point> pts = {{0, 0}, {2, 0}, {4, 0}};
  SgbAllOptions options;
  options.epsilon = 2;
  options.metric = Metric::kLInf;
  options.on_overlap = OverlapClause::kFormNewGroup;
  const auto result = SgbAll(pts, options);
  ASSERT_TRUE(result.ok());
  // p1 is pulled into S' and re-grouped alone in the next round.
  EXPECT_EQ(result.value().NumEliminated(), 0u);
  EXPECT_EQ(SortedSizes(result.value()), (std::vector<size_t>{1, 1, 1}));
}

TEST(OverlapProcessingTest, JoinAnyLeavesOverlappedMembersAlone) {
  const std::vector<Point> pts = {{0, 0}, {2, 0}, {4, 0}};
  SgbAllOptions options;
  options.epsilon = 2;
  options.metric = Metric::kLInf;
  options.on_overlap = OverlapClause::kJoinAny;
  const auto result = SgbAll(pts, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(SortedSizes(result.value()), (std::vector<size_t>{2, 1}));
}

}  // namespace
}  // namespace sgb::core
