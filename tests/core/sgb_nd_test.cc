#include "core/sgb_nd.h"

#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "common/random.h"
#include "core/sgb_all.h"
#include "core/sgb_any.h"

namespace sgb::core {
namespace {

using geom::Metric;
using P2 = geom::PointN<2>;
using P3 = geom::PointN<3>;

std::vector<P3> RandomCloud3d(size_t n, double extent, uint64_t seed) {
  Rng rng(seed);
  std::vector<P3> pts;
  pts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    pts.push_back(P3{{rng.NextUniform(0, extent), rng.NextUniform(0, extent),
                      rng.NextUniform(0, extent)}});
  }
  return pts;
}

TEST(SgbNdTest, TwoDimensionalSpecializationMatchesCore) {
  // The strongest cross-check available: SgbAllNd<2> must agree
  // bit-for-bit with the dedicated 2-D implementation for every clause,
  // metric and tier.
  Rng rng(44);
  std::vector<geom::Point> pts2;
  std::vector<P2> ptsn;
  for (int i = 0; i < 400; ++i) {
    const double x = rng.NextUniform(0, 8);
    const double y = rng.NextUniform(0, 8);
    pts2.push_back({x, y});
    ptsn.push_back(P2{{x, y}});
  }
  for (const Metric metric : {Metric::kL2, Metric::kLInf}) {
    for (const OverlapClause clause :
         {OverlapClause::kJoinAny, OverlapClause::kEliminate,
          OverlapClause::kFormNewGroup}) {
      for (const SgbAllAlgorithm algorithm :
           {SgbAllAlgorithm::kAllPairs, SgbAllAlgorithm::kBoundsChecking,
            SgbAllAlgorithm::kIndexed}) {
        SgbAllOptions options;
        options.epsilon = 0.7;
        options.metric = metric;
        options.on_overlap = clause;
        options.algorithm = algorithm;
        auto core2d = SgbAll(pts2, options);
        auto nd = SgbAllNd<2>(ptsn, options);
        ASSERT_TRUE(core2d.ok());
        ASSERT_TRUE(nd.ok());
        ASSERT_EQ(core2d.value().group_of, nd.value().group_of)
            << ToString(clause) << "/" << ToString(algorithm);
      }
    }
  }

  SgbAnyOptions any;
  any.epsilon = 0.5;
  for (const SgbAnyAlgorithm algorithm :
       {SgbAnyAlgorithm::kAllPairs, SgbAnyAlgorithm::kIndexed}) {
    any.algorithm = algorithm;
    auto core2d = SgbAny(pts2, any);
    auto nd = SgbAnyNd<2>(ptsn, any);
    ASSERT_TRUE(core2d.ok());
    ASSERT_TRUE(nd.ok());
    EXPECT_EQ(core2d.value().group_of, nd.value().group_of);
  }
}

TEST(SgbNdTest, ThreeDimensionalTiersAgree) {
  const auto pts = RandomCloud3d(500, 6.0, 3);
  for (const Metric metric : {Metric::kL2, Metric::kLInf}) {
    for (const OverlapClause clause :
         {OverlapClause::kJoinAny, OverlapClause::kEliminate,
          OverlapClause::kFormNewGroup}) {
      SgbAllOptions options;
      options.epsilon = 0.9;
      options.metric = metric;
      options.on_overlap = clause;
      options.algorithm = SgbAllAlgorithm::kAllPairs;
      auto naive = SgbAllNd<3>(pts, options);
      options.algorithm = SgbAllAlgorithm::kIndexed;
      auto indexed = SgbAllNd<3>(pts, options);
      ASSERT_TRUE(naive.ok());
      ASSERT_TRUE(indexed.ok());
      ASSERT_EQ(naive.value().group_of, indexed.value().group_of);
    }
  }
}

TEST(SgbNdTest, ThreeDimensionalCliqueInvariant) {
  const auto pts = RandomCloud3d(400, 5.0, 9);
  SgbAllOptions options;
  options.epsilon = 1.1;
  options.metric = Metric::kL2;
  const auto result = SgbAllNd<3>(pts, options);
  ASSERT_TRUE(result.ok());
  for (const auto& group : result.value().GroupsAsLists()) {
    for (const size_t a : group) {
      for (const size_t b : group) {
        ASSERT_TRUE(
            geom::Similar(pts[a], pts[b], options.metric, options.epsilon));
      }
    }
  }
}

TEST(SgbNdTest, ThreeDimensionalAnyMatchesBfs) {
  const auto pts = RandomCloud3d(300, 6.0, 21);
  SgbAnyOptions options;
  options.epsilon = 0.8;
  options.metric = Metric::kL2;

  // BFS reference.
  constexpr size_t kUnset = static_cast<size_t>(-1);
  std::vector<size_t> label(pts.size(), kUnset);
  size_t next = 0;
  for (size_t s = 0; s < pts.size(); ++s) {
    if (label[s] != kUnset) continue;
    const size_t mine = next++;
    std::deque<size_t> frontier = {s};
    label[s] = mine;
    while (!frontier.empty()) {
      const size_t u = frontier.front();
      frontier.pop_front();
      for (size_t v = 0; v < pts.size(); ++v) {
        if (label[v] == kUnset &&
            geom::Similar(pts[u], pts[v], options.metric, options.epsilon)) {
          label[v] = mine;
          frontier.push_back(v);
        }
      }
    }
  }

  for (const SgbAnyAlgorithm algorithm :
       {SgbAnyAlgorithm::kAllPairs, SgbAnyAlgorithm::kIndexed}) {
    options.algorithm = algorithm;
    auto result = SgbAnyNd<3>(pts, options);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().group_of, label);
  }
}

TEST(SgbNdTest, CornerOfCubeExceedsL2Ball) {
  // 3-D analogue of Figure 7b: inside the L∞ box but outside the L2 ball.
  const std::vector<P3> pts = {P3{{0, 0, 0}}, P3{{0.7, 0.7, 0.7}}};
  SgbAllOptions options;
  options.epsilon = 1.0;
  options.metric = Metric::kL2;  // L2 distance = 1.21 > ε
  auto l2 = SgbAllNd<3>(pts, options);
  ASSERT_TRUE(l2.ok());
  EXPECT_EQ(l2.value().num_groups, 2u);

  options.metric = Metric::kLInf;  // L∞ distance = 0.7 <= ε
  auto linf = SgbAllNd<3>(pts, options);
  ASSERT_TRUE(linf.ok());
  EXPECT_EQ(linf.value().num_groups, 1u);
}

TEST(SgbNdTest, FourDimensionsGroupCorrectly) {
  std::vector<geom::PointN<4>> pts = {
      geom::PointN<4>{{0, 0, 0, 0}},
      geom::PointN<4>{{0.1, 0.1, 0.1, 0.1}},
      geom::PointN<4>{{5, 5, 5, 5}},
  };
  SgbAnyOptions options;
  options.epsilon = 1.0;
  const auto result = SgbAnyNd<4>(pts, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_groups, 2u);
}

TEST(SgbNdTest, InvalidEpsilonRejected) {
  SgbAllOptions all;
  all.epsilon = -1;
  EXPECT_FALSE(SgbAllNd<3>(std::span<const P3>{}, all).ok());
  SgbAnyOptions any;
  any.epsilon = -1;
  EXPECT_FALSE(SgbAnyNd<3>(std::span<const P3>{}, any).ok());
}

}  // namespace
}  // namespace sgb::core
