// Parameterized property tests over the SGB invariants:
//  * SGB-All: every output group is a clique under ξδ,ε; the three
//    algorithm tiers produce identical groupings (same seed).
//  * SGB-Any: the grouping equals the connected components of the
//    ε-neighbour graph (checked against a BFS reference), for both tiers.
//  * Conservation: grouped + eliminated = n.

#include <gtest/gtest.h>

#include <deque>
#include <tuple>
#include <vector>

#include "common/random.h"
#include "core/sgb_all.h"
#include "core/sgb_any.h"

namespace sgb::core {
namespace {

using geom::Metric;
using geom::Point;

std::vector<Point> UniformCloud(size_t n, double extent, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> pts;
  pts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    pts.push_back({rng.NextUniform(0, extent), rng.NextUniform(0, extent)});
  }
  return pts;
}

std::vector<Point> ClusteredCloud(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> pts;
  pts.reserve(n);
  const int num_centers = 8;
  std::vector<Point> centers;
  for (int c = 0; c < num_centers; ++c) {
    centers.push_back({rng.NextUniform(0, 30), rng.NextUniform(0, 30)});
  }
  for (size_t i = 0; i < n; ++i) {
    const Point& c = centers[rng.NextBounded(num_centers)];
    pts.push_back({rng.NextGaussian(c.x, 0.8), rng.NextGaussian(c.y, 0.8)});
  }
  return pts;
}

using AllParam = std::tuple<Metric, OverlapClause, double, bool>;

class SgbAllPropertyTest : public ::testing::TestWithParam<AllParam> {};

TEST_P(SgbAllPropertyTest, CliqueInvariantAndTierEquivalence) {
  const auto [metric, clause, epsilon, clustered] = GetParam();
  const std::vector<Point> pts =
      clustered ? ClusteredCloud(250, 5) : UniformCloud(250, 12.0, 5);

  SgbAllOptions options;
  options.metric = metric;
  options.on_overlap = clause;
  options.epsilon = epsilon;
  options.seed = 99;

  std::vector<Grouping> results;
  for (const auto algorithm :
       {SgbAllAlgorithm::kAllPairs, SgbAllAlgorithm::kBoundsChecking,
        SgbAllAlgorithm::kIndexed}) {
    options.algorithm = algorithm;
    auto result = SgbAll(pts, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    results.push_back(std::move(result).value());
  }

  // Tier equivalence: identical assignment, not just identical sizes.
  EXPECT_EQ(results[0].group_of, results[1].group_of)
      << "all-pairs vs bounds-checking";
  EXPECT_EQ(results[0].group_of, results[2].group_of)
      << "all-pairs vs indexed";
  EXPECT_EQ(results[0].num_groups, results[2].num_groups);

  // Clique invariant.
  const Grouping& g = results[0];
  for (const auto& group : g.GroupsAsLists()) {
    EXPECT_FALSE(group.empty());
    for (size_t a = 0; a < group.size(); ++a) {
      for (size_t b = a + 1; b < group.size(); ++b) {
        ASSERT_TRUE(
            geom::Similar(pts[group[a]], pts[group[b]], metric, epsilon))
            << "points " << group[a] << " and " << group[b]
            << " share a group but violate the similarity predicate";
      }
    }
  }

  // Conservation.
  size_t placed = 0;
  for (const size_t gid : g.group_of) {
    placed += gid != Grouping::kEliminated ? 1 : 0;
  }
  EXPECT_EQ(placed + g.NumEliminated(), pts.size());
  if (clause != OverlapClause::kEliminate) {
    EXPECT_EQ(g.NumEliminated(), 0u);
  }
}

std::string AllParamName(const ::testing::TestParamInfo<AllParam>& info) {
  const auto [metric, clause, epsilon, clustered] = info.param;
  std::string name = metric == Metric::kL2 ? "L2" : "LInf";
  switch (clause) {
    case OverlapClause::kJoinAny:
      name += "JoinAny";
      break;
    case OverlapClause::kEliminate:
      name += "Eliminate";
      break;
    case OverlapClause::kFormNewGroup:
      name += "FormNew";
      break;
  }
  name += epsilon < 0.5 ? "EpsSmall" : (epsilon < 2 ? "EpsMid" : "EpsBig");
  name += clustered ? "Clustered" : "Uniform";
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SgbAllPropertyTest,
    ::testing::Combine(
        ::testing::Values(Metric::kL2, Metric::kLInf),
        ::testing::Values(OverlapClause::kJoinAny, OverlapClause::kEliminate,
                          OverlapClause::kFormNewGroup),
        ::testing::Values(0.4, 1.0, 2.5), ::testing::Bool()),
    AllParamName);

/// BFS reference for connected components of the ε-graph.
std::vector<size_t> ReferenceComponents(const std::vector<Point>& pts,
                                        Metric metric, double epsilon) {
  const size_t n = pts.size();
  constexpr size_t kUnset = static_cast<size_t>(-1);
  std::vector<size_t> label(n, kUnset);
  size_t next = 0;
  for (size_t s = 0; s < n; ++s) {
    if (label[s] != kUnset) continue;
    const size_t mine = next++;
    std::deque<size_t> frontier = {s};
    label[s] = mine;
    while (!frontier.empty()) {
      const size_t u = frontier.front();
      frontier.pop_front();
      for (size_t v = 0; v < n; ++v) {
        if (label[v] == kUnset &&
            geom::Similar(pts[u], pts[v], metric, epsilon)) {
          label[v] = mine;
          frontier.push_back(v);
        }
      }
    }
  }
  return label;
}

using AnyParam = std::tuple<Metric, double, bool>;

class SgbAnyPropertyTest : public ::testing::TestWithParam<AnyParam> {};

TEST_P(SgbAnyPropertyTest, MatchesConnectedComponents) {
  const auto [metric, epsilon, clustered] = GetParam();
  const std::vector<Point> pts =
      clustered ? ClusteredCloud(300, 21) : UniformCloud(300, 15.0, 21);

  const std::vector<size_t> reference =
      ReferenceComponents(pts, metric, epsilon);

  SgbAnyOptions options;
  options.metric = metric;
  options.epsilon = epsilon;
  for (const auto algorithm :
       {SgbAnyAlgorithm::kAllPairs, SgbAnyAlgorithm::kIndexed}) {
    options.algorithm = algorithm;
    auto result = SgbAny(pts, options);
    ASSERT_TRUE(result.ok());
    // BFS labels components in first-appearance order too, so the labels
    // must match exactly.
    EXPECT_EQ(result.value().group_of, reference)
        << "algorithm " << ToString(algorithm);
  }
}

std::string AnyParamName(const ::testing::TestParamInfo<AnyParam>& info) {
  const auto [metric, epsilon, clustered] = info.param;
  std::string name = metric == Metric::kL2 ? "L2" : "LInf";
  name += epsilon < 0.5 ? "EpsSmall" : (epsilon < 1.5 ? "EpsMid" : "EpsBig");
  name += clustered ? "Clustered" : "Uniform";
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SgbAnyPropertyTest,
    ::testing::Combine(::testing::Values(Metric::kL2, Metric::kLInf),
                       ::testing::Values(0.3, 0.8, 2.0), ::testing::Bool()),
    AnyParamName);

TEST(SgbAllMaximalityTest, NoSingletonCanJoinAnExistingEarlierGroup) {
  // Weak maximality check consistent with the streaming semantics: when a
  // point ends up alone under JOIN-ANY, it must not be within ε of every
  // member of any group formed *before* it was processed. We verify the
  // final state: a singleton's point may not satisfy ξδ,ε against all
  // members of any other group (otherwise JOIN-ANY would have joined it —
  // removals never happen under JOIN-ANY).
  const std::vector<Point> pts = UniformCloud(200, 10.0, 8);
  SgbAllOptions options;
  options.epsilon = 0.8;
  options.on_overlap = OverlapClause::kJoinAny;
  options.algorithm = SgbAllAlgorithm::kIndexed;
  const auto result = SgbAll(pts, options);
  ASSERT_TRUE(result.ok());
  const auto groups = result.value().GroupsAsLists();
  for (size_t s = 0; s < groups.size(); ++s) {
    if (groups[s].size() != 1) continue;
    const Point& lone = pts[groups[s][0]];
    for (size_t other = 0; other < s; ++other) {
      bool joins_all = true;
      for (const size_t m : groups[other]) {
        joins_all =
            joins_all && geom::Similar(lone, pts[m], options.metric,
                                       options.epsilon);
      }
      EXPECT_FALSE(joins_all)
          << "singleton group " << s << " could have joined group " << other;
    }
  }
}

}  // namespace
}  // namespace sgb::core
