#include "core/sgb1d.h"

#include <gtest/gtest.h>

#include <vector>

namespace sgb::core {
namespace {

TEST(SgbUnsupervisedTest, SegmentsBySeparation) {
  // Gaps: 1, 1, 5, 1 with s = 2 -> {10,11,12}, {17,18}.
  const std::vector<double> values = {10, 11, 12, 17, 18};
  const auto result = SgbUnsupervised(values, 2.0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_groups, 2u);
  EXPECT_EQ(result.value().group_of, (std::vector<size_t>{0, 0, 0, 1, 1}));
}

TEST(SgbUnsupervisedTest, InputOrderDoesNotMatter) {
  const std::vector<double> values = {18, 10, 17, 12, 11};
  const auto result = SgbUnsupervised(values, 2.0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().group_of, (std::vector<size_t>{1, 0, 1, 0, 0}));
}

TEST(SgbUnsupervisedTest, DiameterLimitSplitsLongRuns) {
  // Within separation everywhere, but diameter 3 forces splits.
  const std::vector<double> values = {0, 1, 2, 3, 4, 5, 6};
  const auto result = SgbUnsupervised(values, 1.5, 3.0);
  ASSERT_TRUE(result.ok());
  // Greedy: {0..3}, {4..6}.
  EXPECT_EQ(result.value().num_groups, 2u);
  EXPECT_EQ(result.value().group_of,
            (std::vector<size_t>{0, 0, 0, 0, 1, 1, 1}));
}

TEST(SgbUnsupervisedTest, BoundaryGapEqualsSeparationStaysTogether) {
  const std::vector<double> values = {0, 2};
  const auto result = SgbUnsupervised(values, 2.0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_groups, 1u);
}

TEST(SgbUnsupervisedTest, EmptyAndErrors) {
  EXPECT_TRUE(SgbUnsupervised({}, 1.0).ok());
  EXPECT_EQ(SgbUnsupervised({}, 1.0).value().num_groups, 0u);
  EXPECT_FALSE(SgbUnsupervised({}, -1.0).ok());
  EXPECT_FALSE(SgbUnsupervised({}, 1.0, -2.0).ok());
}

TEST(SgbAroundTest, NearestCenterWins) {
  const std::vector<double> values = {1, 4, 6, 9};
  const std::vector<double> centers = {0, 10};
  const auto result = SgbAround(values, centers);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_groups, 2u);
  EXPECT_EQ(result.value().group_of, (std::vector<size_t>{0, 0, 1, 1}));
}

TEST(SgbAroundTest, TieGoesToLowerCenter) {
  const std::vector<double> values = {5};
  const std::vector<double> centers = {0, 10};
  const auto result = SgbAround(values, centers);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().group_of, (std::vector<size_t>{0}));
}

TEST(SgbAroundTest, SeparationLimitLeavesFarValuesUngrouped) {
  // MAXIMUM_ELEMENT_SEPARATION 2r keeps values within r of the center.
  const std::vector<double> values = {1, 3, 9};
  const std::vector<double> centers = {0};
  const auto result = SgbAround(values, centers, /*max_separation=*/4.0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().group_of,
            (std::vector<size_t>{0, Grouping1D::kUngrouped,
                                 Grouping1D::kUngrouped}));
}

TEST(SgbAroundTest, DiameterLimitAlsoCaps) {
  const std::vector<double> values = {1, 3};
  const std::vector<double> centers = {0};
  const auto result = SgbAround(values, centers, std::nullopt,
                                /*max_diameter=*/3.0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().group_of,
            (std::vector<size_t>{0, Grouping1D::kUngrouped}));
}

TEST(SgbAroundTest, DuplicateCentersCollapse) {
  const std::vector<double> values = {1};
  const std::vector<double> centers = {5, 5, 5};
  const auto result = SgbAround(values, centers);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_groups, 1u);
}

TEST(SgbAroundTest, EmptyCentersIsAnError) {
  EXPECT_FALSE(SgbAround(std::vector<double>{1.0}, {}).ok());
}

TEST(SgbDelimitedTest, DelimitersSplitTheLine) {
  const std::vector<double> values = {1, 5, 9, 15};
  const std::vector<double> delimiters = {4, 10};
  const auto result = SgbDelimited(values, delimiters);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_groups, 3u);
  EXPECT_EQ(result.value().group_of, (std::vector<size_t>{0, 1, 1, 2}));
}

TEST(SgbDelimitedTest, ValueEqualToDelimiterFallsBelow) {
  const std::vector<double> values = {4};
  const std::vector<double> delimiters = {4};
  const auto result = SgbDelimited(values, delimiters);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().group_of, (std::vector<size_t>{0}));
}

TEST(SgbDelimitedTest, EmptySegmentsGetNoIds) {
  // No value falls between 4 and 10: ids stay dense.
  const std::vector<double> values = {1, 15};
  const std::vector<double> delimiters = {4, 10};
  const auto result = SgbDelimited(values, delimiters);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_groups, 2u);
  EXPECT_EQ(result.value().group_of, (std::vector<size_t>{0, 1}));
}

TEST(SgbDelimitedTest, NoDelimitersMeansOneGroup) {
  const std::vector<double> values = {3, 8};
  const auto result = SgbDelimited(values, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_groups, 1u);
}

}  // namespace
}  // namespace sgb::core
