#include "core/sgb_all.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "common/random.h"

namespace sgb::core {
namespace {

using geom::Metric;
using geom::Point;

SgbAllOptions Opts(double eps, Metric metric, OverlapClause clause,
                   SgbAllAlgorithm algorithm) {
  SgbAllOptions o;
  o.epsilon = eps;
  o.metric = metric;
  o.on_overlap = clause;
  o.algorithm = algorithm;
  return o;
}

TEST(SgbAllTest, EmptyInput) {
  const auto result = SgbAll({}, SgbAllOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_groups, 0u);
  EXPECT_TRUE(result.value().group_of.empty());
}

TEST(SgbAllTest, SinglePoint) {
  const std::vector<Point> pts = {{1, 1}};
  const auto result = SgbAll(pts, SgbAllOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_groups, 1u);
  EXPECT_EQ(result.value().group_of, (std::vector<size_t>{0}));
}

TEST(SgbAllTest, IdenticalPointsAlwaysOneGroup) {
  const std::vector<Point> pts(20, Point{2, 3});
  for (const auto algorithm :
       {SgbAllAlgorithm::kAllPairs, SgbAllAlgorithm::kBoundsChecking,
        SgbAllAlgorithm::kIndexed}) {
    const auto result = SgbAll(
        pts, Opts(0.0, Metric::kL2, OverlapClause::kJoinAny, algorithm));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().num_groups, 1u);
  }
}

TEST(SgbAllTest, EpsilonZeroSeparatesDistinctPoints) {
  const std::vector<Point> pts = {{0, 0}, {0, 0}, {1, 0}};
  const auto result = SgbAll(pts, Opts(0.0, Metric::kLInf,
                                       OverlapClause::kJoinAny,
                                       SgbAllAlgorithm::kIndexed));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_groups, 2u);
  EXPECT_EQ(result.value().group_of[0], result.value().group_of[1]);
  EXPECT_NE(result.value().group_of[0], result.value().group_of[2]);
}

TEST(SgbAllTest, RejectsInvalidEpsilon) {
  SgbAllOptions options;
  options.epsilon = -1;
  EXPECT_FALSE(SgbAll({}, options).ok());
  options.epsilon = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(SgbAll({}, options).ok());
  options.epsilon = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(SgbAll({}, options).ok());
}

TEST(SgbAllTest, RejectsInvalidRegroupRounds) {
  SgbAllOptions options;
  options.max_regroup_rounds = 0;
  EXPECT_FALSE(SgbAll({}, options).ok());
}

TEST(SgbAllTest, JoinAnyIsDeterministicPerSeed) {
  Rng rng(77);
  std::vector<Point> pts;
  for (int i = 0; i < 300; ++i) {
    pts.push_back({rng.NextUniform(0, 10), rng.NextUniform(0, 10)});
  }
  SgbAllOptions options =
      Opts(1.0, Metric::kL2, OverlapClause::kJoinAny,
           SgbAllAlgorithm::kIndexed);
  options.seed = 5;
  const auto a = SgbAll(pts, options);
  const auto b = SgbAll(pts, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().group_of, b.value().group_of);
}

TEST(SgbAllTest, StatsReflectAlgorithmTier) {
  Rng rng(13);
  std::vector<Point> pts;
  for (int i = 0; i < 400; ++i) {
    pts.push_back({rng.NextUniform(0, 40), rng.NextUniform(0, 40)});
  }
  SgbAllStats naive_stats;
  SgbAllStats index_stats;
  ASSERT_TRUE(SgbAll(pts,
                     Opts(0.5, Metric::kLInf, OverlapClause::kJoinAny,
                          SgbAllAlgorithm::kAllPairs),
                     &naive_stats)
                  .ok());
  ASSERT_TRUE(SgbAll(pts,
                     Opts(0.5, Metric::kLInf, OverlapClause::kJoinAny,
                          SgbAllAlgorithm::kIndexed),
                     &index_stats)
                  .ok());
  // The filter-refine tiers trade distance computations for window queries
  // and rectangle tests — the whole point of Section 6.3.
  EXPECT_GT(naive_stats.distance_computations,
            10 * std::max<size_t>(index_stats.distance_computations, 1));
  EXPECT_EQ(index_stats.index_window_queries, pts.size());
  EXPECT_GT(index_stats.rectangle_tests, 0u);
  EXPECT_EQ(naive_stats.index_window_queries, 0u);
}

TEST(SgbAllTest, LInfMembershipNeedsNoDistanceComputations) {
  // Under L∞ with JOIN-ANY the bounds-checking tier decides membership with
  // rectangle tests alone (constant per group, Section 6.3).
  const std::vector<Point> pts = {{0, 0}, {1, 0}, {0.5, 0.5}, {10, 10}};
  SgbAllStats stats;
  ASSERT_TRUE(SgbAll(pts,
                     Opts(2.0, Metric::kLInf, OverlapClause::kJoinAny,
                          SgbAllAlgorithm::kBoundsChecking),
                     &stats)
                  .ok());
  EXPECT_EQ(stats.distance_computations, 0u);
  EXPECT_EQ(stats.hull_tests, 0u);
}

TEST(SgbAllTest, L2UsesHullRefinement) {
  // Points in the rectangle corner that fail the ε-circle must be filtered
  // by the convex-hull test (Figure 7b).
  const std::vector<Point> pts = {{0, 0}, {0.9, 0.9}};
  SgbAllStats stats;
  const auto result = SgbAll(pts,
                             Opts(1.0, Metric::kL2, OverlapClause::kJoinAny,
                                  SgbAllAlgorithm::kBoundsChecking),
                             &stats);
  ASSERT_TRUE(result.ok());
  // L∞ distance is 0.9 (inside the rectangle) but L2 is 1.27 (> ε):
  // two separate groups, found only thanks to the hull refinement.
  EXPECT_EQ(result.value().num_groups, 2u);
  EXPECT_GT(stats.hull_tests, 0u);
}

TEST(SgbAllTest, FormNewGroupTerminatesOnAdversarialInput) {
  // A dense line of points produces repeated overlaps; the recursion guard
  // must still terminate and place every point.
  std::vector<Point> pts;
  for (int i = 0; i < 60; ++i) {
    pts.push_back({static_cast<double>(i) * 0.6, 0});
  }
  SgbAllOptions options = Opts(1.0, Metric::kLInf,
                               OverlapClause::kFormNewGroup,
                               SgbAllAlgorithm::kIndexed);
  options.max_regroup_rounds = 8;
  const auto result = SgbAll(pts, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().NumEliminated(), 0u);
  size_t placed = 0;
  for (const size_t g : result.value().group_of) {
    placed += g != Grouping::kEliminated ? 1 : 0;
  }
  EXPECT_EQ(placed, pts.size());
}

TEST(SgbAllTest, GroupsAsListsRoundTrips) {
  const std::vector<Point> pts = {{0, 0}, {0.5, 0}, {9, 9}};
  const auto result = SgbAll(pts, Opts(1.0, Metric::kL2,
                                       OverlapClause::kJoinAny,
                                       SgbAllAlgorithm::kAllPairs));
  ASSERT_TRUE(result.ok());
  const auto lists = result.value().GroupsAsLists();
  ASSERT_EQ(lists.size(), 2u);
  EXPECT_EQ(lists[0], (std::vector<size_t>{0, 1}));
  EXPECT_EQ(lists[1], (std::vector<size_t>{2}));
}

}  // namespace
}  // namespace sgb::core
