// Order-independence property tests. Similarity grouping should be a
// function of the input *set*, not the input *order* (the algebraic
// well-definedness requirement studied for similarity grouping/joins in
// arXiv:1412.4303):
//
//  * SGB-Any partitions by ε-connectivity, so its grouping is fully
//    order-independent on every input — we verify by re-running under many
//    seeded permutations and comparing canonicalized partitions.
//  * SGB-All's insertion-order-driven group formation is order-sensitive on
//    general inputs *by design* (the paper's Section 4 semantics); its
//    order-independent regime is well-separated cliques (diameter <= ε,
//    inter-clique separation > 3ε), where every overlap clause must
//    reproduce exactly the cliques under any permutation.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/random.h"
#include "core/sgb_all.h"
#include "core/sgb_any.h"

namespace sgb::core {
namespace {

using geom::Metric;
using geom::Point;

/// A grouping over permuted points, mapped back to original point ids and
/// canonicalized: sorted member lists, sorted by first member. Two runs
/// agree on the partition iff their canonical forms are equal. Eliminated
/// points are collected separately (order canonical too).
struct CanonicalPartition {
  std::vector<std::vector<size_t>> groups;
  std::vector<size_t> eliminated;

  bool operator==(const CanonicalPartition&) const = default;
};

CanonicalPartition Canonicalize(const Grouping& grouping,
                                const std::vector<size_t>& perm) {
  CanonicalPartition out;
  out.groups.resize(grouping.num_groups);
  for (size_t i = 0; i < grouping.group_of.size(); ++i) {
    const size_t g = grouping.group_of[i];
    const size_t original_id = perm[i];
    if (g == Grouping::kEliminated) {
      out.eliminated.push_back(original_id);
    } else {
      out.groups[g].push_back(original_id);
    }
  }
  for (auto& group : out.groups) std::sort(group.begin(), group.end());
  std::sort(out.groups.begin(), out.groups.end());
  std::sort(out.eliminated.begin(), out.eliminated.end());
  return out;
}

std::vector<size_t> IdentityPerm(size_t n) {
  std::vector<size_t> perm(n);
  std::iota(perm.begin(), perm.end(), size_t{0});
  return perm;
}

/// Fisher-Yates with the library Rng, so shuffles reproduce across runs.
std::vector<size_t> ShuffledPerm(size_t n, Rng& rng) {
  std::vector<size_t> perm = IdentityPerm(n);
  for (size_t i = n; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.NextBounded(i)]);
  }
  return perm;
}

std::vector<Point> Apply(const std::vector<Point>& pts,
                         const std::vector<size_t>& perm) {
  std::vector<Point> out(pts.size());
  for (size_t i = 0; i < perm.size(); ++i) out[i] = pts[perm[i]];
  return out;
}

std::vector<Point> UniformCloud(size_t n, double extent, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> pts;
  pts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    pts.push_back({rng.NextUniform(0, extent), rng.NextUniform(0, extent)});
  }
  return pts;
}

/// Cliques of diameter <= eps whose centers sit > 3*eps apart (grid
/// placement with spacing 5*eps), plus a few exact duplicates.
std::vector<Point> SeparatedCliques(size_t cliques, size_t per_clique,
                                    double eps, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> pts;
  const size_t side = static_cast<size_t>(std::ceil(std::sqrt(
      static_cast<double>(cliques))));
  for (size_t c = 0; c < cliques; ++c) {
    const double cx = static_cast<double>(c % side) * 5.0 * eps;
    const double cy = static_cast<double>(c / side) * 5.0 * eps;
    for (size_t k = 0; k < per_clique; ++k) {
      // Radius eps/2 about the center bounds the diameter by eps (L2 and
      // LInf alike).
      const double angle = rng.NextUniform(0, 6.28318530717958647692);
      const double radius = rng.NextUniform(0, eps / 2);
      pts.push_back({cx + radius * std::cos(angle),
                     cy + radius * std::sin(angle)});
    }
    pts.push_back(pts.back());  // exact duplicate inside the clique
  }
  return pts;
}

class OrderIndependenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OrderIndependenceTest, SgbAnyPartitionIsPermutationInvariant) {
  const uint64_t seed = GetParam();
  const auto pts = UniformCloud(250, 6.0, seed);
  Rng rng(seed ^ 0x9E3779B97F4A7C15ULL);
  for (const Metric metric : {Metric::kL2, Metric::kLInf}) {
    for (const SgbAnyAlgorithm algorithm :
         {SgbAnyAlgorithm::kAllPairs, SgbAnyAlgorithm::kIndexed}) {
      SgbAnyOptions options;
      options.epsilon = 0.45;
      options.metric = metric;
      options.algorithm = algorithm;
      auto base = SgbAny(pts, options);
      ASSERT_TRUE(base.ok());
      const auto want = Canonicalize(base.value(), IdentityPerm(pts.size()));
      for (int round = 0; round < 5; ++round) {
        const auto perm = ShuffledPerm(pts.size(), rng);
        auto shuffled = SgbAny(Apply(pts, perm), options);
        ASSERT_TRUE(shuffled.ok());
        EXPECT_EQ(Canonicalize(shuffled.value(), perm), want)
            << "algorithm=" << ToString(algorithm) << " round=" << round;
      }
    }
  }
}

TEST_P(OrderIndependenceTest, SgbAnyParallelMatchesSerialUnderPermutation) {
  const uint64_t seed = GetParam();
  const auto pts = UniformCloud(300, 8.0, seed);
  SgbAnyOptions serial;
  serial.epsilon = 0.5;
  auto base = SgbAny(pts, serial);
  ASSERT_TRUE(base.ok());
  const auto want = Canonicalize(base.value(), IdentityPerm(pts.size()));

  Rng rng(seed + 1);
  SgbAnyOptions parallel = serial;
  parallel.degree_of_parallelism = 4;
  for (int round = 0; round < 3; ++round) {
    const auto perm = ShuffledPerm(pts.size(), rng);
    auto shuffled = SgbAny(Apply(pts, perm), parallel);
    ASSERT_TRUE(shuffled.ok());
    EXPECT_EQ(Canonicalize(shuffled.value(), perm), want) << round;
  }
}

TEST_P(OrderIndependenceTest, SgbAllRecoversSeparatedCliquesInAnyOrder) {
  const uint64_t seed = GetParam();
  constexpr double kEps = 0.4;
  constexpr size_t kCliques = 12;
  const auto pts = SeparatedCliques(kCliques, 6, kEps, seed);

  // Ground truth: each clique (including its duplicate point) is one group;
  // nothing is eliminated, under every clause and metric.
  Rng rng(seed ^ 0xABCD);
  for (const Metric metric : {Metric::kL2, Metric::kLInf}) {
    for (const OverlapClause clause :
         {OverlapClause::kJoinAny, OverlapClause::kEliminate,
          OverlapClause::kFormNewGroup}) {
      SgbAllOptions options;
      options.epsilon = kEps;
      options.metric = metric;
      options.on_overlap = clause;
      options.seed = seed;
      auto base = SgbAll(pts, options);
      ASSERT_TRUE(base.ok());
      const auto want = Canonicalize(base.value(), IdentityPerm(pts.size()));
      ASSERT_EQ(want.groups.size(), kCliques);
      ASSERT_TRUE(want.eliminated.empty());

      for (int round = 0; round < 4; ++round) {
        const auto perm = ShuffledPerm(pts.size(), rng);
        auto shuffled = SgbAll(Apply(pts, perm), options);
        ASSERT_TRUE(shuffled.ok());
        EXPECT_EQ(Canonicalize(shuffled.value(), perm), want)
            << "clause=" << ToString(clause) << " round=" << round;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderIndependenceTest,
                         ::testing::Values(1u, 2u, 3u, 7u, 42u));

}  // namespace
}  // namespace sgb::core
