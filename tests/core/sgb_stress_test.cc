// Randomized stress tests: larger inputs, many seeds, adversarial
// configurations — everything here checks invariants rather than golden
// values, so failures localize real defects in the filter-refine machinery.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/random.h"
#include "core/sgb_all.h"
#include "core/sgb_any.h"

namespace sgb::core {
namespace {

using geom::Metric;
using geom::Point;

std::vector<Point> HotspotCloud(size_t n, size_t hotspots, double stddev,
                                double extent, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> centers;
  for (size_t i = 0; i < hotspots; ++i) {
    centers.push_back({rng.NextUniform(0, extent),
                       rng.NextUniform(0, extent)});
  }
  std::vector<Point> pts;
  pts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Point& c = centers[rng.NextBounded(hotspots)];
    pts.push_back({rng.NextGaussian(c.x, stddev),
                   rng.NextGaussian(c.y, stddev)});
  }
  return pts;
}

class SeedSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeedSweepTest, TiersAgreeOnDenseHotspots) {
  const uint64_t seed = GetParam();
  const auto pts = HotspotCloud(600, 5, 0.3, 4.0, seed);
  for (const Metric metric : {Metric::kL2, Metric::kLInf}) {
    for (const OverlapClause clause :
         {OverlapClause::kJoinAny, OverlapClause::kEliminate,
          OverlapClause::kFormNewGroup}) {
      SgbAllOptions options;
      options.epsilon = 0.5;
      options.metric = metric;
      options.on_overlap = clause;
      options.seed = seed;

      options.algorithm = SgbAllAlgorithm::kAllPairs;
      auto naive = SgbAll(pts, options);
      options.algorithm = SgbAllAlgorithm::kIndexed;
      auto indexed = SgbAll(pts, options);
      ASSERT_TRUE(naive.ok());
      ASSERT_TRUE(indexed.ok());
      ASSERT_EQ(naive.value().group_of, indexed.value().group_of)
          << "metric=" << (metric == Metric::kL2 ? "L2" : "LInf")
          << " clause=" << ToString(clause) << " seed=" << seed;
    }
  }
}

TEST_P(SeedSweepTest, AnyTiersAgreeOnDenseHotspots) {
  const uint64_t seed = GetParam();
  const auto pts = HotspotCloud(800, 4, 0.4, 5.0, seed);
  for (const Metric metric : {Metric::kL2, Metric::kLInf}) {
    SgbAnyOptions options;
    options.epsilon = 0.35;
    options.metric = metric;
    options.algorithm = SgbAnyAlgorithm::kAllPairs;
    auto naive = SgbAny(pts, options);
    options.algorithm = SgbAnyAlgorithm::kIndexed;
    auto indexed = SgbAny(pts, options);
    ASSERT_TRUE(naive.ok());
    ASSERT_TRUE(indexed.ok());
    EXPECT_EQ(naive.value().group_of, indexed.value().group_of);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweepTest,
                         ::testing::Values(1, 7, 23, 99, 1234, 777777));

TEST(SgbAllStressTest, DuplicateHeavyInput) {
  // Many exact duplicates exercise degenerate rectangles and hulls.
  Rng rng(5);
  std::vector<Point> pts;
  for (int i = 0; i < 40; ++i) {
    const Point p{rng.NextUniform(0, 3), rng.NextUniform(0, 3)};
    const int copies = static_cast<int>(rng.NextBounded(12)) + 1;
    for (int c = 0; c < copies; ++c) pts.push_back(p);
  }
  for (const OverlapClause clause :
       {OverlapClause::kJoinAny, OverlapClause::kEliminate,
        OverlapClause::kFormNewGroup}) {
    SgbAllOptions options;
    options.epsilon = 0.4;
    options.on_overlap = clause;
    options.algorithm = SgbAllAlgorithm::kAllPairs;
    auto naive = SgbAll(pts, options);
    options.algorithm = SgbAllAlgorithm::kIndexed;
    auto indexed = SgbAll(pts, options);
    ASSERT_TRUE(naive.ok());
    ASSERT_TRUE(indexed.ok());
    EXPECT_EQ(naive.value().group_of, indexed.value().group_of);
    // Clique invariant still holds.
    const auto groups = indexed.value().GroupsAsLists();
    for (const auto& g : groups) {
      for (const size_t a : g) {
        for (const size_t b : g) {
          ASSERT_TRUE(geom::Similar(pts[a], pts[b], options.metric,
                                    options.epsilon));
        }
      }
    }
  }
}

TEST(SgbAllStressTest, CollinearPointsExerciseDegenerateHulls) {
  std::vector<Point> pts;
  for (int i = 0; i < 200; ++i) pts.push_back({i * 0.07, 0.0});
  SgbAllOptions options;
  options.epsilon = 0.2;
  options.metric = Metric::kL2;
  options.algorithm = SgbAllAlgorithm::kAllPairs;
  auto naive = SgbAll(pts, options);
  options.algorithm = SgbAllAlgorithm::kIndexed;
  auto indexed = SgbAll(pts, options);
  ASSERT_TRUE(naive.ok());
  ASSERT_TRUE(indexed.ok());
  EXPECT_EQ(naive.value().group_of, indexed.value().group_of);
}

TEST(SgbAllStressTest, NegativeAndLargeCoordinates) {
  Rng rng(11);
  std::vector<Point> pts;
  for (int i = 0; i < 300; ++i) {
    pts.push_back({rng.NextUniform(-1e6, 1e6), rng.NextUniform(-1e6, 1e6)});
  }
  // Add a dense pocket far from the origin.
  for (int i = 0; i < 100; ++i) {
    pts.push_back({-5e5 + rng.NextGaussian(0, 10),
                   7e5 + rng.NextGaussian(0, 10)});
  }
  SgbAllOptions options;
  options.epsilon = 50.0;
  options.on_overlap = OverlapClause::kEliminate;
  options.algorithm = SgbAllAlgorithm::kAllPairs;
  auto naive = SgbAll(pts, options);
  options.algorithm = SgbAllAlgorithm::kIndexed;
  auto indexed = SgbAll(pts, options);
  ASSERT_TRUE(naive.ok());
  ASSERT_TRUE(indexed.ok());
  EXPECT_EQ(naive.value().group_of, indexed.value().group_of);
}

TEST(SgbAnyStressTest, GridChainsMergeIntoStripes) {
  // A lattice where only horizontal neighbours touch: rows become groups.
  std::vector<Point> pts;
  const int cols = 30;
  const int rows = 10;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      pts.push_back({c * 1.0, r * 5.0});
    }
  }
  SgbAnyOptions options;
  options.epsilon = 1.0;
  options.metric = Metric::kL2;
  const auto result = SgbAny(pts, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_groups, static_cast<size_t>(rows));
  const auto sizes = result.value().GroupSizes();
  for (const size_t s : sizes) EXPECT_EQ(s, static_cast<size_t>(cols));
}

TEST(SgbAllStressTest, FormNewGroupPlacesEveryPointAcrossManyRounds) {
  // Rings of points around shared centers generate repeated overlap pulls.
  Rng rng(3);
  std::vector<Point> pts;
  for (int ring = 0; ring < 6; ++ring) {
    const Point c{ring * 1.5, 0.0};
    for (int k = 0; k < 60; ++k) {
      const double angle = rng.NextUniform(0, 2 * M_PI);
      const double radius = rng.NextUniform(0, 1.1);
      pts.push_back({c.x + radius * std::cos(angle),
                     c.y + radius * std::sin(angle)});
    }
  }
  SgbAllOptions options;
  options.epsilon = 0.8;
  options.metric = Metric::kL2;
  options.on_overlap = OverlapClause::kFormNewGroup;
  SgbAllStats stats;
  const auto result = SgbAll(pts, options, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().NumEliminated(), 0u);
  size_t placed = 0;
  for (const size_t g : result.value().group_of) {
    placed += g != Grouping::kEliminated ? 1 : 0;
  }
  EXPECT_EQ(placed, pts.size());
  EXPECT_GT(stats.regroup_rounds, 0u);
}

}  // namespace
}  // namespace sgb::core
