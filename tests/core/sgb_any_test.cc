#include "core/sgb_any.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "common/random.h"

namespace sgb::core {
namespace {

using geom::Metric;
using geom::Point;

TEST(SgbAnyTest, EmptyAndSingle) {
  const auto empty = SgbAny({}, SgbAnyOptions{});
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty.value().num_groups, 0u);

  const std::vector<Point> one = {{5, 5}};
  const auto single = SgbAny(one, SgbAnyOptions{});
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(single.value().num_groups, 1u);
}

TEST(SgbAnyTest, RejectsInvalidEpsilon) {
  SgbAnyOptions options;
  options.epsilon = -0.5;
  EXPECT_FALSE(SgbAny({}, options).ok());
  options.epsilon = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(SgbAny({}, options).ok());
}

TEST(SgbAnyTest, OrderInsensitiveGroupSizes) {
  // SGB-Any is connectivity-based, so permuting the input must not change
  // the partition (unlike SGB-All).
  Rng rng(3);
  std::vector<Point> pts;
  for (int i = 0; i < 120; ++i) {
    pts.push_back({rng.NextUniform(0, 20), rng.NextUniform(0, 20)});
  }
  SgbAnyOptions options;
  options.epsilon = 1.2;
  const auto forward = SgbAny(pts, options);
  std::vector<Point> reversed(pts.rbegin(), pts.rend());
  const auto backward = SgbAny(reversed, options);
  ASSERT_TRUE(forward.ok());
  ASSERT_TRUE(backward.ok());
  auto sizes_fwd = forward.value().GroupSizes();
  auto sizes_bwd = backward.value().GroupSizes();
  std::sort(sizes_fwd.begin(), sizes_fwd.end());
  std::sort(sizes_bwd.begin(), sizes_bwd.end());
  EXPECT_EQ(sizes_fwd, sizes_bwd);
}

TEST(SgbAnyTest, L2WindowCornersAreVerified) {
  // Two points in the L∞ window corner but beyond the L2 radius must stay
  // separate under L2 and merge under L∞ (VerifyPoints in Procedure 8).
  const std::vector<Point> pts = {{0, 0}, {0.9, 0.9}};
  SgbAnyOptions options;
  options.epsilon = 1.0;
  options.metric = Metric::kL2;
  const auto l2 = SgbAny(pts, options);
  ASSERT_TRUE(l2.ok());
  EXPECT_EQ(l2.value().num_groups, 2u);

  options.metric = Metric::kLInf;
  const auto linf = SgbAny(pts, options);
  ASSERT_TRUE(linf.ok());
  EXPECT_EQ(linf.value().num_groups, 1u);
}

TEST(SgbAnyTest, StatsCountMergesAndQueries) {
  const std::vector<Point> pts = {{0, 0}, {10, 10}, {5, 5}, {2.5, 2.5},
                                  {7.5, 7.5}};
  SgbAnyOptions options;
  options.epsilon = 3.6;  // L2: adjacent diagonal points are ~3.54 apart
  options.algorithm = SgbAnyAlgorithm::kIndexed;
  SgbAnyStats stats;
  const auto result = SgbAny(pts, options, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_groups, 1u);
  EXPECT_EQ(stats.index_window_queries, pts.size());
  EXPECT_GE(stats.group_merges, 4u);  // n-1 merges to connect 5 points
}

TEST(SgbAnyTest, GroupIdsAreDenseAndInputOrdered) {
  const std::vector<Point> pts = {{0, 0}, {50, 50}, {0.5, 0}, {50.5, 50}};
  SgbAnyOptions options;
  options.epsilon = 1.0;
  const auto result = SgbAny(pts, options);
  ASSERT_TRUE(result.ok());
  // First appearance order: point 0 -> group 0, point 1 -> group 1.
  EXPECT_EQ(result.value().group_of,
            (std::vector<size_t>{0, 1, 0, 1}));
}

}  // namespace
}  // namespace sgb::core
