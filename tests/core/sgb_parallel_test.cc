// Differential tests for the partition-parallel SGB paths: for every
// metric, ON-OVERLAP policy and degree of parallelism, the parallel result
// must equal the serial (dop=1) reference exactly — not just set-equal —
// which is the semantics guarantee docs/PARALLELISM.md makes.

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "core/sgb_all.h"
#include "core/sgb_any.h"
#include "geom/point.h"
#include "index/grid_partition.h"
#include "index/union_find.h"

namespace sgb::core {
namespace {

using geom::Metric;
using geom::Point;

/// Clustered points with inter-cluster stragglers: many independent
/// ε-components of varying size, plus enough density that groups overlap
/// and every ON-OVERLAP policy is exercised.
std::vector<Point> ClusteredPoints(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> points;
  points.reserve(n);
  const size_t clusters = 1 + n / 24;
  std::vector<Point> centers;
  centers.reserve(clusters);
  for (size_t c = 0; c < clusters; ++c) {
    centers.push_back(
        Point{rng.NextUniform(0.0, 50.0), rng.NextUniform(0.0, 50.0)});
  }
  for (size_t i = 0; i < n; ++i) {
    if (rng.NextDouble() < 0.1) {  // straggler
      points.push_back(
          Point{rng.NextUniform(0.0, 50.0), rng.NextUniform(0.0, 50.0)});
      continue;
    }
    const Point& c = centers[rng.NextBounded(centers.size())];
    points.push_back(Point{c.x + rng.NextGaussian(0.0, 0.7),
                           c.y + rng.NextGaussian(0.0, 0.7)});
  }
  return points;
}

struct Config {
  Metric metric;
  OverlapClause clause;
  int dop;
};

std::vector<Config> AllConfigs() {
  std::vector<Config> configs;
  for (const Metric metric : {Metric::kL2, Metric::kLInf}) {
    for (const OverlapClause clause :
         {OverlapClause::kJoinAny, OverlapClause::kEliminate,
          OverlapClause::kFormNewGroup}) {
      for (const int dop : {2, 8}) {
        configs.push_back(Config{metric, clause, dop});
      }
    }
  }
  return configs;
}

TEST(SgbAllParallelTest, MatchesSerialAcrossPoliciesMetricsAndDop) {
  for (const uint64_t seed : {11u, 22u, 33u}) {
    const std::vector<Point> points = ClusteredPoints(400, seed);
    for (const Config& cfg : AllConfigs()) {
      SgbAllOptions options;
      options.epsilon = 0.8;
      options.metric = cfg.metric;
      options.on_overlap = cfg.clause;
      options.degree_of_parallelism = 1;
      const auto serial = SgbAll(points, options);
      ASSERT_TRUE(serial.ok());

      options.degree_of_parallelism = cfg.dop;
      SgbAllStats stats;
      const auto parallel = SgbAll(points, options, &stats);
      ASSERT_TRUE(parallel.ok());

      EXPECT_EQ(serial.value().group_of, parallel.value().group_of)
          << "seed=" << seed << " metric=" << static_cast<int>(cfg.metric)
          << " clause=" << ToString(cfg.clause) << " dop=" << cfg.dop;
      EXPECT_EQ(serial.value().num_groups, parallel.value().num_groups);
      EXPECT_GT(stats.parallel_partitions, 0u);
      EXPECT_EQ(stats.workers.size(), static_cast<size_t>(cfg.dop));
    }
  }
}

TEST(SgbAllParallelTest, AllAlgorithmTiersAgreeUnderParallelism) {
  const std::vector<Point> points = ClusteredPoints(300, 7);
  SgbAllOptions options;
  options.epsilon = 0.8;
  options.on_overlap = OverlapClause::kFormNewGroup;
  options.degree_of_parallelism = 4;
  options.algorithm = SgbAllAlgorithm::kAllPairs;
  const auto a = SgbAll(points, options);
  options.algorithm = SgbAllAlgorithm::kBoundsChecking;
  const auto b = SgbAll(points, options);
  options.algorithm = SgbAllAlgorithm::kIndexed;
  const auto c = SgbAll(points, options);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(a.value().group_of, b.value().group_of);
  EXPECT_EQ(b.value().group_of, c.value().group_of);
}

TEST(SgbAllParallelTest, ParallelRunsAreDeterministic) {
  const std::vector<Point> points = ClusteredPoints(500, 99);
  SgbAllOptions options;
  options.epsilon = 0.8;
  options.on_overlap = OverlapClause::kJoinAny;
  options.degree_of_parallelism = 8;
  const auto first = SgbAll(points, options);
  const auto second = SgbAll(points, options);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(first.value().group_of, second.value().group_of);
}

TEST(SgbAllParallelTest, AutoDopMatchesSerial) {
  const std::vector<Point> points = ClusteredPoints(250, 5);
  SgbAllOptions options;
  options.epsilon = 0.8;
  options.degree_of_parallelism = 1;
  const auto serial = SgbAll(points, options);
  options.degree_of_parallelism = 0;  // auto
  const auto parallel = SgbAll(points, options);
  ASSERT_TRUE(serial.ok() && parallel.ok());
  EXPECT_EQ(serial.value().group_of, parallel.value().group_of);
}

TEST(SgbAllParallelTest, SmallInputsFallBackToSerial) {
  const std::vector<Point> points = ClusteredPoints(20, 3);
  SgbAllOptions options;
  options.epsilon = 0.8;
  options.degree_of_parallelism = 8;
  SgbAllStats stats;
  const auto r = SgbAll(points, options, &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(stats.parallel_partitions, 0u);
  EXPECT_TRUE(stats.workers.empty());
}

TEST(SgbAllParallelTest, NegativeDopIsRejected) {
  SgbAllOptions options;
  options.degree_of_parallelism = -1;
  const std::vector<Point> points = {{0, 0}};
  EXPECT_FALSE(SgbAll(points, options).ok());
}

TEST(SgbAnyParallelTest, MatchesSerialAcrossMetricsAndDop) {
  for (const uint64_t seed : {11u, 22u, 33u}) {
    const std::vector<Point> points = ClusteredPoints(400, seed);
    for (const Metric metric : {Metric::kL2, Metric::kLInf}) {
      for (const int dop : {2, 8}) {
        SgbAnyOptions options;
        options.epsilon = 0.8;
        options.metric = metric;
        options.degree_of_parallelism = 1;
        const auto serial = SgbAny(points, options);
        ASSERT_TRUE(serial.ok());

        options.degree_of_parallelism = dop;
        SgbAnyStats stats;
        const auto parallel = SgbAny(points, options, &stats);
        ASSERT_TRUE(parallel.ok());

        EXPECT_EQ(serial.value().group_of, parallel.value().group_of)
            << "seed=" << seed << " metric=" << static_cast<int>(metric)
            << " dop=" << dop;
        EXPECT_EQ(serial.value().num_groups, parallel.value().num_groups);
        EXPECT_GT(stats.parallel_partitions, 0u);
      }
    }
  }
}

TEST(SgbAnyParallelTest, AutoDopMatchesSerial) {
  const std::vector<Point> points = ClusteredPoints(250, 5);
  SgbAnyOptions options;
  options.epsilon = 0.8;
  options.degree_of_parallelism = 1;
  const auto serial = SgbAny(points, options);
  options.degree_of_parallelism = 0;
  const auto parallel = SgbAny(points, options);
  ASSERT_TRUE(serial.ok() && parallel.ok());
  EXPECT_EQ(serial.value().group_of, parallel.value().group_of);
}

TEST(SgbAnyParallelTest, NegativeDopIsRejected) {
  SgbAnyOptions options;
  options.degree_of_parallelism = -1;
  const std::vector<Point> points = {{0, 0}};
  EXPECT_FALSE(SgbAny(points, options).ok());
}

TEST(GridPartitionTest, UnionMatchesBruteForceComponents) {
  for (const uint64_t seed : {1u, 2u}) {
    const std::vector<Point> points = ClusteredPoints(300, seed);
    const double radius = 0.9;

    index::UnionFind brute(points.size());
    for (size_t i = 0; i < points.size(); ++i) {
      for (size_t j = 0; j < i; ++j) {
        if (geom::Similar(points[i], points[j], Metric::kL2, radius)) {
          brute.Union(i, j);
        }
      }
    }

    index::UnionFind forest(points.size());
    std::vector<index::GridPartitionStats> stats;
    index::ParallelSimilarityUnion(points, Metric::kL2, radius, 4,
                                   ThreadPool::Default(), &forest, &stats);

    EXPECT_EQ(forest.NumSets(), brute.NumSets());
    for (size_t i = 0; i < points.size(); ++i) {
      for (size_t j = 0; j < i; ++j) {
        EXPECT_EQ(forest.Connected(i, j), brute.Connected(i, j))
            << "pair (" << i << ", " << j << ")";
      }
    }
    // Every point is scanned by exactly one worker.
    size_t scanned = 0;
    for (const auto& w : stats) scanned += w.points;
    EXPECT_EQ(scanned, points.size());
  }
}

}  // namespace
}  // namespace sgb::core
