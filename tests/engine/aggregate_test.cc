#include "engine/aggregate.h"

#include <gtest/gtest.h>

#include <cmath>

namespace sgb::engine {
namespace {

AggregateSpec Spec(AggregateKind kind, size_t arg_index = 0) {
  AggregateSpec spec;
  spec.kind = kind;
  for (size_t i = 0; i < AggregateArity(kind); ++i) {
    spec.args.push_back(MakeColumnRef(arg_index + i, "arg"));
  }
  spec.output_name = "out";
  return spec;
}

Value RunAggregate(const AggregateSpec& spec, const std::vector<Row>& rows) {
  auto state = CreateAggregateState(spec);
  for (const Row& row : rows) state->Add(row);
  return state->Finalize();
}

TEST(AggregateTest, NameResolution) {
  EXPECT_EQ(AggregateKindFromName("COUNT").value(), AggregateKind::kCount);
  EXPECT_EQ(AggregateKindFromName("Sum").value(), AggregateKind::kSum);
  EXPECT_EQ(AggregateKindFromName("average").value(), AggregateKind::kAvg);
  EXPECT_EQ(AggregateKindFromName("list_id").value(),
            AggregateKind::kArrayAgg);
  EXPECT_EQ(AggregateKindFromName("ST_Polygon").value(),
            AggregateKind::kStPolygon);
  EXPECT_FALSE(AggregateKindFromName("frobnicate").ok());
}

TEST(AggregateTest, CountStarCountsRows) {
  const std::vector<Row> rows = {{Value::Null()}, {Value::Int(1)}};
  EXPECT_EQ(RunAggregate(Spec(AggregateKind::kCountStar), rows).AsInt(), 2);
}

TEST(AggregateTest, CountSkipsNulls) {
  const std::vector<Row> rows = {{Value::Null()}, {Value::Int(1)},
                                 {Value::Int(2)}};
  EXPECT_EQ(RunAggregate(Spec(AggregateKind::kCount), rows).AsInt(), 2);
}

TEST(AggregateTest, SumKeepsIntegerType) {
  const std::vector<Row> int_rows = {{Value::Int(1)}, {Value::Int(2)}};
  const Value int_sum = RunAggregate(Spec(AggregateKind::kSum), int_rows);
  EXPECT_EQ(int_sum.type(), DataType::kInt64);
  EXPECT_EQ(int_sum.AsInt(), 3);

  const std::vector<Row> mixed = {{Value::Int(1)}, {Value::Double(0.5)}};
  const Value dbl_sum = RunAggregate(Spec(AggregateKind::kSum), mixed);
  EXPECT_EQ(dbl_sum.type(), DataType::kDouble);
  EXPECT_DOUBLE_EQ(dbl_sum.AsDouble(), 1.5);
}

TEST(AggregateTest, EmptyGroupSemantics) {
  EXPECT_EQ(RunAggregate(Spec(AggregateKind::kCountStar), {}).AsInt(), 0);
  EXPECT_TRUE(RunAggregate(Spec(AggregateKind::kSum), {}).is_null());
  EXPECT_TRUE(RunAggregate(Spec(AggregateKind::kMin), {}).is_null());
  EXPECT_TRUE(RunAggregate(Spec(AggregateKind::kAvg), {}).is_null());
  EXPECT_EQ(RunAggregate(Spec(AggregateKind::kArrayAgg), {}).AsString(),
            "{}");
  EXPECT_TRUE(RunAggregate(Spec(AggregateKind::kStPolygon), {}).is_null());
}

TEST(AggregateTest, MinMaxAvg) {
  const std::vector<Row> rows = {{Value::Double(3)}, {Value::Double(-1)},
                                 {Value::Null()}, {Value::Double(7)}};
  EXPECT_DOUBLE_EQ(RunAggregate(Spec(AggregateKind::kMin), rows).AsDouble(),
                   -1.0);
  EXPECT_DOUBLE_EQ(RunAggregate(Spec(AggregateKind::kMax), rows).AsDouble(),
                   7.0);
  EXPECT_DOUBLE_EQ(RunAggregate(Spec(AggregateKind::kAvg), rows).AsDouble(),
                   3.0);
}

TEST(AggregateTest, ArrayAggCollectsInOrder) {
  const std::vector<Row> rows = {{Value::Int(3)}, {Value::Int(1)},
                                 {Value::Null()}, {Value::Int(2)}};
  EXPECT_EQ(RunAggregate(Spec(AggregateKind::kArrayAgg), rows).AsString(),
            "{3,1,2}");
}

TEST(AggregateTest, StPolygonEmitsConvexHullWkt) {
  AggregateSpec spec;
  spec.kind = AggregateKind::kStPolygon;
  spec.args.push_back(MakeColumnRef(0, "x"));
  spec.args.push_back(MakeColumnRef(1, "y"));
  spec.output_name = "poly";

  const std::vector<Row> rows = {
      {Value::Double(0), Value::Double(0)},
      {Value::Double(2), Value::Double(0)},
      {Value::Double(1), Value::Double(0.5)},  // interior
      {Value::Double(2), Value::Double(2)},
      {Value::Double(0), Value::Double(2)},
  };
  const Value wkt = RunAggregate(spec, rows);
  ASSERT_EQ(wkt.type(), DataType::kString);
  EXPECT_EQ(wkt.AsString().rfind("POLYGON((", 0), 0u);
  // The interior point must not be a hull vertex.
  EXPECT_EQ(wkt.AsString().find("1 0.5"), std::string::npos);
  // The ring closes on its first vertex.
  const std::string& s = wkt.AsString();
  const size_t open = s.find("((");
  const size_t comma = s.find(',', open);
  const std::string first = s.substr(open + 2, comma - open - 2);
  EXPECT_NE(s.rfind(first), open + 2);
}

TEST(AggregateTest, CountDistinct) {
  const std::vector<Row> rows = {{Value::Int(1)}, {Value::Int(2)},
                                 {Value::Int(1)}, {Value::Null()},
                                 {Value::Double(2.0)}};
  // int 2 and double 2.0 compare equal, so they count once.
  EXPECT_EQ(RunAggregate(Spec(AggregateKind::kCountDistinct), rows).AsInt(),
            2);
  EXPECT_EQ(RunAggregate(Spec(AggregateKind::kCountDistinct), {}).AsInt(),
            0);
}

TEST(AggregateTest, VarianceAndStddev) {
  const std::vector<Row> rows = {{Value::Double(2)}, {Value::Double(4)},
                                 {Value::Double(4)}, {Value::Double(4)},
                                 {Value::Double(5)}, {Value::Double(5)},
                                 {Value::Double(7)}, {Value::Double(9)}};
  // Sample variance of the classic dataset {2,4,4,4,5,5,7,9} is 32/7.
  EXPECT_NEAR(RunAggregate(Spec(AggregateKind::kVariance), rows).AsDouble(),
              32.0 / 7.0, 1e-12);
  EXPECT_NEAR(RunAggregate(Spec(AggregateKind::kStddev), rows).AsDouble(),
              std::sqrt(32.0 / 7.0), 1e-12);
  // Fewer than two values -> NULL (sample statistics undefined).
  EXPECT_TRUE(RunAggregate(Spec(AggregateKind::kVariance),
                           {{Value::Double(1)}})
                  .is_null());
  EXPECT_TRUE(RunAggregate(Spec(AggregateKind::kStddev), {}).is_null());
}

TEST(AggregateTest, VarianceResolvesFromSqlNames) {
  EXPECT_EQ(AggregateKindFromName("VAR_SAMP").value(),
            AggregateKind::kVariance);
  EXPECT_EQ(AggregateKindFromName("stddev").value(),
            AggregateKind::kStddev);
}

TEST(AggregateTest, OutputTypes) {
  EXPECT_EQ(AggregateOutputType(AggregateKind::kCountStar), DataType::kInt64);
  EXPECT_EQ(AggregateOutputType(AggregateKind::kAvg), DataType::kDouble);
  EXPECT_EQ(AggregateOutputType(AggregateKind::kArrayAgg),
            DataType::kString);
}

}  // namespace
}  // namespace sgb::engine
