// Resource-governance and fault-tolerance tests for the engine facade:
// memory budgets, wall-clock timeouts, cooperative cancellation, the SET
// statement, and — via the fault-injection registry — every planted fault
// site fired at least once with the query surfacing a clean non-OK Status
// and the Database staying fully usable afterwards (docs/ROBUSTNESS.md).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/query_context.h"
#include "common/random.h"
#include "common/socket.h"
#include "engine/csv.h"
#include "engine/executor.h"
#include "engine/spill.h"
#include "obs/metrics.h"
#include "workload/checkin.h"
#include "workload/tpch.h"

namespace sgb::engine {
namespace {

constexpr char kSgbAnyQuery[] =
    "SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 0.4";
constexpr char kSgbAllQuery[] =
    "SELECT count(*) FROM pts GROUP BY x, y "
    "DISTANCE-TO-ALL L2 WITHIN 0.4 ON-OVERLAP ELIMINATE";
constexpr char kSgbParallelQuery[] =
    "SELECT count(*) FROM pts GROUP BY x, y "
    "DISTANCE-TO-ANY L2 WITHIN 0.4 PARALLEL 4";
// Narrow result (count only): the group map dwarfs the materialized
// result, so a budget between the two forces the spill path yet leaves the
// per-partition retries plenty of headroom.
constexpr char kSpillAggQuery[] = "SELECT count(*) FROM ints GROUP BY k";

/// Clustered points in [0, extent)^2 so similarity grouping does real work.
Database PointsDb(size_t n, double extent = 10.0, uint64_t seed = 7) {
  Database db;
  auto pts = std::make_shared<Table>(Schema({
      Column{"x", DataType::kDouble, ""},
      Column{"y", DataType::kDouble, ""},
  }));
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(pts->Append({Value::Double(rng.NextUniform(0, extent)),
                             Value::Double(rng.NextUniform(0, extent))})
                    .ok());
  }
  db.Register("pts", pts);
  return db;
}

/// Wide rows with ~1000 distinct keys: a plain hash aggregate over them
/// breaches a ~180 kB budget mid-build, which is what forces the spill
/// paths (and their fault sites) to engage.
void RegisterIntsTable(Database& db, size_t n = 1000) {
  auto table = std::make_shared<Table>(Schema({
      Column{"k", DataType::kInt64, ""},
      Column{"payload", DataType::kString, ""},
  }));
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(table
                    ->Append({Value::Int(static_cast<int64_t>(i)),
                              Value::Str(std::string(64, 'x'))})
                    .ok());
  }
  db.Register("ints", table);
}

/// Runs the aggregate under a budget that forces spilling; restores the
/// session knobs so the other fault cases see the default governance.
Status SpilledAggStatus(Database& db) {
  db.set_memory_budget_bytes(180000);
  db.set_spill_enabled(true);
  const Status status = db.Query(kSpillAggQuery).status();
  db.set_spill_enabled(false);
  db.set_memory_budget_bytes(0);
  return status;
}

class GovernanceTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultRegistry::Global().Reset(); }
  void TearDown() override { FaultRegistry::Global().Reset(); }
};

// ---- SET statement ------------------------------------------------------

TEST_F(GovernanceTest, SetStatementAdjustsSessionState) {
  Database db = PointsDb(10);
  auto result = db.Query("SET timeout = 5000");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().NumRows(), 1u);
  EXPECT_EQ(result.value().rows()[0][0].AsString(), "timeout = 5000");
  EXPECT_EQ(db.timeout_ms(), 5000);

  ASSERT_TRUE(db.Query("SET memory_budget = 1048576").ok());
  EXPECT_EQ(db.memory_budget_bytes(), 1048576u);

  ASSERT_TRUE(db.Query("SET parallel = 4").ok());
  EXPECT_EQ(db.default_sgb_dop(), 4);

  ASSERT_TRUE(db.Query("SET spill = 1").ok());
  EXPECT_TRUE(db.spill_enabled());
  ASSERT_TRUE(db.Query("SET spill = 0").ok());
  EXPECT_FALSE(db.spill_enabled());

  auto admission = db.Query("SET admission = queue");
  ASSERT_TRUE(admission.ok()) << admission.status().ToString();
  EXPECT_EQ(admission.value().rows()[0][0].AsString(), "admission = queue");
  EXPECT_EQ(db.admission_mode(), AdmissionMode::kQueue);
  ASSERT_TRUE(db.Query("SET admission = off").ok());
  EXPECT_EQ(db.admission_mode(), AdmissionMode::kOff);
  ASSERT_TRUE(db.Query("SET admission_budget = 4096").ok());
  EXPECT_EQ(db.admission_budget_bytes(), 4096u);

  // Zero removes the knob again.
  ASSERT_TRUE(db.Query("SET timeout = 0").ok());
  EXPECT_EQ(db.timeout_ms(), 0);

  // Identifier values are only meaningful for admission.
  EXPECT_EQ(db.Query("SET timeout = queue").status().code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(db.Query("SET admission = sideways").status().code(),
            Status::Code::kInvalidArgument);
}

TEST_F(GovernanceTest, SetStatementRejectsUnknownKnob) {
  Database db;
  auto result = db.Query("SET warp_speed = 9");
  EXPECT_EQ(result.status().code(), Status::Code::kInvalidArgument);
  EXPECT_NE(result.status().message().find("warp_speed"), std::string::npos);
}

TEST_F(GovernanceTest, SetStatementRejectedByPrepare) {
  Database db;
  EXPECT_EQ(db.Prepare("SET timeout = 1").status().code(),
            Status::Code::kInvalidArgument);
}

// ---- Memory budget ------------------------------------------------------

TEST_F(GovernanceTest, MemoryBudgetBreachFailsWithResourceExhausted) {
  Database db = PointsDb(2000);
  ASSERT_TRUE(db.Query("SET memory_budget = 1024").ok());
  auto result = db.Query(kSgbAnyQuery);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kResourceExhausted);
  EXPECT_NE(result.status().message().find("memory budget"),
            std::string::npos)
      << result.status().ToString();

  // Lifting the budget makes the identical query succeed: nothing leaked,
  // nothing wedged.
  ASSERT_TRUE(db.Query("SET memory_budget = 0").ok());
  auto retry = db.Query(kSgbAnyQuery);
  EXPECT_TRUE(retry.ok()) << retry.status().ToString();
}

TEST_F(GovernanceTest, MemoryBudgetApiMatchesSetStatement) {
  Database db = PointsDb(2000);
  db.set_memory_budget_bytes(1024);
  EXPECT_EQ(db.Query(kSgbAnyQuery).status().code(),
            Status::Code::kResourceExhausted);
  db.set_memory_budget_bytes(0);
  EXPECT_TRUE(db.Query(kSgbAnyQuery).ok());
}

TEST_F(GovernanceTest, RepeatedBudgetBreachesDoNotLeakEngineAccounting) {
  // Every failed query must fully unwind its charges from the engine-global
  // tracker; otherwise repeated failures ratchet usage upward.
  Database db = PointsDb(2000);
  db.set_memory_budget_bytes(1024);
  const size_t before = MemoryTracker::EngineGlobal().usage_bytes();
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(db.Query(kSgbAnyQuery).status().code(),
              Status::Code::kResourceExhausted);
  }
  EXPECT_EQ(MemoryTracker::EngineGlobal().usage_bytes(), before);
}

// ---- Timeout ------------------------------------------------------------

TEST_F(GovernanceTest, TimeoutFailsWithDeadlineExceeded) {
  // 30k points give the grouping easily >1ms of work; the deadline check
  // fires at the next point-stride and aborts long before completion.
  Database db = PointsDb(30000);
  ASSERT_TRUE(db.Query("SET timeout = 1").ok());
  auto result = db.Query(kSgbAnyQuery);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kDeadlineExceeded);

  // Removing the deadline restores normal service.
  ASSERT_TRUE(db.Query("SET timeout = 0").ok());
  EXPECT_TRUE(db.Query(kSgbAnyQuery).ok());
}

// ---- Cancellation -------------------------------------------------------

TEST_F(GovernanceTest, PreCancelledContextAbortsDeterministically) {
  Database db = PointsDb(100);
  auto plan = db.Prepare(kSgbAnyQuery);
  ASSERT_TRUE(plan.ok());
  QueryContext ctx;
  ctx.Cancel();
  plan.value()->SetQueryContext(&ctx);
  auto result = Materialize(*plan.value());
  EXPECT_EQ(result.status().code(), Status::Code::kCancelled);

  // Detached from the cancelled context, the same plan runs to completion.
  plan.value()->SetQueryContext(nullptr);
  EXPECT_TRUE(Materialize(*plan.value()).ok());
}

TEST_F(GovernanceTest, CancelFromAnotherThreadAbortsRunningQuery) {
  Database db = PointsDb(60000, 40.0);
  std::atomic<bool> done{false};
  Status status = Status::OK();
  std::thread runner([&] {
    status = db.Query(kSgbAnyQuery).status();
    done.store(true);
  });
  // Hammer Cancel until the query thread observes it; Cancel on an idle
  // Database is a harmless no-op, so the pre-registration window is safe.
  while (!done.load()) {
    db.Cancel();
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  runner.join();
  EXPECT_EQ(status.code(), Status::Code::kCancelled) << status.ToString();

  // The Database survives: the next (un-cancelled) query succeeds.
  auto retry = db.Query("SELECT count(*) FROM pts");
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(retry.value().rows()[0][0].AsInt(), 60000);
}

// ---- Observability ------------------------------------------------------

TEST_F(GovernanceTest, ExplainAnalyzeReportsPeakMemory) {
  Database db = PointsDb(500);
  auto text = db.ExplainAnalyze(kSgbAnyQuery);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text.value().find("peak_mem="), std::string::npos)
      << text.value();
  // A 500-point grouping charges real bytes; the peak cannot be zero.
  EXPECT_EQ(text.value().find("peak_mem=0 B"), std::string::npos)
      << text.value();

  // The EXPLAIN ANALYZE statement form flows through Query() and carries
  // the same annotation.
  auto viaQuery = db.Query(std::string("EXPLAIN ANALYZE ") + kSgbAnyQuery);
  ASSERT_TRUE(viaQuery.ok());
  bool found = false;
  for (const Row& row : viaQuery.value().rows()) {
    found |= row[0].AsString().find("peak_mem=") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST_F(GovernanceTest, GovernanceMetricsPublished) {
  auto& registry = obs::MetricsRegistry::Global();
  Database db = PointsDb(2000);
  ASSERT_TRUE(db.Query(kSgbAnyQuery).ok());
  EXPECT_GT(registry.GetGauge("mem.query.peak").value(), 0.0);
  EXPECT_GT(registry.GetGauge("mem.engine.peak").value(), 0.0);

  const uint64_t mem_before = registry.GetCounter("query.mem_exceeded").value();
  db.set_memory_budget_bytes(1024);
  ASSERT_FALSE(db.Query(kSgbAnyQuery).ok());
  EXPECT_EQ(registry.GetCounter("query.mem_exceeded").value(), mem_before + 1);
  db.set_memory_budget_bytes(0);

  const uint64_t timeout_before = registry.GetCounter("query.timeout").value();
  Database big = PointsDb(30000);
  big.set_timeout_ms(1);
  ASSERT_FALSE(big.Query(kSgbAnyQuery).ok());
  EXPECT_EQ(registry.GetCounter("query.timeout").value(), timeout_before + 1);
}

// ---- Fault-site coverage ------------------------------------------------

struct FaultCase {
  const char* site;
  Status::Code expected_code;
  std::function<Status(Database&)> trigger;
};

/// Opens (or creates) the disk-backed database at `dir` and runs `stmts`
/// in order, returning the first failure. Every call is a fresh Open, so
/// the disarmed re-run of a storage fault case exercises recovery of
/// whatever on-disk state the armed (crashed) run left behind.
Status StorageRun(const std::string& dir,
                  const std::vector<std::string>& stmts) {
  auto db = Database::Open(dir);
  if (!db.ok()) return db.status();
  for (const std::string& s : stmts) {
    auto result = db.value().Query(s);
    if (!result.ok()) return result.status();
  }
  return Status::OK();
}

TEST_F(GovernanceTest, EveryRegisteredFaultSiteFiresAndRecovers) {
  const std::string csv_path = ::testing::TempDir() + "/sgb_fault_io.csv";
  const std::vector<FaultCase> cases = {
      {"common.threadpool.submit", Status::Code::kInternal,
       [](Database& db) { return db.Query(kSgbParallelQuery).status(); }},
      {"engine.batch.alloc", Status::Code::kResourceExhausted,
       [](Database& db) { return db.Query(kSgbAnyQuery).status(); }},
      {"engine.table.append", Status::Code::kResourceExhausted,
       [](Database& db) { return db.Query(kSgbAnyQuery).status(); }},
      {"engine.sgb.build", Status::Code::kInternal,
       [](Database& db) { return db.Query(kSgbAnyQuery).status(); }},
      {"engine.csv.read", Status::Code::kIoError,
       [&csv_path](Database&) { return ReadCsvFile(csv_path).status(); }},
      {"engine.csv.write", Status::Code::kIoError,
       [&csv_path](Database& db) {
         return WriteCsvFile(*db.catalog().Get("pts").value(), csv_path);
       }},
      {"index.grid.build", Status::Code::kInternal,
       [](Database& db) { return db.Query(kSgbParallelQuery).status(); }},
      {"index.grid.rehash", Status::Code::kInternal,
       [](Database& db) { return db.Query(kSgbParallelQuery).status(); }},
      {"core.rtree.build", Status::Code::kInternal,
       [](Database& db) { return db.Query(kSgbAllQuery).status(); }},
      {"index.rtree.split", Status::Code::kInternal,
       [](Database& db) { return db.Query(kSgbAllQuery).status(); }},
      {"engine.spill.write", Status::Code::kIoError,
       [](Database& db) { return SpilledAggStatus(db); }},
      {"engine.spill.read", Status::Code::kIoError,
       [](Database& db) { return SpilledAggStatus(db); }},
      {"workload.checkin.generate", Status::Code::kInternal,
       [](Database&) {
         try {
           workload::GenerateCheckins(workload::BrightkiteLike(64, 1));
           return Status::OK();
         } catch (const QueryAbort& abort) {
           return abort.status();
         }
       }},
      {"workload.tpch.generate", Status::Code::kInternal,
       [](Database&) {
         workload::TpchConfig config;
         config.scale_factor = 0.005;
         try {
           workload::GenerateTpch(config);
           return Status::OK();
         } catch (const QueryAbort& abort) {
           return abort.status();
         }
       }},
      {"engine.append.insert", Status::Code::kResourceExhausted,
       [](Database& db) {
         auto create =
             db.Query("CREATE TABLE IF NOT EXISTS fault_rows (x INT)");
         if (!create.ok()) return create.status();
         return db.Query("INSERT INTO fault_rows VALUES (1), (2)").status();
       }},
      {"continuous.window_close", Status::Code::kInternal,
       // Each invocation builds a fresh continuous query, drives one
       // window to its close (where the armed fault fires as the INSERT's
       // status), and drops the query again so the streaming tracker
       // drains back to baseline either way. The epoch keeps event times
       // strictly increasing across the armed and disarmed runs.
       [epoch = 0.0](Database& db) mutable {
         auto setup = db.Query(
             "CREATE TABLE IF NOT EXISTS cq_rows "
             "(t DOUBLE, x DOUBLE, y DOUBLE)");
         if (!setup.ok()) return setup.status();
         auto cq = db.Query(
             "CREATE CONTINUOUS QUERY cq_fault AS SELECT count(*) "
             "FROM cq_rows GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 0.5 "
             "WINDOW TUMBLING 5 ON t");
         if (!cq.ok()) return cq.status();
         const double t0 = epoch;
         epoch += 100.0;
         const Status insert =
             db.Query("INSERT INTO cq_rows VALUES (" + std::to_string(t0) +
                      ", 1, 1), (" + std::to_string(t0 + 1) + ", 1.2, 1), (" +
                      std::to_string(t0 + 50) + ", 9, 9)")
                 .status();
         auto drop = db.Query("DROP CONTINUOUS QUERY cq_fault");
         if (!drop.ok()) return drop.status();
         return insert;
       }},
      // Storage sites (docs/STORAGE.md "Crash semantics"): the armed run
      // leaves the directory exactly as a power loss would; the disarmed
      // re-run reopens it, recovering through manifest + WAL replay.
      {"storage.wal.append", Status::Code::kIoError,
       [dir = ::testing::TempDir() + "/sgb_fault_wal_append"](Database&) {
         return StorageRun(dir, {"CREATE TABLE IF NOT EXISTS t (x INT)",
                                 "INSERT INTO t VALUES (1), (2)"});
       }},
      {"storage.wal.fsync", Status::Code::kIoError,
       [dir = ::testing::TempDir() + "/sgb_fault_wal_fsync"](Database&) {
         return StorageRun(dir, {"CREATE TABLE IF NOT EXISTS t (x INT)",
                                 "INSERT INTO t VALUES (1), (2)"});
       }},
      {"storage.page.write", Status::Code::kIoError,
       [dir = ::testing::TempDir() + "/sgb_fault_page_write"](Database&) {
         return StorageRun(dir, {"CREATE TABLE IF NOT EXISTS t (x INT)",
                                 "INSERT INTO t VALUES (1), (2)",
                                 "CHECKPOINT"});
       }},
      {"storage.manifest.write", Status::Code::kIoError,
       [dir = ::testing::TempDir() + "/sgb_fault_manifest"](Database&) {
         return StorageRun(dir, {"CREATE TABLE IF NOT EXISTS t (x INT)",
                                 "INSERT INTO t VALUES (1), (2)",
                                 "CHECKPOINT"});
       }},
      {"storage.page.read", Status::Code::kIoError,
       // Two-phase: the first call seeds pages + manifest write-only (the
       // armed read fault cannot fire there), then every call reopens the
       // directory — recovery and the scan both read pages from disk.
       [dir = ::testing::TempDir() + "/sgb_fault_page_read",
        seeded = false](Database&) mutable -> Status {
         if (!seeded) {
           const Status s =
               StorageRun(dir, {"CREATE TABLE IF NOT EXISTS t (x INT)",
                                "INSERT INTO t VALUES (1), (2)",
                                "CHECKPOINT"});
           if (!s.ok()) return s;
           seeded = true;
         }
         return StorageRun(dir, {"SELECT count(*) FROM t"});
       }},
      {"server.accept", Status::Code::kIoError,
       [](Database&) {
         auto listener = Listener::ListenTcp(0);
         if (!listener.ok()) return listener.status();
         auto client = ConnectTcp(listener.value().port());
         if (!client.ok()) return client.status();
         return listener.value().Accept().status();
       }},
      {"server.read", Status::Code::kIoError,
       [](Database&) {
         auto listener = Listener::ListenTcp(0);
         if (!listener.ok()) return listener.status();
         auto client = ConnectTcp(listener.value().port());
         if (!client.ok()) return client.status();
         SGB_RETURN_IF_ERROR(client.value().WriteAll("ping\n"));
         auto conn = listener.value().Accept();
         if (!conn.ok()) return conn.status();
         LineReader reader(&conn.value());
         std::string line;
         return reader.ReadLine(&line).status();
       }},
      {"server.write", Status::Code::kIoError,
       [](Database&) {
         auto listener = Listener::ListenTcp(0);
         if (!listener.ok()) return listener.status();
         auto client = ConnectTcp(listener.value().port());
         if (!client.ok()) return client.status();
         auto conn = listener.value().Accept();
         if (!conn.ok()) return conn.status();
         return conn.value().WriteAll("pong\n");
       }},
  };

  // The coverage check is bidirectional: every case names a planted site,
  // and every planted site has a case. A new fault site cannot land
  // without a recovery test riding along.
  const auto sites = FaultRegistry::Global().Sites();
  for (const FaultCase& c : cases) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), c.site), sites.end())
        << "site not registered: " << c.site;
  }
  for (const auto& site : sites) {
    EXPECT_TRUE(std::any_of(cases.begin(), cases.end(),
                            [&](const FaultCase& c) { return site == c.site; }))
        << "registered fault site has no coverage case: " << site;
  }

  Database db = PointsDb(300);
  RegisterIntsTable(db);
  // Seed the CSV file so the read-fault trigger exercises a real read path.
  ASSERT_TRUE(
      WriteCsvFile(*db.catalog().Get("pts").value(), csv_path).ok());
  const size_t engine_before = MemoryTracker::EngineGlobal().usage_bytes();

  for (const FaultCase& c : cases) {
    SCOPED_TRACE(c.site);
    FaultRegistry::Global().Reset();
    FaultRegistry::Global().ArmNthHit(c.site, 1);
    const Status faulted = c.trigger(db);
    EXPECT_FALSE(faulted.ok()) << "fault did not surface for " << c.site;
    EXPECT_EQ(faulted.code(), c.expected_code) << faulted.ToString();
    EXPECT_NE(faulted.message().find(c.site), std::string::npos)
        << faulted.ToString();
    EXPECT_GE(FaultRegistry::Global().Injected(c.site), 1u);
    EXPECT_GE(FaultRegistry::Global().Hits(c.site), 1u);
    // The abort unwound cleanly: no temp spill files survive it and the
    // engine-global accounting is back where it started.
    EXPECT_EQ(SpillFile::LiveFileCount(), 0u);
    EXPECT_EQ(MemoryTracker::EngineGlobal().usage_bytes(), engine_before);

    // Disarmed, the identical operation succeeds: the fault left no broken
    // state behind.
    FaultRegistry::Global().Reset();
    const Status clean = c.trigger(db);
    EXPECT_TRUE(clean.ok()) << c.site << ": " << clean.ToString();
    EXPECT_EQ(SpillFile::LiveFileCount(), 0u);
  }
}

TEST_F(GovernanceTest, ProbabilisticFaultsNeverCrashTheEngine) {
  // Blanket chaos pass: with every site failing 30% of the time, repeated
  // queries either succeed or return a clean Status — never crash, leak
  // engine accounting, or wedge the Database.
  Database db = PointsDb(400);
  for (const auto& site : FaultRegistry::Global().Sites()) {
    FaultRegistry::Global().ArmProbability(site, 0.3, 0xC0FFEE);
  }
  const size_t mem_before = MemoryTracker::EngineGlobal().usage_bytes();
  int failures = 0;
  for (int i = 0; i < 20; ++i) {
    const char* sql = (i % 2 == 0) ? kSgbAnyQuery : kSgbParallelQuery;
    auto result = db.Query(sql);
    if (!result.ok()) ++failures;
  }
  FaultRegistry::Global().Reset();
  EXPECT_GT(failures, 0);  // 30% per site over 20 queries must hit
  EXPECT_EQ(MemoryTracker::EngineGlobal().usage_bytes(), mem_before);
  EXPECT_TRUE(db.Query(kSgbAnyQuery).ok());
}

}  // namespace
}  // namespace sgb::engine
