#include "engine/operators.h"

#include <gtest/gtest.h>

#include <memory>

namespace sgb::engine {
namespace {

TablePtr NumbersTable(int n) {
  auto t = std::make_shared<Table>(Schema({
      Column{"id", DataType::kInt64, ""},
      Column{"v", DataType::kDouble, ""},
  }));
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(
        t->Append({Value::Int(i), Value::Double(i * 0.5)}).ok());
  }
  return t;
}

Table RunPlan(OperatorPtr op) {
  auto result = Materialize(*op);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

TEST(OperatorsTest, TableScanEmitsAllRows) {
  auto scan = MakeTableScan(NumbersTable(5), "t");
  const Table out = RunPlan(std::move(scan));
  EXPECT_EQ(out.NumRows(), 5u);
  EXPECT_EQ(out.schema().column(0).qualifier, "t");
}

TEST(OperatorsTest, ScanIsReopenable) {
  auto scan = MakeTableScan(NumbersTable(3));
  scan->Open();
  Row row;
  int count = 0;
  while (scan->Next(&row)) ++count;
  EXPECT_EQ(count, 3);
  scan->Open();
  count = 0;
  while (scan->Next(&row)) ++count;
  EXPECT_EQ(count, 3);
}

TEST(OperatorStatsTest, CountsRowsPerOperator) {
  auto plan = MakeFilter(MakeTableScan(NumbersTable(10)),
                         MakeBinary(BinaryOp::kGe, MakeColumnRef(0, "id"),
                                    MakeLiteral(Value::Int(7))));
  const Operator* scan = plan->children()[0];
  plan->Open();
  Row row;
  while (plan->Next(&row)) {
  }
  EXPECT_EQ(plan->stats().rows_produced, 3u);
  EXPECT_EQ(scan->stats().rows_produced, 10u);
  // The final miss is counted as a call but not as a produced row.
  EXPECT_EQ(plan->stats().next_calls, 4u);
}

TEST(OperatorStatsTest, ResetOnReopen) {
  auto scan = MakeTableScan(NumbersTable(3));
  Row row;
  scan->Open();
  while (scan->Next(&row)) {
  }
  EXPECT_EQ(scan->stats().rows_produced, 3u);
  scan->Open();
  EXPECT_EQ(scan->stats().rows_produced, 0u);
  while (scan->Next(&row)) {
  }
  EXPECT_EQ(scan->stats().rows_produced, 3u);
}

TEST(OperatorStatsTest, BlockingOperatorsReportMemoryAndExtras) {
  std::vector<SortKey> keys;
  keys.push_back(SortKey{MakeColumnRef(0, "id"), /*ascending=*/false});
  auto plan = MakeSort(MakeTableScan(NumbersTable(100)), std::move(keys));
  plan->Open();
  EXPECT_GT(plan->stats().peak_memory_bytes, 0u);
  Row row;
  while (plan->Next(&row)) {
  }
  const std::string annotated = ExplainAnalyzePlan(*plan);
  EXPECT_NE(annotated.find("rows=100"), std::string::npos) << annotated;
  EXPECT_NE(annotated.find("mem="), std::string::npos) << annotated;
}

TEST(OperatorsTest, FilterKeepsMatchingRows) {
  auto plan = MakeFilter(MakeTableScan(NumbersTable(10)),
                         MakeBinary(BinaryOp::kGe, MakeColumnRef(0, "id"),
                                    MakeLiteral(Value::Int(7))));
  const Table out = RunPlan(std::move(plan));
  EXPECT_EQ(out.NumRows(), 3u);
}

TEST(OperatorsTest, ProjectComputesExpressions) {
  std::vector<ExprPtr> exprs;
  exprs.push_back(MakeBinary(BinaryOp::kMul, MakeColumnRef(0, "id"),
                             MakeLiteral(Value::Int(10))));
  auto plan = MakeProject(MakeTableScan(NumbersTable(3)), std::move(exprs),
                          {Column{"ten_x", DataType::kInt64, ""}});
  const Table out = RunPlan(std::move(plan));
  ASSERT_EQ(out.NumRows(), 3u);
  EXPECT_EQ(out.rows()[2][0].AsInt(), 20);
  EXPECT_EQ(out.schema().column(0).name, "ten_x");
}

TEST(OperatorsTest, HashAggregateByKey) {
  auto t = std::make_shared<Table>(Schema({
      Column{"k", DataType::kString, ""},
      Column{"v", DataType::kInt64, ""},
  }));
  ASSERT_TRUE(t->Append({Value::Str("a"), Value::Int(1)}).ok());
  ASSERT_TRUE(t->Append({Value::Str("b"), Value::Int(10)}).ok());
  ASSERT_TRUE(t->Append({Value::Str("a"), Value::Int(2)}).ok());

  std::vector<ExprPtr> group_exprs;
  group_exprs.push_back(MakeColumnRef(0, "k"));
  std::vector<AggregateSpec> aggs;
  AggregateSpec sum;
  sum.kind = AggregateKind::kSum;
  sum.args.push_back(MakeColumnRef(1, "v"));
  sum.output_name = "sum_v";
  aggs.push_back(std::move(sum));

  auto plan = MakeHashAggregate(MakeTableScan(t), std::move(group_exprs),
                                {Column{"k", DataType::kString, ""}},
                                std::move(aggs));
  const Table out = RunPlan(std::move(plan));
  ASSERT_EQ(out.NumRows(), 2u);
  // Output order follows first appearance: a then b.
  EXPECT_EQ(out.rows()[0][0].AsString(), "a");
  EXPECT_EQ(out.rows()[0][1].AsInt(), 3);
  EXPECT_EQ(out.rows()[1][0].AsString(), "b");
  EXPECT_EQ(out.rows()[1][1].AsInt(), 10);
}

TEST(OperatorsTest, GlobalAggregateOnEmptyInputEmitsOneRow) {
  auto empty = std::make_shared<Table>(
      Schema({Column{"v", DataType::kInt64, ""}}));
  std::vector<AggregateSpec> aggs;
  AggregateSpec count;
  count.kind = AggregateKind::kCountStar;
  count.output_name = "n";
  aggs.push_back(std::move(count));
  auto plan =
      MakeHashAggregate(MakeTableScan(empty), {}, {}, std::move(aggs));
  const Table out = RunPlan(std::move(plan));
  ASSERT_EQ(out.NumRows(), 1u);
  EXPECT_EQ(out.rows()[0][0].AsInt(), 0);
}

TEST(OperatorsTest, HashJoinMatchesKeys) {
  auto left = std::make_shared<Table>(Schema({
      Column{"id", DataType::kInt64, "l"},
      Column{"name", DataType::kString, "l"},
  }));
  ASSERT_TRUE(left->Append({Value::Int(1), Value::Str("one")}).ok());
  ASSERT_TRUE(left->Append({Value::Int(2), Value::Str("two")}).ok());
  ASSERT_TRUE(left->Append({Value::Int(3), Value::Str("three")}).ok());

  auto right = std::make_shared<Table>(Schema({
      Column{"ref", DataType::kInt64, "r"},
      Column{"w", DataType::kInt64, "r"},
  }));
  ASSERT_TRUE(right->Append({Value::Int(2), Value::Int(20)}).ok());
  ASSERT_TRUE(right->Append({Value::Int(2), Value::Int(21)}).ok());
  ASSERT_TRUE(right->Append({Value::Int(9), Value::Int(90)}).ok());

  std::vector<ExprPtr> lk;
  lk.push_back(MakeColumnRef(0, "id"));
  std::vector<ExprPtr> rk;
  rk.push_back(MakeColumnRef(0, "ref"));
  auto plan = MakeHashJoin(MakeTableScan(left), MakeTableScan(right),
                           std::move(lk), std::move(rk));
  const Table out = RunPlan(std::move(plan));
  ASSERT_EQ(out.NumRows(), 2u);  // id=2 matches twice
  EXPECT_EQ(out.schema().size(), 4u);
  EXPECT_EQ(out.rows()[0][1].AsString(), "two");
}

TEST(OperatorsTest, HashJoinIgnoresNullKeys) {
  auto left = std::make_shared<Table>(
      Schema({Column{"id", DataType::kInt64, ""}}));
  ASSERT_TRUE(left->Append({Value::Null()}).ok());
  auto right = std::make_shared<Table>(
      Schema({Column{"id", DataType::kInt64, ""}}));
  ASSERT_TRUE(right->Append({Value::Null()}).ok());

  std::vector<ExprPtr> lk;
  lk.push_back(MakeColumnRef(0, "id"));
  std::vector<ExprPtr> rk;
  rk.push_back(MakeColumnRef(0, "id"));
  auto plan = MakeHashJoin(MakeTableScan(left), MakeTableScan(right),
                           std::move(lk), std::move(rk));
  EXPECT_EQ(RunPlan(std::move(plan)).NumRows(), 0u);
}

TEST(OperatorsTest, NestedLoopCrossJoin) {
  auto plan = MakeNestedLoopJoin(MakeTableScan(NumbersTable(3)),
                                 MakeTableScan(NumbersTable(4)), nullptr);
  EXPECT_EQ(RunPlan(std::move(plan)).NumRows(), 12u);
}

TEST(OperatorsTest, NestedLoopWithPredicate) {
  auto pred = MakeBinary(BinaryOp::kLt, MakeColumnRef(0, "l.id"),
                         MakeColumnRef(2, "r.id"));
  auto plan = MakeNestedLoopJoin(MakeTableScan(NumbersTable(3)),
                                 MakeTableScan(NumbersTable(3)),
                                 std::move(pred));
  EXPECT_EQ(RunPlan(std::move(plan)).NumRows(), 3u);  // (0,1),(0,2),(1,2)
}

TEST(OperatorsTest, SortAscendingAndDescending) {
  auto t = std::make_shared<Table>(
      Schema({Column{"v", DataType::kInt64, ""}}));
  for (const int v : {3, 1, 2}) {
    ASSERT_TRUE(t->Append({Value::Int(v)}).ok());
  }
  std::vector<SortKey> keys;
  keys.push_back(SortKey{MakeColumnRef(0, "v"), /*ascending=*/false});
  const Table out = RunPlan(MakeSort(MakeTableScan(t), std::move(keys)));
  EXPECT_EQ(out.rows()[0][0].AsInt(), 3);
  EXPECT_EQ(out.rows()[2][0].AsInt(), 1);
}

TEST(OperatorsTest, LimitTruncates) {
  const Table out = RunPlan(MakeLimit(MakeTableScan(NumbersTable(10)), 4));
  EXPECT_EQ(out.NumRows(), 4u);
  EXPECT_EQ(RunPlan(MakeLimit(MakeTableScan(NumbersTable(2)), 100)).NumRows(),
            2u);
}

}  // namespace
}  // namespace sgb::engine
