// Streaming incremental SGB (docs/STREAMING.md): CREATE CONTINUOUS QUERY
// registration and validation, watermark-driven window close, the
// batch-equivalence differential regime (every close is checked inside the
// engine; these tests drive it across metrics x semantics x overlap
// policies x dop x window shapes), out-of-order arrival convergence,
// bounded-regrouping and permutation-invariance properties of the
// incremental cores, stats-refresh plan invalidation, fault recovery at
// the window-close site, and the server SUBSCRIBE surface end to end —
// including the 8-subscriber hammer the streaming-smoke TSan CI job runs.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "common/fault_injection.h"
#include "common/random.h"
#include "core/sgb_all.h"
#include "core/sgb_any.h"
#include "core/sgb_incremental.h"
#include "engine/continuous.h"
#include "engine/executor.h"
#include "server/client.h"
#include "server/server.h"
#include "workload/checkin.h"

namespace sgb::engine {
namespace {

// ---- helpers ------------------------------------------------------------

/// Round-trippable double literal for INSERT statements.
std::string D(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// One INSERT statement carrying every row of the (user_id, t, x, y)
/// stream slice.
std::string InsertSql(const std::string& table, const std::vector<Row>& rows,
                      size_t begin, size_t end) {
  std::string sql = "INSERT INTO " + table + " VALUES ";
  for (size_t i = begin; i < end; ++i) {
    const Row& r = rows[i];
    if (i != begin) sql += ", ";
    sql += "(" + std::to_string(r[0].AsInt()) + ", " + D(r[1].AsDouble()) +
           ", " + D(r[2].AsDouble()) + ", " + D(r[3].AsDouble()) + ")";
  }
  return sql;
}

Status CreateEventsTable(Database& db, const std::string& table = "events") {
  return db
      .Query("CREATE TABLE " + table +
             " (user_id INT, t DOUBLE, x DOUBLE, y DOUBLE)")
      .status();
}

/// One int64 cell from system.continuous_queries for the named query.
int64_t SysInt(Database& db, const std::string& name, const std::string& col) {
  auto result = db.Query("SELECT " + col +
                         " FROM system.continuous_queries WHERE name = '" +
                         name + "'");
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (!result.ok() || result.value().NumRows() != 1) return -1;
  return result.value().rows()[0][0].AsInt();
}

/// The per-close facts the differential regime pins: everything except the
/// per-arrival delta kinds (those legitimately depend on arrival order).
struct CloseRecord {
  double start = 0.0;
  double end = 0.0;
  size_t rows = 0;
  size_t groups = 0;
  size_t eliminated = 0;
  size_t deltas = 0;

  friend bool operator==(const CloseRecord&, const CloseRecord&) = default;
};

/// Subscribes to `name`, appending one CloseRecord per delivered batch.
/// Engine-level delivery is synchronous with the INSERT, so no locking.
uint64_t RecordCloses(Database& db, const std::string& name,
                      std::vector<CloseRecord>* out) {
  auto sub = db.continuous().Subscribe(name, [out](const DeltaBatch& b) {
    out->push_back(CloseRecord{b.window_start, b.window_end, b.rows,
                               b.num_groups, b.eliminated, b.deltas.size()});
    return true;
  });
  EXPECT_TRUE(sub.ok()) << sub.status().ToString();
  return sub.ok() ? sub.value() : 0;
}

std::string UniqueUnixPath(const char* tag) {
  return "/tmp/sgb_" + std::string(tag) + "_" + std::to_string(::getpid()) +
         ".sock";
}

class ContinuousTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultRegistry::Global().Reset(); }
  void TearDown() override { FaultRegistry::Global().Reset(); }
};

// ---- window semantics ---------------------------------------------------

TEST_F(ContinuousTest, TumblingWindowClosesAndStreamsDeltas) {
  Database db;
  ASSERT_TRUE(CreateEventsTable(db).ok());
  ASSERT_TRUE(db.Query("CREATE CONTINUOUS QUERY cq AS SELECT count(*) "
                       "FROM events GROUP BY x, y DISTANCE-TO-ANY L2 "
                       "WITHIN 1.5 WINDOW TUMBLING 10 ON t")
                  .ok());
  std::vector<CloseRecord> closes;
  RecordCloses(db, "cq", &closes);

  // Two near points and one far one inside [0, 10); nothing closes yet.
  ASSERT_TRUE(
      db.Query("INSERT INTO events VALUES (1, 0.5, 0, 0), (2, 1.0, 1, 0), "
               "(3, 2.0, 8, 8)")
          .ok());
  EXPECT_TRUE(closes.empty());
  EXPECT_EQ(SysInt(db, "cq", "open_windows"), 1);

  // Watermark 12 >= 10 closes the first window.
  ASSERT_TRUE(db.Query("INSERT INTO events VALUES (4, 12.0, 3, 3)").ok());
  ASSERT_EQ(closes.size(), 1u);
  EXPECT_EQ(closes[0],
            (CloseRecord{0.0, 10.0, 3u, 2u, 0u, 4u}));  // 3 arrivals + summary

  EXPECT_EQ(SysInt(db, "cq", "windows_closed"), 1);
  EXPECT_EQ(SysInt(db, "cq", "differential_checks"), 1);
  EXPECT_EQ(SysInt(db, "cq", "rows_seen"), 4);
  EXPECT_EQ(SysInt(db, "cq", "open_windows"), 1);
  EXPECT_EQ(SysInt(db, "cq", "late_rows"), 0);
}

TEST_F(ContinuousTest, SlidingWindowGroupsRowInEveryCoveringWindow) {
  Database db;
  ASSERT_TRUE(CreateEventsTable(db).ok());
  ASSERT_TRUE(db.Query("CREATE CONTINUOUS QUERY slide AS SELECT count(*) "
                       "FROM events GROUP BY x, y DISTANCE-TO-ANY L2 "
                       "WITHIN 1 WINDOW SLIDING 10 ADVANCE 5 ON t")
                  .ok());
  std::vector<CloseRecord> closes;
  RecordCloses(db, "slide", &closes);

  // t=7 lives in [0,10) and [5,15).
  ASSERT_TRUE(db.Query("INSERT INTO events VALUES (1, 7, 2, 2)").ok());
  EXPECT_EQ(SysInt(db, "slide", "open_windows"), 2);

  ASSERT_TRUE(db.Query("INSERT INTO events VALUES (2, 100, 50, 50)").ok());
  ASSERT_EQ(closes.size(), 2u);
  EXPECT_EQ(closes[0], (CloseRecord{0.0, 10.0, 1u, 1u, 0u, 2u}));
  EXPECT_EQ(closes[1], (CloseRecord{5.0, 15.0, 1u, 1u, 0u, 2u}));
}

TEST_F(ContinuousTest, LateRowsAreSkippedAndCounted) {
  Database db;
  ASSERT_TRUE(CreateEventsTable(db).ok());
  ASSERT_TRUE(db.Query("CREATE CONTINUOUS QUERY cq AS SELECT count(*) "
                       "FROM events GROUP BY x, y DISTANCE-TO-ANY L2 "
                       "WITHIN 1 WINDOW TUMBLING 10 ON t")
                  .ok());
  std::vector<CloseRecord> closes;
  RecordCloses(db, "cq", &closes);

  ASSERT_TRUE(db.Query("INSERT INTO events VALUES (1, 1, 0, 0)").ok());
  ASSERT_TRUE(db.Query("INSERT INTO events VALUES (2, 25, 9, 9)").ok());
  ASSERT_EQ(closes.size(), 1u);

  // t=5 targets the already-closed [0,10): dropped as late, grouping and
  // counters elsewhere untouched, the INSERT itself succeeds.
  ASSERT_TRUE(db.Query("INSERT INTO events VALUES (3, 5, 0, 0)").ok());
  EXPECT_EQ(closes.size(), 1u);
  EXPECT_EQ(SysInt(db, "cq", "late_rows"), 1);
  EXPECT_EQ(SysInt(db, "cq", "rows_seen"), 3);
  EXPECT_EQ(SysInt(db, "cq", "windows_closed"), 1);

  // NULL coordinates are skipped (not late, not grouped).
  ASSERT_TRUE(db.Query("INSERT INTO events VALUES (4, 26, NULL, 1)").ok());
  EXPECT_EQ(SysInt(db, "cq", "skipped_rows"), 1);
}

// ---- registration and validation ----------------------------------------

TEST_F(ContinuousTest, CreateAndDropSemantics) {
  Database db;
  ASSERT_TRUE(CreateEventsTable(db).ok());
  const std::string body =
      " AS SELECT count(*) FROM events GROUP BY x, y DISTANCE-TO-ANY L2 "
      "WITHIN 1 WINDOW TUMBLING 10 ON t";
  ASSERT_TRUE(db.Query("CREATE CONTINUOUS QUERY cq" + body).ok());

  EXPECT_EQ(db.Query("CREATE CONTINUOUS QUERY cq" + body).status().code(),
            Status::Code::kInvalidArgument);
  EXPECT_TRUE(
      db.Query("CREATE CONTINUOUS QUERY IF NOT EXISTS cq" + body).ok());

  EXPECT_EQ(db.Query("DROP CONTINUOUS QUERY nope").status().code(),
            Status::Code::kNotFound);
  EXPECT_TRUE(db.Query("DROP CONTINUOUS QUERY IF EXISTS nope").ok());
  EXPECT_TRUE(db.Query("DROP CONTINUOUS QUERY cq").ok());
  EXPECT_EQ(db.Query("SELECT count(*) FROM system.continuous_queries")
                .value()
                .rows()[0][0]
                .AsInt(),
            0);
}

TEST_F(ContinuousTest, CreateValidatesTheSelectBody) {
  Database db;
  ASSERT_TRUE(CreateEventsTable(db).ok());
  auto expect_invalid = [&](const std::string& sql, const char* what) {
    auto status = db.Query(sql).status();
    EXPECT_EQ(status.code(), Status::Code::kInvalidArgument) << what;
  };
  // No WINDOW clause.
  expect_invalid(
      "CREATE CONTINUOUS QUERY bad AS SELECT count(*) FROM events "
      "GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1",
      "missing window");
  // No similarity clause (plain GROUP BY never parses into one here).
  expect_invalid(
      "CREATE CONTINUOUS QUERY bad AS SELECT count(*) FROM events "
      "WINDOW TUMBLING 10 ON t",
      "missing similarity");
  // WHERE is not supported in a continuous body.
  expect_invalid(
      "CREATE CONTINUOUS QUERY bad AS SELECT count(*) FROM events "
      "WHERE x > 0 GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1 "
      "WINDOW TUMBLING 10 ON t",
      "where");
  // SLIDING with advance > size.
  expect_invalid(
      "CREATE CONTINUOUS QUERY bad AS SELECT count(*) FROM events "
      "GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1 "
      "WINDOW SLIDING 5 ADVANCE 10 ON t",
      "advance > size");
  // Non-numeric time column.
  ASSERT_TRUE(db.Query("CREATE TABLE tagged (tag TEXT, x DOUBLE, y DOUBLE)")
                  .ok());
  expect_invalid(
      "CREATE CONTINUOUS QUERY bad AS SELECT count(*) FROM tagged "
      "GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1 WINDOW TUMBLING 10 ON tag",
      "string time column");
  // Unknown base table.
  auto missing = db.Query(
      "CREATE CONTINUOUS QUERY bad AS SELECT count(*) FROM nowhere "
      "GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1 WINDOW TUMBLING 10 ON t");
  EXPECT_FALSE(missing.ok());

  // A bare SELECT may not carry WINDOW: it belongs to continuous queries.
  auto bare = db.Query(
      "SELECT count(*) FROM events GROUP BY x, y DISTANCE-TO-ANY L2 "
      "WITHIN 1 WINDOW TUMBLING 10 ON t");
  EXPECT_EQ(bare.status().code(), Status::Code::kInvalidArgument);
  EXPECT_NE(bare.status().message().find("CONTINUOUS"), std::string::npos);
}

// ---- the differential sweep ---------------------------------------------

// Every close differentially checks the maintained grouping against a
// from-scratch batch execution and fails the INSERT on any divergence, so
// driving a realistic stream through every semantics x metric x overlap x
// dop x window combination IS the equivalence assertion; the counters
// confirm the checks actually ran.
TEST_F(ContinuousTest, DifferentialSweepAcrossMetricsPoliciesDopAndWindows) {
  workload::CheckinStreamConfig stream_config;
  stream_config.base = workload::BrightkiteLike(120, 29);
  stream_config.duration = 50.0;
  stream_config.out_of_order_jitter = 4.0;
  const std::vector<Row> stream = workload::GenerateCheckinStream(
      stream_config, /*users=*/50);

  const std::vector<std::string> similarities = {
      "DISTANCE-TO-ANY",
      "DISTANCE-TO-ALL",  // metric appended below; policy after WITHIN
  };
  const std::vector<std::string> metrics = {"L2", "LINF"};
  const std::vector<std::string> policies = {"JOIN-ANY", "ELIMINATE",
                                             "FORM-NEW-GROUP"};
  const std::vector<int> dops = {1, 4};
  const std::vector<std::string> windows = {
      "WINDOW TUMBLING 10 ON t", "WINDOW SLIDING 10 ADVANCE 5 ON t"};

  std::vector<std::string> clauses;
  for (const std::string& metric : metrics) {
    clauses.push_back("DISTANCE-TO-ANY " + metric + " WITHIN 0.8");
    for (const std::string& policy : policies) {
      clauses.push_back("DISTANCE-TO-ALL " + metric +
                        " WITHIN 0.8 ON-OVERLAP " + policy);
    }
  }

  for (const std::string& clause : clauses) {
    for (const int dop : dops) {
      for (const std::string& window : windows) {
        const std::string spec = clause + " PARALLEL " +
                                 std::to_string(dop) + " " + window;
        SCOPED_TRACE(spec);
        Database db;
        ASSERT_TRUE(CreateEventsTable(db).ok());
        ASSERT_TRUE(db.Query("CREATE CONTINUOUS QUERY sweep AS "
                             "SELECT count(*) FROM events GROUP BY x, y " +
                             spec)
                        .ok());
        std::vector<CloseRecord> closes;
        RecordCloses(db, "sweep", &closes);

        // Jittered arrival order, four batches, then a flush far past the
        // last window: cross-batch jitter also exercises the late path.
        for (size_t b = 0; b < stream.size(); b += 30) {
          auto insert = db.Query(InsertSql(
              "events", stream, b, std::min(b + 30, stream.size())));
          ASSERT_TRUE(insert.ok()) << insert.status().ToString();
        }
        ASSERT_TRUE(
            db.Query("INSERT INTO events VALUES (0, 1000, 0, 0)").ok());

        EXPECT_GE(closes.size(), 4u);
        EXPECT_EQ(static_cast<int64_t>(closes.size()),
                  SysInt(db, "sweep", "windows_closed"));
        EXPECT_EQ(SysInt(db, "sweep", "differential_checks"),
                  SysInt(db, "sweep", "windows_closed"));
        for (const CloseRecord& c : closes) {
          EXPECT_GT(c.rows, 0u);
          EXPECT_EQ(c.deltas, c.rows + 1);  // one per arrival + summary
        }
      }
    }
  }
}

// ---- out-of-order convergence -------------------------------------------

// The same row multiset delivered in different arrival orders must close
// every window with identical results: content-defined canonical order and
// content-only arbitration keys make each close a pure function of the
// window's rows.
TEST_F(ContinuousTest, ShuffledArrivalsConvergeToIdenticalCloses) {
  workload::CheckinStreamConfig stream_config;
  stream_config.base = workload::BrightkiteLike(90, 31);
  stream_config.duration = 40.0;
  stream_config.out_of_order_jitter = 0.0;
  std::vector<Row> rows =
      workload::GenerateCheckinStream(stream_config, /*users=*/40);

  const std::vector<std::string> specs = {
      "DISTANCE-TO-ANY L2 WITHIN 0.8 WINDOW TUMBLING 10 ON t",
      "DISTANCE-TO-ALL L2 WITHIN 0.8 ON-OVERLAP JOIN-ANY "
      "WINDOW SLIDING 10 ADVANCE 5 ON t",
      "DISTANCE-TO-ALL LINF WITHIN 0.8 ON-OVERLAP ELIMINATE "
      "WINDOW TUMBLING 10 ON t",
  };
  for (const std::string& spec : specs) {
    SCOPED_TRACE(spec);
    std::vector<std::vector<CloseRecord>> runs;
    std::vector<int64_t> delta_events;
    for (const uint64_t shuffle_seed : {0ull, 101ull, 202ull}) {
      // Order 0 is event-time sorted; the others are full shuffles. Each
      // run delivers everything in ONE statement (closes happen after the
      // whole statement, so no ordering can make a row late) followed by
      // the flush.
      std::vector<Row> order = rows;
      if (shuffle_seed == 0) {
        std::sort(order.begin(), order.end(),
                  [](const Row& a, const Row& b) {
                    return a[1].AsDouble() < b[1].AsDouble();
                  });
      } else {
        Rng rng(shuffle_seed);
        for (size_t i = order.size(); i > 1; --i) {
          std::swap(order[i - 1],
                    order[static_cast<size_t>(rng.NextInt(
                        0, static_cast<int64_t>(i) - 1))]);
        }
      }
      Database db;
      ASSERT_TRUE(CreateEventsTable(db).ok());
      ASSERT_TRUE(db.Query("CREATE CONTINUOUS QUERY conv AS "
                           "SELECT count(*) FROM events GROUP BY x, y " +
                           spec)
                      .ok());
      std::vector<CloseRecord> closes;
      RecordCloses(db, "conv", &closes);
      ASSERT_TRUE(
          db.Query(InsertSql("events", order, 0, order.size())).ok());
      ASSERT_TRUE(
          db.Query("INSERT INTO events VALUES (0, 1000, 0, 0)").ok());
      EXPECT_EQ(SysInt(db, "conv", "late_rows"), 0);
      delta_events.push_back(SysInt(db, "conv", "delta_events"));
      runs.push_back(std::move(closes));
    }
    ASSERT_GE(runs[0].size(), 3u);
    EXPECT_EQ(runs[0], runs[1]);
    EXPECT_EQ(runs[0], runs[2]);
    EXPECT_EQ(delta_events[0], delta_events[1]);
    EXPECT_EQ(delta_events[0], delta_events[2]);
  }
}

// ---- incremental core properties ----------------------------------------

/// Canonical order for direct core tests: sort by (x, y), index tiebreak.
std::vector<size_t> CanonicalOrder(const std::vector<geom::Point>& pts) {
  std::vector<size_t> order(pts.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return std::tie(pts[a].x, pts[a].y, a) < std::tie(pts[b].x, pts[b].y, b);
  });
  return order;
}

TEST_F(ContinuousTest, IncrementalAnyIsPermutationInvariantAndMonotone) {
  Rng rng(47);
  std::vector<geom::Point> pts;
  for (size_t i = 0; i < 150; ++i) {
    pts.push_back(
        {rng.NextUniform(0, 12), rng.NextUniform(0, 12)});
  }
  core::SgbAnyOptions options;
  options.epsilon = 0.9;

  // Reference grouping: batch SgbAny over the canonical arrangement.
  const std::vector<size_t> canonical = CanonicalOrder(pts);
  std::vector<geom::Point> arranged;
  for (size_t i : canonical) arranged.push_back(pts[i]);
  auto batch = core::SgbAny(arranged, options);
  ASSERT_TRUE(batch.ok());

  for (const uint64_t perm_seed : {1ull, 2ull, 3ull, 4ull}) {
    SCOPED_TRACE(perm_seed);
    std::vector<size_t> arrival(pts.size());
    std::iota(arrival.begin(), arrival.end(), size_t{0});
    Rng perm(perm_seed);
    for (size_t i = arrival.size(); i > 1; --i) {
      std::swap(arrival[i - 1],
                arrival[static_cast<size_t>(
                    perm.NextInt(0, static_cast<int64_t>(i) - 1))]);
    }

    core::IncrementalSgbAny inc(options);
    // arrival_pos[original index] = position in this insertion order.
    std::vector<size_t> arrival_pos(pts.size());
    size_t groups = 0;
    for (size_t k = 0; k < arrival.size(); ++k) {
      arrival_pos[arrival[k]] = k;
      auto event = inc.Insert(pts[arrival[k]]);
      ASSERT_TRUE(event.ok());
      // Monotonicity: an arrival creates one group, joins one, or merges
      // m >= 2 into one — the component count never jumps any other way.
      switch (event.value().kind) {
        case core::DeltaEvent::Kind::kGroupFormed:
          groups += 1;
          break;
        case core::DeltaEvent::Kind::kMemberAdded:
          break;
        case core::DeltaEvent::Kind::kGroupsMerged:
          ASSERT_GE(event.value().merged_groups, 2u);
          groups -= event.value().merged_groups - 1;
          break;
      }
      ASSERT_EQ(inc.num_groups(), groups);
    }

    // Snapshot over the canonical arrangement is bit-identical to batch,
    // whatever order the points arrived in.
    std::vector<size_t> order;  // canonical, expressed in arrival positions
    for (size_t i : canonical) order.push_back(arrival_pos[i]);
    auto snap = inc.Snapshot(order);
    ASSERT_TRUE(snap.ok());
    EXPECT_EQ(snap.value().num_groups, batch.value().num_groups);
    EXPECT_EQ(snap.value().group_of, batch.value().group_of);
  }
}

TEST_F(ContinuousTest, IncrementalAllMatchesSerialBatchWithIdentityKeys) {
  Rng rng(53);
  std::vector<geom::Point> pts;
  std::vector<uint64_t> keys;
  for (size_t i = 0; i < 120; ++i) {
    pts.push_back({rng.NextUniform(0, 10), rng.NextUniform(0, 10)});
    keys.push_back(rng.NextU64());
  }
  for (const auto on_overlap :
       {core::OverlapClause::kJoinAny, core::OverlapClause::kEliminate,
        core::OverlapClause::kFormNewGroup}) {
    SCOPED_TRACE(static_cast<int>(on_overlap));
    core::SgbAllOptions options;
    options.epsilon = 0.8;
    options.on_overlap = on_overlap;

    core::IncrementalSgbAll inc(options);
    for (size_t i = 0; i < pts.size(); ++i) {
      ASSERT_TRUE(inc.Insert(pts[i], keys[i]).ok());
    }
    const std::vector<size_t> canonical = CanonicalOrder(pts);
    auto snap = inc.Snapshot(canonical);
    ASSERT_TRUE(snap.ok());

    std::vector<geom::Point> arranged;
    std::vector<uint64_t> arranged_keys;
    for (size_t i : canonical) {
      arranged.push_back(pts[i]);
      arranged_keys.push_back(keys[i]);
    }
    core::SgbAllOptions batch_options = options;
    batch_options.arbitration_keys = arranged_keys;
    auto batch = core::SgbAll(arranged, batch_options);
    ASSERT_TRUE(batch.ok());
    EXPECT_EQ(snap.value().num_groups, batch.value().num_groups);
    EXPECT_EQ(snap.value().group_of, batch.value().group_of);
  }
}

TEST_F(ContinuousTest, IncrementalAllRegroupingIsBoundedToTheDirtyNeighborhood) {
  // Two interaction components far beyond 3 epsilon of each other: a big
  // cluster whose size varies, and a small fixed cluster that receives a
  // late arrival. The snapshot after that arrival must re-run only the
  // small component — its distance-computation count cannot depend on the
  // big cluster's size.
  auto run = [](size_t big_cluster_size) {
    core::SgbAllOptions options;
    options.epsilon = 0.3;
    core::IncrementalSgbAll inc(options);
    Rng rng(61);
    uint64_t key = 1;
    for (size_t i = 0; i < big_cluster_size; ++i) {
      EXPECT_TRUE(
          inc.Insert({rng.NextUniform(0, 2), rng.NextUniform(0, 2)}, key++)
              .ok());
    }
    for (size_t i = 0; i < 6; ++i) {
      EXPECT_TRUE(inc.Insert({100.0 + 0.1 * static_cast<double>(i), 100.0},
                             key++)
                      .ok());
    }
    std::vector<size_t> order(inc.size());
    std::iota(order.begin(), order.end(), size_t{0});
    EXPECT_TRUE(inc.Snapshot(order).ok());  // everything clean now

    // One arrival lands in the small far cluster.
    EXPECT_TRUE(inc.Insert({100.35, 100.0}, key++).ok());
    order.push_back(order.size());
    core::SgbAllStats stats;
    EXPECT_TRUE(inc.Snapshot(order, &stats).ok());
    return stats.distance_computations;
  };
  const size_t small_run = run(200);
  const size_t big_run = run(500);
  EXPECT_EQ(small_run, big_run);
  // And the re-run really is local: 7 points of work, not hundreds.
  EXPECT_LE(small_run, 100u);
}

// ---- stats refresh and plan invalidation --------------------------------

TEST_F(ContinuousTest, ContinuousPlanRebuildsOnCatalogVersionBump) {
  Database db;
  ASSERT_TRUE(CreateEventsTable(db).ok());
  ASSERT_TRUE(db.Query("CREATE CONTINUOUS QUERY cq AS SELECT count(*) "
                       "FROM events GROUP BY x, y DISTANCE-TO-ANY L2 "
                       "WITHIN 1 WINDOW TUMBLING 10 ON t")
                  .ok());

  // Un-analyzed table: inserts never move the catalog version, so the
  // continuous plan stays put. 30 rows make the later stats-refresh
  // threshold 3 rows (10% of the analyzed count).
  std::string seed_sql = "INSERT INTO events VALUES ";
  for (int i = 0; i < 30; ++i) {
    if (i > 0) seed_sql += ", ";
    seed_sql += "(" + std::to_string(i) + ", " + std::to_string(i) + ", " +
                std::to_string(i % 7) + ", " + std::to_string(i % 5) + ")";
  }
  ASSERT_TRUE(db.Query(seed_sql).ok());
  EXPECT_EQ(SysInt(db, "cq", "plan_rebuilds"), 0);

  // ANALYZE bumps the catalog version; the next INSERT re-resolves the
  // stored AST before applying its rows, and later inserts below the
  // stats-refresh threshold leave the plan alone.
  ASSERT_TRUE(db.Query("ANALYZE events").ok());
  ASSERT_TRUE(db.Query("INSERT INTO events VALUES (1, 31, 2, 2)").ok());
  EXPECT_EQ(SysInt(db, "cq", "plan_rebuilds"), 1);
  ASSERT_TRUE(db.Query("INSERT INTO events VALUES (2, 32, 3, 3)").ok());
  EXPECT_EQ(SysInt(db, "cq", "plan_rebuilds"), 1);

  // A stats-refresh bump (>=10% growth over the 30 analyzed rows) lands
  // before OnInsert inside the same INSERT, so that statement both bumps
  // and rebuilds.
  ASSERT_TRUE(db.Query("INSERT INTO events VALUES (3, 33, 4, 4), "
                       "(4, 34, 5, 5), (5, 35, 6, 6), (6, 36, 7, 7)")
                  .ok());
  EXPECT_EQ(SysInt(db, "cq", "plan_rebuilds"), 2);
  ASSERT_TRUE(db.Query("INSERT INTO events VALUES (7, 37, 1, 1)").ok());
  EXPECT_EQ(SysInt(db, "cq", "plan_rebuilds"), 2);

  // Rebuild failure surfaces as the INSERT's status: recreating the base
  // table without the time column makes the re-resolve fail cleanly, and
  // dropping the query restores plain INSERT service.
  ASSERT_TRUE(db.Query("DROP TABLE events").ok());
  ASSERT_TRUE(db.Query("CREATE TABLE events "
                       "(user_id INT, ts DOUBLE, x DOUBLE, y DOUBLE)")
                  .ok());
  EXPECT_EQ(db.Query("INSERT INTO events VALUES (6, 6, 5, 5)")
                .status()
                .code(),
            Status::Code::kInvalidArgument);
  ASSERT_TRUE(db.Query("DROP CONTINUOUS QUERY cq").ok());
  EXPECT_TRUE(db.Query("INSERT INTO events VALUES (7, 7, 6, 6)").ok());
}

// ---- fault injection and recovery ---------------------------------------

TEST_F(ContinuousTest, WindowCloseFaultLeavesWindowOpenAndRetrySucceeds) {
  Database db;
  ASSERT_TRUE(CreateEventsTable(db).ok());
  ASSERT_TRUE(db.Query("CREATE CONTINUOUS QUERY cq AS SELECT count(*) "
                       "FROM events GROUP BY x, y DISTANCE-TO-ANY L2 "
                       "WITHIN 1.5 WINDOW TUMBLING 10 ON t")
                  .ok());
  std::vector<CloseRecord> closes;
  RecordCloses(db, "cq", &closes);

  ASSERT_TRUE(
      db.Query("INSERT INTO events VALUES (1, 1, 0, 0), (2, 2, 1, 0)").ok());

  FaultRegistry::Global().ArmNthHit("continuous.window_close", 1);
  auto faulted = db.Query("INSERT INTO events VALUES (3, 12, 5, 5)");
  ASSERT_FALSE(faulted.ok());
  EXPECT_EQ(faulted.status().code(), Status::Code::kInternal);
  EXPECT_NE(faulted.status().message().find("continuous.window_close"),
            std::string::npos);
  FaultRegistry::Global().Reset();

  // The failed close published nothing and left both windows open; the
  // base rows stayed appended.
  EXPECT_TRUE(closes.empty());
  EXPECT_EQ(SysInt(db, "cq", "windows_closed"), 0);
  EXPECT_EQ(SysInt(db, "cq", "open_windows"), 2);
  EXPECT_EQ(
      db.Query("SELECT count(*) FROM events").value().rows()[0][0].AsInt(),
      3);

  // The next INSERT retries the close; the subscription resumes with the
  // correct first delta batch — the one the fault blocked.
  ASSERT_TRUE(db.Query("INSERT INTO events VALUES (4, 13, 6, 6)").ok());
  ASSERT_EQ(closes.size(), 1u);
  EXPECT_EQ(closes[0], (CloseRecord{0.0, 10.0, 2u, 1u, 0u, 3u}));
  EXPECT_EQ(SysInt(db, "cq", "windows_closed"), 1);

  // Dropping the query drains every maintained charge.
  ASSERT_TRUE(db.Query("DROP CONTINUOUS QUERY cq").ok());
  EXPECT_EQ(db.continuous().memory().usage_bytes(), 0u);
}

TEST_F(ContinuousTest, OpenWindowStateIsChargedAndDrainedOnDrop) {
  Database db;
  ASSERT_TRUE(CreateEventsTable(db).ok());
  ASSERT_TRUE(db.Query("CREATE CONTINUOUS QUERY cq AS SELECT count(*) "
                       "FROM events GROUP BY x, y DISTANCE-TO-ANY L2 "
                       "WITHIN 1 WINDOW TUMBLING 10 ON t")
                  .ok());
  ASSERT_TRUE(
      db.Query("INSERT INTO events VALUES (1, 1, 0, 0), (2, 2, 1, 1)").ok());
  EXPECT_GT(db.continuous().memory().usage_bytes(), 0u);
  ASSERT_TRUE(db.Query("DROP CONTINUOUS QUERY cq").ok());
  EXPECT_EQ(db.continuous().memory().usage_bytes(), 0u);
}

// ---- concurrent maintenance ---------------------------------------------

TEST_F(ContinuousTest, ConcurrentInsertersMaintainOneQuerySafely) {
  Database db;
  ASSERT_TRUE(CreateEventsTable(db).ok());
  ASSERT_TRUE(db.Query("CREATE CONTINUOUS QUERY cq AS SELECT count(*) "
                       "FROM events GROUP BY x, y DISTANCE-TO-ANY L2 "
                       "WITHIN 1 WINDOW TUMBLING 5 ON t")
                  .ok());
  std::atomic<size_t> closes{0};
  auto sub = db.continuous().Subscribe("cq", [&](const DeltaBatch&) {
    closes.fetch_add(1);
    return true;
  });
  ASSERT_TRUE(sub.ok());

  constexpr int kThreads = 4;
  constexpr int kRowsEach = 60;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      Rng rng(100 + static_cast<uint64_t>(w));
      for (int i = 0; i < kRowsEach; ++i) {
        const double t = rng.NextUniform(0, 100);
        auto insert = db.Query(
            "INSERT INTO events VALUES (" + std::to_string(w) + ", " + D(t) +
            ", " + D(rng.NextUniform(0, 10)) + ", " +
            D(rng.NextUniform(0, 10)) + ")");
        if (!insert.ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Whatever interleaving happened, the books balance: every row was seen,
  // every close was differentially checked and delivered.
  EXPECT_EQ(SysInt(db, "cq", "rows_seen"), kThreads * kRowsEach);
  EXPECT_EQ(SysInt(db, "cq", "differential_checks"),
            SysInt(db, "cq", "windows_closed"));
  EXPECT_EQ(static_cast<int64_t>(closes.load()),
            SysInt(db, "cq", "windows_closed"));
  EXPECT_GT(closes.load(), 0u);
}

// ---- the server SUBSCRIBE surface ---------------------------------------

TEST_F(ContinuousTest, SubscribeStreamsEventsAcrossConnections) {
  Database db;
  server::ServerOptions options;
  options.unix_path = UniqueUnixPath("continuous_sub");
  server::Server server(&db, options);
  ASSERT_TRUE(server.Start().ok());

  auto writer = server::Client::ConnectUnixSocket(options.unix_path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.value()
                  .Query("CREATE TABLE events "
                         "(user_id INT, t DOUBLE, x DOUBLE, y DOUBLE)")
                  .ok());
  ASSERT_TRUE(writer.value()
                  .Query("CREATE CONTINUOUS QUERY cq AS SELECT count(*) "
                         "FROM events GROUP BY x, y DISTANCE-TO-ANY L2 "
                         "WITHIN 1.5 WINDOW TUMBLING 10 ON t")
                  .ok());

  auto reader = server::Client::ConnectUnixSocket(options.unix_path);
  ASSERT_TRUE(reader.ok());
  // Subscribing to a missing query is NotFound; double-subscribe invalid.
  EXPECT_EQ(reader.value().Subscribe("nope").code(),
            Status::Code::kNotFound);
  ASSERT_TRUE(reader.value().Subscribe("cq").ok());
  EXPECT_EQ(reader.value().Subscribe("cq").code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(reader.value().Unsubscribe("other").code(),
            Status::Code::kNotFound);

  ASSERT_TRUE(writer.value()
                  .Query("INSERT INTO events VALUES (1, 1, 0, 0), "
                         "(2, 2, 1, 0), (3, 12, 8, 8)")
                  .ok());

  // Three events for the close of [0, 10): two arrivals plus the summary.
  std::vector<server::DeltaEvent> events;
  for (int i = 0; i < 3; ++i) {
    auto event = reader.value().NextEvent();
    ASSERT_TRUE(event.ok()) << event.status().ToString();
    events.push_back(std::move(event).value());
  }
  for (const server::DeltaEvent& e : events) {
    EXPECT_EQ(e.query, "cq");
    EXPECT_EQ(e.window_start, 0.0);
    EXPECT_EQ(e.window_end, 10.0);
  }
  EXPECT_EQ(events[0].kind, "group_formed");
  EXPECT_EQ(events[2].kind, "window_closed");
  EXPECT_EQ(events[2].point, -1);
  EXPECT_EQ(events[2].groups, 1);

  // Interleaving: a round trip on the subscribed connection still works
  // while further EVENT pushes arrive — they are buffered, not lost, and
  // PING stays parseable.
  ASSERT_TRUE(
      writer.value().Query("INSERT INTO events VALUES (4, 25, 2, 2)").ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(reader.value().Ping().ok());
  auto buffered = reader.value().NextEvent();
  ASSERT_TRUE(buffered.ok());
  EXPECT_EQ(buffered.value().window_start, 10.0);

  ASSERT_TRUE(reader.value().Unsubscribe("cq").ok());
  ASSERT_TRUE(reader.value().Quit().ok());
  ASSERT_TRUE(writer.value().Quit().ok());
  server.Stop();
}

// The streaming-smoke hammer: eight subscribers on one continuous query, a
// writer closing windows underneath them, half the subscribers detaching
// mid-stream. The TSan CI job runs exactly this test for the push-path
// write races.
TEST_F(ContinuousTest, EightSubscriberHammer) {
  Database db;
  server::ServerOptions options;
  options.tcp = true;
  server::Server server(&db, options);
  ASSERT_TRUE(server.Start().ok());

  auto writer = server::Client::ConnectLoopback(server.tcp_port());
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.value()
                  .Query("CREATE TABLE events "
                         "(user_id INT, t DOUBLE, x DOUBLE, y DOUBLE)")
                  .ok());
  ASSERT_TRUE(writer.value()
                  .Query("CREATE CONTINUOUS QUERY cq AS SELECT count(*) "
                         "FROM events GROUP BY x, y DISTANCE-TO-ANY L2 "
                         "WITHIN 1 WINDOW TUMBLING 10 ON t")
                  .ok());

  constexpr int kSubscribers = 8;
  constexpr int kWindows = 20;
  std::vector<server::Client> subscribers;
  for (int s = 0; s < kSubscribers; ++s) {
    auto client = server::Client::ConnectLoopback(server.tcp_port());
    ASSERT_TRUE(client.ok());
    subscribers.push_back(std::move(client).value());
    ASSERT_TRUE(subscribers.back().Subscribe("cq").ok());
  }

  std::atomic<int> failures{0};
  std::thread producer([&] {
    Rng rng(77);
    for (int w = 0; w <= kWindows; ++w) {
      // 4 rows inside window w, then the next iteration's rows close it.
      const double base = 10.0 * w;
      std::string sql = "INSERT INTO events VALUES ";
      for (int r = 0; r < 4; ++r) {
        if (r > 0) sql += ", ";
        sql += "(" + std::to_string(r) + ", " +
               D(base + 1.0 + 2.0 * r) + ", " +
               D(rng.NextUniform(0, 6)) + ", " + D(rng.NextUniform(0, 6)) +
               ")";
      }
      if (!writer.value().Query(sql).ok()) failures.fetch_add(1);
    }
  });

  std::vector<std::thread> consumers;
  for (int s = 0; s < kSubscribers; ++s) {
    consumers.emplace_back([&, s] {
      // Odd subscribers detach after half the stream; even ones drain all
      // of it. Every window delivers 5 events (4 arrivals + summary).
      const int want = (s % 2 == 0) ? kWindows : kWindows / 2;
      int seen_closes = 0;
      while (seen_closes < want) {
        auto event = subscribers[s].NextEvent();
        if (!event.ok()) {
          failures.fetch_add(1);
          ADD_FAILURE() << "subscriber " << s << ": "
                        << event.status().ToString();
          return;
        }
        if (event.value().kind == "window_closed") ++seen_closes;
      }
      if (s % 2 == 1) {
        if (!subscribers[s].Unsubscribe("cq").ok()) failures.fetch_add(1);
      }
    });
  }
  producer.join();
  for (std::thread& t : consumers) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Disconnecting subscribers (without UNSUBSCRIBE) detaches them.
  for (auto& client : subscribers) client.Abort();
  subscribers.clear();
  ASSERT_TRUE(writer.value().Quit().ok());
  server.Stop();

  EXPECT_EQ(SysInt(db, "cq", "windows_closed"), kWindows);
  EXPECT_EQ(SysInt(db, "cq", "subscribers"), 0);
}

}  // namespace
}  // namespace sgb::engine
