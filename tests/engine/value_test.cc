#include "engine/value.h"

#include <gtest/gtest.h>

namespace sgb::engine {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int(7).type(), DataType::kInt64);
  EXPECT_EQ(Value::Double(1.5).type(), DataType::kDouble);
  EXPECT_EQ(Value::Str("x").type(), DataType::kString);
  EXPECT_EQ(Value::Int(7).AsInt(), 7);
  EXPECT_DOUBLE_EQ(Value::Double(1.5).AsDouble(), 1.5);
  EXPECT_EQ(Value::Str("abc").AsString(), "abc");
}

TEST(ValueTest, NumericCoercion) {
  EXPECT_DOUBLE_EQ(Value::Int(3).ToDouble(), 3.0);
  EXPECT_DOUBLE_EQ(Value::Null().ToDouble(), 0.0);
  EXPECT_TRUE(Value::Int(1).ToBool());
  EXPECT_FALSE(Value::Int(0).ToBool());
  EXPECT_FALSE(Value::Null().ToBool());
  EXPECT_FALSE(Value::Str("x").ToBool());
}

TEST(ValueTest, CompareAcrossNumericTypes) {
  EXPECT_EQ(Value::Compare(Value::Int(2), Value::Double(2.0)), 0);
  EXPECT_LT(Value::Compare(Value::Int(1), Value::Double(1.5)), 0);
  EXPECT_GT(Value::Compare(Value::Double(3.5), Value::Int(3)), 0);
}

TEST(ValueTest, NullSortsFirstStringsLast) {
  EXPECT_LT(Value::Compare(Value::Null(), Value::Int(-100)), 0);
  EXPECT_LT(Value::Compare(Value::Int(100), Value::Str("a")), 0);
  EXPECT_EQ(Value::Compare(Value::Null(), Value::Null()), 0);
}

TEST(ValueTest, StringComparisonIsLexicographic) {
  // ISO dates compare correctly as strings — the engine relies on this.
  EXPECT_LT(Value::Compare(Value::Str("1995-01-01"), Value::Str("1996-01-01")),
            0);
  EXPECT_GT(Value::Compare(Value::Str("b"), Value::Str("ab")), 0);
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(2).Hash(), Value::Double(2.0).Hash());
  EXPECT_TRUE(Value::Int(2) == Value::Double(2.0));
  EXPECT_EQ(Value::Str("xy").Hash(), Value::Str("xy").Hash());
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int(-3).ToString(), "-3");
  EXPECT_EQ(Value::Str("hi").ToString(), "hi");
  EXPECT_EQ(Value::Double(2.5).ToString(), "2.5");
}

TEST(RowHashTest, CompositeKeys) {
  const Row a = {Value::Int(1), Value::Str("x")};
  const Row b = {Value::Int(1), Value::Str("x")};
  const Row c = {Value::Int(1), Value::Str("y")};
  EXPECT_TRUE(RowEq()(a, b));
  EXPECT_FALSE(RowEq()(a, c));
  EXPECT_EQ(RowHash()(a), RowHash()(b));
  EXPECT_FALSE(RowEq()(a, Row{Value::Int(1)}));
}

}  // namespace
}  // namespace sgb::engine
