// Admission-control tests (docs/ROBUSTNESS.md): queries are gated at plan
// time on their estimated footprint against the engine headroom. Queue mode
// delays but never loses work; shed mode fails fast with ResourceExhausted;
// both publish their decisions as query.queued / query.shed counters.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "engine/executor.h"
#include "obs/metrics.h"

namespace sgb::engine {
namespace {

constexpr char kScanQuery[] = "SELECT count(*) FROM pts";

Database PointsDb(size_t n, uint64_t seed = 7) {
  Database db;
  auto pts = std::make_shared<Table>(Schema({
      Column{"x", DataType::kDouble, ""},
      Column{"y", DataType::kDouble, ""},
  }));
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(pts->Append({Value::Double(rng.NextUniform(0, 10)),
                             Value::Double(rng.NextUniform(0, 10))})
                    .ok());
  }
  db.Register("pts", pts);
  return db;
}

TEST(AdmissionTest, OffModeAdmitsEverything) {
  Database db = PointsDb(5000);
  db.set_admission_budget_bytes(1);  // absurdly small, but mode is off
  EXPECT_TRUE(db.Query(kScanQuery).ok());
}

TEST(AdmissionTest, ShedFailsFastWhenEstimateExceedsHeadroom) {
  auto& registry = obs::MetricsRegistry::Global();
  const uint64_t shed_before = registry.GetCounter("query.shed").value();

  Database db = PointsDb(5000);
  ASSERT_TRUE(db.Query("SET admission = shed").ok());
  ASSERT_TRUE(db.Query("SET admission_budget = 4096").ok());

  // A 5000-row scan estimates far above 4 kB: shed, with a clear status.
  auto result = db.Query(kScanQuery);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kResourceExhausted);
  EXPECT_NE(result.status().message().find("admission"), std::string::npos)
      << result.status().ToString();
  EXPECT_EQ(registry.GetCounter("query.shed").value(), shed_before + 1);

  // Raising the headroom restores service on the identical query.
  ASSERT_TRUE(db.Query("SET admission_budget = 104857600").ok());
  EXPECT_TRUE(db.Query(kScanQuery).ok());
  // And turning admission off removes the gate entirely.
  ASSERT_TRUE(db.Query("SET admission = off").ok());
  ASSERT_TRUE(db.Query("SET admission_budget = 1").ok());
  EXPECT_TRUE(db.Query(kScanQuery).ok());
}

TEST(AdmissionTest, QueueShedsQueriesThatCanNeverFit) {
  // Even in queue mode, a query whose lone footprint exceeds the entire
  // headroom is shed: waiting for other queries to finish cannot help.
  auto& registry = obs::MetricsRegistry::Global();
  const uint64_t shed_before = registry.GetCounter("query.shed").value();
  Database db = PointsDb(5000);
  ASSERT_TRUE(db.Query("SET admission = queue").ok());
  ASSERT_TRUE(db.Query("SET admission_budget = 4096").ok());
  auto result = db.Query(kScanQuery);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kResourceExhausted);
  EXPECT_EQ(registry.GetCounter("query.shed").value(), shed_before + 1);
}

TEST(AdmissionTest, QueuePreservesAllConcurrentResults) {
  auto& registry = obs::MetricsRegistry::Global();
  const uint64_t queued_before = registry.GetCounter("query.queued").value();

  // Headroom fits roughly one query at a time, so concurrent runs must
  // serialize through the queue — and every one of them must complete.
  // The query has to hold its admission slot long enough for the other
  // threads to reach the gate: a heavy SGB grouping runs for tens of
  // milliseconds while thread startup is microseconds, so with ~1.5 slots
  // for 8 threads the late arrivals reliably find the ledger full.
  static constexpr char kHeavyQuery[] =
      "SELECT count(*) FROM pts GROUP BY x, y "
      "DISTANCE-TO-ANY L2 WITHIN 0.4";
  Database db = PointsDb(4000);
  auto reference = db.Query(kHeavyQuery);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  const size_t reference_rows = reference.value().NumRows();

  const size_t estimate =
      db.Prepare(kHeavyQuery).value()->EstimateFootprintBytes();
  ASSERT_GT(estimate, 0u);
  db.set_admission_mode(AdmissionMode::kQueue);
  db.set_admission_budget_bytes(estimate + estimate / 2);

  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  std::atomic<int> ok_count{0};
  std::atomic<int> correct_count{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&db, &ok_count, &correct_count, reference_rows] {
      auto result = db.Query(kHeavyQuery);
      if (!result.ok()) return;
      ok_count.fetch_add(1);
      int64_t total = 0;
      for (const Row& row : result.value().rows()) total += row[0].AsInt();
      // Every point lands in exactly one group, so the per-group counts
      // must sum back to the input size.
      if (result.value().NumRows() == reference_rows && total == 4000) {
        correct_count.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(ok_count.load(), kThreads);
  EXPECT_EQ(correct_count.load(), kThreads);
  // With ~1.5 slots for 8 queries, at least one had to wait its turn.
  EXPECT_GT(registry.GetCounter("query.queued").value(), queued_before);
}

TEST(AdmissionTest, QueueTimesOutUnderSessionDeadline) {
  Database db = PointsDb(4000);
  const size_t estimate =
      db.Prepare(kScanQuery).value()->EstimateFootprintBytes();
  db.set_admission_mode(AdmissionMode::kQueue);
  db.set_admission_budget_bytes(estimate + estimate / 2);
  db.set_timeout_ms(50);

  // A long-running query holds the headroom while a second one queues; the
  // second must give up with DeadlineExceeded once the timeout lapses.
  std::atomic<bool> holder_started{false};
  std::thread holder([&db, &holder_started] {
    // Big SGB grouping: comfortably outlasts the 50ms window.
    holder_started.store(true);
    (void)db.Query(
        "SELECT count(*) FROM pts GROUP BY x, y "
        "DISTANCE-TO-ANY L2 WITHIN 0.4");
  });
  while (!holder_started.load()) std::this_thread::yield();
  // Give the holder a moment to pass admission and start executing.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));

  auto result = db.Query(kScanQuery);
  holder.join();
  if (!result.ok()) {
    // Queued past the deadline (the expected path when the holder was
    // still running); a success means the holder finished early — legal,
    // just not the interesting schedule.
    EXPECT_EQ(result.status().code(), Status::Code::kDeadlineExceeded)
        << result.status().ToString();
  }

  // The headroom ledger fully drained: a fresh query is admitted at once.
  db.set_timeout_ms(0);
  EXPECT_TRUE(db.Query(kScanQuery).ok());
}

TEST(AdmissionTest, FootprintEstimateGrowsWithInput) {
  Database small = PointsDb(100);
  Database big = PointsDb(10000);
  const size_t small_est =
      small.Prepare(kScanQuery).value()->EstimateFootprintBytes();
  const size_t big_est =
      big.Prepare(kScanQuery).value()->EstimateFootprintBytes();
  EXPECT_GT(big_est, small_est);
}

}  // namespace
}  // namespace sgb::engine
