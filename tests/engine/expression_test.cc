#include "engine/expression.h"

#include <gtest/gtest.h>

namespace sgb::engine {
namespace {

Row SampleRow() {
  return {Value::Int(10), Value::Double(2.5), Value::Str("abc"),
          Value::Null()};
}

TEST(ExpressionTest, ColumnRefAndLiteral) {
  const auto col = MakeColumnRef(1, "b");
  EXPECT_DOUBLE_EQ(col->Evaluate(SampleRow()).AsDouble(), 2.5);
  const auto lit = MakeLiteral(Value::Int(42));
  EXPECT_EQ(lit->Evaluate(SampleRow()).AsInt(), 42);
}

TEST(ExpressionTest, IntegerArithmeticStaysIntegral) {
  const Value v = EvaluateBinary(BinaryOp::kAdd, Value::Int(2), Value::Int(3));
  EXPECT_EQ(v.type(), DataType::kInt64);
  EXPECT_EQ(v.AsInt(), 5);
  EXPECT_EQ(EvaluateBinary(BinaryOp::kMul, Value::Int(4), Value::Int(5)).AsInt(),
            20);
}

TEST(ExpressionTest, DivisionAlwaysDouble) {
  const Value v = EvaluateBinary(BinaryOp::kDiv, Value::Int(7), Value::Int(2));
  EXPECT_EQ(v.type(), DataType::kDouble);
  EXPECT_DOUBLE_EQ(v.AsDouble(), 3.5);
}

TEST(ExpressionTest, MixedArithmeticPromotes) {
  const Value v =
      EvaluateBinary(BinaryOp::kSub, Value::Int(5), Value::Double(0.5));
  EXPECT_EQ(v.type(), DataType::kDouble);
  EXPECT_DOUBLE_EQ(v.AsDouble(), 4.5);
}

TEST(ExpressionTest, NullPropagatesThroughArithmetic) {
  EXPECT_TRUE(
      EvaluateBinary(BinaryOp::kAdd, Value::Null(), Value::Int(1)).is_null());
  EXPECT_TRUE(
      EvaluateBinary(BinaryOp::kMul, Value::Int(2), Value::Null()).is_null());
}

TEST(ExpressionTest, ComparisonsWithNullAreFalse) {
  EXPECT_FALSE(
      EvaluateBinary(BinaryOp::kEq, Value::Null(), Value::Null()).ToBool());
  EXPECT_FALSE(
      EvaluateBinary(BinaryOp::kLt, Value::Null(), Value::Int(5)).ToBool());
}

TEST(ExpressionTest, ComparisonOperators) {
  EXPECT_TRUE(
      EvaluateBinary(BinaryOp::kLe, Value::Int(2), Value::Double(2.0))
          .ToBool());
  EXPECT_TRUE(EvaluateBinary(BinaryOp::kNe, Value::Int(2), Value::Int(3))
                  .ToBool());
  EXPECT_TRUE(EvaluateBinary(BinaryOp::kGt, Value::Str("b"), Value::Str("a"))
                  .ToBool());
}

TEST(ExpressionTest, LogicalOperators) {
  EXPECT_TRUE(EvaluateBinary(BinaryOp::kAnd, Value::Bool(true),
                             Value::Bool(true))
                  .ToBool());
  EXPECT_FALSE(EvaluateBinary(BinaryOp::kAnd, Value::Bool(true),
                              Value::Bool(false))
                   .ToBool());
  EXPECT_TRUE(EvaluateBinary(BinaryOp::kOr, Value::Bool(false),
                             Value::Bool(true))
                  .ToBool());
}

TEST(ExpressionTest, ComposedTree) {
  // (col0 + 5) * 2 > 29  -> (10+5)*2 = 30 > 29 -> true
  auto expr = MakeBinary(
      BinaryOp::kGt,
      MakeBinary(BinaryOp::kMul,
                 MakeBinary(BinaryOp::kAdd, MakeColumnRef(0, "a"),
                            MakeLiteral(Value::Int(5))),
                 MakeLiteral(Value::Int(2))),
      MakeLiteral(Value::Int(29)));
  EXPECT_TRUE(expr->Evaluate(SampleRow()).ToBool());
}

TEST(ExpressionTest, NotAndNegate) {
  EXPECT_FALSE(MakeNot(MakeLiteral(Value::Bool(true)))
                   ->Evaluate(SampleRow())
                   .ToBool());
  EXPECT_EQ(MakeNegate(MakeLiteral(Value::Int(7)))
                ->Evaluate(SampleRow())
                .AsInt(),
            -7);
  EXPECT_DOUBLE_EQ(MakeNegate(MakeLiteral(Value::Double(1.5)))
                       ->Evaluate(SampleRow())
                       .AsDouble(),
                   -1.5);
  EXPECT_TRUE(MakeNegate(MakeLiteral(Value::Str("x")))
                  ->Evaluate(SampleRow())
                  .is_null());
}

TEST(ExpressionTest, InSetProbe) {
  auto set = std::make_shared<ValueSet>();
  set->insert(Value::Int(10));
  set->insert(Value::Str("abc"));
  EXPECT_TRUE(MakeInSet(MakeColumnRef(0, "a"), set)
                  ->Evaluate(SampleRow())
                  .ToBool());
  EXPECT_TRUE(MakeInSet(MakeColumnRef(2, "c"), set)
                  ->Evaluate(SampleRow())
                  .ToBool());
  EXPECT_FALSE(MakeInSet(MakeColumnRef(1, "b"), set)
                   ->Evaluate(SampleRow())
                   .ToBool());
  // NULL probe is never in the set.
  EXPECT_FALSE(MakeInSet(MakeColumnRef(3, "d"), set)
                   ->Evaluate(SampleRow())
                   .ToBool());
}

TEST(ExpressionTest, ScalarFunctionResolution) {
  EXPECT_EQ(ScalarFunctionFromName("ABS").value(), ScalarFunction::kAbs);
  EXPECT_EQ(ScalarFunctionFromName("distance_l2").value(),
            ScalarFunction::kDistL2);
  EXPECT_EQ(ScalarFunctionFromName("ceiling").value(),
            ScalarFunction::kCeil);
  EXPECT_FALSE(ScalarFunctionFromName("nope").ok());
  EXPECT_EQ(ScalarFunctionArity(ScalarFunction::kDistLInf), 4u);
  EXPECT_EQ(ScalarFunctionArity(ScalarFunction::kSqrt), 1u);
}

TEST(ExpressionTest, ScalarFunctionEvaluation) {
  auto call1 = [](ScalarFunction fn, Value v) {
    std::vector<ExprPtr> args;
    args.push_back(MakeLiteral(std::move(v)));
    return MakeScalarCall(fn, std::move(args))->Evaluate({});
  };
  EXPECT_EQ(call1(ScalarFunction::kAbs, Value::Int(-5)).AsInt(), 5);
  EXPECT_DOUBLE_EQ(call1(ScalarFunction::kAbs, Value::Double(-2.5)).AsDouble(),
                   2.5);
  EXPECT_DOUBLE_EQ(call1(ScalarFunction::kSqrt, Value::Double(9)).AsDouble(),
                   3.0);
  EXPECT_TRUE(call1(ScalarFunction::kSqrt, Value::Double(-1)).is_null());
  EXPECT_TRUE(call1(ScalarFunction::kFloor, Value::Null()).is_null());
  EXPECT_DOUBLE_EQ(call1(ScalarFunction::kFloor, Value::Double(1.7)).AsDouble(),
                   1.0);
  EXPECT_DOUBLE_EQ(call1(ScalarFunction::kCeil, Value::Double(1.2)).AsDouble(),
                   2.0);
}

TEST(ExpressionTest, DistanceFunctions) {
  auto dist = [](ScalarFunction fn) {
    std::vector<ExprPtr> args;
    args.push_back(MakeLiteral(Value::Double(0)));
    args.push_back(MakeLiteral(Value::Double(0)));
    args.push_back(MakeLiteral(Value::Double(3)));
    args.push_back(MakeLiteral(Value::Double(4)));
    return MakeScalarCall(fn, std::move(args))->Evaluate({});
  };
  EXPECT_DOUBLE_EQ(dist(ScalarFunction::kDistL2).AsDouble(), 5.0);
  EXPECT_DOUBLE_EQ(dist(ScalarFunction::kDistLInf).AsDouble(), 4.0);
}

TEST(ExpressionTest, ToStringIsInformative) {
  auto expr = MakeBinary(BinaryOp::kAdd, MakeColumnRef(0, "x"),
                         MakeLiteral(Value::Int(1)));
  EXPECT_EQ(expr->ToString(), "(x + 1)");
}

}  // namespace
}  // namespace sgb::engine
