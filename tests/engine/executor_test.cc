#include "engine/executor.h"

#include <gtest/gtest.h>

#include <memory>

namespace sgb::engine {
namespace {

TablePtr TinyTable() {
  auto t = std::make_shared<Table>(Schema({
      Column{"x", DataType::kInt64, ""},
  }));
  EXPECT_TRUE(t->Append({Value::Int(1)}).ok());
  EXPECT_TRUE(t->Append({Value::Int(2)}).ok());
  return t;
}

TEST(DatabaseTest, QueryAndPrepareShareCatalog) {
  Database db;
  db.Register("t", TinyTable());
  auto result = db.Query("SELECT x FROM t ORDER BY x DESC");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows()[0][0].AsInt(), 2);

  auto plan = db.Prepare("SELECT x FROM t");
  ASSERT_TRUE(plan.ok());
  // Prepared plans are re-runnable.
  for (int round = 0; round < 2; ++round) {
    auto table = Materialize(*plan.value());
    ASSERT_TRUE(table.ok());
    EXPECT_EQ(table.value().NumRows(), 2u);
  }
}

TEST(DatabaseTest, ErrorsSurfaceWithCodes) {
  Database db;
  EXPECT_EQ(db.Query("SELECT x FROM nope").status().code(),
            Status::Code::kNotFound);
  EXPECT_EQ(db.Query("SELEC x").status().code(),
            Status::Code::kParseError);
  db.Register("t", TinyTable());
  EXPECT_EQ(db.Query("SELECT y FROM t").status().code(),
            Status::Code::kBindError);
}

TEST(DatabaseTest, ExplainMatchesPlanShape) {
  Database db;
  db.Register("t", TinyTable());
  auto plan = db.Explain("SELECT x FROM t WHERE x > 1 LIMIT 1");
  ASSERT_TRUE(plan.ok());
  // Top-down: Limit -> Project -> Filter -> TableScan.
  const std::string& s = plan.value();
  EXPECT_LT(s.find("Limit"), s.find("Project"));
  EXPECT_LT(s.find("Project"), s.find("Filter"));
  EXPECT_LT(s.find("Filter"), s.find("TableScan"));
}

TEST(DatabaseTest, RegisteringSameNameReplacesTable) {
  Database db;
  db.Register("t", TinyTable());
  auto bigger = std::make_shared<Table>(Schema({
      Column{"x", DataType::kInt64, ""},
  }));
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(bigger->Append({Value::Int(i)}).ok());
  }
  db.Register("t", bigger);
  auto result = db.Query("SELECT count(*) FROM t");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows()[0][0].AsInt(), 5);
}

}  // namespace
}  // namespace sgb::engine
