// Differential tests for the batch-at-a-time pipeline: driving a plan
// through NextBatch() must produce exactly the rows (values and order) of
// the row-at-a-time Next() loop, for every operator and for whole SGB
// queries across overlap clauses, metrics, and degrees of parallelism.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "engine/executor.h"
#include "engine/operators.h"
#include "obs/metrics.h"

namespace sgb::engine {
namespace {

Database PointsDb(size_t n, uint64_t seed) {
  Database db;
  auto pts = std::make_shared<Table>(Schema({
      Column{"x", DataType::kDouble, ""},
      Column{"y", DataType::kDouble, ""},
      Column{"w", DataType::kInt64, ""},
  }));
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    // Three loose clusters plus background noise: produces non-trivial
    // groups, overlaps, and eliminations at eps=1.5.
    const double cx = static_cast<double>(rng.NextBounded(3)) * 4.0;
    const double cy = static_cast<double>(rng.NextBounded(3)) * 4.0;
    EXPECT_TRUE(pts->Append({Value::Double(cx + rng.NextUniform(-1.2, 1.2)),
                             Value::Double(cy + rng.NextUniform(-1.2, 1.2)),
                             Value::Int(static_cast<int64_t>(i % 7))})
                    .ok());
  }
  db.Register("pts", pts);
  return db;
}

std::vector<Row> DrainRows(Operator& op) {
  op.Open();
  std::vector<Row> out;
  Row row;
  while (op.Next(&row)) out.push_back(std::move(row));
  return out;
}

std::vector<Row> DrainBatches(Operator& op, size_t capacity) {
  op.Open();
  std::vector<Row> out;
  RowBatch batch(capacity);
  while (op.NextBatch(&batch)) {
    for (Row& row : batch.rows()) out.push_back(std::move(row));
  }
  return out;
}

void ExpectSameRows(const std::vector<Row>& want,
                    const std::vector<Row>& got, const std::string& what) {
  ASSERT_EQ(want.size(), got.size()) << what;
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(want[i].size(), got[i].size()) << what << " row " << i;
    for (size_t c = 0; c < want[i].size(); ++c) {
      EXPECT_EQ(Value::Compare(want[i][c], got[i][c]), 0)
          << what << " row " << i << " col " << c << ": "
          << want[i][c].ToString() << " vs " << got[i][c].ToString();
    }
  }
}

/// Prepares `sql` twice against the same catalog and checks the row-driven
/// and batch-driven executions agree exactly.
void ExpectRowBatchEquivalence(const Database& db, const std::string& sql,
                               size_t capacity = RowBatch::kDefaultCapacity) {
  auto row_plan = db.Prepare(sql);
  ASSERT_TRUE(row_plan.ok()) << row_plan.status().ToString();
  auto batch_plan = db.Prepare(sql);
  ASSERT_TRUE(batch_plan.ok()) << batch_plan.status().ToString();
  const std::vector<Row> want = DrainRows(*row_plan.value());
  const std::vector<Row> got = DrainBatches(*batch_plan.value(), capacity);
  ExpectSameRows(want, got, sql + " [cap=" + std::to_string(capacity) + "]");
}

TEST(BatchPipelineTest, ScanFilterProjectEquivalence) {
  const Database db = PointsDb(500, 11);
  // Odd batch capacities exercise partial final batches and re-fill loops.
  for (const size_t cap : {1ul, 7ul, 64ul, 1024ul}) {
    ExpectRowBatchEquivalence(db, "SELECT x, y FROM pts", cap);
    ExpectRowBatchEquivalence(db, "SELECT x + y, w FROM pts WHERE x > 2.0",
                              cap);
    ExpectRowBatchEquivalence(
        db, "SELECT w, count(*) FROM pts GROUP BY w ORDER BY w", cap);
  }
}

TEST(BatchPipelineTest, SgbQueriesEquivalentAcrossClausesMetricsAndDop) {
  const Database db = PointsDb(300, 23);
  for (const char* metric : {"L2", "LINF"}) {
    for (const char* clause : {"JOIN-ANY", "ELIMINATE", "FORM-NEW-GROUP"}) {
      for (const int dop : {1, 4}) {
        const std::string sql =
            std::string("SELECT group_id, count(*), avg(x) FROM pts "
                        "GROUP BY x, y DISTANCE-TO-ALL ") +
            metric + " WITHIN 1.5 ON-OVERLAP " + clause + " PARALLEL " +
            std::to_string(dop);
        ExpectRowBatchEquivalence(db, sql);
      }
    }
  }
}

TEST(BatchPipelineTest, SgbAnyQueryEquivalence) {
  const Database db = PointsDb(300, 31);
  for (const int dop : {1, 4}) {
    ExpectRowBatchEquivalence(
        db, "SELECT group_id, count(*) FROM pts GROUP BY x, y "
            "DISTANCE-TO-ANY L2 WITHIN 3 PARALLEL " +
                std::to_string(dop));
  }
}

TEST(BatchPipelineTest, TableScanEmitsFullBatches) {
  const Database db = PointsDb(250, 5);
  auto plan = db.Prepare("SELECT x, y FROM pts");
  ASSERT_TRUE(plan.ok());
  Operator& scan = *plan.value();
  scan.Open();
  RowBatch batch(64);
  std::vector<size_t> sizes;
  while (scan.NextBatch(&batch)) sizes.push_back(batch.size());
  // 250 rows at capacity 64: three full batches plus a 58-row remainder.
  EXPECT_EQ(sizes, (std::vector<size_t>{64, 64, 64, 58}));
  EXPECT_EQ(scan.stats().batches, 4u);
  EXPECT_EQ(scan.stats().rows_produced, 250u);
}

TEST(BatchPipelineTest, BatchesBumpRegistryCounterAndExplainAnalyze) {
  auto& registry = obs::MetricsRegistry::Global();
  registry.Reset();
  const Database db = PointsDb(200, 3);
  // PARALLEL 2 routes grouping through the grid partitioner, whose
  // cell-vs-cell scans always run the block kernels.
  const auto analyzed = db.ExplainAnalyze(
      "SELECT group_id, count(*) FROM pts GROUP BY x, y "
      "DISTANCE-TO-ALL LINF WITHIN 1.5 ON-OVERLAP JOIN-ANY PARALLEL 2");
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  EXPECT_NE(analyzed.value().find("batches="), std::string::npos)
      << analyzed.value();
  EXPECT_NE(analyzed.value().find("batch_size="), std::string::npos)
      << analyzed.value();
  EXPECT_GT(registry.GetCounter("engine.batches").value(), 0u);
  // The SGB scans above also ran through the block kernels.
  EXPECT_GT(registry.GetCounter("sgb.kernel.invocations").value(), 0u);
  EXPECT_GT(registry.GetCounter("sgb.kernel.pairs").value(), 0u);
}

TEST(BatchPipelineTest, DefaultAdapterHonorsCapacityAndExhaustion) {
  // Sort has no native batch path: the default adapter loops NextImpl.
  const Database db = PointsDb(100, 17);
  auto plan = db.Prepare("SELECT x FROM pts ORDER BY x");
  ASSERT_TRUE(plan.ok());
  Operator& op = *plan.value();
  op.Open();
  RowBatch batch(32);
  size_t batches = 0;
  size_t rows = 0;
  double prev = -1e300;
  while (op.NextBatch(&batch)) {
    ++batches;
    EXPECT_LE(batch.size(), 32u);
    for (const Row& row : batch.rows()) {
      EXPECT_GE(row[0].ToDouble(), prev);
      prev = row[0].ToDouble();
      ++rows;
    }
  }
  EXPECT_EQ(batches, 4u);  // 100 rows / 32 = 3 full + 1 remainder
  EXPECT_EQ(rows, 100u);
  // Exhausted: further calls keep returning false with an empty batch.
  EXPECT_FALSE(op.NextBatch(&batch));
  EXPECT_TRUE(batch.empty());
}

}  // namespace
}  // namespace sgb::engine
