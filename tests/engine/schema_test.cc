#include "engine/schema.h"

#include <gtest/gtest.h>

#include "engine/catalog.h"
#include "engine/table.h"

namespace sgb::engine {
namespace {

Schema TwoTableSchema() {
  return Schema({Column{"id", DataType::kInt64, "a"},
                 Column{"v", DataType::kDouble, "a"},
                 Column{"id", DataType::kInt64, "b"},
                 Column{"w", DataType::kDouble, "b"}});
}

TEST(SchemaTest, QualifiedLookup) {
  const Schema s = TwoTableSchema();
  const auto a_id = s.Find("a", "id");
  EXPECT_EQ(a_id.outcome, Schema::LookupOutcome::kFound);
  EXPECT_EQ(a_id.index, 0u);
  const auto b_id = s.Find("b", "id");
  EXPECT_EQ(b_id.index, 2u);
}

TEST(SchemaTest, BareNameAmbiguity) {
  const Schema s = TwoTableSchema();
  EXPECT_EQ(s.Find("", "id").outcome, Schema::LookupOutcome::kAmbiguous);
  EXPECT_EQ(s.Find("", "v").outcome, Schema::LookupOutcome::kFound);
  EXPECT_EQ(s.Find("", "missing").outcome, Schema::LookupOutcome::kNotFound);
  EXPECT_EQ(s.Find("c", "id").outcome, Schema::LookupOutcome::kNotFound);
}

TEST(SchemaTest, ConcatAndRequalify) {
  const Schema left({Column{"x", DataType::kInt64, "l"}});
  const Schema right({Column{"y", DataType::kInt64, "r"}});
  const Schema joined = Schema::Concat(left, right);
  ASSERT_EQ(joined.size(), 2u);
  EXPECT_EQ(joined.column(0).qualifier, "l");
  EXPECT_EQ(joined.column(1).qualifier, "r");

  const Schema renamed = joined.WithQualifier("sub");
  EXPECT_EQ(renamed.column(0).qualifier, "sub");
  EXPECT_EQ(renamed.column(1).qualifier, "sub");
}

TEST(SchemaTest, ToStringListsQualifiedColumns) {
  const Schema s({Column{"id", DataType::kInt64, "t"},
                  Column{"v", DataType::kDouble, ""}});
  const std::string rendered = s.ToString();
  EXPECT_NE(rendered.find("t.id INT64"), std::string::npos);
  EXPECT_NE(rendered.find("v DOUBLE"), std::string::npos);
}

TEST(TableTest, AppendChecksArity) {
  Table t(Schema({Column{"x", DataType::kInt64, ""}}));
  EXPECT_TRUE(t.Append({Value::Int(1)}).ok());
  EXPECT_FALSE(t.Append({Value::Int(1), Value::Int(2)}).ok());
  EXPECT_EQ(t.NumRows(), 1u);
}

TEST(TableTest, ToStringRendersGrid) {
  Table t(Schema({Column{"x", DataType::kInt64, ""},
                  Column{"name", DataType::kString, ""}}));
  ASSERT_TRUE(t.Append({Value::Int(1), Value::Str("alpha")}).ok());
  const std::string rendered = t.ToString();
  EXPECT_NE(rendered.find("alpha"), std::string::npos);
  EXPECT_NE(rendered.find("name"), std::string::npos);
}

TEST(CatalogTest, RegisterAndLookup) {
  Catalog catalog;
  auto t = std::make_shared<Table>(
      Schema({Column{"x", DataType::kInt64, ""}}));
  catalog.Register("MyTable", t);
  EXPECT_TRUE(catalog.Contains("mytable"));
  EXPECT_TRUE(catalog.Contains("MYTABLE"));
  EXPECT_TRUE(catalog.Get("myTABLE").ok());
  EXPECT_FALSE(catalog.Get("other").ok());
  EXPECT_EQ(catalog.Get("other").status().code(),
            Status::Code::kNotFound);
  EXPECT_EQ(catalog.TableNames().size(), 1u);
}

}  // namespace
}  // namespace sgb::engine
