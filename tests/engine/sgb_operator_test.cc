#include "engine/sgb_operator.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>

namespace sgb::engine {
namespace {

/// The GPSPoints table of the paper's Example 1/2 (Figure 2 layout).
TablePtr GpsPoints() {
  auto t = std::make_shared<Table>(Schema({
      Column{"lat", DataType::kDouble, ""},
      Column{"lon", DataType::kDouble, ""},
      Column{"device", DataType::kInt64, ""},
  }));
  const double coords[][2] = {{3, 6}, {4, 7}, {8, 6}, {9, 7}, {6, 6.5}};
  int64_t id = 1;
  for (const auto& c : coords) {
    EXPECT_TRUE(t->Append({Value::Double(c[0]), Value::Double(c[1]),
                           Value::Int(id++)})
                    .ok());
  }
  return t;
}

std::vector<AggregateSpec> CountStar() {
  std::vector<AggregateSpec> aggs;
  AggregateSpec spec;
  spec.kind = AggregateKind::kCountStar;
  spec.output_name = "count(*)";
  aggs.push_back(std::move(spec));
  return aggs;
}

Table RunPlan(OperatorPtr op) {
  auto result = Materialize(*op);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

std::multiset<int64_t> Counts(const Table& table, size_t col = 1) {
  std::multiset<int64_t> out;
  for (const Row& row : table.rows()) out.insert(row[col].AsInt());
  return out;
}

TEST(SgbOperatorTest, Example1JoinAny) {
  core::SgbAllOptions options;
  options.epsilon = 3;
  options.metric = geom::Metric::kLInf;
  options.on_overlap = core::OverlapClause::kJoinAny;
  auto op = MakeSimilarityGroupBy(MakeTableScan(GpsPoints()),
                                  MakeColumnRef(0, "lat"),
                                  MakeColumnRef(1, "lon"), options,
                                  CountStar());
  EXPECT_EQ(op->name(), "SimilarityGroupByAll");
  const Table out = RunPlan(std::move(op));
  EXPECT_EQ(Counts(out), (std::multiset<int64_t>{2, 3}));
}

TEST(SgbOperatorTest, Example1Eliminate) {
  core::SgbAllOptions options;
  options.epsilon = 3;
  options.metric = geom::Metric::kLInf;
  options.on_overlap = core::OverlapClause::kEliminate;
  const Table out = RunPlan(MakeSimilarityGroupBy(
      MakeTableScan(GpsPoints()), MakeColumnRef(0, "lat"),
      MakeColumnRef(1, "lon"), options, CountStar()));
  EXPECT_EQ(Counts(out), (std::multiset<int64_t>{2, 2}));
}

TEST(SgbOperatorTest, Example2AnyMergesAll) {
  core::SgbAnyOptions options;
  options.epsilon = 3;
  options.metric = geom::Metric::kLInf;
  const Table out = RunPlan(MakeSimilarityGroupBy(
      MakeTableScan(GpsPoints()), MakeColumnRef(0, "lat"),
      MakeColumnRef(1, "lon"), options, CountStar()));
  EXPECT_EQ(Counts(out), (std::multiset<int64_t>{5}));
}

TEST(SgbOperatorTest, NullGroupingAttributesAreSkipped) {
  auto t = std::make_shared<Table>(Schema({
      Column{"x", DataType::kDouble, ""},
      Column{"y", DataType::kDouble, ""},
  }));
  ASSERT_TRUE(t->Append({Value::Double(0), Value::Double(0)}).ok());
  ASSERT_TRUE(t->Append({Value::Null(), Value::Double(0)}).ok());
  ASSERT_TRUE(t->Append({Value::Double(0.1), Value::Double(0)}).ok());
  core::SgbAnyOptions options;
  options.epsilon = 1;
  const Table out = RunPlan(MakeSimilarityGroupBy(
      MakeTableScan(t), MakeColumnRef(0, "x"), MakeColumnRef(1, "y"),
      options, CountStar()));
  ASSERT_EQ(out.NumRows(), 1u);
  EXPECT_EQ(out.rows()[0][1].AsInt(), 2);  // the NULL row is in no group
}

TEST(SgbOperatorTest, AggregatesEvaluatePerGroup) {
  core::SgbAllOptions options;
  options.epsilon = 3;
  options.metric = geom::Metric::kLInf;
  options.on_overlap = core::OverlapClause::kEliminate;
  std::vector<AggregateSpec> aggs;
  AggregateSpec list;
  list.kind = AggregateKind::kArrayAgg;
  list.args.push_back(MakeColumnRef(2, "device"));
  list.output_name = "ids";
  aggs.push_back(std::move(list));
  const Table out = RunPlan(MakeSimilarityGroupBy(
      MakeTableScan(GpsPoints()), MakeColumnRef(0, "lat"),
      MakeColumnRef(1, "lon"), options, std::move(aggs)));
  ASSERT_EQ(out.NumRows(), 2u);
  EXPECT_EQ(out.rows()[0][1].AsString(), "{1,2}");
  EXPECT_EQ(out.rows()[1][1].AsString(), "{3,4}");
}

TEST(SgbOperator1dTest, UnsupervisedSegments) {
  auto t = std::make_shared<Table>(
      Schema({Column{"v", DataType::kDouble, ""}}));
  for (const double v : {10.0, 11.0, 25.0, 26.0}) {
    ASSERT_TRUE(t->Append({Value::Double(v)}).ok());
  }
  Sgb1dMode mode = Sgb1dUnsupervised{2.0, std::nullopt};
  const Table out = RunPlan(MakeSimilarityGroupBy1d(
      MakeTableScan(t), MakeColumnRef(0, "v"), std::move(mode), CountStar()));
  EXPECT_EQ(Counts(out), (std::multiset<int64_t>{2, 2}));
}

TEST(SgbOperator1dTest, AroundCenters) {
  auto t = std::make_shared<Table>(
      Schema({Column{"v", DataType::kDouble, ""}}));
  for (const double v : {1.0, 9.0, 11.0, 100.0}) {
    ASSERT_TRUE(t->Append({Value::Double(v)}).ok());
  }
  Sgb1dMode mode = Sgb1dAround{{0.0, 10.0}, 6.0, std::nullopt};
  const Table out = RunPlan(MakeSimilarityGroupBy1d(
      MakeTableScan(t), MakeColumnRef(0, "v"), std::move(mode), CountStar()));
  // 1 -> center 0; 9, 11 -> center 10; 100 -> ungrouped.
  EXPECT_EQ(Counts(out), (std::multiset<int64_t>{1, 2}));
}

TEST(SgbOperator1dTest, DelimitedSegments) {
  auto t = std::make_shared<Table>(
      Schema({Column{"v", DataType::kDouble, ""}}));
  for (const double v : {1.0, 5.0, 20.0}) {
    ASSERT_TRUE(t->Append({Value::Double(v)}).ok());
  }
  Sgb1dMode mode = Sgb1dDelimited{{10.0}};
  const Table out = RunPlan(MakeSimilarityGroupBy1d(
      MakeTableScan(t), MakeColumnRef(0, "v"), std::move(mode), CountStar()));
  EXPECT_EQ(Counts(out), (std::multiset<int64_t>{1, 2}));
}

}  // namespace
}  // namespace sgb::engine
