#include "engine/csv.h"

#include <gtest/gtest.h>

namespace sgb::engine {
namespace {

TEST(CsvTest, HeaderAndTypeInference) {
  const auto table = ReadCsvFromString(
      "id,score,name\n"
      "1,2.5,ann\n"
      "2,3,bob\n");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  const Table& t = *table.value();
  ASSERT_EQ(t.schema().size(), 3u);
  EXPECT_EQ(t.schema().column(0).name, "id");
  EXPECT_EQ(t.schema().column(0).type, DataType::kInt64);
  EXPECT_EQ(t.schema().column(1).type, DataType::kDouble);
  EXPECT_EQ(t.schema().column(2).type, DataType::kString);
  ASSERT_EQ(t.NumRows(), 2u);
  EXPECT_EQ(t.rows()[0][0].AsInt(), 1);
  EXPECT_DOUBLE_EQ(t.rows()[1][1].AsDouble(), 3.0);
  EXPECT_EQ(t.rows()[1][2].AsString(), "bob");
}

TEST(CsvTest, NoHeaderNamesColumns) {
  const auto table = ReadCsvFromString("1,2\n3,4\n",
                                       CsvOptions{',', /*has_header=*/false});
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table.value()->schema().column(0).name, "c0");
  EXPECT_EQ(table.value()->NumRows(), 2u);
}

TEST(CsvTest, EmptyCellsBecomeNull) {
  const auto table = ReadCsvFromString("a,b\n1,\n,2\n");
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(table.value()->rows()[0][1].is_null());
  EXPECT_TRUE(table.value()->rows()[1][0].is_null());
  EXPECT_EQ(table.value()->rows()[1][1].AsInt(), 2);
}

TEST(CsvTest, QuotedFields) {
  const auto table = ReadCsvFromString(
      "name,notes\n"
      "\"smith, john\",\"said \"\"hi\"\"\"\n");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table.value()->rows()[0][0].AsString(), "smith, john");
  EXPECT_EQ(table.value()->rows()[0][1].AsString(), "said \"hi\"");
}

TEST(CsvTest, CrlfAndTrailingNewlineHandled) {
  const auto table = ReadCsvFromString("a\r\n1\r\n2\r\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table.value()->NumRows(), 2u);
}

TEST(CsvTest, RaggedRowIsError) {
  EXPECT_FALSE(ReadCsvFromString("a,b\n1\n").ok());
}

TEST(CsvTest, UnterminatedQuoteIsError) {
  EXPECT_FALSE(ReadCsvFromString("a\n\"oops\n").ok());
}

TEST(CsvTest, EmptyInputIsError) {
  EXPECT_FALSE(ReadCsvFromString("").ok());
}

TEST(CsvTest, RoundTrip) {
  Table t(Schema({Column{"k", DataType::kString, ""},
                  Column{"v", DataType::kInt64, ""}}));
  ASSERT_TRUE(t.Append({Value::Str("x,y"), Value::Int(1)}).ok());
  ASSERT_TRUE(t.Append({Value::Null(), Value::Int(2)}).ok());
  const std::string csv = WriteCsvToString(t);
  const auto back = ReadCsvFromString(csv);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back.value()->NumRows(), 2u);
  EXPECT_EQ(back.value()->rows()[0][0].AsString(), "x,y");
  EXPECT_TRUE(back.value()->rows()[1][0].is_null());
  EXPECT_EQ(back.value()->rows()[1][1].AsInt(), 2);
}

TEST(CsvTest, FileRoundTrip) {
  Table t(Schema({Column{"v", DataType::kDouble, ""}}));
  ASSERT_TRUE(t.Append({Value::Double(1.5)}).ok());
  const std::string path = ::testing::TempDir() + "/sgb_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(t, path).ok());
  const auto back = ReadCsvFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_DOUBLE_EQ(back.value()->rows()[0][0].AsDouble(), 1.5);
  EXPECT_FALSE(ReadCsvFile("/nonexistent/definitely.csv").ok());
}

}  // namespace
}  // namespace sgb::engine
