#include "engine/csv.h"

#include <gtest/gtest.h>

namespace sgb::engine {
namespace {

TEST(CsvTest, HeaderAndTypeInference) {
  const auto table = ReadCsvFromString(
      "id,score,name\n"
      "1,2.5,ann\n"
      "2,3,bob\n");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  const Table& t = *table.value();
  ASSERT_EQ(t.schema().size(), 3u);
  EXPECT_EQ(t.schema().column(0).name, "id");
  EXPECT_EQ(t.schema().column(0).type, DataType::kInt64);
  EXPECT_EQ(t.schema().column(1).type, DataType::kDouble);
  EXPECT_EQ(t.schema().column(2).type, DataType::kString);
  ASSERT_EQ(t.NumRows(), 2u);
  EXPECT_EQ(t.rows()[0][0].AsInt(), 1);
  EXPECT_DOUBLE_EQ(t.rows()[1][1].AsDouble(), 3.0);
  EXPECT_EQ(t.rows()[1][2].AsString(), "bob");
}

TEST(CsvTest, NoHeaderNamesColumns) {
  const auto table = ReadCsvFromString("1,2\n3,4\n",
                                       CsvOptions{',', /*has_header=*/false});
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table.value()->schema().column(0).name, "c0");
  EXPECT_EQ(table.value()->NumRows(), 2u);
}

TEST(CsvTest, EmptyCellsBecomeNull) {
  const auto table = ReadCsvFromString("a,b\n1,\n,2\n");
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(table.value()->rows()[0][1].is_null());
  EXPECT_TRUE(table.value()->rows()[1][0].is_null());
  EXPECT_EQ(table.value()->rows()[1][1].AsInt(), 2);
}

TEST(CsvTest, QuotedFields) {
  const auto table = ReadCsvFromString(
      "name,notes\n"
      "\"smith, john\",\"said \"\"hi\"\"\"\n");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table.value()->rows()[0][0].AsString(), "smith, john");
  EXPECT_EQ(table.value()->rows()[0][1].AsString(), "said \"hi\"");
}

TEST(CsvTest, CrlfAndTrailingNewlineHandled) {
  const auto table = ReadCsvFromString("a\r\n1\r\n2\r\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table.value()->NumRows(), 2u);
}

TEST(CsvTest, RaggedRowIsError) {
  EXPECT_FALSE(ReadCsvFromString("a,b\n1\n").ok());
}

TEST(CsvTest, RaggedRowErrorNamesLineAndArity) {
  // Line 3 (header is line 1) is short by one cell; the error pinpoints it.
  auto result = ReadCsvFromString("a,b\n1,2\n3\n4,5\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kInvalidArgument);
  const std::string& message = result.status().message();
  EXPECT_NE(message.find("line 3"), std::string::npos) << message;
  EXPECT_NE(message.find("1 cells"), std::string::npos) << message;
  EXPECT_NE(message.find("expected 2"), std::string::npos) << message;
}

TEST(CsvTest, UnterminatedQuoteIsError) {
  EXPECT_FALSE(ReadCsvFromString("a\n\"oops\n").ok());
}

TEST(CsvTest, UnterminatedQuoteErrorNamesOpeningLine) {
  // The quote opens on line 2 and swallows the rest of the input; the
  // error must name line 2, not the last line scanned.
  auto result = ReadCsvFromString("a\n\"never closed\nmore\nlines\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos)
      << result.status().ToString();
}

TEST(CsvTest, EmptyInputIsError) {
  auto result = ReadCsvFromString("");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kInvalidArgument);
  EXPECT_NE(result.status().message().find("empty"), std::string::npos);
}

TEST(CsvTest, HeaderOnlyInputYieldsEmptyTableWithSchema) {
  const auto table = ReadCsvFromString("id,name\n");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table.value()->NumRows(), 0u);
  ASSERT_EQ(table.value()->schema().size(), 2u);
  EXPECT_EQ(table.value()->schema().column(0).name, "id");
  EXPECT_EQ(table.value()->schema().column(1).name, "name");
}

TEST(CsvTest, HeaderOnlyWithoutTrailingNewlineAlsoWorks) {
  const auto table = ReadCsvFromString("id,name");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table.value()->NumRows(), 0u);
}

TEST(CsvTest, OverlongLineIsRejectedWithLineNumber) {
  CsvOptions options;
  options.max_line_bytes = 16;
  const std::string long_line(64, 'x');
  auto result = ReadCsvFromString("a\nok\n" + long_line + "\n", options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kInvalidArgument);
  const std::string& message = result.status().message();
  EXPECT_NE(message.find("line 3"), std::string::npos) << message;
  EXPECT_NE(message.find("16-byte"), std::string::npos) << message;
}

TEST(CsvTest, NoNewlineAtAllHitsLineLimitNotOom) {
  // A hostile "one giant line" input fails fast at the limit instead of
  // accumulating the whole file into a single cell.
  CsvOptions options;
  options.max_line_bytes = 1024;
  const std::string giant(8192, 'z');
  auto result = ReadCsvFromString(giant, options);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 1"), std::string::npos);
}

TEST(CsvTest, ZeroLineLimitMeansUnlimited) {
  CsvOptions options;
  options.max_line_bytes = 0;
  const std::string wide = "a\n" + std::string(1 << 16, 'y') + "\n";
  ASSERT_TRUE(ReadCsvFromString(wide, options).ok());
}

TEST(CsvTest, QuotedNewlinesSpanLinesAndKeepLineAccounting) {
  // The quoted cell swallows a newline, so the row after it sits on line 4;
  // a ragged row there must still be reported as line 4.
  const auto table = ReadCsvFromString("a,b\n\"line1\nline2\",x\n");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table.value()->rows()[0][0].AsString(), "line1\nline2");

  auto ragged = ReadCsvFromString("a,b\n\"line1\nline2\",x\nonly_one\n");
  ASSERT_FALSE(ragged.ok());
  EXPECT_NE(ragged.status().message().find("line 4"), std::string::npos)
      << ragged.status().ToString();
}

TEST(CsvTest, CrlfQuotedAndRaggedInteract) {
  // CRLF terminators with quoted delimiters: 2 data rows, quotes honored.
  const auto table = ReadCsvFromString(
      "name,score\r\n\"a,b\",1\r\n\"c\",2\r\n");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  ASSERT_EQ(table.value()->NumRows(), 2u);
  EXPECT_EQ(table.value()->rows()[0][0].AsString(), "a,b");
  EXPECT_EQ(table.value()->rows()[1][1].AsInt(), 2);
}

TEST(CsvTest, RoundTrip) {
  Table t(Schema({Column{"k", DataType::kString, ""},
                  Column{"v", DataType::kInt64, ""}}));
  ASSERT_TRUE(t.Append({Value::Str("x,y"), Value::Int(1)}).ok());
  ASSERT_TRUE(t.Append({Value::Null(), Value::Int(2)}).ok());
  const std::string csv = WriteCsvToString(t);
  const auto back = ReadCsvFromString(csv);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back.value()->NumRows(), 2u);
  EXPECT_EQ(back.value()->rows()[0][0].AsString(), "x,y");
  EXPECT_TRUE(back.value()->rows()[1][0].is_null());
  EXPECT_EQ(back.value()->rows()[1][1].AsInt(), 2);
}

TEST(CsvTest, FileRoundTrip) {
  Table t(Schema({Column{"v", DataType::kDouble, ""}}));
  ASSERT_TRUE(t.Append({Value::Double(1.5)}).ok());
  const std::string path = ::testing::TempDir() + "/sgb_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(t, path).ok());
  const auto back = ReadCsvFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_DOUBLE_EQ(back.value()->rows()[0][0].AsDouble(), 1.5);
  EXPECT_FALSE(ReadCsvFile("/nonexistent/definitely.csv").ok());
}

}  // namespace
}  // namespace sgb::engine
