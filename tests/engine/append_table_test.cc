// Tests for DDL-created append-only tables (docs/SERVER.md "Snapshot
// semantics"): CREATE/INSERT/DROP through SQL, validation and coercion,
// snapshot pinning at scan open, and statement-atomic visibility under
// concurrent writers.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/append_table.h"
#include "engine/executor.h"

namespace sgb::engine {
namespace {

TEST(AppendTableTest, CreateInsertSelectRoundTrip) {
  Database db;
  ASSERT_TRUE(
      db.Query("CREATE TABLE readings (id INT, temp DOUBLE, site TEXT)")
          .ok());
  ASSERT_TRUE(db.Query("INSERT INTO readings VALUES "
                       "(1, 20.5, 'north'), (2, 21.0, 'south')")
                  .ok());
  auto result =
      db.Query("SELECT id, temp, site FROM readings ORDER BY id");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().NumRows(), 2u);
  EXPECT_EQ(result.value().rows()[0][2].AsString(), "north");
  EXPECT_DOUBLE_EQ(result.value().rows()[1][1].AsDouble(), 21.0);
}

TEST(AppendTableTest, InsertCoercesIntLiteralsIntoDoubleColumns) {
  Database db;
  ASSERT_TRUE(db.Query("CREATE TABLE m (v DOUBLE)").ok());
  ASSERT_TRUE(db.Query("INSERT INTO m VALUES (3)").ok());
  auto result = db.Query("SELECT v FROM m");
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.value().rows()[0][0].AsDouble(), 3.0);
}

TEST(AppendTableTest, InsertValidatesArityAndTypes) {
  Database db;
  ASSERT_TRUE(db.Query("CREATE TABLE typed (a INT, b TEXT)").ok());
  EXPECT_FALSE(db.Query("INSERT INTO typed VALUES (1)").ok());
  EXPECT_FALSE(db.Query("INSERT INTO typed VALUES (1, 'x', 2)").ok());
  EXPECT_FALSE(db.Query("INSERT INTO typed VALUES ('str', 'x')").ok());
  // A failed INSERT publishes nothing.
  auto count = db.Query("SELECT count(*) FROM typed");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.value().rows()[0][0].AsInt(), 0);
}

TEST(AppendTableTest, DdlErrorsAndIfClauses) {
  Database db;
  ASSERT_TRUE(db.Query("CREATE TABLE t1 (v INT)").ok());
  EXPECT_FALSE(db.Query("CREATE TABLE t1 (v INT)").ok());
  EXPECT_TRUE(db.Query("CREATE TABLE IF NOT EXISTS t1 (v INT)").ok());

  EXPECT_EQ(db.Query("INSERT INTO ghost VALUES (1)").status().code(),
            Status::Code::kNotFound);
  EXPECT_FALSE(db.Query("DROP TABLE ghost").ok());
  EXPECT_TRUE(db.Query("DROP TABLE IF EXISTS ghost").ok());
  EXPECT_TRUE(db.Query("DROP TABLE t1").ok());
  EXPECT_FALSE(db.Query("SELECT count(*) FROM t1").ok());
}

TEST(AppendTableTest, InsertIntoRegisteredTableIsRejected) {
  Database db;
  auto fixed = std::make_shared<Table>(Schema({
      Column{"v", DataType::kInt64, ""},
  }));
  ASSERT_TRUE(fixed->Append({Value::Int(1)}).ok());
  db.Register("fixed", fixed);
  auto insert = db.Query("INSERT INTO fixed VALUES (2)");
  ASSERT_FALSE(insert.ok());
  EXPECT_EQ(insert.status().code(), Status::Code::kInvalidArgument);
}

TEST(AppendTableTest, AppearsInSystemTablesAsAppendable) {
  Database db;
  ASSERT_TRUE(db.Query("CREATE TABLE logs (line TEXT)").ok());
  ASSERT_TRUE(db.Query("INSERT INTO logs VALUES ('a'), ('b')").ok());
  auto result = db.Query(
      "SELECT name, kind, rows FROM system.tables WHERE name = 'logs'");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().NumRows(), 1u);
  EXPECT_EQ(result.value().rows()[0][1].AsString(), "appendable");
  EXPECT_EQ(result.value().rows()[0][2].AsInt(), 2);
}

TEST(AppendTableTest, ScanPinsItsSnapshotAtOpen) {
  Database db;
  ASSERT_TRUE(db.Query("CREATE TABLE feed (v INT)").ok());
  ASSERT_TRUE(db.Query("INSERT INTO feed VALUES (1), (2)").ok());

  AppendTablePtr table = db.catalog().FindAppendable("feed");
  ASSERT_NE(table, nullptr);
  OperatorPtr scan = MakeAppendScan(table, "");
  scan->Open();

  // Rows appended after Open are invisible to this scan...
  ASSERT_TRUE(db.Query("INSERT INTO feed VALUES (3)").ok());
  Row row;
  size_t scanned = 0;
  while (scan->Next(&row)) ++scanned;
  EXPECT_EQ(scanned, 2u);

  // ...but re-opening the same plan pins a fresh snapshot.
  scan->Open();
  scanned = 0;
  while (scan->Next(&row)) ++scanned;
  EXPECT_EQ(scanned, 3u);
}

TEST(AppendTableTest, ConcurrentReadersSeeOnlyWholeInserts) {
  Database db;
  ASSERT_TRUE(db.Query("CREATE TABLE stream (v INT)").ok());

  // One writer appends 10-row statements; readers must only ever observe
  // multiples of 10 (INSERT is statement-atomic) and a non-decreasing
  // count (snapshots never travel backwards within a session's view).
  constexpr int kBatches = 50;
  std::atomic<bool> failed{false};
  std::thread writer([&] {
    for (int i = 0; i < kBatches; ++i) {
      std::string sql = "INSERT INTO stream VALUES ";
      for (int j = 0; j < 10; ++j) {
        if (j > 0) sql += ", ";
        sql += "(" + std::to_string(i * 10 + j) + ")";
      }
      if (!db.Query(sql).ok()) failed.store(true);
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&db, &failed] {
      SessionPtr session = db.CreateSession("test:reader");
      int64_t last = 0;
      for (int i = 0; i < 40; ++i) {
        auto result = db.Query(*session, "SELECT count(*) FROM stream");
        if (!result.ok()) {
          failed.store(true);
          return;
        }
        const int64_t count = result.value().rows()[0][0].AsInt();
        if (count % 10 != 0 || count < last) failed.store(true);
        last = count;
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  ASSERT_FALSE(failed.load());
  auto final_count = db.Query("SELECT count(*) FROM stream");
  ASSERT_TRUE(final_count.ok());
  EXPECT_EQ(final_count.value().rows()[0][0].AsInt(), kBatches * 10);
}

}  // namespace
}  // namespace sgb::engine
