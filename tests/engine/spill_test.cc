// Out-of-core execution tests (docs/ROBUSTNESS.md "Spill-to-disk"): the row
// codec round-trips every value shape bit-exactly, SpillFile never leaks a
// temp file (success, fault, or abort), recursive repartitioning terminates
// on pathological keys, and — the acceptance bar — queries that fail with
// ResourceExhausted under a budget complete with `SET spill = 1` producing
// results identical to the unbudgeted run.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/random.h"
#include "engine/executor.h"
#include "engine/spill.h"
#include "obs/metrics.h"

namespace sgb::engine {
namespace {

// ---- Row codec ----------------------------------------------------------

uint64_t Bits(double v) { return std::bit_cast<uint64_t>(v); }

TEST(SpillCodecTest, RoundTripPreservesEveryValueShape) {
  const double quiet_nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const Row original{
      Value::Null(),
      Value::Int(0),
      Value::Int(std::numeric_limits<int64_t>::min()),
      Value::Int(std::numeric_limits<int64_t>::max()),
      Value::Double(0.0),
      Value::Double(-0.0),
      Value::Double(quiet_nan),
      Value::Double(inf),
      Value::Double(-inf),
      Value::Double(1.0 / 3.0),
      Value::Str(""),
      Value::Str(std::string(3000, 'q')),
      Value::Str(std::string("nul\0byte", 8)),
  };

  std::string buffer;
  EncodeRow(original, &buffer);
  Row decoded;
  size_t offset = 0;
  ASSERT_TRUE(DecodeRow(buffer.data(), buffer.size(), &offset, &decoded).ok());
  EXPECT_EQ(offset, buffer.size());

  ASSERT_EQ(decoded.size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    SCOPED_TRACE(i);
    ASSERT_EQ(decoded[i].type(), original[i].type());
    switch (original[i].type()) {
      case DataType::kNull:
        break;
      case DataType::kInt64:
        EXPECT_EQ(decoded[i].AsInt(), original[i].AsInt());
        break;
      case DataType::kDouble:
        // Bit-exact: NaN payloads and signed zero survive the trip.
        EXPECT_EQ(Bits(decoded[i].AsDouble()), Bits(original[i].AsDouble()));
        break;
      case DataType::kString:
        EXPECT_EQ(decoded[i].AsString(), original[i].AsString());
        break;
    }
  }
}

TEST(SpillCodecTest, DecodeRejectsTruncatedBuffers) {
  std::string buffer;
  EncodeRow(Row{Value::Int(42), Value::Str("payload")}, &buffer);
  // Every proper prefix must fail cleanly, never read past the end.
  for (size_t len = 0; len < buffer.size(); ++len) {
    Row row;
    size_t offset = 0;
    EXPECT_FALSE(DecodeRow(buffer.data(), len, &offset, &row).ok()) << len;
  }
}

// ---- SpillFile lifecycle ------------------------------------------------

TEST(SpillFileTest, WriteReadAcrossBufferBoundaries) {
  const uint64_t live_before = SpillFile::LiveFileCount();
  std::string path;
  {
    auto file = SpillFile::Create("");
    ASSERT_TRUE(file.ok()) << file.status().ToString();
    path = file.value()->path();
    EXPECT_EQ(SpillFile::LiveFileCount(), live_before + 1);

    // ~2000 rows x ~200B comfortably straddles the 64 kB I/O buffer, so
    // rows split across refills are exercised.
    Rng rng(11);
    std::vector<Row> written;
    for (int i = 0; i < 2000; ++i) {
      written.push_back(Row{
          Value::Int(i),
          Value::Double(rng.NextDouble()),
          Value::Str(std::string(150 + static_cast<size_t>(i % 97), 'p')),
      });
      ASSERT_TRUE(file.value()->Append(written.back()).ok());
    }
    ASSERT_TRUE(file.value()->FinishWrites().ok());
    EXPECT_EQ(file.value()->rows(), written.size());
    EXPECT_GT(file.value()->bytes(), size_t{64} * 1024);

    // Two full passes: Rewind replays from the top.
    for (int pass = 0; pass < 2; ++pass) {
      if (pass > 0) {
        ASSERT_TRUE(file.value()->Rewind().ok());
      }
      size_t n = 0;
      Row row;
      while (true) {
        auto more = file.value()->Next(&row);
        ASSERT_TRUE(more.ok()) << more.status().ToString();
        if (!more.value()) break;
        ASSERT_LT(n, written.size());
        EXPECT_EQ(row, written[n]);
        ++n;
      }
      EXPECT_EQ(n, written.size());
    }
  }
  // Destruction unlinks the temp file and drops the live count.
  EXPECT_EQ(SpillFile::LiveFileCount(), live_before);
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(SpillFileTest, MidWriteFaultLeavesNoOrphanTempFiles) {
  FaultRegistry::Global().Reset();
  const uint64_t live_before = SpillFile::LiveFileCount();
  std::string path;
  {
    auto file = SpillFile::Create("");
    ASSERT_TRUE(file.ok());
    path = file.value()->path();
    FaultRegistry::Global().ArmNthHit("engine.spill.write", 1);
    Status status = file.value()->Append(Row{Value::Int(1)});
    if (status.ok()) status = file.value()->FinishWrites();
    EXPECT_EQ(status.code(), Status::Code::kIoError) << status.ToString();
  }
  FaultRegistry::Global().Reset();
  EXPECT_EQ(SpillFile::LiveFileCount(), live_before);
  EXPECT_FALSE(std::filesystem::exists(path));
}

// ---- Partitioning -------------------------------------------------------

TEST(SpillPartitionSetTest, PartitionOfIsLevelSalted) {
  // Hashes that collide modulo the fanout at one level must spread at
  // another — that is what makes recursive repartitioning productive.
  const size_t fanout = 8;
  bool some_level_differs = false;
  for (uint64_t h = 1; h <= 64; ++h) {
    const size_t p0 = SpillPartitionSet::PartitionOf(h, 0, fanout);
    EXPECT_LT(p0, fanout);
    for (int level = 1; level <= 6; ++level) {
      const size_t pl = SpillPartitionSet::PartitionOf(h, level, fanout);
      EXPECT_LT(pl, fanout);
      some_level_differs |= pl != p0;
    }
    // Deterministic: same (hash, level) always lands in the same bucket.
    EXPECT_EQ(p0, SpillPartitionSet::PartitionOf(h, 0, fanout));
  }
  EXPECT_TRUE(some_level_differs);
}

TEST(SpillPartitionSetTest, IdenticalHashesAllLandInOnePartition) {
  SpillPartitionSet set(4, 0, "");
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(set.Add(0xDEADBEEF, Row{Value::Int(i)}).ok());
  }
  ASSERT_TRUE(set.FinishWrites().ok());
  EXPECT_EQ(set.rows(), 100u);
  size_t non_empty = 0;
  for (size_t p = 0; p < set.fanout(); ++p) {
    if (set.partition_rows(p) > 0) {
      ++non_empty;
      EXPECT_EQ(set.partition_rows(p), 100u);
    }
  }
  EXPECT_EQ(non_empty, 1u);
}

// ---- End-to-end spilling ------------------------------------------------

/// k = 0..n-1 with a 64-char payload: a plain hash aggregate over it holds
/// ~250B/group, far more than the materialized result, which is the gap
/// the budgets below sit inside.
std::shared_ptr<Table> IntsTable(size_t n) {
  auto table = std::make_shared<Table>(Schema({
      Column{"k", DataType::kInt64, ""},
      Column{"payload", DataType::kString, ""},
  }));
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(table
                    ->Append({Value::Int(static_cast<int64_t>(i)),
                              Value::Str(std::string(64, 'x'))})
                    .ok());
  }
  return table;
}

/// Rows as strings, order preserved: the spill contract is bit-identical
/// output, order included (grace paths restore arrival order via the
/// spilled sequence column).
std::vector<std::string> ExactRows(const Table& table) {
  std::vector<std::string> out;
  out.reserve(table.NumRows());
  for (const Row& row : table.rows()) {
    std::string line;
    for (const Value& v : row) line += v.ToString() + "|";
    out.push_back(std::move(line));
  }
  return out;
}

class SpillQueryTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultRegistry::Global().Reset(); }
  void TearDown() override {
    FaultRegistry::Global().Reset();
    EXPECT_EQ(SpillFile::LiveFileCount(), 0u);
  }

  /// The acceptance bar from docs/ROBUSTNESS.md: under `budget` the query
  /// fails with ResourceExhausted; with spill enabled it succeeds and
  /// matches the unbudgeted run bit-for-bit, order included.
  void ExpectSpillRescues(Database& db, const std::string& sql,
                          size_t budget) {
    auto reference = db.Query(sql);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();

    db.set_memory_budget_bytes(budget);
    auto budgeted = db.Query(sql);
    ASSERT_FALSE(budgeted.ok()) << "budget " << budget << " did not bite";
    EXPECT_EQ(budgeted.status().code(), Status::Code::kResourceExhausted)
        << budgeted.status().ToString();

    db.set_spill_enabled(true);
    auto spilled = db.Query(sql);
    ASSERT_TRUE(spilled.ok()) << spilled.status().ToString();
    EXPECT_EQ(ExactRows(spilled.value()), ExactRows(reference.value()));
    EXPECT_EQ(SpillFile::LiveFileCount(), 0u);

    db.set_spill_enabled(false);
    db.set_memory_budget_bytes(0);
  }
};

TEST_F(SpillQueryTest, HashAggregateSpillsAndMatchesInMemory) {
  Database db;
  db.Register("ints", IntsTable(1000));
  // Two-component key widens the map-vs-result gap; k rides into the
  // output so the comparison checks per-group values, not just counts.
  ExpectSpillRescues(db, "SELECT k, count(*) FROM ints GROUP BY k, payload",
                     270000);
}

TEST_F(SpillQueryTest, HashJoinSpillsAndMatchesInMemory) {
  Database db;
  auto small = std::make_shared<Table>(Schema({
      Column{"sk", DataType::kInt64, ""},
  }));
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(small->Append({Value::Int(i * 7)}).ok());
  }
  db.Register("small", small);
  db.Register("ints", IntsTable(1000));
  // Probe side is tiny, build side breaches the budget: the classic grace
  // join shape.
  ExpectSpillRescues(db, "SELECT sk FROM small, ints WHERE sk = k", 120000);
}

TEST_F(SpillQueryTest, SortSpillsToRunsAndKeepsStableOrder) {
  Database db;
  auto table = std::make_shared<Table>(Schema({
      Column{"k", DataType::kInt64, ""},
      Column{"grp", DataType::kString, ""},
  }));
  Rng rng(23);
  for (int64_t i = 0; i < 1200; ++i) {
    // Seven distinct sort keys: heavy ties make stability observable.
    ASSERT_TRUE(
        table
            ->Append({Value::Int(i),
                      Value::Str("g" + std::to_string(rng.NextInt(0, 6)) +
                                 std::string(48, 's'))})
            .ok());
  }
  db.Register("seq", table);
  // LIMIT keeps the materialized result far below the sort's working set.
  ExpectSpillRescues(db, "SELECT k, grp FROM seq ORDER BY grp LIMIT 60",
                     60000);
}

TEST_F(SpillQueryTest, SgbGroupingSpillsAndMatchesInMemory) {
  Database db;
  auto pts = std::make_shared<Table>(Schema({
      Column{"x", DataType::kDouble, ""},
      Column{"y", DataType::kDouble, ""},
  }));
  Rng rng(31);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(pts->Append({Value::Double(rng.NextUniform(0, 10)),
                             Value::Double(rng.NextUniform(0, 10))})
                    .ok());
  }
  db.Register("pts", pts);
  ExpectSpillRescues(
      db,
      "SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 0.4",
      120000);
}

TEST_F(SpillQueryTest, RepartitionTerminatesOnSingleHotKey) {
  // Every build row carries the same join key, so its hash never spreads:
  // repartitioning cannot make progress and must fail honestly instead of
  // recursing forever or crashing.
  Database db;
  auto dup = std::make_shared<Table>(Schema({
      Column{"k", DataType::kInt64, ""},
      Column{"payload", DataType::kString, ""},
  }));
  for (int i = 0; i < 1500; ++i) {
    ASSERT_TRUE(dup->Append({Value::Int(1), Value::Str(std::string(64, 'd'))})
                    .ok());
  }
  db.Register("dup", dup);
  auto probe = std::make_shared<Table>(Schema({
      Column{"pk", DataType::kInt64, ""},
  }));
  ASSERT_TRUE(probe->Append({Value::Int(1)}).ok());
  db.Register("probe", probe);

  db.set_memory_budget_bytes(100000);
  db.set_spill_enabled(true);
  auto result = db.Query("SELECT pk FROM probe, dup WHERE pk = k");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kResourceExhausted)
      << result.status().ToString();
  EXPECT_NE(result.status().message().find("repartition"), std::string::npos)
      << result.status().ToString();
  EXPECT_EQ(SpillFile::LiveFileCount(), 0u);

  // The failure is a clean unwind: unbudgeted, the join completes.
  db.set_memory_budget_bytes(0);
  auto retry = db.Query("SELECT pk FROM probe, dup WHERE pk = k");
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(retry.value().NumRows(), 1500u);
}

TEST_F(SpillQueryTest, ExplainAnalyzeReportsSpillTotals) {
  Database db;
  db.Register("ints", IntsTable(1000));
  db.set_memory_budget_bytes(180000);
  db.set_spill_enabled(true);
  auto text = db.ExplainAnalyze("SELECT count(*) FROM ints GROUP BY k");
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text.value().find("spilled="), std::string::npos) << text.value();
  EXPECT_NE(text.value().find("spill_bytes="), std::string::npos)
      << text.value();

  // Without a breach there is nothing to report: the footer stays silent.
  db.set_memory_budget_bytes(0);
  auto quiet = db.ExplainAnalyze("SELECT count(*) FROM ints GROUP BY k");
  ASSERT_TRUE(quiet.ok());
  EXPECT_EQ(quiet.value().find("spilled="), std::string::npos)
      << quiet.value();
}

TEST_F(SpillQueryTest, SpillMetricsPublished) {
  auto& registry = obs::MetricsRegistry::Global();
  const uint64_t queries_before = registry.GetCounter("query.spilled").value();
  const uint64_t events_before = registry.GetCounter("spill.events").value();
  const uint64_t files_before = registry.GetCounter("spill.files").value();

  Database db;
  db.Register("ints", IntsTable(1000));
  db.set_memory_budget_bytes(180000);
  db.set_spill_enabled(true);
  ASSERT_TRUE(db.Query("SELECT count(*) FROM ints GROUP BY k").ok());

  EXPECT_EQ(registry.GetCounter("query.spilled").value(), queries_before + 1);
  EXPECT_GT(registry.GetCounter("spill.events").value(), events_before);
  EXPECT_GT(registry.GetCounter("spill.files").value(), files_before);
  EXPECT_GT(registry.GetCounter("spill.bytes").value(), 0u);
}

TEST_F(SpillQueryTest, SpillRespectsConfiguredDirectory) {
  const std::string dir = ::testing::TempDir() + "/sgb_spill_dir_test";
  std::filesystem::create_directories(dir);
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    std::filesystem::remove(entry.path());
  }

  Database db;
  db.Register("ints", IntsTable(1000));
  db.set_memory_budget_bytes(180000);
  db.set_spill_enabled(true);
  db.set_spill_directory(dir);
  ASSERT_TRUE(db.Query("SELECT count(*) FROM ints GROUP BY k").ok());
  // Files were created under `dir` and every one was unlinked again.
  EXPECT_TRUE(std::filesystem::is_empty(dir));
  EXPECT_EQ(SpillFile::LiveFileCount(), 0u);

  // An unusable directory proves the knob is honored: the spill attempt
  // fails with IoError instead of silently landing somewhere else.
  db.set_spill_directory(dir + "/does/not/exist");
  auto result = db.Query("SELECT count(*) FROM ints GROUP BY k");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kIoError)
      << result.status().ToString();
  EXPECT_EQ(SpillFile::LiveFileCount(), 0u);
}

}  // namespace
}  // namespace sgb::engine
