// Differential fuzz harness for the SGB cores and the engine pipeline.
//
// Each case draws a seeded point set (uniform / clustered / adversarial
// duplicates / non-finite coordinates) and a random configuration
// ({L2, LInf} x {JOIN-ANY, ELIMINATE, FORM-NEW-GROUP} x dop {1, 4}), then
// cross-checks every implementation tier against the All-Pairs oracle:
// SGB-All {AllPairs, BoundsChecking, Indexed} and SGB-Any
// {AllPairs, Indexed}, serial and parallel, must produce bit-identical
// groupings. A separate pass drives the same grouping through the engine's
// batch pipeline at several RowBatch capacities and cross-checks the
// materialized tables.
//
// On a mismatch the failing input is minimized by greedy point removal and
// printed as a paste-able repro, so a fuzz failure in CI localizes itself.
//
// Knobs (environment):
//   SGB_FUZZ_CASES  number of cases per test (default 200)
//   SGB_FUZZ_SEED   master seed (default 20260806)

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/sgb_all.h"
#include "core/sgb_any.h"
#include "engine/csv.h"
#include "engine/executor.h"

namespace sgb::core {
namespace {

using geom::Metric;
using geom::Point;

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

size_t FuzzCases() { return EnvU64("SGB_FUZZ_CASES", 200); }
uint64_t FuzzSeed() { return EnvU64("SGB_FUZZ_SEED", 20260806); }

enum class PointKind { kUniform, kClustered, kDuplicates, kNonFinite };

const char* KindName(PointKind kind) {
  switch (kind) {
    case PointKind::kUniform: return "uniform";
    case PointKind::kClustered: return "clustered";
    case PointKind::kDuplicates: return "duplicates";
    case PointKind::kNonFinite: return "non-finite";
  }
  return "?";
}

std::vector<Point> GeneratePoints(Rng& rng, PointKind kind, size_t n) {
  std::vector<Point> pts;
  pts.reserve(n);
  switch (kind) {
    case PointKind::kUniform:
      for (size_t i = 0; i < n; ++i) {
        pts.push_back({rng.NextUniform(0, 8), rng.NextUniform(0, 8)});
      }
      break;
    case PointKind::kClustered: {
      const size_t hotspots = 1 + rng.NextBounded(5);
      std::vector<Point> centers;
      for (size_t i = 0; i < hotspots; ++i) {
        centers.push_back({rng.NextUniform(0, 8), rng.NextUniform(0, 8)});
      }
      for (size_t i = 0; i < n; ++i) {
        const Point& c = centers[rng.NextBounded(hotspots)];
        pts.push_back({rng.NextGaussian(c.x, 0.3), rng.NextGaussian(c.y, 0.3)});
      }
      break;
    }
    case PointKind::kDuplicates:
      // Snap to a coarse lattice: many exact duplicates, collinear runs,
      // and distances that land exactly on epsilon multiples — the
      // adversarial regime for tie-breaking and boundary predicates.
      for (size_t i = 0; i < n; ++i) {
        pts.push_back({0.5 * static_cast<double>(rng.NextBounded(9)),
                       0.5 * static_cast<double>(rng.NextBounded(9))});
      }
      break;
    case PointKind::kNonFinite: {
      constexpr double kSpecials[] = {
          std::numeric_limits<double>::quiet_NaN(),
          std::numeric_limits<double>::infinity(),
          -std::numeric_limits<double>::infinity(),
      };
      for (size_t i = 0; i < n; ++i) {
        Point p{rng.NextUniform(0, 8), rng.NextUniform(0, 8)};
        if (rng.NextBounded(4) == 0) p.x = kSpecials[rng.NextBounded(3)];
        if (rng.NextBounded(4) == 0) p.y = kSpecials[rng.NextBounded(3)];
        pts.push_back(p);
      }
      break;
    }
  }
  return pts;
}

struct CaseConfig {
  PointKind kind = PointKind::kUniform;
  Metric metric = Metric::kL2;
  double epsilon = 0.5;
  OverlapClause clause = OverlapClause::kJoinAny;
  uint64_t join_seed = 0;

  std::string ToText() const {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "kind=%s metric=%s epsilon=%.17g clause=%s join_seed=%llu",
                  KindName(kind),
                  metric == Metric::kL2 ? "L2" : "LInf", epsilon,
                  ToString(clause),
                  static_cast<unsigned long long>(join_seed));
    return buf;
  }
};

CaseConfig DrawConfig(Rng& rng) {
  CaseConfig config;
  config.kind = static_cast<PointKind>(rng.NextBounded(4));
  config.metric = rng.NextBounded(2) == 0 ? Metric::kL2 : Metric::kLInf;
  config.epsilon = rng.NextUniform(0.05, 2.0);
  constexpr OverlapClause kClauses[] = {OverlapClause::kJoinAny,
                                        OverlapClause::kEliminate,
                                        OverlapClause::kFormNewGroup};
  config.clause = kClauses[rng.NextBounded(3)];
  config.join_seed = rng.NextU64();
  return config;
}

SgbAllOptions AllOptions(const CaseConfig& config, SgbAllAlgorithm algorithm,
                         int dop) {
  SgbAllOptions options;
  options.epsilon = config.epsilon;
  options.metric = config.metric;
  options.on_overlap = config.clause;
  options.seed = config.join_seed;
  options.algorithm = algorithm;
  options.degree_of_parallelism = dop;
  return options;
}

SgbAnyOptions AnyOptions(const CaseConfig& config, SgbAnyAlgorithm algorithm,
                         int dop) {
  SgbAnyOptions options;
  options.epsilon = config.epsilon;
  options.metric = config.metric;
  options.algorithm = algorithm;
  options.degree_of_parallelism = dop;
  return options;
}

/// Paste-able repro: the config plus every point at full precision.
std::string Repro(const CaseConfig& config, const std::vector<Point>& pts) {
  std::string out = "repro: " + config.ToText() + "\npoints = {\n";
  char buf[96];
  for (const Point& p : pts) {
    std::snprintf(buf, sizeof(buf), "  {%.17g, %.17g},\n", p.x, p.y);
    out += buf;
  }
  out += "};";
  return out;
}

/// Greedy delta-debugging: drop any point whose removal keeps the mismatch,
/// repeating until a pass removes nothing. `mismatch` returns true when the
/// divergence is still present on the candidate input.
template <typename MismatchFn>
std::vector<Point> Minimize(std::vector<Point> pts, MismatchFn mismatch) {
  bool shrunk = true;
  while (shrunk && pts.size() > 1) {
    shrunk = false;
    for (size_t i = 0; i < pts.size();) {
      std::vector<Point> candidate = pts;
      candidate.erase(candidate.begin() + static_cast<ptrdiff_t>(i));
      if (mismatch(candidate)) {
        pts = std::move(candidate);
        shrunk = true;
      } else {
        ++i;
      }
    }
  }
  return pts;
}

/// Both runs must succeed and agree exactly; reports a minimized repro
/// otherwise. Returns false on divergence so callers can stop early.
template <typename RunFn>
bool CheckAgainstOracle(const std::vector<Point>& pts,
                        const CaseConfig& config, const Grouping& oracle,
                        RunFn run, const char* variant) {
  auto result = run(pts);
  if (result.ok() && result.value().group_of == oracle.group_of) return true;

  auto mismatch = [&run, &config](const std::vector<Point>& candidate) {
    // Recompute the oracle on the shrunk input; any error counts as a
    // still-live divergence.
    auto fresh_oracle = SgbAll(candidate, AllOptions(
        config, SgbAllAlgorithm::kAllPairs, 1));
    auto fresh = run(candidate);
    if (!fresh_oracle.ok() || !fresh.ok()) return true;
    return fresh_oracle.value().group_of != fresh.value().group_of;
  };
  const auto minimal = Minimize(pts, mismatch);
  ADD_FAILURE() << variant << " diverges from the All-Pairs oracle\n"
                << (result.ok() ? "(grouping mismatch)"
                                : result.status().ToString())
                << "\n"
                << Repro(config, minimal);
  return false;
}

/// SGB-Any variant of the above (its own oracle).
template <typename RunFn>
bool CheckAnyAgainstOracle(const std::vector<Point>& pts,
                           const CaseConfig& config, const Grouping& oracle,
                           RunFn run, const char* variant) {
  auto result = run(pts);
  if (result.ok() && result.value().group_of == oracle.group_of) return true;

  auto mismatch = [&run, &config](const std::vector<Point>& candidate) {
    auto fresh_oracle = SgbAny(candidate, AnyOptions(
        config, SgbAnyAlgorithm::kAllPairs, 1));
    auto fresh = run(candidate);
    if (!fresh_oracle.ok() || !fresh.ok()) return true;
    return fresh_oracle.value().group_of != fresh.value().group_of;
  };
  const auto minimal = Minimize(pts, mismatch);
  ADD_FAILURE() << variant << " diverges from the All-Pairs oracle\n"
                << (result.ok() ? "(grouping mismatch)"
                                : result.status().ToString())
                << "\n"
                << Repro(config, minimal);
  return false;
}

/// Every grouping — even over garbage coordinates — must be well-formed:
/// one entry per point, ids dense below num_groups or kEliminated.
void ExpectValidShape(const Grouping& grouping, size_t n,
                      const CaseConfig& config) {
  ASSERT_EQ(grouping.group_of.size(), n) << config.ToText();
  for (const size_t g : grouping.group_of) {
    EXPECT_TRUE(g < grouping.num_groups || g == Grouping::kEliminated)
        << config.ToText();
  }
}

TEST(SgbFuzzTest, DifferentialCrossCheckAgainstAllPairsOracle) {
  Rng rng(FuzzSeed());
  const size_t cases = FuzzCases();
  size_t non_finite_cases = 0;
  for (size_t c = 0; c < cases; ++c) {
    const CaseConfig config = DrawConfig(rng);
    const size_t n = rng.NextBounded(121);  // includes the empty input
    const auto pts = GeneratePoints(rng, config.kind, n);
    SCOPED_TRACE("case " + std::to_string(c) + ": " + config.ToText() +
                 " n=" + std::to_string(n));

    if (config.kind == PointKind::kNonFinite) {
      // NaN breaks the metric axioms, so the tiers may legitimately
      // disagree; the contract is weaker — never crash, always produce a
      // well-formed grouping. Serial tiers only: the parallel grid
      // partitioner requires finite coordinates (docs/ROBUSTNESS.md).
      ++non_finite_cases;
      for (const SgbAllAlgorithm algorithm :
           {SgbAllAlgorithm::kAllPairs, SgbAllAlgorithm::kBoundsChecking,
            SgbAllAlgorithm::kIndexed}) {
        auto result = SgbAll(pts, AllOptions(config, algorithm, 1));
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        ExpectValidShape(result.value(), n, config);
      }
      for (const SgbAnyAlgorithm algorithm :
           {SgbAnyAlgorithm::kAllPairs, SgbAnyAlgorithm::kIndexed}) {
        auto result = SgbAny(pts, AnyOptions(config, algorithm, 1));
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        ExpectValidShape(result.value(), n, config);
      }
      continue;
    }

    // SGB-All: All-Pairs is the oracle; every tier and dop must match it.
    auto all_oracle = SgbAll(pts, AllOptions(
        config, SgbAllAlgorithm::kAllPairs, 1));
    ASSERT_TRUE(all_oracle.ok()) << all_oracle.status().ToString();
    ExpectValidShape(all_oracle.value(), n, config);
    bool ok = true;
    for (const SgbAllAlgorithm algorithm :
         {SgbAllAlgorithm::kBoundsChecking, SgbAllAlgorithm::kIndexed}) {
      for (const int dop : {1, 4}) {
        const std::string variant =
            std::string("SgbAll/") + ToString(algorithm) + "/dop" +
            std::to_string(dop);
        ok &= CheckAgainstOracle(
            pts, config, all_oracle.value(),
            [&config, algorithm, dop](const std::vector<Point>& input) {
              return SgbAll(input, AllOptions(config, algorithm, dop));
            },
            variant.c_str());
      }
    }
    ok &= CheckAgainstOracle(
        pts, config, all_oracle.value(),
        [&config](const std::vector<Point>& input) {
          return SgbAll(input,
                        AllOptions(config, SgbAllAlgorithm::kAllPairs, 4));
        },
        "SgbAll/AllPairs/dop4");

    // SGB-Any: same pattern with its own oracle.
    auto any_oracle = SgbAny(pts, AnyOptions(
        config, SgbAnyAlgorithm::kAllPairs, 1));
    ASSERT_TRUE(any_oracle.ok()) << any_oracle.status().ToString();
    ExpectValidShape(any_oracle.value(), n, config);
    for (const SgbAnyAlgorithm algorithm :
         {SgbAnyAlgorithm::kAllPairs, SgbAnyAlgorithm::kIndexed}) {
      for (const int dop : {1, 4}) {
        if (algorithm == SgbAnyAlgorithm::kAllPairs && dop == 1) continue;
        const std::string variant =
            std::string("SgbAny/") + ToString(algorithm) + "/dop" +
            std::to_string(dop);
        ok &= CheckAnyAgainstOracle(
            pts, config, any_oracle.value(),
            [&config, algorithm, dop](const std::vector<Point>& input) {
              return SgbAny(input, AnyOptions(config, algorithm, dop));
            },
            variant.c_str());
      }
    }
    if (!ok) break;  // one minimized repro is enough
  }
  EXPECT_GT(non_finite_cases, 0u)
      << "fuzz sweep never drew the non-finite generator; raise "
         "SGB_FUZZ_CASES";
}

// The batch pipeline must be a pure chunking of the row pipeline: driving
// the same plan with different RowBatch capacities cannot change the
// result table.
TEST(SgbFuzzTest, BatchSizesProduceIdenticalResults) {
  using engine::Column;
  using engine::Database;
  using engine::DataType;
  using engine::Row;
  using engine::RowBatch;
  using engine::Schema;
  using engine::Table;
  using engine::Value;

  Rng rng(FuzzSeed() ^ 0xBA7C4);
  const size_t cases = std::max<size_t>(FuzzCases() / 8, 8);
  for (size_t c = 0; c < cases; ++c) {
    CaseConfig config = DrawConfig(rng);
    if (config.kind == PointKind::kNonFinite) config.kind = PointKind::kUniform;
    const size_t n = 1 + rng.NextBounded(120);
    const auto pts = GeneratePoints(rng, config.kind, n);
    SCOPED_TRACE("case " + std::to_string(c) + ": " + config.ToText() +
                 " n=" + std::to_string(n));

    Database db;
    auto table = std::make_shared<Table>(Schema({
        Column{"x", DataType::kDouble, ""},
        Column{"y", DataType::kDouble, ""},
    }));
    for (const Point& p : pts) {
      ASSERT_TRUE(
          table->Append({Value::Double(p.x), Value::Double(p.y)}).ok());
    }
    db.Register("pts", table);

    char sql[256];
    std::snprintf(sql, sizeof(sql),
                  "SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY "
                  "%s WITHIN %.17g",
                  config.metric == Metric::kL2 ? "L2" : "LINF",
                  config.epsilon);

    auto reference = db.Query(sql);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    const std::string want = engine::WriteCsvToString(reference.value());

    for (const size_t capacity : {size_t{1}, size_t{3}, size_t{64}}) {
      auto plan = db.Prepare(sql);
      ASSERT_TRUE(plan.ok());
      Table got(plan.value()->schema());
      plan.value()->Open();
      RowBatch batch(capacity);
      while (plan.value()->NextBatch(&batch)) {
        for (Row& row : batch.rows()) {
          ASSERT_TRUE(got.Append(std::move(row)).ok());
        }
      }
      EXPECT_EQ(engine::WriteCsvToString(got), want)
          << "batch capacity " << capacity;
    }
  }
}

}  // namespace
}  // namespace sgb::core
