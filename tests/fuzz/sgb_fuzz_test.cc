// Differential fuzz harness for the SGB cores and the engine pipeline.
//
// Each case draws a seeded point set (uniform / clustered / adversarial
// duplicates / non-finite coordinates) and a random configuration
// ({L2, LInf} x {JOIN-ANY, ELIMINATE, FORM-NEW-GROUP} x dop {1, 4}), then
// cross-checks every implementation tier against the All-Pairs oracle:
// SGB-All {AllPairs, BoundsChecking, Indexed} and SGB-Any
// {AllPairs, Indexed}, serial and parallel, must produce bit-identical
// groupings. A separate pass drives the same grouping through the engine's
// batch pipeline at several RowBatch capacities and cross-checks the
// materialized tables.
//
// On a mismatch the failing input is minimized by greedy point removal and
// printed as a paste-able repro, so a fuzz failure in CI localizes itself.
//
// Knobs (environment):
//   SGB_FUZZ_CASES  number of cases per test (default 200)
//   SGB_FUZZ_SEED   master seed (default 20260806)

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <filesystem>

#include "common/fault_injection.h"
#include "common/random.h"
#include "core/sgb_all.h"
#include "core/sgb_any.h"
#include "engine/continuous.h"
#include "engine/csv.h"
#include "engine/executor.h"
#include "engine/spill.h"
#include "fuzz_generators.h"
#include "obs/metrics.h"
#include "storage/storage_engine.h"

namespace sgb::core {
namespace {

using geom::Metric;
using geom::Point;

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

size_t FuzzCases() { return EnvU64("SGB_FUZZ_CASES", 200); }
uint64_t FuzzSeed() { return EnvU64("SGB_FUZZ_SEED", 20260806); }

/// Greedy delta-debugging: drop any point whose removal keeps the mismatch,
/// repeating until a pass removes nothing. `mismatch` returns true when the
/// divergence is still present on the candidate input.
template <typename MismatchFn>
std::vector<Point> Minimize(std::vector<Point> pts, MismatchFn mismatch) {
  bool shrunk = true;
  while (shrunk && pts.size() > 1) {
    shrunk = false;
    for (size_t i = 0; i < pts.size();) {
      std::vector<Point> candidate = pts;
      candidate.erase(candidate.begin() + static_cast<ptrdiff_t>(i));
      if (mismatch(candidate)) {
        pts = std::move(candidate);
        shrunk = true;
      } else {
        ++i;
      }
    }
  }
  return pts;
}

/// Both runs must succeed and agree exactly; reports a minimized repro
/// otherwise. Returns false on divergence so callers can stop early.
template <typename RunFn>
bool CheckAgainstOracle(const std::vector<Point>& pts,
                        const CaseConfig& config, const Grouping& oracle,
                        RunFn run, const char* variant) {
  auto result = run(pts);
  if (result.ok() && result.value().group_of == oracle.group_of) return true;

  auto mismatch = [&run, &config](const std::vector<Point>& candidate) {
    // Recompute the oracle on the shrunk input; any error counts as a
    // still-live divergence.
    auto fresh_oracle = SgbAll(candidate, AllOptions(
        config, SgbAllAlgorithm::kAllPairs, 1));
    auto fresh = run(candidate);
    if (!fresh_oracle.ok() || !fresh.ok()) return true;
    return fresh_oracle.value().group_of != fresh.value().group_of;
  };
  const auto minimal = Minimize(pts, mismatch);
  ADD_FAILURE() << variant << " diverges from the All-Pairs oracle\n"
                << (result.ok() ? "(grouping mismatch)"
                                : result.status().ToString())
                << "\n"
                << Repro(config, minimal);
  return false;
}

/// SGB-Any variant of the above (its own oracle).
template <typename RunFn>
bool CheckAnyAgainstOracle(const std::vector<Point>& pts,
                           const CaseConfig& config, const Grouping& oracle,
                           RunFn run, const char* variant) {
  auto result = run(pts);
  if (result.ok() && result.value().group_of == oracle.group_of) return true;

  auto mismatch = [&run, &config](const std::vector<Point>& candidate) {
    auto fresh_oracle = SgbAny(candidate, AnyOptions(
        config, SgbAnyAlgorithm::kAllPairs, 1));
    auto fresh = run(candidate);
    if (!fresh_oracle.ok() || !fresh.ok()) return true;
    return fresh_oracle.value().group_of != fresh.value().group_of;
  };
  const auto minimal = Minimize(pts, mismatch);
  ADD_FAILURE() << variant << " diverges from the All-Pairs oracle\n"
                << (result.ok() ? "(grouping mismatch)"
                                : result.status().ToString())
                << "\n"
                << Repro(config, minimal);
  return false;
}

/// Every grouping — even over garbage coordinates — must be well-formed:
/// one entry per point, ids dense below num_groups or kEliminated.
void ExpectValidShape(const Grouping& grouping, size_t n,
                      const CaseConfig& config) {
  ASSERT_EQ(grouping.group_of.size(), n) << config.ToText();
  for (const size_t g : grouping.group_of) {
    EXPECT_TRUE(g < grouping.num_groups || g == Grouping::kEliminated)
        << config.ToText();
  }
}

TEST(SgbFuzzTest, DifferentialCrossCheckAgainstAllPairsOracle) {
  Rng rng(FuzzSeed());
  const size_t cases = FuzzCases();
  size_t non_finite_cases = 0;
  for (size_t c = 0; c < cases; ++c) {
    const CaseConfig config = DrawConfig(rng);
    const size_t n = rng.NextBounded(121);  // includes the empty input
    const auto pts = GeneratePoints(rng, config.kind, n);
    SCOPED_TRACE("case " + std::to_string(c) + ": " + config.ToText() +
                 " n=" + std::to_string(n));

    if (config.kind == PointKind::kNonFinite) {
      // NaN breaks the metric axioms, so the tiers may legitimately
      // disagree; the contract is weaker — never crash, always produce a
      // well-formed grouping. Serial tiers only: the parallel grid
      // partitioner requires finite coordinates (docs/ROBUSTNESS.md).
      ++non_finite_cases;
      for (const SgbAllAlgorithm algorithm :
           {SgbAllAlgorithm::kAllPairs, SgbAllAlgorithm::kBoundsChecking,
            SgbAllAlgorithm::kIndexed}) {
        auto result = SgbAll(pts, AllOptions(config, algorithm, 1));
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        ExpectValidShape(result.value(), n, config);
      }
      for (const SgbAnyAlgorithm algorithm :
           {SgbAnyAlgorithm::kAllPairs, SgbAnyAlgorithm::kIndexed}) {
        auto result = SgbAny(pts, AnyOptions(config, algorithm, 1));
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        ExpectValidShape(result.value(), n, config);
      }
      continue;
    }

    // SGB-All: All-Pairs is the oracle; every tier and dop must match it.
    auto all_oracle = SgbAll(pts, AllOptions(
        config, SgbAllAlgorithm::kAllPairs, 1));
    ASSERT_TRUE(all_oracle.ok()) << all_oracle.status().ToString();
    ExpectValidShape(all_oracle.value(), n, config);
    bool ok = true;
    for (const SgbAllAlgorithm algorithm :
         {SgbAllAlgorithm::kBoundsChecking, SgbAllAlgorithm::kIndexed}) {
      for (const int dop : {1, 4}) {
        const std::string variant =
            std::string("SgbAll/") + ToString(algorithm) + "/dop" +
            std::to_string(dop);
        ok &= CheckAgainstOracle(
            pts, config, all_oracle.value(),
            [&config, algorithm, dop](const std::vector<Point>& input) {
              return SgbAll(input, AllOptions(config, algorithm, dop));
            },
            variant.c_str());
      }
    }
    ok &= CheckAgainstOracle(
        pts, config, all_oracle.value(),
        [&config](const std::vector<Point>& input) {
          return SgbAll(input,
                        AllOptions(config, SgbAllAlgorithm::kAllPairs, 4));
        },
        "SgbAll/AllPairs/dop4");

    // SGB-Any: same pattern with its own oracle.
    auto any_oracle = SgbAny(pts, AnyOptions(
        config, SgbAnyAlgorithm::kAllPairs, 1));
    ASSERT_TRUE(any_oracle.ok()) << any_oracle.status().ToString();
    ExpectValidShape(any_oracle.value(), n, config);
    for (const SgbAnyAlgorithm algorithm :
         {SgbAnyAlgorithm::kAllPairs, SgbAnyAlgorithm::kIndexed}) {
      for (const int dop : {1, 4}) {
        if (algorithm == SgbAnyAlgorithm::kAllPairs && dop == 1) continue;
        const std::string variant =
            std::string("SgbAny/") + ToString(algorithm) + "/dop" +
            std::to_string(dop);
        ok &= CheckAnyAgainstOracle(
            pts, config, any_oracle.value(),
            [&config, algorithm, dop](const std::vector<Point>& input) {
              return SgbAny(input, AnyOptions(config, algorithm, dop));
            },
            variant.c_str());
      }
    }
    if (!ok) break;  // one minimized repro is enough
  }
  EXPECT_GT(non_finite_cases, 0u)
      << "fuzz sweep never drew the non-finite generator; raise "
         "SGB_FUZZ_CASES";
}

// The batch pipeline must be a pure chunking of the row pipeline: driving
// the same plan with different RowBatch capacities cannot change the
// result table.
TEST(SgbFuzzTest, BatchSizesProduceIdenticalResults) {
  using engine::Column;
  using engine::Database;
  using engine::DataType;
  using engine::Row;
  using engine::RowBatch;
  using engine::Schema;
  using engine::Table;
  using engine::Value;

  Rng rng(FuzzSeed() ^ 0xBA7C4);
  const size_t cases = std::max<size_t>(FuzzCases() / 8, 8);
  for (size_t c = 0; c < cases; ++c) {
    CaseConfig config = DrawConfig(rng);
    if (config.kind == PointKind::kNonFinite) config.kind = PointKind::kUniform;
    const size_t n = 1 + rng.NextBounded(120);
    const auto pts = GeneratePoints(rng, config.kind, n);
    SCOPED_TRACE("case " + std::to_string(c) + ": " + config.ToText() +
                 " n=" + std::to_string(n));

    Database db;
    auto table = std::make_shared<Table>(Schema({
        Column{"x", DataType::kDouble, ""},
        Column{"y", DataType::kDouble, ""},
    }));
    for (const Point& p : pts) {
      ASSERT_TRUE(
          table->Append({Value::Double(p.x), Value::Double(p.y)}).ok());
    }
    db.Register("pts", table);

    char sql[256];
    std::snprintf(sql, sizeof(sql),
                  "SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY "
                  "%s WITHIN %.17g",
                  config.metric == Metric::kL2 ? "L2" : "LINF",
                  config.epsilon);

    auto reference = db.Query(sql);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    const std::string want = engine::WriteCsvToString(reference.value());

    for (const size_t capacity : {size_t{1}, size_t{3}, size_t{64}}) {
      auto plan = db.Prepare(sql);
      ASSERT_TRUE(plan.ok());
      Table got(plan.value()->schema());
      plan.value()->Open();
      RowBatch batch(capacity);
      while (plan.value()->NextBatch(&batch)) {
        for (Row& row : batch.rows()) {
          ASSERT_TRUE(got.Append(std::move(row)).ok());
        }
      }
      EXPECT_EQ(engine::WriteCsvToString(got), want)
          << "batch capacity " << capacity;
    }
  }
}

// The spill dimension of the differential harness: every case also runs
// under a budget tight enough to force the SGB drain out of core, and the
// spilled grouping must be bit-identical to the in-memory oracle — across
// batch capacities 1/3/64, exactly like the in-memory sweep above.
TEST(SgbFuzzTest, SpilledExecutionMatchesInMemoryOracle) {
  using engine::Column;
  using engine::Database;
  using engine::DataType;
  using engine::Row;
  using engine::RowBatch;
  using engine::Schema;
  using engine::Table;
  using engine::Value;

  Rng rng(FuzzSeed() ^ 0x5B111ULL);
  const size_t cases = std::max<size_t>(FuzzCases() / 8, 8);
  size_t spilled_cases = 0;
  for (size_t c = 0; c < cases; ++c) {
    CaseConfig config = DrawConfig(rng);
    if (config.kind == PointKind::kNonFinite) config.kind = PointKind::kUniform;
    const size_t n = 60 + rng.NextBounded(90);
    const auto pts = GeneratePoints(rng, config.kind, n);
    SCOPED_TRACE("case " + std::to_string(c) + ": " + config.ToText() +
                 " n=" + std::to_string(n));

    Database db;
    auto table = std::make_shared<Table>(Schema({
        Column{"x", DataType::kDouble, ""},
        Column{"y", DataType::kDouble, ""},
    }));
    for (const Point& p : pts) {
      ASSERT_TRUE(
          table->Append({Value::Double(p.x), Value::Double(p.y)}).ok());
    }
    db.Register("pts", table);

    char sql[256];
    std::snprintf(sql, sizeof(sql),
                  "SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY "
                  "%s WITHIN %.17g",
                  config.metric == Metric::kL2 ? "L2" : "LINF",
                  config.epsilon);

    // In-memory oracle, and the peak it actually charged.
    auto reference = db.Query(sql);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    const std::string want = engine::WriteCsvToString(reference.value());
    const size_t peak = static_cast<size_t>(
        obs::MetricsRegistry::Global().GetGauge("mem.query.peak").value());
    ASSERT_GT(peak, 0u);
    // Any budget strictly below the peak makes the plain run breach, but the
    // spilled run can only evict buffered rows — the point coordinates and
    // the retained result groups must stay resident. When a tiny epsilon
    // makes nearly every point its own group, that resident floor approaches
    // points + results, which can exceed half the peak; 7/8 clears the floor
    // in every regime while still forcing the drain out of core.
    const size_t budget = peak - peak / 8;

    // A budget below the in-memory peak must make the plain run fail...
    db.set_memory_budget_bytes(budget);
    auto budgeted = db.Query(sql);
    ASSERT_FALSE(budgeted.ok()) << "budget " << budget << " did not bite";
    ASSERT_EQ(budgeted.status().code(), Status::Code::kResourceExhausted)
        << budgeted.status().ToString();

    // ...and the spill-enabled run must recover it bit-identically, at
    // every batch capacity.
    for (const size_t capacity : {size_t{1}, size_t{3}, size_t{64}}) {
      auto plan = db.Prepare(sql);
      ASSERT_TRUE(plan.ok());
      QueryContext ctx(budget);
      SpillConfig spill;
      spill.enabled = true;
      ctx.set_spill(spill);
      plan.value()->SetQueryContext(&ctx);
      Table got(plan.value()->schema());
      Status run = Status::OK();
      try {
        plan.value()->Open();
        RowBatch batch(capacity);
        while (plan.value()->NextBatch(&batch)) {
          for (Row& row : batch.rows()) {
            ASSERT_TRUE(got.Append(std::move(row)).ok());
          }
        }
      } catch (const QueryAbort& abort) {
        run = abort.status();
      }
      ASSERT_TRUE(run.ok()) << "batch capacity " << capacity << ": "
                            << run.ToString();
      EXPECT_EQ(engine::WriteCsvToString(got), want)
          << "batch capacity " << capacity;
      if (ctx.spill_events() > 0) ++spilled_cases;
      plan.value()->SetQueryContext(nullptr);
    }
    EXPECT_EQ(engine::SpillFile::LiveFileCount(), 0u);
    db.set_memory_budget_bytes(0);
  }
  // The sweep is only meaningful if the budget actually forced spilling.
  EXPECT_GT(spilled_cases, 0u);
}

// The cost-model dimension of the differential harness: tier selection is
// a pure performance decision, so whatever tier the planner's cost model
// picks from ANALYZE statistics, the grouping must stay bit-identical to
// the forced All-Pairs reference (docs/PLANNER.md).
TEST(SgbFuzzTest, AutoChosenTiersMatchForcedAllPairs) {
  using engine::Column;
  using engine::Database;
  using engine::DataType;
  using engine::Schema;
  using engine::Table;
  using engine::Value;

  Rng rng(FuzzSeed() ^ 0xC057);
  const size_t cases = std::max<size_t>(FuzzCases() / 8, 8);
  for (size_t c = 0; c < cases; ++c) {
    CaseConfig config = DrawConfig(rng);
    if (config.kind == PointKind::kNonFinite) config.kind = PointKind::kUniform;
    const size_t n = 20 + rng.NextBounded(100);
    const auto pts = GeneratePoints(rng, config.kind, n);
    SCOPED_TRACE("case " + std::to_string(c) + ": " + config.ToText() +
                 " n=" + std::to_string(n));

    Database db;
    auto table = std::make_shared<Table>(Schema({
        Column{"x", DataType::kDouble, ""},
        Column{"y", DataType::kDouble, ""},
    }));
    for (const Point& p : pts) {
      ASSERT_TRUE(
          table->Append({Value::Double(p.x), Value::Double(p.y)}).ok());
    }
    db.Register("pts", table);
    ASSERT_TRUE(db.Query("ANALYZE pts").ok());

    const bool any = rng.NextBounded(2) == 0;
    char sql[256];
    std::snprintf(sql, sizeof(sql),
                  "SELECT group_id, count(*) FROM pts GROUP BY x, y "
                  "DISTANCE-TO-%s %s WITHIN %.17g",
                  any ? "ANY" : "ALL",
                  config.metric == Metric::kL2 ? "L2" : "LINF",
                  config.epsilon);

    ASSERT_TRUE(db.Query("SET sgb_tier = all_pairs").ok());
    auto reference = db.Query(sql);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    const std::string want = engine::WriteCsvToString(reference.value());

    ASSERT_TRUE(db.Query("SET sgb_tier = auto").ok());
    auto chosen = db.Query(sql);
    ASSERT_TRUE(chosen.ok()) << chosen.status().ToString();
    EXPECT_EQ(engine::WriteCsvToString(chosen.value()), want)
        << "auto-chosen tier diverges from forced All-Pairs";
  }
}

// The observability dimension of the differential harness: tracing, the
// query log, and the slow-query flag are bystanders — enabling all of them
// must leave every grouping bit-identical to the untraced run
// (docs/OBSERVABILITY.md).
TEST(SgbFuzzTest, TracedExecutionMatchesUntraced) {
  using engine::Column;
  using engine::Database;
  using engine::DataType;
  using engine::Schema;
  using engine::Table;
  using engine::Value;

  Rng rng(FuzzSeed() ^ 0x0B5E);
  const size_t cases = std::max<size_t>(FuzzCases() / 8, 8);
  for (size_t c = 0; c < cases; ++c) {
    CaseConfig config = DrawConfig(rng);
    if (config.kind == PointKind::kNonFinite) config.kind = PointKind::kUniform;
    const size_t n = 1 + rng.NextBounded(120);
    const auto pts = GeneratePoints(rng, config.kind, n);
    SCOPED_TRACE("case " + std::to_string(c) + ": " + config.ToText() +
                 " n=" + std::to_string(n));

    Database db;
    auto table = std::make_shared<Table>(Schema({
        Column{"x", DataType::kDouble, ""},
        Column{"y", DataType::kDouble, ""},
    }));
    for (const Point& p : pts) {
      ASSERT_TRUE(
          table->Append({Value::Double(p.x), Value::Double(p.y)}).ok());
    }
    db.Register("pts", table);

    char sql[256];
    std::snprintf(sql, sizeof(sql),
                  "SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY "
                  "%s WITHIN %.17g PARALLEL %d",
                  config.metric == Metric::kL2 ? "L2" : "LINF",
                  config.epsilon, 1 + static_cast<int>(rng.NextBounded(4)));

    auto reference = db.Query(sql);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    const std::string want = engine::WriteCsvToString(reference.value());

    ASSERT_TRUE(db.Query("SET trace = 1").ok());
    ASSERT_TRUE(db.Query("SET slow_query_micros = 1").ok());
    auto traced = db.Query(sql);
    ASSERT_TRUE(traced.ok()) << traced.status().ToString();
    EXPECT_EQ(engine::WriteCsvToString(traced.value()), want)
        << "SET trace = 1 changed the result";
    EXPECT_GT(db.trace_log().event_count(), 0u);
  }
}

// The streaming dimension of the differential harness
// (docs/STREAMING.md): each case draws a random window schedule (tumbling
// or sliding, random size/advance) and feeds a random point stream as
// randomized multi-row INSERT batches through a CREATE CONTINUOUS QUERY.
// An independent simulation of the documented window semantics (covering
// windows, closed-window-only lateness, watermark-driven closes at
// statement end) predicts exactly which windows close with which rows,
// and every predicted close is re-derived from the serial All-Pairs core
// over the window's canonical (t, x, y) order — with the engine's own
// content-derived arbitration keys for SGB-All — then compared against
// the stream's published close records. A mismatch is greedily minimized
// by row removal and printed as a paste-able repro.
TEST(SgbFuzzTest, StreamingClosesMatchAllPairsOracle) {
  using engine::ContinuousQueryManager;
  using engine::Database;
  using engine::DeltaBatch;

  struct StreamRow {
    size_t batch = 0;  ///< which INSERT statement carries the row
    double t = 0;
    double x = 0;
    double y = 0;
  };
  struct CloseRec {
    double start = 0;
    double end = 0;
    size_t rows = 0;
    size_t groups = 0;
    size_t eliminated = 0;
    bool operator==(const CloseRec&) const = default;
  };

  Rng rng(FuzzSeed() ^ 0x57AE);
  const size_t cases = std::max<size_t>(FuzzCases() / 8, 8);
  size_t total_closes = 0;
  for (size_t c = 0; c < cases; ++c) {
    CaseConfig config = DrawConfig(rng);
    if (config.kind == PointKind::kNonFinite) config.kind = PointKind::kUniform;
    const bool any_kind = rng.NextBounded(2) == 0;
    const int dop = rng.NextBounded(2) == 0 ? 1 : 4;
    const double size = static_cast<double>(2 + rng.NextBounded(9));
    const bool sliding = rng.NextBounded(2) == 0;
    const double advance =
        sliding ? static_cast<double>(
                      1 + rng.NextBounded(static_cast<uint64_t>(size)))
                : size;

    const size_t n = 20 + rng.NextBounded(60);
    const auto pts = GeneratePoints(rng, config.kind, n);
    std::vector<StreamRow> rows;
    rows.reserve(n + 1);
    size_t batch = 0;
    size_t left_in_batch = 1 + rng.NextBounded(8);
    for (size_t i = 0; i < n; ++i) {
      if (left_in_batch == 0) {
        ++batch;
        left_in_batch = 1 + rng.NextBounded(8);
      }
      --left_in_batch;
      rows.push_back({batch, rng.NextUniform(0, 30), pts[i].x, pts[i].y});
    }
    // Flush sentinel: far enough out that the watermark passes every real
    // window (its own window stays open, so it never appears in a close).
    rows.push_back({batch + 1, 1000.0, 500.0, 500.0});

    char clause[192];
    std::snprintf(clause, sizeof(clause),
                  "DISTANCE-TO-%s %s WITHIN %.17g%s%s PARALLEL %d "
                  "WINDOW %s",
                  any_kind ? "ANY" : "ALL",
                  config.metric == Metric::kL2 ? "L2" : "LINF",
                  config.epsilon, any_kind ? "" : " ON-OVERLAP ",
                  any_kind ? "" : ToString(config.clause), dop,
                  sliding ? "SLIDING" : "TUMBLING");
    char window[96];
    if (sliding) {
      std::snprintf(window, sizeof(window), " %.17g ADVANCE %.17g ON t",
                    size, advance);
    } else {
      std::snprintf(window, sizeof(window), " %.17g ON t", size);
    }
    const std::string cq_sql =
        "CREATE CONTINUOUS QUERY fz AS SELECT count(*) FROM stream "
        "GROUP BY x, y " + std::string(clause) + window;
    SCOPED_TRACE("case " + std::to_string(c) + ": " + cq_sql);

    // Drives the rows through a fresh engine as per-batch INSERT
    // statements and returns the published close records.
    auto run = [&cq_sql](const std::vector<StreamRow>& input)
        -> Result<std::vector<CloseRec>> {
      Database db;
      SGB_RETURN_IF_ERROR(
          db.Query("CREATE TABLE stream (t DOUBLE, x DOUBLE, y DOUBLE)")
              .status());
      SGB_RETURN_IF_ERROR(db.Query(cq_sql).status());
      std::vector<CloseRec> closes;
      auto sub = db.continuous().Subscribe(
          "fz", [&closes](const DeltaBatch& b) {
            closes.push_back(CloseRec{b.window_start, b.window_end, b.rows,
                                      b.num_groups, b.eliminated});
            return true;
          });
      SGB_RETURN_IF_ERROR(sub.status());
      for (size_t i = 0; i < input.size();) {
        const size_t stmt = input[i].batch;
        const size_t first = i;
        std::string sql = "INSERT INTO stream VALUES ";
        char literal[128];
        while (i < input.size() && input[i].batch == stmt) {
          std::snprintf(literal, sizeof(literal),
                        "%s(%.17g, %.17g, %.17g)", i == first ? "" : ", ",
                        input[i].t, input[i].x, input[i].y);
          sql += literal;
          ++i;
        }
        SGB_RETURN_IF_ERROR(db.Query(sql).status());
      }
      return closes;
    };

    // Independent prediction: simulate the window bookkeeping row by row,
    // then re-derive every close from the serial All-Pairs core.
    auto expect = [&](const std::vector<StreamRow>& input)
        -> std::vector<CloseRec> {
      std::map<int64_t, std::vector<StreamRow>> open;
      int64_t next_unclosed = std::numeric_limits<int64_t>::min();
      bool has_watermark = false;
      double watermark = 0;
      std::vector<CloseRec> closes;
      auto oracle = [&](const std::vector<StreamRow>& in_window,
                        double start, double end) {
        std::vector<StreamRow> sorted = in_window;
        std::stable_sort(sorted.begin(), sorted.end(),
                         [](const StreamRow& a, const StreamRow& b) {
                           if (a.t != b.t) return a.t < b.t;
                           if (a.x != b.x) return a.x < b.x;
                           return a.y < b.y;
                         });
        std::vector<Point> wpts;
        std::vector<uint64_t> keys;
        for (const StreamRow& r : sorted) {
          wpts.push_back({r.x, r.y});
          keys.push_back(engine::ArrivalKey(r.t, r.x, r.y));
        }
        Grouping grouping;
        if (any_kind) {
          SgbAnyOptions options;
          options.epsilon = config.epsilon;
          options.metric = config.metric;
          grouping = SgbAny(wpts, options).value();
        } else {
          SgbAllOptions options;
          options.epsilon = config.epsilon;
          options.metric = config.metric;
          options.on_overlap = config.clause;
          options.arbitration_keys = keys;
          grouping = SgbAll(wpts, options).value();
        }
        closes.push_back(CloseRec{start, end, sorted.size(),
                                  grouping.num_groups,
                                  grouping.NumEliminated()});
      };
      for (size_t i = 0; i < input.size();) {
        const size_t stmt = input[i].batch;
        double stmt_max = -std::numeric_limits<double>::infinity();
        for (; i < input.size() && input[i].batch == stmt; ++i) {
          const StreamRow& r = input[i];
          const auto floor_div = [](double v, double d) {
            return static_cast<int64_t>(std::floor(v / d));
          };
          const int64_t i_max = floor_div(r.t, advance);
          const int64_t i_min = floor_div(r.t - size, advance) + 1;
          for (int64_t w = i_min; w <= i_max; ++w) {
            const double start = static_cast<double>(w) * advance;
            if (r.t < start || r.t >= start + size) continue;
            // Late rows — w < next_unclosed — are dropped, matching the
            // closed-window-only lateness rule.
            if (w >= next_unclosed) open[w].push_back(r);
          }
          stmt_max = std::max(stmt_max, r.t);
        }
        if (!has_watermark || stmt_max > watermark) {
          has_watermark = true;
          watermark = std::max(watermark, stmt_max);
        }
        while (!open.empty()) {
          const auto it = open.begin();
          const double start = static_cast<double>(it->first) * advance;
          if (!(has_watermark && start + size <= watermark)) break;
          oracle(it->second, start, start + size);
          next_unclosed = it->first + 1;
          open.erase(it);
        }
      }
      return closes;
    };

    auto got = run(rows);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    total_closes += got.value().size();
    if (got.value() == expect(rows)) continue;

    // Divergence: greedily shrink the stream while it still diverges,
    // then print the minimal stream as a repro.
    auto mismatch = [&](const std::vector<StreamRow>& candidate) {
      auto fresh = run(candidate);
      if (!fresh.ok()) return true;
      return fresh.value() != expect(candidate);
    };
    std::vector<StreamRow> minimal = rows;
    bool shrunk = true;
    while (shrunk && minimal.size() > 1) {
      shrunk = false;
      for (size_t i = 0; i < minimal.size();) {
        std::vector<StreamRow> candidate = minimal;
        candidate.erase(candidate.begin() + static_cast<ptrdiff_t>(i));
        if (mismatch(candidate)) {
          minimal = std::move(candidate);
          shrunk = true;
        } else {
          ++i;
        }
      }
    }
    std::string repro = "repro: " + cq_sql + "\nstream = {  // batch, t, x, y\n";
    char buf[160];
    for (const StreamRow& r : minimal) {
      std::snprintf(buf, sizeof(buf), "  {%zu, %.17g, %.17g, %.17g},\n",
                    r.batch, r.t, r.x, r.y);
      repro += buf;
    }
    repro += "};";
    ADD_FAILURE() << "streaming closes diverge from the All-Pairs oracle\n"
                  << repro;
    break;  // one minimized repro is enough
  }
  // The sweep is only meaningful if windows actually closed.
  EXPECT_GT(total_closes, 0u);
}

// The storage dimension of the differential harness (docs/STORAGE.md):
// each case draws a random schedule of INSERT / SELECT / CHECKPOINT steps
// against a disk-backed database with a 4-page buffer pool, plus one CRASH
// step that arms a WAL or page fault site at a random upcoming hit. After
// the kill the directory is reopened and the recovered table — contents
// and an SGB grouping — must match an in-memory oracle holding exactly the
// durable statements. Only the two deterministic sites are drawn
// (`storage.wal.append` commits nothing, `storage.page.write` fires after
// the WAL fsync so an in-flight INSERT always survives);
// recovery_test.cc covers the indeterminate `storage.wal.fsync` with its
// dual-oracle accept. A divergence is greedily minimized by step removal
// and printed as a paste-able schedule.
TEST(SgbFuzzTest, CrashSchedulesRecoverToInMemoryOracle) {
  using engine::Database;

  struct Step {
    enum Kind { kInsert, kSelect, kCheckpoint, kCrash } kind = kInsert;
    std::string sql;        // kInsert / kSelect
    std::string site;       // kCrash
    uint64_t nth = 1;       // kCrash
  };

  storage::StorageOptions options;
  options.page_size = 256;
  options.buffer_pool_bytes = 4 * 256;

  const auto fresh_dir = [](const std::string& name) {
    const std::string dir = ::testing::TempDir() + "/" + name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
  };

  // Applies the schedule (one CRASH arms the site; poisoned statements
  // just fail), reopens, and returns the recovered contents + grouping.
  // `durable` collects the INSERTs the oracle must contain; `fired`
  // reports whether the armed fault actually injected.
  const auto run = [&](const std::vector<Step>& steps, const std::string& dir,
                       std::vector<std::string>* durable, bool* fired)
      -> Result<std::pair<std::string, std::string>> {
    durable->clear();
    *fired = false;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    {
      auto db = Database::Open(dir, options);
      if (!db.ok()) return db.status();
      SGB_RETURN_IF_ERROR(
          db.value().Query("CREATE TABLE pts (x DOUBLE, y DOUBLE)").status());
      for (const Step& step : steps) {
        switch (step.kind) {
          case Step::kInsert: {
            auto result = db.value().Query(step.sql);
            // A crashed INSERT failed *after* its WAL commit when the
            // page-write site fired (the WAL frame is fsynced first), so
            // it is durable; any other failure here is a poisoned refusal.
            if (result.ok() ||
                result.status().ToString().find("storage.page.write") !=
                    std::string::npos) {
              durable->push_back(step.sql);
            }
            break;
          }
          case Step::kSelect:
          case Step::kCheckpoint: {
            const char* sql = step.kind == Step::kSelect
                                  ? "SELECT count(*) FROM pts"
                                  : "CHECKPOINT";
            (void)db.value().Query(sql);  // failures poison or are refused
            break;
          }
          case Step::kCrash:
            FaultRegistry::Global().ArmNthHit(step.site, step.nth);
            break;
        }
      }
      for (const Step& step : steps) {
        if (step.kind == Step::kCrash &&
            FaultRegistry::Global().Injected(step.site) > 0) {
          *fired = true;
        }
      }
      FaultRegistry::Global().Reset();
    }
    auto db = Database::Open(dir, options);
    if (!db.ok()) return db.status();
    auto rows = db.value().Query("SELECT * FROM pts");
    if (!rows.ok()) return rows.status();
    auto sgb = db.value().Query(
        "SELECT group_id, count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY "
        "L2 WITHIN 2.0");
    if (!sgb.ok()) return sgb.status();
    return std::make_pair(engine::WriteCsvToString(rows.value()),
                          engine::WriteCsvToString(sgb.value()));
  };

  const auto oracle = [](const std::vector<std::string>& durable)
      -> std::pair<std::string, std::string> {
    Database db;
    EXPECT_TRUE(
        db.Query("CREATE TABLE pts (x DOUBLE, y DOUBLE)").ok());
    for (const std::string& sql : durable) {
      EXPECT_TRUE(db.Query(sql).ok()) << sql;
    }
    return {engine::WriteCsvToString(db.Query("SELECT * FROM pts").value()),
            engine::WriteCsvToString(
                db.Query("SELECT group_id, count(*) FROM pts GROUP BY x, y "
                         "DISTANCE-TO-ANY L2 WITHIN 2.0")
                    .value())};
  };

  Rng rng(FuzzSeed() ^ 0xD15C);
  const size_t cases = std::max<size_t>(FuzzCases() / 16, 6);
  size_t crashes_fired = 0;
  for (size_t c = 0; c < cases; ++c) {
    std::vector<Step> steps;
    const size_t n = 8 + rng.NextBounded(18);
    // Early in the schedule, so statements remain for the kill to land on.
    const size_t crash_at = rng.NextBounded(1 + n / 3);
    for (size_t i = 0; i < n; ++i) {
      if (i == crash_at) {
        Step crash;
        crash.kind = Step::kCrash;
        crash.site = rng.NextBounded(2) == 0 ? "storage.wal.append"
                                             : "storage.page.write";
        crash.nth = 1 + rng.NextBounded(10);
        steps.push_back(crash);
        continue;
      }
      const uint64_t dice = rng.NextBounded(10);
      Step step;
      if (dice < 6) {
        step.kind = Step::kInsert;
        std::string sql = "INSERT INTO pts VALUES ";
        const size_t rows = 1 + rng.NextBounded(5);
        for (size_t r = 0; r < rows; ++r) {
          char buf[96];
          std::snprintf(buf, sizeof(buf), "%s(%.17g, %.17g)",
                        r == 0 ? "" : ", ",
                        static_cast<double>(rng.NextBounded(6)) +
                            rng.NextUniform(0.0, 1.0),
                        static_cast<double>(rng.NextBounded(6)) +
                            rng.NextUniform(0.0, 1.0));
          sql += buf;
        }
        step.sql = sql;
      } else if (dice < 8) {
        step.kind = Step::kSelect;
      } else {
        step.kind = Step::kCheckpoint;
      }
      steps.push_back(step);
    }
    SCOPED_TRACE("case " + std::to_string(c));

    const std::string dir =
        fresh_dir("sgb_fuzz_crash_" + std::to_string(c));
    std::vector<std::string> durable;
    bool fired = false;
    auto got = run(steps, dir, &durable, &fired);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    if (fired) ++crashes_fired;
    if (got.value() == oracle(durable)) continue;

    // Divergence: shrink the schedule while the recovered state still
    // disagrees with the oracle, then print it.
    auto mismatch = [&](const std::vector<Step>& candidate) {
      std::vector<std::string> d;
      bool f = false;
      auto fresh = run(candidate, dir, &d, &f);
      if (!fresh.ok()) return true;
      return fresh.value() != oracle(d);
    };
    std::vector<Step> minimal = steps;
    bool shrunk = true;
    while (shrunk && minimal.size() > 1) {
      shrunk = false;
      for (size_t i = 0; i < minimal.size();) {
        std::vector<Step> candidate = minimal;
        candidate.erase(candidate.begin() + static_cast<ptrdiff_t>(i));
        if (mismatch(candidate)) {
          minimal = std::move(candidate);
          shrunk = true;
        } else {
          ++i;
        }
      }
    }
    std::string repro = "schedule = {\n";
    for (const Step& s : minimal) {
      switch (s.kind) {
        case Step::kInsert:
          repro += "  " + s.sql + ";\n";
          break;
        case Step::kSelect:
          repro += "  SELECT count(*) FROM pts;\n";
          break;
        case Step::kCheckpoint:
          repro += "  CHECKPOINT;\n";
          break;
        case Step::kCrash:
          repro += "  -- CRASH " + s.site + " nth=" +
                   std::to_string(s.nth) + "\n";
          break;
      }
    }
    repro += "};";
    ADD_FAILURE()
        << "recovered state diverges from the in-memory oracle\n" << repro;
    break;  // one minimized repro is enough
  }
  // The sweep is only meaningful if kills actually interrupted work.
  EXPECT_GT(crashes_fired, 0u);
}

}  // namespace
}  // namespace sgb::core
