// libFuzzer entry for the SGB differential harness.
//
// The fuzzer mutates a compact binary encoding of a grouping case and the
// harness cross-checks every implementation tier against the All-Pairs
// oracle — exactly the contract of the seeded gtest sweep
// (sgb_fuzz_test.cc), but with coverage-guided input generation instead of
// a fixed distribution. On any divergence, core failure, or malformed
// grouping the harness prints a paste-able repro and traps, which libFuzzer
// records as a crashing input.
//
// Input encoding (all little-endian, truncated input reads as zeros):
//   byte  0       bit 0 = metric (L2/LInf), bits 1.. pick the overlap clause
//   bytes 1-2     u16 -> epsilon in [0.05, 2.0]
//   bytes 3-10    u64 join seed (JOIN-ANY tie-breaking)
//   byte  11      bit 0 = also run the dop-4 parallel tiers
//   then 16-byte records: x, y as raw doubles; at most kMaxPoints points
//
// Raw doubles mean mutations naturally produce NaN and infinities; those
// inputs drop to the weaker contract (never crash, well-formed grouping,
// serial tiers only) that the engine guarantees for non-finite coordinates.
//
// Build with -DSGB_ENABLE_LIBFUZZER=ON (requires Clang). Under other
// toolchains the same file compiles into a standalone replay driver that
// runs every corpus file through LLVMFuzzerTestOneInput once — CI uses it
// to keep the harness building and the seed corpus valid on gcc.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <vector>

#include "core/sgb_all.h"
#include "core/sgb_any.h"
#include "fuzz_generators.h"
#include "geom/point.h"

namespace {

using sgb::core::AllOptions;
using sgb::core::AnyOptions;
using sgb::core::CaseConfig;
using sgb::core::Grouping;
using sgb::core::OverlapClause;
using sgb::core::PointKind;
using sgb::core::Repro;
using sgb::core::SgbAll;
using sgb::core::SgbAllAlgorithm;
using sgb::core::SgbAny;
using sgb::core::SgbAnyAlgorithm;
using sgb::geom::Metric;
using sgb::geom::Point;

// All-Pairs is O(n^2) and the harness runs ~10 tier combinations per
// input; 48 points keeps one exec well under a millisecond.
constexpr size_t kMaxPoints = 48;

/// Sequential decoder over the fuzz input; reads past the end yield zeros
/// so every byte string is a valid (if small) case.
struct ByteReader {
  const uint8_t* data;
  size_t size;
  size_t pos = 0;

  uint8_t U8() { return pos < size ? data[pos++] : 0; }

  uint16_t U16() {
    const uint16_t lo = U8();
    return static_cast<uint16_t>(lo | (static_cast<uint16_t>(U8()) << 8));
  }

  uint64_t U64() {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(U8()) << (8 * i);
    return v;
  }

  double F64() {
    const uint64_t bits = U64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  size_t Remaining() const { return pos < size ? size - pos : 0; }
};

CaseConfig DecodeConfig(ByteReader& in) {
  CaseConfig config;
  const uint8_t flags = in.U8();
  config.metric = (flags & 1) != 0 ? Metric::kLInf : Metric::kL2;
  constexpr OverlapClause kClauses[] = {OverlapClause::kJoinAny,
                                        OverlapClause::kEliminate,
                                        OverlapClause::kFormNewGroup};
  config.clause = kClauses[(flags >> 1) % 3];
  config.epsilon = 0.05 + 1.95 * (in.U16() / 65535.0);
  config.join_seed = in.U64();
  return config;
}

bool WellFormed(const Grouping& grouping, size_t n) {
  if (grouping.group_of.size() != n) return false;
  for (const size_t g : grouping.group_of) {
    if (g >= grouping.num_groups && g != Grouping::kEliminated) return false;
  }
  return true;
}

[[noreturn]] void Fail(const CaseConfig& config, const std::vector<Point>& pts,
                       const char* variant, const std::string& detail) {
  std::fprintf(stderr, "sgb_fuzzer: %s: %s\n%s\n", variant, detail.c_str(),
               Repro(config, pts).c_str());
  __builtin_trap();
}

template <typename Run>
void CheckTier(const CaseConfig& config, const std::vector<Point>& pts,
               const Grouping* oracle, Run run, const char* variant) {
  auto result = run();
  if (!result.ok()) Fail(config, pts, variant, result.status().ToString());
  if (!WellFormed(result.value(), pts.size())) {
    Fail(config, pts, variant, "malformed grouping");
  }
  if (oracle != nullptr && result.value().group_of != oracle->group_of) {
    Fail(config, pts, variant, "diverges from the All-Pairs oracle");
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  ByteReader in{data, size};
  const CaseConfig config = DecodeConfig(in);
  const bool parallel = (in.U8() & 1) != 0;

  std::vector<Point> pts;
  while (in.Remaining() >= 2 * sizeof(double) && pts.size() < kMaxPoints) {
    pts.push_back({in.F64(), in.F64()});
  }
  bool finite = true;
  for (const Point& p : pts) {
    finite &= std::isfinite(p.x) && std::isfinite(p.y);
  }

  // Non-finite coordinates break the metric axioms, so the tiers may
  // legitimately disagree; the contract narrows to crash-freedom and a
  // well-formed grouping, on the serial tiers only (the parallel grid
  // partitioner requires finite input).
  const std::vector<int> dops = (parallel && finite) ? std::vector<int>{1, 4}
                                                     : std::vector<int>{1};

  auto all_oracle = SgbAll(pts, AllOptions(config, SgbAllAlgorithm::kAllPairs,
                                           1));
  if (!all_oracle.ok()) {
    Fail(config, pts, "SgbAll/AllPairs/dop1", all_oracle.status().ToString());
  }
  const Grouping* all_ref = finite ? &all_oracle.value() : nullptr;
  if (!WellFormed(all_oracle.value(), pts.size())) {
    Fail(config, pts, "SgbAll/AllPairs/dop1", "malformed grouping");
  }
  for (const SgbAllAlgorithm algorithm :
       {SgbAllAlgorithm::kAllPairs, SgbAllAlgorithm::kBoundsChecking,
        SgbAllAlgorithm::kIndexed}) {
    for (const int dop : dops) {
      if (algorithm == SgbAllAlgorithm::kAllPairs && dop == 1) continue;
      const std::string variant = std::string("SgbAll/") +
                                  ToString(algorithm) + "/dop" +
                                  std::to_string(dop);
      CheckTier(
          config, pts, all_ref,
          [&] { return SgbAll(pts, AllOptions(config, algorithm, dop)); },
          variant.c_str());
    }
  }

  auto any_oracle = SgbAny(pts, AnyOptions(config, SgbAnyAlgorithm::kAllPairs,
                                           1));
  if (!any_oracle.ok()) {
    Fail(config, pts, "SgbAny/AllPairs/dop1", any_oracle.status().ToString());
  }
  const Grouping* any_ref = finite ? &any_oracle.value() : nullptr;
  if (!WellFormed(any_oracle.value(), pts.size())) {
    Fail(config, pts, "SgbAny/AllPairs/dop1", "malformed grouping");
  }
  for (const SgbAnyAlgorithm algorithm :
       {SgbAnyAlgorithm::kAllPairs, SgbAnyAlgorithm::kIndexed}) {
    for (const int dop : dops) {
      if (algorithm == SgbAnyAlgorithm::kAllPairs && dop == 1) continue;
      const std::string variant = std::string("SgbAny/") +
                                  ToString(algorithm) + "/dop" +
                                  std::to_string(dop);
      CheckTier(
          config, pts, any_ref,
          [&] { return SgbAny(pts, AnyOptions(config, algorithm, dop)); },
          variant.c_str());
    }
  }
  return 0;
}

#ifndef SGB_LIBFUZZER
// Standalone replay driver: run each file argument through the fuzz entry
// once. Exercised by ctest over tests/fuzz/corpus/ so the harness and the
// seed corpus stay green on toolchains without libFuzzer.
int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s corpus-file...\n", argv[0]);
    return 2;
  }
  for (int i = 1; i < argc; ++i) {
    std::FILE* f = std::fopen(argv[i], "rb");
    if (f == nullptr) {
      std::fprintf(stderr, "sgb_fuzzer: cannot open %s\n", argv[i]);
      return 2;
    }
    std::vector<uint8_t> bytes;
    uint8_t buf[4096];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) {
      bytes.insert(bytes.end(), buf, buf + got);
    }
    std::fclose(f);
    LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
    std::printf("sgb_fuzzer: %s ok (%zu bytes)\n", argv[i], bytes.size());
  }
  return 0;
}
#endif  // SGB_LIBFUZZER
