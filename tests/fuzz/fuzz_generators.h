// Shared input generators for the differential fuzz harness: the gtest
// sweep (sgb_fuzz_test.cc) and the libFuzzer entry (sgb_fuzzer_main.cc)
// draw their point sets and configurations from the same code so a corpus
// finding reproduces under either driver.

#ifndef SGB_TESTS_FUZZ_FUZZ_GENERATORS_H_
#define SGB_TESTS_FUZZ_FUZZ_GENERATORS_H_

#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/sgb_all.h"
#include "core/sgb_any.h"
#include "core/sgb_types.h"
#include "geom/point.h"

namespace sgb::core {

enum class PointKind { kUniform, kClustered, kDuplicates, kNonFinite };

inline const char* KindName(PointKind kind) {
  switch (kind) {
    case PointKind::kUniform: return "uniform";
    case PointKind::kClustered: return "clustered";
    case PointKind::kDuplicates: return "duplicates";
    case PointKind::kNonFinite: return "non-finite";
  }
  return "?";
}

inline std::vector<geom::Point> GeneratePoints(Rng& rng, PointKind kind,
                                               size_t n) {
  using geom::Point;
  std::vector<Point> pts;
  pts.reserve(n);
  switch (kind) {
    case PointKind::kUniform:
      for (size_t i = 0; i < n; ++i) {
        pts.push_back({rng.NextUniform(0, 8), rng.NextUniform(0, 8)});
      }
      break;
    case PointKind::kClustered: {
      const size_t hotspots = 1 + rng.NextBounded(5);
      std::vector<Point> centers;
      for (size_t i = 0; i < hotspots; ++i) {
        centers.push_back({rng.NextUniform(0, 8), rng.NextUniform(0, 8)});
      }
      for (size_t i = 0; i < n; ++i) {
        const Point& c = centers[rng.NextBounded(hotspots)];
        pts.push_back({rng.NextGaussian(c.x, 0.3), rng.NextGaussian(c.y, 0.3)});
      }
      break;
    }
    case PointKind::kDuplicates:
      // Snap to a coarse lattice: many exact duplicates, collinear runs,
      // and distances that land exactly on epsilon multiples — the
      // adversarial regime for tie-breaking and boundary predicates.
      for (size_t i = 0; i < n; ++i) {
        pts.push_back({0.5 * static_cast<double>(rng.NextBounded(9)),
                       0.5 * static_cast<double>(rng.NextBounded(9))});
      }
      break;
    case PointKind::kNonFinite: {
      constexpr double kSpecials[] = {
          std::numeric_limits<double>::quiet_NaN(),
          std::numeric_limits<double>::infinity(),
          -std::numeric_limits<double>::infinity(),
      };
      for (size_t i = 0; i < n; ++i) {
        Point p{rng.NextUniform(0, 8), rng.NextUniform(0, 8)};
        if (rng.NextBounded(4) == 0) p.x = kSpecials[rng.NextBounded(3)];
        if (rng.NextBounded(4) == 0) p.y = kSpecials[rng.NextBounded(3)];
        pts.push_back(p);
      }
      break;
    }
  }
  return pts;
}

struct CaseConfig {
  PointKind kind = PointKind::kUniform;
  geom::Metric metric = geom::Metric::kL2;
  double epsilon = 0.5;
  OverlapClause clause = OverlapClause::kJoinAny;
  uint64_t join_seed = 0;

  std::string ToText() const {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "kind=%s metric=%s epsilon=%.17g clause=%s join_seed=%llu",
                  KindName(kind),
                  metric == geom::Metric::kL2 ? "L2" : "LInf", epsilon,
                  ToString(clause),
                  static_cast<unsigned long long>(join_seed));
    return buf;
  }
};

inline SgbAllOptions AllOptions(const CaseConfig& config,
                                SgbAllAlgorithm algorithm, int dop) {
  SgbAllOptions options;
  options.epsilon = config.epsilon;
  options.metric = config.metric;
  options.on_overlap = config.clause;
  options.seed = config.join_seed;
  options.algorithm = algorithm;
  options.degree_of_parallelism = dop;
  return options;
}

inline SgbAnyOptions AnyOptions(const CaseConfig& config,
                                SgbAnyAlgorithm algorithm, int dop) {
  SgbAnyOptions options;
  options.epsilon = config.epsilon;
  options.metric = config.metric;
  options.algorithm = algorithm;
  options.degree_of_parallelism = dop;
  return options;
}

inline CaseConfig DrawConfig(Rng& rng) {
  CaseConfig config;
  config.kind = static_cast<PointKind>(rng.NextBounded(4));
  config.metric = rng.NextBounded(2) == 0 ? geom::Metric::kL2
                                          : geom::Metric::kLInf;
  config.epsilon = rng.NextUniform(0.05, 2.0);
  constexpr OverlapClause kClauses[] = {OverlapClause::kJoinAny,
                                        OverlapClause::kEliminate,
                                        OverlapClause::kFormNewGroup};
  config.clause = kClauses[rng.NextBounded(3)];
  config.join_seed = rng.NextU64();
  return config;
}

/// Paste-able repro: the config plus every point at full precision.
inline std::string Repro(const CaseConfig& config,
                         const std::vector<geom::Point>& pts) {
  std::string out = "repro: " + config.ToText() + "\npoints = {\n";
  char buf[96];
  for (const geom::Point& p : pts) {
    std::snprintf(buf, sizeof(buf), "  {%.17g, %.17g},\n", p.x, p.y);
    out += buf;
  }
  out += "};";
  return out;
}

}  // namespace sgb::core

#endif  // SGB_TESTS_FUZZ_FUZZ_GENERATORS_H_
