#include "cluster/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/random.h"

namespace sgb::cluster {

using geom::Point;

namespace {

/// k-means++ seeding: each next center is sampled proportionally to the
/// squared distance from the nearest already-chosen center.
std::vector<Point> SeedPlusPlus(std::span<const Point> points, size_t k,
                                Rng& rng) {
  std::vector<Point> centers;
  centers.reserve(k);
  centers.push_back(points[rng.NextBounded(points.size())]);

  std::vector<double> d2(points.size(),
                         std::numeric_limits<double>::infinity());
  while (centers.size() < k) {
    double total = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
      d2[i] = std::min(d2[i], geom::DistanceL2Squared(points[i],
                                                      centers.back()));
      total += d2[i];
    }
    if (total <= 0.0) {
      // All remaining points coincide with a center; duplicate one.
      centers.push_back(centers.back());
      continue;
    }
    double target = rng.NextDouble() * total;
    size_t chosen = points.size() - 1;
    for (size_t i = 0; i < points.size(); ++i) {
      target -= d2[i];
      if (target <= 0.0) {
        chosen = i;
        break;
      }
    }
    centers.push_back(points[chosen]);
  }
  return centers;
}

}  // namespace

Result<KMeansResult> KMeans(std::span<const Point> points,
                            const KMeansOptions& options) {
  if (options.k == 0) {
    return Status::InvalidArgument("k-means: k must be >= 1");
  }
  if (points.size() < options.k) {
    return Status::InvalidArgument("k-means: fewer points than clusters");
  }

  Rng rng(options.seed);
  KMeansResult result;
  result.centroids = SeedPlusPlus(points, options.k, rng);
  result.clustering.num_clusters = options.k;
  result.clustering.cluster_of.assign(points.size(), 0);

  std::vector<Point> sums(options.k);
  std::vector<size_t> counts(options.k);

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Assignment step.
    result.inertia = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
      size_t best = 0;
      double best_d2 = std::numeric_limits<double>::infinity();
      for (size_t c = 0; c < options.k; ++c) {
        const double d2 =
            geom::DistanceL2Squared(points[i], result.centroids[c]);
        if (d2 < best_d2) {
          best_d2 = d2;
          best = c;
        }
      }
      result.clustering.cluster_of[i] = best;
      result.inertia += best_d2;
    }

    // Update step.
    std::fill(sums.begin(), sums.end(), Point{0.0, 0.0});
    std::fill(counts.begin(), counts.end(), 0);
    for (size_t i = 0; i < points.size(); ++i) {
      const size_t c = result.clustering.cluster_of[i];
      sums[c].x += points[i].x;
      sums[c].y += points[i].y;
      ++counts[c];
    }
    double max_shift = 0.0;
    for (size_t c = 0; c < options.k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster on a random point.
        result.centroids[c] = points[rng.NextBounded(points.size())];
        max_shift = std::numeric_limits<double>::infinity();
        continue;
      }
      const Point next{sums[c].x / static_cast<double>(counts[c]),
                       sums[c].y / static_cast<double>(counts[c])};
      max_shift =
          std::max(max_shift, geom::DistanceL2(result.centroids[c], next));
      result.centroids[c] = next;
    }
    if (max_shift <= options.tolerance) break;
  }
  return result;
}

}  // namespace sgb::cluster
