#include "cluster/dbscan.h"

#include <cmath>
#include <deque>

#include "geom/rect.h"
#include "index/rtree.h"

namespace sgb::cluster {

using geom::Metric;
using geom::Point;
using geom::Rect;

namespace {

class NeighbourFinder {
 public:
  NeighbourFinder(std::span<const Point> points, const DbscanOptions& options,
                  DbscanStats* stats)
      : points_(points), options_(options), stats_(stats) {
    if (options_.use_index) {
      for (size_t i = 0; i < points_.size(); ++i) {
        index_.Insert(points_[i], i);
      }
    }
  }

  /// Indices of all points within ε of points_[i], including i itself.
  std::vector<size_t> RegionQuery(size_t i) {
    if (stats_ != nullptr) ++stats_->region_queries;
    std::vector<size_t> out;
    const Point& p = points_[i];
    if (options_.use_index) {
      index_.Search(Rect::Around(p, options_.epsilon),
                    [&](const Rect& r, uint64_t id) {
                      const Point q{r.lo.x, r.lo.y};
                      if (Accept(p, q)) out.push_back(id);
                    });
    } else {
      for (size_t j = 0; j < points_.size(); ++j) {
        if (Accept(p, points_[j])) out.push_back(j);
      }
    }
    return out;
  }

 private:
  bool Accept(const Point& p, const Point& q) {
    if (stats_ != nullptr) ++stats_->distance_computations;
    return geom::Similar(p, q, options_.metric, options_.epsilon);
  }

  std::span<const Point> points_;
  const DbscanOptions& options_;
  DbscanStats* stats_;
  index::RTree index_;
};

}  // namespace

Result<Clustering> Dbscan(std::span<const Point> points,
                          const DbscanOptions& options, DbscanStats* stats) {
  if (!(options.epsilon >= 0.0) || !std::isfinite(options.epsilon)) {
    return Status::InvalidArgument("DBSCAN: epsilon must be finite and >= 0");
  }
  if (options.min_points == 0) {
    return Status::InvalidArgument("DBSCAN: min_points must be >= 1");
  }

  constexpr size_t kUnvisited = static_cast<size_t>(-2);
  Clustering result;
  result.cluster_of.assign(points.size(), kUnvisited);

  NeighbourFinder finder(points, options, stats);

  for (size_t i = 0; i < points.size(); ++i) {
    if (result.cluster_of[i] != kUnvisited) continue;
    std::vector<size_t> seeds = finder.RegionQuery(i);
    if (seeds.size() < options.min_points) {
      result.cluster_of[i] = Clustering::kNoise;
      continue;
    }
    const size_t cluster = result.num_clusters++;
    result.cluster_of[i] = cluster;
    std::deque<size_t> frontier(seeds.begin(), seeds.end());
    while (!frontier.empty()) {
      const size_t j = frontier.front();
      frontier.pop_front();
      if (result.cluster_of[j] == Clustering::kNoise) {
        result.cluster_of[j] = cluster;  // border point
      }
      if (result.cluster_of[j] != kUnvisited) continue;
      result.cluster_of[j] = cluster;
      std::vector<size_t> neighbours = finder.RegionQuery(j);
      if (neighbours.size() >= options.min_points) {
        for (const size_t n : neighbours) {
          if (result.cluster_of[n] == kUnvisited ||
              result.cluster_of[n] == Clustering::kNoise) {
            frontier.push_back(n);
          }
        }
      }
    }
  }
  return result;
}

}  // namespace sgb::cluster
