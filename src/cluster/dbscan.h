#ifndef SGB_CLUSTER_DBSCAN_H_
#define SGB_CLUSTER_DBSCAN_H_

#include <span>

#include "cluster/kmeans.h"  // for Clustering
#include "common/status.h"
#include "geom/point.h"

namespace sgb::cluster {

struct DbscanOptions {
  double epsilon = 0.2;
  size_t min_points = 4;
  geom::Metric metric = geom::Metric::kL2;
  /// When true, neighbourhood queries use an R-tree (the paper compares
  /// against "the state-of-the-art implementation of DBSCAN with an
  /// R-tree"); otherwise a linear scan is used.
  bool use_index = true;
};

struct DbscanStats {
  size_t region_queries = 0;
  size_t distance_computations = 0;
};

/// Density-based clustering (Ester et al. 1996) — the density baseline of
/// Figure 11. Core points have >= min_points neighbours within ε
/// (themselves included); clusters grow by density reachability; points
/// reachable from no core point are labelled Clustering::kNoise.
///
/// Errors: InvalidArgument for a bad ε or min_points == 0.
Result<Clustering> Dbscan(std::span<const geom::Point> points,
                          const DbscanOptions& options,
                          DbscanStats* stats = nullptr);

}  // namespace sgb::cluster

#endif  // SGB_CLUSTER_DBSCAN_H_
