#ifndef SGB_CLUSTER_KMEANS_H_
#define SGB_CLUSTER_KMEANS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "geom/point.h"

namespace sgb::cluster {

/// A generic clustering result used by all three baselines: a cluster id
/// per input point (`kNoise` marks DBSCAN noise) plus per-cluster info.
struct Clustering {
  static constexpr size_t kNoise = static_cast<size_t>(-1);

  std::vector<size_t> cluster_of;
  size_t num_clusters = 0;
};

struct KMeansOptions {
  size_t k = 8;
  size_t max_iterations = 50;
  /// Stop when no centroid moves by more than this (L2).
  double tolerance = 1e-7;
  uint64_t seed = 42;
};

struct KMeansResult {
  Clustering clustering;
  std::vector<geom::Point> centroids;
  size_t iterations = 0;
  double inertia = 0.0;  ///< sum of squared distances to assigned centroid
};

/// Lloyd's k-means with k-means++ seeding — the partitioning baseline the
/// paper compares against in Figure 11 (K=20 and K=40). Built from scratch;
/// multiple full passes over the data per iteration are exactly what makes
/// it lose to the single-pass SGB operators.
///
/// Errors: InvalidArgument when k == 0 or k > number of points.
Result<KMeansResult> KMeans(std::span<const geom::Point> points,
                            const KMeansOptions& options);

}  // namespace sgb::cluster

#endif  // SGB_CLUSTER_KMEANS_H_
