#ifndef SGB_CLUSTER_BIRCH_H_
#define SGB_CLUSTER_BIRCH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "cluster/kmeans.h"  // for Clustering
#include "common/status.h"
#include "geom/point.h"

namespace sgb::cluster {

struct BirchOptions {
  /// Absorption threshold T: a point joins a leaf subcluster only if the
  /// subcluster's radius stays <= threshold.
  double threshold = 0.2;
  /// Branching factor B of internal nodes.
  size_t branching = 8;
  /// Maximum clustering-feature entries per leaf (BIRCH's L).
  size_t leaf_entries = 8;
};

struct BirchResult {
  Clustering clustering;
  /// Centroid of each produced subcluster.
  std::vector<geom::Point> centroids;
  size_t cf_entries = 0;  ///< leaf CF entries in the final tree
};

/// BIRCH (Zhang, Ramakrishnan, Livny 1996) — the hierarchical baseline of
/// Figure 11. Phase 1 builds the CF-tree by absorbing points into leaf
/// subclusters under the radius threshold; a final labelling pass assigns
/// every input point to its nearest leaf-subcluster centroid (BIRCH's
/// refinement phase). The global-clustering phase over leaf entries is
/// intentionally the identity: each leaf CF entry is one output cluster.
///
/// Errors: InvalidArgument for non-positive threshold/branching/leaf size.
Result<BirchResult> Birch(std::span<const geom::Point> points,
                          const BirchOptions& options);

}  // namespace sgb::cluster

#endif  // SGB_CLUSTER_BIRCH_H_
