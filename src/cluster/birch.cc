#include "cluster/birch.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

namespace sgb::cluster {

using geom::Point;

namespace {

/// Clustering feature: (N, linear sum, sum of squares). CFs are additive,
/// which is what lets the tree summarize subclusters in O(1) per update.
struct CF {
  double n = 0.0;
  double lsx = 0.0;
  double lsy = 0.0;
  double ss = 0.0;

  static CF FromPoint(const Point& p) {
    return CF{1.0, p.x, p.y, p.x * p.x + p.y * p.y};
  }

  void Add(const CF& o) {
    n += o.n;
    lsx += o.lsx;
    lsy += o.lsy;
    ss += o.ss;
  }

  Point Centroid() const { return Point{lsx / n, lsy / n}; }

  /// Root-mean-square distance of members to the centroid.
  double Radius() const {
    const double cx = lsx / n;
    const double cy = lsy / n;
    const double r2 = ss / n - (cx * cx + cy * cy);
    return r2 > 0.0 ? std::sqrt(r2) : 0.0;
  }
};

struct Node;

struct NodeEntry {
  CF cf;
  std::unique_ptr<Node> child;  // null in leaves
};

struct Node {
  bool leaf = true;
  std::vector<NodeEntry> entries;

  CF Summary() const {
    CF total;
    for (const NodeEntry& e : entries) total.Add(e.cf);
    return total;
  }
};

class CfTree {
 public:
  explicit CfTree(const BirchOptions& options)
      : options_(options), root_(std::make_unique<Node>()) {}

  void Insert(const Point& p) {
    std::unique_ptr<Node> sibling = InsertRec(root_.get(), CF::FromPoint(p));
    if (sibling != nullptr) {
      auto new_root = std::make_unique<Node>();
      new_root->leaf = false;
      NodeEntry left;
      left.cf = root_->Summary();
      left.child = std::move(root_);
      NodeEntry right;
      right.cf = sibling->Summary();
      right.child = std::move(sibling);
      new_root->entries.push_back(std::move(left));
      new_root->entries.push_back(std::move(right));
      root_ = std::move(new_root);
    }
  }

  /// Collects the centroids of all leaf CF entries.
  std::vector<Point> LeafCentroids() const {
    std::vector<Point> out;
    std::vector<const Node*> stack = {root_.get()};
    while (!stack.empty()) {
      const Node* node = stack.back();
      stack.pop_back();
      for (const NodeEntry& e : node->entries) {
        if (node->leaf) {
          out.push_back(e.cf.Centroid());
        } else {
          stack.push_back(e.child.get());
        }
      }
    }
    return out;
  }

 private:
  size_t Capacity(const Node& node) const {
    return node.leaf ? options_.leaf_entries : options_.branching;
  }

  static size_t ClosestEntry(const Node& node, const CF& cf) {
    const Point c = cf.Centroid();
    size_t best = 0;
    double best_d2 = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < node.entries.size(); ++i) {
      const double d2 = geom::DistanceL2Squared(c, node.entries[i].cf.Centroid());
      if (d2 < best_d2) {
        best_d2 = d2;
        best = i;
      }
    }
    return best;
  }

  /// Farthest-pair split: seeds are the two entries with the most distant
  /// centroids; the rest join the closer seed.
  std::unique_ptr<Node> Split(Node* node) {
    std::vector<NodeEntry> pool = std::move(node->entries);
    node->entries.clear();
    auto sibling = std::make_unique<Node>();
    sibling->leaf = node->leaf;

    size_t si = 0;
    size_t sj = 1;
    double worst = -1.0;
    for (size_t i = 0; i + 1 < pool.size(); ++i) {
      for (size_t j = i + 1; j < pool.size(); ++j) {
        const double d2 = geom::DistanceL2Squared(pool[i].cf.Centroid(),
                                                  pool[j].cf.Centroid());
        if (d2 > worst) {
          worst = d2;
          si = i;
          sj = j;
        }
      }
    }
    const Point a = pool[si].cf.Centroid();
    const Point b = pool[sj].cf.Centroid();
    for (size_t i = 0; i < pool.size(); ++i) {
      const Point c = pool[i].cf.Centroid();
      if (geom::DistanceL2Squared(c, a) <= geom::DistanceL2Squared(c, b)) {
        node->entries.push_back(std::move(pool[i]));
      } else {
        sibling->entries.push_back(std::move(pool[i]));
      }
    }
    // Guard against an empty side (possible with coincident centroids).
    if (node->entries.empty()) {
      node->entries.push_back(std::move(sibling->entries.back()));
      sibling->entries.pop_back();
    } else if (sibling->entries.empty()) {
      sibling->entries.push_back(std::move(node->entries.back()));
      node->entries.pop_back();
    }
    return sibling;
  }

  /// Inserts one point-CF below `node`; returns a new sibling if the node
  /// split, in which case the caller re-derives both nodes' summary CFs.
  std::unique_ptr<Node> InsertRec(Node* node, const CF& cf) {
    if (node->leaf) {
      if (!node->entries.empty()) {
        const size_t best = ClosestEntry(*node, cf);
        CF merged = node->entries[best].cf;
        merged.Add(cf);
        if (merged.Radius() <= options_.threshold) {
          node->entries[best].cf = merged;
          return nullptr;
        }
      }
      node->entries.push_back(NodeEntry{cf, nullptr});
      if (node->entries.size() > Capacity(*node)) return Split(node);
      return nullptr;
    }

    const size_t best = ClosestEntry(*node, cf);
    std::unique_ptr<Node> child_sibling =
        InsertRec(node->entries[best].child.get(), cf);
    node->entries[best].cf = node->entries[best].child->Summary();
    if (child_sibling != nullptr) {
      NodeEntry e;
      e.cf = child_sibling->Summary();
      e.child = std::move(child_sibling);
      node->entries.push_back(std::move(e));
      if (node->entries.size() > Capacity(*node)) return Split(node);
    }
    return nullptr;
  }

  const BirchOptions& options_;
  std::unique_ptr<Node> root_;
};

}  // namespace

Result<BirchResult> Birch(std::span<const Point> points,
                          const BirchOptions& options) {
  if (!(options.threshold >= 0.0) || !std::isfinite(options.threshold)) {
    return Status::InvalidArgument("BIRCH: threshold must be finite and >= 0");
  }
  if (options.branching < 2 || options.leaf_entries < 1) {
    return Status::InvalidArgument(
        "BIRCH: branching must be >= 2 and leaf_entries >= 1");
  }

  // Phase 1: build the CF tree.
  CfTree tree(options);
  for (const Point& p : points) tree.Insert(p);

  BirchResult result;
  result.centroids = tree.LeafCentroids();
  result.cf_entries = result.centroids.size();
  result.clustering.num_clusters = result.centroids.size();
  result.clustering.cluster_of.assign(points.size(), 0);

  // Labelling pass: nearest leaf-subcluster centroid.
  for (size_t i = 0; i < points.size(); ++i) {
    size_t best = 0;
    double best_d2 = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < result.centroids.size(); ++c) {
      const double d2 = geom::DistanceL2Squared(points[i], result.centroids[c]);
      if (d2 < best_d2) {
        best_d2 = d2;
        best = c;
      }
    }
    result.clustering.cluster_of[i] = best;
  }
  return result;
}

}  // namespace sgb::cluster
