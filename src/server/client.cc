#include "server/client.h"

#include <utility>

#include "server/protocol.h"

namespace sgb::server {

namespace {

/// Splits a wire line on literal tabs and unescapes each field. Escaping
/// guarantees data tabs never appear literally, so this is exact.
std::vector<std::string> SplitFields(const std::string& line) {
  std::vector<std::string> fields;
  size_t start = 0;
  for (;;) {
    const size_t tab = line.find('\t', start);
    if (tab == std::string::npos) {
      fields.push_back(UnescapeField(line.substr(start)));
      return fields;
    }
    fields.push_back(UnescapeField(line.substr(start, tab - start)));
    start = tab + 1;
  }
}

std::string NextToken(const std::string& line, size_t* pos) {
  while (*pos < line.size() && line[*pos] == ' ') ++*pos;
  const size_t start = *pos;
  while (*pos < line.size() && line[*pos] != ' ') ++*pos;
  std::string token = line.substr(start, *pos - start);
  while (*pos < line.size() && line[*pos] == ' ') ++*pos;
  return token;
}

}  // namespace

Client::Client(std::unique_ptr<Socket> socket)
    : socket_(std::move(socket)),
      reader_(std::make_unique<LineReader>(socket_.get())) {}

Result<Client> Client::ConnectUnixSocket(const std::string& path) {
  auto socket = ConnectUnix(path);
  if (!socket.ok()) return socket.status();
  return Client(std::make_unique<Socket>(std::move(socket).value()));
}

Result<Client> Client::ConnectLoopback(uint16_t port) {
  auto socket = ConnectTcp(port);
  if (!socket.ok()) return socket.status();
  return Client(std::make_unique<Socket>(std::move(socket).value()));
}

Status Client::BufferEventLine(const std::string& line) {
  std::vector<std::string> fields = SplitFields(line.substr(6));
  if (fields.size() != 6) {
    return Status::IoError("malformed EVENT line: " + line);
  }
  DeltaEvent event;
  event.query = std::move(fields[0]);
  try {
    event.window_start = std::stod(fields[1]);
    event.window_end = std::stod(fields[2]);
    event.point = std::stoll(fields[4]);
    event.groups = std::stoll(fields[5]);
  } catch (...) {
    return Status::IoError("malformed EVENT line: " + line);
  }
  event.kind = std::move(fields[3]);
  events_.push_back(std::move(event));
  return Status::OK();
}

Result<bool> Client::ReadResponseLine(std::string* line) {
  for (;;) {
    auto more = reader_->ReadLine(line);
    if (!more.ok() || !more.value()) return more;
    if (line->rfind("EVENT ", 0) != 0) return true;
    // Asynchronous group-delta push (protocol.h): buffer it and keep
    // reading for the actual response.
    SGB_RETURN_IF_ERROR(BufferEventLine(*line));
  }
}

Result<QueryResult> Client::RoundTrip(const std::string& line) {
  if (!connected()) return Status::IoError("client is not connected");
  SGB_RETURN_IF_ERROR(socket_->WriteAll(line + "\n"));
  std::string response;
  auto more = ReadResponseLine(&response);
  if (!more.ok()) return more.status();
  if (!more.value()) {
    return Status::IoError("server closed the connection");
  }
  size_t pos = 0;
  const std::string verb = NextToken(response, &pos);
  if (verb == "ERR") {
    const std::string code = NextToken(response, &pos);
    return Status(ParseStatusCodeToken(code),
                  UnescapeField(response.substr(pos)));
  }
  if (verb != "OK") {
    return Status::IoError("unexpected server response: " + response);
  }
  size_t nrows = 0;
  size_t ncols = 0;
  try {
    nrows = std::stoull(NextToken(response, &pos));
    ncols = std::stoull(NextToken(response, &pos));
  } catch (...) {
    return Status::IoError("malformed OK line: " + response);
  }
  QueryResult result;
  if (ncols == 0) return result;
  std::string row_line;
  for (size_t i = 0; i <= nrows; ++i) {  // header + nrows data lines
    auto got = reader_->ReadLine(&row_line);
    if (!got.ok()) return got.status();
    if (!got.value()) {
      return Status::IoError("connection closed mid result set");
    }
    std::vector<std::string> fields = SplitFields(row_line);
    if (fields.size() != ncols) {
      return Status::IoError("malformed result row (expected " +
                             std::to_string(ncols) + " fields, got " +
                             std::to_string(fields.size()) + ")");
    }
    if (i == 0) {
      result.columns = std::move(fields);
    } else {
      result.rows.push_back(std::move(fields));
    }
  }
  return result;
}

Result<QueryResult> Client::Query(const std::string& sql) {
  return RoundTrip("QUERY " + EscapeField(sql));
}

Status Client::Prepare(const std::string& name, const std::string& sql) {
  return RoundTrip("PREPARE " + name + " " + EscapeField(sql)).status();
}

Result<QueryResult> Client::Execute(const std::string& name) {
  return RoundTrip("EXECUTE " + name);
}

Status Client::Subscribe(const std::string& name) {
  return RoundTrip("SUBSCRIBE " + name).status();
}

Status Client::Unsubscribe(const std::string& name) {
  return RoundTrip("UNSUBSCRIBE " + name).status();
}

Result<DeltaEvent> Client::NextEvent() {
  while (events_.empty()) {
    if (!connected()) return Status::IoError("client is not connected");
    // Unlike ReadResponseLine, return after the FIRST buffered event —
    // no response line is in flight, so looping for one would block
    // forever. A non-EVENT line here is a protocol violation.
    std::string line;
    auto more = reader_->ReadLine(&line);
    if (!more.ok()) return more.status();
    if (!more.value()) {
      return Status::IoError("server closed the connection");
    }
    if (line.rfind("EVENT ", 0) != 0) {
      return Status::IoError("unexpected server line while waiting for an "
                             "event: " + line);
    }
    SGB_RETURN_IF_ERROR(BufferEventLine(line));
  }
  DeltaEvent event = std::move(events_.front());
  events_.pop_front();
  return event;
}

Status Client::Ping() {
  if (!connected()) return Status::IoError("client is not connected");
  SGB_RETURN_IF_ERROR(socket_->WriteAll("PING\n"));
  std::string response;
  auto more = ReadResponseLine(&response);
  if (!more.ok()) return more.status();
  if (!more.value() || response != "PONG") {
    return Status::IoError("expected PONG, got '" + response + "'");
  }
  return Status::OK();
}

Status Client::Quit() {
  if (!connected()) return Status::IoError("client is not connected");
  SGB_RETURN_IF_ERROR(socket_->WriteAll("QUIT\n"));
  std::string response;
  auto more = ReadResponseLine(&response);
  socket_->Close();
  if (!more.ok()) return more.status();
  if (!more.value() || response != "BYE") {
    return Status::IoError("expected BYE, got '" + response + "'");
  }
  return Status::OK();
}

void Client::Abort() {
  // Shutdown, not close: a close while another thread of this process is
  // blocked in recv on the fd keeps the kernel socket alive (no FIN is
  // sent) until that recv returns, so the server would never see the
  // hangup. shutdown() sends the FIN immediately, wakes the reader, and
  // leaves the descriptor for the destructor to release.
  if (socket_) socket_->Shutdown();
}

}  // namespace sgb::server
