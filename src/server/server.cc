#include "server/server.h"

#include <poll.h>

#include <chrono>
#include <utility>

#include "obs/metrics.h"
#include "server/protocol.h"

// Linux defines POLLRDHUP (peer shut down its write side) behind
// _GNU_SOURCE; the value is stable ABI, so define it when absent and fall
// back to it being a no-op bit elsewhere.
#ifndef POLLRDHUP
#define POLLRDHUP 0x2000
#endif

namespace sgb::server {

namespace {

constexpr auto kWatchdogInterval = std::chrono::milliseconds(20);

/// Round-trip double rendering for EVENT window bounds.
std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// One EVENT line per group delta (protocol.h): six tab-separated escaped
/// fields after the verb.
std::string FormatEventLines(const engine::DeltaBatch& batch) {
  std::string out;
  for (const engine::GroupDelta& delta : batch.deltas) {
    out += "EVENT ";
    out += EscapeField(batch.query);
    out.push_back('\t');
    out += FormatDouble(batch.window_start);
    out.push_back('\t');
    out += FormatDouble(batch.window_end);
    out.push_back('\t');
    out += EscapeField(delta.kind);
    out.push_back('\t');
    out += std::to_string(delta.point);
    out.push_back('\t');
    out += std::to_string(delta.groups);
    out.push_back('\n');
  }
  return out;
}

}  // namespace

Server::Server(const engine::Database* db, ServerOptions options)
    : db_(db), options_(std::move(options)) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (started_.load()) {
    return Status::InvalidArgument("server already started");
  }
  if (options_.unix_path.empty() && !options_.tcp) {
    return Status::InvalidArgument(
        "server needs a unix path and/or a TCP listener");
  }
  if (!options_.unix_path.empty()) {
    auto listener = Listener::ListenUnix(options_.unix_path);
    if (!listener.ok()) return listener.status();
    unix_listener_ = std::move(listener).value();
  }
  if (options_.tcp) {
    auto listener = Listener::ListenTcp(options_.tcp_port);
    if (!listener.ok()) {
      unix_listener_.Close();
      return listener.status();
    }
    tcp_listener_ = std::move(listener).value();
    tcp_port_ = tcp_listener_.port();
  }
  started_.store(true);
  if (unix_listener_.valid()) {
    accept_threads_.emplace_back(
        [this] { AcceptLoop(&unix_listener_, "unix"); });
  }
  if (tcp_listener_.valid()) {
    accept_threads_.emplace_back(
        [this] { AcceptLoop(&tcp_listener_, "tcp"); });
  }
  watchdog_ = std::thread([this] { WatchdogLoop(); });
  return Status::OK();
}

void Server::Stop() {
  if (!started_.load()) return;
  if (stopping_.exchange(true)) {
    // A concurrent Stop() is already tearing down; let it finish.
    for (auto& t : accept_threads_) {
      if (t.joinable()) t.join();
    }
    return;
  }
  unix_listener_.Close();
  tcp_listener_.Close();
  for (auto& t : accept_threads_) {
    if (t.joinable()) t.join();
  }
  accept_threads_.clear();
  if (watchdog_.joinable()) watchdog_.join();

  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& conn : conns) {
    // Unblock the serve loop's read and fail its running statement.
    conn->socket.Shutdown();
    conn->session->CancelActive();
  }
  for (auto& conn : conns) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  obs::MetricsRegistry::Global().GetGauge("server.active_sessions").Set(0);
}

size_t Server::active_connections() const {
  std::lock_guard<std::mutex> lock(conns_mu_);
  size_t active = 0;
  for (const auto& conn : conns_) {
    if (!conn->done.load(std::memory_order_acquire)) ++active;
  }
  return active;
}

void Server::ReapFinished() {
  std::lock_guard<std::mutex> lock(conns_mu_);
  auto it = conns_.begin();
  while (it != conns_.end()) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::AcceptLoop(Listener* listener, const char* transport) {
  auto& registry = obs::MetricsRegistry::Global();
  while (!stopping_.load()) {
    auto accepted = listener->Accept();
    if (!accepted.ok()) {
      if (stopping_.load() || !listener->valid()) break;
      // Transient (possibly fault-injected) accept failure: keep serving.
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      continue;
    }
    ReapFinished();
    Socket socket = std::move(accepted).value();
    if (active_connections() >= options_.max_sessions) {
      registry.GetCounter("server.shed_connections").Add(1);
      // Best effort: the client gets a parseable ERR before the close.
      (void)socket.WriteAll("ERR resource_exhausted busy: session limit (" +
                            std::to_string(options_.max_sessions) +
                            ") reached\n");
      continue;  // socket closes as it goes out of scope
    }
    auto conn = std::make_shared<Connection>();
    const std::string peer =
        std::string(transport) + ":fd=" + std::to_string(socket.fd());
    conn->socket = std::move(socket);
    conn->session = db_->CreateSession(peer);
    total_connections_.fetch_add(1, std::memory_order_relaxed);
    registry.GetCounter("server.connections").Add(1);
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(conn);
    }
    registry.GetGauge("server.active_sessions")
        .Set(static_cast<double>(active_connections()));
    conn->thread = std::thread([this, conn] { ServeConnection(conn); });
  }
}

void Server::ServeConnection(const std::shared_ptr<Connection>& conn) {
  LineReader reader(&conn->socket);
  std::string line;
  for (;;) {
    auto more = reader.ReadLine(&line);
    if (!more.ok() || !more.value()) break;  // read error or clean EOF
    if (!ServeCommand(conn, line)) break;
  }
  // Detach this connection's delta subscriptions before the socket dies so
  // window closes stop paying for doomed writes.
  {
    std::lock_guard<std::mutex> lock(conn->subs_mu);
    for (const auto& [name, id] : conn->subscriptions) {
      db_->continuous().Unsubscribe(id);
    }
    conn->subscriptions.clear();
  }
  // Shutdown (not Close): the watchdog may hold this Connection and poll
  // its fd; keeping the descriptor open prevents fd-number reuse races.
  conn->socket.Shutdown();
  conn->done.store(true, std::memory_order_release);
  obs::MetricsRegistry::Global()
      .GetGauge("server.active_sessions")
      .Set(static_cast<double>(active_connections()));
}

bool Server::ServeCommand(const std::shared_ptr<Connection>& conn_ptr,
                          const std::string& line) {
  Connection& conn = *conn_ptr;
  auto& registry = obs::MetricsRegistry::Global();
  auto parsed = ParseCommand(line);
  if (!parsed.ok()) return WriteError(conn, parsed.status()).ok();
  const Command& cmd = parsed.value();
  switch (cmd.kind) {
    case Command::Kind::kPing:
      return WriteLocked(conn, "PONG\n").ok();
    case Command::Kind::kQuit:
      (void)WriteLocked(conn, "BYE\n");
      return false;
    case Command::Kind::kPrepare: {
      registry.GetCounter("server.statements").Add(1);
      const Status status =
          db_->PrepareStatement(*conn.session, cmd.name, cmd.sql);
      if (!status.ok()) return WriteError(conn, status).ok();
      return WriteLocked(conn, "OK 0 0\n").ok();
    }
    case Command::Kind::kSubscribe: {
      registry.GetCounter("server.statements").Add(1);
      const Status status = SubscribeConnection(conn_ptr, cmd.name);
      if (!status.ok()) return WriteError(conn, status).ok();
      return WriteLocked(conn, "OK 0 0\n").ok();
    }
    case Command::Kind::kUnsubscribe: {
      registry.GetCounter("server.statements").Add(1);
      const Status status = UnsubscribeConnection(conn, cmd.name);
      if (!status.ok()) return WriteError(conn, status).ok();
      return WriteLocked(conn, "OK 0 0\n").ok();
    }
    case Command::Kind::kQuery:
    case Command::Kind::kExecute: {
      registry.GetCounter("server.statements").Add(1);
      conn.busy.store(true, std::memory_order_release);
      Result<engine::Table> result =
          cmd.kind == Command::Kind::kQuery
              ? db_->Query(*conn.session, cmd.sql)
              : db_->ExecutePrepared(*conn.session, cmd.name);
      conn.busy.store(false, std::memory_order_release);
      if (!result.ok()) return WriteError(conn, result.status()).ok();
      return WriteTable(conn, result.value()).ok();
    }
  }
  return false;
}

Status Server::SubscribeConnection(const std::shared_ptr<Connection>& conn,
                                   const std::string& name) {
  {
    std::lock_guard<std::mutex> lock(conn->subs_mu);
    if (conn->subscriptions.count(name) != 0) {
      return Status::InvalidArgument("already subscribed to '" + name + "'");
    }
  }
  // The callback runs on whatever thread drives a window close. It holds
  // the connection weakly: once the connection is gone (or its socket
  // write fails) it returns false, detaching itself.
  std::weak_ptr<Connection> weak = conn;
  auto subscription = db_->continuous().Subscribe(
      name, [weak](const engine::DeltaBatch& batch) {
        std::shared_ptr<Connection> conn = weak.lock();
        if (conn == nullptr || conn->done.load(std::memory_order_acquire)) {
          return false;
        }
        std::lock_guard<std::mutex> lock(conn->write_mu);
        if (!conn->socket.WriteAll(FormatEventLines(batch)).ok()) {
          return false;
        }
        obs::MetricsRegistry::Global()
            .GetCounter("server.delta_batches")
            .Add(1);
        return true;
      });
  if (!subscription.ok()) return subscription.status();
  std::lock_guard<std::mutex> lock(conn->subs_mu);
  conn->subscriptions.emplace(name, subscription.value());
  return Status::OK();
}

Status Server::UnsubscribeConnection(Connection& conn,
                                     const std::string& name) {
  uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(conn.subs_mu);
    auto it = conn.subscriptions.find(name);
    if (it == conn.subscriptions.end()) {
      return Status::NotFound("not subscribed to '" + name + "'");
    }
    id = it->second;
    conn.subscriptions.erase(it);
  }
  db_->continuous().Unsubscribe(id);
  return Status::OK();
}

Status Server::WriteLocked(Connection& conn, const std::string& out) {
  std::lock_guard<std::mutex> lock(conn.write_mu);
  return conn.socket.WriteAll(out);
}

Status Server::WriteTable(Connection& conn, const engine::Table& table) {
  const size_t ncols = table.schema().size();
  std::string out = "OK " + std::to_string(table.NumRows()) + " " +
                    std::to_string(ncols) + "\n";
  if (ncols > 0) {
    out += FormatHeader(table);
    out.push_back('\n');
    for (const engine::Row& row : table.rows()) {
      out += FormatRow(row);
      out.push_back('\n');
    }
  }
  return WriteLocked(conn, out);
}

Status Server::WriteError(Connection& conn, const Status& error) {
  return WriteLocked(conn, "ERR " + StatusCodeToken(error.code()) + " " +
                               EscapeField(error.message()) + "\n");
}

void Server::WatchdogLoop() {
  while (!stopping_.load()) {
    std::vector<std::shared_ptr<Connection>> busy;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      for (const auto& conn : conns_) {
        if (!conn->done.load(std::memory_order_acquire) &&
            conn->busy.load(std::memory_order_acquire) &&
            conn->socket.valid()) {
          busy.push_back(conn);
        }
      }
    }
    for (const auto& conn : busy) {
      pollfd pfd{};
      pfd.fd = conn->socket.fd();
      pfd.events = POLLRDHUP;
      const int rc = ::poll(&pfd, 1, 0);
      if (rc > 0 &&
          (pfd.revents & (POLLRDHUP | POLLHUP | POLLERR | POLLNVAL)) != 0) {
        // The peer vanished mid-statement: cancel this session's queries
        // (they log as `cancelled`); every other session is untouched.
        obs::MetricsRegistry::Global()
            .GetCounter("server.disconnect_cancels")
            .Add(1);
        conn->session->CancelActive();
      }
    }
    std::this_thread::sleep_for(kWatchdogInterval);
  }
}

}  // namespace sgb::server
