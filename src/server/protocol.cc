#include "server/protocol.h"

#include <cctype>

namespace sgb::server {

namespace {

/// First whitespace-delimited token of `line` starting at `*pos`,
/// advancing `*pos` past it and any following spaces.
std::string NextToken(const std::string& line, size_t* pos) {
  while (*pos < line.size() && line[*pos] == ' ') ++*pos;
  const size_t start = *pos;
  while (*pos < line.size() && line[*pos] != ' ') ++*pos;
  std::string token = line.substr(start, *pos - start);
  while (*pos < line.size() && line[*pos] == ' ') ++*pos;
  return token;
}

}  // namespace

Result<Command> ParseCommand(const std::string& line) {
  size_t pos = 0;
  std::string verb = NextToken(line, &pos);
  for (char& c : verb) c = static_cast<char>(std::toupper(c));
  Command cmd;
  if (verb == "PING") {
    cmd.kind = Command::Kind::kPing;
    return cmd;
  }
  if (verb == "QUIT") {
    cmd.kind = Command::Kind::kQuit;
    return cmd;
  }
  if (verb == "QUERY") {
    cmd.kind = Command::Kind::kQuery;
    cmd.sql = UnescapeField(line.substr(pos));
    if (cmd.sql.empty()) {
      return Status::InvalidArgument("QUERY requires a statement");
    }
    return cmd;
  }
  if (verb == "PREPARE") {
    cmd.kind = Command::Kind::kPrepare;
    cmd.name = NextToken(line, &pos);
    cmd.sql = UnescapeField(line.substr(pos));
    if (cmd.name.empty() || cmd.sql.empty()) {
      return Status::InvalidArgument("PREPARE requires a name and a statement");
    }
    return cmd;
  }
  if (verb == "EXECUTE") {
    cmd.kind = Command::Kind::kExecute;
    cmd.name = NextToken(line, &pos);
    if (cmd.name.empty()) {
      return Status::InvalidArgument("EXECUTE requires a statement name");
    }
    return cmd;
  }
  if (verb == "SUBSCRIBE") {
    cmd.kind = Command::Kind::kSubscribe;
    cmd.name = NextToken(line, &pos);
    if (cmd.name.empty()) {
      return Status::InvalidArgument(
          "SUBSCRIBE requires a continuous query name");
    }
    return cmd;
  }
  if (verb == "UNSUBSCRIBE") {
    cmd.kind = Command::Kind::kUnsubscribe;
    cmd.name = NextToken(line, &pos);
    if (cmd.name.empty()) {
      return Status::InvalidArgument(
          "UNSUBSCRIBE requires a continuous query name");
    }
    return cmd;
  }
  return Status::InvalidArgument(
      "unknown command '" + verb +
      "' (expected QUERY, PREPARE, EXECUTE, SUBSCRIBE, UNSUBSCRIBE, PING, "
      "or QUIT)");
}

std::string EscapeField(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string UnescapeField(const std::string& field) {
  std::string out;
  out.reserve(field.size());
  for (size_t i = 0; i < field.size(); ++i) {
    if (field[i] != '\\' || i + 1 >= field.size()) {
      out.push_back(field[i]);
      continue;
    }
    const char next = field[++i];
    switch (next) {
      case '\\':
        out.push_back('\\');
        break;
      case 't':
        out.push_back('\t');
        break;
      case 'n':
        out.push_back('\n');
        break;
      case 'r':
        out.push_back('\r');
        break;
      default:
        out.push_back('\\');
        out.push_back(next);
    }
  }
  return out;
}

std::string FormatHeader(const engine::Table& table) {
  std::string out;
  const engine::Schema& schema = table.schema();
  for (size_t i = 0; i < schema.size(); ++i) {
    if (i > 0) out.push_back('\t');
    out += EscapeField(schema.column(i).name);
  }
  return out;
}

std::string FormatRow(const engine::Row& row) {
  std::string out;
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out.push_back('\t');
    out += row[i].is_null() ? "NULL" : EscapeField(row[i].ToString());
  }
  return out;
}

std::string StatusCodeToken(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "ok";
    case Status::Code::kInvalidArgument:
      return "invalid_argument";
    case Status::Code::kNotFound:
      return "not_found";
    case Status::Code::kParseError:
      return "parse_error";
    case Status::Code::kBindError:
      return "bind_error";
    case Status::Code::kNotSupported:
      return "not_supported";
    case Status::Code::kInternal:
      return "internal";
    case Status::Code::kResourceExhausted:
      return "resource_exhausted";
    case Status::Code::kDeadlineExceeded:
      return "deadline_exceeded";
    case Status::Code::kCancelled:
      return "cancelled";
    case Status::Code::kIoError:
      return "io_error";
  }
  return "internal";
}

Status::Code ParseStatusCodeToken(const std::string& token) {
  if (token == "ok") return Status::Code::kOk;
  if (token == "invalid_argument") return Status::Code::kInvalidArgument;
  if (token == "not_found") return Status::Code::kNotFound;
  if (token == "parse_error") return Status::Code::kParseError;
  if (token == "bind_error") return Status::Code::kBindError;
  if (token == "not_supported") return Status::Code::kNotSupported;
  if (token == "internal") return Status::Code::kInternal;
  if (token == "resource_exhausted") return Status::Code::kResourceExhausted;
  if (token == "deadline_exceeded") return Status::Code::kDeadlineExceeded;
  if (token == "cancelled") return Status::Code::kCancelled;
  if (token == "io_error") return Status::Code::kIoError;
  return Status::Code::kInternal;
}

}  // namespace sgb::server
