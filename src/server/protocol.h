#ifndef SGB_SERVER_PROTOCOL_H_
#define SGB_SERVER_PROTOCOL_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "engine/table.h"

namespace sgb::server {

/// The line-based wire protocol both the server loop and the client driver
/// speak (docs/SERVER.md "Wire protocol"). Every message is one
/// '\n'-terminated line; fields within result lines are tab-separated with
/// '\\', '\t', '\n', '\r' escaped, so arbitrary SQL strings round-trip.
///
/// Client -> server:
///   QUERY <sql>            run one statement
///   PREPARE <name> <sql>   validate + bind a named statement
///   EXECUTE <name>         run a prepared statement
///   SUBSCRIBE <name>       stream a continuous query's group deltas
///   UNSUBSCRIBE <name>     stop streaming that query's deltas
///   PING                   liveness probe
///   QUIT                   close the session
///
/// Server -> client:
///   OK <nrows> <ncols>     then 1 header line + nrows data lines
///                          (ncols = 0 means no header/rows follow)
///   ERR <code> <message>   statement failed; code is a Status token
///   PONG                   reply to PING
///   BYE                    reply to QUIT; the server closes after it
///   EVENT <fields>         asynchronous group-delta push for a SUBSCRIBEd
///                          continuous query (docs/STREAMING.md): six
///                          tab-separated escaped fields — query,
///                          window_start, window_end, kind, point, groups.
///                          Responses are written atomically, so an EVENT
///                          line only ever appears where a response line
///                          could begin, never inside a result set.

/// One parsed client command.
struct Command {
  enum class Kind {
    kQuery,
    kPrepare,
    kExecute,
    kSubscribe,
    kUnsubscribe,
    kPing,
    kQuit,
  };
  Kind kind = Kind::kPing;
  std::string name;  ///< PREPARE/EXECUTE/SUBSCRIBE/UNSUBSCRIBE name
  std::string sql;   ///< QUERY/PREPARE statement text
};

/// Parses one client line. InvalidArgument on unknown verbs or missing
/// operands; the server answers those with an ERR line and keeps serving.
Result<Command> ParseCommand(const std::string& line);

/// Escapes '\\' -> "\\\\", '\t' -> "\\t", '\n' -> "\\n", '\r' -> "\\r".
std::string EscapeField(const std::string& raw);

/// Inverse of EscapeField; unknown escapes pass through verbatim.
std::string UnescapeField(const std::string& field);

/// Tab-separated escaped column names of `table`.
std::string FormatHeader(const engine::Table& table);

/// Tab-separated escaped values of one row (NULL prints as "NULL").
std::string FormatRow(const engine::Row& row);

/// Stable short tokens for Status codes on ERR lines ("invalid_argument",
/// "cancelled", ...) and the inverse mapping (kInternal for unknown
/// tokens, so newer servers degrade gracefully against older clients).
std::string StatusCodeToken(Status::Code code);
Status::Code ParseStatusCodeToken(const std::string& token);

}  // namespace sgb::server

#endif  // SGB_SERVER_PROTOCOL_H_
