#ifndef SGB_SERVER_CLIENT_H_
#define SGB_SERVER_CLIENT_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/socket.h"
#include "common/status.h"

namespace sgb::server {

/// One query's decoded result set: column names plus rows of unescaped
/// string fields (NULL values arrive as the literal string "NULL", exactly
/// as the wire carries them). Tests compare these row vectors directly for
/// the bit-identical-divergence check against single-session replay.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;
};

/// One decoded EVENT push from a SUBSCRIBEd continuous query
/// (docs/STREAMING.md): a group delta of one window close.
struct DeltaEvent {
  std::string query;
  double window_start = 0.0;
  double window_end = 0.0;
  std::string kind;    ///< group_formed | member_added | groups_merged |
                       ///< window_closed
  int64_t point = -1;  ///< arrival sequence number (-1 on window_closed)
  int64_t groups = 0;
};

/// Driver-style synchronous client for the line protocol (protocol.h).
/// Not thread-safe: one Client per thread, like a real driver connection.
/// Movable (the socket and reader live on the heap), not copyable.
class Client {
 public:
  /// Connect over the unix-domain socket at `path`.
  static Result<Client> ConnectUnixSocket(const std::string& path);

  /// Connect to 127.0.0.1:`port`.
  static Result<Client> ConnectLoopback(uint16_t port);

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// Runs one SQL statement and decodes the result set.
  Result<QueryResult> Query(const std::string& sql);

  /// Binds `sql` to `name` on the server-side session.
  Status Prepare(const std::string& name, const std::string& sql);

  /// Runs a previously prepared statement.
  Result<QueryResult> Execute(const std::string& name);

  /// Attaches this connection to the named continuous query: every window
  /// close from now on pushes its group deltas as EVENT lines, surfaced
  /// through NextEvent().
  Status Subscribe(const std::string& name);

  /// Detaches a Subscribe(); already-pushed events stay readable.
  Status Unsubscribe(const std::string& name);

  /// Pops the oldest buffered delta event; when none is buffered, blocks
  /// reading the socket until one arrives (drive window closes from
  /// another connection, or Unsubscribe first to avoid blocking forever).
  Result<DeltaEvent> NextEvent();

  /// Buffered delta events waiting in NextEvent()'s queue.
  size_t pending_events() const { return events_.size(); }

  /// Liveness probe; ok when the server answers PONG.
  Status Ping();

  /// Polite close: sends QUIT, waits for BYE, closes the socket. Further
  /// calls fail with IoError. Safe to skip — dropping the Client just
  /// closes the connection.
  Status Quit();

  /// Severs the connection without QUIT — from the server's point of view
  /// the peer vanished. Used by the disconnect-cancellation tests.
  void Abort();

  bool connected() const { return socket_ && socket_->valid(); }

 private:
  explicit Client(std::unique_ptr<Socket> socket);

  /// Sends `line` (terminator appended) and decodes the response.
  Result<QueryResult> RoundTrip(const std::string& line);

  /// Reads the next *response* line, buffering any interleaved EVENT
  /// pushes into events_. Returns false on clean EOF.
  Result<bool> ReadResponseLine(std::string* line);

  /// Parses one "EVENT ..." wire line and appends it to events_.
  Status BufferEventLine(const std::string& line);

  std::unique_ptr<Socket> socket_;
  std::unique_ptr<LineReader> reader_;  ///< points at *socket_
  std::deque<DeltaEvent> events_;       ///< EVENT pushes not yet consumed
};

}  // namespace sgb::server

#endif  // SGB_SERVER_CLIENT_H_
