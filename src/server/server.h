#ifndef SGB_SERVER_SERVER_H_
#define SGB_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/socket.h"
#include "common/status.h"
#include "engine/executor.h"

namespace sgb::server {

struct ServerOptions {
  /// Listen on a unix-domain socket at this path (empty = no unix
  /// listener). The path must fit sockaddr_un (~100 bytes).
  std::string unix_path;

  /// Listen on 127.0.0.1:`tcp_port` (0 picks an ephemeral port, read back
  /// from Server::tcp_port()).
  bool tcp = false;
  uint16_t tcp_port = 0;

  /// Connections beyond this are answered with `ERR resource_exhausted
  /// busy ...` and closed — the gate against accept floods.
  size_t max_sessions = 64;
};

/// The concurrent multi-session front end (docs/SERVER.md): accepts
/// connections on a unix socket and/or TCP loopback, gives each one its
/// own engine Session, and serves the line protocol until the client
/// QUITs or disconnects. One thread per connection plus one accept thread
/// per listener and one watchdog thread.
///
/// The watchdog polls connections that are mid-statement for peer
/// hangups; a dropped connection cancels that session's running queries
/// (they land in system.query_log as `cancelled`) without disturbing any
/// other session.
///
/// The Database outlives the Server; Stop() (also run by the destructor)
/// closes the listeners, cancels and joins every connection, and leaves
/// the Database fully usable.
class Server {
 public:
  Server(const engine::Database* db, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the configured listeners and starts serving. InvalidArgument
  /// when no listener is configured; IoError when a bind fails.
  Status Start();

  /// Idempotent; blocks until every connection thread has exited.
  void Stop();

  uint16_t tcp_port() const { return tcp_port_; }
  const std::string& unix_path() const { return options_.unix_path; }

  size_t active_connections() const;
  uint64_t total_connections() const {
    return total_connections_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection {
    Socket socket;
    engine::SessionPtr session;
    std::thread thread;
    std::atomic<bool> busy{false};  ///< executing a statement right now
    std::atomic<bool> done{false};  ///< serve loop exited
    /// Serializes all socket writes: responses (written atomically as one
    /// buffer) never interleave with the asynchronous EVENT pushes the
    /// continuous-query subscriptions emit from other threads.
    std::mutex write_mu;
    /// This connection's continuous-query subscriptions (name -> id),
    /// detached when the connection closes.
    std::mutex subs_mu;
    std::map<std::string, uint64_t> subscriptions;
  };

  void AcceptLoop(Listener* listener, const char* transport);
  void ServeConnection(const std::shared_ptr<Connection>& conn);
  void WatchdogLoop();

  /// Serves one already-parsed command; returns false when the session
  /// should close (QUIT or a dead peer).
  bool ServeCommand(const std::shared_ptr<Connection>& conn,
                    const std::string& line);

  /// SUBSCRIBE/UNSUBSCRIBE: attach or detach a group-delta stream for one
  /// continuous query (docs/STREAMING.md).
  Status SubscribeConnection(const std::shared_ptr<Connection>& conn,
                             const std::string& name);
  Status UnsubscribeConnection(Connection& conn, const std::string& name);

  Status WriteLocked(Connection& conn, const std::string& out);
  Status WriteTable(Connection& conn, const engine::Table& table);
  Status WriteError(Connection& conn, const Status& error);

  /// Joins finished connection threads and drops their slots.
  void ReapFinished();

  const engine::Database* db_;
  ServerOptions options_;
  uint16_t tcp_port_ = 0;

  Listener unix_listener_;
  Listener tcp_listener_;
  std::vector<std::thread> accept_threads_;
  std::thread watchdog_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};
  std::atomic<uint64_t> total_connections_{0};

  mutable std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;
};

}  // namespace sgb::server

#endif  // SGB_SERVER_SERVER_H_
