#ifndef SGB_STORAGE_PAGE_FILE_H_
#define SGB_STORAGE_PAGE_FILE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "storage/file_registry.h"

namespace sgb::storage {

/// One table segment on disk: a flat array of fixed-size pages, accessed
/// with positional reads/writes (pread/pwrite — safe from any thread for
/// distinct pages). Open handles are tracked in the global FileRegistry
/// ("page" kind) so leak probes cover segments alongside spill files.
///
/// Fault sites:
///  * `storage.page.write` — fired *mid-write*: the first half of the page
///    reaches the file, then the write "crashes", leaving a torn page on
///    disk exactly like a power loss between sectors;
///  * `storage.page.read` — a clean read failure (retryable).
class PageFile {
 public:
  /// Opens `path`, creating it when missing.
  static Result<std::unique_ptr<PageFile>> Open(const std::string& path,
                                                size_t page_size);

  ~PageFile();
  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  /// Reads page `page_no` (must be < NumPages()) into `buf`.
  Status Read(uint64_t page_no, uint8_t* buf);

  /// Writes page `page_no`, extending the file as needed.
  Status Write(uint64_t page_no, const uint8_t* buf);

  Status Sync();

  /// Drops every page at or beyond `num_pages`.
  Status Truncate(uint64_t num_pages);

  /// Page count derived from the current file size (partial trailing bytes
  /// from a torn append count as a full — torn — page).
  Result<uint64_t> NumPages();

  const std::string& path() const { return path_; }
  size_t page_size() const { return page_size_; }

 private:
  PageFile(std::string path, int fd, size_t page_size);

  std::string path_;
  int fd_;
  size_t page_size_;
};

}  // namespace sgb::storage

#endif  // SGB_STORAGE_PAGE_FILE_H_
