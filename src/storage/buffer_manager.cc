#include "storage/buffer_manager.h"

#include <algorithm>
#include <cstring>
#include <list>
#include <map>

#include "obs/metrics.h"
#include "storage/page.h"

namespace sgb::storage {

const char* ToString(EvictionPolicyKind kind) {
  return kind == EvictionPolicyKind::k2Q ? "2q" : "lru";
}

Result<EvictionPolicyKind> ParseEvictionPolicy(const std::string& name) {
  if (name == "lru") return EvictionPolicyKind::kLru;
  if (name == "2q") return EvictionPolicyKind::k2Q;
  return Status::InvalidArgument("SET eviction: expected lru or 2q, got '" +
                                 name + "'");
}

namespace {

/// Classic LRU over resident keys: most-recent at the front, victim is the
/// least recent evictable page.
class LruPolicy final : public EvictionPolicy {
 public:
  const char* name() const override { return "lru"; }

  void OnInsert(uint64_t key) override {
    order_.push_front(key);
    where_[key] = order_.begin();
  }
  void OnAccess(uint64_t key) override {
    auto it = where_.find(key);
    if (it == where_.end()) return;
    order_.splice(order_.begin(), order_, it->second);
  }
  void OnRemove(uint64_t key, bool /*evicted*/) override {
    auto it = where_.find(key);
    if (it == where_.end()) return;
    order_.erase(it->second);
    where_.erase(it);
  }
  bool PickVictim(const std::function<bool(uint64_t)>& evictable,
                  uint64_t* key) override {
    for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
      if (evictable(*it)) {
        *key = *it;
        return true;
      }
    }
    return false;
  }

 private:
  std::list<uint64_t> order_;
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> where_;
};

/// Simplified 2Q (Johnson & Shasha, VLDB '94): new pages enter the A1in
/// FIFO; pages re-referenced *after* leaving A1in (their key still in the
/// A1out ghost list) are promoted to the Am LRU — one-shot scans wash
/// through A1in without displacing the hot set in Am. Kin = capacity/4,
/// Kout = capacity/2 (each at least 1).
///
/// Victim selection: when |A1in| > Kin (or Am is empty) the oldest
/// evictable A1in page goes (its key becomes a ghost); otherwise the least
/// recent evictable Am page. If the preferred queue has no evictable
/// candidate the other queue is scanned. buffer_test mirrors exactly these
/// rules in its reference model.
class TwoQueuePolicy final : public EvictionPolicy {
 public:
  explicit TwoQueuePolicy(size_t capacity_pages)
      : kin_(std::max<size_t>(1, capacity_pages / 4)),
        kout_(std::max<size_t>(1, capacity_pages / 2)) {}

  const char* name() const override { return "2q"; }

  void OnInsert(uint64_t key) override {
    auto ghost = a1out_where_.find(key);
    if (ghost != a1out_where_.end()) {
      a1out_.erase(ghost->second);
      a1out_where_.erase(ghost);
      am_.push_front(key);
      am_where_[key] = am_.begin();
      return;
    }
    a1in_.push_front(key);
    a1in_where_[key] = a1in_.begin();
  }

  void OnAccess(uint64_t key) override {
    auto am = am_where_.find(key);
    if (am != am_where_.end()) {
      am_.splice(am_.begin(), am_, am->second);
    }
    // A hit in A1in leaves the FIFO order untouched (the 2Q rule that
    // makes correlated re-references within a scan not look "hot").
  }

  void OnRemove(uint64_t key, bool evicted) override {
    auto a1 = a1in_where_.find(key);
    if (a1 != a1in_where_.end()) {
      a1in_.erase(a1->second);
      a1in_where_.erase(a1);
      if (evicted) AddGhost(key);
      return;
    }
    auto am = am_where_.find(key);
    if (am != am_where_.end()) {
      am_.erase(am->second);
      am_where_.erase(am);
    }
  }

  bool PickVictim(const std::function<bool(uint64_t)>& evictable,
                  uint64_t* key) override {
    const bool prefer_a1in = a1in_.size() > kin_ || am_.empty();
    if (prefer_a1in) {
      if (PickFrom(a1in_, evictable, key)) return true;
      return PickFrom(am_, evictable, key);
    }
    if (PickFrom(am_, evictable, key)) return true;
    return PickFrom(a1in_, evictable, key);
  }

 private:
  static bool PickFrom(const std::list<uint64_t>& queue,
                       const std::function<bool(uint64_t)>& evictable,
                       uint64_t* key) {
    for (auto it = queue.rbegin(); it != queue.rend(); ++it) {
      if (evictable(*it)) {
        *key = *it;
        return true;
      }
    }
    return false;
  }

  void AddGhost(uint64_t key) {
    a1out_.push_front(key);
    a1out_where_[key] = a1out_.begin();
    while (a1out_.size() > kout_) {
      a1out_where_.erase(a1out_.back());
      a1out_.pop_back();
    }
  }

  const size_t kin_;
  const size_t kout_;
  std::list<uint64_t> a1in_;  ///< FIFO, front = newest
  std::list<uint64_t> am_;    ///< LRU, front = most recent
  std::list<uint64_t> a1out_;  ///< ghost FIFO of evicted A1in keys
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> a1in_where_;
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> am_where_;
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> a1out_where_;
};

}  // namespace

std::unique_ptr<EvictionPolicy> MakeEvictionPolicy(EvictionPolicyKind kind,
                                                   size_t capacity_pages) {
  if (kind == EvictionPolicyKind::k2Q) {
    return std::make_unique<TwoQueuePolicy>(capacity_pages);
  }
  return std::make_unique<LruPolicy>();
}

// ---- BufferManager ------------------------------------------------------

struct BufferManager::Frame {
  uint64_t key = 0;
  uint32_t seg = 0;
  uint64_t page_no = 0;
  std::unique_ptr<uint8_t[]> data;
  int pins = 0;
  bool dirty = false;
  bool busy = false;  ///< I/O in flight outside the lock; pins must wait
};

BufferManager::BufferManager(size_t pool_bytes, size_t page_size,
                             EvictionPolicyKind kind, MemoryTracker* parent)
    : page_size_(page_size),
      capacity_pages_(std::max<size_t>(1, pool_bytes / page_size)),
      tracker_("storage.buffer_pool", parent),
      policy_(MakeEvictionPolicy(kind, capacity_pages_)) {}

BufferManager::~BufferManager() = default;

BufferManager::PageGuard& BufferManager::PageGuard::operator=(
    PageGuard&& other) noexcept {
  if (this != &other) {
    Reset();
    bm_ = other.bm_;
    frame_ = other.frame_;
    other.bm_ = nullptr;
    other.frame_ = nullptr;
  }
  return *this;
}

uint8_t* BufferManager::PageGuard::data() const { return frame_->data.get(); }

void BufferManager::PageGuard::MarkDirty() {
  std::lock_guard<std::mutex> lock(bm_->mu_);
  frame_->dirty = true;
}

void BufferManager::PageGuard::Reset() {
  if (frame_ != nullptr) bm_->Unpin(frame_);
  bm_ = nullptr;
  frame_ = nullptr;
}

void BufferManager::Unpin(Frame* frame) {
  std::lock_guard<std::mutex> lock(mu_);
  --frame->pins;
}

uint32_t BufferManager::RegisterSegment(PageFile* file) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint32_t seg = next_segment_++;
  segments_[seg] = file;
  return seg;
}

Status BufferManager::UnregisterSegment(uint32_t seg) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = frames_.begin(); it != frames_.end();) {
    if (it->second->seg != seg) {
      ++it;
      continue;
    }
    if (it->second->pins > 0 || it->second->busy) {
      return Status::Internal(
          "buffer pool: unregistering segment with pinned pages");
    }
    policy_->OnRemove(it->first, /*evicted=*/false);
    tracker_.Release(page_size_);
    it = frames_.erase(it);
  }
  segments_.erase(seg);
  return Status::OK();
}

void BufferManager::DiscardSegmentPages(uint32_t seg, uint64_t from_page) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = frames_.begin(); it != frames_.end();) {
    Frame* f = it->second.get();
    if (f->seg != seg || f->page_no < from_page || f->pins > 0 || f->busy) {
      ++it;
      continue;
    }
    policy_->OnRemove(it->first, /*evicted=*/false);
    tracker_.Release(page_size_);
    it = frames_.erase(it);
  }
}

Status BufferManager::WriteBackLocked(std::unique_lock<std::mutex>& lock,
                                      Frame* frame) {
  PageFile* file = segments_.at(frame->seg);
  // Checksum is stamped into a scratch copy so the resident frame's bytes
  // never mutate during write-back — concurrent readers of a pinned clean
  // copy (FlushSegment path) see stable bytes.
  std::vector<uint8_t> scratch(page_size_);
  std::memcpy(scratch.data(), frame->data.get(), page_size_);
  lock.unlock();
  SlottedPage(scratch.data(), page_size_).UpdateChecksum();
  const Status status = file->Write(frame->page_no, scratch.data());
  lock.lock();
  if (status.ok()) {
    frame->dirty = false;
    ++writebacks_;
  }
  return status;
}

Status BufferManager::EnsureRoomLocked(std::unique_lock<std::mutex>& lock) {
  while (frames_.size() >= capacity_pages_) {
    uint64_t victim_key = 0;
    const auto evictable = [this](uint64_t key) {
      auto it = frames_.find(key);
      return it != frames_.end() && it->second->pins == 0 &&
             !it->second->busy;
    };
    if (!policy_->PickVictim(evictable, &victim_key)) {
      return Status::ResourceExhausted(
          "buffer pool: all " + std::to_string(capacity_pages_) +
          " pages pinned (raise SET buffer_pool_bytes)");
    }
    Frame* victim = frames_.at(victim_key).get();
    if (victim->dirty) {
      victim->busy = true;
      const Status status = WriteBackLocked(lock, victim);
      victim->busy = false;
      cv_.notify_all();
      if (!status.ok()) return status;
      // The write-back dropped the lock; pin state may have changed.
      if (victim->pins > 0) continue;
    }
    policy_->OnRemove(victim_key, /*evicted=*/true);
    tracker_.Release(page_size_);
    frames_.erase(victim_key);
    ++evictions_;
    obs::MetricsRegistry::Global().GetCounter("buffer.evictions").Add(1);
  }
  return Status::OK();
}

Result<BufferManager::PageGuard> BufferManager::Pin(uint32_t seg,
                                                    uint64_t page_no) {
  const uint64_t key = Key(seg, page_no);
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    auto it = frames_.find(key);
    if (it != frames_.end()) {
      Frame* frame = it->second.get();
      if (frame->busy) {
        cv_.wait(lock);
        continue;  // the frame may have been evicted or failed its load
      }
      ++frame->pins;
      policy_->OnAccess(key);
      ++hits_;
      return PageGuard(this, frame);
    }

    SGB_RETURN_IF_ERROR(EnsureRoomLocked(lock));
    if (frames_.count(key) != 0) continue;  // raced with another loader
    auto seg_it = segments_.find(seg);
    if (seg_it == segments_.end()) {
      return Status::Internal("buffer pool: unknown segment " +
                              std::to_string(seg));
    }
    PageFile* file = seg_it->second;
    SGB_RETURN_IF_ERROR(tracker_.TryConsume(page_size_));
    auto frame = std::make_unique<Frame>();
    Frame* raw = frame.get();
    raw->key = key;
    raw->seg = seg;
    raw->page_no = page_no;
    raw->data = std::make_unique<uint8_t[]>(page_size_);
    raw->pins = 1;
    raw->busy = true;
    frames_[key] = std::move(frame);
    policy_->OnInsert(key);
    ++misses_;

    lock.unlock();
    const Status status = file->Read(page_no, raw->data.get());
    lock.lock();
    raw->busy = false;
    cv_.notify_all();
    if (!status.ok()) {
      policy_->OnRemove(key, /*evicted=*/false);
      tracker_.Release(page_size_);
      frames_.erase(key);
      return status;
    }
    return PageGuard(this, raw);
  }
}

Result<BufferManager::PageGuard> BufferManager::PinNew(uint32_t seg,
                                                       uint64_t page_no) {
  const uint64_t key = Key(seg, page_no);
  std::unique_lock<std::mutex> lock(mu_);
  if (frames_.count(key) != 0) {
    return Status::Internal("buffer pool: PinNew of a resident page");
  }
  SGB_RETURN_IF_ERROR(EnsureRoomLocked(lock));
  if (segments_.count(seg) == 0) {
    return Status::Internal("buffer pool: unknown segment " +
                            std::to_string(seg));
  }
  SGB_RETURN_IF_ERROR(tracker_.TryConsume(page_size_));
  auto frame = std::make_unique<Frame>();
  Frame* raw = frame.get();
  raw->key = key;
  raw->seg = seg;
  raw->page_no = page_no;
  raw->data = std::make_unique<uint8_t[]>(page_size_);
  std::memset(raw->data.get(), 0, page_size_);
  raw->pins = 1;
  raw->dirty = true;
  frames_[key] = std::move(frame);
  policy_->OnInsert(key);
  ++misses_;
  return PageGuard(this, raw);
}

Status BufferManager::FlushSegment(uint32_t seg) {
  std::unique_lock<std::mutex> lock(mu_);
  // Collect targets first: write-backs drop the lock, and the frame map
  // must not be mutated out from under the iteration.
  std::vector<uint64_t> keys;
  keys.reserve(frames_.size());
  for (const auto& [key, frame] : frames_) {
    if (frame->seg == seg && frame->dirty) keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());  // deterministic flush order
  for (uint64_t key : keys) {
    while (true) {
      // Re-find on every pass: a wait or write-back dropped the lock, and
      // the frame may have been evicted (and its pointer freed) meanwhile.
      auto it = frames_.find(key);
      if (it == frames_.end() || !it->second->dirty) break;
      Frame* frame = it->second.get();
      if (frame->busy) {
        cv_.wait(lock);
        continue;
      }
      frame->busy = true;
      const Status status = WriteBackLocked(lock, frame);
      frame->busy = false;
      cv_.notify_all();
      if (!status.ok()) return status;
      break;
    }
  }
  return Status::OK();
}

Status BufferManager::FlushAll() {
  std::vector<uint32_t> segs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [seg, file] : segments_) segs.push_back(seg);
  }
  std::sort(segs.begin(), segs.end());
  for (uint32_t seg : segs) SGB_RETURN_IF_ERROR(FlushSegment(seg));
  return Status::OK();
}

Status BufferManager::SetCapacityBytes(size_t bytes) {
  std::unique_lock<std::mutex> lock(mu_);
  capacity_pages_ = std::max<size_t>(1, bytes / page_size_);
  while (frames_.size() > capacity_pages_) {
    const size_t before = frames_.size();
    // Reuse the one-frame eviction step; stop once nothing is evictable
    // (the overage is all pinned and drains as pins release).
    Status status = EnsureRoomLocked(lock);
    if (status.code() == Status::Code::kResourceExhausted) break;
    if (!status.ok()) return status;
    if (frames_.size() >= before) break;
  }
  return Status::OK();
}

Status BufferManager::SetPolicy(EvictionPolicyKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  policy_ = MakeEvictionPolicy(kind, capacity_pages_);
  std::vector<uint64_t> keys;
  keys.reserve(frames_.size());
  for (const auto& [key, frame] : frames_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  for (uint64_t key : keys) policy_->OnInsert(key);
  return Status::OK();
}

BufferPoolStats BufferManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  BufferPoolStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.writebacks = writebacks_;
  s.capacity_pages = capacity_pages_;
  s.resident_pages = frames_.size();
  s.page_size = page_size_;
  s.policy = policy_->name();
  for (const auto& [key, frame] : frames_) {
    if (frame->dirty) ++s.dirty_pages;
    if (frame->pins > 0) ++s.pinned_pages;
  }
  return s;
}

size_t BufferManager::capacity_pages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_pages_;
}

bool BufferManager::IsResident(uint32_t seg, uint64_t page_no) const {
  std::lock_guard<std::mutex> lock(mu_);
  return frames_.count(Key(seg, page_no)) != 0;
}

}  // namespace sgb::storage
