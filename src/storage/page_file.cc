#include "storage/page_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/fault_injection.h"
#include "obs/metrics.h"

namespace sgb::storage {

// The write site fires *between* the two halves of a page write, so the
// armed run leaves a genuinely torn page on disk — the recovery tests
// depend on that, not on a clean no-op failure. The read site is a clean,
// retryable error.
static FaultSite g_page_write_fault("storage.page.write",
                                    Status::Code::kIoError);
static FaultSite g_page_read_fault("storage.page.read",
                                   Status::Code::kIoError);

namespace {

Status WriteAllAt(int fd, const uint8_t* buf, size_t n, uint64_t at,
                  const std::string& path) {
  size_t done = 0;
  while (done < n) {
    const ssize_t w = ::pwrite(fd, buf + done, n - done,
                               static_cast<off_t>(at + done));
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("storage: pwrite failed on " + path + ": " +
                             std::strerror(errno));
    }
    done += static_cast<size_t>(w);
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<PageFile>> PageFile::Open(const std::string& path,
                                                 size_t page_size) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IoError("storage: cannot open segment " + path + ": " +
                           std::strerror(errno));
  }
  return std::unique_ptr<PageFile>(new PageFile(path, fd, page_size));
}

PageFile::PageFile(std::string path, int fd, size_t page_size)
    : path_(std::move(path)), fd_(fd), page_size_(page_size) {
  FileRegistry::Global().Acquire(FileRegistry::kPage);
}

PageFile::~PageFile() {
  ::close(fd_);
  FileRegistry::Global().Release(FileRegistry::kPage);
}

Status PageFile::Read(uint64_t page_no, uint8_t* buf) {
  SGB_RETURN_IF_ERROR(g_page_read_fault.Check());
  size_t done = 0;
  const uint64_t at = page_no * page_size_;
  while (done < page_size_) {
    const ssize_t r = ::pread(fd_, buf + done, page_size_ - done,
                              static_cast<off_t>(at + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("storage: pread failed on " + path_ + ": " +
                             std::strerror(errno));
    }
    if (r == 0) {
      // Reading past a torn trailing page: the missing bytes read as zero,
      // exactly like a crashed append; the checksum/prefix validation
      // upstream decides what survives.
      std::memset(buf + done, 0, page_size_ - done);
      break;
    }
    done += static_cast<size_t>(r);
  }
  obs::MetricsRegistry::Global().GetCounter("storage.page.reads").Add(1);
  return Status::OK();
}

Status PageFile::Write(uint64_t page_no, const uint8_t* buf) {
  const uint64_t at = page_no * page_size_;
  const size_t half = page_size_ / 2;
  SGB_RETURN_IF_ERROR(WriteAllAt(fd_, buf, half, at, path_));
  // Torn-page simulation: the first half is already durable-visible when
  // the armed fault "crashes" the write here.
  SGB_RETURN_IF_ERROR(g_page_write_fault.Check());
  SGB_RETURN_IF_ERROR(
      WriteAllAt(fd_, buf + half, page_size_ - half, at + half, path_));
  obs::MetricsRegistry::Global().GetCounter("storage.page.writes").Add(1);
  return Status::OK();
}

Status PageFile::Sync() {
  if (::fsync(fd_) != 0) {
    return Status::IoError("storage: fsync failed on " + path_ + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status PageFile::Truncate(uint64_t num_pages) {
  if (::ftruncate(fd_, static_cast<off_t>(num_pages * page_size_)) != 0) {
    return Status::IoError("storage: ftruncate failed on " + path_ + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

Result<uint64_t> PageFile::NumPages() {
  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    return Status::IoError("storage: fstat failed on " + path_ + ": " +
                           std::strerror(errno));
  }
  const uint64_t size = static_cast<uint64_t>(st.st_size);
  return (size + page_size_ - 1) / page_size_;
}

}  // namespace sgb::storage
