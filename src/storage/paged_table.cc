#include "storage/paged_table.h"

#include <unistd.h>

#include <algorithm>
#include <utility>

#include "common/query_context.h"
#include "engine/spill.h"
#include "storage/page.h"

namespace sgb::storage {

PagedTable::PagedTable(std::string name, engine::Schema schema,
                       std::shared_ptr<BufferManager> pool,
                       std::unique_ptr<PageFile> file, uint64_t table_id)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      pool_(std::move(pool)),
      file_(std::move(file)),
      table_id_(table_id) {
  seg_ = pool_->RegisterSegment(file_.get());
}

PagedTable::~PagedTable() {
  // No scan can be in flight here (they hold shared_ptrs), so every frame
  // of the segment is unpinned.
  (void)pool_->UnregisterSegment(seg_);
  if (dropped_.load(std::memory_order_relaxed)) {
    ::unlink(file_->path().c_str());
  }
}

size_t PagedTable::ApproxBytes() const {
  std::lock_guard<std::mutex> lock(meta_mu_);
  return rows_per_page_.size() * pool_->page_size();
}

PagedTable::ScanSnapshot PagedTable::Snapshot() const {
  ScanSnapshot snap;
  // Acquire-load first: every byte of every row below `rows` was written
  // before the writer's release store. The page index may already count
  // records of an in-flight statement — clamp them away.
  snap.rows = rows_.load(std::memory_order_acquire);
  std::lock_guard<std::mutex> lock(meta_mu_);
  size_t remaining = snap.rows;
  for (uint32_t count : rows_per_page_) {
    if (remaining == 0) break;
    const uint32_t take = static_cast<uint32_t>(
        std::min<size_t>(count, remaining));
    snap.rows_per_page.push_back(take);
    remaining -= take;
  }
  return snap;
}

PagedTable::Meta PagedTable::MetaSnapshot() const {
  Meta meta;
  meta.rows = rows_.load(std::memory_order_acquire);
  std::lock_guard<std::mutex> lock(meta_mu_);
  meta.pages = rows_per_page_.size();
  meta.tail_records = rows_per_page_.empty() ? 0 : rows_per_page_.back();
  return meta;
}

Status PagedTable::AppendEncoded(
    const std::vector<std::string_view>& records) {
  const size_t page_size = pool_->page_size();
  for (const std::string_view record : records) {
    if (record.size() > MaxRecordBytes(page_size)) {
      return Status::InvalidArgument(
          "row of " + std::to_string(record.size()) +
          " encoded bytes does not fit a " + std::to_string(page_size) +
          "-byte page");
    }
  }
  size_t num_pages;
  {
    std::lock_guard<std::mutex> lock(meta_mu_);
    num_pages = rows_per_page_.size();
  }
  BufferManager::PageGuard guard;
  for (const std::string_view record : records) {
    if (!guard.valid() && num_pages > 0) {
      auto pinned = pool_->Pin(seg_, num_pages - 1);
      if (!pinned.ok()) return pinned.status();
      guard = std::move(pinned).value();
    }
    if (guard.valid() &&
        !SlottedPage(guard.data(), page_size).HasRoomFor(record.size())) {
      guard.Reset();  // unpin the full tail before allocating its successor
    }
    if (!guard.valid()) {
      auto pinned = pool_->PinNew(seg_, num_pages);
      if (!pinned.ok()) return pinned.status();
      guard = std::move(pinned).value();
      SlottedPage(guard.data(), page_size).Init();
      ++num_pages;
      std::lock_guard<std::mutex> lock(meta_mu_);
      rows_per_page_.push_back(0);
    }
    SlottedPage page(guard.data(), page_size);
    page.AddRecord(record);  // room was checked above; cannot fail
    guard.MarkDirty();
    std::lock_guard<std::mutex> lock(meta_mu_);
    ++rows_per_page_.back();
  }
  guard.Reset();
  // Publish the whole statement at once (record bytes and the page index
  // are in place before this release store).
  rows_.store(rows_.load(std::memory_order_relaxed) + records.size(),
              std::memory_order_release);
  return Status::OK();
}

Status PagedTable::ReadPageRows(uint64_t page_no, uint32_t count,
                                std::vector<engine::Row>* out) const {
  auto pinned = pool_->Pin(seg_, page_no);
  if (!pinned.ok()) return pinned.status();
  const SlottedPage page(pinned.value().data(), pool_->page_size());
  out->reserve(out->size() + count);
  for (uint32_t slot = 0; slot < count; ++slot) {
    const std::string_view record = page.Record(slot);
    engine::Row row;
    size_t offset = 0;
    SGB_RETURN_IF_ERROR(
        engine::DecodeRow(record.data(), record.size(), &offset, &row));
    out->push_back(std::move(row));
  }
  return Status::OK();
}

Result<engine::Table> PagedTable::MaterializeSnapshot() const {
  const ScanSnapshot snap = Snapshot();
  engine::Table table(schema_);
  table.Reserve(snap.rows);
  std::vector<engine::Row> rows;
  for (size_t p = 0; p < snap.rows_per_page.size(); ++p) {
    rows.clear();
    SGB_RETURN_IF_ERROR(ReadPageRows(p, snap.rows_per_page[p], &rows));
    for (engine::Row& row : rows) {
      SGB_RETURN_IF_ERROR(table.Append(std::move(row)));
    }
  }
  return table;
}

void PagedTable::RestoreMeta(std::vector<uint32_t> rows_per_page,
                             size_t rows) {
  std::lock_guard<std::mutex> lock(meta_mu_);
  rows_per_page_ = std::move(rows_per_page);
  rows_.store(rows, std::memory_order_release);
}

Status PagedTable::Flush() { return pool_->FlushSegment(seg_); }

namespace {

/// Volcano scan over one pinned snapshot, decoding one page at a time.
class PagedScanOp final : public engine::Operator {
 public:
  PagedScanOp(std::shared_ptr<const PagedTable> table,
              const std::string& qualifier)
      : table_(std::move(table)),
        schema_(qualifier.empty()
                    ? table_->schema()
                    : table_->schema().WithQualifier(qualifier)) {}

  const engine::Schema& schema() const override { return schema_; }
  std::string name() const override { return "TableScan"; }
  std::string label() const override {
    return schema_.size() > 0 && !schema_.column(0).qualifier.empty()
               ? "TableScan " + schema_.column(0).qualifier + " (paged)"
               : std::string("TableScan (paged)");
  }
  size_t EstimateFootprintBytes() const override {
    // Streams one page of decoded rows at a time, independent of table
    // size — that is the point of the paged layout.
    return 2 * 8192;
  }

  void OpenImpl() override {
    snap_ = table_->Snapshot();
    page_ = 0;
    pending_.clear();
    pos_ = 0;
  }
  bool NextImpl(engine::Row* out) override {
    if (pos_ >= pending_.size() && !LoadNextPage()) return false;
    *out = std::move(pending_[pos_++]);
    return true;
  }
  bool NextBatchImpl(engine::RowBatch* out) override {
    while (!out->Full()) {
      if (pos_ >= pending_.size() && !LoadNextPage()) break;
      out->Append(std::move(pending_[pos_++]));
    }
    return !out->empty();
  }

 private:
  /// Decodes the next non-empty page into pending_; false when the
  /// snapshot is exhausted. I/O failures abort the query.
  bool LoadNextPage() {
    while (page_ < snap_.rows_per_page.size()) {
      pending_.clear();
      pos_ = 0;
      const uint32_t count = snap_.rows_per_page[page_];
      const Status status = table_->ReadPageRows(page_, count, &pending_);
      if (!status.ok()) throw QueryAbort(status);
      ++page_;
      if (!pending_.empty()) return true;
    }
    return false;
  }

  std::shared_ptr<const PagedTable> table_;
  engine::Schema schema_;
  PagedTable::ScanSnapshot snap_;
  size_t page_ = 0;
  std::vector<engine::Row> pending_;
  size_t pos_ = 0;
};

}  // namespace

engine::OperatorPtr MakePagedScan(std::shared_ptr<const PagedTable> table,
                                  const std::string& qualifier) {
  return std::make_unique<PagedScanOp>(std::move(table), qualifier);
}

}  // namespace sgb::storage
