#include "storage/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/fault_injection.h"
#include "obs/metrics.h"
#include "storage/file_registry.h"
#include "storage/page.h"

namespace sgb::storage {

// The append site fires after the frame header but before the payload
// lands, leaving a torn tail exactly like a crash mid-write; fsync is the
// commit point, so a failure there leaves the statement's durability
// genuinely indeterminate (the frame may be complete on disk).
static FaultSite g_wal_append_fault("storage.wal.append",
                                    Status::Code::kIoError);
static FaultSite g_wal_fsync_fault("storage.wal.fsync",
                                   Status::Code::kIoError);

namespace {

constexpr size_t kFrameHeaderBytes = 8;  // u32 len + u32 crc

void PutU32(uint8_t* at, uint32_t v) {
  at[0] = static_cast<uint8_t>(v);
  at[1] = static_cast<uint8_t>(v >> 8);
  at[2] = static_cast<uint8_t>(v >> 16);
  at[3] = static_cast<uint8_t>(v >> 24);
}

uint32_t GetU32(const uint8_t* at) {
  return static_cast<uint32_t>(at[0]) | static_cast<uint32_t>(at[1]) << 8 |
         static_cast<uint32_t>(at[2]) << 16 |
         static_cast<uint32_t>(at[3]) << 24;
}

Status WriteAllAt(int fd, const uint8_t* buf, size_t n, uint64_t at,
                  const std::string& path) {
  size_t done = 0;
  while (done < n) {
    const ssize_t w = ::pwrite(fd, buf + done, n - done,
                               static_cast<off_t>(at + done));
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("wal: pwrite failed on " + path + ": " +
                             std::strerror(errno));
    }
    done += static_cast<size_t>(w);
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<WalRecord>> WriteAheadLog::ReadAll(
    const std::string& path, uint64_t* valid_prefix_bytes) {
  std::vector<WalRecord> records;
  uint64_t valid = 0;
  std::string contents;
  {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      if (valid_prefix_bytes != nullptr) *valid_prefix_bytes = 0;
      return records;  // no log yet — nothing to replay
    }
    char buf[1 << 16];
    ssize_t r;
    while ((r = ::read(fd, buf, sizeof buf)) > 0) {
      contents.append(buf, static_cast<size_t>(r));
    }
    const bool read_failed = r < 0;
    ::close(fd);
    if (read_failed) {
      return Status::IoError("wal: read failed on " + path + ": " +
                             std::strerror(errno));
    }
  }
  size_t at = 0;
  while (contents.size() - at >= kFrameHeaderBytes + 1) {
    const uint8_t* p = reinterpret_cast<const uint8_t*>(contents.data()) + at;
    const uint32_t len = GetU32(p);
    const uint32_t crc = GetU32(p + 4);
    if (len > contents.size() - at - kFrameHeaderBytes - 1) break;  // torn
    if (Crc32(p + kFrameHeaderBytes, 1 + len) != crc) break;  // torn/corrupt
    WalRecord record;
    record.type = static_cast<WalRecordType>(p[kFrameHeaderBytes]);
    record.payload.assign(contents, at + kFrameHeaderBytes + 1, len);
    records.push_back(std::move(record));
    at += kFrameHeaderBytes + 1 + len;
    valid = at;
  }
  if (valid_prefix_bytes != nullptr) *valid_prefix_bytes = valid;
  return records;
}

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& path) {
  uint64_t valid = 0;
  auto scanned = ReadAll(path, &valid);
  if (!scanned.ok()) return scanned.status();
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IoError("wal: cannot open " + path + ": " +
                           std::strerror(errno));
  }
  // Drop any torn tail so new frames append onto a valid prefix.
  if (::ftruncate(fd, static_cast<off_t>(valid)) != 0) {
    const Status status = Status::IoError("wal: ftruncate failed on " + path +
                                          ": " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  return std::unique_ptr<WriteAheadLog>(new WriteAheadLog(path, fd, valid));
}

WriteAheadLog::WriteAheadLog(std::string path, int fd, uint64_t end)
    : path_(std::move(path)), fd_(fd), end_(end) {
  FileRegistry::Global().Acquire(FileRegistry::kWal);
}

WriteAheadLog::~WriteAheadLog() {
  ::close(fd_);
  FileRegistry::Global().Release(FileRegistry::kWal);
}

Status WriteAheadLog::Append(WalRecordType type, const std::string& payload) {
  std::string frame;
  frame.resize(kFrameHeaderBytes);
  frame.push_back(static_cast<char>(type));
  frame.append(payload);
  uint8_t* p = reinterpret_cast<uint8_t*>(frame.data());
  PutU32(p, static_cast<uint32_t>(payload.size()));
  PutU32(p + 4, Crc32(frame.data() + kFrameHeaderBytes, 1 + payload.size()));

  // Torn-tail simulation: the header reaches the disk, then the armed
  // fault "crashes" the append before the body does. ReadAll sees an
  // invalid final frame and truncates it at the next open.
  SGB_RETURN_IF_ERROR(
      WriteAllAt(fd_, p, kFrameHeaderBytes, end_, path_));
  SGB_RETURN_IF_ERROR(g_wal_append_fault.Check());
  SGB_RETURN_IF_ERROR(WriteAllAt(fd_, p + kFrameHeaderBytes,
                                 frame.size() - kFrameHeaderBytes,
                                 end_ + kFrameHeaderBytes, path_));
  end_ += frame.size();
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("storage.wal.appends").Add(1);
  registry.GetCounter("storage.wal.bytes").Add(frame.size());
  return Status::OK();
}

Status WriteAheadLog::Sync() {
  SGB_RETURN_IF_ERROR(g_wal_fsync_fault.Check());
  if (::fsync(fd_) != 0) {
    return Status::IoError("wal: fsync failed on " + path_ + ": " +
                           std::strerror(errno));
  }
  obs::MetricsRegistry::Global().GetCounter("storage.wal.syncs").Add(1);
  return Status::OK();
}

Status WriteAheadLog::TruncateAll() { return TruncateTo(0); }

Status WriteAheadLog::TruncateTo(uint64_t bytes) {
  if (bytes > end_) {
    return Status::Internal("wal: TruncateTo past the end of " + path_);
  }
  if (::ftruncate(fd_, static_cast<off_t>(bytes)) != 0) {
    return Status::IoError("wal: ftruncate failed on " + path_ + ": " +
                           std::strerror(errno));
  }
  end_ = bytes;
  return Status::OK();
}

}  // namespace sgb::storage
