#ifndef SGB_STORAGE_WAL_H_
#define SGB_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace sgb::storage {

/// Logical redo records (docs/STORAGE.md "WAL format"). The WAL layer
/// frames opaque payloads; the StorageEngine encodes/decodes them.
enum class WalRecordType : uint8_t {
  kCreateTable = 1,  ///< name + schema
  kInsert = 2,       ///< name + first_row + encoded rows
  kDropTable = 3,    ///< name
};

struct WalRecord {
  WalRecordType type;
  std::string payload;
};

/// Append-only redo log. Frame layout, little-endian:
///
///   u32 payload_len | u32 crc32(type byte + payload) | u8 type | payload
///
/// Append() writes the frame unbuffered; Sync() is the commit point (an
/// INSERT/DDL statement is durable once its frame is fsynced). A crash —
/// real or injected — can leave a torn final frame; ReadAll() stops at the
/// first frame whose length or CRC does not check out and reports how many
/// bytes of valid prefix precede it, which recovery uses to truncate the
/// tail.
///
/// Fault sites: `storage.wal.append` fires mid-frame (a torn tail is left
/// on disk), `storage.wal.fsync` at the commit point — after fsync fails,
/// the statement may or may not be durable, and the recovery tests accept
/// both outcomes (docs/STORAGE.md "Crash semantics").
class WriteAheadLog {
 public:
  /// Opens or creates the log and positions appends at the end of the
  /// valid prefix (a torn tail from a previous crash is truncated away).
  static Result<std::unique_ptr<WriteAheadLog>> Open(const std::string& path);

  ~WriteAheadLog();
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  Status Append(WalRecordType type, const std::string& payload);
  Status Sync();

  /// Empties the log (checkpoint has made every record redundant).
  Status TruncateAll();

  /// Drops bytes past `bytes` — the fail-atomic INSERT path rolls an
  /// appended-but-not-applied frame back with this.
  Status TruncateTo(uint64_t bytes);

  uint64_t bytes() const { return end_; }

  /// Every valid record from the start of `path`; `*valid_prefix_bytes`
  /// (optional) gets the byte length of the scanned valid prefix. A torn
  /// or corrupt tail is not an error — the scan just stops.
  static Result<std::vector<WalRecord>> ReadAll(const std::string& path,
                                                uint64_t* valid_prefix_bytes);

 private:
  WriteAheadLog(std::string path, int fd, uint64_t end);

  std::string path_;
  int fd_;
  uint64_t end_;  ///< append position == valid byte length
};

}  // namespace sgb::storage

#endif  // SGB_STORAGE_WAL_H_
