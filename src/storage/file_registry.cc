#include "storage/file_registry.h"

#include <unistd.h>

#include <atomic>

namespace sgb::storage {

namespace {

struct Counters {
  std::atomic<uint64_t> live[FileRegistry::kKindCount];
  std::atomic<uint64_t> name_counter{0};
};

Counters& GlobalCounters() {
  static Counters counters;
  return counters;
}

}  // namespace

FileRegistry& FileRegistry::Global() {
  static FileRegistry registry;
  return registry;
}

const char* FileRegistry::KindName(Kind kind) {
  switch (kind) {
    case kSpill:
      return "spill";
    case kPage:
      return "page";
    case kWal:
      return "wal";
    default:
      return "file";
  }
}

std::string FileRegistry::MakeTempName(const std::string& dir, Kind kind) {
  const uint64_t id = GlobalCounters().name_counter.fetch_add(
      1, std::memory_order_relaxed);
  const char* name = KindName(kind);
  return dir + "/sgb-" + name + "-" +
         std::to_string(static_cast<long long>(::getpid())) + "-" +
         std::to_string(id) + "." + name;
}

void FileRegistry::Acquire(Kind kind) {
  GlobalCounters().live[kind].fetch_add(1, std::memory_order_relaxed);
}

void FileRegistry::Release(Kind kind) {
  GlobalCounters().live[kind].fetch_sub(1, std::memory_order_relaxed);
}

uint64_t FileRegistry::LiveCount() const {
  uint64_t total = 0;
  for (int k = 0; k < kKindCount; ++k) {
    total += GlobalCounters().live[k].load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t FileRegistry::LiveCount(Kind kind) const {
  return GlobalCounters().live[kind].load(std::memory_order_relaxed);
}

}  // namespace sgb::storage
