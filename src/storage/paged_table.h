#ifndef SGB_STORAGE_PAGED_TABLE_H_
#define SGB_STORAGE_PAGED_TABLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "engine/operators.h"
#include "engine/schema.h"
#include "engine/table.h"
#include "storage/buffer_manager.h"
#include "storage/page.h"
#include "storage/page_file.h"

namespace sgb::storage {

/// A disk-backed table: rows encoded with the spill codec, packed into
/// append-only slotted pages of one segment file, cached through the shared
/// BufferManager. Mirrors AppendOnlyTable's snapshot contract — a single
/// writer at a time (the StorageEngine's mutation lock) appends whole
/// statements, publishes the row count with a release store, and concurrent
/// scans pin that count and read only bytes published before it
/// (docs/STORAGE.md "Concurrency").
///
/// The page index (`rows_per_page_`) can run ahead of the published row
/// count while a statement is mid-append; Snapshot() clamps the per-page
/// counts down to the published total, so readers never see a torn
/// statement.
class PagedTable {
 public:
  /// Co-owns `pool` (scans may hold a PagedTablePtr past the engine's
  /// lifetime, so the pool must survive until the last table dies); the
  /// segment registers with it here and unregisters in the destructor.
  /// `table_id` is the stable id behind the segment file name
  /// (manifest/WAL recovery reassigns it deterministically).
  PagedTable(std::string name, engine::Schema schema,
             std::shared_ptr<BufferManager> pool,
             std::unique_ptr<PageFile> file, uint64_t table_id);
  ~PagedTable();
  PagedTable(const PagedTable&) = delete;
  PagedTable& operator=(const PagedTable&) = delete;

  const std::string& name() const { return name_; }
  const engine::Schema& schema() const { return schema_; }
  uint64_t table_id() const { return table_id_; }
  uint32_t segment() const { return seg_; }
  PageFile* file() { return file_.get(); }

  /// The published row count: every row below it is immutable, durable in
  /// the WAL, and safe to read from any thread.
  size_t SnapshotRows() const {
    return rows_.load(std::memory_order_acquire);
  }

  /// Approximate on-disk bytes (pages * page size), for system.tables.
  size_t ApproxBytes() const;

  /// A consistent scan snapshot: per-page record counts clamped to the
  /// published row total (sum(rows_per_page) == rows).
  struct ScanSnapshot {
    size_t rows = 0;
    std::vector<uint32_t> rows_per_page;
  };
  ScanSnapshot Snapshot() const;

  /// Page/row metadata for the checkpoint manifest. Only meaningful while
  /// the caller holds the engine's mutation lock (no writer mid-statement).
  struct Meta {
    uint64_t pages = 0;
    uint64_t rows = 0;
    uint32_t tail_records = 0;  ///< records on the last page
  };
  Meta MetaSnapshot() const;

  /// Appends pre-encoded records (EncodeRow bytes) as one statement:
  /// fills the tail page, allocates new pages through the pool, and
  /// publishes the new row count last. Serialized by the StorageEngine's
  /// mutation lock; any failure leaves the engine poisoned (the WAL has
  /// already committed the statement), so no rollback happens here.
  Status AppendEncoded(const std::vector<std::string_view>& records);

  /// Decodes the first `count` records of `page_no` into `out` (appends).
  /// Safe concurrently with a writer appending beyond `count`.
  Status ReadPageRows(uint64_t page_no, uint32_t count,
                      std::vector<engine::Row>* out) const;

  /// Copies the snapshot into a plain immutable Table (Catalog::Get).
  Result<engine::Table> MaterializeSnapshot() const;

  /// Recovery seeds the page index after validating/trimming the segment.
  void RestoreMeta(std::vector<uint32_t> rows_per_page, size_t rows);

  /// Flushes the segment's dirty pages through the pool (checkpoint step;
  /// fsync is the caller's job).
  Status Flush();

  /// DROP TABLE: the destructor also unlinks the segment file. Scans in
  /// flight keep the table alive via shared_ptr; the file disappears when
  /// the last reference dies.
  void MarkDropped() { dropped_.store(true, std::memory_order_relaxed); }

  /// Largest record a page of `page_size` can hold.
  static size_t MaxRecordBytes(size_t page_size) {
    return page_size - SlottedPage::kHeaderBytes - SlottedPage::kSlotBytes;
  }

 private:
  const std::string name_;
  const engine::Schema schema_;
  std::shared_ptr<BufferManager> pool_;
  std::unique_ptr<PageFile> file_;
  const uint64_t table_id_;
  uint32_t seg_ = 0;
  std::atomic<bool> dropped_{false};

  std::atomic<size_t> rows_{0};
  mutable std::mutex meta_mu_;  ///< guards rows_per_page_
  std::vector<uint32_t> rows_per_page_;
};

using PagedTablePtr = std::shared_ptr<PagedTable>;

/// Snapshot scan streaming pages through the buffer pool one at a time —
/// a table larger than the pool scans in constant memory. Reports name()
/// "TableScan" like the other scans so rows_in accounting, EXPLAIN, and
/// the cost model stay uniform. I/O failures surface as QueryAbort.
engine::OperatorPtr MakePagedScan(std::shared_ptr<const PagedTable> table,
                                  const std::string& qualifier = "");

}  // namespace sgb::storage

#endif  // SGB_STORAGE_PAGED_TABLE_H_
