#ifndef SGB_STORAGE_STORAGE_ENGINE_H_
#define SGB_STORAGE_STORAGE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/schema.h"
#include "engine/value.h"
#include "storage/buffer_manager.h"
#include "storage/paged_table.h"
#include "storage/wal.h"

namespace sgb::storage {

/// Knobs for Open(). When the directory already holds a manifest, the
/// manifest's page size wins (pages on disk have a fixed geometry); the
/// pool size and eviction policy always come from the options and remain
/// settable at runtime (SET buffer_pool_bytes / SET eviction).
struct StorageOptions {
  size_t page_size = 8192;
  size_t buffer_pool_bytes = 4 * 1024 * 1024;
  EvictionPolicyKind eviction = EvictionPolicyKind::kLru;
  bool checkpoint_on_close = true;
};

/// Counters for system.buffer_pool / diagnostics.
struct StorageStats {
  uint64_t checkpoints = 0;
  uint64_t wal_replayed_records = 0;  ///< from the last Open()
  uint64_t wal_bytes = 0;
  bool crashed = false;
};

/// The durable storage engine behind CREATE TABLE ... / INSERT / scans:
/// one directory holding a manifest, one WAL epoch file, and one segment
/// file per table, all sharing one BufferManager (docs/STORAGE.md).
///
/// Durability contract: a statement is durable once its WAL frame is
/// fsynced (Append+Sync precede the in-memory apply). Checkpoint() flushes
/// dirty pages, fsyncs segments, atomically publishes a new manifest that
/// points at a fresh empty WAL epoch, and deletes the old epoch — so the
/// log stays short and recovery replays only post-checkpoint statements.
///
/// Crash semantics (docs/STORAGE.md "Crash semantics"): a failure at
/// `storage.wal.append`, `storage.wal.fsync`, or `storage.page.write`
/// poisons the engine — the WAL and pages may disagree with memory, so
/// every further mutation is refused, close skips the checkpoint, and the
/// on-disk state is exactly what a power loss would leave. Reopening the
/// directory recovers: manifest pages are checksum-verified, the tail page
/// of each segment is trimmed to its durable record prefix (append-only
/// pages make torn rewrites harmless — the prefix bytes are identical in
/// every version), and the WAL replays idempotently. `storage.page.read`
/// and `storage.manifest.write` failures are clean and retryable.
///
/// Thread safety: mutations (DDL, INSERT, Checkpoint) serialize on one
/// mutation lock; Find()/TableNames()/stats are safe from any thread, and
/// scans never take the mutation lock (PagedTable snapshots).
class StorageEngine {
 public:
  /// Opens (creating if needed) the storage directory and runs recovery.
  static Result<std::unique_ptr<StorageEngine>> Open(
      const std::string& directory, const StorageOptions& options);

  /// Checkpoints (best effort) unless crashed or disabled, then closes.
  ~StorageEngine();
  StorageEngine(const StorageEngine&) = delete;
  StorageEngine& operator=(const StorageEngine&) = delete;

  /// `*created` (optional) reports whether a table was actually created
  /// (false on the IF NOT EXISTS fast path).
  Status CreateTable(const std::string& name, const engine::Schema& schema,
                     bool if_not_exists, bool* created);
  Status DropTable(const std::string& name, bool if_exists);

  /// WAL-first durable insert: coerce, encode, append+fsync the WAL frame,
  /// then apply to pages. Any post-commit failure poisons the engine.
  Status Insert(const std::string& name, std::vector<engine::Row> rows);

  Status Checkpoint();

  PagedTablePtr Find(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  Status SetBufferPoolBytes(size_t bytes);
  Status SetEvictionPolicy(EvictionPolicyKind kind);

  BufferPoolStats buffer_stats() const { return pool_->stats(); }
  StorageStats stats() const;
  bool crashed() const { return crashed_.load(std::memory_order_acquire); }
  const std::string& directory() const { return dir_; }
  size_t page_size() const { return pool_->page_size(); }
  BufferManager* pool() { return pool_.get(); }

 private:
  StorageEngine(std::string dir, StorageOptions options);

  std::string SegmentPath(uint64_t table_id) const;
  std::string WalPath(uint64_t epoch) const;
  std::string ManifestPath() const;

  Status CheckNotCrashed() const;
  /// Marks the engine crashed and returns `status` unchanged.
  Status Poison(Status status);

  /// Reads/validates/trims one segment per the manifest and registers the
  /// table (recovery step 2; docs/STORAGE.md "Recovery protocol").
  Status RecoverSegment(const std::string& name, uint64_t table_id,
                        const engine::Schema& schema, uint64_t pages,
                        uint64_t rows, uint32_t tail_records);
  Status ReplayWal();
  Status ReplayCreate(const std::string& payload);
  Status ReplayInsert(const std::string& payload);
  Status ReplayDrop(const std::string& payload);

  /// Writes MANIFEST.tmp, fsyncs, renames over MANIFEST, fsyncs the
  /// directory. Fault site `storage.manifest.write` (clean failure).
  Status WriteManifest(uint64_t wal_epoch);
  Status ParseManifest(const std::string& contents);

  /// Creates the in-memory table + fresh segment file (shared by live
  /// CREATE TABLE and WAL replay).
  Status CreateTableLocked(const std::string& name,
                           const engine::Schema& schema);

  const std::string dir_;
  StorageOptions options_;
  std::shared_ptr<BufferManager> pool_;
  std::unique_ptr<WriteAheadLog> wal_;

  mutable std::mutex mu_;  ///< mutation lock; also guards tables_ updates
  std::map<std::string, PagedTablePtr> tables_;  ///< ordered: manifest determinism
  uint64_t wal_epoch_ = 0;
  uint64_t next_table_id_ = 1;
  std::atomic<bool> crashed_{false};
  /// Set at the end of a successful Open(); the destructor only
  /// checkpoints a fully recovered engine (a partial one would publish a
  /// manifest missing the tables recovery never reached).
  bool recovered_ = false;
  uint64_t checkpoints_ = 0;
  uint64_t wal_replayed_records_ = 0;

  /// Parsed manifest state consumed by Open()'s recovery.
  struct ManifestTable {
    std::string name;
    uint64_t id = 0;
    uint64_t pages = 0;
    uint64_t rows = 0;
    uint32_t tail_records = 0;
    engine::Schema schema;
  };
  std::vector<ManifestTable> manifest_tables_;
};

}  // namespace sgb::storage

#endif  // SGB_STORAGE_STORAGE_ENGINE_H_
