#ifndef SGB_STORAGE_PAGE_H_
#define SGB_STORAGE_PAGE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

namespace sgb::storage {

/// CRC-32 (ISO-HDLC polynomial, the zlib crc32) over `n` bytes.
uint32_t Crc32(const void* data, size_t n);

/// Fixed-size slotted page (docs/STORAGE.md "Page layout").
///
///   [ header | record heap (grows up) ... free ... | slot dir (grows down) ]
///
/// Header, little-endian at offset 0:
///   u32 checksum    CRC-32 of bytes [4, page_size) — stamped at flush time
///   u16 slot_count
///   u16 free_off    first free byte of the record heap
///
/// Slot directory entries are {u16 off, u16 len}, slot i ending at
/// page_size - 4*i. Records are append-only: a record's bytes and its slot
/// entry never move or change once written, so the byte prefix holding the
/// first k records is IDENTICAL in every later version of the page. That
/// prefix-stability is what makes torn page writes recoverable without
/// full-page images (docs/STORAGE.md "Recovery protocol"), and what lets
/// concurrent readers touch slots below a published count while a writer
/// appends above it: writer and readers never access the same bytes, and
/// readers never read the mutable header fields.
///
/// SlottedPage is a non-owning view over a frame's bytes; all methods are
/// cheap. Page sizes are powers of two in [kMinPageSize, kMaxPageSize].
class SlottedPage {
 public:
  static constexpr size_t kHeaderBytes = 8;
  static constexpr size_t kSlotBytes = 4;
  static constexpr size_t kMinPageSize = 256;
  static constexpr size_t kMaxPageSize = 64 * 1024;

  SlottedPage(uint8_t* data, size_t page_size)
      : data_(data), page_size_(page_size) {}

  /// Zeroes the header (fresh empty page). The body is left as-is; record
  /// bytes are written before their slot entry publishes them.
  void Init() {
    PutU32(0, 0);
    PutU16(4, 0);
    PutU16(6, kHeaderBytes);
  }

  size_t page_size() const { return page_size_; }
  size_t slot_count() const { return GetU16(4); }
  size_t free_off() const { return GetU16(6); }

  size_t FreeBytes() const {
    const size_t dir_top = page_size_ - kSlotBytes * slot_count();
    const size_t off = free_off();
    return dir_top > off ? dir_top - off : 0;
  }

  bool HasRoomFor(size_t record_bytes) const {
    return FreeBytes() >= record_bytes + kSlotBytes;
  }

  /// Appends `bytes` as the next record and returns its slot index, or -1
  /// when the page has no room. Order of writes matters for concurrent
  /// readers: record bytes land first, then the slot entry, then the
  /// mutable header fields (which readers never touch).
  int AddRecord(std::string_view bytes) {
    if (!HasRoomFor(bytes.size())) return -1;
    const size_t slot = slot_count();
    const size_t off = free_off();
    std::memcpy(data_ + off, bytes.data(), bytes.size());
    const size_t entry = page_size_ - kSlotBytes * (slot + 1);
    PutU16(entry, static_cast<uint16_t>(off));
    PutU16(entry + 2, static_cast<uint16_t>(bytes.size()));
    PutU16(6, static_cast<uint16_t>(off + bytes.size()));
    PutU16(4, static_cast<uint16_t>(slot + 1));
    return static_cast<int>(slot);
  }

  /// Record `slot`'s bytes. Callers must have observed a published count
  /// above `slot`; only the immutable slot entry and record bytes are read.
  std::string_view Record(size_t slot) const {
    const size_t entry = page_size_ - kSlotBytes * (slot + 1);
    const size_t off = GetU16(entry);
    const size_t len = GetU16(entry + 2);
    return std::string_view(reinterpret_cast<const char*>(data_ + off), len);
  }

  /// Whether slots [0, count) describe a well-formed contiguous record run
  /// (offsets start at the header, are adjacent, and stay inside the page).
  /// Recovery uses this to validate a torn tail page's durable prefix.
  bool ValidatePrefix(size_t count) const {
    size_t expect_off = kHeaderBytes;
    for (size_t s = 0; s < count; ++s) {
      const size_t entry_at = page_size_ - kSlotBytes * (s + 1);
      if (entry_at <= expect_off) return false;  // dir would overlap heap
      const size_t off = GetU16(entry_at);
      const size_t len = GetU16(entry_at + 2);
      if (off != expect_off || off + len > page_size_) return false;
      expect_off = off + len;
    }
    return true;
  }

  /// Truncates the page to its first `count` records (recovery trims a tail
  /// page back to the durable state; requires ValidatePrefix(count)).
  void TrimToPrefix(size_t count) {
    size_t off = kHeaderBytes;
    if (count > 0) {
      const size_t entry = page_size_ - kSlotBytes * count;
      off = static_cast<size_t>(GetU16(entry)) + GetU16(entry + 2);
    }
    PutU16(4, static_cast<uint16_t>(count));
    PutU16(6, static_cast<uint16_t>(off));
  }

  /// Stamps / checks the whole-page checksum. Only flush paths call these
  /// (never concurrent with a writer appending to the same page).
  void UpdateChecksum() { PutU32(0, Crc32(data_ + 4, page_size_ - 4)); }
  bool ChecksumValid() const {
    return GetU32(0) == Crc32(data_ + 4, page_size_ - 4);
  }

 private:
  uint16_t GetU16(size_t at) const {
    return static_cast<uint16_t>(data_[at]) |
           static_cast<uint16_t>(data_[at + 1]) << 8;
  }
  uint32_t GetU32(size_t at) const {
    return static_cast<uint32_t>(GetU16(at)) |
           static_cast<uint32_t>(GetU16(at + 2)) << 16;
  }
  void PutU16(size_t at, uint16_t v) {
    data_[at] = static_cast<uint8_t>(v);
    data_[at + 1] = static_cast<uint8_t>(v >> 8);
  }
  void PutU32(size_t at, uint32_t v) {
    PutU16(at, static_cast<uint16_t>(v));
    PutU16(at + 2, static_cast<uint16_t>(v >> 16));
  }

  uint8_t* data_;
  size_t page_size_;
};

}  // namespace sgb::storage

#endif  // SGB_STORAGE_PAGE_H_
