#include "storage/page.h"

namespace sgb::storage {

namespace {

struct Crc32Table {
  uint32_t entries[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
  }
};

}  // namespace

uint32_t Crc32(const void* data, size_t n) {
  static const Crc32Table table;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    crc = table.entries[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace sgb::storage
