#include "storage/storage_engine.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/fault_injection.h"
#include "engine/append_table.h"  // CoerceRowsToSchema
#include "engine/spill.h"         // EncodeRow/DecodeRow
#include "obs/metrics.h"
#include "storage/page.h"

namespace sgb::storage {

// A manifest that fails to write is a *clean* error: the previous manifest
// and the current WAL epoch are untouched, so the engine keeps running and
// the checkpoint can simply be retried.
static FaultSite g_manifest_write_fault("storage.manifest.write",
                                        Status::Code::kIoError);

namespace {

// ---- WAL payload codec --------------------------------------------------
// Fixed-width little-endian integers + length-prefixed strings. Row bodies
// reuse the spill codec (EncodeRow/DecodeRow), which is bit-exact.

void AppendU32(std::string* out, uint32_t v) {
  char b[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
               static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
  out->append(b, 4);
}

void AppendU64(std::string* out, uint64_t v) {
  AppendU32(out, static_cast<uint32_t>(v));
  AppendU32(out, static_cast<uint32_t>(v >> 32));
}

void AppendStr(std::string* out, std::string_view s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

bool ReadU32(std::string_view in, size_t* off, uint32_t* v) {
  if (in.size() - *off < 4) return false;
  const uint8_t* p = reinterpret_cast<const uint8_t*>(in.data()) + *off;
  *v = static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
       static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
  *off += 4;
  return true;
}

bool ReadU64(std::string_view in, size_t* off, uint64_t* v) {
  uint32_t lo = 0;
  uint32_t hi = 0;
  if (!ReadU32(in, off, &lo) || !ReadU32(in, off, &hi)) return false;
  *v = static_cast<uint64_t>(hi) << 32 | lo;
  return true;
}

bool ReadStr(std::string_view in, size_t* off, std::string* out) {
  uint32_t len = 0;
  if (!ReadU32(in, off, &len)) return false;
  if (in.size() - *off < len) return false;
  out->assign(in.data() + *off, len);
  *off += len;
  return true;
}

Status CorruptPayload(const char* what) {
  return Status::Internal(std::string("wal replay: corrupt ") + what +
                          " payload");
}

// ---- small filesystem helpers -------------------------------------------

Status SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IoError("storage: cannot open directory " + dir + ": " +
                           std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::IoError("storage: fsync failed on directory " + dir +
                           ": " + std::strerror(errno));
  }
  return Status::OK();
}

/// Reads the whole file; `*exists=false` (and empty contents) when absent.
Result<std::string> ReadFileIfExists(const std::string& path, bool* exists) {
  *exists = false;
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return std::string();
    return Status::IoError("storage: cannot open " + path + ": " +
                           std::strerror(errno));
  }
  *exists = true;
  std::string contents;
  char buf[1 << 16];
  ssize_t r;
  while ((r = ::read(fd, buf, sizeof buf)) > 0) {
    contents.append(buf, static_cast<size_t>(r));
  }
  const bool failed = r < 0;
  ::close(fd);
  if (failed) {
    return Status::IoError("storage: read failed on " + path + ": " +
                           std::strerror(errno));
  }
  return contents;
}

bool ValidName(const std::string& name) {
  if (name.empty()) return false;
  for (const char c : name) {
    if (c <= ' ' || c == '/' || c == 0x7f) return false;
  }
  return true;
}

std::string EncodeCreatePayload(const std::string& name,
                                const engine::Schema& schema) {
  std::string payload;
  AppendStr(&payload, name);
  AppendU32(&payload, static_cast<uint32_t>(schema.size()));
  for (size_t c = 0; c < schema.size(); ++c) {
    const engine::Column& col = schema.column(c);
    AppendStr(&payload, col.name);
    payload.push_back(static_cast<char>(col.type));
  }
  return payload;
}

}  // namespace

// ---- open / recovery ----------------------------------------------------

StorageEngine::StorageEngine(std::string dir, StorageOptions options)
    : dir_(std::move(dir)), options_(options) {}

std::string StorageEngine::SegmentPath(uint64_t table_id) const {
  return dir_ + "/t" + std::to_string(table_id) + ".seg";
}

std::string StorageEngine::WalPath(uint64_t epoch) const {
  return dir_ + "/wal-" + std::to_string(epoch) + ".log";
}

std::string StorageEngine::ManifestPath() const { return dir_ + "/MANIFEST"; }

Result<std::unique_ptr<StorageEngine>> StorageEngine::Open(
    const std::string& directory, const StorageOptions& options) {
  if (::mkdir(directory.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IoError("storage: cannot create directory " + directory +
                           ": " + std::strerror(errno));
  }
  std::unique_ptr<StorageEngine> engine(
      new StorageEngine(directory, options));

  bool have_manifest = false;
  auto manifest = ReadFileIfExists(engine->ManifestPath(), &have_manifest);
  if (!manifest.ok()) return manifest.status();
  if (have_manifest) {
    SGB_RETURN_IF_ERROR(engine->ParseManifest(manifest.value()));
  }
  const size_t page_size = engine->options_.page_size;
  if (page_size < SlottedPage::kMinPageSize ||
      page_size > SlottedPage::kMaxPageSize ||
      (page_size & (page_size - 1)) != 0) {
    return Status::InvalidArgument(
        "storage: page_size must be a power of two in [" +
        std::to_string(SlottedPage::kMinPageSize) + ", " +
        std::to_string(SlottedPage::kMaxPageSize) + "], got " +
        std::to_string(page_size));
  }
  // A leftover MANIFEST.tmp is a checkpoint that crashed before its atomic
  // rename — the published manifest is still authoritative.
  ::unlink((directory + "/MANIFEST.tmp").c_str());

  engine->pool_ = std::make_shared<BufferManager>(
      engine->options_.buffer_pool_bytes, page_size,
      engine->options_.eviction, &MemoryTracker::EngineGlobal());

  for (const ManifestTable& mt : engine->manifest_tables_) {
    SGB_RETURN_IF_ERROR(engine->RecoverSegment(
        mt.name, mt.id, mt.schema, mt.pages, mt.rows, mt.tail_records));
  }
  engine->manifest_tables_.clear();

  // Stale WAL epochs (a checkpoint crashed after publishing the manifest
  // but before deleting the old log) are redundant by construction.
  if (DIR* d = ::opendir(directory.c_str())) {
    const std::string keep = "wal-" + std::to_string(engine->wal_epoch_) +
                             ".log";
    while (struct dirent* e = ::readdir(d)) {
      const std::string fn = e->d_name;
      if (fn.rfind("wal-", 0) == 0 && fn != keep) {
        ::unlink((directory + "/" + fn).c_str());
      }
    }
    ::closedir(d);
  }

  SGB_RETURN_IF_ERROR(engine->ReplayWal());

  auto wal = WriteAheadLog::Open(engine->WalPath(engine->wal_epoch_));
  if (!wal.ok()) return wal.status();
  engine->wal_ = std::move(wal).value();

  if (engine->wal_replayed_records_ > 0) {
    auto& registry = obs::MetricsRegistry::Global();
    registry.GetCounter("storage.recoveries").Add(1);
    registry.GetCounter("storage.wal.replayed")
        .Add(engine->wal_replayed_records_);
  }
  engine->recovered_ = true;
  return engine;
}

Status StorageEngine::ParseManifest(const std::string& contents) {
  std::istringstream in(contents);
  std::string line;
  if (!std::getline(in, line) || line != "sgb-manifest 1") {
    return Status::Internal("manifest: bad header in " + ManifestPath());
  }
  ManifestTable* current = nullptr;
  size_t cols_left = 0;
  bool saw_end = false;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag == "page_size") {
      fields >> options_.page_size;
    } else if (tag == "wal_epoch") {
      fields >> wal_epoch_;
    } else if (tag == "next_table_id") {
      fields >> next_table_id_;
    } else if (tag == "table") {
      if (cols_left != 0) {
        return Status::Internal("manifest: table with missing columns");
      }
      manifest_tables_.emplace_back();
      current = &manifest_tables_.back();
      uint32_t ncols = 0;
      fields >> current->id >> current->pages >> current->rows >>
          current->tail_records >> ncols >> current->name;
      cols_left = ncols;
    } else if (tag == "col") {
      if (current == nullptr || cols_left == 0) {
        return Status::Internal("manifest: col line outside a table");
      }
      int type = 0;
      std::string cname;
      fields >> type >> cname;
      current->schema.AddColumn(
          {cname, static_cast<engine::DataType>(type), ""});
      --cols_left;
    } else if (tag == "end") {
      saw_end = true;
      break;
    } else {
      return Status::Internal("manifest: unknown line '" + line + "'");
    }
    if (fields.fail()) {
      return Status::Internal("manifest: malformed line '" + line + "'");
    }
  }
  if (!saw_end || cols_left != 0) {
    // The manifest is published with fsync+rename, so a truncated one is
    // real corruption, not a crash artifact.
    return Status::Internal("manifest: truncated " + ManifestPath());
  }
  return Status::OK();
}

Status StorageEngine::RecoverSegment(const std::string& name,
                                     uint64_t table_id,
                                     const engine::Schema& schema,
                                     uint64_t pages, uint64_t rows,
                                     uint32_t tail_records) {
  auto file = PageFile::Open(SegmentPath(table_id), options_.page_size);
  if (!file.ok()) return file.status();
  std::vector<uint8_t> scratch(options_.page_size);
  std::vector<uint32_t> rows_per_page;
  rows_per_page.reserve(pages);
  uint64_t total = 0;
  for (uint64_t p = 0; p < pages; ++p) {
    SGB_RETURN_IF_ERROR(file.value()->Read(p, scratch.data()));
    SlottedPage page(scratch.data(), options_.page_size);
    if (p + 1 < pages) {
      // Non-tail manifest pages were flushed and fsynced before the
      // manifest was published, and append-only pages below the tail are
      // never rewritten — so their checksums must hold.
      if (!page.ChecksumValid() ||
          !page.ValidatePrefix(page.slot_count())) {
        return Status::IoError("recovery: segment " + SegmentPath(table_id) +
                               " page " + std::to_string(p) +
                               " is corrupt");
      }
      rows_per_page.push_back(static_cast<uint32_t>(page.slot_count()));
      total += page.slot_count();
    } else {
      // The tail page may have been rewritten in place after the
      // checkpoint and torn by the crash. Append-only prefix stability
      // guarantees the first `tail_records` records are byte-identical in
      // every version of the page, so no checksum is required — just a
      // well-formed prefix, which is then trimmed back to the durable
      // state (replay rebuilds everything past it).
      if (!page.ValidatePrefix(tail_records)) {
        return Status::IoError("recovery: segment " + SegmentPath(table_id) +
                               " tail page fails prefix validation");
      }
      page.TrimToPrefix(tail_records);
      page.UpdateChecksum();
      SGB_RETURN_IF_ERROR(file.value()->Write(p, scratch.data()));
      rows_per_page.push_back(tail_records);
      total += tail_records;
    }
  }
  SGB_RETURN_IF_ERROR(file.value()->Truncate(pages));
  if (total != rows) {
    return Status::Internal("recovery: manifest row count for '" + name +
                            "' (" + std::to_string(rows) +
                            ") does not match its pages (" +
                            std::to_string(total) + ")");
  }
  auto table = std::make_shared<PagedTable>(
      name, schema, pool_, std::move(file).value(), table_id);
  table->RestoreMeta(std::move(rows_per_page), rows);
  tables_[name] = std::move(table);
  return Status::OK();
}

Status StorageEngine::ReplayWal() {
  auto records = WriteAheadLog::ReadAll(WalPath(wal_epoch_), nullptr);
  if (!records.ok()) return records.status();
  for (const WalRecord& record : records.value()) {
    switch (record.type) {
      case WalRecordType::kCreateTable:
        SGB_RETURN_IF_ERROR(ReplayCreate(record.payload));
        break;
      case WalRecordType::kInsert:
        SGB_RETURN_IF_ERROR(ReplayInsert(record.payload));
        break;
      case WalRecordType::kDropTable:
        SGB_RETURN_IF_ERROR(ReplayDrop(record.payload));
        break;
      default:
        return Status::Internal("wal replay: unknown record type " +
                                std::to_string(static_cast<int>(record.type)));
    }
    ++wal_replayed_records_;
  }
  return Status::OK();
}

Status StorageEngine::ReplayCreate(const std::string& payload) {
  size_t off = 0;
  std::string name;
  uint32_t ncols = 0;
  if (!ReadStr(payload, &off, &name) || !ReadU32(payload, &off, &ncols)) {
    return CorruptPayload("create");
  }
  engine::Schema schema;
  for (uint32_t c = 0; c < ncols; ++c) {
    std::string cname;
    if (!ReadStr(payload, &off, &cname) || off >= payload.size()) {
      return CorruptPayload("create");
    }
    const auto type = static_cast<engine::DataType>(payload[off++]);
    schema.AddColumn({std::move(cname), type, ""});
  }
  // Idempotent: the table exists when the create was already durable in
  // the manifest (stale-record replay).
  if (tables_.count(name) != 0) return Status::OK();
  return CreateTableLocked(name, schema);
}

Status StorageEngine::ReplayInsert(const std::string& payload) {
  size_t off = 0;
  std::string name;
  uint64_t first_row = 0;
  uint32_t nrows = 0;
  if (!ReadStr(payload, &off, &name) || !ReadU64(payload, &off, &first_row) ||
      !ReadU32(payload, &off, &nrows)) {
    return CorruptPayload("insert");
  }
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::Internal("wal replay: insert into unknown table '" +
                            name + "'");
  }
  // Walk the row encodings to find record boundaries (DecodeRow is the
  // validator too — a CRC-valid frame should never fail here).
  std::vector<std::string_view> records;
  records.reserve(nrows);
  for (uint32_t r = 0; r < nrows; ++r) {
    const size_t begin = off;
    engine::Row row;
    SGB_RETURN_IF_ERROR(
        engine::DecodeRow(payload.data(), payload.size(), &off, &row));
    records.emplace_back(payload.data() + begin, off - begin);
  }
  const size_t current = it->second->SnapshotRows();
  if (first_row + nrows <= current) return Status::OK();  // already applied
  if (first_row > current) {
    return Status::Internal("wal replay: row gap in table '" + name +
                            "' (log starts at row " +
                            std::to_string(first_row) + ", table has " +
                            std::to_string(current) + ")");
  }
  // Apply only the suffix the durable pages are missing.
  records.erase(records.begin(),
                records.begin() + static_cast<ptrdiff_t>(current - first_row));
  return it->second->AppendEncoded(records);
}

Status StorageEngine::ReplayDrop(const std::string& payload) {
  size_t off = 0;
  std::string name;
  if (!ReadStr(payload, &off, &name)) return CorruptPayload("drop");
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::OK();  // already gone
  it->second->MarkDropped();
  tables_.erase(it);
  return Status::OK();
}

// ---- mutations ----------------------------------------------------------

Status StorageEngine::CheckNotCrashed() const {
  if (!crashed()) return Status::OK();
  return Status::IoError(
      "storage engine is poisoned after a simulated crash; reopen the "
      "database to recover");
}

Status StorageEngine::Poison(Status status) {
  crashed_.store(true, std::memory_order_release);
  obs::MetricsRegistry::Global().GetCounter("storage.crashes").Add(1);
  return status;
}

Status StorageEngine::CreateTableLocked(const std::string& name,
                                        const engine::Schema& schema) {
  const uint64_t id = next_table_id_++;
  const std::string path = SegmentPath(id);
  // A leftover file under this id is from a dropped table whose unlink
  // raced a crash; the new table starts empty.
  ::unlink(path.c_str());
  auto file = PageFile::Open(path, options_.page_size);
  if (!file.ok()) return file.status();
  tables_[name] = std::make_shared<PagedTable>(
      name, schema, pool_, std::move(file).value(), id);
  return Status::OK();
}

Status StorageEngine::CreateTable(const std::string& name,
                                  const engine::Schema& schema,
                                  bool if_not_exists, bool* created) {
  if (created != nullptr) *created = false;
  SGB_RETURN_IF_ERROR(CheckNotCrashed());
  if (!ValidName(name)) {
    return Status::InvalidArgument("invalid table name '" + name + "'");
  }
  if (schema.size() == 0) {
    return Status::InvalidArgument("CREATE TABLE needs at least one column");
  }
  for (size_t c = 0; c < schema.size(); ++c) {
    if (!ValidName(schema.column(c).name)) {
      return Status::InvalidArgument("invalid column name '" +
                                     schema.column(c).name + "'");
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (tables_.count(name) != 0) {
    if (if_not_exists) return Status::OK();
    return Status::InvalidArgument("table '" + name + "' already exists");
  }
  Status status = wal_->Append(WalRecordType::kCreateTable,
                               EncodeCreatePayload(name, schema));
  if (!status.ok()) return Poison(std::move(status));
  status = wal_->Sync();
  if (!status.ok()) return Poison(std::move(status));
  status = CreateTableLocked(name, schema);
  if (!status.ok()) return Poison(std::move(status));
  if (created != nullptr) *created = true;
  return Status::OK();
}

Status StorageEngine::DropTable(const std::string& name, bool if_exists) {
  SGB_RETURN_IF_ERROR(CheckNotCrashed());
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    if (if_exists) return Status::OK();
    return Status::NotFound("table '" + name + "' does not exist");
  }
  std::string payload;
  AppendStr(&payload, name);
  Status status = wal_->Append(WalRecordType::kDropTable, payload);
  if (!status.ok()) return Poison(std::move(status));
  status = wal_->Sync();
  if (!status.ok()) return Poison(std::move(status));
  // In-flight scans hold shared_ptrs; the segment file is unlinked when
  // the last one drops.
  it->second->MarkDropped();
  tables_.erase(it);
  return Status::OK();
}

Status StorageEngine::Insert(const std::string& name,
                             std::vector<engine::Row> rows) {
  SGB_RETURN_IF_ERROR(CheckNotCrashed());
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  const PagedTablePtr& table = it->second;
  // Everything that can fail *cleanly* happens before the WAL commit:
  // arity/type validation and the row-fits-a-page check.
  SGB_RETURN_IF_ERROR(engine::CoerceRowsToSchema(table->schema(), &rows));
  std::vector<std::string> encoded(rows.size());
  const size_t max_record = PagedTable::MaxRecordBytes(pool_->page_size());
  for (size_t r = 0; r < rows.size(); ++r) {
    engine::EncodeRow(rows[r], &encoded[r]);
    if (encoded[r].size() > max_record) {
      return Status::InvalidArgument(
          "row of " + std::to_string(encoded[r].size()) +
          " encoded bytes does not fit a " +
          std::to_string(pool_->page_size()) + "-byte page");
    }
  }
  std::string payload;
  AppendStr(&payload, name);
  AppendU64(&payload, table->SnapshotRows());
  AppendU32(&payload, static_cast<uint32_t>(encoded.size()));
  for (const std::string& record : encoded) payload.append(record);

  Status status = wal_->Append(WalRecordType::kInsert, payload);
  if (!status.ok()) return Poison(std::move(status));
  status = wal_->Sync();  // the commit point
  if (!status.ok()) return Poison(std::move(status));
  std::vector<std::string_view> views(encoded.begin(), encoded.end());
  status = table->AppendEncoded(views);
  if (!status.ok()) return Poison(std::move(status));
  obs::MetricsRegistry::Global()
      .GetCounter("storage.rows_inserted")
      .Add(encoded.size());
  return Status::OK();
}

Status StorageEngine::Checkpoint() {
  SGB_RETURN_IF_ERROR(CheckNotCrashed());
  std::lock_guard<std::mutex> lock(mu_);
  // 1. Make every page durable before the manifest can reference it.
  for (auto& [name, table] : tables_) {
    Status status = table->Flush();
    if (!status.ok()) return Poison(std::move(status));
    status = table->file()->Sync();
    if (!status.ok()) return Poison(std::move(status));
  }
  // 2. A fresh, empty WAL epoch, durable before the manifest points at it.
  const uint64_t new_epoch = wal_epoch_ + 1;
  const std::string new_wal_path = WalPath(new_epoch);
  ::unlink(new_wal_path.c_str());
  auto new_wal = WriteAheadLog::Open(new_wal_path);
  if (!new_wal.ok()) return new_wal.status();  // clean: nothing published
  Status status = SyncDir(dir_);
  if (!status.ok()) {
    ::unlink(new_wal_path.c_str());
    return status;
  }
  // 3. Atomically publish the new manifest (tmp + fsync + rename).
  status = WriteManifest(new_epoch);
  if (!status.ok()) {
    ::unlink(new_wal_path.c_str());
    return status;  // clean: the old manifest + old WAL are intact
  }
  // 4. The old epoch is now redundant.
  const std::string old_wal_path = WalPath(wal_epoch_);
  wal_ = std::move(new_wal).value();
  wal_epoch_ = new_epoch;
  ::unlink(old_wal_path.c_str());
  ++checkpoints_;
  obs::MetricsRegistry::Global().GetCounter("storage.checkpoints").Add(1);
  return Status::OK();
}

Status StorageEngine::WriteManifest(uint64_t wal_epoch) {
  SGB_RETURN_IF_ERROR(g_manifest_write_fault.Check());
  std::ostringstream out;
  out << "sgb-manifest 1\n";
  out << "page_size " << options_.page_size << "\n";
  out << "wal_epoch " << wal_epoch << "\n";
  out << "next_table_id " << next_table_id_ << "\n";
  for (const auto& [name, table] : tables_) {
    const PagedTable::Meta meta = table->MetaSnapshot();
    const engine::Schema& schema = table->schema();
    out << "table " << table->table_id() << ' ' << meta.pages << ' '
        << meta.rows << ' ' << meta.tail_records << ' ' << schema.size()
        << ' ' << name << "\n";
    for (size_t c = 0; c < schema.size(); ++c) {
      out << "col " << static_cast<int>(schema.column(c).type) << ' '
          << schema.column(c).name << "\n";
    }
  }
  out << "end\n";
  const std::string body = out.str();

  const std::string tmp = dir_ + "/MANIFEST.tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IoError("storage: cannot create " + tmp + ": " +
                           std::strerror(errno));
  }
  size_t done = 0;
  while (done < body.size()) {
    const ssize_t w = ::write(fd, body.data() + done, body.size() - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      const Status status = Status::IoError("storage: write failed on " +
                                            tmp + ": " +
                                            std::strerror(errno));
      ::close(fd);
      ::unlink(tmp.c_str());
      return status;
    }
    done += static_cast<size_t>(w);
  }
  if (::fsync(fd) != 0) {
    const Status status = Status::IoError("storage: fsync failed on " + tmp +
                                          ": " + std::strerror(errno));
    ::close(fd);
    ::unlink(tmp.c_str());
    return status;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), ManifestPath().c_str()) != 0) {
    const Status status = Status::IoError("storage: rename failed for " +
                                          tmp + ": " + std::strerror(errno));
    ::unlink(tmp.c_str());
    return status;
  }
  return SyncDir(dir_);
}

// ---- reads / knobs ------------------------------------------------------

PagedTablePtr StorageEngine::Find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second;
}

std::vector<std::string> StorageEngine::TableNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

Status StorageEngine::SetBufferPoolBytes(size_t bytes) {
  return pool_->SetCapacityBytes(bytes);
}

Status StorageEngine::SetEvictionPolicy(EvictionPolicyKind kind) {
  return pool_->SetPolicy(kind);
}

StorageStats StorageEngine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  StorageStats stats;
  stats.checkpoints = checkpoints_;
  stats.wal_replayed_records = wal_replayed_records_;
  stats.wal_bytes = wal_ != nullptr ? wal_->bytes() : 0;
  stats.crashed = crashed();
  return stats;
}

StorageEngine::~StorageEngine() {
  // Best-effort checkpoint on clean close; a poisoned engine leaves the
  // directory exactly as the "crash" did, which is what recovery tests
  // reopen against. An engine whose Open() failed partway must not
  // checkpoint either: its table map is incomplete, and publishing a
  // manifest from it would discard every table recovery did not reach.
  if (recovered_ && !crashed() && options_.checkpoint_on_close) {
    (void)Checkpoint();
  }
}

}  // namespace sgb::storage
