#ifndef SGB_STORAGE_BUFFER_MANAGER_H_
#define SGB_STORAGE_BUFFER_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/memory_tracker.h"
#include "common/status.h"
#include "storage/page_file.h"

namespace sgb::storage {

/// Pluggable page-replacement policy (docs/STORAGE.md "Buffer manager").
/// The buffer manager reports residency changes; PickVictim must return an
/// unpinned resident page (the `evictable` predicate encodes pin state), so
/// a policy can never cause I/O on — or loss of — a pinned page.
enum class EvictionPolicyKind { kLru, k2Q };

const char* ToString(EvictionPolicyKind kind);
Result<EvictionPolicyKind> ParseEvictionPolicy(const std::string& name);

class EvictionPolicy {
 public:
  virtual ~EvictionPolicy() = default;
  virtual const char* name() const = 0;

  /// A page became resident (miss path).
  virtual void OnInsert(uint64_t key) = 0;
  /// A resident page was pinned again (hit path).
  virtual void OnAccess(uint64_t key) = 0;
  /// A page left the pool. `evicted` distinguishes replacement (2Q keeps a
  /// ghost entry) from discard (DROP TABLE / recovery trim — no ghost).
  virtual void OnRemove(uint64_t key, bool evicted) = 0;
  /// Picks the replacement victim among pages where `evictable(key)`;
  /// false when every resident page is pinned or busy.
  virtual bool PickVictim(const std::function<bool(uint64_t)>& evictable,
                          uint64_t* key) = 0;
};

/// `capacity_pages` sizes 2Q's A1in/A1out queues (Kin = capacity/4,
/// Kout = capacity/2, both at least 1); LRU ignores it.
std::unique_ptr<EvictionPolicy> MakeEvictionPolicy(EvictionPolicyKind kind,
                                                   size_t capacity_pages);

/// Snapshot for system.buffer_pool.
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t writebacks = 0;  ///< dirty-page writes (evictions + flushes)
  uint64_t capacity_pages = 0;
  uint64_t resident_pages = 0;
  uint64_t dirty_pages = 0;
  uint64_t pinned_pages = 0;
  size_t page_size = 0;
  std::string policy;
};

/// The shared page cache between PagedTables and their segment files:
/// frames are charged to a MemoryTracker parented to the engine-global one
/// (so pages, spills, and operator state live under one accounting regime),
/// pins are RAII PageGuards, and replacement is delegated to an
/// EvictionPolicy that only ever sees unpinned candidates.
///
/// Thread safety: all methods are safe from any thread. Frame I/O (miss
/// reads, dirty write-back) happens outside the pool mutex; a frame doing
/// I/O is `busy` and concurrent pins of it wait on a condvar.
class BufferManager {
 public:
  /// `parent` (usually MemoryTracker::EngineGlobal()) must outlive this.
  BufferManager(size_t pool_bytes, size_t page_size, EvictionPolicyKind kind,
                MemoryTracker* parent);
  ~BufferManager();
  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  struct Frame;

  /// RAII pin: while alive, the page stays resident and its bytes stable
  /// on disk-backed reload paths (eviction never touches pinned frames).
  class PageGuard {
   public:
    PageGuard() = default;
    PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
    PageGuard& operator=(PageGuard&& other) noexcept;
    ~PageGuard() { Reset(); }
    PageGuard(const PageGuard&) = delete;
    PageGuard& operator=(const PageGuard&) = delete;

    bool valid() const { return frame_ != nullptr; }
    uint8_t* data() const;
    /// Marks the page for write-back before eviction/checkpoint.
    void MarkDirty();
    void Reset();

   private:
    friend class BufferManager;
    PageGuard(BufferManager* bm, Frame* frame) : bm_(bm), frame_(frame) {}
    BufferManager* bm_ = nullptr;
    Frame* frame_ = nullptr;
  };

  /// Registers a segment file (not owned; must outlive its registration).
  uint32_t RegisterSegment(PageFile* file);

  /// Discards every frame of `seg` (no write-back — callers either flushed
  /// or are dropping the data) and forgets the file. Frames of the segment
  /// must be unpinned.
  Status UnregisterSegment(uint32_t seg);

  /// Pins page `page_no` of `seg`, reading it from disk when absent.
  Result<PageGuard> Pin(uint32_t seg, uint64_t page_no);

  /// Pins a brand-new zeroed page (no disk read), already marked dirty.
  Result<PageGuard> PinNew(uint32_t seg, uint64_t page_no);

  /// Writes back every dirty frame of `seg` (of every segment), stamping
  /// page checksums. Frames stay resident and become clean. Pinned frames
  /// are flushed too — write-back does not mutate or drop the frame.
  Status FlushSegment(uint32_t seg);
  Status FlushAll();

  /// Discards unpinned frames of `seg` with page_no >= from_page, dropping
  /// dirty data (recovery trims a segment back to its durable length).
  void DiscardSegmentPages(uint32_t seg, uint64_t from_page);

  /// Shrinks/grows the pool; evicts (writing back dirty pages) down to the
  /// new capacity. Pinned frames in excess of the capacity survive — the
  /// pool re-converges as pins release.
  Status SetCapacityBytes(size_t bytes);

  /// Swaps the replacement policy; resident pages are re-seeded into the
  /// new policy in key order (their recency history does not carry over).
  Status SetPolicy(EvictionPolicyKind kind);

  BufferPoolStats stats() const;
  size_t page_size() const { return page_size_; }
  size_t capacity_pages() const;

  /// Whether (seg, page_no) is resident right now (buffer_test's
  /// pinned-pages-stay-resident invariant).
  bool IsResident(uint32_t seg, uint64_t page_no) const;

 private:
  static uint64_t Key(uint32_t seg, uint64_t page_no) {
    return (static_cast<uint64_t>(seg) << 40) | page_no;
  }

  /// Makes room for one more frame, evicting victims as needed. May drop
  /// and retake `lock` around write-back I/O.
  Status EnsureRoomLocked(std::unique_lock<std::mutex>& lock);

  /// Writes `frame` back to its segment file with a stamped checksum.
  /// Caller marked the frame busy; `lock` is dropped around the I/O.
  Status WriteBackLocked(std::unique_lock<std::mutex>& lock, Frame* frame);

  void Unpin(Frame* frame);

  mutable std::mutex mu_;
  std::condition_variable cv_;  ///< busy-frame transitions
  const size_t page_size_;
  size_t capacity_pages_;
  MemoryTracker tracker_;
  std::unique_ptr<EvictionPolicy> policy_;
  std::unordered_map<uint64_t, std::unique_ptr<Frame>> frames_;
  std::unordered_map<uint32_t, PageFile*> segments_;
  uint32_t next_segment_ = 1;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t writebacks_ = 0;
};

}  // namespace sgb::storage

#endif  // SGB_STORAGE_BUFFER_MANAGER_H_
