#ifndef SGB_STORAGE_FILE_REGISTRY_H_
#define SGB_STORAGE_FILE_REGISTRY_H_

#include <cstdint>
#include <string>

namespace sgb::storage {

/// Process-wide accounting of every file the engine keeps open or on disk
/// on its own behalf: spill temp files, table segment (page) files, and
/// write-ahead logs. One registry serves two jobs:
///
///  * a single temp-file *namespace*: MakeTempName() hands out
///    `sgb-<kind>-<pid>-<n>.<kind>` names from one shared counter, so every
///    engine-created temp file is recognizable by prefix and no two
///    subsystems can collide;
///  * a single *leak probe*: Acquire()/Release() bracket the lifetime of
///    each live file object, and LiveCount() / LiveCount(kind) let tests
///    assert that spills are unlinked and segments/WALs are closed after
///    every query, crash, and Database teardown — the
///    `SpillFile::LiveFileCount()`-style checks now cover the storage
///    engine's files through the same mechanism.
///
/// Kinds in use: "spill" (unlinked on release), "page" (segment page
/// files; closed on release, deleted only by DROP TABLE), "wal".
/// All methods are thread-safe and lock-free.
class FileRegistry {
 public:
  enum Kind { kSpill = 0, kPage = 1, kWal = 2, kKindCount = 3 };

  static FileRegistry& Global();

  /// `dir` + "/" + a process-unique engine temp-file name for `kind`.
  std::string MakeTempName(const std::string& dir, Kind kind);

  /// Bracket a live file object's lifetime (open handle or undeleted temp
  /// file). Every Acquire must be matched by exactly one Release.
  void Acquire(Kind kind);
  void Release(Kind kind);

  /// Live files across every kind / for one kind.
  uint64_t LiveCount() const;
  uint64_t LiveCount(Kind kind) const;

  static const char* KindName(Kind kind);
};

}  // namespace sgb::storage

#endif  // SGB_STORAGE_FILE_REGISTRY_H_
