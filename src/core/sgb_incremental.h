#ifndef SGB_CORE_SGB_INCREMENTAL_H_
#define SGB_CORE_SGB_INCREMENTAL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "core/sgb_all.h"
#include "core/sgb_any.h"
#include "core/sgb_types.h"
#include "geom/point.h"
#include "index/rtree.h"
#include "index/union_find.h"

namespace sgb {
class MemoryTracker;   // common/memory_tracker.h
class QueryContext;    // common/query_context.h
}  // namespace sgb

namespace sgb::core {

/// One structural change to a maintained grouping caused by one arrival
/// (docs/STREAMING.md "Delta events"). For SGB-Any the kinds are exact:
/// groups are connected components of the ε-graph, so an arrival either
/// starts a new component, extends one, or bridges several. For SGB-All the
/// kinds describe the arrival's ε-reachable prior state — kGroupFormed is
/// exact (a point with no ε-neighbour can never satisfy distance-to-all
/// against an existing group), while kMemberAdded / kGroupsMerged classify
/// by the interaction components the arrival's ε-neighbours belong to; the
/// final arbitration (ON-OVERLAP) settles at window close.
struct DeltaEvent {
  enum class Kind {
    kGroupFormed,   ///< no ε-neighbour among maintained points
    kMemberAdded,   ///< ε-neighbours all in one prior group/component
    kGroupsMerged,  ///< ε-neighbours span >= 2 prior groups/components
  };

  Kind kind = Kind::kGroupFormed;
  size_t point_index = 0;    ///< arrival index within the maintained window
  size_t merged_groups = 0;  ///< distinct prior groups touched (kind-merged)
};

const char* ToString(DeltaEvent::Kind kind);

/// Incrementally maintained SGB-Any over one window of arrivals
/// (docs/STREAMING.md). SGB-Any groups are the connected components of the
/// ε-neighbour graph — an order-insensitive structure — so maintenance is
/// union-find merge-on-arrival (Procedure 8's window query feeding
/// Procedure 9's MergeGroupsInsert, one point at a time) and the maintained
/// grouping is bit-identical to batch SgbAny over any permutation of the
/// same points. Groups only ever merge within a window, never split
/// (monotonicity), which is what makes per-arrival deltas well-defined.
///
/// Governance: persistent state (points, R-tree, forest) is charged against
/// `memory` (nullable) as it grows and released on destruction; Insert and
/// Snapshot check `query_ctx()` for cancellation. Not thread-safe; the
/// owner serializes access (ContinuousQueryManager holds one per window).
class IncrementalSgbAny {
 public:
  explicit IncrementalSgbAny(const SgbAnyOptions& options,
                             MemoryTracker* memory = nullptr);
  ~IncrementalSgbAny();

  IncrementalSgbAny(const IncrementalSgbAny&) = delete;
  IncrementalSgbAny& operator=(const IncrementalSgbAny&) = delete;

  /// The governance context consulted by Insert/Snapshot (nullable). The
  /// owner points this at the context of the operation driving maintenance.
  void set_query_ctx(QueryContext* ctx) { options_.query_ctx = ctx; }

  /// Adds one arrival, merging it into every ε-reachable group. Returns
  /// the structural delta. Fails (without mutating) on cancellation or a
  /// memory-budget breach.
  Result<DeltaEvent> Insert(const geom::Point& p);

  /// The maintained grouping over the points re-ordered by
  /// `canonical_order` (a permutation of [0, size())): entry k labels point
  /// canonical_order[k], with dense group ids numbered by first appearance
  /// in that order — directly comparable to batch SgbAny over the same
  /// re-ordered point array.
  Result<Grouping> Snapshot(std::span<const size_t> canonical_order);

  size_t size() const { return points_.size(); }
  size_t num_groups() const { return forest_.NumSets(); }
  const geom::Point& point(size_t i) const { return points_[i]; }
  const std::vector<geom::Point>& points() const { return points_; }

 private:
  Status ChargeOnePoint();

  SgbAnyOptions options_;
  MemoryTracker* memory_;
  size_t charged_bytes_ = 0;

  std::vector<geom::Point> points_;  ///< arrival order
  index::RTree points_ix_;           ///< Points_IX over arrivals
  index::UnionFind forest_;          ///< ε-graph connected components
};

/// Incrementally maintained SGB-All over one window of arrivals
/// (docs/STREAMING.md). SGB-All is order-sensitive, so the maintained
/// result is defined against the window's canonical order, not arrival
/// order. The structure tracked per arrival is the exact decomposition of
/// docs/PARALLELISM.md: the connected components of the 3ε L∞ interaction
/// graph, under which SGB-All factors exactly — running the serial core on
/// each component alone reproduces the whole-window serial result.
///
/// An arrival unions itself with its 3ε-neighbours and dirties only the
/// component it lands in; Snapshot re-runs the serial core (with identity
/// arbitration keys, so JOIN-ANY picks are insertion-stable) on dirty
/// components only and reuses the cached per-point assignment everywhere
/// else. This is the "bounded regrouping" contract: the work a snapshot
/// does is confined to the 3ε-neighbourhood closure of the points that
/// arrived since the previous snapshot, observable through the
/// distance-computation counters it reports.
///
/// Governance as in IncrementalSgbAny. Not thread-safe.
class IncrementalSgbAll {
 public:
  explicit IncrementalSgbAll(const SgbAllOptions& options,
                             MemoryTracker* memory = nullptr);
  ~IncrementalSgbAll();

  IncrementalSgbAll(const IncrementalSgbAll&) = delete;
  IncrementalSgbAll& operator=(const IncrementalSgbAll&) = delete;

  void set_query_ctx(QueryContext* ctx) { options_.query_ctx = ctx; }

  /// Adds one arrival with its identity arbitration key (the same key the
  /// batch differential re-execution must use; see
  /// SgbAllOptions::arbitration_keys). Fails (without mutating) on
  /// cancellation or a memory-budget breach.
  Result<DeltaEvent> Insert(const geom::Point& p, uint64_t arbitration_key);

  /// The maintained grouping over the points re-ordered by
  /// `canonical_order`, labeled by first appearance in that order —
  /// bit-identical to serial batch SgbAll over the same re-ordered array
  /// with the matching arbitration keys. `stats`, when given, accumulates
  /// the counters of the dirty-component re-runs only, so callers can
  /// assert the bounded-regrouping property.
  Result<Grouping> Snapshot(std::span<const size_t> canonical_order,
                            SgbAllStats* stats = nullptr);

  size_t size() const { return points_.size(); }
  const geom::Point& point(size_t i) const { return points_[i]; }
  const std::vector<geom::Point>& points() const { return points_; }
  uint64_t arbitration_key(size_t i) const { return keys_[i]; }

 private:
  Status ChargeOnePoint();

  SgbAllOptions options_;
  MemoryTracker* memory_;
  size_t charged_bytes_ = 0;

  std::vector<geom::Point> points_;  ///< arrival order
  std::vector<uint64_t> keys_;       ///< identity arbitration keys
  index::RTree interaction_ix_;      ///< arrivals, queried at 3ε L∞
  index::UnionFind components_;      ///< 3ε interaction components
  std::vector<char> dirty_;          ///< arrived since last recompute
  /// Component-local group id per point from the component's last re-run
  /// (kEliminated for ON-OVERLAP ELIMINATE casualties); valid while the
  /// component stays clean.
  std::vector<size_t> cached_local_;
};

}  // namespace sgb::core

#endif  // SGB_CORE_SGB_INCREMENTAL_H_
