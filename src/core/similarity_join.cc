#include "core/similarity_join.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geom/kernels.h"
#include "geom/rect.h"
#include "index/rtree.h"

namespace sgb::core {

using geom::Metric;
using geom::Point;
using geom::Rect;

namespace {

Status ValidateEpsilon(double epsilon) {
  if (!(epsilon >= 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument(
        "similarity join: epsilon must be finite and >= 0");
  }
  return Status::OK();
}

std::vector<JoinPair> JoinNestedLoop(std::span<const Point> left,
                                     std::span<const Point> right,
                                     double epsilon, Metric metric,
                                     SimilarityJoinStats* stats) {
  std::vector<JoinPair> out;
  // Block scan of each left point against the whole right side as SoA
  // columns; ForEachSetBit emits pairs in ascending r, the same output
  // order (and the same |L|x|R| distance count) as the scalar loop.
  geom::PointColumns cols;
  cols.Assign(right);
  const geom::BlockSimilarity sim(metric, epsilon);
  std::vector<uint64_t> mask(geom::KernelMaskWords(right.size()));
  for (size_t l = 0; l < left.size(); ++l) {
    if (stats != nullptr) stats->distance_computations += right.size();
    sim.Match(left[l], cols.xs(), cols.ys(), right.size(), mask.data());
    geom::ForEachSetBit(mask.data(), right.size(),
                        [&](size_t r) { out.push_back(JoinPair{l, r}); });
  }
  return out;
}

std::vector<JoinPair> JoinIndexed(std::span<const Point> left,
                                  std::span<const Point> right,
                                  double epsilon, Metric metric,
                                  SimilarityJoinStats* stats) {
  // Build on the smaller side, probe with the larger; swap results back.
  const bool build_right = right.size() <= left.size();
  std::span<const Point> build = build_right ? right : left;
  std::span<const Point> probe = build_right ? left : right;

  index::RTree tree;
  for (size_t i = 0; i < build.size(); ++i) tree.Insert(build[i], i);

  // Hoists ε² out of the per-candidate L2 verification.
  const geom::SimilarityPredicate similar(metric, epsilon);
  std::vector<JoinPair> out;
  for (size_t p = 0; p < probe.size(); ++p) {
    if (stats != nullptr) ++stats->window_queries;
    tree.Search(Rect::Around(probe[p], epsilon),
                [&](const Rect& r, uint64_t id) {
                  const Point q{r.lo.x, r.lo.y};
                  if (metric == Metric::kL2) {
                    if (stats != nullptr) ++stats->distance_computations;
                    if (!similar(probe[p], q)) {
                      return;
                    }
                  }
                  out.push_back(build_right
                                    ? JoinPair{p, static_cast<size_t>(id)}
                                    : JoinPair{static_cast<size_t>(id), p});
                });
  }
  std::sort(out.begin(), out.end(), [](const JoinPair& a, const JoinPair& b) {
    return a.left != b.left ? a.left < b.left : a.right < b.right;
  });
  return out;
}

}  // namespace

Result<std::vector<JoinPair>> SimilarityJoin(
    std::span<const Point> left, std::span<const Point> right,
    double epsilon, Metric metric, SimilarityJoinAlgorithm algorithm,
    SimilarityJoinStats* stats) {
  SGB_RETURN_IF_ERROR(ValidateEpsilon(epsilon));
  if (algorithm == SimilarityJoinAlgorithm::kNestedLoop) {
    return JoinNestedLoop(left, right, epsilon, metric, stats);
  }
  return JoinIndexed(left, right, epsilon, metric, stats);
}

Result<std::vector<JoinPair>> SimilaritySelfJoin(
    std::span<const Point> points, double epsilon, Metric metric,
    SimilarityJoinAlgorithm algorithm, SimilarityJoinStats* stats) {
  SGB_RETURN_IF_ERROR(ValidateEpsilon(epsilon));
  std::vector<JoinPair> out;
  if (algorithm == SimilarityJoinAlgorithm::kNestedLoop) {
    // Block scan of point i against the SoA suffix (i, n); bit b maps back
    // to j = i + 1 + b, keeping the scalar loop's pair order and count.
    geom::PointColumns cols;
    cols.Assign(points);
    const geom::BlockSimilarity sim(metric, epsilon);
    std::vector<uint64_t> mask(geom::KernelMaskWords(points.size()));
    for (size_t i = 0; i < points.size(); ++i) {
      const size_t suffix = points.size() - i - 1;
      if (stats != nullptr) stats->distance_computations += suffix;
      sim.Match(points[i], cols.xs() + i + 1, cols.ys() + i + 1, suffix,
                mask.data());
      geom::ForEachSetBit(mask.data(), suffix, [&](size_t b) {
        out.push_back(JoinPair{i, i + 1 + b});
      });
    }
    return out;
  }
  // Streaming variant of the SGB-Any access pattern: probe processed
  // points, then insert — yields each unordered pair exactly once.
  index::RTree tree;
  const geom::SimilarityPredicate similar(metric, epsilon);
  for (size_t i = 0; i < points.size(); ++i) {
    if (stats != nullptr) ++stats->window_queries;
    tree.Search(Rect::Around(points[i], epsilon),
                [&](const Rect& r, uint64_t id) {
                  const Point q{r.lo.x, r.lo.y};
                  if (metric == Metric::kL2) {
                    if (stats != nullptr) ++stats->distance_computations;
                    if (!similar(points[i], q)) {
                      return;
                    }
                  }
                  out.push_back(JoinPair{static_cast<size_t>(id), i});
                });
    tree.Insert(points[i], i);
  }
  std::sort(out.begin(), out.end(), [](const JoinPair& a, const JoinPair& b) {
    return a.left != b.left ? a.left < b.left : a.right < b.right;
  });
  return out;
}

struct SimilaritySearch::Impl {
  index::RTree tree;
};

SimilaritySearch::SimilaritySearch(std::span<const Point> points)
    : points_(points.begin(), points.end()),
      impl_(std::make_shared<Impl>()) {
  for (size_t i = 0; i < points_.size(); ++i) {
    impl_->tree.Insert(points_[i], i);
  }
}

std::vector<size_t> SimilaritySearch::RangeQuery(const Point& q,
                                                 double epsilon,
                                                 Metric metric) const {
  std::vector<size_t> out;
  impl_->tree.Search(Rect::Around(q, epsilon),
                     [&](const Rect&, uint64_t id) {
                       if (geom::Similar(q, points_[id], metric, epsilon)) {
                         out.push_back(static_cast<size_t>(id));
                       }
                     });
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<size_t> SimilaritySearch::Knn(const Point& q, size_t k) const {
  if (k == 0 || points_.empty()) return {};
  k = std::min(k, points_.size());

  // Expanding-radius search: grow the window until it holds >= k verified
  // points AND the k-th distance fits inside the window radius (so no
  // closer point can hide outside the window).
  double radius = 1e-9;
  // Seed the radius with a small sample's spread to avoid dozens of empty
  // rounds on wide data.
  for (size_t i = 0; i < std::min<size_t>(points_.size(), 8); ++i) {
    radius = std::max(radius, geom::DistanceL2(q, points_[i]) / 4.0);
  }
  while (true) {
    std::vector<std::pair<double, size_t>> found;
    impl_->tree.Search(Rect::Around(q, radius),
                       [&](const Rect&, uint64_t id) {
                         found.push_back(
                             {geom::DistanceL2Squared(q, points_[id]),
                              static_cast<size_t>(id)});
                       });
    if (found.size() >= k) {
      std::sort(found.begin(), found.end());
      const double kth = std::sqrt(found[k - 1].first);
      if (kth <= radius) {
        std::vector<size_t> out;
        out.reserve(k);
        for (size_t i = 0; i < k; ++i) out.push_back(found[i].second);
        return out;
      }
      radius = kth;  // one more pass with the exact covering radius
      continue;
    }
    radius *= 2.0;
  }
}

}  // namespace sgb::core
