#ifndef SGB_CORE_SGB_TYPES_H_
#define SGB_CORE_SGB_TYPES_H_

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "geom/point.h"

namespace sgb {
class QueryContext;  // common/query_context.h
}

namespace sgb::core {

/// ON-OVERLAP arbitration for SGB-All (Section 4.1): what to do when a point
/// satisfies the membership criterion of more than one group.
enum class OverlapClause {
  kJoinAny,       ///< insert into one group chosen at random
  kEliminate,     ///< discard the overlapping point(s)
  kFormNewGroup,  ///< re-group the overlapping point(s) separately
};

/// Algorithm tier for SGB-All (Sections 6.2–6.3).
enum class SgbAllAlgorithm {
  kAllPairs,        ///< Procedure 2: naive FindCloseGroups, O(n^2)
  kBoundsChecking,  ///< Procedure 4: ε-All rectangles, linear group scan
  kIndexed,         ///< Procedure 5: R-tree (Groups_IX) over group rectangles
};

/// Algorithm tier for SGB-Any (Section 7).
enum class SgbAnyAlgorithm {
  kAllPairs,  ///< pairwise ε-edges, O(n^2)
  kIndexed,   ///< Procedure 8: R-tree (Points_IX) + union-find
};

const char* ToString(OverlapClause clause);
const char* ToString(SgbAllAlgorithm algorithm);
const char* ToString(SgbAnyAlgorithm algorithm);

/// JOIN-ANY arbitration shared by every SGB-All implementation (2-D and
/// N-D): a SplitMix64 hash of (seed, point index) picks among the candidate
/// groups. Making the pick a pure function of the point — rather than a
/// draw from a sequentially consumed RNG stream — keeps the choice
/// pseudo-random and seed-reproducible while making the result independent
/// of processing interleaving, which is what lets the partition-parallel
/// path reproduce the serial results exactly (docs/PARALLELISM.md).
size_t JoinAnyPick(uint64_t seed, size_t point_index, size_t num_candidates);

/// Per-worker-slot execution breakdown of a parallel SGB run. Serial runs
/// leave the breakdown empty; parallel runs produce one entry per worker
/// slot, which the engine surfaces as the per-partition EXPLAIN ANALYZE
/// annotations (docs/PARALLELISM.md).
struct SgbWorkerStats {
  size_t points = 0;                 ///< points scanned by this worker slot
  size_t distance_computations = 0;  ///< δ evaluations by this worker slot
};

/// Options for the SGB-All operator:
///   GROUP BY x, y DISTANCE-TO-ALL [L2|LINF] WITHIN ε ON-OVERLAP <clause>
struct SgbAllOptions {
  double epsilon = 1.0;
  geom::Metric metric = geom::Metric::kL2;
  OverlapClause on_overlap = OverlapClause::kJoinAny;
  SgbAllAlgorithm algorithm = SgbAllAlgorithm::kIndexed;
  /// Seed for the JOIN-ANY random arbitration; fixed so runs reproduce.
  uint64_t seed = 42;
  /// Safety bound on the FORM-NEW-GROUP re-grouping recursion (the paper's
  /// recursion depth m). Rounds beyond this, or rounds that make no
  /// progress, fall back to JOIN-ANY placement so the operator always
  /// terminates. Documented in DESIGN.md.
  int max_regroup_rounds = 64;
  /// Degree of parallelism: 1 runs the sequential reference path, k > 1
  /// decomposes the input into independent ε-components executed on up to
  /// k workers, 0 means "auto" (one worker per hardware thread). Results
  /// are identical for every setting (docs/PARALLELISM.md).
  int degree_of_parallelism = 1;
  /// Governance context of the query this run executes under (non-owning;
  /// null = ungoverned). The core checks it for cancellation/deadline at
  /// point-stride granularity and charges its index/bookkeeping memory
  /// against its budget.
  QueryContext* query_ctx = nullptr;
  /// Optional per-point arbitration keys (parallel to `points`; empty = use
  /// the point's input index). When set, the JOIN-ANY pick hashes
  /// (seed, arbitration_keys[i]) instead of (seed, i), making the pick a
  /// pure function of the point's identity rather than its position. The
  /// incremental maintenance path (docs/STREAMING.md) relies on this:
  /// a late arrival shifts the canonical indices of every later point, but
  /// with identity keys the batch re-execution and the maintained state
  /// arbitrate identically. Non-owning; must outlive the call.
  std::span<const uint64_t> arbitration_keys;
};

/// Options for the SGB-Any operator:
///   GROUP BY x, y DISTANCE-TO-ANY [L2|LINF] WITHIN ε
struct SgbAnyOptions {
  double epsilon = 1.0;
  geom::Metric metric = geom::Metric::kL2;
  SgbAnyAlgorithm algorithm = SgbAnyAlgorithm::kIndexed;
  /// Degree of parallelism: 1 runs the sequential reference path, k > 1
  /// runs the grid-partitioned union with up to k workers, 0 means "auto"
  /// (one worker per hardware thread). Results are identical for every
  /// setting (docs/PARALLELISM.md).
  int degree_of_parallelism = 1;
  /// Governance context (see SgbAllOptions::query_ctx).
  QueryContext* query_ctx = nullptr;
};

/// The result of a similarity grouping: a group id per input point, in input
/// order. Group ids are dense, 0-based, and numbered in order of first
/// appearance in the input. Points dropped by ON-OVERLAP ELIMINATE carry
/// `kEliminated`.
struct Grouping {
  static constexpr size_t kEliminated = std::numeric_limits<size_t>::max();

  std::vector<size_t> group_of;
  size_t num_groups = 0;

  /// Member input-indices per group.
  std::vector<std::vector<size_t>> GroupsAsLists() const;

  /// Cardinality of each group (the paper's running `count(*)` example).
  std::vector<size_t> GroupSizes() const;

  /// Number of eliminated points.
  size_t NumEliminated() const;
};

}  // namespace sgb::core

#endif  // SGB_CORE_SGB_TYPES_H_
