#include "core/sgb_incremental.h"

#include <algorithm>
#include <unordered_map>

#include "common/memory_tracker.h"
#include "common/query_context.h"
#include "geom/rect.h"
#include "obs/metrics.h"

namespace sgb::core {

namespace {

using geom::Metric;
using geom::Point;
using geom::Rect;

/// Flat per-point estimate of the maintained state: the point itself, its
/// R-tree entry, the union-find slots, and (SGB-All) key/dirty/cache slots.
/// Charged up front so a budget breach fails the Insert before any
/// mutation. Estimates, not malloc-exact, as everywhere MemoryTracker is
/// used.
constexpr size_t kBytesPerPoint = 128;

Status ChargePersistent(MemoryTracker* memory, size_t* charged_bytes) {
  if (memory == nullptr) return Status::OK();
  SGB_RETURN_IF_ERROR(memory->TryConsume(kBytesPerPoint));
  *charged_bytes += kBytesPerPoint;
  return Status::OK();
}

void ReleasePersistent(MemoryTracker* memory, size_t charged_bytes) {
  if (memory != nullptr && charged_bytes > 0) memory->Release(charged_bytes);
}

DeltaEvent::Kind ClassifyArrival(size_t distinct_prior_groups) {
  if (distinct_prior_groups == 0) return DeltaEvent::Kind::kGroupFormed;
  if (distinct_prior_groups == 1) return DeltaEvent::Kind::kMemberAdded;
  return DeltaEvent::Kind::kGroupsMerged;
}

}  // namespace

const char* ToString(DeltaEvent::Kind kind) {
  switch (kind) {
    case DeltaEvent::Kind::kGroupFormed:
      return "group_formed";
    case DeltaEvent::Kind::kMemberAdded:
      return "member_added";
    case DeltaEvent::Kind::kGroupsMerged:
      return "groups_merged";
  }
  return "unknown";
}

// ---- IncrementalSgbAny ----------------------------------------------------

IncrementalSgbAny::IncrementalSgbAny(const SgbAnyOptions& options,
                                     MemoryTracker* memory)
    : options_(options), memory_(memory) {}

IncrementalSgbAny::~IncrementalSgbAny() {
  ReleasePersistent(memory_, charged_bytes_);
}

Status IncrementalSgbAny::ChargeOnePoint() {
  return ChargePersistent(memory_, &charged_bytes_);
}

Result<DeltaEvent> IncrementalSgbAny::Insert(const Point& p) {
  if (options_.query_ctx != nullptr) {
    SGB_RETURN_IF_ERROR(options_.query_ctx->CheckAbort());
  }
  SGB_RETURN_IF_ERROR(ChargeOnePoint());

  const size_t i = points_.size();
  points_.push_back(p);
  forest_.AddElement();

  // Procedure 8's window query over the processed points, one arrival at a
  // time; pre-union roots identify the distinct prior groups touched.
  const geom::SimilarityPredicate similar(options_.metric, options_.epsilon);
  std::vector<size_t> roots;
  points_ix_.Search(Rect::Around(p, options_.epsilon),
                    [&](const Rect& r, uint64_t id) {
                      const Point q{r.lo.x, r.lo.y};
                      if (options_.metric == Metric::kL2 && !similar(p, q)) {
                        return;  // the ε-window is the L∞ ball; L2 verifies
                      }
                      const size_t root = forest_.Find(id);
                      if (std::find(roots.begin(), roots.end(), root) ==
                          roots.end()) {
                        roots.push_back(root);
                      }
                    });
  for (const size_t root : roots) forest_.Union(i, root);
  points_ix_.Insert(p, i);

  obs::MetricsRegistry::Global()
      .GetCounter("sgb.any.incremental_inserts")
      .Add(1);

  DeltaEvent event;
  event.point_index = i;
  event.merged_groups = roots.size();
  event.kind = ClassifyArrival(roots.size());
  return event;
}

Result<Grouping> IncrementalSgbAny::Snapshot(
    std::span<const size_t> canonical_order) {
  if (options_.query_ctx != nullptr) {
    SGB_RETURN_IF_ERROR(options_.query_ctx->CheckAbort());
  }
  const size_t n = points_.size();
  if (canonical_order.size() != n) {
    return Status::InvalidArgument(
        "IncrementalSgbAny: canonical_order must permute all points");
  }
  Grouping out;
  out.group_of.assign(n, Grouping::kEliminated);
  std::vector<size_t> label_of_root(n, Grouping::kEliminated);
  for (size_t k = 0; k < n; ++k) {
    const size_t i = canonical_order[k];
    if (i >= n) {
      return Status::InvalidArgument(
          "IncrementalSgbAny: canonical_order index out of range");
    }
    const size_t root = forest_.Find(i);
    if (label_of_root[root] == Grouping::kEliminated) {
      label_of_root[root] = out.num_groups++;
    }
    out.group_of[k] = label_of_root[root];
  }
  return out;
}

// ---- IncrementalSgbAll ----------------------------------------------------

IncrementalSgbAll::IncrementalSgbAll(const SgbAllOptions& options,
                                     MemoryTracker* memory)
    : options_(options), memory_(memory) {
  // The component re-runs are serial by construction (a component is one
  // unit of the parallel decomposition already).
  options_.degree_of_parallelism = 1;
}

IncrementalSgbAll::~IncrementalSgbAll() {
  ReleasePersistent(memory_, charged_bytes_);
}

Status IncrementalSgbAll::ChargeOnePoint() {
  return ChargePersistent(memory_, &charged_bytes_);
}

Result<DeltaEvent> IncrementalSgbAll::Insert(const Point& p,
                                             uint64_t arbitration_key) {
  if (options_.query_ctx != nullptr) {
    SGB_RETURN_IF_ERROR(options_.query_ctx->CheckAbort());
  }
  SGB_RETURN_IF_ERROR(ChargeOnePoint());

  const size_t i = points_.size();
  points_.push_back(p);
  keys_.push_back(arbitration_key);
  dirty_.push_back(1);
  cached_local_.push_back(Grouping::kEliminated);
  components_.AddElement();

  // One 3ε L∞ window query serves both purposes: the interaction-graph
  // edges (every hit — the window *is* the 3ε L∞ ball) and the delta
  // classification (hits that are genuine ε-neighbours of the arrival).
  std::vector<size_t> comp_roots;
  std::vector<size_t> eps_roots;
  interaction_ix_.Search(
      Rect::Around(p, 3.0 * options_.epsilon),
      [&](const Rect& r, uint64_t id) {
        const Point q{r.lo.x, r.lo.y};
        const size_t root = components_.Find(id);
        if (std::find(comp_roots.begin(), comp_roots.end(), root) ==
            comp_roots.end()) {
          comp_roots.push_back(root);
        }
        if (geom::Similar(p, q, options_.metric, options_.epsilon) &&
            std::find(eps_roots.begin(), eps_roots.end(), root) ==
                eps_roots.end()) {
          eps_roots.push_back(root);
        }
      });
  for (const size_t root : comp_roots) components_.Union(i, root);
  interaction_ix_.Insert(p, i);

  obs::MetricsRegistry::Global()
      .GetCounter("sgb.all.incremental_inserts")
      .Add(1);

  DeltaEvent event;
  event.point_index = i;
  event.merged_groups = eps_roots.size();
  event.kind = ClassifyArrival(eps_roots.size());
  return event;
}

Result<Grouping> IncrementalSgbAll::Snapshot(
    std::span<const size_t> canonical_order, SgbAllStats* stats) {
  if (options_.query_ctx != nullptr) {
    SGB_RETURN_IF_ERROR(options_.query_ctx->CheckAbort());
  }
  const size_t n = points_.size();
  if (canonical_order.size() != n) {
    return Status::InvalidArgument(
        "IncrementalSgbAll: canonical_order must permute all points");
  }

  // Interaction components with members in canonical order, ids by first
  // appearance in canonical order — the same decomposition RunParallel
  // uses, so per-component serial re-runs compose into the whole-window
  // serial result exactly (docs/PARALLELISM.md).
  std::vector<size_t> comp_of_root(n, Grouping::kEliminated);
  std::vector<std::vector<size_t>> comp_members;
  std::vector<size_t> comp_of_point(n, 0);
  for (size_t k = 0; k < n; ++k) {
    const size_t i = canonical_order[k];
    if (i >= n) {
      return Status::InvalidArgument(
          "IncrementalSgbAll: canonical_order index out of range");
    }
    const size_t root = components_.Find(i);
    if (comp_of_root[root] == Grouping::kEliminated) {
      comp_of_root[root] = comp_members.size();
      comp_members.emplace_back();
    }
    comp_of_point[i] = comp_of_root[root];
    comp_members[comp_of_root[root]].push_back(i);
  }

  // Re-run the serial core on dirty components only, caching the
  // component-local assignment. Clean components keep their cache: their
  // membership (and their members' relative canonical order) cannot have
  // changed, because any union involves a fresh — and therefore dirty —
  // arrival.
  size_t recomputed = 0;
  for (const std::vector<size_t>& members : comp_members) {
    const bool is_dirty =
        std::any_of(members.begin(), members.end(),
                    [&](size_t m) { return dirty_[m] != 0; });
    if (!is_dirty) continue;
    ++recomputed;
    std::vector<Point> local_points;
    std::vector<uint64_t> local_keys;
    local_points.reserve(members.size());
    local_keys.reserve(members.size());
    for (const size_t m : members) {
      local_points.push_back(points_[m]);
      local_keys.push_back(keys_[m]);
    }
    SgbAllOptions local_options = options_;
    local_options.arbitration_keys = local_keys;
    Result<Grouping> local = SgbAll(local_points, local_options, stats);
    if (!local.ok()) return local.status();
    for (size_t j = 0; j < members.size(); ++j) {
      cached_local_[members[j]] = local.value().group_of[j];
      dirty_[members[j]] = 0;
    }
  }
  obs::MetricsRegistry::Global()
      .GetCounter("sgb.all.incremental_recomputed_components")
      .Add(recomputed);

  // Canonical output labels by first appearance of (component, local id).
  Grouping out;
  out.group_of.assign(n, Grouping::kEliminated);
  std::unordered_map<uint64_t, size_t> label_of;
  label_of.reserve(n / 4 + 1);
  for (size_t k = 0; k < n; ++k) {
    const size_t i = canonical_order[k];
    const size_t local = cached_local_[i];
    if (local == Grouping::kEliminated) continue;
    const uint64_t key =
        static_cast<uint64_t>(comp_of_point[i]) * (n + 1) + local;
    const auto [it, inserted] = label_of.try_emplace(key, out.num_groups);
    if (inserted) ++out.num_groups;
    out.group_of[k] = it->second;
  }
  return out;
}

}  // namespace sgb::core
