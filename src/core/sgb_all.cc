#include "core/sgb_all.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/fault_injection.h"
#include "common/query_context.h"
#include "common/thread_pool.h"
#include "geom/convex_hull.h"
#include "geom/epsilon_rect.h"
#include "geom/kernels.h"
#include "index/grid_partition.h"
#include "index/rtree.h"
#include "index/union_find.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sgb::core {

// Fires when a round commits to building its Groups_IX R-tree, exercising
// index-construction failure inside the core.
static FaultSite g_rtree_build_fault("core.rtree.build",
                                     Status::Code::kInternal);

namespace {

using geom::Metric;
using geom::Point;
using geom::Rect;

/// Minimum input size for the parallel path: below this the partitioning
/// overhead dominates any possible speedup.
constexpr size_t kMinParallelPoints = 64;

/// How many points a core loop processes between governance checks. Matches
/// the operator layer's per-row stride so worst-case cancel latency is the
/// same whichever layer is the bottleneck.
constexpr size_t kAbortCheckStride = 64;

/// Relabels per-runner group ids into the output numbering of the Grouping
/// contract: dense, 0-based, in order of first appearance in the input.
/// `comp_of`, when given, disambiguates the local ids of independent
/// component runners (labels are unique per (component, local id) pair).
Grouping CanonicalizeLabels(size_t n, const std::vector<size_t>& assignment,
                            const std::vector<size_t>* comp_of) {
  Grouping out;
  out.group_of.assign(n, Grouping::kEliminated);
  std::unordered_map<uint64_t, size_t> label_of;
  label_of.reserve(n / 4 + 1);
  for (size_t i = 0; i < n; ++i) {
    if (assignment[i] == Grouping::kEliminated) continue;
    const uint64_t key =
        comp_of == nullptr
            ? static_cast<uint64_t>(assignment[i])
            : static_cast<uint64_t>((*comp_of)[i]) * (n + 1) + assignment[i];
    const auto [it, inserted] = label_of.try_emplace(key, out.num_groups);
    if (inserted) ++out.num_groups;
    out.group_of[i] = it->second;
  }
  return out;
}

/// One SGB-All group in the current re-grouping round's universe.
struct Group {
  std::vector<size_t> members;   // indices into the input point array
  geom::PointColumns soa;        // members' coordinates, SoA, same order
  geom::EpsilonRect rect;        // ε-All rectangle + member MBR
  geom::IncrementalHull hull;    // maintained only under L2
  bool alive = true;
};

/// Runs the Procedure-1 framework over one point universe (the full input,
/// or one independent ε-component of it). FORM-NEW-GROUP re-grouping is
/// realized as successive rounds, each with a fresh group universe,
/// matching the paper's recursive formulation; deferred points are
/// re-processed in canonical (input) order so the outcome is a pure
/// function of the universe's point set.
///
/// Group labels are written into the shared `assignment` vector (one slot
/// per input point, pre-initialized to kEliminated) as runner-local dense
/// ids; CanonicalizeLabels maps them into the output numbering. Runners
/// over disjoint universes may execute concurrently: each touches only its
/// own universe's assignment slots.
class SgbAllRunner {
 public:
  SgbAllRunner(std::span<const Point> points, const SgbAllOptions& options,
               SgbAllStats* stats, std::vector<size_t>& assignment)
      : points_(points),
        options_(options),
        block_sim_(options.metric, options.epsilon),
        stats_(stats),
        assignment_(assignment) {}

  /// `todo` must be sorted ascending (canonical order).
  void Run(std::vector<size_t> todo) {
    int round = 0;
    while (!todo.empty()) {
      const bool last_chance =
          round >= options_.max_regroup_rounds - 1;
      const OverlapClause clause =
          last_chance ? OverlapClause::kJoinAny : options_.on_overlap;

      std::vector<size_t> deferred = RunRound(todo, clause);
      std::sort(deferred.begin(), deferred.end());
      if (stats_ != nullptr && round > 0) ++stats_->regroup_rounds;

      if (deferred.size() == todo.size()) {
        // No progress: every point was deferred again. Force-place the
        // remainder with JOIN-ANY so the operator terminates (DESIGN.md).
        const std::vector<size_t> rest =
            RunRound(deferred, OverlapClause::kJoinAny);
        (void)rest;  // JOIN-ANY never defers.
        break;
      }
      todo = std::move(deferred);
      ++round;
    }
  }

 private:
  bool L2() const { return options_.metric == Metric::kL2; }

  bool SimilarTo(const Point& a, const Point& b) const {
    if (stats_ != nullptr) ++stats_->distance_computations;
    return block_sim_.scalar()(a, b);
  }

  /// Batched ξδ,ε of p against every member of g, via the block kernels
  /// over the group's SoA columns; the selection mask lands in mask_ and
  /// the match count is returned. Counts one distance computation per
  /// member (the kernel evaluates the whole block; unlike the historical
  /// scalar loops there is no early exit, so counters report the actual
  /// evaluations performed).
  size_t MatchMembers(const Group& g, const Point& p) {
    const size_t n = g.members.size();
    mask_.resize(geom::KernelMaskWords(n));
    if (stats_ != nullptr) stats_->distance_computations += n;
    return block_sim_.Match(p, g.soa.xs(), g.soa.ys(), n, mask_.data());
  }

  // ---- Group maintenance ------------------------------------------------

  size_t CreateGroup(size_t point_index) {
    const size_t gid = groups_.size();
    Group g;
    g.rect = geom::EpsilonRect(options_.epsilon);
    g.rect.Insert(points_[point_index]);
    if (L2()) g.hull.Insert(points_[point_index]);
    g.members.push_back(point_index);
    g.soa.PushBack(points_[point_index]);
    groups_.push_back(std::move(g));
    if (use_index_) groups_ix_.Insert(groups_[gid].rect.all_rect(), gid);
    if (stats_ != nullptr) ++stats_->groups_created;
    return gid;
  }

  void InsertIntoGroup(size_t gid, size_t point_index) {
    Group& g = groups_[gid];
    const Rect old_rect = g.rect.all_rect();
    g.members.push_back(point_index);
    g.soa.PushBack(points_[point_index]);
    g.rect.Insert(points_[point_index]);
    if (L2()) g.hull.Insert(points_[point_index]);
    if (use_index_ && !(g.rect.all_rect() == old_rect)) {
      groups_ix_.Remove(old_rect, gid);
      groups_ix_.Insert(g.rect.all_rect(), gid);
    }
  }

  /// Removes the given members (already erased from g.members by the
  /// caller) by rebuilding the group's derived structures, or retires the
  /// group when it became empty.
  void RebuildAfterRemoval(size_t gid) {
    Group& g = groups_[gid];
    const Rect old_rect = g.rect.all_rect();
    if (g.members.empty()) {
      g.alive = false;
      if (use_index_) groups_ix_.Remove(old_rect, gid);
      return;
    }
    std::vector<Point> pts;
    pts.reserve(g.members.size());
    g.soa.Clear();
    for (const size_t m : g.members) {
      pts.push_back(points_[m]);
      g.soa.PushBack(points_[m]);
    }
    g.rect.Rebuild(pts);
    if (L2()) g.hull.Rebuild(pts);
    if (use_index_ && !(g.rect.all_rect() == old_rect)) {
      groups_ix_.Remove(old_rect, gid);
      groups_ix_.Insert(g.rect.all_rect(), gid);
    }
  }

  // ---- FindCloseGroups (Procedures 2, 4, 5) -----------------------------

  /// True iff p satisfies ξδ,ε against every member of g (bounds-checking
  /// filter plus, for L2, the convex-hull refinement). Exact.
  bool CandidateTest(const Group& g, const Point& p) {
    if (stats_ != nullptr) ++stats_->rectangle_tests;
    if (!g.rect.PointInRectangleTest(p)) return false;
    if (!L2()) return true;  // exact for L∞ (Definition 5)
    if (stats_ != nullptr) ++stats_->hull_tests;
    return g.hull.WithinEpsilonOfAll(p, options_.epsilon);
  }

  /// True iff at least one member of g satisfies ξδ,ε with p.
  bool OverlapMemberScan(const Group& g, const Point& p) {
    return MatchMembers(g, p) > 0;
  }

  void FindCloseGroupsAllPairs(const Point& p, OverlapClause clause,
                               std::vector<size_t>* candidates,
                               std::vector<size_t>* overlaps) {
    for (size_t gid = 0; gid < groups_.size(); ++gid) {
      const Group& g = groups_[gid];
      if (!g.alive) continue;
      const size_t matches = MatchMembers(g, p);
      if (matches == g.members.size()) {
        candidates->push_back(gid);
      } else if (clause != OverlapClause::kJoinAny && matches > 0) {
        overlaps->push_back(gid);
      }
    }
  }

  void ClassifyGroup(size_t gid, const Point& p, OverlapClause clause,
                     std::vector<size_t>* candidates,
                     std::vector<size_t>* overlaps) {
    const Group& g = groups_[gid];
    if (!g.alive) return;
    if (CandidateTest(g, p)) {
      candidates->push_back(gid);
      return;
    }
    if (clause == OverlapClause::kJoinAny) return;
    if (!g.rect.OverlapRectangleTest(p)) return;
    if (OverlapMemberScan(g, p)) overlaps->push_back(gid);
  }

  void FindCloseGroupsBounds(const Point& p, OverlapClause clause,
                             std::vector<size_t>* candidates,
                             std::vector<size_t>* overlaps) {
    for (size_t gid = 0; gid < groups_.size(); ++gid) {
      ClassifyGroup(gid, p, clause, candidates, overlaps);
    }
  }

  void FindCloseGroupsIndexed(const Point& p, OverlapClause clause,
                              std::vector<size_t>* candidates,
                              std::vector<size_t>* overlaps) {
    if (stats_ != nullptr) ++stats_->index_window_queries;
    std::vector<uint64_t> gids =
        groups_ix_.SearchIds(Rect::Around(p, options_.epsilon));
    // Sort so candidate/overlap enumeration order — and therefore the
    // JOIN-ANY pick — matches the scan-based strategies exactly.
    std::sort(gids.begin(), gids.end());
    for (const uint64_t gid : gids) {
      ClassifyGroup(static_cast<size_t>(gid), p, clause, candidates,
                    overlaps);
    }
  }

  void FindCloseGroups(const Point& p, OverlapClause clause,
                       std::vector<size_t>* candidates,
                       std::vector<size_t>* overlaps) {
    candidates->clear();
    overlaps->clear();
    switch (options_.algorithm) {
      case SgbAllAlgorithm::kAllPairs:
        FindCloseGroupsAllPairs(p, clause, candidates, overlaps);
        break;
      case SgbAllAlgorithm::kBoundsChecking:
        FindCloseGroupsBounds(p, clause, candidates, overlaps);
        break;
      case SgbAllAlgorithm::kIndexed:
        FindCloseGroupsIndexed(p, clause, candidates, overlaps);
        break;
    }
  }

  // ---- ProcessGroupingALL / ProcessOverlap (Procedures 3, 6) ------------

  /// Handles one point; appends deferred point indices to `deferred`.
  void ProcessPoint(size_t point_index, OverlapClause clause,
                    std::vector<size_t>* deferred) {
    const Point& p = points_[point_index];
    std::vector<size_t> candidates;
    std::vector<size_t> overlaps;
    FindCloseGroups(p, clause, &candidates, &overlaps);

    // ProcessGroupingALL.
    if (candidates.empty()) {
      CreateGroup(point_index);
    } else if (candidates.size() == 1) {
      InsertIntoGroup(candidates[0], point_index);
    } else {
      switch (clause) {
        case OverlapClause::kJoinAny: {
          // Identity keys (when provided) make the pick insertion-stable;
          // see SgbAllOptions::arbitration_keys.
          const size_t arb =
              options_.arbitration_keys.empty()
                  ? point_index
                  : static_cast<size_t>(
                        options_.arbitration_keys[point_index]);
          const size_t pick =
              JoinAnyPick(options_.seed, arb, candidates.size());
          InsertIntoGroup(candidates[pick], point_index);
          break;
        }
        case OverlapClause::kEliminate:
          assignment_[point_index] = Grouping::kEliminated;
          break;
        case OverlapClause::kFormNewGroup:
          deferred->push_back(point_index);
          break;
      }
    }

    // ProcessOverlap: pull the overlapped members (those within ε of p) out
    // of partially-matching groups.
    if (clause == OverlapClause::kJoinAny || overlaps.empty()) return;
    for (const size_t gid : overlaps) {
      Group& g = groups_[gid];
      // One block scan partitions the members; the split walks them in
      // member order, matching the historical per-member loop exactly.
      MatchMembers(g, p);
      std::vector<size_t> kept;
      kept.reserve(g.members.size());
      bool changed = false;
      for (size_t k = 0; k < g.members.size(); ++k) {
        const size_t m = g.members[k];
        if ((mask_[k / 64] >> (k % 64)) & 1) {
          changed = true;
          if (clause == OverlapClause::kEliminate) {
            assignment_[m] = Grouping::kEliminated;
          } else {  // FORM-NEW-GROUP: re-group in the next round.
            deferred->push_back(m);
          }
        } else {
          kept.push_back(m);
        }
      }
      if (changed) {
        g.members = std::move(kept);
        RebuildAfterRemoval(gid);
      }
    }
  }

  /// Processes one round over `todo` with a fresh group universe; returns
  /// the points deferred to the next round. Surviving groups are committed
  /// to the runner-local numbering at round end.
  std::vector<size_t> RunRound(const std::vector<size_t>& todo,
                               OverlapClause clause) {
    groups_.clear();
    groups_ix_ = index::RTree();
    use_index_ = options_.algorithm == SgbAllAlgorithm::kIndexed;
    if (use_index_) {
      Status fault = g_rtree_build_fault.Check();
      if (!fault.ok()) throw QueryAbort(std::move(fault));
    }

    std::vector<size_t> deferred;
    size_t processed = 0;
    for (const size_t point_index : todo) {
      if (options_.query_ctx != nullptr &&
          processed++ % kAbortCheckStride == 0) {
        ThrowIfAborted(options_.query_ctx);
      }
      ProcessPoint(point_index, clause, &deferred);
    }

    for (const Group& g : groups_) {
      if (!g.alive || g.members.empty()) continue;
      const size_t out = next_local_group_++;
      for (const size_t m : g.members) assignment_[m] = out;
    }
    return deferred;
  }

  std::span<const Point> points_;
  const SgbAllOptions& options_;
  geom::BlockSimilarity block_sim_;
  SgbAllStats* stats_;
  std::vector<uint64_t> mask_;  // kernel selection-mask scratch

  std::vector<Group> groups_;
  index::RTree groups_ix_;
  bool use_index_ = false;

  std::vector<size_t>& assignment_;
  size_t next_local_group_ = 0;
};

Grouping RunSerial(std::span<const Point> points,
                   const SgbAllOptions& options, SgbAllStats* stats) {
  std::vector<size_t> assignment(points.size(), Grouping::kEliminated);
  std::vector<size_t> universe(points.size());
  for (size_t i = 0; i < universe.size(); ++i) universe[i] = i;
  SgbAllRunner runner(points, options, stats, assignment);
  runner.Run(std::move(universe));
  return CanonicalizeLabels(points.size(), assignment, nullptr);
}

/// Partition-parallel SGB-All: decompose the input into the connected
/// components of the 3ε interaction graph, run the sequential algorithm on
/// each component independently, and renumber canonically.
///
/// Why this is exact (and not an approximation): an SGB-All group's members
/// are pairwise within ε, so a group spans at most ε per axis, and a point
/// only ever classifies against — or removes members from — a group it is
/// within ε of. Two points can therefore influence each other's outcome
/// only through chains of points at most 3ε apart per axis. Components of
/// the "within 3ε under L∞" graph are thus closed under every candidate,
/// overlap, and re-grouping interaction, and processing each component's
/// subsequence alone (in input order, with the order-independent JOIN-ANY
/// pick) reproduces the serial result point for point. See
/// docs/PARALLELISM.md for the full argument.
Grouping RunParallel(std::span<const Point> points,
                     const SgbAllOptions& options, SgbAllStats* stats,
                     size_t dop) {
  const size_t n = points.size();
  ThreadPool& pool = ThreadPool::Default();

  index::UnionFind forest(n);
  std::vector<index::GridPartitionStats> grid_stats;
  index::ParallelSimilarityUnion(points, Metric::kLInf, 3.0 * options.epsilon,
                                 dop, pool, &forest, &grid_stats,
                                 options.query_ctx);

  // Dense component ids in order of first appearance, plus member lists
  // (each ascending, i.e. in canonical input order).
  std::vector<size_t> comp_of(n);
  std::vector<size_t> comp_id_of_root(n, Grouping::kEliminated);
  std::vector<std::vector<size_t>> comp_members;
  for (size_t i = 0; i < n; ++i) {
    const size_t root = forest.Find(i);
    if (comp_id_of_root[root] == Grouping::kEliminated) {
      comp_id_of_root[root] = comp_members.size();
      comp_members.emplace_back();
    }
    comp_of[i] = comp_id_of_root[root];
    comp_members[comp_of[i]].push_back(i);
  }

  // Largest components first, so stragglers start early.
  std::vector<size_t> comp_order(comp_members.size());
  for (size_t c = 0; c < comp_order.size(); ++c) comp_order[c] = c;
  std::stable_sort(comp_order.begin(), comp_order.end(),
                   [&](size_t a, size_t b) {
                     return comp_members[a].size() > comp_members[b].size();
                   });

  std::vector<size_t> assignment(n, Grouping::kEliminated);
  std::vector<SgbAllStats> slot_stats(dop);
  std::vector<size_t> slot_points(dop, 0);
  // Worker spans need an explicit parent: ParallelFor workers run on pool
  // threads with no open-span stack of their own.
  obs::QueryTrace* trace =
      options.query_ctx != nullptr ? options.query_ctx->trace() : nullptr;
  const uint64_t parent_span =
      trace != nullptr ? trace->CurrentSpanId() : 0;
  pool.ParallelFor(
      comp_order.size(), dop,
      [&](size_t slot, size_t begin, size_t end) {
        obs::ScopedSpan worker_span(trace, "sgb.worker", parent_span);
        size_t worker_points = 0;
        for (size_t k = begin; k < end; ++k) {
          const std::vector<size_t>& members = comp_members[comp_order[k]];
          slot_points[slot] += members.size();
          worker_points += members.size();
          SgbAllRunner runner(points, options, &slot_stats[slot],
                              assignment);
          runner.Run(members);
        }
        worker_span.AddAttribute("components",
                                 static_cast<double>(end - begin));
        worker_span.AddAttribute("points",
                                 static_cast<double>(worker_points));
      },
      /*grain=*/1);

  if (stats != nullptr) {
    for (size_t w = 0; w < dop; ++w) {
      stats->distance_computations +=
          slot_stats[w].distance_computations +
          grid_stats[w].distance_computations;
      stats->rectangle_tests += slot_stats[w].rectangle_tests;
      stats->hull_tests += slot_stats[w].hull_tests;
      stats->index_window_queries += slot_stats[w].index_window_queries;
      stats->groups_created += slot_stats[w].groups_created;
      stats->regroup_rounds += slot_stats[w].regroup_rounds;
      SgbWorkerStats worker;
      worker.points = slot_points[w];
      worker.distance_computations = slot_stats[w].distance_computations +
                                     grid_stats[w].distance_computations;
      stats->workers.push_back(worker);
    }
    stats->parallel_partitions = comp_members.size();
  }
  return CanonicalizeLabels(n, assignment, &comp_of);
}

}  // namespace

Result<Grouping> SgbAll(std::span<const Point> points,
                        const SgbAllOptions& options, SgbAllStats* stats) {
  if (!(options.epsilon >= 0.0) || !std::isfinite(options.epsilon)) {
    return Status::InvalidArgument(
        "SGB-All: similarity threshold epsilon must be finite and >= 0");
  }
  if (options.max_regroup_rounds < 1) {
    return Status::InvalidArgument(
        "SGB-All: max_regroup_rounds must be >= 1");
  }
  if (options.degree_of_parallelism < 0) {
    return Status::InvalidArgument(
        "SGB-All: degree_of_parallelism must be >= 0 (0 = auto)");
  }
  // Counters always flow into the global registry (the engine operators,
  // benches, and EXPLAIN ANALYZE all read from there); the caller's struct
  // remains the per-invocation view.
  SgbAllStats local;
  if (stats == nullptr) stats = &local;
  const size_t dop = ThreadPool::ResolveDop(options.degree_of_parallelism);
  // ε = 0 degenerates the interaction grid (zero-width cells); those inputs
  // are cheap to group serially anyway.
  const bool parallel = dop > 1 && points.size() >= kMinParallelPoints &&
                        options.epsilon > 0.0;
  Grouping result;
  try {
    // Bookkeeping charge: the assignment/universe vectors (serial) plus the
    // component-decomposition vectors (parallel), all O(n) words.
    ScopedMemoryCharge bookkeeping(
        options.query_ctx,
        points.size() * sizeof(size_t) * (parallel ? 6 : 2));
    result = parallel ? RunParallel(points, options, stats, dop)
                      : RunSerial(points, options, stats);
  } catch (const QueryAbort& abort) {
    // Governance aborts from runner loops (including those rethrown out of
    // ParallelFor workers) surface as the core's Status.
    return abort.status();
  }
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("sgb.all.invocations").Add(1);
  registry.GetCounter("sgb.all.points").Add(points.size());
  registry.GetCounter("sgb.all.distance_computations")
      .Add(stats->distance_computations);
  registry.GetCounter("sgb.all.rectangle_tests").Add(stats->rectangle_tests);
  registry.GetCounter("sgb.all.hull_tests").Add(stats->hull_tests);
  registry.GetCounter("sgb.all.index_window_queries")
      .Add(stats->index_window_queries);
  registry.GetCounter("sgb.all.groups_created").Add(stats->groups_created);
  registry.GetCounter("sgb.all.regroup_rounds").Add(stats->regroup_rounds);
  if (parallel) {
    registry.GetCounter("sgb.all.parallel_runs").Add(1);
    registry.GetCounter("sgb.all.parallel_components")
        .Add(stats->parallel_partitions);
  }
  return result;
}

}  // namespace sgb::core
