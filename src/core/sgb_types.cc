#include "core/sgb_types.h"

namespace sgb::core {

const char* ToString(OverlapClause clause) {
  switch (clause) {
    case OverlapClause::kJoinAny:
      return "JOIN-ANY";
    case OverlapClause::kEliminate:
      return "ELIMINATE";
    case OverlapClause::kFormNewGroup:
      return "FORM-NEW-GROUP";
  }
  return "?";
}

const char* ToString(SgbAllAlgorithm algorithm) {
  switch (algorithm) {
    case SgbAllAlgorithm::kAllPairs:
      return "All-Pairs";
    case SgbAllAlgorithm::kBoundsChecking:
      return "Bounds-Checking";
    case SgbAllAlgorithm::kIndexed:
      return "on-the-fly Index";
  }
  return "?";
}

const char* ToString(SgbAnyAlgorithm algorithm) {
  switch (algorithm) {
    case SgbAnyAlgorithm::kAllPairs:
      return "All-Pairs";
    case SgbAnyAlgorithm::kIndexed:
      return "on-the-fly Index";
  }
  return "?";
}

size_t JoinAnyPick(uint64_t seed, size_t point_index, size_t num_candidates) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (point_index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<size_t>(z % num_candidates);
}

std::vector<std::vector<size_t>> Grouping::GroupsAsLists() const {
  std::vector<std::vector<size_t>> groups(num_groups);
  for (size_t i = 0; i < group_of.size(); ++i) {
    if (group_of[i] != kEliminated) groups[group_of[i]].push_back(i);
  }
  return groups;
}

std::vector<size_t> Grouping::GroupSizes() const {
  std::vector<size_t> sizes(num_groups, 0);
  for (const size_t g : group_of) {
    if (g != kEliminated) ++sizes[g];
  }
  return sizes;
}

size_t Grouping::NumEliminated() const {
  size_t count = 0;
  for (const size_t g : group_of) {
    if (g == kEliminated) ++count;
  }
  return count;
}

}  // namespace sgb::core
