#ifndef SGB_CORE_SIMILARITY_JOIN_H_
#define SGB_CORE_SIMILARITY_JOIN_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/status.h"
#include "geom/point.h"

namespace sgb::core {

/// Companion similarity operators. The paper positions SGB inside the
/// SimDB operator family (similarity join, range search, KNN — Section 2);
/// these implementations complete that family over 2-D points, sharing the
/// R-tree substrate and the filter-refine style of the SGB operators.

/// One (left index, right index) match of an ε-join.
struct JoinPair {
  size_t left = 0;
  size_t right = 0;
  friend bool operator==(const JoinPair&, const JoinPair&) = default;
};

enum class SimilarityJoinAlgorithm {
  kNestedLoop,  ///< all |L| x |R| predicate evaluations
  kIndexed,     ///< R-tree on the smaller side, ε-window probes
};

struct SimilarityJoinStats {
  size_t distance_computations = 0;
  size_t window_queries = 0;
};

/// ε-join: all pairs (l, r) with δ(left[l], right[r]) <= ε. Pairs are
/// emitted in ascending (left, right) order for both algorithms.
///
/// Errors: InvalidArgument on a bad ε.
Result<std::vector<JoinPair>> SimilarityJoin(
    std::span<const geom::Point> left, std::span<const geom::Point> right,
    double epsilon, geom::Metric metric = geom::Metric::kL2,
    SimilarityJoinAlgorithm algorithm = SimilarityJoinAlgorithm::kIndexed,
    SimilarityJoinStats* stats = nullptr);

/// Self ε-join: unordered distinct pairs (i < j) within ε.
Result<std::vector<JoinPair>> SimilaritySelfJoin(
    std::span<const geom::Point> points, double epsilon,
    geom::Metric metric = geom::Metric::kL2,
    SimilarityJoinAlgorithm algorithm = SimilarityJoinAlgorithm::kIndexed,
    SimilarityJoinStats* stats = nullptr);

/// Bulk-loaded read-only point index for similarity range search and KNN.
class SimilaritySearch {
 public:
  explicit SimilaritySearch(std::span<const geom::Point> points);

  /// Indices of all points with δ(q, p) <= ε, ascending.
  std::vector<size_t> RangeQuery(const geom::Point& q, double epsilon,
                                 geom::Metric metric = geom::Metric::kL2)
      const;

  /// The k nearest points to q under L2, nearest first (ties by index).
  /// Returns fewer than k when the index holds fewer points.
  /// Implemented by expanding-radius window queries over the R-tree.
  std::vector<size_t> Knn(const geom::Point& q, size_t k) const;

  size_t size() const { return points_.size(); }

 private:
  std::vector<geom::Point> points_;
  // The R-tree is held via pimpl-free composition; see .cc.
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

}  // namespace sgb::core

#endif  // SGB_CORE_SIMILARITY_JOIN_H_
