#include "core/sgb_any.h"

#include <cmath>

#include "common/query_context.h"
#include "common/thread_pool.h"
#include "geom/kernels.h"
#include "geom/rect.h"
#include "index/grid_partition.h"
#include "index/rtree.h"
#include "index/union_find.h"
#include "obs/metrics.h"

namespace sgb::core {

namespace {

using geom::Metric;
using geom::Point;
using geom::Rect;

/// Minimum input size for the parallel path: below this the partitioning
/// overhead dominates any possible speedup.
constexpr size_t kMinParallelPoints = 64;

/// Points processed between governance checks in the serial loops (the
/// parallel path checks inside the grid-partitioned union instead).
constexpr size_t kAbortCheckStride = 64;

Grouping LabelComponents(std::span<const Point> points,
                         index::UnionFind& forest) {
  Grouping result;
  result.group_of.assign(points.size(), Grouping::kEliminated);
  std::vector<size_t> label_of_root(points.size(), Grouping::kEliminated);
  for (size_t i = 0; i < points.size(); ++i) {
    const size_t root = forest.Find(i);
    if (label_of_root[root] == Grouping::kEliminated) {
      label_of_root[root] = result.num_groups++;
    }
    result.group_of[i] = label_of_root[root];
  }
  return result;
}

Grouping RunAllPairs(std::span<const Point> points,
                     const SgbAnyOptions& options, SgbAnyStats* stats) {
  index::UnionFind forest(points.size());
  // Block kernels scan point i against the SoA prefix [0, i); ForEachSetBit
  // enumerates matches in ascending j, the same union order as the
  // historical scalar double loop.
  geom::PointColumns cols;
  cols.Assign(points);
  geom::BlockSimilarity sim(options.metric, options.epsilon);
  std::vector<uint64_t> mask(geom::KernelMaskWords(points.size()));
  for (size_t i = 0; i < points.size(); ++i) {
    if (options.query_ctx != nullptr && i % kAbortCheckStride == 0) {
      ThrowIfAborted(options.query_ctx);
    }
    if (stats != nullptr) stats->distance_computations += i;
    sim.Match(points[i], cols.xs(), cols.ys(), i, mask.data());
    geom::ForEachSetBit(mask.data(), i, [&](size_t j) {
      if (stats != nullptr) {
        ++stats->union_operations;
        if (!forest.Connected(i, j)) ++stats->group_merges;
      }
      forest.Union(i, j);
    });
  }
  return LabelComponents(points, forest);
}

/// Procedure 8 (FindCandidateGroups) + Procedure 9 (ProcessGroupingANY),
/// fused: the window query yields the ε-neighbours among processed points;
/// each verified neighbour's group is merged with the new point's via
/// union-find, which realizes new-group creation, single-group join, and
/// multi-group merge uniformly.
Grouping RunIndexed(std::span<const Point> points,
                    const SgbAnyOptions& options, SgbAnyStats* stats) {
  index::UnionFind forest(points.size());
  index::RTree points_ix;
  // Hoists ε² out of the per-neighbour L2 verification.
  const geom::SimilarityPredicate similar(options.metric, options.epsilon);
  for (size_t i = 0; i < points.size(); ++i) {
    if (options.query_ctx != nullptr && i % kAbortCheckStride == 0) {
      ThrowIfAborted(options.query_ctx);
    }
    const Point& p = points[i];
    if (stats != nullptr) ++stats->index_window_queries;
    const Rect window = Rect::Around(p, options.epsilon);
    points_ix.Search(window, [&](const Rect& r, uint64_t id) {
      const Point q{r.lo.x, r.lo.y};  // points are degenerate rects
      if (options.metric == Metric::kL2) {
        // VerifyPoints: the ε-window is the L∞ ball; L2 needs a check.
        if (stats != nullptr) ++stats->distance_computations;
        if (!similar(p, q)) return;
      }
      if (stats != nullptr) {
        ++stats->union_operations;
        if (!forest.Connected(i, id)) ++stats->group_merges;
      }
      forest.Union(i, static_cast<size_t>(id));
    });
    points_ix.Insert(p, i);
  }
  return LabelComponents(points, forest);
}

/// Partition-parallel SGB-Any: the ε-neighbour graph's edges are found by a
/// grid-partitioned scan (each worker unions within its own disjoint cell
/// range; partition-seam pairs are merged sequentially afterwards), and the
/// forest's components are labeled canonically by first appearance. Since
/// SGB-Any is exactly "connected components of the ε-neighbour graph" — an
/// order-insensitive result — this reproduces the serial grouping
/// bit-for-bit at every degree of parallelism (docs/PARALLELISM.md).
Grouping RunParallel(std::span<const Point> points,
                     const SgbAnyOptions& options, SgbAnyStats* stats,
                     size_t dop) {
  index::UnionFind forest(points.size());
  std::vector<index::GridPartitionStats> grid_stats;
  index::ParallelSimilarityUnion(points, options.metric, options.epsilon,
                                 dop, ThreadPool::Default(), &forest,
                                 &grid_stats, options.query_ctx);
  if (stats != nullptr) {
    size_t partitions = 0;
    for (const index::GridPartitionStats& w : grid_stats) {
      stats->distance_computations += w.distance_computations;
      stats->union_operations += w.union_operations + w.boundary_edges;
      if (w.cells > 0) ++partitions;
      SgbWorkerStats worker;
      worker.points = w.points;
      worker.distance_computations = w.distance_computations;
      stats->workers.push_back(worker);
    }
    stats->parallel_partitions = partitions;
    // The boundary merge also performs unions; group_merges is the number
    // of unions that actually reduced the component count.
    stats->group_merges += points.size() - forest.NumSets();
  }
  return LabelComponents(points, forest);
}

}  // namespace

Result<Grouping> SgbAny(std::span<const Point> points,
                        const SgbAnyOptions& options, SgbAnyStats* stats) {
  if (!(options.epsilon >= 0.0) || !std::isfinite(options.epsilon)) {
    return Status::InvalidArgument(
        "SGB-Any: similarity threshold epsilon must be finite and >= 0");
  }
  if (options.degree_of_parallelism < 0) {
    return Status::InvalidArgument(
        "SGB-Any: degree_of_parallelism must be >= 0 (0 = auto)");
  }
  // As in SgbAll: counters always reach the global registry, with the
  // caller's struct as the optional per-invocation view.
  SgbAnyStats local;
  if (stats == nullptr) stats = &local;
  const size_t dop = ThreadPool::ResolveDop(options.degree_of_parallelism);
  // ε = 0 degenerates the partition grid (zero-width cells); those inputs
  // are cheap to group serially anyway.
  const bool parallel = dop > 1 && points.size() >= kMinParallelPoints &&
                        options.epsilon > 0.0;
  Result<Grouping> result = [&]() -> Result<Grouping> {
    try {
      // Bookkeeping charge: union-find forest + labeling, O(n) words.
      ScopedMemoryCharge bookkeeping(options.query_ctx,
                                     points.size() * sizeof(size_t) * 2);
      if (parallel) return RunParallel(points, options, stats, dop);
      switch (options.algorithm) {
        case SgbAnyAlgorithm::kAllPairs:
          return RunAllPairs(points, options, stats);
        case SgbAnyAlgorithm::kIndexed:
          return RunIndexed(points, options, stats);
      }
      return Status::Internal("SGB-Any: unknown algorithm");
    } catch (const QueryAbort& abort) {
      // Governance aborts from the serial loops or (rethrown) ParallelFor
      // workers surface as the core's Status.
      return abort.status();
    }
  }();
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("sgb.any.invocations").Add(1);
  registry.GetCounter("sgb.any.points").Add(points.size());
  registry.GetCounter("sgb.any.distance_computations")
      .Add(stats->distance_computations);
  registry.GetCounter("sgb.any.index_window_queries")
      .Add(stats->index_window_queries);
  registry.GetCounter("sgb.any.union_operations")
      .Add(stats->union_operations);
  registry.GetCounter("sgb.any.group_merges").Add(stats->group_merges);
  if (parallel) {
    registry.GetCounter("sgb.any.parallel_runs").Add(1);
    registry.GetCounter("sgb.any.parallel_partitions")
        .Add(stats->parallel_partitions);
  }
  return result;
}

}  // namespace sgb::core
