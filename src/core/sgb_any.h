#ifndef SGB_CORE_SGB_ANY_H_
#define SGB_CORE_SGB_ANY_H_

#include <span>
#include <vector>

#include "common/status.h"
#include "core/sgb_types.h"
#include "geom/point.h"

namespace sgb::core {

/// Execution counters for the SGB-Any benchmark harness.
struct SgbAnyStats {
  size_t distance_computations = 0;
  size_t index_window_queries = 0;
  size_t union_operations = 0;
  size_t group_merges = 0;  ///< unions that actually merged two groups
  /// Parallel runs only: number of grid partitions and the per-worker-slot
  /// breakdown (aggregate counters above always include every worker).
  size_t parallel_partitions = 0;
  std::vector<SgbWorkerStats> workers;
};

/// The SGB-Any (distance-to-any) operator of Section 4.2.
///
/// Groups are the connected components of the graph whose edges connect
/// point pairs satisfying ξδ,ε. Unlike SGB-All, the result is
/// order-insensitive and no overlap arbitration is needed: a point touching
/// several groups merges them (Procedure 9, MergeGroupsInsert).
///
/// `kIndexed` follows Procedure 8: an R-tree (Points_IX) over processed
/// points answers the ε-window query, and a union-find forest tracks
/// existing, new, and merged groups. `kAllPairs` evaluates all
/// n-choose-2 similarity predicates.
///
/// Errors: InvalidArgument when ε is negative or not finite.
Result<Grouping> SgbAny(std::span<const geom::Point> points,
                        const SgbAnyOptions& options,
                        SgbAnyStats* stats = nullptr);

}  // namespace sgb::core

#endif  // SGB_CORE_SGB_ANY_H_
