#ifndef SGB_CORE_SGB_ND_H_
#define SGB_CORE_SGB_ND_H_

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "common/status.h"
#include "core/sgb_all.h"
#include "core/sgb_any.h"
#include "core/sgb_types.h"
#include "geom/nd.h"
#include "index/rtree_nd.h"
#include "index/union_find.h"

namespace sgb::core {

/// N-dimensional SGB — the extension the paper defers to future work
/// ("we mainly focus on two and three dimensional data space").
///
/// Semantics are identical to the 2-D operators (same options, clauses and
/// Grouping output; the 2-D specializations agree bit-for-bit with
/// core::SgbAll / core::SgbAny — tested). One algorithmic difference: the
/// L2 refinement uses an exact member scan of rectangle-passing groups
/// instead of the 2-D convex-hull test (hulls do not generalize cheaply
/// beyond the plane), so the L2 candidate test costs O(|g|) rather than
/// O(log |g|) per rectangle-passing group. L∞ keeps the O(1) exact
/// rectangle test. DESIGN.md discusses the trade-off.
///
/// Header-only (templates); `SgbAllAlgorithm::kBoundsChecking` and
/// `kIndexed` differ only in how candidate groups are enumerated, exactly
/// as in 2-D.
namespace nd_internal {

/// ε-All bounding box + member MBR in D dimensions (Definition 5 lifted).
template <size_t D>
class EpsilonRectN {
 public:
  EpsilonRectN() = default;
  explicit EpsilonRectN(double epsilon) : epsilon_(epsilon) {}

  void Insert(const geom::PointN<D>& p) {
    if (empty_) {
      all_rect_ = geom::RectN<D>::Around(p, epsilon_);
      mbr_ = geom::RectN<D>{p, p};
      empty_ = false;
      return;
    }
    all_rect_.Clip(geom::RectN<D>::Around(p, epsilon_));
    mbr_.Expand(p);
  }

  void Rebuild(std::span<const geom::PointN<D>> members) {
    *this = EpsilonRectN(epsilon_);
    for (const auto& p : members) Insert(p);
  }

  bool empty() const { return empty_; }
  const geom::RectN<D>& all_rect() const { return all_rect_; }
  const geom::RectN<D>& mbr() const { return mbr_; }

  bool PointInRectangleTest(const geom::PointN<D>& p) const {
    return !empty_ && all_rect_.Contains(p);
  }

  bool OverlapRectangleTest(const geom::PointN<D>& p) const {
    return !empty_ && mbr_.Intersects(geom::RectN<D>::Around(p, epsilon_));
  }

 private:
  double epsilon_ = 0.0;
  bool empty_ = true;
  geom::RectN<D> all_rect_ = geom::RectN<D>::Empty();
  geom::RectN<D> mbr_ = geom::RectN<D>::Empty();
};

template <size_t D>
class SgbAllRunnerN {
 public:
  using Point = geom::PointN<D>;
  using Rect = geom::RectN<D>;

  SgbAllRunnerN(std::span<const Point> points, const SgbAllOptions& options,
                SgbAllStats* stats)
      : points_(points),
        options_(options),
        stats_(stats),
        assignment_(points.size(), Grouping::kEliminated) {}

  Grouping Run() {
    std::vector<size_t> todo(points_.size());
    for (size_t i = 0; i < todo.size(); ++i) todo[i] = i;

    int round = 0;
    while (!todo.empty()) {
      const bool last_chance = round >= options_.max_regroup_rounds - 1;
      const OverlapClause clause =
          last_chance ? OverlapClause::kJoinAny : options_.on_overlap;
      // Deferred points re-enter in canonical (input) order, exactly as in
      // core::SgbAll, so the 2-D specialization stays bit-identical.
      std::vector<size_t> deferred = RunRound(todo, clause);
      std::sort(deferred.begin(), deferred.end());
      if (stats_ != nullptr && round > 0) ++stats_->regroup_rounds;
      if (deferred.size() == todo.size()) {
        (void)RunRound(deferred, OverlapClause::kJoinAny);
        break;
      }
      todo = std::move(deferred);
      ++round;
    }

    // Renumber into the Grouping contract ordering (first appearance in
    // the input), matching core::SgbAll's canonicalization.
    Grouping result;
    result.group_of.assign(points_.size(), Grouping::kEliminated);
    std::vector<size_t> label_of(next_output_group_, Grouping::kEliminated);
    for (size_t i = 0; i < points_.size(); ++i) {
      if (assignment_[i] == Grouping::kEliminated) continue;
      if (label_of[assignment_[i]] == Grouping::kEliminated) {
        label_of[assignment_[i]] = result.num_groups++;
      }
      result.group_of[i] = label_of[assignment_[i]];
    }
    return result;
  }

 private:
  struct Group {
    std::vector<size_t> members;
    EpsilonRectN<D> rect;
    bool alive = true;
  };

  bool SimilarTo(const Point& a, const Point& b) {
    if (stats_ != nullptr) ++stats_->distance_computations;
    return geom::Similar(a, b, options_.metric, options_.epsilon);
  }

  size_t CreateGroup(size_t point_index) {
    const size_t gid = groups_.size();
    Group g;
    g.rect = EpsilonRectN<D>(options_.epsilon);
    g.rect.Insert(points_[point_index]);
    g.members.push_back(point_index);
    groups_.push_back(std::move(g));
    if (use_index_) groups_ix_.Insert(groups_[gid].rect.all_rect(), gid);
    if (stats_ != nullptr) ++stats_->groups_created;
    return gid;
  }

  void InsertIntoGroup(size_t gid, size_t point_index) {
    Group& g = groups_[gid];
    const Rect old_rect = g.rect.all_rect();
    g.members.push_back(point_index);
    g.rect.Insert(points_[point_index]);
    if (use_index_ && !(g.rect.all_rect() == old_rect)) {
      groups_ix_.Remove(old_rect, gid);
      groups_ix_.Insert(g.rect.all_rect(), gid);
    }
  }

  void RebuildAfterRemoval(size_t gid) {
    Group& g = groups_[gid];
    const Rect old_rect = g.rect.all_rect();
    if (g.members.empty()) {
      g.alive = false;
      if (use_index_) groups_ix_.Remove(old_rect, gid);
      return;
    }
    std::vector<Point> pts;
    pts.reserve(g.members.size());
    for (const size_t m : g.members) pts.push_back(points_[m]);
    g.rect.Rebuild(pts);
    if (use_index_ && !(g.rect.all_rect() == old_rect)) {
      groups_ix_.Remove(old_rect, gid);
      groups_ix_.Insert(g.rect.all_rect(), gid);
    }
  }

  /// Exact candidate test: rectangle filter, then (L2 only) a full member
  /// scan — the N-D replacement for the 2-D convex-hull refinement.
  bool CandidateTest(const Group& g, const Point& p) {
    if (stats_ != nullptr) ++stats_->rectangle_tests;
    if (!g.rect.PointInRectangleTest(p)) return false;
    if (options_.metric == geom::Metric::kLInf) return true;
    for (const size_t m : g.members) {
      if (!SimilarTo(p, points_[m])) return false;
    }
    return true;
  }

  bool OverlapMemberScan(const Group& g, const Point& p) {
    for (const size_t m : g.members) {
      if (SimilarTo(p, points_[m])) return true;
    }
    return false;
  }

  void ClassifyGroup(size_t gid, const Point& p, OverlapClause clause,
                     std::vector<size_t>* candidates,
                     std::vector<size_t>* overlaps) {
    const Group& g = groups_[gid];
    if (!g.alive) return;
    if (CandidateTest(g, p)) {
      candidates->push_back(gid);
      return;
    }
    if (clause == OverlapClause::kJoinAny) return;
    if (!g.rect.OverlapRectangleTest(p)) return;
    if (OverlapMemberScan(g, p)) overlaps->push_back(gid);
  }

  void FindCloseGroups(const Point& p, OverlapClause clause,
                       std::vector<size_t>* candidates,
                       std::vector<size_t>* overlaps) {
    candidates->clear();
    overlaps->clear();
    if (options_.algorithm == SgbAllAlgorithm::kAllPairs) {
      // Procedure 2 lifted to N-D.
      for (size_t gid = 0; gid < groups_.size(); ++gid) {
        const Group& g = groups_[gid];
        if (!g.alive) continue;
        bool candidate_flag = true;
        bool overlap_flag = false;
        for (const size_t m : g.members) {
          if (SimilarTo(p, points_[m])) {
            overlap_flag = true;
          } else {
            candidate_flag = false;
            if (clause == OverlapClause::kJoinAny) break;
          }
        }
        if (candidate_flag) {
          candidates->push_back(gid);
        } else if (clause != OverlapClause::kJoinAny && overlap_flag) {
          overlaps->push_back(gid);
        }
      }
      return;
    }
    if (options_.algorithm == SgbAllAlgorithm::kIndexed) {
      if (stats_ != nullptr) ++stats_->index_window_queries;
      std::vector<uint64_t> gids =
          groups_ix_.SearchIds(Rect::Around(p, options_.epsilon));
      std::sort(gids.begin(), gids.end());
      for (const uint64_t gid : gids) {
        ClassifyGroup(static_cast<size_t>(gid), p, clause, candidates,
                      overlaps);
      }
      return;
    }
    for (size_t gid = 0; gid < groups_.size(); ++gid) {
      ClassifyGroup(gid, p, clause, candidates, overlaps);
    }
  }

  void ProcessPoint(size_t point_index, OverlapClause clause,
                    std::vector<size_t>* deferred) {
    const Point& p = points_[point_index];
    std::vector<size_t> candidates;
    std::vector<size_t> overlaps;
    FindCloseGroups(p, clause, &candidates, &overlaps);

    if (candidates.empty()) {
      CreateGroup(point_index);
    } else if (candidates.size() == 1) {
      InsertIntoGroup(candidates[0], point_index);
    } else {
      switch (clause) {
        case OverlapClause::kJoinAny:
          InsertIntoGroup(
              candidates[JoinAnyPick(options_.seed, point_index,
                                     candidates.size())],
              point_index);
          break;
        case OverlapClause::kEliminate:
          assignment_[point_index] = Grouping::kEliminated;
          break;
        case OverlapClause::kFormNewGroup:
          deferred->push_back(point_index);
          break;
      }
    }

    if (clause == OverlapClause::kJoinAny || overlaps.empty()) return;
    for (const size_t gid : overlaps) {
      Group& g = groups_[gid];
      std::vector<size_t> kept;
      kept.reserve(g.members.size());
      bool changed = false;
      for (const size_t m : g.members) {
        if (SimilarTo(p, points_[m])) {
          changed = true;
          if (clause == OverlapClause::kEliminate) {
            assignment_[m] = Grouping::kEliminated;
          } else {
            deferred->push_back(m);
          }
        } else {
          kept.push_back(m);
        }
      }
      if (changed) {
        g.members = std::move(kept);
        RebuildAfterRemoval(gid);
      }
    }
  }

  std::vector<size_t> RunRound(const std::vector<size_t>& todo,
                               OverlapClause clause) {
    groups_.clear();
    groups_ix_ = index::RTreeN<D>();
    use_index_ = options_.algorithm == SgbAllAlgorithm::kIndexed;

    std::vector<size_t> deferred;
    for (const size_t point_index : todo) {
      ProcessPoint(point_index, clause, &deferred);
    }
    for (const Group& g : groups_) {
      if (!g.alive || g.members.empty()) continue;
      const size_t out = next_output_group_++;
      for (const size_t m : g.members) assignment_[m] = out;
    }
    return deferred;
  }

  std::span<const Point> points_;
  const SgbAllOptions& options_;
  SgbAllStats* stats_;
  std::vector<Group> groups_;
  index::RTreeN<D> groups_ix_;
  bool use_index_ = false;
  std::vector<size_t> assignment_;
  size_t next_output_group_ = 0;
};

}  // namespace nd_internal

/// N-dimensional SGB-All. Same contract as core::SgbAll.
template <size_t D>
Result<Grouping> SgbAllNd(std::span<const geom::PointN<D>> points,
                          const SgbAllOptions& options,
                          SgbAllStats* stats = nullptr) {
  if (!(options.epsilon >= 0.0) || !std::isfinite(options.epsilon)) {
    return Status::InvalidArgument(
        "SGB-All: similarity threshold epsilon must be finite and >= 0");
  }
  if (options.max_regroup_rounds < 1) {
    return Status::InvalidArgument(
        "SGB-All: max_regroup_rounds must be >= 1");
  }
  nd_internal::SgbAllRunnerN<D> runner(points, options, stats);
  return runner.Run();
}

/// N-dimensional SGB-Any. Same contract as core::SgbAny.
template <size_t D>
Result<Grouping> SgbAnyNd(std::span<const geom::PointN<D>> points,
                          const SgbAnyOptions& options,
                          SgbAnyStats* stats = nullptr) {
  if (!(options.epsilon >= 0.0) || !std::isfinite(options.epsilon)) {
    return Status::InvalidArgument(
        "SGB-Any: similarity threshold epsilon must be finite and >= 0");
  }

  index::UnionFind forest(points.size());
  if (options.algorithm == SgbAnyAlgorithm::kAllPairs) {
    for (size_t i = 0; i < points.size(); ++i) {
      for (size_t j = 0; j < i; ++j) {
        if (stats != nullptr) ++stats->distance_computations;
        if (geom::Similar(points[i], points[j], options.metric,
                          options.epsilon)) {
          if (stats != nullptr) {
            ++stats->union_operations;
            if (!forest.Connected(i, j)) ++stats->group_merges;
          }
          forest.Union(i, j);
        }
      }
    }
  } else {
    index::RTreeN<D> points_ix;
    std::vector<geom::PointN<D>> stored(points.begin(), points.end());
    for (size_t i = 0; i < points.size(); ++i) {
      if (stats != nullptr) ++stats->index_window_queries;
      const auto window = geom::RectN<D>::Around(points[i], options.epsilon);
      points_ix.Search(window, [&](const geom::RectN<D>&, uint64_t id) {
        if (options.metric == geom::Metric::kL2) {
          if (stats != nullptr) ++stats->distance_computations;
          if (!geom::Similar(points[i], stored[id], geom::Metric::kL2,
                             options.epsilon)) {
            return;
          }
        }
        if (stats != nullptr) {
          ++stats->union_operations;
          if (!forest.Connected(i, id)) ++stats->group_merges;
        }
        forest.Union(i, static_cast<size_t>(id));
      });
      points_ix.Insert(points[i], i);
    }
  }

  Grouping result;
  result.group_of.assign(points.size(), Grouping::kEliminated);
  std::vector<size_t> label_of_root(points.size(), Grouping::kEliminated);
  for (size_t i = 0; i < points.size(); ++i) {
    const size_t root = forest.Find(i);
    if (label_of_root[root] == Grouping::kEliminated) {
      label_of_root[root] = result.num_groups++;
    }
    result.group_of[i] = label_of_root[root];
  }
  return result;
}

}  // namespace sgb::core

#endif  // SGB_CORE_SGB_ND_H_
