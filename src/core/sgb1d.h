#ifndef SGB_CORE_SGB1D_H_
#define SGB_CORE_SGB1D_H_

#include <limits>
#include <optional>
#include <span>
#include <vector>

#include "common/status.h"

namespace sgb::core {

/// One-dimensional similarity grouping — the operator family of the
/// original ICDE 2009 paper "Similarity Group-By" (Silva, Aref, Ali),
/// which the supplied multi-dimensional paper extends and cites as [2].
/// Included so the library covers both papers (see DESIGN.md).
///
/// The result mirrors `Grouping`: a dense 0-based group id per input value
/// (in input order), with `kUngrouped` for values no group accepts
/// (possible under SGB-A limits). Group ids are ordered by ascending group
/// position on the number line.
struct Grouping1D {
  static constexpr size_t kUngrouped = std::numeric_limits<size_t>::max();

  std::vector<size_t> group_of;
  size_t num_groups = 0;
};

/// SGB-U — unsupervised similarity grouping:
///   GROUP BY col MAXIMUM_ELEMENT_SEPARATION s [MAXIMUM_GROUP_DIAMETER d]
///
/// Sorted values are segmented greedily: a value starts a new group when
/// its gap to the previous value exceeds `max_separation`, or when adding
/// it would stretch the group beyond `max_diameter` (when given).
///
/// Errors: InvalidArgument for negative/non-finite limits.
Result<Grouping1D> SgbUnsupervised(std::span<const double> values,
                                   double max_separation,
                                   std::optional<double> max_diameter = {});

/// SGB-A — grouping around a set of central points:
///   GROUP BY col AROUND (c1, ..., ck) [MAXIMUM_ELEMENT_SEPARATION 2r |
///                                      MAXIMUM_GROUP_DIAMETER 2d]
///
/// Every value joins the group of its nearest center; with a limit given,
/// values farther than r (resp. d) from that center stay ungrouped. Group
/// i corresponds to centers[i] after sorting centers ascending.
///
/// Errors: InvalidArgument when `centers` is empty or a limit is invalid.
Result<Grouping1D> SgbAround(std::span<const double> values,
                             std::span<const double> centers,
                             std::optional<double> max_separation = {},
                             std::optional<double> max_diameter = {});

/// SGB-D — grouping using delimiters:
///   GROUP BY col DELIMITED BY (d1, ..., dk)
///
/// The k delimiters split the number line into k+1 segments; a value equal
/// to a delimiter falls into the segment below it. Only non-empty segments
/// receive group ids (dense numbering from the lowest segment up).
Result<Grouping1D> SgbDelimited(std::span<const double> values,
                                std::span<const double> delimiters);

}  // namespace sgb::core

#endif  // SGB_CORE_SGB1D_H_
