#ifndef SGB_CORE_SGB_ALL_H_
#define SGB_CORE_SGB_ALL_H_

#include <span>
#include <vector>

#include "common/status.h"
#include "core/sgb_types.h"
#include "geom/point.h"

namespace sgb::core {

/// Execution counters for the benchmark harness (Figures 9–10 report how the
/// three algorithm tiers trade distance computations for index maintenance).
struct SgbAllStats {
  size_t distance_computations = 0;  ///< exact δ evaluations
  size_t rectangle_tests = 0;        ///< ε-All rectangle membership tests
  size_t hull_tests = 0;             ///< convex-hull refinements (L2 only)
  size_t index_window_queries = 0;   ///< Groups_IX window queries
  size_t groups_created = 0;
  size_t regroup_rounds = 0;  ///< FORM-NEW-GROUP recursion depth (paper's m)
  /// Parallel runs only: number of independent ε-components and the
  /// per-worker-slot breakdown (aggregate counters above always include
  /// every worker).
  size_t parallel_partitions = 0;
  std::vector<SgbWorkerStats> workers;
};

/// The SGB-All (distance-to-all) operator of Section 4.1.
///
/// Streams over `points` in input order, maintaining the invariant that
/// every pair of points inside a group satisfies the similarity predicate
/// ξδ,ε. Points matching several groups are arbitrated by
/// `options.on_overlap`; see Procedures 1–6 of the paper. Like the paper's
/// operator, the result is order-sensitive: permuting the input can change
/// the formed groups (but never the pairwise-ε invariant).
///
/// All three `options.algorithm` tiers produce identical groupings for the
/// same input, options and seed; they differ only in cost.
///
/// Errors: InvalidArgument when ε is negative or not finite.
Result<Grouping> SgbAll(std::span<const geom::Point> points,
                        const SgbAllOptions& options,
                        SgbAllStats* stats = nullptr);

}  // namespace sgb::core

#endif  // SGB_CORE_SGB_ALL_H_
