#include "core/sgb1d.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "obs/metrics.h"

namespace sgb::core {

namespace {

Status ValidateLimit(const char* name, double value) {
  if (!(value >= 0.0) || !std::isfinite(value)) {
    return Status::InvalidArgument(std::string("SGB-1D: ") + name +
                                   " must be finite and >= 0");
  }
  return Status::OK();
}

/// Mirrors the multi-dimensional operators: every successful run reports
/// its volume into the global registry under "sgb.1d.<variant>.*".
void Publish1d(const char* variant, size_t num_values,
               const Grouping1D& grouping) {
  auto& registry = obs::MetricsRegistry::Global();
  const std::string prefix = std::string("sgb.1d.") + variant;
  registry.GetCounter(prefix + ".invocations").Add(1);
  registry.GetCounter(prefix + ".values").Add(num_values);
  registry.GetCounter(prefix + ".groups_created").Add(grouping.num_groups);
}

}  // namespace

Result<Grouping1D> SgbUnsupervised(std::span<const double> values,
                                   double max_separation,
                                   std::optional<double> max_diameter) {
  SGB_RETURN_IF_ERROR(ValidateLimit("MAXIMUM_ELEMENT_SEPARATION",
                                    max_separation));
  if (max_diameter.has_value()) {
    SGB_RETURN_IF_ERROR(ValidateLimit("MAXIMUM_GROUP_DIAMETER",
                                      *max_diameter));
  }

  const size_t n = values.size();
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&values](size_t a, size_t b) { return values[a] < values[b]; });

  Grouping1D result;
  result.group_of.assign(n, Grouping1D::kUngrouped);
  double group_start = 0.0;
  double prev = 0.0;
  for (size_t k = 0; k < n; ++k) {
    const double v = values[order[k]];
    const bool new_group =
        k == 0 || (v - prev) > max_separation ||
        (max_diameter.has_value() && (v - group_start) > *max_diameter);
    if (new_group) {
      ++result.num_groups;
      group_start = v;
    }
    result.group_of[order[k]] = result.num_groups - 1;
    prev = v;
  }
  Publish1d("unsupervised", n, result);
  return result;
}

Result<Grouping1D> SgbAround(std::span<const double> values,
                             std::span<const double> centers,
                             std::optional<double> max_separation,
                             std::optional<double> max_diameter) {
  if (centers.empty()) {
    return Status::InvalidArgument("SGB-A: AROUND requires >= 1 center");
  }
  if (max_separation.has_value()) {
    SGB_RETURN_IF_ERROR(ValidateLimit("MAXIMUM_ELEMENT_SEPARATION",
                                      *max_separation));
  }
  if (max_diameter.has_value()) {
    SGB_RETURN_IF_ERROR(ValidateLimit("MAXIMUM_GROUP_DIAMETER",
                                      *max_diameter));
  }

  std::vector<double> sorted_centers(centers.begin(), centers.end());
  std::sort(sorted_centers.begin(), sorted_centers.end());
  sorted_centers.erase(
      std::unique(sorted_centers.begin(), sorted_centers.end()),
      sorted_centers.end());

  // The reach limit around each center: separation 2r keeps values within
  // r of the center; diameter 2d likewise caps the group's half-width at d.
  double reach = std::numeric_limits<double>::infinity();
  if (max_separation.has_value()) reach = *max_separation / 2.0;
  if (max_diameter.has_value()) reach = std::min(reach, *max_diameter / 2.0);

  Grouping1D result;
  result.group_of.assign(values.size(), Grouping1D::kUngrouped);
  result.num_groups = sorted_centers.size();
  for (size_t i = 0; i < values.size(); ++i) {
    const double v = values[i];
    // Nearest center via binary search; ties go to the lower center.
    const auto it = std::lower_bound(sorted_centers.begin(),
                                     sorted_centers.end(), v);
    size_t best;
    if (it == sorted_centers.begin()) {
      best = 0;
    } else if (it == sorted_centers.end()) {
      best = sorted_centers.size() - 1;
    } else {
      const size_t hi = static_cast<size_t>(it - sorted_centers.begin());
      const size_t lo = hi - 1;
      best = (v - sorted_centers[lo]) <= (sorted_centers[hi] - v) ? lo : hi;
    }
    if (std::fabs(v - sorted_centers[best]) <= reach) {
      result.group_of[i] = best;
    }
  }
  Publish1d("around", values.size(), result);
  return result;
}

Result<Grouping1D> SgbDelimited(std::span<const double> values,
                                std::span<const double> delimiters) {
  std::vector<double> sorted(delimiters.begin(), delimiters.end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  const size_t segments = sorted.size() + 1;
  std::vector<size_t> segment_of(values.size());
  std::vector<size_t> count(segments, 0);
  for (size_t i = 0; i < values.size(); ++i) {
    // Number of delimiters strictly below the value: a value equal to a
    // delimiter lands in the segment below it.
    const size_t seg = static_cast<size_t>(
        std::lower_bound(sorted.begin(), sorted.end(), values[i]) -
        sorted.begin());
    segment_of[i] = seg;
    ++count[seg];
  }

  // Dense ids over the non-empty segments, lowest first.
  std::vector<size_t> dense(segments, Grouping1D::kUngrouped);
  Grouping1D result;
  for (size_t s = 0; s < segments; ++s) {
    if (count[s] > 0) dense[s] = result.num_groups++;
  }
  result.group_of.resize(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    result.group_of[i] = dense[segment_of[i]];
  }
  Publish1d("delimited", values.size(), result);
  return result;
}

}  // namespace sgb::core
