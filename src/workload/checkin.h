#ifndef SGB_WORKLOAD_CHECKIN_H_
#define SGB_WORKLOAD_CHECKIN_H_

#include <cstdint>
#include <vector>

#include "engine/table.h"
#include "geom/point.h"

namespace sgb::workload {

/// Synthetic social check-in generator — the documented substitution for
/// the SNAP Brightkite and Gowalla datasets used in Figure 11 (DESIGN.md).
/// Check-ins are drawn from a Zipf-weighted Gaussian mixture of urban
/// hotspots plus a uniform background, reproducing the skewed spatial
/// density of the real data (dense city clusters, sparse countryside).
struct CheckinConfig {
  size_t num_checkins = 100000;
  size_t num_hotspots = 64;
  /// Hotspot spread, in the same units as the coordinate box.
  double hotspot_stddev = 0.5;
  /// Zipf skew of hotspot popularity.
  double popularity_skew = 1.0;
  /// Fraction of check-ins scattered uniformly over the box.
  double background_fraction = 0.05;
  /// Coordinate box (defaults roughly to a continental lat/lon extent).
  geom::Point lo{-120.0, 25.0};
  geom::Point hi{-70.0, 50.0};
  uint64_t seed = 11;
};

/// Brightkite-like preset: fewer, tighter hotspots.
CheckinConfig BrightkiteLike(size_t num_checkins, uint64_t seed = 11);

/// Gowalla-like preset: more hotspots, heavier background.
CheckinConfig GowallaLike(size_t num_checkins, uint64_t seed = 13);

/// The raw 2-D check-in coordinates (input to the core operators).
std::vector<geom::Point> GenerateCheckins(const CheckinConfig& config);

/// The same data as a relation (user_id, latitude, longitude) for the
/// SQL-level examples; `users` caps the user-id range.
engine::TablePtr GenerateCheckinTable(const CheckinConfig& config,
                                      size_t users = 1000);

/// A timestamped check-in stream for the continuous-query driver
/// (docs/STREAMING.md): the spatial mixture of `base` paired with event
/// times spread over [0, duration), delivered in an arrival order that is
/// mostly increasing but jittered — each check-in may arrive up to
/// `out_of_order_jitter` time units later than a check-in stamped after
/// it, which exercises the watermark/late-row machinery.
struct CheckinStreamConfig {
  CheckinConfig base;
  /// Event-time extent; timestamps are uniform over [0, duration).
  double duration = 100.0;
  /// Maximum event-time displacement between stamp order and arrival
  /// order (0 = arrivals exactly in event-time order).
  double out_of_order_jitter = 5.0;
  uint64_t seed = 17;
};

/// Rows of (user_id, event_time, x, y) in *arrival* order; `users` caps
/// the user-id range.
std::vector<engine::Row> GenerateCheckinStream(
    const CheckinStreamConfig& config, size_t users = 1000);

}  // namespace sgb::workload

#endif  // SGB_WORKLOAD_CHECKIN_H_
