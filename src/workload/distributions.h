#ifndef SGB_WORKLOAD_DISTRIBUTIONS_H_
#define SGB_WORKLOAD_DISTRIBUTIONS_H_

#include <vector>

#include "common/random.h"
#include "geom/point.h"

namespace sgb::workload {

/// Zipf(s) sampler over ranks {0, ..., n-1} via inverse-CDF table lookup.
/// Used to give check-in hotspots a skewed popularity, as in real
/// location-based social-network data.
class ZipfDistribution {
 public:
  ZipfDistribution(size_t n, double skew);

  /// Samples a rank; rank 0 is the most popular.
  size_t Sample(Rng& rng) const;

 private:
  std::vector<double> cdf_;
};

/// A weighted 2-D Gaussian mixture with an optional uniform background —
/// the synthetic stand-in for the Brightkite/Gowalla check-in clouds
/// (documented substitution, DESIGN.md).
class GaussianMixture2D {
 public:
  struct Component {
    geom::Point mean;
    double stddev = 1.0;
    double weight = 1.0;
  };

  void AddComponent(const Component& component);

  /// Fraction of samples drawn uniformly from the bounding box instead of
  /// a component (background noise).
  void SetBackground(double fraction, const geom::Point& lo,
                     const geom::Point& hi);

  geom::Point Sample(Rng& rng) const;

 private:
  std::vector<Component> components_;
  double total_weight_ = 0.0;
  double background_fraction_ = 0.0;
  geom::Point lo_{0.0, 0.0};
  geom::Point hi_{1.0, 1.0};
};

}  // namespace sgb::workload

#endif  // SGB_WORKLOAD_DISTRIBUTIONS_H_
