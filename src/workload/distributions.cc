#include "workload/distributions.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace sgb::workload {

ZipfDistribution::ZipfDistribution(size_t n, double skew) {
  cdf_.reserve(n);
  double total = 0.0;
  for (size_t k = 1; k <= n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k), skew);
    cdf_.push_back(total);
  }
  for (double& c : cdf_) c /= total;
}

size_t ZipfDistribution::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<size_t>(std::min<std::ptrdiff_t>(
      it - cdf_.begin(), static_cast<std::ptrdiff_t>(cdf_.size()) - 1));
}

void GaussianMixture2D::AddComponent(const Component& component) {
  components_.push_back(component);
  total_weight_ += component.weight;
}

void GaussianMixture2D::SetBackground(double fraction, const geom::Point& lo,
                                      const geom::Point& hi) {
  background_fraction_ = fraction;
  lo_ = lo;
  hi_ = hi;
}

geom::Point GaussianMixture2D::Sample(Rng& rng) const {
  if (components_.empty() || rng.NextDouble() < background_fraction_) {
    return geom::Point{rng.NextUniform(lo_.x, hi_.x),
                       rng.NextUniform(lo_.y, hi_.y)};
  }
  double target = rng.NextDouble() * total_weight_;
  const Component* chosen = &components_.back();
  for (const Component& c : components_) {
    target -= c.weight;
    if (target <= 0.0) {
      chosen = &c;
      break;
    }
  }
  return geom::Point{rng.NextGaussian(chosen->mean.x, chosen->stddev),
                     rng.NextGaussian(chosen->mean.y, chosen->stddev)};
}

}  // namespace sgb::workload
