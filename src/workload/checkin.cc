#include "workload/checkin.h"

#include <algorithm>
#include <numeric>

#include "common/fault_injection.h"
#include "common/query_context.h"
#include "common/random.h"
#include "workload/distributions.h"

namespace sgb::workload {

// Fires at generation entry, before any check-ins are materialized.
static FaultSite g_checkin_generate_fault("workload.checkin.generate",
                                          Status::Code::kInternal);

using engine::Column;
using engine::DataType;
using engine::Row;
using engine::Schema;
using engine::Table;
using engine::Value;

CheckinConfig BrightkiteLike(size_t num_checkins, uint64_t seed) {
  CheckinConfig config;
  config.num_checkins = num_checkins;
  config.num_hotspots = 48;
  config.hotspot_stddev = 0.35;
  config.popularity_skew = 1.1;
  config.background_fraction = 0.04;
  config.seed = seed;
  return config;
}

CheckinConfig GowallaLike(size_t num_checkins, uint64_t seed) {
  CheckinConfig config;
  config.num_checkins = num_checkins;
  config.num_hotspots = 96;
  config.hotspot_stddev = 0.5;
  config.popularity_skew = 0.9;
  config.background_fraction = 0.08;
  config.seed = seed;
  return config;
}

std::vector<geom::Point> GenerateCheckins(const CheckinConfig& config) {
  {
    Status fault = g_checkin_generate_fault.Check();
    if (!fault.ok()) throw QueryAbort(std::move(fault));
  }
  Rng rng(config.seed);

  // Hotspot centers scattered uniformly; popularity is Zipf-distributed.
  std::vector<geom::Point> centers;
  centers.reserve(config.num_hotspots);
  for (size_t i = 0; i < config.num_hotspots; ++i) {
    centers.push_back(geom::Point{rng.NextUniform(config.lo.x, config.hi.x),
                                  rng.NextUniform(config.lo.y, config.hi.y)});
  }
  ZipfDistribution popularity(config.num_hotspots, config.popularity_skew);

  std::vector<geom::Point> checkins;
  checkins.reserve(config.num_checkins);
  for (size_t i = 0; i < config.num_checkins; ++i) {
    if (rng.NextDouble() < config.background_fraction) {
      checkins.push_back(
          geom::Point{rng.NextUniform(config.lo.x, config.hi.x),
                      rng.NextUniform(config.lo.y, config.hi.y)});
      continue;
    }
    const geom::Point& center = centers[popularity.Sample(rng)];
    checkins.push_back(
        geom::Point{rng.NextGaussian(center.x, config.hotspot_stddev),
                    rng.NextGaussian(center.y, config.hotspot_stddev)});
  }
  return checkins;
}

engine::TablePtr GenerateCheckinTable(const CheckinConfig& config,
                                      size_t users) {
  const std::vector<geom::Point> checkins = GenerateCheckins(config);
  Rng rng(config.seed ^ 0xabcdef);
  auto table = std::make_shared<Table>(Schema({
      Column{"user_id", DataType::kInt64, ""},
      Column{"latitude", DataType::kDouble, ""},
      Column{"longitude", DataType::kDouble, ""},
  }));
  table->Reserve(checkins.size());
  for (const geom::Point& p : checkins) {
    Row row;
    row.push_back(Value::Int(rng.NextInt(1, static_cast<int64_t>(users))));
    // The generator uses x = longitude-like, y = latitude-like axes.
    row.push_back(Value::Double(p.y));
    row.push_back(Value::Double(p.x));
    (void)table->Append(std::move(row));
  }
  return table;
}

std::vector<engine::Row> GenerateCheckinStream(
    const CheckinStreamConfig& config, size_t users) {
  const std::vector<geom::Point> checkins = GenerateCheckins(config.base);
  Rng rng(config.seed);

  std::vector<double> times(checkins.size());
  for (double& t : times) t = rng.NextUniform(0.0, config.duration);

  // Arrival order: event-time order displaced by at most the jitter. A
  // check-in's arrival rank is its event time plus a uniform delay in
  // [0, jitter), so it can only arrive after check-ins stamped up to
  // `jitter` later than it — bounded disorder, like a real feed.
  std::vector<size_t> order(checkins.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::vector<double> arrival_rank(checkins.size());
  for (size_t i = 0; i < checkins.size(); ++i) {
    arrival_rank[i] =
        times[i] + rng.NextUniform(0.0, config.out_of_order_jitter);
  }
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (arrival_rank[a] != arrival_rank[b]) {
      return arrival_rank[a] < arrival_rank[b];
    }
    return a < b;
  });

  std::vector<Row> rows;
  rows.reserve(checkins.size());
  for (size_t i : order) {
    Row row;
    row.push_back(Value::Int(rng.NextInt(1, static_cast<int64_t>(users))));
    row.push_back(Value::Double(times[i]));
    row.push_back(Value::Double(checkins[i].x));
    row.push_back(Value::Double(checkins[i].y));
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace sgb::workload
