#ifndef SGB_WORKLOAD_TPCH_H_
#define SGB_WORKLOAD_TPCH_H_

#include <cstdint>
#include <string>

#include "engine/catalog.h"
#include "engine/table.h"

namespace sgb::workload {

/// Deterministic TPC-H-shaped data generator (documented substitution for
/// dbgen, DESIGN.md): produces the five tables and the columns the paper's
/// evaluation queries touch, with FK-consistent keys and the TPC-H value
/// ranges. The paper's scale factor SF maps to `customers_per_sf * SF`
/// customer rows (etc.), so the SF 1..60 sweeps of Figures 10 and 12 run in
/// seconds on one core while preserving the table-size ratios
/// (orders = 10x customers in TPC-H; lineitem ~= 4 per order).
struct TpchConfig {
  double scale_factor = 1.0;
  uint64_t seed = 7;

  // Micro-scale row counts per unit of scale factor.
  size_t customers_per_sf = 1000;
  size_t orders_per_sf = 2000;
  size_t suppliers_per_sf = 100;
  size_t parts_per_sf = 200;
  /// Line items per order are drawn uniformly from [1, 2*avg-1].
  size_t avg_lines_per_order = 4;
};

/// Generated tables:
///   customer (c_custkey, c_acctbal, c_nationkey)
///   orders   (o_orderkey, o_custkey, o_totalprice, o_orderdate)
///   lineitem (l_orderkey, l_partkey, l_suppkey, l_quantity,
///             l_extendedprice, l_discount, l_shipdate, l_receiptdate,
///             l_shipdays, l_receiptdays)
///   partsupp (ps_partkey, ps_suppkey, ps_supplycost)
///   supplier (s_suppkey, s_acctbal, s_nationkey)
///
/// Dates exist both as ISO strings (l_shipdate, comparable with string
/// literals) and as integer day numbers (l_shipdays, for date arithmetic —
/// the engine does not subtract date strings; documented substitution).
struct TpchData {
  engine::TablePtr customer;
  engine::TablePtr orders;
  engine::TablePtr lineitem;
  engine::TablePtr partsupp;
  engine::TablePtr supplier;

  /// Registers all five tables under their TPC-H names.
  void RegisterAll(engine::Catalog& catalog) const;
};

TpchData GenerateTpch(const TpchConfig& config);

/// Days since 1970-01-01 -> "yyyy-mm-dd" (proleptic Gregorian).
std::string CivilFromDays(int64_t days);

/// "1992-01-01"'s day number, the start of the TPC-H date range.
int64_t TpchDateRangeStart();

}  // namespace sgb::workload

#endif  // SGB_WORKLOAD_TPCH_H_
