#ifndef SGB_WORKLOAD_QUERIES_H_
#define SGB_WORKLOAD_QUERIES_H_

#include <string>

#include "core/sgb_types.h"
#include "geom/point.h"

namespace sgb::workload {

/// The performance-evaluation queries of Table 2, expressed in this
/// engine's SQL dialect. Adaptations from the paper's (partly informal)
/// listings, documented in DESIGN.md:
///  * derived tables carry the GROUP BY the paper's prose implies;
///  * date arithmetic uses the integer day columns (l_receiptdays -
///    l_shipdays) instead of subtracting date strings;
///  * the interval expression is folded into a literal;
///  * selective constants are scaled to the micro data so result sets stay
///    non-trivial (the paper's 3000-quantity threshold assumes dbgen row
///    counts).
///
/// GBn is the plain (equality) GROUP BY counterpart used by the Figure 12
/// overhead comparison; SGBn are the similarity versions.

/// SQL fragment for a metric keyword.
const char* MetricKeyword(geom::Metric metric);

/// SQL fragment for an ON-OVERLAP action.
const char* OverlapKeyword(core::OverlapClause clause);

// --- "buying power" family (customers joined with big orders) -------------

/// GB1: large-volume customers (TPC-H Q18 flavor).
std::string Gb1();

/// SGB1: SGB-All over (account balance, total spend).
std::string Sgb1(double epsilon, geom::Metric metric,
                 core::OverlapClause on_overlap);

/// SGB2: SGB-Any over the same attributes.
std::string Sgb2(double epsilon, geom::Metric metric);

// --- "parts profit" family (lineitem x partsupp x supplier) ----------------

/// GB2: plain GROUP BY over (profit, shipping time) per part.
std::string Gb2();

/// SGB3: SGB-All over (profit, shipping time).
std::string Sgb3(double epsilon, geom::Metric metric,
                 core::OverlapClause on_overlap);

/// SGB4: SGB-Any over the same attributes.
std::string Sgb4(double epsilon, geom::Metric metric);

// --- "top supplier" family (supplier revenue, TPC-H Q15 flavor) ------------

/// GB3: plain GROUP BY over (revenue, account balance) per supplier.
std::string Gb3();

/// SGB5: SGB-All over (revenue, account balance).
std::string Sgb5(double epsilon, geom::Metric metric,
                 core::OverlapClause on_overlap);

/// SGB6: SGB-Any over the same attributes.
std::string Sgb6(double epsilon, geom::Metric metric);

}  // namespace sgb::workload

#endif  // SGB_WORKLOAD_QUERIES_H_
