#include "workload/queries.h"

namespace sgb::workload {

const char* MetricKeyword(geom::Metric metric) {
  return metric == geom::Metric::kL2 ? "L2" : "LINF";
}

const char* OverlapKeyword(core::OverlapClause clause) {
  switch (clause) {
    case core::OverlapClause::kJoinAny:
      return "JOIN-ANY";
    case core::OverlapClause::kEliminate:
      return "ELIMINATE";
    case core::OverlapClause::kFormNewGroup:
      return "FORM-NEW-GROUP";
  }
  return "JOIN-ANY";
}

namespace {

std::string AllClause(double epsilon, geom::Metric metric,
                      core::OverlapClause on_overlap) {
  return std::string("DISTANCE-TO-ALL ") + MetricKeyword(metric) +
         " WITHIN " + std::to_string(epsilon) + " ON-OVERLAP " +
         OverlapKeyword(on_overlap);
}

std::string AnyClause(double epsilon, geom::Metric metric) {
  return std::string("DISTANCE-TO-ANY ") + MetricKeyword(metric) +
         " WITHIN " + std::to_string(epsilon);
}

// --- buying power: customers with account balance vs. total spend ---------
// The grouping attributes are normalized into ~[0, 1] ranges so the paper's
// ε sweep (0.1 .. 0.9) is meaningful: ab = acctbal / 10^4, tp = spend / 10^6.

std::string BuyingPowerBody() {
  return "FROM (SELECT c_custkey, c_acctbal / 10000 AS ab"
         "      FROM customer WHERE c_acctbal > 100) AS r1,"
         "     (SELECT o_custkey, sum(o_totalprice) / 1000000 AS tp"
         "      FROM orders"
         "      WHERE o_orderkey IN (SELECT l_orderkey FROM lineitem"
         "                           GROUP BY l_orderkey"
         "                           HAVING sum(l_quantity) > 100)"
         "        AND o_totalprice > 30000"
         "      GROUP BY o_custkey) AS r2 "
         "WHERE r1.c_custkey = r2.o_custkey ";
}

std::string BuyingPowerSelect() {
  return "SELECT max(ab), min(tp), max(tp), avg(ab), "
         "array_agg(r1.c_custkey) ";
}

// --- parts profit: per-part profit vs. shipping time -----------------------

std::string PartsProfitBody() {
  return "FROM (SELECT ps_partkey AS partkey,"
         "             sum(l_extendedprice * (1 - l_discount)"
         "                 - ps_supplycost * l_quantity) / 1000000 AS tprof,"
         "             sum(l_receiptdays - l_shipdays) / 1000 AS stime"
         "      FROM lineitem, partsupp, supplier"
         "      WHERE ps_partkey = l_partkey AND ps_suppkey = l_suppkey"
         "        AND s_suppkey = ps_suppkey"
         "      GROUP BY ps_partkey) AS profit ";
}

std::string PartsProfitSelect() {
  return "SELECT count(*), sum(tprof), sum(stime) ";
}

// --- top supplier: revenue vs. account balance -----------------------------

std::string TopSupplierBody() {
  return "FROM (SELECT l_suppkey AS suppkey,"
         "             sum(l_extendedprice * (1 - l_discount)) / 1000000"
         "                 AS trevenue,"
         "             max(s_acctbal) / 10000 AS acctbal"
         "      FROM lineitem, supplier"
         "      WHERE s_suppkey = l_suppkey"
         "        AND l_shipdate > '1995-01-01'"
         "        AND l_shipdate < '1996-11-01'"
         "      GROUP BY l_suppkey) AS r ";
}

std::string TopSupplierSelect() {
  return "SELECT array_agg(suppkey), sum(trevenue), sum(acctbal) ";
}

}  // namespace

std::string Gb1() {
  return BuyingPowerSelect() + BuyingPowerBody() + "GROUP BY ab, tp";
}

std::string Sgb1(double epsilon, geom::Metric metric,
                 core::OverlapClause on_overlap) {
  return BuyingPowerSelect() + BuyingPowerBody() + "GROUP BY ab, tp " +
         AllClause(epsilon, metric, on_overlap);
}

std::string Sgb2(double epsilon, geom::Metric metric) {
  return BuyingPowerSelect() + BuyingPowerBody() + "GROUP BY ab, tp " +
         AnyClause(epsilon, metric);
}

std::string Gb2() {
  return PartsProfitSelect() + PartsProfitBody() + "GROUP BY tprof, stime";
}

std::string Sgb3(double epsilon, geom::Metric metric,
                 core::OverlapClause on_overlap) {
  return PartsProfitSelect() + PartsProfitBody() + "GROUP BY tprof, stime " +
         AllClause(epsilon, metric, on_overlap);
}

std::string Sgb4(double epsilon, geom::Metric metric) {
  return PartsProfitSelect() + PartsProfitBody() + "GROUP BY tprof, stime " +
         AnyClause(epsilon, metric);
}

std::string Gb3() {
  return TopSupplierSelect() + TopSupplierBody() +
         "GROUP BY trevenue, acctbal";
}

std::string Sgb5(double epsilon, geom::Metric metric,
                 core::OverlapClause on_overlap) {
  return TopSupplierSelect() + TopSupplierBody() +
         "GROUP BY trevenue, acctbal " + AllClause(epsilon, metric,
                                                   on_overlap);
}

std::string Sgb6(double epsilon, geom::Metric metric) {
  return TopSupplierSelect() + TopSupplierBody() +
         "GROUP BY trevenue, acctbal " + AnyClause(epsilon, metric);
}

}  // namespace sgb::workload
