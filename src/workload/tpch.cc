#include "workload/tpch.h"

#include <cmath>
#include <cstdio>

#include "common/fault_injection.h"
#include "common/query_context.h"
#include "common/random.h"

namespace sgb::workload {

using engine::Column;
using engine::DataType;
using engine::Row;
using engine::Schema;
using engine::Table;
using engine::TablePtr;
using engine::Value;

namespace {

/// Howard Hinnant's civil-from-days algorithm.
void CivilFromDaysImpl(int64_t z, int* year, unsigned* month, unsigned* day) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  *day = doy - (153 * mp + 2) / 5 + 1;
  *month = mp < 10 ? mp + 3 : mp - 9;
  *year = static_cast<int>(y + (*month <= 2));
}

int64_t DaysFromCivil(int year, unsigned month, unsigned day) {
  year -= month <= 2;
  const int64_t era = (year >= 0 ? year : year - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(year - era * 400);
  const unsigned doy =
      (153 * (month > 2 ? month - 3 : month + 9) + 2) / 5 + day - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

double RoundCents(double v) { return std::nearbyint(v * 100.0) / 100.0; }

}  // namespace

std::string CivilFromDays(int64_t days) {
  int year;
  unsigned month;
  unsigned day;
  CivilFromDaysImpl(days, &year, &month, &day);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02u-%02u", year, month, day);
  return buf;
}

int64_t TpchDateRangeStart() { return DaysFromCivil(1992, 1, 1); }

void TpchData::RegisterAll(engine::Catalog& catalog) const {
  catalog.Register("customer", customer);
  catalog.Register("orders", orders);
  catalog.Register("lineitem", lineitem);
  catalog.Register("partsupp", partsupp);
  catalog.Register("supplier", supplier);
}

// Fires at generation entry, before any tables are materialized.
static FaultSite g_tpch_generate_fault("workload.tpch.generate",
                                       Status::Code::kInternal);

TpchData GenerateTpch(const TpchConfig& config) {
  {
    Status fault = g_tpch_generate_fault.Check();
    if (!fault.ok()) throw QueryAbort(std::move(fault));
  }
  Rng rng(config.seed);
  const auto scaled = [&config](size_t per_sf) {
    const double n = static_cast<double>(per_sf) * config.scale_factor;
    return n < 1.0 ? size_t{1} : static_cast<size_t>(n);
  };
  const size_t num_customers = scaled(config.customers_per_sf);
  const size_t num_orders = scaled(config.orders_per_sf);
  const size_t num_suppliers = scaled(config.suppliers_per_sf);
  const size_t num_parts = scaled(config.parts_per_sf);

  const int64_t date_start = TpchDateRangeStart();
  const int64_t date_span = 7 * 365;  // 1992-1998, as in TPC-H

  // customer ---------------------------------------------------------------
  auto customer = std::make_shared<Table>(Schema({
      Column{"c_custkey", DataType::kInt64, ""},
      Column{"c_acctbal", DataType::kDouble, ""},
      Column{"c_nationkey", DataType::kInt64, ""},
  }));
  customer->Reserve(num_customers);
  for (size_t i = 1; i <= num_customers; ++i) {
    Row row;
    row.push_back(Value::Int(static_cast<int64_t>(i)));
    row.push_back(Value::Double(RoundCents(rng.NextUniform(-999.99, 9999.99))));
    row.push_back(Value::Int(rng.NextInt(0, 24)));
    (void)customer->Append(std::move(row));
  }

  // orders -----------------------------------------------------------------
  auto orders = std::make_shared<Table>(Schema({
      Column{"o_orderkey", DataType::kInt64, ""},
      Column{"o_custkey", DataType::kInt64, ""},
      Column{"o_totalprice", DataType::kDouble, ""},
      Column{"o_orderdate", DataType::kString, ""},
  }));
  orders->Reserve(num_orders);
  for (size_t i = 1; i <= num_orders; ++i) {
    Row row;
    row.push_back(Value::Int(static_cast<int64_t>(i)));
    row.push_back(Value::Int(rng.NextInt(1, static_cast<int64_t>(num_customers))));
    row.push_back(Value::Double(RoundCents(rng.NextUniform(857.71, 555285.16))));
    row.push_back(Value::Str(CivilFromDays(date_start + rng.NextInt(0, date_span))));
    (void)orders->Append(std::move(row));
  }

  // lineitem ---------------------------------------------------------------
  auto lineitem = std::make_shared<Table>(Schema({
      Column{"l_orderkey", DataType::kInt64, ""},
      Column{"l_partkey", DataType::kInt64, ""},
      Column{"l_suppkey", DataType::kInt64, ""},
      Column{"l_quantity", DataType::kDouble, ""},
      Column{"l_extendedprice", DataType::kDouble, ""},
      Column{"l_discount", DataType::kDouble, ""},
      Column{"l_shipdate", DataType::kString, ""},
      Column{"l_receiptdate", DataType::kString, ""},
      Column{"l_shipdays", DataType::kInt64, ""},
      Column{"l_receiptdays", DataType::kInt64, ""},
  }));
  const int64_t max_lines =
      2 * static_cast<int64_t>(config.avg_lines_per_order) - 1;
  lineitem->Reserve(num_orders * config.avg_lines_per_order);
  for (size_t o = 1; o <= num_orders; ++o) {
    const int64_t lines = rng.NextInt(1, max_lines);
    for (int64_t l = 0; l < lines; ++l) {
      const int64_t partkey = rng.NextInt(1, static_cast<int64_t>(num_parts));
      // As in TPC-H, each part has 4 eligible suppliers; the line picks one
      // of them so the lineitem-partsupp join is lossless.
      const int64_t suppkey =
          ((partkey - 1) * 4 + rng.NextInt(0, 3)) %
              static_cast<int64_t>(num_suppliers) +
          1;
      const int64_t ship = date_start + rng.NextInt(0, date_span);
      const int64_t receipt = ship + rng.NextInt(1, 30);
      Row row;
      row.push_back(Value::Int(static_cast<int64_t>(o)));
      row.push_back(Value::Int(partkey));
      row.push_back(Value::Int(suppkey));
      row.push_back(Value::Double(static_cast<double>(rng.NextInt(1, 50))));
      row.push_back(Value::Double(RoundCents(rng.NextUniform(900.0, 104949.5))));
      row.push_back(Value::Double(
          static_cast<double>(rng.NextInt(0, 10)) / 100.0));
      row.push_back(Value::Str(CivilFromDays(ship)));
      row.push_back(Value::Str(CivilFromDays(receipt)));
      row.push_back(Value::Int(ship));
      row.push_back(Value::Int(receipt));
      (void)lineitem->Append(std::move(row));
    }
  }

  // partsupp ---------------------------------------------------------------
  auto partsupp = std::make_shared<Table>(Schema({
      Column{"ps_partkey", DataType::kInt64, ""},
      Column{"ps_suppkey", DataType::kInt64, ""},
      Column{"ps_supplycost", DataType::kDouble, ""},
  }));
  partsupp->Reserve(num_parts * 4);
  for (size_t p = 1; p <= num_parts; ++p) {
    // 4 suppliers per part, as in TPC-H; mirrors the lineitem pick above.
    for (int64_t k = 0; k < 4; ++k) {
      const int64_t suppkey =
          ((static_cast<int64_t>(p) - 1) * 4 + k) %
              static_cast<int64_t>(num_suppliers) +
          1;
      Row row;
      row.push_back(Value::Int(static_cast<int64_t>(p)));
      row.push_back(Value::Int(suppkey));
      row.push_back(Value::Double(RoundCents(rng.NextUniform(1.0, 1000.0))));
      (void)partsupp->Append(std::move(row));
    }
  }

  // supplier ---------------------------------------------------------------
  auto supplier = std::make_shared<Table>(Schema({
      Column{"s_suppkey", DataType::kInt64, ""},
      Column{"s_acctbal", DataType::kDouble, ""},
      Column{"s_nationkey", DataType::kInt64, ""},
  }));
  supplier->Reserve(num_suppliers);
  for (size_t i = 1; i <= num_suppliers; ++i) {
    Row row;
    row.push_back(Value::Int(static_cast<int64_t>(i)));
    row.push_back(Value::Double(RoundCents(rng.NextUniform(-999.99, 9999.99))));
    row.push_back(Value::Int(rng.NextInt(0, 24)));
    (void)supplier->Append(std::move(row));
  }

  TpchData data;
  data.customer = std::move(customer);
  data.orders = std::move(orders);
  data.lineitem = std::move(lineitem);
  data.partsupp = std::move(partsupp);
  data.supplier = std::move(supplier);
  return data;
}

}  // namespace sgb::workload
