#ifndef SGB_INDEX_GRID_INDEX_H_
#define SGB_INDEX_GRID_INDEX_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "geom/kernels.h"
#include "geom/point.h"
#include "geom/rect.h"

namespace sgb::index {

/// Uniform hash-grid over 2-D points.
///
/// Used as an ablation alternative to the Points_IX R-tree in SGB-Any
/// (bench_ablation): with cell size = ε, an ε-window query touches at most a
/// 3x3 block of cells. The grid is simpler and often faster for uniform
/// data, but degrades when ε is far smaller/larger than the data spread —
/// exactly the trade-off the ablation measures.
class GridIndex {
 public:
  /// `cell_size` must be > 0; typically the similarity threshold ε.
  explicit GridIndex(double cell_size);

  void Insert(const geom::Point& p, uint64_t id);

  /// Visits every stored point inside `window` (inclusive bounds).
  void Search(const geom::Rect& window,
              const std::function<void(const geom::Point&, uint64_t)>& visit)
      const;

  std::vector<uint64_t> SearchIds(const geom::Rect& window) const;

  size_t size() const { return size_; }

  /// Formula-based estimate of the grid's heap footprint, for memory
  /// accounting: SoA coordinates + id per point, hash node per cell.
  size_t ApproxMemoryBytes() const {
    return size_ * (2 * sizeof(double) + sizeof(uint64_t)) +
           cells_.size() * (sizeof(CellKey) + sizeof(Cell) + sizeof(void*));
  }

 private:
  struct CellKey {
    int64_t cx;
    int64_t cy;
    friend bool operator==(const CellKey&, const CellKey&) = default;
  };
  struct CellKeyHash {
    size_t operator()(const CellKey& k) const {
      const uint64_t a = static_cast<uint64_t>(k.cx) * 0x9e3779b97f4a7c15ULL;
      const uint64_t b = static_cast<uint64_t>(k.cy) * 0xc2b2ae3d27d4eb4fULL;
      return a ^ (b + 0x165667b19e3779f9ULL + (a << 6) + (a >> 2));
    }
  };
  /// Cell payload in SoA form: coordinate columns plus a parallel id
  /// vector, so Search can run the block rect-filter kernel per cell.
  struct Cell {
    geom::PointColumns soa;
    std::vector<uint64_t> ids;
  };

  CellKey KeyFor(const geom::Point& p) const;

  double cell_size_;
  size_t size_ = 0;
  std::unordered_map<CellKey, Cell, CellKeyHash> cells_;
};

}  // namespace sgb::index

#endif  // SGB_INDEX_GRID_INDEX_H_
