#ifndef SGB_INDEX_RTREE_ND_H_
#define SGB_INDEX_RTREE_ND_H_

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "geom/nd.h"

namespace sgb::index {

/// D-dimensional R-tree: the same Guttman design as the 2-D `RTree`
/// (quadratic split, condense-on-underflow with data-entry reinsertion,
/// least-enlargement descent), templated on the dimension so the N-D SGB
/// operators (core/sgb_nd.h) get Groups_IX / Points_IX in any dimension.
/// Header-only because it is a template.
template <size_t D>
class RTreeN {
 public:
  using Rect = geom::RectN<D>;
  using Point = geom::PointN<D>;

  explicit RTreeN(size_t max_entries = 8)
      : max_entries_(std::max<size_t>(max_entries, 4)),
        min_entries_(std::max<size_t>(2, max_entries_ * 2 / 5)),
        root_(std::make_unique<Node>()) {}

  RTreeN(const RTreeN&) = delete;
  RTreeN& operator=(const RTreeN&) = delete;
  RTreeN(RTreeN&&) noexcept = default;
  RTreeN& operator=(RTreeN&&) noexcept = default;

  void Insert(const Rect& rect, uint64_t id) {
    Entry e;
    e.rect = rect;
    e.id = id;
    InsertAtLevel(std::move(e), 1);
    ++size_;
  }

  void Insert(const Point& p, uint64_t id) { Insert(Rect{p, p}, id); }

  bool Remove(const Rect& rect, uint64_t id) {
    std::vector<Entry> orphans;
    if (!RemoveRec(root_.get(), height_, rect, id, orphans)) return false;
    --size_;
    while (!root_->leaf && root_->entries.size() == 1) {
      std::unique_ptr<Node> child = std::move(root_->entries[0].child);
      root_ = std::move(child);
      --height_;
    }
    if (!root_->leaf && root_->entries.empty()) {
      root_->leaf = true;
      height_ = 1;
    }
    for (Entry& e : orphans) InsertAtLevel(std::move(e), 1);
    return true;
  }

  void Search(const Rect& window,
              const std::function<void(const Rect&, uint64_t)>& visit) const {
    std::vector<const Node*> stack = {root_.get()};
    while (!stack.empty()) {
      const Node* node = stack.back();
      stack.pop_back();
      for (const Entry& e : node->entries) {
        if (!e.rect.Intersects(window)) continue;
        if (e.child) {
          stack.push_back(e.child.get());
        } else {
          visit(e.rect, e.id);
        }
      }
    }
  }

  std::vector<uint64_t> SearchIds(const Rect& window) const {
    std::vector<uint64_t> ids;
    Search(window, [&ids](const Rect&, uint64_t id) { ids.push_back(id); });
    return ids;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  int height() const { return height_; }

  /// Structural invariant check (test helper), as in the 2-D tree.
  bool CheckInvariants() const {
    size_t data_count = 0;
    bool ok = true;
    struct Item {
      const Node* node;
      int level;
    };
    std::vector<Item> stack = {{root_.get(), height_}};
    while (!stack.empty() && ok) {
      const auto [node, level] = stack.back();
      stack.pop_back();
      if (node->leaf != (level == 1)) ok = false;
      if (node != root_.get() && node->entries.size() < min_entries_) {
        ok = false;
      }
      if (node->entries.size() > max_entries_) ok = false;
      for (const Entry& e : node->entries) {
        if (node->leaf) {
          if (e.child) ok = false;
          ++data_count;
        } else {
          if (!e.child) {
            ok = false;
            continue;
          }
          if (!e.rect.Contains(Cover(*e.child))) ok = false;
          stack.push_back({e.child.get(), level - 1});
        }
      }
    }
    return ok && data_count == size_;
  }

 private:
  struct Node;

  struct Entry {
    Rect rect;
    uint64_t id = 0;
    std::unique_ptr<Node> child;
  };

  struct Node {
    bool leaf = true;
    std::vector<Entry> entries;
  };

  static Rect Cover(const Node& node) {
    Rect r = Rect::Empty();
    for (const Entry& e : node.entries) r.Expand(e.rect);
    return r;
  }

  std::unique_ptr<Node> MaybeSplit(Node* node) {
    if (node->entries.size() <= max_entries_) return nullptr;
    std::vector<Entry> pool = std::move(node->entries);
    node->entries.clear();
    auto sibling = std::make_unique<Node>();
    sibling->leaf = node->leaf;

    size_t si = 0;
    size_t sj = 1;
    double worst = -std::numeric_limits<double>::infinity();
    for (size_t i = 0; i + 1 < pool.size(); ++i) {
      for (size_t j = i + 1; j < pool.size(); ++j) {
        Rect merged = pool[i].rect;
        merged.Expand(pool[j].rect);
        const double d =
            merged.Area() - pool[i].rect.Area() - pool[j].rect.Area();
        if (d > worst) {
          worst = d;
          si = i;
          sj = j;
        }
      }
    }
    Rect cover1 = pool[si].rect;
    Rect cover2 = pool[sj].rect;
    node->entries.push_back(std::move(pool[si]));
    sibling->entries.push_back(std::move(pool[sj]));
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(std::max(si, sj)));
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(std::min(si, sj)));

    while (!pool.empty()) {
      if (node->entries.size() + pool.size() == min_entries_) {
        for (Entry& e : pool) {
          cover1.Expand(e.rect);
          node->entries.push_back(std::move(e));
        }
        break;
      }
      if (sibling->entries.size() + pool.size() == min_entries_) {
        for (Entry& e : pool) {
          cover2.Expand(e.rect);
          sibling->entries.push_back(std::move(e));
        }
        break;
      }
      size_t best = 0;
      double best_diff = -1.0;
      double best_d1 = 0.0;
      double best_d2 = 0.0;
      for (size_t i = 0; i < pool.size(); ++i) {
        const double d1 = cover1.Enlargement(pool[i].rect);
        const double d2 = cover2.Enlargement(pool[i].rect);
        const double diff = std::fabs(d1 - d2);
        if (diff > best_diff) {
          best_diff = diff;
          best = i;
          best_d1 = d1;
          best_d2 = d2;
        }
      }
      Entry e = std::move(pool[best]);
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(best));
      bool to_first;
      if (best_d1 != best_d2) {
        to_first = best_d1 < best_d2;
      } else if (cover1.Area() != cover2.Area()) {
        to_first = cover1.Area() < cover2.Area();
      } else {
        to_first = node->entries.size() <= sibling->entries.size();
      }
      if (to_first) {
        cover1.Expand(e.rect);
        node->entries.push_back(std::move(e));
      } else {
        cover2.Expand(e.rect);
        sibling->entries.push_back(std::move(e));
      }
    }
    return sibling;
  }

  void InsertAtLevel(Entry entry, int target_level) {
    assert(target_level >= 1 && target_level <= height_);
    std::vector<Node*> path;
    Node* node = root_.get();
    path.push_back(node);
    for (int level = height_; level > target_level; --level) {
      size_t best = 0;
      double best_enlargement = std::numeric_limits<double>::infinity();
      double best_area = std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < node->entries.size(); ++i) {
        const double enl = node->entries[i].rect.Enlargement(entry.rect);
        const double area = node->entries[i].rect.Area();
        if (enl < best_enlargement ||
            (enl == best_enlargement && area < best_area)) {
          best_enlargement = enl;
          best_area = area;
          best = i;
        }
      }
      node = node->entries[best].child.get();
      path.push_back(node);
    }

    node->entries.push_back(std::move(entry));
    std::unique_ptr<Node> split = MaybeSplit(node);

    for (size_t i = path.size() - 1; i-- > 0;) {
      Node* cur = path[i];
      Node* child = path[i + 1];
      for (Entry& e : cur->entries) {
        if (e.child.get() == child) {
          e.rect = Cover(*child);
          break;
        }
      }
      if (split) {
        Entry e;
        e.rect = Cover(*split);
        e.child = std::move(split);
        cur->entries.push_back(std::move(e));
      }
      split = MaybeSplit(cur);
    }

    if (split) {
      auto new_root = std::make_unique<Node>();
      new_root->leaf = false;
      Entry left;
      left.rect = Cover(*root_);
      left.child = std::move(root_);
      Entry right;
      right.rect = Cover(*split);
      right.child = std::move(split);
      new_root->entries.push_back(std::move(left));
      new_root->entries.push_back(std::move(right));
      root_ = std::move(new_root);
      ++height_;
    }
  }

  bool RemoveRec(Node* node, int level, const Rect& rect, uint64_t id,
                 std::vector<Entry>& orphans) {
    if (node->leaf) {
      for (size_t i = 0; i < node->entries.size(); ++i) {
        if (node->entries[i].id == id && node->entries[i].rect == rect) {
          node->entries.erase(node->entries.begin() +
                              static_cast<std::ptrdiff_t>(i));
          return true;
        }
      }
      return false;
    }
    for (size_t i = 0; i < node->entries.size(); ++i) {
      Entry& e = node->entries[i];
      if (!e.rect.Intersects(rect)) continue;
      if (!RemoveRec(e.child.get(), level - 1, rect, id, orphans)) continue;
      if (e.child->entries.size() < min_entries_) {
        std::unique_ptr<Node> detached = std::move(e.child);
        node->entries.erase(node->entries.begin() +
                            static_cast<std::ptrdiff_t>(i));
        std::vector<Node*> stack = {detached.get()};
        while (!stack.empty()) {
          Node* n = stack.back();
          stack.pop_back();
          for (Entry& sub : n->entries) {
            if (sub.child) {
              stack.push_back(sub.child.get());
            } else {
              orphans.push_back(std::move(sub));
            }
          }
        }
      } else {
        e.rect = Cover(*e.child);
      }
      return true;
    }
    return false;
  }

  size_t max_entries_;
  size_t min_entries_;
  std::unique_ptr<Node> root_;
  size_t size_ = 0;
  int height_ = 1;
};

}  // namespace sgb::index

#endif  // SGB_INDEX_RTREE_ND_H_
