#ifndef SGB_INDEX_UNION_FIND_H_
#define SGB_INDEX_UNION_FIND_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace sgb::index {

/// Disjoint-set forest with union by rank and path compression
/// (Tarjan & van Leeuwen). SGB-Any (Section 7) uses it to track existing,
/// newly created, and merged groups: amortized near-constant per operation.
///
/// Thread safety: not generally thread-safe, but designed for the
/// partition-parallel pattern of index::ParallelSimilarityUnion — concurrent
/// Find/Union calls are safe as long as every element index each thread
/// touches belongs to a disjoint index region (the set count is the only
/// member shared across regions, and it is atomic).
class UnionFind {
 public:
  UnionFind() = default;
  explicit UnionFind(size_t n) { Resize(n); }

  /// Grows the universe to n singleton elements (never shrinks).
  void Resize(size_t n);

  /// Adds one new singleton element and returns its id.
  size_t AddElement();

  size_t size() const { return parent_.size(); }

  /// Root representative of x's set (with path compression).
  size_t Find(size_t x);

  /// Merges the sets of a and b; returns the surviving root.
  size_t Union(size_t a, size_t b);

  bool Connected(size_t a, size_t b) { return Find(a) == Find(b); }

  /// Number of elements in x's set.
  size_t SetSize(size_t x) { return set_size_[Find(x)]; }

  /// Number of disjoint sets.
  size_t NumSets() const {
    return num_sets_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<size_t> parent_;
  std::vector<uint8_t> rank_;
  std::vector<size_t> set_size_;
  std::atomic<size_t> num_sets_{0};
};

}  // namespace sgb::index

#endif  // SGB_INDEX_UNION_FIND_H_
