#include "index/grid_partition.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <utility>

#include "common/fault_injection.h"
#include "common/query_context.h"
#include "common/thread_pool.h"
#include "geom/kernels.h"
#include "obs/trace.h"

namespace sgb::index {

// Fires at grid-build entry, before any cell structures are allocated.
static FaultSite g_grid_build_fault("index.grid.build",
                                    Status::Code::kInternal);

// Fires when hashing a point allocates a new cell — the growth path whose
// interruption must not leave the cell arrays out of step with the index.
static FaultSite g_grid_rehash_fault("index.grid.rehash",
                                     Status::Code::kInternal);

namespace {

using geom::Metric;
using geom::Point;

/// Clamp bound for cell coordinates: far enough out that any two clamped
/// coordinates collapse into the same border cell (wasted comparisons,
/// never missed pairs), small enough that +-1 neighbour arithmetic cannot
/// overflow. Non-finite coordinates also land here; their distance to
/// anything is never <= radius, so they only cost comparisons.
constexpr int64_t kMaxCell = int64_t{1} << 40;

int64_t CellCoord(double v, double radius) {
  const double c = std::floor(v / radius);
  if (std::isnan(c)) return kMaxCell;
  if (c >= static_cast<double>(kMaxCell)) return kMaxCell;
  if (c <= static_cast<double>(-kMaxCell)) return -kMaxCell;
  return static_cast<int64_t>(c);
}

struct CellKey {
  int64_t cx;
  int64_t cy;
  friend bool operator==(const CellKey&, const CellKey&) = default;
};

struct CellKeyHash {
  size_t operator()(const CellKey& k) const {
    const uint64_t a = static_cast<uint64_t>(k.cx) * 0x9e3779b97f4a7c15ULL;
    const uint64_t b = static_cast<uint64_t>(k.cy) * 0xc2b2ae3d27d4eb4fULL;
    return a ^ (b + 0x165667b19e3779f9ULL + (a << 6) + (a >> 2));
  }
};

struct Edge {
  size_t a;
  size_t b;
};

}  // namespace

void ParallelSimilarityUnion(std::span<const Point> points, Metric metric,
                             double radius, size_t dop, ThreadPool& pool,
                             UnionFind* forest,
                             std::vector<GridPartitionStats>* worker_stats,
                             QueryContext* ctx) {
  dop = std::max<size_t>(dop, 1);
  if (worker_stats != nullptr) {
    worker_stats->assign(dop, GridPartitionStats{});
  }
  if (points.empty()) return;

  {
    Status fault = g_grid_build_fault.Check();
    if (!fault.ok()) throw QueryAbort(std::move(fault));
  }
  // The cell structures below hold roughly one (key, member index, SoA
  // coordinate pair) triple per point; charge it up front so a budgeted
  // query fails before the build, not mid-way through it.
  ScopedMemoryCharge grid_charge(
      ctx, points.size() * (sizeof(CellKey) + sizeof(size_t) +
                            2 * sizeof(double)));

  // ---- Build: hash every point into its grid cell. --------------------
  std::unordered_map<CellKey, size_t, CellKeyHash> cell_index;
  cell_index.reserve(points.size());
  std::vector<CellKey> cell_keys;
  std::vector<std::vector<size_t>> cell_points;
  // SoA mirror of each cell's coordinates, in member order, so the scan
  // phase can run the block kernels cell-against-cell.
  std::vector<geom::PointColumns> cell_soa;
  for (size_t i = 0; i < points.size(); ++i) {
    const CellKey key{CellCoord(points[i].x, radius),
                      CellCoord(points[i].y, radius)};
    auto [it, inserted] = cell_index.try_emplace(key, cell_keys.size());
    if (inserted) {
      Status fault = g_grid_rehash_fault.Check();
      if (!fault.ok()) {
        cell_index.erase(it);  // Keep the index and arrays in step.
        throw QueryAbort(std::move(fault));
      }
      cell_keys.push_back(key);
      cell_points.emplace_back();
      cell_soa.emplace_back();
    }
    cell_points[it->second].push_back(i);
    cell_soa[it->second].PushBack(points[i]);
  }
  const size_t num_cells = cell_keys.size();

  // ---- Partition: contiguous cell ranges balanced by point count. -----
  std::vector<size_t> order(num_cells);
  for (size_t c = 0; c < num_cells; ++c) order[c] = c;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const CellKey& ka = cell_keys[a];
    const CellKey& kb = cell_keys[b];
    return ka.cx != kb.cx ? ka.cx < kb.cx : ka.cy < kb.cy;
  });

  const size_t num_parts = std::min(dop, num_cells);
  std::vector<uint32_t> part_of_cell(num_cells, 0);
  std::vector<std::pair<size_t, size_t>> part_range(num_parts);
  {
    size_t pos = 0;
    size_t assigned_points = 0;
    for (size_t p = 0; p < num_parts; ++p) {
      const size_t begin = pos;
      const size_t target =
          (points.size() * (p + 1) + num_parts - 1) / num_parts;
      // Every part takes at least one cell; the last part takes the rest.
      do {
        assigned_points += cell_points[order[pos]].size();
        part_of_cell[order[pos]] = static_cast<uint32_t>(p);
        ++pos;
      } while (pos < num_cells && (p + 1 == num_parts ||
                                   (assigned_points < target &&
                                    num_cells - pos > num_parts - p - 1)));
      part_range[p] = {begin, pos};
    }
  }

  // ---- Scan: each worker enumerates its partition's candidate pairs. --
  // Same-cell pairs plus the four lexicographically-forward neighbour
  // cells generate every within-radius pair exactly once. Unions stay
  // inside the partition's index region; cross-partition pairs become
  // boundary edges.
  std::vector<GridPartitionStats> slot_stats(dop);
  std::vector<std::vector<Edge>> slot_edges(dop);
  const geom::BlockSimilarity sim(metric, radius);
  // Worker spans parent to whatever span is open on the calling thread
  // (the explicit-parent form: worker threads have no stack to inherit).
  obs::QueryTrace* trace = ctx != nullptr ? ctx->trace() : nullptr;
  const uint64_t parent_span =
      trace != nullptr ? trace->CurrentSpanId() : 0;
  pool.ParallelFor(
      num_parts, dop,
      [&](size_t slot, size_t part_begin, size_t part_end) {
        obs::ScopedSpan worker_span(trace, "sgb.worker", parent_span);
        worker_span.AddAttribute("partitions",
                                 static_cast<double>(part_end - part_begin));
        GridPartitionStats& stats = slot_stats[slot];
        std::vector<Edge>& edges = slot_edges[slot];
        std::vector<uint64_t> mask;  // worker-local kernel scratch
        for (size_t p = part_begin; p < part_end; ++p) {
          const auto [begin, end] = part_range[p];
          for (size_t k = begin; k < end; ++k) {
            ThrowIfAborted(ctx);  // per-cell; ParallelFor rethrows on caller
            const size_t ci = order[k];
            const CellKey key = cell_keys[ci];
            const std::vector<size_t>& members = cell_points[ci];
            const geom::PointColumns& soa = cell_soa[ci];
            ++stats.cells;
            stats.points += members.size();
            mask.resize(geom::KernelMaskWords(members.size()));
            for (size_t a = 0; a < members.size(); ++a) {
              const size_t i = members[a];
              // Block scan of member a against the cell prefix [0, a);
              // ForEachSetBit yields ascending b, the same union order as
              // the historical scalar loop.
              stats.distance_computations += a;
              sim.Match(points[i], soa.xs(), soa.ys(), a, mask.data());
              geom::ForEachSetBit(mask.data(), a, [&](size_t b) {
                ++stats.union_operations;
                forest->Union(i, members[b]);
              });
            }
            const CellKey neighbours[4] = {{key.cx, key.cy + 1},
                                           {key.cx + 1, key.cy - 1},
                                           {key.cx + 1, key.cy},
                                           {key.cx + 1, key.cy + 1}};
            for (const CellKey& nk : neighbours) {
              const auto it = cell_index.find(nk);
              if (it == cell_index.end()) continue;
              const bool same_part = part_of_cell[it->second] ==
                                     static_cast<uint32_t>(p);
              const std::vector<size_t>& njs = cell_points[it->second];
              const geom::PointColumns& nsoa = cell_soa[it->second];
              mask.resize(geom::KernelMaskWords(njs.size()));
              for (const size_t i : members) {
                stats.distance_computations += njs.size();
                sim.Match(points[i], nsoa.xs(), nsoa.ys(), njs.size(),
                          mask.data());
                geom::ForEachSetBit(mask.data(), njs.size(), [&](size_t b) {
                  const size_t j = njs[b];
                  if (same_part) {
                    ++stats.union_operations;
                    forest->Union(i, j);
                  } else {
                    ++stats.boundary_edges;
                    edges.push_back(Edge{i, j});
                  }
                });
              }
            }
          }
        }
      },
      /*grain=*/1);

  // ---- Merge: sequential pass over the partition-seam edges. ----------
  for (const std::vector<Edge>& edges : slot_edges) {
    for (const Edge& e : edges) forest->Union(e.a, e.b);
  }
  if (worker_stats != nullptr) *worker_stats = std::move(slot_stats);
}

}  // namespace sgb::index
