#include "index/rtree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "common/fault_injection.h"
#include "common/query_context.h"

namespace sgb::index {

// Fires when a node actually overflows and must split — the structural
// mutation an interrupted insert would leave half-done.
static FaultSite g_rtree_split_fault("index.rtree.split",
                                     Status::Code::kInternal);

using geom::Rect;

struct RTree::Entry {
  Rect rect;
  uint64_t id = 0;             // Payload; meaningful for data entries.
  std::unique_ptr<Node> child;  // Non-null for internal entries.
};

struct RTree::Node {
  bool leaf = true;
  std::vector<Entry> entries;

  Rect Cover() const {
    Rect r = Rect::Empty();
    for (const Entry& e : entries) r.Expand(e.rect);
    return r;
  }
};

RTree::RTree(size_t max_entries)
    : max_entries_(std::max<size_t>(max_entries, 4)),
      min_entries_(std::max<size_t>(2, max_entries_ * 2 / 5)),
      root_(std::make_unique<Node>()) {}

RTree::~RTree() = default;
RTree::RTree(RTree&&) noexcept = default;
RTree& RTree::operator=(RTree&&) noexcept = default;

std::unique_ptr<RTree::Node> RTree::MaybeSplit(Node* node) {
  if (node->entries.size() <= max_entries_) return nullptr;

  {
    Status fault = g_rtree_split_fault.Check();
    if (!fault.ok()) throw QueryAbort(std::move(fault));
  }
  std::vector<Entry> pool = std::move(node->entries);
  node->entries.clear();

  auto sibling = std::make_unique<Node>();
  sibling->leaf = node->leaf;

  // Guttman's quadratic PickSeeds: the pair wasting the most area together.
  size_t si = 0;
  size_t sj = 1;
  double worst = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i + 1 < pool.size(); ++i) {
    for (size_t j = i + 1; j < pool.size(); ++j) {
      Rect merged = pool[i].rect;
      merged.Expand(pool[j].rect);
      const double d =
          merged.Area() - pool[i].rect.Area() - pool[j].rect.Area();
      if (d > worst) {
        worst = d;
        si = i;
        sj = j;
      }
    }
  }
  Rect cover1 = pool[si].rect;
  Rect cover2 = pool[sj].rect;
  node->entries.push_back(std::move(pool[si]));
  sibling->entries.push_back(std::move(pool[sj]));
  // Erase the larger index first so the smaller stays valid.
  pool.erase(pool.begin() + static_cast<ptrdiff_t>(std::max(si, sj)));
  pool.erase(pool.begin() + static_cast<ptrdiff_t>(std::min(si, sj)));

  while (!pool.empty()) {
    // Force-assign the remainder if one side must reach the minimum fill.
    if (node->entries.size() + pool.size() == min_entries_) {
      for (Entry& e : pool) {
        cover1.Expand(e.rect);
        node->entries.push_back(std::move(e));
      }
      break;
    }
    if (sibling->entries.size() + pool.size() == min_entries_) {
      for (Entry& e : pool) {
        cover2.Expand(e.rect);
        sibling->entries.push_back(std::move(e));
      }
      break;
    }

    // PickNext: the entry with the strongest preference between groups.
    size_t best = 0;
    double best_diff = -1.0;
    double best_d1 = 0.0;
    double best_d2 = 0.0;
    for (size_t i = 0; i < pool.size(); ++i) {
      const double d1 = cover1.Enlargement(pool[i].rect);
      const double d2 = cover2.Enlargement(pool[i].rect);
      const double diff = std::fabs(d1 - d2);
      if (diff > best_diff) {
        best_diff = diff;
        best = i;
        best_d1 = d1;
        best_d2 = d2;
      }
    }
    Entry e = std::move(pool[best]);
    pool.erase(pool.begin() + static_cast<ptrdiff_t>(best));
    bool to_first;
    if (best_d1 != best_d2) {
      to_first = best_d1 < best_d2;
    } else if (cover1.Area() != cover2.Area()) {
      to_first = cover1.Area() < cover2.Area();
    } else {
      to_first = node->entries.size() <= sibling->entries.size();
    }
    if (to_first) {
      cover1.Expand(e.rect);
      node->entries.push_back(std::move(e));
    } else {
      cover2.Expand(e.rect);
      sibling->entries.push_back(std::move(e));
    }
  }
  return sibling;
}

void RTree::InsertAtLevel(Entry entry, int target_level) {
  // An orphan subtree taller than the current tree cannot occur: orphans are
  // always data entries (target_level == 1) in this implementation.
  assert(target_level >= 1 && target_level <= height_);

  // Descend to a node at target_level by least enlargement.
  std::vector<Node*> path;
  Node* node = root_.get();
  path.push_back(node);
  for (int level = height_; level > target_level; --level) {
    size_t best = 0;
    double best_enlargement = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < node->entries.size(); ++i) {
      const double enl = node->entries[i].rect.Enlargement(entry.rect);
      const double area = node->entries[i].rect.Area();
      if (enl < best_enlargement ||
          (enl == best_enlargement && area < best_area)) {
        best_enlargement = enl;
        best_area = area;
        best = i;
      }
    }
    node = node->entries[best].child.get();
    path.push_back(node);
  }

  node->entries.push_back(std::move(entry));
  std::unique_ptr<Node> split = MaybeSplit(node);

  // Walk back up: retighten covering rectangles and place split siblings.
  for (size_t i = path.size() - 1; i-- > 0;) {
    Node* cur = path[i];
    Node* child = path[i + 1];
    for (Entry& e : cur->entries) {
      if (e.child.get() == child) {
        e.rect = child->Cover();
        break;
      }
    }
    if (split) {
      Entry e;
      e.rect = split->Cover();
      e.child = std::move(split);
      cur->entries.push_back(std::move(e));
    }
    split = MaybeSplit(cur);
  }

  if (split) {  // The root itself split: grow the tree.
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    Entry left;
    left.rect = root_->Cover();
    left.child = std::move(root_);
    Entry right;
    right.rect = split->Cover();
    right.child = std::move(split);
    new_root->entries.push_back(std::move(left));
    new_root->entries.push_back(std::move(right));
    root_ = std::move(new_root);
    ++height_;
  }
}

void RTree::Insert(const Rect& rect, uint64_t id) {
  Entry e;
  e.rect = rect;
  e.id = id;
  InsertAtLevel(std::move(e), 1);
  ++size_;
}

bool RTree::RemoveRec(Node* node, int level, const Rect& rect, uint64_t id,
                      std::vector<Entry>& orphans) {
  if (node->leaf) {
    for (size_t i = 0; i < node->entries.size(); ++i) {
      if (node->entries[i].id == id && node->entries[i].rect == rect) {
        node->entries.erase(node->entries.begin() + static_cast<ptrdiff_t>(i));
        return true;
      }
    }
    return false;
  }
  for (size_t i = 0; i < node->entries.size(); ++i) {
    Entry& e = node->entries[i];
    if (!e.rect.Intersects(rect)) continue;
    if (!RemoveRec(e.child.get(), level - 1, rect, id, orphans)) continue;
    if (e.child->entries.size() < min_entries_) {
      // Condense: detach the underfull subtree and re-insert its data
      // entries (flattening keeps reinsertion independent of tree height).
      std::unique_ptr<Node> detached = std::move(e.child);
      node->entries.erase(node->entries.begin() + static_cast<ptrdiff_t>(i));
      std::vector<Node*> stack = {detached.get()};
      while (!stack.empty()) {
        Node* n = stack.back();
        stack.pop_back();
        for (Entry& sub : n->entries) {
          if (sub.child) {
            stack.push_back(sub.child.get());
          } else {
            orphans.push_back(std::move(sub));
          }
        }
      }
    } else {
      e.rect = e.child->Cover();
    }
    return true;
  }
  return false;
}

bool RTree::Remove(const Rect& rect, uint64_t id) {
  std::vector<Entry> orphans;
  if (!RemoveRec(root_.get(), height_, rect, id, orphans)) return false;
  --size_;

  while (!root_->leaf && root_->entries.size() == 1) {
    std::unique_ptr<Node> child = std::move(root_->entries[0].child);
    root_ = std::move(child);
    --height_;
  }
  if (!root_->leaf && root_->entries.empty()) {
    root_->leaf = true;
    height_ = 1;
  }
  for (Entry& e : orphans) InsertAtLevel(std::move(e), 1);
  return true;
}

void RTree::Search(
    const Rect& window,
    const std::function<void(const Rect&, uint64_t)>& visit) const {
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    for (const Entry& e : node->entries) {
      if (!e.rect.Intersects(window)) continue;
      if (e.child) {
        stack.push_back(e.child.get());
      } else {
        visit(e.rect, e.id);
      }
    }
  }
}

std::vector<uint64_t> RTree::SearchIds(const Rect& window) const {
  std::vector<uint64_t> ids;
  Search(window, [&ids](const Rect&, uint64_t id) { ids.push_back(id); });
  return ids;
}

bool RTree::CheckInvariants() const {
  size_t data_count = 0;
  bool ok = true;

  struct Item {
    const Node* node;
    int level;
  };
  std::vector<Item> stack = {{root_.get(), height_}};
  while (!stack.empty() && ok) {
    auto [node, level] = stack.back();
    stack.pop_back();
    if (node->leaf != (level == 1)) ok = false;
    if (node != root_.get() && node->entries.size() < min_entries_) ok = false;
    if (node->entries.size() > max_entries_) ok = false;
    for (const Entry& e : node->entries) {
      if (node->leaf) {
        if (e.child) ok = false;
        ++data_count;
      } else {
        if (!e.child) {
          ok = false;
          continue;
        }
        if (!e.rect.Contains(e.child->Cover())) ok = false;
        stack.push_back({e.child.get(), level - 1});
      }
    }
  }
  return ok && data_count == size_;
}

}  // namespace sgb::index
