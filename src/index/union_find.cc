#include "index/union_find.h"

#include <utility>

namespace sgb::index {

void UnionFind::Resize(size_t n) {
  const size_t old = parent_.size();
  if (n <= old) return;
  parent_.resize(n);
  rank_.resize(n, 0);
  set_size_.resize(n, 1);
  for (size_t i = old; i < n; ++i) parent_[i] = i;
  num_sets_.fetch_add(n - old, std::memory_order_relaxed);
}

size_t UnionFind::AddElement() {
  const size_t id = parent_.size();
  Resize(id + 1);
  return id;
}

size_t UnionFind::Find(size_t x) {
  size_t root = x;
  while (parent_[root] != root) root = parent_[root];
  // Path compression.
  while (parent_[x] != root) {
    const size_t next = parent_[x];
    parent_[x] = root;
    x = next;
  }
  return root;
}

size_t UnionFind::Union(size_t a, size_t b) {
  size_t ra = Find(a);
  size_t rb = Find(b);
  if (ra == rb) return ra;
  if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  set_size_[ra] += set_size_[rb];
  if (rank_[ra] == rank_[rb]) ++rank_[ra];
  num_sets_.fetch_sub(1, std::memory_order_relaxed);
  return ra;
}

}  // namespace sgb::index
