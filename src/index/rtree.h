#ifndef SGB_INDEX_RTREE_H_
#define SGB_INDEX_RTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "geom/rect.h"

namespace sgb::index {

/// In-memory R-tree (Guttman 1984) over 2-D rectangles with uint64 payloads.
///
/// This is the spatial access method both SGB algorithms rely on
/// (Sections 6.3 and 7.1):
///  * SGB-All "on-the-fly Index" keeps the ε-All rectangles of live groups
///    in a Groups_IX R-tree and answers FindCloseGroups with one window
///    query. Group rectangles change as members join/leave, so the tree
///    supports Remove + re-Insert.
///  * SGB-Any keeps every processed point in a Points_IX R-tree (points are
///    degenerate rectangles) and finds ε-neighbours with a window query.
///
/// Implementation notes: quadratic-split on overflow, condense-tree with
/// orphan reinsertion on underflow, least-enlargement subtree choice.
/// Not thread-safe; single-writer as used by the streaming operators.
class RTree {
 public:
  /// `max_entries` is Guttman's M (node capacity); the minimum fill is
  /// max(2, M * 2/5).
  explicit RTree(size_t max_entries = 8);
  ~RTree();

  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;
  RTree(RTree&&) noexcept;
  RTree& operator=(RTree&&) noexcept;

  /// Inserts an entry. Duplicate (rect, id) pairs are allowed and stored
  /// separately.
  void Insert(const geom::Rect& rect, uint64_t id);

  /// Convenience: inserts a point as a degenerate rectangle.
  void Insert(const geom::Point& p, uint64_t id) {
    Insert(geom::Rect{p, p}, id);
  }

  /// Removes one entry matching (rect, id) exactly. Returns false when no
  /// such entry exists.
  bool Remove(const geom::Rect& rect, uint64_t id);

  /// Invokes `visit` for every stored entry whose rectangle intersects
  /// `window`.
  void Search(const geom::Rect& window,
              const std::function<void(const geom::Rect&, uint64_t)>& visit)
      const;

  /// Window query returning just the payload ids.
  std::vector<uint64_t> SearchIds(const geom::Rect& window) const;

  /// Number of stored entries.
  size_t size() const { return size_; }

  bool empty() const { return size_ == 0; }

  /// Tree height (a lone leaf has height 1); exposed for tests/ablations.
  int height() const { return height_; }

  /// Formula-based estimate of the tree's heap footprint, for memory
  /// accounting: entries plus interior nodes at the minimum fill factor.
  /// Not malloc-exact — governance charges bound dominant structures.
  size_t ApproxMemoryBytes() const {
    // Each entry is a Rect + payload; nodes add a Rect + vector header per
    // ~min_entries_ entries across all levels (geometric series ≈ 2x).
    const size_t per_entry = sizeof(geom::Rect) + sizeof(uint64_t) +
                             sizeof(void*);
    return size_ * per_entry + (size_ / (min_entries_ + 1) + 1) * 64;
  }

  /// Verifies structural invariants (uniform leaf depth, fill factors,
  /// covering rectangles). Test-only helper.
  bool CheckInvariants() const;

 private:
  struct Node;
  struct Entry;

  std::unique_ptr<Node> MaybeSplit(Node* node);
  /// Places `entry` into a node at `target_level` (leaves are level 1).
  void InsertAtLevel(Entry entry, int target_level);
  bool RemoveRec(Node* node, int level, const geom::Rect& rect, uint64_t id,
                 std::vector<Entry>& orphans);

  size_t max_entries_;
  size_t min_entries_;
  std::unique_ptr<Node> root_;
  size_t size_ = 0;
  int height_ = 1;
};

}  // namespace sgb::index

#endif  // SGB_INDEX_RTREE_H_
