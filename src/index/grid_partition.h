#ifndef SGB_INDEX_GRID_PARTITION_H_
#define SGB_INDEX_GRID_PARTITION_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "geom/point.h"
#include "index/union_find.h"

namespace sgb {
class ThreadPool;
class QueryContext;
}

namespace sgb::index {

/// Per-worker-slot counters from one ParallelSimilarityUnion run.
struct GridPartitionStats {
  size_t points = 0;                 ///< points scanned by this slot
  size_t cells = 0;                  ///< grid cells owned by this slot
  size_t distance_computations = 0;  ///< similarity predicate evaluations
  size_t union_operations = 0;       ///< similar pairs unioned in-partition
  size_t boundary_edges = 0;         ///< similar pairs deferred to the merge
};

/// Partition-parallel ε-neighbour union — the parallel backbone of SGB-Any
/// and of SGB-All's independent-component decomposition.
///
/// The points are hashed into a uniform grid with cell size `radius`, so
/// every pair within `radius` lies in the same or in 8-adjacent cells. The
/// occupied cells (sorted by cell coordinate) are split into `dop`
/// contiguous ranges balanced by point count; each worker enumerates the
/// candidate pairs of its own cells (same-cell pairs plus the four
/// lexicographically-forward neighbour cells, so every pair is generated
/// exactly once) and unions the pairs that satisfy the similarity
/// predicate ξδ,ε directly into `forest` — race-free because each
/// partition touches a disjoint set of element indices. Pairs that span
/// two partitions are collected as boundary edges and unioned in a single
/// sequential merge pass at the end.
///
/// On return, `forest` (which must have size >= points.size()) holds the
/// connected components of the `radius`-neighbour graph under `metric` —
/// exactly the components a sequential pairwise scan would produce.
///
/// `worker_stats`, when non-null, is resized to `dop` and filled with the
/// per-slot breakdown (the EXPLAIN ANALYZE per-partition counters).
/// Requires radius > 0 and finite.
///
/// `ctx`, when non-null, is the governing query: the grid build charges its
/// cell structures against the context's memory budget, workers check for
/// cancellation/deadline per cell, and a governance failure propagates as a
/// QueryAbort exception out of this call (rethrown from workers by
/// ParallelFor). The "index.grid.build" fault site fires here too.
void ParallelSimilarityUnion(std::span<const geom::Point> points,
                             geom::Metric metric, double radius, size_t dop,
                             ThreadPool& pool, UnionFind* forest,
                             std::vector<GridPartitionStats>* worker_stats,
                             QueryContext* ctx = nullptr);

}  // namespace sgb::index

#endif  // SGB_INDEX_GRID_PARTITION_H_
