#include "index/grid_index.h"

#include <cmath>

namespace sgb::index {

GridIndex::GridIndex(double cell_size) : cell_size_(cell_size) {}

GridIndex::CellKey GridIndex::KeyFor(const geom::Point& p) const {
  return CellKey{static_cast<int64_t>(std::floor(p.x / cell_size_)),
                 static_cast<int64_t>(std::floor(p.y / cell_size_))};
}

void GridIndex::Insert(const geom::Point& p, uint64_t id) {
  cells_[KeyFor(p)].push_back(Item{p, id});
  ++size_;
}

void GridIndex::Search(
    const geom::Rect& window,
    const std::function<void(const geom::Point&, uint64_t)>& visit) const {
  if (window.IsEmpty()) return;
  const auto lo = KeyFor(window.lo);
  const auto hi = KeyFor(window.hi);
  for (int64_t cx = lo.cx; cx <= hi.cx; ++cx) {
    for (int64_t cy = lo.cy; cy <= hi.cy; ++cy) {
      const auto it = cells_.find(CellKey{cx, cy});
      if (it == cells_.end()) continue;
      for (const Item& item : it->second) {
        if (window.Contains(item.point)) visit(item.point, item.id);
      }
    }
  }
}

std::vector<uint64_t> GridIndex::SearchIds(const geom::Rect& window) const {
  std::vector<uint64_t> ids;
  Search(window, [&ids](const geom::Point&, uint64_t id) { ids.push_back(id); });
  return ids;
}

}  // namespace sgb::index
