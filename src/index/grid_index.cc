#include "index/grid_index.h"

#include <cmath>

namespace sgb::index {

GridIndex::GridIndex(double cell_size) : cell_size_(cell_size) {}

GridIndex::CellKey GridIndex::KeyFor(const geom::Point& p) const {
  return CellKey{static_cast<int64_t>(std::floor(p.x / cell_size_)),
                 static_cast<int64_t>(std::floor(p.y / cell_size_))};
}

void GridIndex::Insert(const geom::Point& p, uint64_t id) {
  Cell& cell = cells_[KeyFor(p)];
  cell.soa.PushBack(p);
  cell.ids.push_back(id);
  ++size_;
}

void GridIndex::Search(
    const geom::Rect& window,
    const std::function<void(const geom::Point&, uint64_t)>& visit) const {
  if (window.IsEmpty()) return;
  const auto lo = KeyFor(window.lo);
  const auto hi = KeyFor(window.hi);
  std::vector<uint64_t> mask;  // per-cell kernel scratch
  for (int64_t cx = lo.cx; cx <= hi.cx; ++cx) {
    for (int64_t cy = lo.cy; cy <= hi.cy; ++cy) {
      const auto it = cells_.find(CellKey{cx, cy});
      if (it == cells_.end()) continue;
      // The block rect filter performs the same inclusive-bounds compares
      // as window.Contains, and ForEachSetBit visits matches in insertion
      // order — identical to the historical per-item loop.
      const Cell& cell = it->second;
      const size_t n = cell.ids.size();
      mask.resize(geom::KernelMaskWords(n));
      geom::RectFilterBlock(window, cell.soa.xs(), cell.soa.ys(), n,
                            mask.data());
      geom::ForEachSetBit(mask.data(), n, [&](size_t k) {
        visit(cell.soa[k], cell.ids[k]);
      });
    }
  }
}

std::vector<uint64_t> GridIndex::SearchIds(const geom::Rect& window) const {
  std::vector<uint64_t> ids;
  Search(window, [&ids](const geom::Point&, uint64_t id) { ids.push_back(id); });
  return ids;
}

}  // namespace sgb::index
