#include "common/stopwatch.h"

// Stopwatch is header-only; this TU exists so the target always has a
// corresponding .cc per the project convention.
