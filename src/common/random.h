#ifndef SGB_COMMON_RANDOM_H_
#define SGB_COMMON_RANDOM_H_

#include <cstdint>

namespace sgb {

/// Deterministic 64-bit PRNG (xoshiro256** seeded via SplitMix64).
///
/// All randomness in the library — JOIN-ANY group arbitration, workload
/// generators, k-means++ seeding — flows through an explicitly passed Rng so
/// tests and benchmarks are reproducible bit-for-bit across runs.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedULL);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi);

  /// Standard normal via Box-Muller (cached second sample).
  double NextGaussian();

  /// Gaussian with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  /// Uniform integer in the inclusive range [lo, hi].
  int64_t NextInt(int64_t lo, int64_t hi);

 private:
  uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace sgb

#endif  // SGB_COMMON_RANDOM_H_
