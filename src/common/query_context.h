#ifndef SGB_COMMON_QUERY_CONTEXT_H_
#define SGB_COMMON_QUERY_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <exception>
#include <optional>
#include <string>
#include <utility>

#include "common/memory_tracker.h"
#include "common/status.h"

namespace sgb {

namespace obs {
class QueryTrace;
}  // namespace obs

/// Out-of-core execution settings carried by the QueryContext. Disabled by
/// default: a budget breach then fails with ResourceExhausted exactly as
/// before. When enabled (SET spill = 1), the blocking operators spill to
/// temp files under `directory` instead, repartitioning recursively with
/// `fanout`-way fan-out down to at most `max_depth` levels before giving
/// up with an honest ResourceExhausted (docs/ROBUSTNESS.md).
struct SpillConfig {
  bool enabled = false;
  std::string directory;  ///< empty = SpillFile::SpillDirectory()
  size_t fanout = 8;
  int max_depth = 6;
};

/// Per-execution governance state threaded through the operator tree and
/// into the SGB cores: a cooperative cancel flag, an optional wall-clock
/// deadline, and a per-query MemoryTracker parented to the engine-global
/// one. One QueryContext lives for exactly one execution of one plan.
///
/// Checking is cooperative and coarse-grained: the instrumented operator
/// entry points test the context at batch granularity (every NextBatch, and
/// every kNextCheckInterval Next calls), and the SGB cores test it at
/// morsel/point-stride granularity inside ParallelFor workers. A check that
/// fails surfaces as Status::Cancelled / DeadlineExceeded; memory charges
/// past the budget surface as Status::ResourceExhausted.
///
/// Thread safety: Cancel() and every Check/Charge/Release may be called
/// from any thread. The deadline and budget are configured before execution
/// starts (by Database::Query) and are read-only afterwards.
class QueryContext {
 public:
  using Clock = std::chrono::steady_clock;

  /// How often the per-row Operator::Next path re-checks the context.
  static constexpr uint64_t kNextCheckInterval = 64;

  explicit QueryContext(size_t memory_budget_bytes = 0)
      : memory_("query", &MemoryTracker::EngineGlobal(),
                memory_budget_bytes) {}

  /// Flags the query for cooperative cancellation; the running plan fails
  /// with Status::Cancelled at its next check.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Sets the deadline `timeout_ms` from now. Call before execution starts.
  void SetTimeout(int64_t timeout_ms) {
    deadline_ = Clock::now() + std::chrono::milliseconds(timeout_ms);
  }
  bool has_deadline() const { return deadline_.has_value(); }

  /// OK, or the governance failure the query should abort with.
  Status CheckAbort() const {
    if (cancelled()) {
      return Status::Cancelled("query cancelled");
    }
    if (deadline_.has_value() && Clock::now() > *deadline_) {
      return Status::DeadlineExceeded("query deadline exceeded");
    }
    return Status::OK();
  }

  MemoryTracker& memory() { return memory_; }
  const MemoryTracker& memory() const { return memory_; }

  /// Configured by Database::Query before execution starts.
  void set_spill(SpillConfig config) { spill_ = std::move(config); }
  const SpillConfig& spill() const { return spill_; }

  /// Operators record each spill event (one partitioning pass or sorted
  /// run written) here; Database aggregates the totals into the
  /// query.spilled metric and the EXPLAIN ANALYZE `spilled=` line.
  void AddSpill(uint64_t bytes) {
    spill_events_.fetch_add(1, std::memory_order_relaxed);
    spill_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  uint64_t spill_events() const {
    return spill_events_.load(std::memory_order_relaxed);
  }
  uint64_t spill_bytes() const {
    return spill_bytes_.load(std::memory_order_relaxed);
  }

  /// Span sink for this execution (null = not traced). Set by
  /// Database::Query before execution starts; the SGB cores, spill paths,
  /// and parallel workers record spans through it. QueryTrace is
  /// thread-safe, so workers need no coordination here.
  void set_trace(obs::QueryTrace* trace) { trace_ = trace; }
  obs::QueryTrace* trace() const { return trace_; }

 private:
  std::atomic<bool> cancelled_{false};
  std::optional<Clock::time_point> deadline_;
  MemoryTracker memory_;
  SpillConfig spill_;
  std::atomic<uint64_t> spill_events_{0};
  std::atomic<uint64_t> spill_bytes_{0};
  obs::QueryTrace* trace_ = nullptr;
};

/// The abort channel for the bool-returning Volcano interface: governance
/// failures (cancel, deadline, budget) and injected faults raised inside an
/// operator or core throw QueryAbort; Materialize() (and ThreadPool's
/// ParallelFor, which rethrows worker exceptions on the caller) convert it
/// back into the Status the engine API returns. It never escapes
/// Database::Query.
class QueryAbort : public std::exception {
 public:
  explicit QueryAbort(Status status) : status_(std::move(status)) {}
  const Status& status() const { return status_; }
  const char* what() const noexcept override {
    return status_.message().c_str();
  }

 private:
  Status status_;
};

/// Throws QueryAbort when `ctx` (nullable) says the query should stop.
inline void ThrowIfAborted(const QueryContext* ctx) {
  if (ctx == nullptr) return;
  Status status = ctx->CheckAbort();
  if (!status.ok()) throw QueryAbort(std::move(status));
}

/// RAII charge against a query's memory tracker; throws QueryAbort when the
/// budget does not cover it. A null context charges nothing.
class ScopedMemoryCharge {
 public:
  ScopedMemoryCharge(QueryContext* ctx, size_t bytes)
      : ctx_(ctx), bytes_(bytes) {
    if (ctx_ == nullptr) return;
    Status status = ctx_->memory().TryConsume(bytes_);
    if (!status.ok()) {
      ctx_ = nullptr;  // nothing to release
      throw QueryAbort(std::move(status));
    }
  }
  ~ScopedMemoryCharge() {
    if (ctx_ != nullptr) ctx_->memory().Release(bytes_);
  }
  ScopedMemoryCharge(const ScopedMemoryCharge&) = delete;
  ScopedMemoryCharge& operator=(const ScopedMemoryCharge&) = delete;

 private:
  QueryContext* ctx_;
  size_t bytes_;
};

}  // namespace sgb

#endif  // SGB_COMMON_QUERY_CONTEXT_H_
