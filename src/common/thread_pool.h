#ifndef SGB_COMMON_THREAD_POOL_H_
#define SGB_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace sgb {

/// Fixed-size worker pool backing every parallel operator in the engine.
///
/// Two usage styles:
///  * `Submit(fn)` queues a task and returns a `std::future` carrying the
///    task's result (or its exception).
///  * `ParallelFor(n, dop, body)` splits the index range [0, n) into
///    morsels pulled from a shared atomic cursor and runs `body(slot,
///    begin, end)` with `slot` in [0, dop): the caller participates as
///    slot 0 and (dop - 1) pool tasks join as they get scheduled. Because
///    the caller drains morsels itself and only waits for participants
///    that are actively inside `body`, nested ParallelFor calls from
///    worker threads cannot deadlock: a fully subscribed pool simply
///    degrades toward caller-only execution.
///
/// Exceptions thrown by a morsel body are captured and rethrown on the
/// calling thread after the loop quiesces (first exception wins; the loop
/// stops handing out further morsels).
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Process-wide pool sized to the hardware; created on first use.
  static ThreadPool& Default();

  /// Resolves a degree-of-parallelism knob: values >= 1 pass through,
  /// 0 (auto) maps to the hardware thread count (at least 1).
  static size_t ResolveDop(int dop);

  /// Queues `fn` for execution on a pool worker. Throws QueryAbort when the
  /// "common.threadpool.submit" fault site is armed and fires (tests use
  /// this to exercise scheduling-failure paths).
  template <typename F, typename R = std::invoke_result_t<std::decay_t<F>>>
  std::future<R> Submit(F&& fn) {
    CheckSubmitFault();
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    Enqueue([task]() { (*task)(); });
    return future;
  }

  /// Runs `body(slot, begin, end)` over morsels covering [0, n) with up to
  /// `dop` participants (clamped to at least 1). `grain` is the morsel
  /// size; 0 picks a default that yields ~8 morsels per participant.
  /// Blocks until every morsel has run; rethrows the first body exception.
  void ParallelFor(size_t n, size_t dop,
                   const std::function<void(size_t slot, size_t begin,
                                            size_t end)>& body,
                   size_t grain = 0);

 private:
  /// Consults the "common.threadpool.submit" fault site; throws QueryAbort
  /// when an armed fault fires. Called before any task lands in the queue,
  /// so an injected submit failure never strands a half-spawned loop.
  static void CheckSubmitFault();

  void Enqueue(std::function<void()> task);
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
};

}  // namespace sgb

#endif  // SGB_COMMON_THREAD_POOL_H_
