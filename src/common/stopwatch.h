#ifndef SGB_COMMON_STOPWATCH_H_
#define SGB_COMMON_STOPWATCH_H_

#include <chrono>

namespace sgb {

/// Monotonic wall-clock stopwatch used by the benchmark harnesses.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart() { start_ = std::chrono::steady_clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace sgb

#endif  // SGB_COMMON_STOPWATCH_H_
