#ifndef SGB_COMMON_STOPWATCH_H_
#define SGB_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace sgb {

/// Monotonic wall-clock stopwatch used by the benchmark harnesses.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart() { start_ = std::chrono::steady_clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

  uint64_t ElapsedNanos() const {
    const auto now = std::chrono::steady_clock::now();
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - start_)
            .count());
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// RAII timer that records its lifetime, in integer microseconds, into any
/// sink with a `Record(uint64_t)` member — typically an `obs::Histogram` —
/// replacing hand-rolled start/stop pairs:
///
///   ScopedTimer timer(&registry.GetHistogram("bench.run_us"));
///   RunWorkload();   // recorded when `timer` leaves scope
///
/// A null sink disables recording; the elapsed time is still readable via
/// `ElapsedMicros()`.
template <typename Sink>
class ScopedTimer {
 public:
  explicit ScopedTimer(Sink* sink) : sink_(sink) {}
  ~ScopedTimer() {
    if (sink_ != nullptr) {
      sink_->Record(static_cast<uint64_t>(watch_.ElapsedMicros()));
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  double ElapsedMicros() const { return watch_.ElapsedMicros(); }
  double ElapsedSeconds() const { return watch_.ElapsedSeconds(); }

 private:
  Sink* sink_;
  Stopwatch watch_;
};

}  // namespace sgb

#endif  // SGB_COMMON_STOPWATCH_H_
