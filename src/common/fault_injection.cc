#include "common/fault_injection.h"

#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

namespace sgb {

namespace {

/// SplitMix64 — the same mix the JOIN-ANY arbitration uses; good avalanche
/// from a tiny state, so (seed, hit) pairs decorrelate.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

/// Per-site armed policy + counters. Counters are plain atomics so the
/// disarmed fast path never takes a lock; the policy fields are only
/// written under the registry mutex (tests arm before running the
/// workload), with `mode` released last so a concurrent Check sees a
/// consistent policy.
struct FaultRegistry::SiteState {
  enum Mode : int { kNone = 0, kNth = 1, kProbability = 2 };

  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> injected{0};
  std::atomic<int> mode{kNone};
  std::atomic<uint64_t> nth_target{0};  // absolute hit number that fails
  std::atomic<uint64_t> prob_threshold{0};  // p scaled to 2^64
  std::atomic<uint64_t> seed{0};
};

struct FaultRegistry::Impl {
  mutable std::mutex mu;
  // Stable node addresses: Check() caches SiteState pointers.
  std::map<std::string, std::unique_ptr<SiteState>> sites;
};

FaultRegistry& FaultRegistry::Global() {
  static auto* registry = new FaultRegistry();
  return *registry;
}

FaultRegistry::FaultRegistry() : impl_(new Impl) {
  // SGB_FAULTS="site=nth:3;site2=prob:0.5:1234"
  const char* env = std::getenv("SGB_FAULTS");
  if (env == nullptr) return;
  std::string spec(env);
  size_t start = 0;
  while (start < spec.size()) {
    size_t end = spec.find(';', start);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(start, end - start);
    start = end + 1;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos) continue;
    const std::string site = entry.substr(0, eq);
    const std::string policy = entry.substr(eq + 1);
    if (policy.rfind("nth:", 0) == 0) {
      ArmNthHit(site, std::strtoull(policy.c_str() + 4, nullptr, 10));
    } else if (policy.rfind("prob:", 0) == 0) {
      const char* p = policy.c_str() + 5;
      char* rest = nullptr;
      const double probability = std::strtod(p, &rest);
      const uint64_t s =
          (rest != nullptr && *rest == ':')
              ? std::strtoull(rest + 1, nullptr, 10)
              : 0;
      ArmProbability(site, probability, s);
    }
  }
}

FaultRegistry::SiteState* FaultRegistry::GetOrCreate(const std::string& site) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto& slot = impl_->sites[site];
  if (slot == nullptr) slot = std::make_unique<SiteState>();
  return slot.get();
}

void FaultRegistry::ArmNthHit(const std::string& site, uint64_t nth) {
  if (nth == 0) nth = 1;
  SiteState* state = GetOrCreate(site);
  state->nth_target.store(state->hits.load(std::memory_order_relaxed) + nth,
                          std::memory_order_relaxed);
  state->mode.store(SiteState::kNth, std::memory_order_release);
}

void FaultRegistry::ArmProbability(const std::string& site, double p,
                                   uint64_t seed) {
  SiteState* state = GetOrCreate(site);
  if (p < 0.0) p = 0.0;
  const uint64_t threshold =
      p >= 1.0 ? UINT64_MAX
               : static_cast<uint64_t>(p * 18446744073709551616.0);
  state->seed.store(seed, std::memory_order_relaxed);
  state->prob_threshold.store(threshold, std::memory_order_relaxed);
  state->mode.store(SiteState::kProbability, std::memory_order_release);
}

void FaultRegistry::Disarm(const std::string& site) {
  SiteState* state = GetOrCreate(site);
  state->mode.store(SiteState::kNone, std::memory_order_release);
}

void FaultRegistry::Reset() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& [name, state] : impl_->sites) {
    state->mode.store(SiteState::kNone, std::memory_order_release);
    state->hits.store(0, std::memory_order_relaxed);
    state->injected.store(0, std::memory_order_relaxed);
  }
}

std::vector<std::string> FaultRegistry::Sites() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::vector<std::string> out;
  out.reserve(impl_->sites.size());
  for (const auto& [name, state] : impl_->sites) out.push_back(name);
  return out;
}

uint64_t FaultRegistry::Hits(const std::string& site) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const auto it = impl_->sites.find(site);
  return it == impl_->sites.end()
             ? 0
             : it->second->hits.load(std::memory_order_relaxed);
}

uint64_t FaultRegistry::Injected(const std::string& site) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const auto it = impl_->sites.find(site);
  return it == impl_->sites.end()
             ? 0
             : it->second->injected.load(std::memory_order_relaxed);
}

FaultSite::FaultSite(const char* name, Status::Code code)
    : name_(name),
      code_(code),
      state_(FaultRegistry::Global().GetOrCreate(name)) {}

Status FaultSite::Check() {
  using SiteState = FaultRegistry::SiteState;
  const uint64_t hit =
      state_->hits.fetch_add(1, std::memory_order_relaxed) + 1;
  const int mode = state_->mode.load(std::memory_order_acquire);
  if (mode == SiteState::kNone) return Status::OK();

  bool fire = false;
  if (mode == SiteState::kNth) {
    if (hit == state_->nth_target.load(std::memory_order_relaxed)) {
      fire = true;
      state_->mode.store(SiteState::kNone, std::memory_order_release);
    }
  } else if (mode == SiteState::kProbability) {
    const uint64_t draw =
        Mix64(state_->seed.load(std::memory_order_relaxed) ^ hit);
    fire = draw < state_->prob_threshold.load(std::memory_order_relaxed);
  }
  if (!fire) return Status::OK();
  state_->injected.fetch_add(1, std::memory_order_relaxed);
  return Status(code_, std::string("fault injected at site '") + name_ +
                           "' (hit " + std::to_string(hit) + ")");
}

}  // namespace sgb
