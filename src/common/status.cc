#include "common/status.h"

namespace sgb {

namespace {

const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kParseError:
      return "ParseError";
    case Status::Code::kBindError:
      return "BindError";
    case Status::Code::kNotSupported:
      return "NotSupported";
    case Status::Code::kInternal:
      return "Internal";
    case Status::Code::kResourceExhausted:
      return "ResourceExhausted";
    case Status::Code::kDeadlineExceeded:
      return "DeadlineExceeded";
    case Status::Code::kCancelled:
      return "Cancelled";
    case Status::Code::kIoError:
      return "IoError";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace sgb
