#ifndef SGB_COMMON_SOCKET_H_
#define SGB_COMMON_SOCKET_H_

#include <cstdint>
#include <string>
#include <utility>

#include "common/status.h"

namespace sgb {

/// Thin RAII + Status wrappers over the POSIX socket calls the server
/// front-end needs: a unix-domain or TCP-loopback listener, blocking
/// connect, and line-oriented read/write. Nothing here knows about SQL or
/// the wire protocol — src/server builds both on top of this.
///
/// Fault sites (docs/ROBUSTNESS.md): `server.accept`, `server.read`, and
/// `server.write` are planted on the three failure-prone operations, so
/// tests can drive every network error path deterministically.

/// Owns one file descriptor; closes it on destruction. Movable, not
/// copyable. An invalid socket holds fd -1.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Closes the descriptor now (idempotent).
  void Close();

  /// Shuts down both directions without closing the descriptor — unblocks
  /// a peer (or another thread) blocked in read/accept on this socket.
  void Shutdown();

  /// Writes all of `data`, retrying on short writes and EINTR; SIGPIPE is
  /// suppressed. Checks the `server.write` fault site once per call.
  Status WriteAll(const std::string& data);

  /// Reads up to `cap` bytes into `buf`; returns the byte count, 0 at EOF.
  /// Checks the `server.read` fault site once per call.
  Result<size_t> Read(char* buf, size_t cap);

 private:
  int fd_ = -1;
};

/// Buffered newline-delimited reader over a Socket (the wire protocol and
/// the client driver both speak in lines).
class LineReader {
 public:
  explicit LineReader(Socket* socket) : socket_(socket) {}

  /// Reads the next '\n'-terminated line into `line` (terminator stripped,
  /// a trailing '\r' too). Returns false at clean EOF with no buffered
  /// partial line; IoError on read failure or when a line exceeds
  /// `max_line_bytes`.
  Result<bool> ReadLine(std::string* line, size_t max_line_bytes = 1 << 20);

 private:
  Socket* socket_;
  std::string buffer_;
  size_t pos_ = 0;
  bool eof_ = false;
};

/// A listening socket accepting connections on a unix path or a TCP
/// loopback port.
class Listener {
 public:
  /// Binds and listens on a unix-domain socket at `path` (unlinking any
  /// stale socket file first). The path must fit sockaddr_un (~100 bytes).
  static Result<Listener> ListenUnix(const std::string& path);

  /// Binds and listens on 127.0.0.1:`port`; port 0 picks an ephemeral port
  /// (read it back from port()).
  static Result<Listener> ListenTcp(uint16_t port);

  Listener() = default;
  ~Listener();
  Listener(Listener&& other) noexcept
      : socket_(std::move(other.socket_)),
        unix_path_(std::move(other.unix_path_)),
        port_(other.port_) {
    other.unix_path_.clear();
    other.port_ = 0;
  }
  Listener& operator=(Listener&& other) noexcept;

  bool valid() const { return socket_.valid(); }
  /// Bound TCP port (0 for unix listeners).
  uint16_t port() const { return port_; }
  const std::string& unix_path() const { return unix_path_; }

  /// Blocks until a connection arrives. Checks the `server.accept` fault
  /// site; IoError once the listener has been Close()d from another thread.
  Result<Socket> Accept();

  /// Closes the listening socket, unblocking a concurrent Accept().
  void Close();

 private:
  Socket socket_;
  std::string unix_path_;  ///< unlinked on destruction
  uint16_t port_ = 0;
};

/// Blocking client connect to a unix-domain socket.
Result<Socket> ConnectUnix(const std::string& path);

/// Blocking client connect to 127.0.0.1:`port`.
Result<Socket> ConnectTcp(uint16_t port);

}  // namespace sgb

#endif  // SGB_COMMON_SOCKET_H_
