#ifndef SGB_COMMON_STATUS_H_
#define SGB_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace sgb {

/// Error handling in the sgb library follows the RocksDB idiom: functions
/// that can fail return a `Status` (or a `Result<T>`, below) instead of
/// throwing. A default-constructed Status is OK.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kParseError,
    kBindError,
    kNotSupported,
    kInternal,
    kResourceExhausted,  ///< a memory budget or other quota was exceeded
    kDeadlineExceeded,   ///< the query ran past its wall-clock deadline
    kCancelled,          ///< the query was cancelled cooperatively
    kIoError,            ///< a file/stream operation failed
  };

  Status() = default;
  Status(Code code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(Code::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(Code::kBindError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(Code::kCancelled, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(Code::kIoError, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>" — for error reporting and test output.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Code code_ = Code::kOk;
  std::string message_;
};

/// A value-or-error holder (lightweight StatusOr). `value()` must only be
/// called when `ok()`.
template <typename T>
class Result {
 public:
  Result(T value) : payload_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : payload_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const T& value() const& { return std::get<T>(payload_); }
  T& value() & { return std::get<T>(payload_); }
  T&& value() && { return std::get<T>(std::move(payload_)); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(payload_);
  }

 private:
  std::variant<T, Status> payload_;
};

/// Propagates a non-OK Status from an expression, RocksDB-style.
#define SGB_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::sgb::Status _sgb_status = (expr);          \
    if (!_sgb_status.ok()) return _sgb_status;   \
  } while (false)

}  // namespace sgb

#endif  // SGB_COMMON_STATUS_H_
