#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "common/fault_injection.h"
#include "common/query_context.h"

namespace sgb {

namespace {

/// Shared state of one ParallelFor invocation. Heap-allocated and shared
/// with the helper tasks so a helper scheduled after the loop already
/// finished still finds valid state (it will see the cursor exhausted and
/// return without touching the body).
struct LoopContext {
  std::atomic<size_t> cursor{0};  // next unclaimed morsel index
  std::atomic<size_t> busy{0};    // participants currently inside the loop
  std::atomic<bool> failed{false};
  size_t num_morsels = 0;
  size_t grain = 0;
  size_t n = 0;
  const std::function<void(size_t, size_t, size_t)>* body = nullptr;

  std::mutex mu;
  std::condition_variable done_cv;
  std::exception_ptr first_exception;

  /// Claims morsels until exhaustion or failure; `slot` identifies the
  /// participant for thread-local accounting in the body.
  void Drain(size_t slot) {
    busy.fetch_add(1, std::memory_order_acq_rel);
    while (!failed.load(std::memory_order_relaxed)) {
      const size_t m = cursor.fetch_add(1, std::memory_order_relaxed);
      if (m >= num_morsels) break;
      const size_t begin = m * grain;
      const size_t end = std::min(begin + grain, n);
      try {
        (*body)(slot, begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (first_exception == nullptr) {
          first_exception = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
        break;
      }
    }
    if (busy.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(mu);
      done_cv.notify_all();
    }
  }
};

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  workers_.reserve(std::max<size_t>(num_threads, 1));
  for (size_t i = 0; i < std::max<size_t>(num_threads, 1); ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

ThreadPool& ThreadPool::Default() {
  static auto* pool = new ThreadPool(ResolveDop(0));
  return *pool;
}

size_t ThreadPool::ResolveDop(int dop) {
  if (dop >= 1) return static_cast<size_t>(dop);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

// File-scope so the site registers at static-init time and shows up in
// FaultRegistry::Sites() before any pool work runs.
static FaultSite g_submit_fault("common.threadpool.submit",
                                Status::Code::kInternal);

void ThreadPool::CheckSubmitFault() {
  Status status = g_submit_fault.Check();
  if (!status.ok()) throw QueryAbort(std::move(status));
}

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(
    size_t n, size_t dop,
    const std::function<void(size_t slot, size_t begin, size_t end)>& body,
    size_t grain) {
  if (n == 0) return;
  CheckSubmitFault();
  dop = std::max<size_t>(dop, 1);
  if (grain == 0) {
    grain = std::max<size_t>(1, n / (dop * 8));
  }
  const size_t num_morsels = (n + grain - 1) / grain;
  const size_t participants = std::min(dop, num_morsels);

  if (participants <= 1) {
    for (size_t begin = 0; begin < n; begin += grain) {
      body(0, begin, std::min(begin + grain, n));
    }
    return;
  }

  auto ctx = std::make_shared<LoopContext>();
  ctx->num_morsels = num_morsels;
  ctx->grain = grain;
  ctx->n = n;
  ctx->body = &body;

  // Helpers run with slots 1..participants-1; the caller is slot 0. A
  // helper that only gets scheduled after the loop finished exits via the
  // exhausted cursor without invoking the body, so the caller never has to
  // wait for queued-but-unstarted tasks (this is what makes nested calls
  // from pool workers safe).
  for (size_t slot = 1; slot < participants; ++slot) {
    Enqueue([ctx, slot] { ctx->Drain(slot); });
  }
  ctx->Drain(0);

  {
    std::unique_lock<std::mutex> lock(ctx->mu);
    ctx->done_cv.wait(lock, [&] {
      return ctx->busy.load(std::memory_order_acquire) == 0;
    });
    if (ctx->first_exception != nullptr) {
      std::rethrow_exception(ctx->first_exception);
    }
  }
}

}  // namespace sgb
