#include "common/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/fault_injection.h"

namespace sgb {

// The three failure-prone network operations of the server front-end; armed
// faults simulate a flaky client, a torn connection, or accept() running
// out of descriptors (tests/engine/governance_test.cc carries the coverage
// cases).
static FaultSite g_accept_fault("server.accept", Status::Code::kIoError);
static FaultSite g_read_fault("server.read", Status::Code::kIoError);
static FaultSite g_write_fault("server.write", Status::Code::kIoError);

namespace {

Status Errno(const char* op) {
  return Status::IoError(std::string(op) + ": " + std::strerror(errno));
}

}  // namespace

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::Shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Status Socket::WriteAll(const std::string& data) {
  SGB_RETURN_IF_ERROR(g_write_fault.Check());
  if (fd_ < 0) return Status::IoError("write on closed socket");
  size_t off = 0;
  while (off < data.size()) {
    // MSG_NOSIGNAL: a peer that hung up yields EPIPE instead of SIGPIPE.
    const ssize_t n = ::send(fd_, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<size_t> Socket::Read(char* buf, size_t cap) {
  SGB_RETURN_IF_ERROR(g_read_fault.Check());
  if (fd_ < 0) return Status::IoError("read on closed socket");
  while (true) {
    const ssize_t n = ::recv(fd_, buf, cap, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    return static_cast<size_t>(n);
  }
}

Result<bool> LineReader::ReadLine(std::string* line, size_t max_line_bytes) {
  while (true) {
    const size_t nl = buffer_.find('\n', pos_);
    if (nl != std::string::npos) {
      size_t end = nl;
      if (end > pos_ && buffer_[end - 1] == '\r') --end;
      line->assign(buffer_, pos_, end - pos_);
      pos_ = nl + 1;
      // Compact once the consumed prefix dominates the buffer.
      if (pos_ > 4096 && pos_ * 2 > buffer_.size()) {
        buffer_.erase(0, pos_);
        pos_ = 0;
      }
      return true;
    }
    if (buffer_.size() - pos_ > max_line_bytes) {
      return Status::IoError("line exceeds " +
                             std::to_string(max_line_bytes) + " bytes");
    }
    if (eof_) {
      if (pos_ < buffer_.size()) {
        return Status::IoError("connection closed mid-line");
      }
      return false;
    }
    char chunk[4096];
    auto n = socket_->Read(chunk, sizeof(chunk));
    if (!n.ok()) return n.status();
    if (n.value() == 0) {
      eof_ = true;
      continue;
    }
    buffer_.append(chunk, n.value());
  }
}

Listener::~Listener() { Close(); }

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    Close();
    socket_ = std::move(other.socket_);
    unix_path_ = std::move(other.unix_path_);
    port_ = other.port_;
    other.unix_path_.clear();
    other.port_ = 0;
  }
  return *this;
}

void Listener::Close() {
  // shutdown() first so a thread blocked in accept() on this fd wakes with
  // an error instead of racing the close.
  socket_.Shutdown();
  socket_.Close();
  if (!unix_path_.empty()) {
    ::unlink(unix_path_.c_str());
    unix_path_.clear();
  }
}

Result<Listener> Listener::ListenUnix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket sock(fd);
  ::unlink(path.c_str());  // stale socket file from a crashed server
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Errno("bind");
  }
  if (::listen(fd, 64) != 0) return Errno("listen");

  Listener listener;
  listener.socket_ = std::move(sock);
  listener.unix_path_ = path;
  return listener;
}

Result<Listener> Listener::ListenTcp(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket sock(fd);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Errno("bind");
  }
  if (::listen(fd, 64) != 0) return Errno("listen");

  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Errno("getsockname");
  }

  Listener listener;
  listener.socket_ = std::move(sock);
  listener.port_ = ntohs(addr.sin_port);
  return listener;
}

Result<Socket> Listener::Accept() {
  SGB_RETURN_IF_ERROR(g_accept_fault.Check());
  if (!socket_.valid()) return Status::IoError("accept on closed listener");
  while (true) {
    const int fd = ::accept(socket_.fd(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return Errno("accept");
    }
    return Socket(fd);
  }
}

Result<Socket> ConnectUnix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket sock(fd);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Errno("connect");
  }
  return sock;
}

Result<Socket> ConnectTcp(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket sock(fd);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Errno("connect");
  }
  return sock;
}

}  // namespace sgb
