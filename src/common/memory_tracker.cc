#include "common/memory_tracker.h"

#include <cstdlib>

namespace sgb {

bool MemoryTracker::ConsumeLocal(size_t bytes) {
  const size_t now = usage_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  const size_t limit = limit_.load(std::memory_order_relaxed);
  if (limit != 0 && now > limit) {
    usage_.fetch_sub(bytes, std::memory_order_relaxed);
    return false;
  }
  size_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
  return true;
}

Status MemoryTracker::TryConsume(size_t bytes) {
  if (bytes == 0) return Status::OK();
  if (!ConsumeLocal(bytes)) {
    return Status::ResourceExhausted(
        "memory budget exceeded on tracker '" + name_ + "': usage " +
        std::to_string(usage_bytes()) + "B + " + std::to_string(bytes) +
        "B > limit " + std::to_string(limit_bytes()) + "B");
  }
  if (parent_ != nullptr) {
    Status parent_status = parent_->TryConsume(bytes);
    if (!parent_status.ok()) {
      usage_.fetch_sub(bytes, std::memory_order_relaxed);
      return parent_status;
    }
  }
  return Status::OK();
}

void MemoryTracker::Release(size_t bytes) {
  if (bytes == 0) return;
  usage_.fetch_sub(bytes, std::memory_order_relaxed);
  if (parent_ != nullptr) parent_->Release(bytes);
}

MemoryTracker& MemoryTracker::EngineGlobal() {
  static auto* tracker = [] {
    size_t limit = 0;
    if (const char* env = std::getenv("SGB_ENGINE_MEMORY_LIMIT")) {
      limit = static_cast<size_t>(std::strtoull(env, nullptr, 10));
    }
    return new MemoryTracker("engine", nullptr, limit);
  }();
  return *tracker;
}

}  // namespace sgb
