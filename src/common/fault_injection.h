#ifndef SGB_COMMON_FAULT_INJECTION_H_
#define SGB_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace sgb {

/// Deterministic fault-injection framework: named sites planted at the
/// engine's failure-prone operations (allocation, thread-pool submission,
/// CSV I/O) that normally do nothing, but can be armed — per site, via API
/// or the SGB_FAULTS environment variable — to fail with a Status so every
/// error path is reachable from tests.
///
/// Policies:
///  * trigger-on-Nth-hit: the site fails exactly on its Nth upcoming hit
///    (single-shot, fully deterministic);
///  * probability-with-seed: each hit fails with probability p, decided by
///    a SplitMix64 hash of (seed, hit index) — reproducible across runs
///    and thread interleavings for a fixed per-site hit order.
///
/// Environment syntax (parsed once, at first registry use):
///   SGB_FAULTS="engine.csv.read=nth:1;engine.table.append=prob:0.01:42"
///
/// Sites register themselves at static-initialization time through the
/// file-local `FaultSite` objects in the planting .cc, so
/// `FaultRegistry::Global().Sites()` enumerates every site in the binary
/// whether or not it has executed — which is what lets the fault-coverage
/// test enforce that each one is exercised.
///
/// Overhead when disarmed: one relaxed fetch_add (the hit counter) and one
/// relaxed load per hit.
class FaultRegistry {
 public:
  static FaultRegistry& Global();

  /// Fails the site's Nth upcoming hit (nth >= 1; 1 = the next hit), then
  /// disarms. Unknown sites are created, so faults can be armed before the
  /// code registering the site has run.
  void ArmNthHit(const std::string& site, uint64_t nth);

  /// Fails each upcoming hit independently with probability `p` in [0, 1],
  /// decided by hash(seed, hit index). Stays armed until Disarm.
  void ArmProbability(const std::string& site, double p, uint64_t seed);

  void Disarm(const std::string& site);

  /// Disarms every site and zeroes all hit/injected counters.
  void Reset();

  /// Name-sorted list of every known site.
  std::vector<std::string> Sites() const;

  /// Total times the site was reached / actually failed.
  uint64_t Hits(const std::string& site) const;
  uint64_t Injected(const std::string& site) const;

 private:
  friend class FaultSite;
  struct SiteState;

  FaultRegistry();
  SiteState* GetOrCreate(const std::string& site);

  // Opaque to keep <map>/<mutex> out of this widely-included header.
  struct Impl;
  Impl* impl_;
};

/// Cached handle to one fault site. Declare as a file-local object in the
/// .cc that plants the site, then consult it on the failure-prone path:
///
///   static FaultSite kCsvReadFault{"engine.csv.read",
///                                  Status::Code::kIoError};
///   ...
///   SGB_RETURN_IF_ERROR(kCsvReadFault.Check());
///
/// Check() is safe from any thread.
class FaultSite {
 public:
  FaultSite(const char* name, Status::Code code = Status::Code::kInternal);

  /// OK, or — when the site's armed policy fires on this hit — a Status of
  /// the site's code with a "fault injected" message.
  Status Check();

  const char* name() const { return name_; }

 private:
  const char* name_;
  Status::Code code_;
  FaultRegistry::SiteState* state_;
};

}  // namespace sgb

#endif  // SGB_COMMON_FAULT_INJECTION_H_
