#ifndef SGB_COMMON_MEMORY_TRACKER_H_
#define SGB_COMMON_MEMORY_TRACKER_H_

#include <atomic>
#include <cstddef>
#include <string>

#include "common/status.h"

namespace sgb {

/// Hierarchical byte-accounting for query execution, in the style of the
/// ClickHouse/Impala memory trackers: every tracker charges itself and then
/// its parent, so a per-query tracker rolls up into the engine-global one.
/// Operators, the SGB cores, the grid/R-tree indexes and the row-batch
/// buffers all charge the tracker of the query they run under; a query
/// whose charge would push any tracker in the chain past its limit fails
/// with `Status::ResourceExhausted` instead of OOM-ing the process.
///
/// All methods are thread-safe and lock-free (parallel SGB workers charge
/// the same per-query tracker concurrently). Charges are estimates
/// (ApproxRowVectorBytes-style), not malloc-exact: the point is bounding
/// and observing the dominant buffers, not bit-exact accounting.
class MemoryTracker {
 public:
  /// `limit_bytes` == 0 means unlimited. The parent, when given, must
  /// outlive this tracker.
  explicit MemoryTracker(std::string name, MemoryTracker* parent = nullptr,
                         size_t limit_bytes = 0)
      : name_(std::move(name)), parent_(parent), limit_(limit_bytes) {}

  /// Releases any outstanding usage from the parent chain, so a destroyed
  /// per-query tracker never leaks accounting into the engine-global one.
  ~MemoryTracker() {
    const size_t outstanding = usage_.load(std::memory_order_relaxed);
    if (outstanding > 0 && parent_ != nullptr) parent_->Release(outstanding);
  }

  MemoryTracker(const MemoryTracker&) = delete;
  MemoryTracker& operator=(const MemoryTracker&) = delete;

  /// Charges `bytes` against this tracker and every ancestor. On a limit
  /// breach anywhere in the chain the partial charge is rolled back and
  /// ResourceExhausted (naming the breached tracker and its limit) is
  /// returned; usage is unchanged in that case.
  Status TryConsume(size_t bytes);

  /// Undoes a successful TryConsume (whole chain).
  void Release(size_t bytes);

  size_t usage_bytes() const { return usage_.load(std::memory_order_relaxed); }
  size_t peak_bytes() const { return peak_.load(std::memory_order_relaxed); }
  size_t limit_bytes() const { return limit_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

  /// 0 = unlimited. Applies to future TryConsume calls only.
  void set_limit_bytes(size_t bytes) {
    limit_.store(bytes, std::memory_order_relaxed);
  }

  /// Zeroes the peak watermark (usage is untouched); used between bench
  /// phases and tests.
  void ResetPeak() {
    peak_.store(usage_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  }

  /// The engine-wide root tracker every per-query tracker parents to.
  /// Unlimited by default; `SGB_ENGINE_MEMORY_LIMIT` (bytes) in the
  /// environment sets a process-wide limit at first use.
  static MemoryTracker& EngineGlobal();

 private:
  /// Charges only this tracker; returns false (and rolls back) on breach.
  bool ConsumeLocal(size_t bytes);

  const std::string name_;
  MemoryTracker* const parent_;
  std::atomic<size_t> limit_;
  std::atomic<size_t> usage_{0};
  std::atomic<size_t> peak_{0};
};

}  // namespace sgb

#endif  // SGB_COMMON_MEMORY_TRACKER_H_
