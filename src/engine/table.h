#ifndef SGB_ENGINE_TABLE_H_
#define SGB_ENGINE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/schema.h"
#include "engine/value.h"

namespace sgb::engine {

/// An in-memory row-store table: the engine's only storage format.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  const std::vector<Row>& rows() const { return rows_; }
  size_t NumRows() const { return rows_.size(); }

  /// Appends a row; the arity must match the schema.
  Status Append(Row row);

  void Reserve(size_t rows) { rows_.reserve(rows); }

  /// Renders the table as an aligned text grid (for examples and docs).
  std::string ToString(size_t max_rows = 20) const;

 private:
  Schema schema_;
  std::vector<Row> rows_;
};

using TablePtr = std::shared_ptr<const Table>;

}  // namespace sgb::engine

#endif  // SGB_ENGINE_TABLE_H_
