#include "engine/expression.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <utility>
#include <vector>

namespace sgb::engine {

const char* ToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
  }
  return "?";
}

Value EvaluateBinary(BinaryOp op, const Value& left, const Value& right) {
  switch (op) {
    case BinaryOp::kAnd:
      return Value::Bool(left.ToBool() && right.ToBool());
    case BinaryOp::kOr:
      return Value::Bool(left.ToBool() || right.ToBool());
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe: {
      if (left.is_null() || right.is_null()) return Value::Bool(false);
      const int c = Value::Compare(left, right);
      switch (op) {
        case BinaryOp::kEq:
          return Value::Bool(c == 0);
        case BinaryOp::kNe:
          return Value::Bool(c != 0);
        case BinaryOp::kLt:
          return Value::Bool(c < 0);
        case BinaryOp::kLe:
          return Value::Bool(c <= 0);
        case BinaryOp::kGt:
          return Value::Bool(c > 0);
        default:
          return Value::Bool(c >= 0);
      }
    }
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv: {
      if (left.is_null() || right.is_null()) return Value::Null();
      const bool integral = left.type() == DataType::kInt64 &&
                            right.type() == DataType::kInt64 &&
                            op != BinaryOp::kDiv;
      if (integral) {
        const int64_t a = left.AsInt();
        const int64_t b = right.AsInt();
        switch (op) {
          case BinaryOp::kAdd:
            return Value::Int(a + b);
          case BinaryOp::kSub:
            return Value::Int(a - b);
          default:
            return Value::Int(a * b);
        }
      }
      const double a = left.ToDouble();
      const double b = right.ToDouble();
      switch (op) {
        case BinaryOp::kAdd:
          return Value::Double(a + b);
        case BinaryOp::kSub:
          return Value::Double(a - b);
        case BinaryOp::kMul:
          return Value::Double(a * b);
        default:
          return Value::Double(a / b);
      }
    }
  }
  return Value::Null();
}

namespace {

class ColumnRefExpr final : public Expression {
 public:
  ColumnRefExpr(size_t index, std::string name)
      : index_(index), name_(std::move(name)) {}
  Value Evaluate(const Row& row) const override { return row[index_]; }
  std::string ToString() const override { return name_; }

 private:
  size_t index_;
  std::string name_;
};

class LiteralExpr final : public Expression {
 public:
  explicit LiteralExpr(Value value) : value_(std::move(value)) {}
  Value Evaluate(const Row&) const override { return value_; }
  std::string ToString() const override { return value_.ToString(); }

 private:
  Value value_;
};

class BinaryExpr final : public Expression {
 public:
  BinaryExpr(BinaryOp op, ExprPtr left, ExprPtr right)
      : op_(op), left_(std::move(left)), right_(std::move(right)) {}
  Value Evaluate(const Row& row) const override {
    return EvaluateBinary(op_, left_->Evaluate(row), right_->Evaluate(row));
  }
  std::string ToString() const override {
    return "(" + left_->ToString() + " " + sgb::engine::ToString(op_) + " " +
           right_->ToString() + ")";
  }

 private:
  BinaryOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

class NotExpr final : public Expression {
 public:
  explicit NotExpr(ExprPtr operand) : operand_(std::move(operand)) {}
  Value Evaluate(const Row& row) const override {
    return Value::Bool(!operand_->Evaluate(row).ToBool());
  }
  std::string ToString() const override {
    return "(NOT " + operand_->ToString() + ")";
  }

 private:
  ExprPtr operand_;
};

class NegateExpr final : public Expression {
 public:
  explicit NegateExpr(ExprPtr operand) : operand_(std::move(operand)) {}
  Value Evaluate(const Row& row) const override {
    const Value v = operand_->Evaluate(row);
    if (v.type() == DataType::kInt64) return Value::Int(-v.AsInt());
    if (v.type() == DataType::kDouble) return Value::Double(-v.AsDouble());
    return Value::Null();
  }
  std::string ToString() const override {
    return "(-" + operand_->ToString() + ")";
  }

 private:
  ExprPtr operand_;
};

class InSetExpr final : public Expression {
 public:
  InSetExpr(ExprPtr probe, std::shared_ptr<const ValueSet> set)
      : probe_(std::move(probe)), set_(std::move(set)) {}
  Value Evaluate(const Row& row) const override {
    const Value v = probe_->Evaluate(row);
    if (v.is_null()) return Value::Bool(false);
    return Value::Bool(set_->count(v) > 0);
  }
  std::string ToString() const override {
    return probe_->ToString() + " IN (<" + std::to_string(set_->size()) +
           " values>)";
  }

 private:
  ExprPtr probe_;
  std::shared_ptr<const ValueSet> set_;
};

}  // namespace

ExprPtr MakeColumnRef(size_t index, std::string name) {
  return std::make_unique<ColumnRefExpr>(index, std::move(name));
}

ExprPtr MakeLiteral(Value value) {
  return std::make_unique<LiteralExpr>(std::move(value));
}

ExprPtr MakeBinary(BinaryOp op, ExprPtr left, ExprPtr right) {
  return std::make_unique<BinaryExpr>(op, std::move(left), std::move(right));
}

ExprPtr MakeNot(ExprPtr operand) {
  return std::make_unique<NotExpr>(std::move(operand));
}

ExprPtr MakeNegate(ExprPtr operand) {
  return std::make_unique<NegateExpr>(std::move(operand));
}

ExprPtr MakeInSet(ExprPtr probe, std::shared_ptr<const ValueSet> set) {
  return std::make_unique<InSetExpr>(std::move(probe), std::move(set));
}

Result<ScalarFunction> ScalarFunctionFromName(const std::string& name) {
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "abs") return ScalarFunction::kAbs;
  if (lower == "sqrt") return ScalarFunction::kSqrt;
  if (lower == "floor") return ScalarFunction::kFloor;
  if (lower == "ceil" || lower == "ceiling") return ScalarFunction::kCeil;
  if (lower == "dist_l2" || lower == "distance_l2") {
    return ScalarFunction::kDistL2;
  }
  if (lower == "dist_linf" || lower == "distance_linf") {
    return ScalarFunction::kDistLInf;
  }
  return Status::NotFound("'" + name + "' is not a scalar function");
}

size_t ScalarFunctionArity(ScalarFunction fn) {
  switch (fn) {
    case ScalarFunction::kAbs:
    case ScalarFunction::kSqrt:
    case ScalarFunction::kFloor:
    case ScalarFunction::kCeil:
      return 1;
    case ScalarFunction::kDistL2:
    case ScalarFunction::kDistLInf:
      return 4;
  }
  return 0;
}

namespace {

const char* ScalarFunctionName(ScalarFunction fn) {
  switch (fn) {
    case ScalarFunction::kAbs:
      return "abs";
    case ScalarFunction::kSqrt:
      return "sqrt";
    case ScalarFunction::kFloor:
      return "floor";
    case ScalarFunction::kCeil:
      return "ceil";
    case ScalarFunction::kDistL2:
      return "dist_l2";
    case ScalarFunction::kDistLInf:
      return "dist_linf";
  }
  return "?";
}

class ScalarCallExpr final : public Expression {
 public:
  ScalarCallExpr(ScalarFunction fn, std::vector<ExprPtr> args)
      : fn_(fn), args_(std::move(args)) {}

  Value Evaluate(const Row& row) const override {
    Value v[4];
    const size_t arity = ScalarFunctionArity(fn_);
    for (size_t i = 0; i < arity; ++i) {
      v[i] = args_[i]->Evaluate(row);
      if (v[i].is_null()) return Value::Null();
    }
    switch (fn_) {
      case ScalarFunction::kAbs:
        if (v[0].type() == DataType::kInt64) {
          return Value::Int(std::llabs(v[0].AsInt()));
        }
        return Value::Double(std::fabs(v[0].ToDouble()));
      case ScalarFunction::kSqrt: {
        const double x = v[0].ToDouble();
        if (x < 0) return Value::Null();
        return Value::Double(std::sqrt(x));
      }
      case ScalarFunction::kFloor:
        return Value::Double(std::floor(v[0].ToDouble()));
      case ScalarFunction::kCeil:
        return Value::Double(std::ceil(v[0].ToDouble()));
      case ScalarFunction::kDistL2: {
        const double dx = v[0].ToDouble() - v[2].ToDouble();
        const double dy = v[1].ToDouble() - v[3].ToDouble();
        return Value::Double(std::sqrt(dx * dx + dy * dy));
      }
      case ScalarFunction::kDistLInf: {
        const double dx = std::fabs(v[0].ToDouble() - v[2].ToDouble());
        const double dy = std::fabs(v[1].ToDouble() - v[3].ToDouble());
        return Value::Double(std::fmax(dx, dy));
      }
    }
    return Value::Null();
  }

  std::string ToString() const override {
    std::string out = ScalarFunctionName(fn_);
    out += '(';
    for (size_t i = 0; i < args_.size(); ++i) {
      if (i > 0) out += ", ";
      out += args_[i]->ToString();
    }
    out += ')';
    return out;
  }

 private:
  ScalarFunction fn_;
  std::vector<ExprPtr> args_;
};

}  // namespace

ExprPtr MakeScalarCall(ScalarFunction fn, std::vector<ExprPtr> args) {
  return std::make_unique<ScalarCallExpr>(fn, std::move(args));
}

}  // namespace sgb::engine
