#ifndef SGB_ENGINE_EXPRESSION_H_
#define SGB_ENGINE_EXPRESSION_H_

#include <memory>
#include <string>
#include <unordered_set>

#include "common/status.h"
#include "engine/value.h"

namespace sgb::engine {

/// A bound, executable scalar expression evaluated against one row of a
/// known layout. Produced by the SQL binder (sql/planner.cc) or built
/// directly via the factory functions below when using the engine API.
///
/// Semantics (documented simplifications vs. full SQL):
///  * NULL propagates through arithmetic; comparisons with NULL are false
///    (two-valued logic rather than SQL's three-valued logic).
///  * `/` always yields a double; other int-int arithmetic stays integral.
class Expression {
 public:
  virtual ~Expression() = default;
  virtual Value Evaluate(const Row& row) const = 0;
  virtual std::string ToString() const = 0;
};

using ExprPtr = std::unique_ptr<Expression>;

enum class BinaryOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

const char* ToString(BinaryOp op);

/// References the row cell at `index`; `name` is only for diagnostics.
ExprPtr MakeColumnRef(size_t index, std::string name);

ExprPtr MakeLiteral(Value value);

ExprPtr MakeBinary(BinaryOp op, ExprPtr left, ExprPtr right);

ExprPtr MakeNot(ExprPtr operand);

/// Negation (unary minus).
ExprPtr MakeNegate(ExprPtr operand);

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};
struct ValueEq {
  bool operator()(const Value& a, const Value& b) const { return a == b; }
};
using ValueSet = std::unordered_set<Value, ValueHash, ValueEq>;

/// `expr IN (v1, v2, ...)` against a pre-materialized set — the planner
/// evaluates uncorrelated IN-subqueries eagerly into one of these.
ExprPtr MakeInSet(ExprPtr probe, std::shared_ptr<const ValueSet> set);

/// Built-in scalar functions callable from SQL. DIST_L2 / DIST_LINF
/// evaluate the paper's similarity distances directly in expressions, so
/// similarity joins can be written as ordinary theta-joins:
///   ... WHERE dist_l2(a.x, a.y, b.x, b.y) <= 0.5
enum class ScalarFunction {
  kAbs,       ///< abs(x)
  kSqrt,      ///< sqrt(x); NULL for negative input
  kFloor,     ///< floor(x)
  kCeil,      ///< ceil(x)
  kDistL2,    ///< dist_l2(x1, y1, x2, y2)
  kDistLInf,  ///< dist_linf(x1, y1, x2, y2)
};

/// Resolves a scalar function by SQL name (case-insensitive); NotFound for
/// unknown names.
Result<ScalarFunction> ScalarFunctionFromName(const std::string& name);

/// Number of arguments the function requires.
size_t ScalarFunctionArity(ScalarFunction fn);

ExprPtr MakeScalarCall(ScalarFunction fn, std::vector<ExprPtr> args);

/// Deep-copies columns out of `row` cheaply; utility for operators.
Value EvaluateBinary(BinaryOp op, const Value& left, const Value& right);

}  // namespace sgb::engine

#endif  // SGB_ENGINE_EXPRESSION_H_
