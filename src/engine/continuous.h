#ifndef SGB_ENGINE_CONTINUOUS_H_
#define SGB_ENGINE_CONTINUOUS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/memory_tracker.h"
#include "common/status.h"
#include "core/sgb_incremental.h"
#include "engine/catalog.h"
#include "engine/value.h"
#include "sql/ast.h"

namespace sgb {
class QueryContext;  // common/query_context.h
}

namespace sgb::engine {

/// One group-delta row streamed to subscribers when a window closes
/// (docs/STREAMING.md "Delta events"). Per-arrival events carry the
/// arrival's sequence number; the trailing "window_closed" summary row
/// carries point = -1 and the window's final group count.
struct GroupDelta {
  std::string kind;    ///< group_formed | member_added | groups_merged |
                       ///< window_closed
  int64_t point = -1;  ///< arrival sequence number (-1 for the summary row)
  int64_t groups = 0;  ///< prior groups touched; final count on the summary
};

/// Everything a window close emits, delivered to every subscriber of the
/// continuous query as one batch.
struct DeltaBatch {
  std::string query;
  double window_start = 0.0;
  double window_end = 0.0;
  size_t rows = 0;        ///< arrivals grouped in the window
  size_t num_groups = 0;  ///< groups at close (differentially verified)
  size_t eliminated = 0;  ///< ON-OVERLAP ELIMINATE casualties
  std::vector<GroupDelta> deltas;
};

/// Registry and maintenance engine for CREATE CONTINUOUS QUERY
/// (docs/STREAMING.md). Each registered query incrementally maintains a
/// similarity grouping (SGB-All via bounded regrouping over 3ε interaction
/// components, SGB-Any via union-find merge-on-arrival) over the event-time
/// windows of an append-only table. The executor forwards every successful
/// INSERT through OnInsert(); window close is driven by the watermark (the
/// maximum event time seen), and every close differentially checks the
/// maintained grouping against a from-scratch batch execution before any
/// delta is published — a mismatch fails the close (and the INSERT that
/// drove it) with Status::Internal.
///
/// Failure semantics: maintenance errors (memory budget, cancellation,
/// injected faults at `continuous.window_close`) propagate as the INSERT's
/// status. The base rows stay appended and the affected window stays open
/// with a self-consistent maintained state, so the next INSERT retries the
/// close and subscribers resume with the correct next delta.
///
/// Thread safety: all methods may be called concurrently; a manager-wide
/// mutex guards the registry and each query has its own mutex, taken in
/// that order. Subscriber callbacks run *outside* both locks.
class ContinuousQueryManager {
 public:
  /// Returns false to unsubscribe (e.g. the connection went away).
  using Subscriber = std::function<bool(const DeltaBatch&)>;

  ContinuousQueryManager();

  /// Registers `stmt` (validated against `catalog`): the SELECT must read
  /// one append-only table, carry DISTANCE-TO-ALL or DISTANCE-TO-ANY over
  /// two numeric columns, and a WINDOW clause with 0 < advance <= size over
  /// a numeric time column. `definition` is the original SQL, surfaced in
  /// system.continuous_queries.
  Status Create(const Catalog& catalog, sql::CreateContinuousStatement stmt,
                std::string definition);

  Status Drop(const std::string& name, bool if_exists);

  /// Maintenance hook, called by the executor after a successful INSERT
  /// into `table` (and after the catalog's stats-refresh bump, so a
  /// version change re-resolves the continuous plan first — observable as
  /// plan_rebuilds). Updates every continuous query over the table and
  /// closes every window the new watermark passes.
  Status OnInsert(const Catalog& catalog, const std::string& table,
                  const std::vector<Row>& rows);

  /// Attaches a subscriber to the named query; every subsequent window
  /// close delivers one DeltaBatch. Returns the subscription id.
  Result<uint64_t> Subscribe(const std::string& name, Subscriber fn);

  /// Detaches a subscription by id (no-op when already gone).
  void Unsubscribe(uint64_t id);

  /// Cooperatively cancels every maintenance operation in flight (the
  /// Database-wide Cancel() fans into this).
  void CancelActive();

  /// One row per registered query — the system.continuous_queries surface.
  Result<TablePtr> SystemRows() const;

  /// The tracker charged by all maintained window state ("continuous",
  /// parented to the engine-global tracker).
  const MemoryTracker& memory() const { return memory_; }

 private:
  struct Config;
  struct OpenWindow;
  struct Cq;

  static Status Resolve(const Catalog& catalog,
                        const sql::SelectStatement& select, Config* config);

  /// Closes `window` (erasing it from `cq.open` on success): differential
  /// check, delta batch construction, counters. Appends the batch to
  /// `closed` for post-lock delivery. Called with cq.mu held.
  Status CloseWindow(Cq& cq, int64_t index, QueryContext* ctx,
                     std::vector<DeltaBatch>* closed);

  /// Applies one arrival to one window's incremental core. Called with
  /// cq.mu held.
  Status ApplyArrival(Cq& cq, OpenWindow& window, double t, double x,
                      double y, QueryContext* ctx);

  void DeliverBatches(Cq& cq, const std::vector<DeltaBatch>& closed);

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Cq>> queries_;
  uint64_t next_subscription_id_ = 1;

  MemoryTracker memory_;

  /// Maintenance operations in flight, for CancelActive().
  mutable std::mutex active_mu_;
  std::vector<QueryContext*> active_;
};

/// Registers the system.continuous_queries virtual table.
void RegisterContinuousSystemTable(
    Catalog* catalog, std::shared_ptr<ContinuousQueryManager> manager);

/// The per-arrival identity key the continuous SGB-All maintenance feeds
/// into the JOIN-ANY arbitration (SgbAllOptions::arbitration_keys): a
/// SplitMix64 chain over the row's *content* only — never arrival order or
/// window-local position. Combined with the content-defined canonical
/// order (t, x, y) this makes every window close a pure function of the
/// window's row multiset, so shuffled arrivals of the same rows converge
/// to bit-identical groupings. Exposed so differential harnesses can build
/// a from-scratch batch oracle with the exact keys the incremental path
/// used (exact duplicate rows share a key, which is harmless: swapping
/// identical rows cannot change the result).
uint64_t ArrivalKey(double t, double x, double y);

}  // namespace sgb::engine

#endif  // SGB_ENGINE_CONTINUOUS_H_
