#include "engine/value.h"

#include <cmath>
#include <cstdio>
#include <functional>

namespace sgb::engine {

const char* ToString(DataType type) {
  switch (type) {
    case DataType::kNull:
      return "NULL";
    case DataType::kInt64:
      return "INT64";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
  }
  return "?";
}

double Value::ToDouble() const {
  switch (type()) {
    case DataType::kInt64:
      return static_cast<double>(AsInt());
    case DataType::kDouble:
      return AsDouble();
    default:
      return 0.0;
  }
}

bool Value::ToBool() const {
  switch (type()) {
    case DataType::kInt64:
      return AsInt() != 0;
    case DataType::kDouble:
      return AsDouble() != 0.0;
    default:
      return false;
  }
}

std::string Value::ToString() const {
  switch (type()) {
    case DataType::kNull:
      return "NULL";
    case DataType::kInt64:
      return std::to_string(AsInt());
    case DataType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", AsDouble());
      return buf;
    }
    case DataType::kString:
      return AsString();
  }
  return "?";
}

namespace {

/// Type rank for cross-type ordering: NULL < numeric < string.
int TypeRank(DataType type) {
  switch (type) {
    case DataType::kNull:
      return 0;
    case DataType::kInt64:
    case DataType::kDouble:
      return 1;
    case DataType::kString:
      return 2;
  }
  return 3;
}

}  // namespace

int Value::Compare(const Value& a, const Value& b) {
  const int ra = TypeRank(a.type());
  const int rb = TypeRank(b.type());
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (ra) {
    case 0:
      return 0;  // NULL == NULL for ordering purposes
    case 1: {
      if (a.type() == DataType::kInt64 && b.type() == DataType::kInt64) {
        const int64_t x = a.AsInt();
        const int64_t y = b.AsInt();
        return x < y ? -1 : (x > y ? 1 : 0);
      }
      const double x = a.ToDouble();
      const double y = b.ToDouble();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    default: {
      const int c = a.AsString().compare(b.AsString());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
  }
}

size_t Value::Hash() const {
  switch (type()) {
    case DataType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case DataType::kInt64: {
      // Hash integral doubles and int64s alike so == implies equal hash.
      return std::hash<double>()(static_cast<double>(AsInt()));
    }
    case DataType::kDouble:
      return std::hash<double>()(AsDouble());
    case DataType::kString:
      return std::hash<std::string>()(AsString());
  }
  return 0;
}

size_t RowHash::operator()(const Row& row) const {
  size_t h = 0x811c9dc5;
  for (const Value& v : row) {
    h ^= v.Hash() + 0x9e3779b9 + (h << 6) + (h >> 2);
  }
  return h;
}

bool RowEq::operator()(const Row& a, const Row& b) const {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (Value::Compare(a[i], b[i]) != 0) return false;
  }
  return true;
}

}  // namespace sgb::engine
