#ifndef SGB_ENGINE_SGB_OPERATOR_H_
#define SGB_ENGINE_SGB_OPERATOR_H_

#include <optional>
#include <variant>
#include <vector>

#include "core/sgb1d.h"
#include "core/sgb_types.h"
#include "engine/operators.h"

namespace sgb::engine {

/// Physical operator realizing the paper's SGB-All / SGB-Any from inside
/// the relational pipeline (Section 8.2): a blocking aggregate that drains
/// its child, treats (x, y) of every row as a point in the grouping space,
/// runs the core similarity grouping, and emits one row per output group:
///
///   [group_id INT64, aggregate results...]
///
/// Rows whose grouping attributes evaluate to NULL, and rows dropped by
/// ON-OVERLAP ELIMINATE, contribute to no group.
///
/// `mode` selects SGB-All (with its ON-OVERLAP clause inside
/// core::SgbAllOptions) or SGB-Any.
using SgbMode = std::variant<core::SgbAllOptions, core::SgbAnyOptions>;

OperatorPtr MakeSimilarityGroupBy(OperatorPtr child, ExprPtr x_expr,
                                  ExprPtr y_expr, SgbMode mode,
                                  std::vector<AggregateSpec> aggregates);

/// Three-dimensional variant (the paper's "two and three dimensional data
/// space" scope): grouping attributes (x, y, z), same semantics, backed by
/// core::SgbAllNd / core::SgbAnyNd with D = 3.
OperatorPtr MakeSimilarityGroupBy3d(OperatorPtr child, ExprPtr x_expr,
                                    ExprPtr y_expr, ExprPtr z_expr,
                                    SgbMode mode,
                                    std::vector<AggregateSpec> aggregates);

/// One-dimensional similarity grouping operator (the ICDE 2009 SGB-U/A/D
/// family) with the same output convention. Exactly one of the parameter
/// structs is active.
struct Sgb1dUnsupervised {
  double max_separation = 0.0;
  std::optional<double> max_diameter;
};
struct Sgb1dAround {
  std::vector<double> centers;
  std::optional<double> max_separation;
  std::optional<double> max_diameter;
};
struct Sgb1dDelimited {
  std::vector<double> delimiters;
};
using Sgb1dMode =
    std::variant<Sgb1dUnsupervised, Sgb1dAround, Sgb1dDelimited>;

OperatorPtr MakeSimilarityGroupBy1d(OperatorPtr child, ExprPtr value_expr,
                                    Sgb1dMode mode,
                                    std::vector<AggregateSpec> aggregates);

}  // namespace sgb::engine

#endif  // SGB_ENGINE_SGB_OPERATOR_H_
