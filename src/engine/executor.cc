#include "engine/executor.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "sql/parser.h"
#include "sql/planner.h"

namespace sgb::engine {

namespace {

/// Plans the statement under trace spans shared by every entry point. A SET
/// statement is surfaced through `set` with a null OperatorPtr (entry
/// points without a `set` sink reject it).
Result<OperatorPtr> PlanStatement(const Catalog& catalog,
                                  const std::string& sql,
                                  const sql::PlannerOptions& options,
                                  sql::ExplainMode* mode,
                                  std::optional<sql::SetStatement>* set,
                                  obs::QueryTrace* trace) {
  Result<sql::ParsedStatement> stmt = [&] {
    obs::ScopedSpan span(trace, "parse");
    return sql::ParseStatement(sql);
  }();
  if (!stmt.ok()) return stmt.status();
  if (mode != nullptr) *mode = stmt.value().explain;
  if (stmt.value().set.has_value()) {
    if (set == nullptr) {
      return Status::InvalidArgument(
          "SET statements are only valid through Database::Query");
    }
    *set = std::move(stmt.value().set);
    return OperatorPtr{};
  }
  obs::ScopedSpan span(trace, "plan");
  return sql::PlanQuery(catalog, *stmt.value().select, options);
}

/// Wraps a rendered plan string as a one-column `plan` table, one row per
/// line, so EXPLAIN flows through the normal Query() result path.
Result<Table> PlanTextTable(const std::string& text) {
  Schema schema;
  schema.AddColumn(Column{"plan", DataType::kString, ""});
  Table table(schema);
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    SGB_RETURN_IF_ERROR(
        table.Append(Row{Value::Str(text.substr(start, end - start))}));
    start = end + 1;
  }
  return table;
}

/// Drains the plan, recording engine-level metrics and the execute span.
Result<Table> Execute(Operator& root, obs::QueryTrace* trace) {
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("engine.queries").Add(1);
  obs::ScopedSpan span(trace, "execute");
  ScopedTimer<obs::Histogram> timer(&registry.GetHistogram("engine.query_us"));
  Result<Table> result = Materialize(root);
  if (result.ok()) {
    const double rows = static_cast<double>(result.value().NumRows());
    span.AddAttribute("rows", rows);
    registry.GetCounter("engine.rows_returned")
        .Add(result.value().NumRows());
  } else {
    registry.GetCounter("engine.query_errors").Add(1);
  }
  return result;
}

}  // namespace

Result<OperatorPtr> Database::Prepare(const std::string& sql) const {
  return PlanStatement(catalog_, sql, planner_options_, nullptr, nullptr,
                       nullptr);
}

Result<Table> Database::Query(const std::string& sql,
                              obs::QueryTrace* trace) const {
  sql::ExplainMode mode = sql::ExplainMode::kNone;
  std::optional<sql::SetStatement> set;
  auto plan =
      PlanStatement(catalog_, sql, planner_options_, &mode, &set, trace);
  if (!plan.ok()) return plan.status();
  if (set.has_value()) return ApplySet(*set);

  switch (mode) {
    case sql::ExplainMode::kPlan:
      return PlanTextTable(ExplainPlan(*plan.value()));
    case sql::ExplainMode::kAnalyze: {
      size_t peak_bytes = 0;
      auto result = RunPlan(*plan.value(), trace, &peak_bytes);
      if (!result.ok()) return result.status();
      return PlanTextTable(ExplainAnalyzePlan(*plan.value()) + "peak_mem=" +
                           FormatMemoryBytes(peak_bytes) + "\n");
    }
    case sql::ExplainMode::kNone:
      break;
  }
  return RunPlan(*plan.value(), trace, nullptr);
}

Result<std::string> Database::Explain(const std::string& sql) const {
  auto plan = PlanStatement(catalog_, sql, planner_options_, nullptr, nullptr,
                            nullptr);
  if (!plan.ok()) return plan.status();
  return ExplainPlan(*plan.value());
}

Result<std::string> Database::ExplainAnalyze(const std::string& sql,
                                             obs::QueryTrace* trace) const {
  auto plan = PlanStatement(catalog_, sql, planner_options_, nullptr, nullptr,
                            trace);
  if (!plan.ok()) return plan.status();
  size_t peak_bytes = 0;
  auto result = RunPlan(*plan.value(), trace, &peak_bytes);
  if (!result.ok()) return result.status();
  return ExplainAnalyzePlan(*plan.value()) + "peak_mem=" +
         FormatMemoryBytes(peak_bytes) + "\n";
}

void Database::Cancel() const {
  std::lock_guard<std::mutex> lock(active_->mu);
  for (QueryContext* ctx : active_->contexts) ctx->Cancel();
}

Result<Table> Database::ApplySet(const sql::SetStatement& set) const {
  if (set.value < 0) {
    return Status::InvalidArgument("SET " + set.name +
                                   ": value must be >= 0");
  }
  if (set.name == "timeout") {
    governance_.timeout_ms = set.value;
  } else if (set.name == "memory_budget") {
    governance_.memory_budget_bytes = static_cast<size_t>(set.value);
  } else if (set.name == "parallel") {
    planner_options_.default_sgb_dop = static_cast<int>(set.value);
  } else {
    return Status::InvalidArgument(
        "unknown setting '" + set.name +
        "' (expected timeout, memory_budget, or parallel)");
  }
  Schema schema;
  schema.AddColumn(Column{"set", DataType::kString, ""});
  Table table(schema);
  SGB_RETURN_IF_ERROR(table.Append(
      Row{Value::Str(set.name + " = " + std::to_string(set.value))}));
  return table;
}

Result<Table> Database::RunPlan(Operator& root, obs::QueryTrace* trace,
                                size_t* peak_bytes) const {
  QueryContext ctx(governance_.memory_budget_bytes);
  if (governance_.timeout_ms > 0) ctx.SetTimeout(governance_.timeout_ms);
  root.SetQueryContext(&ctx);
  {
    std::lock_guard<std::mutex> lock(active_->mu);
    active_->contexts.push_back(&ctx);
  }

  Result<Table> result = Execute(root, trace);

  {
    std::lock_guard<std::mutex> lock(active_->mu);
    auto& contexts = active_->contexts;
    contexts.erase(std::remove(contexts.begin(), contexts.end(), &ctx),
                   contexts.end());
  }
  const size_t peak = ctx.memory().peak_bytes();
  if (peak_bytes != nullptr) *peak_bytes = peak;
  // Detach before `ctx` dies: the plan can be re-executed or rendered later.
  root.SetQueryContext(nullptr);

  auto& registry = obs::MetricsRegistry::Global();
  registry.GetGauge("mem.query.peak").Set(static_cast<double>(peak));
  registry.GetGauge("mem.engine.usage")
      .Set(static_cast<double>(MemoryTracker::EngineGlobal().usage_bytes()));
  registry.GetGauge("mem.engine.peak")
      .Set(static_cast<double>(MemoryTracker::EngineGlobal().peak_bytes()));
  if (!result.ok()) {
    switch (result.status().code()) {
      case Status::Code::kCancelled:
        registry.GetCounter("query.cancelled").Add(1);
        break;
      case Status::Code::kDeadlineExceeded:
        registry.GetCounter("query.timeout").Add(1);
        break;
      case Status::Code::kResourceExhausted:
        registry.GetCounter("query.mem_exceeded").Add(1);
        break;
      default:
        break;
    }
  }
  return result;
}

}  // namespace sgb::engine
