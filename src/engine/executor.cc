#include "engine/executor.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <ctime>
#include <optional>
#include <utility>

#include "common/stopwatch.h"
#include "engine/system_tables.h"
#include "obs/metrics.h"
#include "sql/parser.h"
#include "sql/planner.h"
#include "stats/table_stats.h"

namespace sgb::engine {

namespace {

/// Process CPU time in microseconds (0 where the clock is unavailable).
/// Per-query CPU is the delta across the statement; on a busy engine it
/// includes concurrent queries' work — it is a load signal, not an exact
/// attribution.
int64_t ProcessCpuMicros() {
#if defined(CLOCK_PROCESS_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0) {
    return int64_t{ts.tv_sec} * 1'000'000 + ts.tv_nsec / 1000;
  }
#endif
  return 0;
}

int64_t ElapsedMicros(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// The query log's status column for a failed statement.
std::string StatusToLogString(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "ok";
    case Status::Code::kCancelled:
      return "cancelled";
    case Status::Code::kDeadlineExceeded:
      return "timeout";
    case Status::Code::kResourceExhausted:
      return "mem_exceeded";
    default:
      return "error";
  }
}

/// The query log's tier/dop columns, derived from the statement's
/// similarity clause before planning.
void FillSgbInfo(const sql::SelectStatement& stmt,
                 const sql::PlannerOptions& options, std::string* tier,
                 int64_t* dop) {
  using Kind = sql::SimilarityClause::Kind;
  switch (stmt.similarity.kind) {
    case Kind::kNone:
      *tier = "none";
      *dop = 0;
      return;
    case Kind::kAll:
      *tier = "sgb-all";
      break;
    case Kind::kAny:
      *tier = "sgb-any";
      break;
    default:
      *tier = "sgb-1d";
      break;
  }
  *dop = stmt.similarity.dop.value_or(options.default_sgb_dop);
}

/// The parsed non-SELECT statement kinds Query() executes directly.
struct NonSelect {
  std::optional<sql::SetStatement> set;
  std::optional<sql::CreateTableStatement> create;
  std::optional<sql::InsertStatement> insert;
  std::optional<sql::DropTableStatement> drop;
  std::optional<sql::AnalyzeStatement> analyze;
  std::optional<sql::CreateContinuousStatement> create_continuous;
  std::optional<sql::DropContinuousStatement> drop_continuous;
  std::optional<sql::CheckpointStatement> checkpoint;

  bool engaged() const {
    return set.has_value() || create.has_value() || insert.has_value() ||
           drop.has_value() || analyze.has_value() ||
           create_continuous.has_value() || drop_continuous.has_value() ||
           checkpoint.has_value();
  }
};

/// Catalog keys are lower-cased; the storage engine stores names verbatim,
/// so the executor lowers them once here to keep the two views aligned.
std::string LowerName(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

bool ExprHasSubquery(const sql::ParsedExpr& e) {
  if (e.kind == sql::ParsedExpr::Kind::kInSubquery) return true;
  if (e.left != nullptr && ExprHasSubquery(*e.left)) return true;
  if (e.right != nullptr && ExprHasSubquery(*e.right)) return true;
  for (const auto& arg : e.args) {
    if (arg != nullptr && ExprHasSubquery(*arg)) return true;
  }
  return false;
}

/// Whether a plan for `stmt` stays valid across executions at a fixed
/// catalog version. Virtual (system.*) tables materialize their snapshot
/// at plan time, and IN (SELECT ...) subqueries are folded at plan time,
/// so either one would freeze results; those statements are replanned
/// every run. Append-only tables are safe — their scans pin a fresh
/// snapshot at every Open.
bool SelectIsCacheSafe(const sql::SelectStatement& stmt,
                       const Catalog& catalog) {
  for (const sql::TableRef& ref : stmt.from) {
    if (ref.subquery != nullptr) {
      if (!SelectIsCacheSafe(*ref.subquery, catalog)) return false;
      continue;
    }
    if (catalog.IsVirtual(ref.table_name)) return false;
  }
  for (const auto& item : stmt.items) {
    if (item.expr != nullptr && ExprHasSubquery(*item.expr)) return false;
  }
  if (stmt.where != nullptr && ExprHasSubquery(*stmt.where)) return false;
  for (const auto& g : stmt.group_by) {
    if (g != nullptr && ExprHasSubquery(*g)) return false;
  }
  if (stmt.having != nullptr && ExprHasSubquery(*stmt.having)) return false;
  for (const auto& o : stmt.order_by) {
    if (o.expr != nullptr && ExprHasSubquery(*o.expr)) return false;
  }
  return true;
}

/// Plans the statement under trace spans shared by every entry point. A
/// non-SELECT statement (SET/CREATE/INSERT/DROP) is surfaced through
/// `non_select` with a null OperatorPtr (entry points without a sink
/// reject it). `plan_micros`/`tier`/`dop` (null-safe) receive the query
/// log's planning cost and SGB columns; `profile` whether the statement
/// carried a PROFILE prefix; `cache_safe` whether the resulting plan may
/// be reused at a fixed catalog version.
Result<OperatorPtr> PlanStatement(const Catalog& catalog,
                                  const std::string& sql,
                                  const sql::PlannerOptions& options,
                                  sql::ExplainMode* mode, bool* profile,
                                  NonSelect* non_select,
                                  obs::QueryTrace* trace,
                                  int64_t* plan_micros, std::string* tier,
                                  int64_t* dop, bool* cache_safe = nullptr,
                                  sql::PlanInfo* plan_info = nullptr) {
  const auto t0 = std::chrono::steady_clock::now();
  Result<sql::ParsedStatement> stmt = [&] {
    obs::ScopedSpan span(trace, "parse");
    return sql::ParseStatement(sql);
  }();
  if (!stmt.ok()) {
    if (plan_micros != nullptr) *plan_micros = ElapsedMicros(t0);
    return stmt.status();
  }
  if (mode != nullptr) *mode = stmt.value().explain;
  if (profile != nullptr) *profile = stmt.value().profile;
  if (stmt.value().select == nullptr) {
    if (non_select == nullptr) {
      return Status::InvalidArgument(
          "SET/CREATE/INSERT/DROP statements are only valid through "
          "Database::Query");
    }
    non_select->set = std::move(stmt.value().set);
    non_select->create = std::move(stmt.value().create);
    non_select->insert = std::move(stmt.value().insert);
    non_select->drop = std::move(stmt.value().drop);
    non_select->analyze = std::move(stmt.value().analyze);
    non_select->create_continuous = std::move(stmt.value().create_continuous);
    non_select->drop_continuous = std::move(stmt.value().drop_continuous);
    non_select->checkpoint = stmt.value().checkpoint;
    if (plan_micros != nullptr) *plan_micros = ElapsedMicros(t0);
    return OperatorPtr{};
  }
  if (stmt.value().select->window.has_value()) {
    return Status::InvalidArgument(
        "WINDOW is only valid inside CREATE CONTINUOUS QUERY ... AS SELECT");
  }
  if (tier != nullptr && dop != nullptr) {
    FillSgbInfo(*stmt.value().select, options, tier, dop);
  }
  if (cache_safe != nullptr) {
    *cache_safe = SelectIsCacheSafe(*stmt.value().select, catalog);
  }
  auto plan = [&] {
    obs::ScopedSpan span(trace, "plan");
    return sql::PlanQuery(catalog, *stmt.value().select, options, plan_info);
  }();
  if (plan_micros != nullptr) *plan_micros = ElapsedMicros(t0);
  // The cost model may override the pre-planning dop (auto-parallel SGB).
  if (plan.ok() && plan_info != nullptr && !plan_info->tier.empty() &&
      dop != nullptr) {
    *dop = plan_info->chosen_dop;
  }
  return plan;
}

/// Wraps a rendered plan string as a one-column `plan` table, one row per
/// line, so EXPLAIN flows through the normal Query() result path.
Result<Table> PlanTextTable(const std::string& text) {
  Schema schema;
  schema.AddColumn(Column{"plan", DataType::kString, ""});
  Table table(schema);
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    SGB_RETURN_IF_ERROR(
        table.Append(Row{Value::Str(text.substr(start, end - start))}));
    start = end + 1;
  }
  return table;
}

/// One-column acknowledgement table for SET/CREATE/INSERT/DROP.
Result<Table> AckTable(const std::string& column, const std::string& text) {
  Schema schema;
  schema.AddColumn(Column{column, DataType::kString, ""});
  Table table(schema);
  SGB_RETURN_IF_ERROR(table.Append(Row{Value::Str(text)}));
  return table;
}

/// Drains the plan, recording engine-level metrics and the execute span.
Result<Table> Execute(Operator& root, obs::QueryTrace* trace) {
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("engine.queries").Add(1);
  obs::ScopedSpan span(trace, "execute");
  ScopedTimer<obs::Histogram> timer(&registry.GetHistogram("engine.query_us"));
  Result<Table> result = Materialize(root);
  if (result.ok()) {
    const double rows = static_cast<double>(result.value().NumRows());
    span.AddAttribute("rows", rows);
    registry.GetCounter("engine.rows_returned")
        .Add(result.value().NumRows());
  } else {
    registry.GetCounter("engine.query_errors").Add(1);
  }
  return result;
}

/// EXPLAIN ANALYZE footer: peak memory, the statement's phase timings
/// (admission queue / planning / execution), plus, when the query spilled,
/// the spill totals (docs/ROBUSTNESS.md "Spill-to-disk").
std::string GovernanceFooter(size_t peak_bytes, uint64_t spill_events,
                             uint64_t spill_bytes, int64_t queue_micros,
                             int64_t plan_micros, int64_t exec_micros) {
  std::string footer = "peak_mem=" + FormatMemoryBytes(peak_bytes) + "\n";
  footer += "queue_micros=" + std::to_string(queue_micros) + "\n";
  footer += "plan_micros=" + std::to_string(plan_micros) + "\n";
  footer += "exec_micros=" + std::to_string(exec_micros) + "\n";
  if (spill_events > 0) {
    footer += "spilled=" + std::to_string(spill_events) + "\n";
    footer += "spill_bytes=" + std::to_string(spill_bytes) + "\n";
  }
  return footer;
}

/// Preorder walk collecting one system.operator_stats row per plan node.
void CollectOperatorStats(const Operator& op, uint64_t query_id,
                          int64_t depth, int64_t* index,
                          std::vector<obs::OperatorStatsEntry>* out) {
  obs::OperatorStatsEntry e;
  e.query_id = query_id;
  e.op_index = (*index)++;
  e.depth = depth;
  e.op = op.name();
  const OperatorStats& s = op.stats();
  e.rows = static_cast<int64_t>(s.rows_produced);
  e.batches = static_cast<int64_t>(s.batches);
  e.open_micros = static_cast<int64_t>(s.open_ns / 1000);
  e.next_micros = static_cast<int64_t>(s.next_ns / 1000);
  e.peak_memory_bytes = static_cast<int64_t>(s.peak_memory_bytes);
  out->push_back(std::move(e));
  for (const Operator* child : op.children()) {
    CollectOperatorStats(*child, query_id, depth + 1, index, out);
  }
}

/// Rows read from storage: the sum of every TableScan's output.
int64_t SumScanRows(const Operator& op) {
  int64_t total =
      op.name() == "TableScan"
          ? static_cast<int64_t>(op.stats().rows_produced)
          : 0;
  for (const Operator* child : op.children()) total += SumScanRows(*child);
  return total;
}

Schema ProfileSchema() {
  Schema s;
  s.AddColumn(Column{"id", DataType::kInt64, ""});
  s.AddColumn(Column{"parent_id", DataType::kInt64, ""});
  s.AddColumn(Column{"thread", DataType::kInt64, ""});
  s.AddColumn(Column{"operator", DataType::kString, ""});
  s.AddColumn(Column{"phase", DataType::kString, ""});
  s.AddColumn(Column{"start_us", DataType::kInt64, ""});
  s.AddColumn(Column{"end_us", DataType::kInt64, ""});
  s.AddColumn(Column{"wall_us", DataType::kInt64, ""});
  s.AddColumn(Column{"self_us", DataType::kInt64, ""});
  s.AddColumn(Column{"mem_bytes", DataType::kDouble, ""});
  s.AddColumn(Column{"kernels", DataType::kDouble, ""});
  return s;
}

/// One PROFILE row per span, preorder. `phase` is the top-level ancestor
/// (parse/plan/execute; "query" for the root itself). `self_us` is wall
/// time minus the direct children's wall time, clamped at 0 — for spans
/// whose children ran in parallel the children can overlap, so self time
/// is a lower bound there.
Status AppendProfileRows(const obs::TraceSpan& span, const std::string& phase,
                         Table* table) {
  uint64_t child_ns = 0;
  for (const obs::TraceSpan& child : span.children) {
    child_ns += child.duration_ns;
  }
  const uint64_t self_ns =
      span.duration_ns > child_ns ? span.duration_ns - child_ns : 0;
  const auto attr = [&span](const char* key) {
    const auto it = span.attributes.find(key);
    return it == span.attributes.end() ? Value::Null()
                                       : Value::Double(it->second);
  };
  // start/end truncate the span's ns endpoints (truncation is monotone, so
  // child intervals stay inside their parent's); wall is their difference,
  // keeping end = start + wall exact in the output.
  const int64_t start_us = static_cast<int64_t>(span.start_ns / 1000);
  const int64_t end_us =
      static_cast<int64_t>((span.start_ns + span.duration_ns) / 1000);
  SGB_RETURN_IF_ERROR(table->Append(
      Row{Value::Int(static_cast<int64_t>(span.id)),
          Value::Int(static_cast<int64_t>(span.parent_id)),
          Value::Int(static_cast<int64_t>(span.tid)), Value::Str(span.name),
          Value::Str(phase), Value::Int(start_us), Value::Int(end_us),
          Value::Int(end_us - start_us),
          Value::Int(static_cast<int64_t>(self_ns / 1000)),
          attr("mem_bytes"), attr("kernels")}));
  for (const obs::TraceSpan& child : span.children) {
    SGB_RETURN_IF_ERROR(AppendProfileRows(
        child, span.id == 0 ? child.name : phase, table));
  }
  return Status::OK();
}

Result<Table> ProfileTable(const obs::TraceSpan& root) {
  Table table(ProfileSchema());
  SGB_RETURN_IF_ERROR(AppendProfileRows(root, "query", &table));
  return table;
}

/// Whether the statement text can participate in the plan cache at all
/// (only bare SELECTs are cached; the cheap prefix test avoids counting
/// SET/DDL/EXPLAIN against the hit/miss ratio).
bool LooksLikeSelect(const std::string& normalized) {
  return normalized.rfind("select", 0) == 0;
}

}  // namespace

Database::Database() {
  RegisterSystemTables(&catalog_, query_log_, sessions_);
  RegisterContinuousSystemTable(&catalog_, continuous_);
}

Result<Database> Database::Open(const std::string& directory,
                                const storage::StorageOptions& options) {
  auto engine = storage::StorageEngine::Open(directory, options);
  if (!engine.ok()) return engine.status();
  Database db;
  db.storage_ = std::move(engine).value();
  // Mirror every recovered table into the catalog so the planner, system
  // tables, and continuous queries see them like any other table.
  for (const std::string& name : db.storage_->TableNames()) {
    SGB_RETURN_IF_ERROR(
        db.catalog_.RegisterPaged(name, db.storage_->Find(name)));
  }
  RegisterStorageSystemTables(&db.catalog_, db.storage_);
  return db;
}

Result<OperatorPtr> Database::Prepare(const std::string& sql) const {
  return PlanStatement(catalog_, sql, default_session_->PlannerOptionsSnapshot(),
                       nullptr, nullptr, nullptr, nullptr, nullptr, nullptr,
                       nullptr);
}

Result<Table> Database::Query(Session& session, const std::string& sql,
                              obs::QueryTrace* caller_trace) const {
  // Every execution records into a trace (the caller's, or a local one):
  // the query log, PROFILE, and SET trace = 1 all read from it. Tracing is
  // side-effect-free with respect to results.
  obs::QueryTrace local_trace;
  obs::QueryTrace* trace =
      caller_trace != nullptr ? caller_trace : &local_trace;

  StatementInfo info;
  info.text = sql;
  info.wall_start = std::chrono::steady_clock::now();
  info.cpu_start_micros = ProcessCpuMicros();

  // One consistent governance/planner view per statement: a concurrent SET
  // on this session applies from the next statement on.
  const SessionGovernance gov = session.GovernanceSnapshot();
  const sql::PlannerOptions options = session.PlannerOptionsSnapshot();

  // Plan-cache fast path: check a matching plan *out* (no two threads ever
  // drive one operator tree), run it, check it back in.
  const std::string cache_key = Session::NormalizeSql(sql);
  const bool cacheable_text = LooksLikeSelect(cache_key);
  const uint64_t catalog_version = catalog_.version();
  if (cacheable_text) {
    if (auto cached = session.TakeCachedPlan(cache_key, catalog_version)) {
      info.tier = cached->tier;
      info.dop = cached->dop;
      info.est_rows = cached->est_rows;
      info.est_bytes = cached->est_bytes;
      info.strategy = cached->strategy;
      RunStats stats;
      Result<Table> result =
          RunPlan(session, gov, *cached->plan, trace, &stats, info);
      // A plan that spilled holds its run files in operator state until it
      // is destroyed — drop it instead of pinning disk in the cache.
      if (stats.spill_events == 0) {
        session.StoreCachedPlan(cache_key, std::move(*cached));
      }
      return result;
    }
  }

  sql::ExplainMode mode = sql::ExplainMode::kNone;
  bool profile = false;
  NonSelect non_select;
  bool cache_safe = false;
  sql::PlanInfo plan_info;
  auto plan = PlanStatement(catalog_, sql, options, &mode, &profile,
                            &non_select, trace, &info.plan_micros, &info.tier,
                            &info.dop, &cache_safe, &plan_info);
  if (!plan.ok()) {
    LogFailedStatement(session, info);
    return plan.status();
  }
  if (non_select.set.has_value()) return ApplySet(session, *non_select.set);
  if (non_select.create.has_value()) {
    return ExecuteCreate(session, *non_select.create, &info);
  }
  if (non_select.insert.has_value()) {
    return ExecuteInsert(session, *non_select.insert, &info);
  }
  if (non_select.drop.has_value()) {
    return ExecuteDrop(session, *non_select.drop, &info);
  }
  if (non_select.analyze.has_value()) {
    return ExecuteAnalyze(session, *non_select.analyze, &info);
  }
  if (non_select.create_continuous.has_value()) {
    return ExecuteCreateContinuous(
        session, std::move(*non_select.create_continuous), &info);
  }
  if (non_select.drop_continuous.has_value()) {
    return ExecuteDropContinuous(session, *non_select.drop_continuous, &info);
  }
  if (non_select.checkpoint.has_value()) {
    return ExecuteCheckpoint(session, &info);
  }
  info.est_rows = static_cast<int64_t>(plan_info.est_rows);
  info.est_bytes = static_cast<size_t>(plan_info.est_bytes);
  info.strategy =
      !plan_info.tier.empty() ? plan_info.tier : plan_info.strategy;

  if (mode == sql::ExplainMode::kPlan) {
    return PlanTextTable(ExplainPlan(*plan.value()));
  }

  RunStats stats;
  Result<Table> result = RunPlan(session, gov, *plan.value(), trace, &stats,
                                 info);

  if (mode == sql::ExplainMode::kAnalyze) {
    if (!result.ok()) return result.status();
    return PlanTextTable(
        ExplainAnalyzePlan(*plan.value()) +
        GovernanceFooter(stats.peak_bytes, stats.spill_events,
                         stats.spill_bytes, stats.queue_micros,
                         stats.plan_micros, stats.exec_micros));
  }
  if (profile) {
    if (!result.ok()) return result.status();
    return ProfileTable(trace->root());
  }
  if (result.ok() && cacheable_text && cache_safe &&
      stats.spill_events == 0) {
    CachedPlan entry;
    entry.plan = std::move(plan).value();
    entry.catalog_version = catalog_version;
    entry.tier = info.tier;
    entry.dop = info.dop;
    entry.est_rows = info.est_rows;
    entry.est_bytes = info.est_bytes;
    entry.strategy = info.strategy;
    session.StoreCachedPlan(cache_key, std::move(entry));
  }
  return result;
}

Result<std::string> Database::Explain(const std::string& sql) const {
  auto plan = PlanStatement(catalog_, sql,
                            default_session_->PlannerOptionsSnapshot(),
                            nullptr, nullptr, nullptr, nullptr, nullptr,
                            nullptr, nullptr);
  if (!plan.ok()) return plan.status();
  return ExplainPlan(*plan.value());
}

Result<std::string> Database::ExplainAnalyze(
    const std::string& sql, obs::QueryTrace* caller_trace) const {
  obs::QueryTrace local_trace;
  obs::QueryTrace* trace =
      caller_trace != nullptr ? caller_trace : &local_trace;

  Session& session = *default_session_;
  StatementInfo info;
  info.text = sql;
  info.wall_start = std::chrono::steady_clock::now();
  info.cpu_start_micros = ProcessCpuMicros();

  const SessionGovernance gov = session.GovernanceSnapshot();
  auto plan = PlanStatement(catalog_, sql, session.PlannerOptionsSnapshot(),
                            nullptr, nullptr, nullptr, trace,
                            &info.plan_micros, &info.tier, &info.dop);
  if (!plan.ok()) {
    LogFailedStatement(session, info);
    return plan.status();
  }
  RunStats stats;
  auto result = RunPlan(session, gov, *plan.value(), trace, &stats, info);
  if (!result.ok()) return result.status();
  return ExplainAnalyzePlan(*plan.value()) +
         GovernanceFooter(stats.peak_bytes, stats.spill_events,
                          stats.spill_bytes, stats.queue_micros,
                          stats.plan_micros, stats.exec_micros);
}

Status Database::PrepareStatement(Session& session, const std::string& name,
                                  const std::string& sql) const {
  sql::ExplainMode mode = sql::ExplainMode::kNone;
  bool profile = false;
  bool cache_safe = false;
  std::string tier = "none";
  int64_t dop = 0;
  const uint64_t catalog_version = catalog_.version();
  auto plan = PlanStatement(catalog_, sql,
                            session.PlannerOptionsSnapshot(), &mode, &profile,
                            nullptr, nullptr, nullptr, &tier, &dop,
                            &cache_safe);
  if (!plan.ok()) return plan.status();
  session.DefinePrepared(name, sql);
  const std::string cache_key = Session::NormalizeSql(sql);
  if (mode == sql::ExplainMode::kNone && !profile && cache_safe &&
      LooksLikeSelect(cache_key)) {
    CachedPlan entry;
    entry.plan = std::move(plan).value();
    entry.catalog_version = catalog_version;
    entry.tier = tier;
    entry.dop = dop;
    session.StoreCachedPlan(cache_key, std::move(entry));
  }
  return Status::OK();
}

Result<Table> Database::ExecutePrepared(Session& session,
                                        const std::string& name,
                                        obs::QueryTrace* trace) const {
  auto sql = session.LookupPrepared(name);
  if (!sql.ok()) return sql.status();
  return Query(session, sql.value(), trace);
}

void Database::Cancel() const {
  {
    std::lock_guard<std::mutex> lock(active_->mu);
    for (QueryContext* ctx : active_->contexts) ctx->Cancel();
  }
  continuous_->CancelActive();
}

Result<Table> Database::ApplySet(Session& session,
                                 const sql::SetStatement& set) const {
  if (!set.text_value.empty()) {
    // Identifier-valued settings.
    if (set.name == "admission") {
      if (set.text_value == "off") {
        session.set_admission_mode(AdmissionMode::kOff);
      } else if (set.text_value == "queue") {
        session.set_admission_mode(AdmissionMode::kQueue);
      } else if (set.text_value == "shed") {
        session.set_admission_mode(AdmissionMode::kShed);
      } else {
        return Status::InvalidArgument("SET admission: expected queue, "
                                       "shed, or off, got '" +
                                       set.text_value + "'");
      }
    } else if (set.name == "sgb_tier") {
      if (set.text_value == "auto") {
        session.set_sgb_tier(sql::TierPolicy::kAuto);
      } else if (set.text_value == "all_pairs") {
        session.set_sgb_tier(sql::TierPolicy::kAllPairs);
      } else if (set.text_value == "bounds") {
        session.set_sgb_tier(sql::TierPolicy::kBounds);
      } else if (set.text_value == "indexed") {
        session.set_sgb_tier(sql::TierPolicy::kIndexed);
      } else {
        return Status::InvalidArgument(
            "SET sgb_tier: expected auto, all_pairs, bounds, or indexed, "
            "got '" + set.text_value + "'");
      }
    } else if (set.name == "agg_strategy") {
      if (set.text_value == "auto") {
        session.set_agg_strategy(sql::AggStrategy::kAuto);
      } else if (set.text_value == "hash") {
        session.set_agg_strategy(sql::AggStrategy::kHash);
      } else if (set.text_value == "sort") {
        session.set_agg_strategy(sql::AggStrategy::kSort);
      } else {
        return Status::InvalidArgument(
            "SET agg_strategy: expected auto, hash, or sort, got '" +
            set.text_value + "'");
      }
    } else if (set.name == "eviction") {
      if (storage_ == nullptr) {
        return Status::InvalidArgument(
            "SET eviction requires a disk-backed database (Database::Open)");
      }
      auto kind = storage::ParseEvictionPolicy(set.text_value);
      if (!kind.ok()) return kind.status();
      SGB_RETURN_IF_ERROR(storage_->SetEvictionPolicy(kind.value()));
    } else {
      return Status::InvalidArgument(
          "SET " + set.name + ": expected an integer value, got '" +
          set.text_value + "'");
    }
    return AckTable("set", set.name + " = " + set.text_value);
  }
  if (set.value < 0) {
    return Status::InvalidArgument("SET " + set.name +
                                   ": value must be >= 0");
  }
  if (set.name == "timeout") {
    session.set_timeout_ms(set.value);
  } else if (set.name == "memory_budget") {
    session.set_memory_budget_bytes(static_cast<size_t>(set.value));
  } else if (set.name == "parallel") {
    session.set_default_sgb_dop(static_cast<int>(set.value));
  } else if (set.name == "spill") {
    session.set_spill_enabled(set.value != 0);
  } else if (set.name == "admission_budget") {
    session.set_admission_budget_bytes(static_cast<size_t>(set.value));
  } else if (set.name == "trace") {
    session.set_trace_enabled(set.value != 0);
  } else if (set.name == "slow_query_micros") {
    session.set_slow_query_micros(set.value);
  } else if (set.name == "buffer_pool_bytes") {
    if (storage_ == nullptr) {
      return Status::InvalidArgument(
          "SET buffer_pool_bytes requires a disk-backed database "
          "(Database::Open)");
    }
    SGB_RETURN_IF_ERROR(
        storage_->SetBufferPoolBytes(static_cast<size_t>(set.value)));
  } else {
    return Status::InvalidArgument(
        "unknown setting '" + set.name +
        "' (expected timeout, memory_budget, parallel, spill, admission, "
        "admission_budget, trace, slow_query_micros, sgb_tier, "
        "agg_strategy, buffer_pool_bytes, or eviction)");
  }
  return AckTable("set", set.name + " = " + std::to_string(set.value));
}

Result<Table> Database::ExecuteCreate(Session& session,
                                      const sql::CreateTableStatement& create,
                                      StatementInfo* info) const {
  Schema schema;
  for (const Column& col : create.columns) schema.AddColumn(col);
  Status status;
  if (storage_ != nullptr) {
    // Disk-backed database: the table lives in the storage engine (WAL +
    // pages) and is mirrored into the catalog for the planner.
    const std::string name = LowerName(create.table);
    if (catalog_.Contains(name) && !catalog_.IsPaged(name)) {
      status = create.if_not_exists
                   ? Status::OK()
                   : Status::InvalidArgument("table '" + create.table +
                                             "' already exists");
    } else {
      bool created = false;
      status = storage_->CreateTable(name, schema, create.if_not_exists,
                                     &created);
      if (status.ok() && created) {
        status = catalog_.RegisterPaged(name, storage_->Find(name));
      }
    }
  } else {
    status = catalog_.CreateAppendable(create.table, std::move(schema),
                                       create.if_not_exists);
  }
  LogSimpleStatement(session, *info, status, 0);
  if (!status.ok()) return status;
  return AckTable("create", "CREATE TABLE " + create.table);
}

Result<Table> Database::ExecuteInsert(Session& session,
                                      const sql::InsertStatement& insert,
                                      StatementInfo* info) const {
  if (storage_ != nullptr && catalog_.IsPaged(insert.table)) {
    const int64_t n = static_cast<int64_t>(insert.rows.size());
    Status status = storage_->Insert(LowerName(insert.table), insert.rows);
    if (status.ok()) {
      catalog_.AddStatsRowDelta(insert.table, insert.rows.size());
      status = continuous_->OnInsert(catalog_, insert.table, insert.rows);
    }
    LogSimpleStatement(session, *info, status, status.ok() ? n : 0);
    if (!status.ok()) return status;
    return AckTable("insert", "INSERT " + std::to_string(n));
  }
  AppendTablePtr table = catalog_.FindAppendable(insert.table);
  if (table == nullptr) {
    const Status status =
        catalog_.Contains(insert.table)
            ? Status::InvalidArgument(
                  "table '" + insert.table +
                  "' does not accept INSERT (only CREATE TABLE tables do)")
            : Status::NotFound("no table named '" + insert.table + "'");
    LogSimpleStatement(session, *info, status, 0);
    return status;
  }
  const int64_t n = static_cast<int64_t>(insert.rows.size());
  Status status = table->Append(insert.rows);
  if (status.ok()) {
    // Keep the optimizer's row counts fresh: growth beyond 10% of the last
    // ANALYZE bumps the catalog version, invalidating cached plans whose
    // cost-model choices are now stale.
    catalog_.AddStatsRowDelta(insert.table, insert.rows.size());
    // Continuous-query maintenance (docs/STREAMING.md): a failure here —
    // budget breach, cancellation, a divergent or fault-injected window
    // close — fails the INSERT, but the rows above stay appended; the next
    // INSERT retries the close.
    status = continuous_->OnInsert(catalog_, insert.table, insert.rows);
  }
  LogSimpleStatement(session, *info, status, status.ok() ? n : 0);
  if (!status.ok()) return status;
  return AckTable("insert", "INSERT " + std::to_string(n));
}

Result<Table> Database::ExecuteDrop(Session& session,
                                    const sql::DropTableStatement& drop,
                                    StatementInfo* info) const {
  Status status;
  if (storage_ != nullptr && catalog_.IsPaged(drop.table)) {
    // WAL the drop first; only a durably dropped table leaves the catalog.
    status = storage_->DropTable(LowerName(drop.table), drop.if_exists);
    if (status.ok()) status = catalog_.Drop(drop.table, drop.if_exists);
  } else {
    status = catalog_.Drop(drop.table, drop.if_exists);
  }
  LogSimpleStatement(session, *info, status, 0);
  if (!status.ok()) return status;
  return AckTable("drop", "DROP TABLE " + drop.table);
}

Result<Table> Database::ExecuteAnalyze(Session& session,
                                       const sql::AnalyzeStatement& analyze,
                                       StatementInfo* info) const {
  std::vector<std::string> names;
  if (!analyze.table.empty()) {
    if (catalog_.IsVirtual(analyze.table)) {
      const Status status = Status::InvalidArgument(
          "ANALYZE: system table '" + analyze.table +
          "' has no statistics");
      LogSimpleStatement(session, *info, status, 0);
      return status;
    }
    names.push_back(analyze.table);
  } else {
    for (const std::string& name : catalog_.TableNames()) {
      if (!catalog_.IsVirtual(name)) names.push_back(name);
    }
  }
  int64_t rows = 0;
  for (const std::string& name : names) {
    auto table = catalog_.Get(name);
    if (!table.ok()) {
      LogSimpleStatement(session, *info, table.status(), 0);
      return table.status();
    }
    auto stats = std::make_shared<stats::TableStats>(
        stats::ComputeTableStats(name, *table.value()));
    rows += static_cast<int64_t>(stats->row_count);
    catalog_.SetStats(name, std::move(stats));
  }
  const Status status = Status::OK();
  LogSimpleStatement(session, *info, status, rows);
  return AckTable("analyze",
                  "ANALYZE " + std::to_string(names.size()) + " table" +
                      (names.size() == 1 ? "" : "s") + ", " +
                      std::to_string(rows) + " rows");
}

Result<Table> Database::ExecuteCreateContinuous(
    Session& session, sql::CreateContinuousStatement stmt,
    StatementInfo* info) const {
  const std::string name = stmt.name;
  const Status status =
      continuous_->Create(catalog_, std::move(stmt), info->text);
  LogSimpleStatement(session, *info, status, 0);
  if (!status.ok()) return status;
  return AckTable("create", "CREATE CONTINUOUS QUERY " + name);
}

Result<Table> Database::ExecuteDropContinuous(
    Session& session, const sql::DropContinuousStatement& drop,
    StatementInfo* info) const {
  const Status status = continuous_->Drop(drop.name, drop.if_exists);
  LogSimpleStatement(session, *info, status, 0);
  if (!status.ok()) return status;
  return AckTable("drop", "DROP CONTINUOUS QUERY " + drop.name);
}

Result<Table> Database::ExecuteCheckpoint(Session& session,
                                          StatementInfo* info) const {
  const Status status =
      storage_ == nullptr
          ? Status::InvalidArgument(
                "CHECKPOINT requires a disk-backed database "
                "(Database::Open)")
          : storage_->Checkpoint();
  LogSimpleStatement(session, *info, status, 0);
  if (!status.ok()) return status;
  return AckTable("checkpoint", "CHECKPOINT");
}

Status Database::AdmitQuery(const SessionGovernance& gov, size_t estimate,
                            bool* admitted, std::string* outcome,
                            int64_t* queue_micros,
                            obs::QueryTrace* trace) const {
  *admitted = false;
  *outcome = "admitted";
  *queue_micros = 0;
  if (gov.admission == AdmissionMode::kOff) return Status::OK();
  const size_t limit = gov.admission_budget_bytes != 0
                           ? gov.admission_budget_bytes
                           : MemoryTracker::EngineGlobal().limit_bytes();
  if (limit == 0) return Status::OK();  // No headroom defined: admit.

  auto& registry = obs::MetricsRegistry::Global();
  std::unique_lock<std::mutex> lock(active_->mu);
  if (estimate > limit) {
    // Larger than the whole headroom: queueing can never help.
    registry.GetCounter("query.shed").Add(1);
    *outcome = "shed";
    return Status::ResourceExhausted(
        "admission: estimated footprint " + std::to_string(estimate) +
        "B exceeds the engine headroom " + std::to_string(limit) + "B");
  }
  if (active_->admitted_bytes + estimate <= limit) {
    active_->admitted_bytes += estimate;
    *admitted = true;
    return Status::OK();
  }
  if (gov.admission == AdmissionMode::kShed) {
    registry.GetCounter("query.shed").Add(1);
    *outcome = "shed";
    return Status::ResourceExhausted(
        "admission: engine headroom exhausted (" +
        std::to_string(active_->admitted_bytes) + "B admitted of " +
        std::to_string(limit) + "B); query shed");
  }

  // Queue mode: wait for enough admitted queries to finish. Releases are
  // signaled through `cv`, but we also poll so a timeout set mid-wait or a
  // release on another Database sharing the engine tracker cannot wedge us.
  registry.GetCounter("query.queued").Add(1);
  *outcome = "queued";
  const auto wait_start = std::chrono::steady_clock::now();
  obs::ScopedSpan wait_span(trace, "admission.wait");
  const bool has_deadline = gov.timeout_ms > 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(gov.timeout_ms);
  while (active_->admitted_bytes + estimate > limit) {
    if (has_deadline && std::chrono::steady_clock::now() >= deadline) {
      *queue_micros = ElapsedMicros(wait_start);
      return Status::DeadlineExceeded(
          "admission: queued past the session timeout (" +
          std::to_string(gov.timeout_ms) + "ms)");
    }
    active_->cv.wait_for(lock, std::chrono::milliseconds(10));
  }
  *queue_micros = ElapsedMicros(wait_start);
  wait_span.AddAttribute("queue_micros",
                         static_cast<double>(*queue_micros));
  active_->admitted_bytes += estimate;
  *admitted = true;
  return Status::OK();
}

void Database::LogFailedStatement(Session& session,
                                  const StatementInfo& info) const {
  obs::QueryLogEntry entry;
  entry.id = query_log_->NextId();
  entry.session_id = static_cast<int64_t>(session.id());
  entry.text = info.text;
  entry.status = "error";
  entry.plan_micros = info.plan_micros;
  entry.wall_micros = ElapsedMicros(info.wall_start);
  entry.cpu_micros =
      std::max<int64_t>(0, ProcessCpuMicros() - info.cpu_start_micros);
  entry.tier = info.tier;
  entry.dop = info.dop;
  session.RecordStatement(false, 0);
  query_log_->Record(std::move(entry), {});
}

void Database::LogSimpleStatement(Session& session, const StatementInfo& info,
                                  const Status& status,
                                  int64_t rows_out) const {
  obs::QueryLogEntry entry;
  entry.id = query_log_->NextId();
  entry.session_id = static_cast<int64_t>(session.id());
  entry.text = info.text;
  entry.status = StatusToLogString(status.code());
  entry.plan_micros = info.plan_micros;
  entry.wall_micros = ElapsedMicros(info.wall_start);
  entry.cpu_micros =
      std::max<int64_t>(0, ProcessCpuMicros() - info.cpu_start_micros);
  entry.rows_out = rows_out;
  entry.tier = info.tier;
  session.RecordStatement(status.ok(), rows_out);
  query_log_->Record(std::move(entry), {});
}

Result<Table> Database::RunPlan(Session& session,
                                const SessionGovernance& gov, Operator& root,
                                obs::QueryTrace* trace, RunStats* run_stats,
                                const StatementInfo& info) const {
  auto& registry = obs::MetricsRegistry::Global();

  obs::QueryLogEntry entry;
  entry.id = query_log_->NextId();
  entry.session_id = static_cast<int64_t>(session.id());
  entry.text = info.text;
  entry.plan_micros = info.plan_micros;
  entry.dop = info.dop;
  entry.tier = info.tier;
  entry.est_rows = info.est_rows;
  entry.strategy = info.strategy;
  const uint64_t query_id = entry.id;

  // Prefer the cost model's stats-driven footprint over the operators'
  // coarse structural guess; without ANALYZE the plan carries no estimate
  // and admission behaves exactly as before.
  const auto& plan_est = root.plan_estimate();
  const size_t estimate = plan_est.bytes >= 0
                              ? static_cast<size_t>(plan_est.bytes)
                              : root.EstimateFootprintBytes();
  entry.estimated_bytes = static_cast<int64_t>(estimate);

  const auto finish_entry = [&](Status::Code code, bool executed_ok) {
    entry.wall_micros = ElapsedMicros(info.wall_start);
    entry.cpu_micros =
        std::max<int64_t>(0, ProcessCpuMicros() - info.cpu_start_micros);
    if (gov.slow_query_micros > 0 &&
        entry.wall_micros > gov.slow_query_micros) {
      entry.slow = true;
      registry.GetCounter("query.slow").Add(1);
    }
    entry.status = executed_ok ? "ok" : StatusToLogString(code);
  };

  bool admitted = false;
  Status admit = AdmitQuery(gov, estimate, &admitted, &entry.admission,
                            &entry.queue_micros, trace);
  if (run_stats != nullptr) {
    run_stats->queue_micros = entry.queue_micros;
    run_stats->plan_micros = info.plan_micros;
  }
  if (!admit.ok()) {
    finish_entry(admit.code(), false);
    // The admission gate's ResourceExhausted is a shed, not an in-flight
    // budget breach.
    if (admit.code() == Status::Code::kResourceExhausted) {
      entry.status = "shed";
    }
    trace->Finish();
    session.RecordStatement(false, 0);
    query_log_->Record(std::move(entry), {});
    if (gov.trace_enabled) trace_log_->Append(*trace, query_id);
    return admit;
  }

  QueryContext ctx(gov.memory_budget_bytes);
  if (gov.timeout_ms > 0) ctx.SetTimeout(gov.timeout_ms);
  if (gov.spill_enabled) {
    SpillConfig spill;
    spill.enabled = true;
    spill.directory = gov.spill_directory;
    ctx.set_spill(spill);
  }
  ctx.set_trace(trace);
  root.SetQueryContext(&ctx);
  {
    std::lock_guard<std::mutex> lock(active_->mu);
    active_->contexts.push_back(&ctx);
  }
  session.RegisterContext(&ctx);

  const auto exec_start = std::chrono::steady_clock::now();
  Result<Table> result = Execute(root, trace);
  entry.exec_micros = ElapsedMicros(exec_start);

  session.UnregisterContext(&ctx);
  {
    std::lock_guard<std::mutex> lock(active_->mu);
    auto& contexts = active_->contexts;
    contexts.erase(std::remove(contexts.begin(), contexts.end(), &ctx),
                   contexts.end());
    if (admitted) {
      active_->admitted_bytes -= std::min(active_->admitted_bytes, estimate);
    }
  }
  if (admitted) active_->cv.notify_all();
  const size_t peak = ctx.memory().peak_bytes();
  if (run_stats != nullptr) {
    run_stats->peak_bytes = peak;
    run_stats->spill_events = ctx.spill_events();
    run_stats->spill_bytes = ctx.spill_bytes();
    run_stats->exec_micros = entry.exec_micros;
  }
  entry.peak_memory_bytes = static_cast<int64_t>(peak);
  entry.spill_events = static_cast<int64_t>(ctx.spill_events());
  entry.spill_bytes = static_cast<int64_t>(ctx.spill_bytes());
  entry.rows_in = SumScanRows(root);
  if (result.ok()) {
    entry.rows_out = static_cast<int64_t>(result.value().NumRows());
  }
  // Detach before `ctx` dies: the plan can be re-executed or rendered later.
  root.SetQueryContext(nullptr);

  if (ctx.spill_events() > 0) registry.GetCounter("query.spilled").Add(1);
  registry.GetGauge("mem.query.peak").Set(static_cast<double>(peak));
  registry.GetGauge("mem.engine.usage")
      .Set(static_cast<double>(MemoryTracker::EngineGlobal().usage_bytes()));
  registry.GetGauge("mem.engine.peak")
      .Set(static_cast<double>(MemoryTracker::EngineGlobal().peak_bytes()));
  if (!result.ok()) {
    switch (result.status().code()) {
      case Status::Code::kCancelled:
        registry.GetCounter("query.cancelled").Add(1);
        break;
      case Status::Code::kDeadlineExceeded:
        registry.GetCounter("query.timeout").Add(1);
        break;
      case Status::Code::kResourceExhausted:
        registry.GetCounter("query.mem_exceeded").Add(1);
        break;
      default:
        break;
    }
  }

  finish_entry(result.ok() ? Status::Code::kOk : result.status().code(),
               result.ok());
  std::vector<obs::OperatorStatsEntry> op_stats;
  int64_t op_index = 0;
  CollectOperatorStats(root, query_id, 0, &op_index, &op_stats);
  trace->Finish();
  session.RecordStatement(result.ok(), entry.rows_out);
  query_log_->Record(std::move(entry), std::move(op_stats));
  if (gov.trace_enabled) trace_log_->Append(*trace, query_id);
  return result;
}

}  // namespace sgb::engine
